/**
 * @file
 * Tests for the grid checkpoint journal and the resume path of
 * `runGrid`: records round-trip bit-identically, corrupt journal
 * lines are quarantined not fatal, and a grid interrupted by the
 * fault injector resumes to results bit-identical to an
 * uninterrupted run — serial and parallel.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/fault_inject.hh"
#include "harness/atomic_io.hh"
#include "harness/experiment.hh"
#include "harness/grid_journal.hh"
#include "harness/result_cache.hh"
#include "mapping/layout_registry.hh"

using namespace valley;
using namespace valley::harness;

namespace {

/** Fresh cache dir per test, fault injector always disarmed after. */
class GridJournalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("valley_journal_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir);
        setenv("VALLEY_CACHE_DIR", dir.c_str(), 1);
        unsetenv("VALLEY_CACHE");
        unsetenv("VALLEY_CHECKPOINT");
    }

    void
    TearDown() override
    {
        fault::configure("");
        unsetenv("VALLEY_CHECKPOINT");
        unsetenv("VALLEY_CACHE_DIR");
        std::filesystem::remove_all(dir);
    }

    /** The small grid all resume tests share. Caches off: the
     * journal alone must carry the resumed state. */
    GridOptions
    gridOptions(bool checkpoint, unsigned threads) const
    {
        GridOptions o;
        o.workloads = {"synth:strided", "synth:stencil3d"};
        o.schemes = {Scheme::BASE, Scheme::PM};
        o.scale = 0.25;
        o.useCache = false;
        o.checkpoint = checkpoint;
        o.threads = threads;
        return o;
    }

    static void
    expectBitIdentical(const Grid &a, const Grid &b)
    {
        for (const auto &w : a.options().workloads)
            for (Scheme s : a.options().schemes) {
                // serializeResult covers every persisted field at
                // full precision; config is restamped on resume.
                EXPECT_EQ(serializeResult(a.at(w, s)),
                          serializeResult(b.at(w, s)))
                    << w << "/" << schemeName(s);
                EXPECT_EQ(a.at(w, s).config, b.at(w, s).config);
            }
    }

    std::filesystem::path dir;
};

RunResult
nastyResult()
{
    RunResult r;
    r.workload = "MT";
    r.scheme = "PAE";
    r.cycles = 0xfeedbeef;
    r.seconds = 1.0 / 3.0;
    r.llcMissRate = 0.91829583405448945;
    r.systemPowerW = 5e-324; // denormal min: precision torture test
    return r;
}

} // namespace

TEST(GridJournal, PathForIsStableAndDistinct)
{
    const std::string a = GridJournal::pathFor("grid-a");
    EXPECT_EQ(a, GridJournal::pathFor("grid-a"));
    EXPECT_NE(a, GridJournal::pathFor("grid-b"));
    EXPECT_NE(a.find("grid_journal_"), std::string::npos);
}

TEST_F(GridJournalTest, RecordLoadRoundTripsBitIdentically)
{
    const GridJournal j((dir / "j.csv").string());
    const RunResult r = nastyResult();
    const std::string key =
        cacheKey("cfg", "MT", "PAE", 1, 0.25);
    ASSERT_TRUE(j.record(key, r));
    const auto cells = j.load();
    ASSERT_EQ(cells.size(), 1u);
    ASSERT_TRUE(cells.count(key));
    EXPECT_EQ(cells.at(key), r);
    EXPECT_EQ(serializeResult(cells.at(key)), serializeResult(r));
}

TEST_F(GridJournalTest, CorruptJournalLineCostsOneCellNotTheJournal)
{
    const GridJournal j((dir / "j.csv").string());
    const std::string k1 = cacheKey("cfg", "MT", "BASE", 1, 1.0);
    const std::string k2 = cacheKey("cfg", "LU", "BASE", 1, 1.0);
    j.record(k1, nastyResult());
    j.record(k2, nastyResult());
    {
        // Simulate a kill mid-append: a truncated current-version
        // tail line.
        std::ofstream out(j.path(), std::ios::app);
        out << std::string(kResultCacheVersion) +
                   ";cfg;GS;BASE;1;1|torn mid wri";
    }
    const std::uint64_t before = quarantinedLineCount();
    const auto cells = j.load();
    EXPECT_EQ(cells.size(), 2u);
    EXPECT_EQ(quarantinedLineCount(), before + 1);
}

TEST_F(GridJournalTest, InterruptedSerialGridResumesBitIdentically)
{
    const Grid reference = runGrid(gridOptions(false, 1));

    // Interrupt: the 2nd simulated cell throws. The journal keeps
    // cell 1.
    fault::configure("grid_cell:2:throw");
    EXPECT_THROW(runGrid(gridOptions(true, 1)), fault::Injected);
    fault::configure("");

    bool found_journal = false;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().filename().string().rfind("grid_journal_", 0) ==
            0) {
            found_journal = true;
            EXPECT_EQ(GridJournal(e.path().string()).load().size(),
                      1u);
        }
    ASSERT_TRUE(found_journal);

    // Resume: the journaled cell is skipped, the rest simulate, and
    // the whole grid is bit-identical to the uninterrupted run.
    const Grid resumed = runGrid(gridOptions(true, 1));
    expectBitIdentical(reference, resumed);

    // Every cell is now journaled, so a rerun resumes them all and
    // never reaches the fault site — "resumed cells don't count".
    fault::configure("grid_cell:1:throw");
    const Grid all_resumed = runGrid(gridOptions(true, 1));
    fault::configure("");
    EXPECT_EQ(fault::hitCount(), 0u);
    expectBitIdentical(reference, all_resumed);
}

TEST_F(GridJournalTest, InterruptedParallelGridResumesBitIdentically)
{
    const Grid reference = runGrid(gridOptions(false, 1));

    fault::configure("grid_cell:2:throw");
    EXPECT_THROW(runGrid(gridOptions(true, 4)), fault::Injected);
    fault::configure("");

    const Grid resumed = runGrid(gridOptions(true, 4));
    expectBitIdentical(reference, resumed);
}

TEST_F(GridJournalTest, SpecAxisIdentitiesAreEscapedInTheJournal)
{
    // Mapper specs and synth specs both carry commas; the journal's
    // cell keys must percent-escape them (and carry the v5 schema and
    // the layout identity) so no two cells can alias.
    GridOptions o;
    o.workloads = {"synth:hash_shuffle,fmb=64,tbs=32"};
    o.mappers = {"map:pae,seed=2"};
    o.scale = 0.25;
    o.useCache = false;
    o.checkpoint = true;
    o.threads = 1;
    const Grid first = runGrid(o);

    std::string journal;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().filename().string().rfind("grid_journal_", 0) ==
            0)
            journal = e.path().string();
    ASSERT_FALSE(journal.empty());

    std::ifstream in(journal);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    // The cell key (everything before the payload separator) must
    // carry the v5 schema, escaped separators and the first-class
    // layout identity. The payload keeps raw field text — its only
    // reserved characters are '|' and newlines.
    const std::string key = line.substr(0, line.find('|'));
    EXPECT_EQ(key.rfind(std::string(kResultCacheVersion) + ";", 0),
              0u)
        << key;
    EXPECT_NE(key.find("%2C"), std::string::npos) << key;
    EXPECT_EQ(key.find("map:pae,seed"), std::string::npos)
        << "raw spec comma must be escaped: " << key;
    EXPECT_EQ(key.find(",fmb"), std::string::npos) << key;
    EXPECT_NE(key.find("layout:gddr5_1gb"), std::string::npos)
        << key;

    // And the escaped identity round-trips: a rerun resumes the cell
    // bit-identically instead of missing its own journal entry.
    const Grid resumed = runGrid(o);
    EXPECT_EQ(resumed.report().resumed, 1u);
    EXPECT_EQ(
        serializeResult(first.at(o.workloads[0], "map:pae,seed=2")),
        serializeResult(
            resumed.at(o.workloads[0], "map:pae,seed=02")));
}

TEST_F(GridJournalTest, DistinctLayoutPresetsKeepDistinctJournals)
{
    // The layout identity is part of the grid identity: the same
    // workloads x mappers grid on two presets must journal into two
    // files (and so can resume independently).
    GridOptions o;
    o.workloads = {"synth:strided"};
    o.mappers = {"map:base"};
    o.scale = 0.25;
    o.useCache = false;
    o.checkpoint = true;
    o.threads = 1;
    runGrid(o); // gddr5_1gb baseline

    GridOptions o2 = o;
    o2.config.layout = mapping::makeLayout("hbm2_4gb");
    runGrid(o2);

    std::size_t journals = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().filename().string().rfind("grid_journal_", 0) ==
            0)
            ++journals;
    EXPECT_EQ(journals, 2u);
}

TEST_F(GridJournalTest, EnvVarEnablesCheckpointing)
{
    setenv("VALLEY_CHECKPOINT", "1", 1);
    GridOptions o = gridOptions(false, 1);
    o.workloads = {"synth:strided"};
    o.schemes = {Scheme::BASE};
    runGrid(o);
    bool found_journal = false;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().filename().string().rfind("grid_journal_", 0) ==
            0)
            found_journal = true;
    EXPECT_TRUE(found_journal);
}
