/**
 * @file
 * Tests for the persistent searched-BIM cache (`search/sbim_cache`):
 * key uniqueness across every input that shapes the search outcome,
 * store/lookup round trips at full precision, corrupt-line rejection,
 * and the end-to-end guarantee that a cache hit hands `searchedMapper`
 * exactly the matrix the original search produced.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <unistd.h>

#include "harness/atomic_io.hh"
#include "mapping/layout_registry.hh"
#include "search/sbim_cache.hh"
#include "search/searched_bim.hh"
#include "workloads/workload.hh"

using namespace valley;

namespace {

/** Point every cache at a fresh per-test-run directory. */
class SbimCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("valley_sbim_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir);
        setenv("VALLEY_CACHE_DIR", dir.c_str(), 1);
        unsetenv("VALLEY_CACHE");
    }

    void
    TearDown() override
    {
        unsetenv("VALLEY_CACHE_DIR");
        std::filesystem::remove_all(dir);
    }

    std::filesystem::path dir;
};

search::SearchResult
sampleResult()
{
    search::SearchResult r;
    r.bim = BitMatrix::identity(30);
    r.bim.set(8, 20, true); // still invertible (unit upper triangular)
    r.cost = 0.125;
    r.identityCost = 0.75;
    r.targetEntropy = {0.5, 1.0, 0.25};
    return r;
}

} // namespace

TEST_F(SbimCacheTest, KeyCoversEverySearchKnob)
{
    const AddressLayout layout = AddressLayout::hynixGddr5();
    search::SearchOptions base = search::defaultOptions(layout);
    const std::string k0 =
        search::sbimCacheKey("MT", 0.25, layout.name, base);

    // Same inputs: same key.
    EXPECT_EQ(search::sbimCacheKey("MT", 0.25, layout.name, base), k0);

    // Any outcome-shaping change: different key.
    EXPECT_NE(search::sbimCacheKey("LU", 0.25, layout.name, base), k0);
    EXPECT_NE(search::sbimCacheKey("MT", 0.5, layout.name, base), k0);
    EXPECT_NE(search::sbimCacheKey("MT", 0.25, "other", base), k0);
    auto opt = base;
    opt.seed = 2;
    EXPECT_NE(search::sbimCacheKey("MT", 0.25, layout.name, opt), k0);
    opt = base;
    opt.iterations += 1;
    EXPECT_NE(search::sbimCacheKey("MT", 0.25, layout.name, opt), k0);
    opt = base;
    opt.restarts += 1;
    EXPECT_NE(search::sbimCacheKey("MT", 0.25, layout.name, opt), k0);
    opt = base;
    opt.window += 1;
    EXPECT_NE(search::sbimCacheKey("MT", 0.25, layout.name, opt), k0);
    opt = base;
    opt.metric = EntropyMetric::BvrDistribution;
    EXPECT_NE(search::sbimCacheKey("MT", 0.25, layout.name, opt), k0);
    opt = base;
    opt.targets.pop_back();
    EXPECT_NE(search::sbimCacheKey("MT", 0.25, layout.name, opt), k0);
    opt = base;
    opt.candidateMask ^= 1ull << 20;
    EXPECT_NE(search::sbimCacheKey("MT", 0.25, layout.name, opt), k0);

    // Synth canonical specs key like any other workload identity.
    EXPECT_NE(search::sbimCacheKey("synth:stencil3d", 0.25,
                                   layout.name, base),
              k0);
}

TEST_F(SbimCacheTest, StoreLookupRoundTripsAtFullPrecision)
{
    const search::SearchResult r = sampleResult();
    search::sbimCacheStore("k1", r);

    const auto hit = search::sbimCacheLookup("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->bim == r.bim);
    EXPECT_EQ(hit->cost, r.cost);
    EXPECT_EQ(hit->identityCost, r.identityCost);
    EXPECT_EQ(hit->targetEntropy, r.targetEntropy);
    EXPECT_EQ(hit->toResult().gain(), r.gain());

    EXPECT_FALSE(search::sbimCacheLookup("absent").has_value());
    // The entry landed in the on-disk file under the cache dir.
    EXPECT_TRUE(std::filesystem::exists(search::sbimCachePath()));
}

TEST_F(SbimCacheTest, DisabledCacheStoresAndReturnsNothing)
{
    setenv("VALLEY_CACHE", "0", 1);
    search::sbimCacheStore("k2", sampleResult());
    EXPECT_FALSE(search::sbimCacheLookup("k2").has_value());
    unsetenv("VALLEY_CACHE");
}

TEST_F(SbimCacheTest, CommaSpecKeysAreEscapedAndRejectedAtTheSink)
{
    // Regression (workload-set refactor): a synth spec containing ','
    // must reach the CSV escaped — one unambiguous field, no raw
    // separators — and hand-built keys that still carry a newline or
    // the '|' payload separator are rejected at store time.
    const AddressLayout layout = AddressLayout::hynixGddr5();
    const search::SearchOptions base = search::defaultOptions(layout);
    const std::string spec = "synth:hash_shuffle,fmb=64,tbs=32";

    const std::string k =
        search::sbimCacheKey(spec, 0.25, layout.name, base);
    EXPECT_EQ(k.find(",fmb"), std::string::npos)
        << "spec commas must be escaped, got: " << k;
    EXPECT_NE(k.find("%2C"), std::string::npos);
    EXPECT_EQ(k.find('\n'), std::string::npos);
    EXPECT_EQ(k.find('|'), std::string::npos);

    // The single-workload overload and a size-1 set agree, so the
    // delegating single-workload API hits the same cache lines.
    EXPECT_EQ(k, search::sbimCacheKey(workloads::WorkloadSet({spec}),
                                      0.25, layout.name, base));

    // Store/lookup round-trips through the escaped key.
    search::sbimCacheStore(k, sampleResult());
    EXPECT_TRUE(search::sbimCacheLookup(k).has_value());

    // Reject-at-the-sink: raw separators in a hand-built key.
    EXPECT_THROW(search::sbimCacheStore("bad\nkey", sampleResult()),
                 std::invalid_argument);
    EXPECT_THROW(search::sbimCacheStore("bad|key", sampleResult()),
                 std::invalid_argument);
}

TEST_F(SbimCacheTest, CommaSpecSearchHitsItsOwnCacheLine)
{
    // End to end with a comma-parameter spec: the first searchedMapper
    // call searches and stores; the second must reproduce the matrix
    // from the cache file it just wrote (i.e. the escaped line parses
    // back to the same entry, not to a corrupt miss).
    const AddressLayout layout = AddressLayout::hynixGddr5();
    const auto wl =
        workloads::make("synth:hash_shuffle,fmb=64,tbs=32", 0.25);
    search::SearchOptions so = search::defaultOptions(layout);
    so.restarts = 1;
    so.iterations = 120;
    so.threads = 1;

    const auto cold = search::searchedMapper(layout, *wl, so, 0.25);
    const auto warm = search::searchedMapper(layout, *wl, so, 0.25);
    EXPECT_TRUE(cold->matrix() == warm->matrix());

    std::ifstream in(search::sbimCachePath());
    const auto lines = std::count(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>(), '\n');
    EXPECT_EQ(lines, 1) << "warm call must hit, not append";
}

TEST_F(SbimCacheTest, PreRegistryEpochLinesLoadAsStaleNotCorrupt)
{
    // The mapper-registry PR bumped the schema to m3: an m2-era line
    // must be skipped as *stale* on load — never returned as a hit,
    // never quarantined as corrupt (older binaries may still read
    // it) — while current m3 lines load normally.
    ASSERT_STREQ(search::kSbimCacheVersion, "m3");
    const AddressLayout layout = AddressLayout::hynixGddr5();
    const search::SearchOptions base = search::defaultOptions(layout);
    const std::string cur =
        search::sbimCacheKey("MT", 0.25, layout.name, base);
    ASSERT_EQ(cur.rfind("m3;", 0), 0u) << cur;

    search::sbimCacheStore(cur, sampleResult());
    const std::string old = "m2" + cur.substr(2);
    ASSERT_TRUE(harness::atomicAppend(
        search::sbimCachePath(),
        harness::checksummedRecord(old, "pre-registry payload")));

    search::sbimCacheResetForTesting();
    const std::uint64_t quarantined_before =
        harness::quarantinedLineCount();
    EXPECT_FALSE(search::sbimCacheLookup(old).has_value());
    EXPECT_TRUE(search::sbimCacheLookup(cur).has_value());
    EXPECT_EQ(harness::quarantinedLineCount(), quarantined_before);

    // The stale line was preserved in place, not moved aside.
    std::ifstream in(search::sbimCachePath());
    const std::string contents(std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>{});
    EXPECT_NE(contents.find("m2;"), std::string::npos);
}

TEST_F(SbimCacheTest, LayoutPresetsKeyDistinctSearches)
{
    // Every layout preset names a distinct search space: the same
    // workload must never share a searched matrix across presets.
    const search::SearchOptions base = search::defaultOptions(
        mapping::makeLayout("gddr5_1gb"));
    std::set<std::string> keys;
    for (const char *preset :
         {"gddr5_1gb", "stacked3d_4gb", "hbm2_4gb", "ddr4_4gb",
          "gddr6_2gb"}) {
        const AddressLayout l = mapping::makeLayout(preset);
        keys.insert(
            search::sbimCacheKey("MT", 0.25, l.name, base));
    }
    EXPECT_EQ(keys.size(), 5u);
}

TEST_F(SbimCacheTest, SearchedMapperHitMatchesSearchedMapperMiss)
{
    // End to end: the second searchedMapper call must produce the
    // exact matrix of the first (which ran the real search), i.e. the
    // cache is invisible except for the time it saves.
    const AddressLayout layout = AddressLayout::hynixGddr5();
    const auto wl = workloads::make("synth:strided", 0.25);
    search::SearchOptions so = search::defaultOptions(layout);
    so.restarts = 1;
    so.iterations = 120;
    so.threads = 1;

    const auto cold = search::searchedMapper(layout, *wl, so, 0.25);
    ASSERT_TRUE(std::filesystem::exists(search::sbimCachePath()));
    const auto warm = search::searchedMapper(layout, *wl, so, 0.25);
    EXPECT_TRUE(cold->matrix() == warm->matrix());

    // A different scale is a different workload: key must miss (the
    // file has exactly one entry, so a second search appends one).
    std::ifstream in(search::sbimCachePath());
    const auto lines_before = std::count(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>(), '\n');
    EXPECT_EQ(lines_before, 1);
}
