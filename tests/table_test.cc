/**
 * @file
 * Unit tests for the TextTable formatter.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

using namespace valley;

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    // Header separator rule present.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, CsvHasCommasAndNoRules)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    t.addRule();
    t.addRow({"3", "4"});
    EXPECT_EQ(t.toCsv(), "a,b\n1,2\n3,4\n");
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.2345, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
    EXPECT_EQ(TextTable::num(2.5, 3), "2.500");
}

TEST(TextTable, BigInsertsSeparators)
{
    EXPECT_EQ(TextTable::big(0), "0");
    EXPECT_EQ(TextTable::big(999), "999");
    EXPECT_EQ(TextTable::big(1000), "1,000");
    EXPECT_EQ(TextTable::big(1234567), "1,234,567");
}

TEST(TextTable, RaggedRowsAllowed)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"only-one"});
    EXPECT_NE(t.toString().find("only-one"), std::string::npos);
}
