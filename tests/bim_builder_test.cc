/**
 * @file
 * Unit and property tests for the BIM strategy builders.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "bim/bim_builder.hh"
#include "common/bitops.hh"

using namespace valley;

TEST(Permutation, IdentityPermutation)
{
    std::vector<unsigned> id = {0, 1, 2, 3};
    EXPECT_EQ(bim::permutation(4, id), BitMatrix::identity(4));
}

TEST(Permutation, SwapMovesBits)
{
    // out0 <- in1, out1 <- in0
    const BitMatrix m = bim::permutation(2, {1, 0});
    EXPECT_EQ(m.apply(0b01), 0b10u);
    EXPECT_EQ(m.apply(0b10), 0b01u);
    EXPECT_TRUE(m.invertible());
}

TEST(Permutation, RejectsNonPermutation)
{
    EXPECT_THROW(bim::permutation(3, {0, 0, 1}), std::invalid_argument);
    EXPECT_THROW(bim::permutation(3, {0, 1}), std::invalid_argument);
    EXPECT_THROW(bim::permutation(3, {0, 1, 5}), std::invalid_argument);
}

TEST(Remap, RoutesSourcesToTargets)
{
    // 8-bit space; route bits 6,7 into positions 2,3.
    const BitMatrix m = bim::remap(8, {2, 3}, {6, 7});
    EXPECT_TRUE(m.invertible());
    // Input with only bit 6 set -> output only bit 2 set.
    EXPECT_EQ(m.apply(1u << 6), 1u << 2);
    EXPECT_EQ(m.apply(1u << 7), 1u << 3);
    // Displaced inputs 2,3 must reappear at vacated outputs 6,7.
    EXPECT_EQ(m.apply(1u << 2), 1u << 6);
    EXPECT_EQ(m.apply(1u << 3), 1u << 7);
    // Untouched bit.
    EXPECT_EQ(m.apply(1u << 0), 1u << 0);
}

TEST(Remap, OverlappingSourceStaysInPlace)
{
    // Source 2 routed to target 2 (no-op route), source 5 to target 3.
    const BitMatrix m = bim::remap(8, {2, 3}, {2, 5});
    EXPECT_TRUE(m.invertible());
    EXPECT_EQ(m.apply(1u << 2), 1u << 2);
    EXPECT_EQ(m.apply(1u << 5), 1u << 3);
    EXPECT_EQ(m.apply(1u << 3), 1u << 5); // displaced
}

TEST(Remap, PaperRmpBits)
{
    // GDDR5 RMP: ch/bank outputs {8..13} take inputs {8,9,10,11,15,16}.
    const BitMatrix m =
        bim::remap(30, {8, 9, 10, 11, 12, 13}, {8, 9, 10, 11, 15, 16});
    EXPECT_TRUE(m.invertible());
    EXPECT_EQ(m.apply(1u << 15), 1u << 12);
    EXPECT_EQ(m.apply(1u << 16), 1u << 13);
    // Displaced inputs 12,13 land in vacated outputs 15,16.
    EXPECT_EQ(m.apply(1u << 12), 1u << 15);
    EXPECT_EQ(m.apply(1u << 13), 1u << 16);
    // Row bits untouched.
    EXPECT_EQ(m.apply(1u << 20), 1u << 20);
}

TEST(Remap, RejectsMismatchedSizes)
{
    EXPECT_THROW(bim::remap(8, {1, 2}, {3}), std::invalid_argument);
    EXPECT_THROW(bim::remap(8, {1, 1}, {3, 4}), std::invalid_argument);
    EXPECT_THROW(bim::remap(8, {1, 2}, {3, 3}), std::invalid_argument);
}

TEST(PermutationBased, XorsDonorIntoTarget)
{
    // Fig. 6c: channel bit (1) gets row bit r1 (3); bank bit (0) gets
    // row bit r0 (2), in the 5-bit [r2 r1 r0 c b] example space.
    const BitMatrix m = bim::permutationBased(5, {1, 0}, {3, 2});
    EXPECT_TRUE(m.invertible());
    // Donor set, target clear -> target flips.
    EXPECT_EQ(m.apply(0b01000), 0b01010u);
    // Donor clear -> target unchanged.
    EXPECT_EQ(m.apply(0b00010), 0b00010u);
    // Both set -> XOR cancels.
    EXPECT_EQ(m.apply(0b01010), 0b01000u);
}

TEST(PermutationBased, AlwaysInvertibleForDisjointDonors)
{
    // Donors outside the target set keep the matrix unit-triangular.
    const BitMatrix m = bim::permutationBased(
        30, {8, 9, 10, 11, 12, 13}, {18, 19, 20, 21, 22, 23});
    EXPECT_TRUE(m.invertible());
}

TEST(PermutationBased, RejectsDonorInTargetSet)
{
    EXPECT_THROW(bim::permutationBased(8, {1, 2}, {2, 5}),
                 std::invalid_argument);
}

TEST(FromRowSpecs, BuildsAndValidates)
{
    const BitMatrix m = bim::fromRowSpecs(5, {{1, 0b11110}, {0, 0b01101}});
    EXPECT_TRUE(m.invertible());
    EXPECT_EQ(m.row(1), 0b11110u);

    // Singular spec rejected: row 1 duplicates row 2's identity.
    EXPECT_THROW(bim::fromRowSpecs(5, {{1, 0b00100}}),
                 std::invalid_argument);
}

TEST(RandomBroad, ProducesInvertibleMatrixWithIdentityNonTargets)
{
    XorShiftRng rng(1);
    const std::vector<unsigned> targets = {8, 9, 10, 11, 12, 13};
    const std::uint64_t candidates =
        bits::mask(30) & ~bits::mask(8) & ~(bits::mask(4) << 14);
    const BitMatrix m = bim::randomBroad(30, targets, candidates, rng);

    EXPECT_TRUE(m.invertible());
    for (unsigned b = 0; b < 30; ++b) {
        const bool is_target =
            std::find(targets.begin(), targets.end(), b) != targets.end();
        if (!is_target) {
            EXPECT_TRUE(m.rowIsIdentity(b)) << "bit " << b;
        }
    }
}

TEST(RandomBroad, RowsRespectCandidateMask)
{
    XorShiftRng rng(2);
    const std::vector<unsigned> targets = {8, 9, 10, 11, 12, 13};
    const std::uint64_t candidates =
        (bits::mask(12) << 18) | (bits::mask(6) << 8); // page bits
    const BitMatrix m = bim::randomBroad(30, targets, candidates, rng);
    for (unsigned t : targets)
        EXPECT_EQ(m.row(t) & ~candidates, 0u) << "target " << t;
}

TEST(RandomBroad, RespectsMinTaps)
{
    XorShiftRng rng(3);
    const std::vector<unsigned> targets = {8, 9, 10, 11, 12, 13};
    const std::uint64_t candidates = (bits::mask(12) << 18) |
                                     (bits::mask(6) << 8);
    const BitMatrix m =
        bim::randomBroad(30, targets, candidates, rng, /*min_taps=*/4);
    for (unsigned t : targets)
        EXPECT_GE(std::popcount(m.row(t)), 4);
}

TEST(RandomBroad, DeterministicPerSeed)
{
    const std::vector<unsigned> targets = {8, 9, 10, 11, 12, 13};
    const std::uint64_t candidates = (bits::mask(12) << 18) |
                                     (bits::mask(6) << 8);
    XorShiftRng r1(42), r2(42), r3(43);
    const BitMatrix a = bim::randomBroad(30, targets, candidates, r1);
    const BitMatrix b = bim::randomBroad(30, targets, candidates, r2);
    const BitMatrix c = bim::randomBroad(30, targets, candidates, r3);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
}

TEST(RandomBroad, RejectsTargetOutsideCandidates)
{
    XorShiftRng rng(4);
    // Target 8 not within candidate mask -> identity rows cover column 8
    // twice; no invertible matrix exists, builder must refuse.
    EXPECT_THROW(
        bim::randomBroad(30, {8}, bits::mask(12) << 18, rng),
        std::invalid_argument);
}

TEST(RandomBroad, MappingIsBijectiveOnSample)
{
    XorShiftRng rng(7);
    const std::vector<unsigned> targets = {8, 9, 10, 11, 12, 13};
    const std::uint64_t candidates =
        (bits::mask(12) << 18) | (bits::mask(6) << 8);
    const BitMatrix m = bim::randomBroad(30, targets, candidates, rng);
    const auto inv = m.inverse();
    ASSERT_TRUE(inv.has_value());
    XorShiftRng addr_rng(1001);
    for (int i = 0; i < 5000; ++i) {
        const Addr a = addr_rng.next() & bits::mask(30);
        EXPECT_EQ(inv->apply(m.apply(a)), a);
    }
}

TEST(RandomBroad, BlockBitsNeverTouched)
{
    XorShiftRng rng(8);
    const std::vector<unsigned> targets = {8, 9, 10, 11, 12, 13};
    const std::uint64_t candidates =
        (bits::mask(12) << 18) | (bits::mask(6) << 8);
    const BitMatrix m = bim::randomBroad(30, targets, candidates, rng);
    for (Addr block = 0; block < 64; ++block)
        EXPECT_EQ(m.apply(block) & bits::mask(6), block);
}
