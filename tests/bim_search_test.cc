/**
 * @file
 * Tests for the profile-driven BIM search (`src/search/`): the
 * bit-plane evaluator must be bit-identical to the profiler, every
 * searched matrix must be invertible with identity non-target rows,
 * results must be deterministic for a fixed seed and bit-identical
 * between serial and parallel restarts, and the search must strictly
 * lower the entropy-flatness objective against the identity mapping
 * on valley workloads.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "bim/bim_builder.hh"
#include "common/cancellation.hh"
#include "common/rng.hh"
#include "search/searched_bim.hh"
#include "workloads/profiler.hh"

using namespace valley;
using namespace valley::search;

namespace {

constexpr double kScale = 0.25;

AddressLayout
gddr5()
{
    return AddressLayout::hynixGddr5();
}

/** Planes + profiler options that must describe the same profile. */
struct PlanesFixture
{
    std::unique_ptr<Workload> wl;
    std::unique_ptr<TracePlanes> planes;
    workloads::ProfileOptions po;

    explicit PlanesFixture(const std::string &abbrev,
                   EntropyMetric metric = EntropyMetric::BitProbability)
    {
        wl = workloads::make(abbrev, kScale);
        po.metric = metric;
        po.threads = 1;
        PlaneOptions popts;
        popts.numBits = po.numBits;
        popts.threads = 1;
        planes = std::make_unique<TracePlanes>(*wl, popts);
    }
};

} // namespace

TEST(TracePlanes, IdentityProfileMatchesProfilerBitExactly)
{
    for (const char *abbrev : {"MT", "NN"}) {
        PlanesFixture s(abbrev);
        const EntropyProfile direct =
            workloads::profileWorkload(*s.wl, s.po);
        const EntropyProfile planes = s.planes->profileFor(
            BitMatrix::identity(s.po.numBits), s.po.window,
            s.po.metric);
        ASSERT_EQ(direct.perBit.size(), planes.perBit.size());
        EXPECT_EQ(direct.weight, planes.weight);
        for (std::size_t b = 0; b < direct.perBit.size(); ++b)
            EXPECT_EQ(direct.perBit[b], planes.perBit[b])
                << abbrev << " bit " << b;
    }
}

TEST(TracePlanes, MappedProfileMatchesProfilerBitExactly)
{
    // Under a non-trivial BIM the planes path XORs input planes while
    // the profiler maps every address; same integers must fall out.
    PlanesFixture s("MT");
    const auto mapper =
        mapping::makeScheme(Scheme::PAE, gddr5(), /*seed=*/1);
    workloads::ProfileOptions po = s.po;
    po.mapper = mapper.get();
    const EntropyProfile direct =
        workloads::profileWorkload(*s.wl, po);
    const EntropyProfile planes = s.planes->profileFor(
        mapper->matrix(), po.window, po.metric);
    ASSERT_EQ(direct.perBit.size(), planes.perBit.size());
    for (std::size_t b = 0; b < direct.perBit.size(); ++b)
        EXPECT_EQ(direct.perBit[b], planes.perBit[b]) << "bit " << b;
}

TEST(TracePlanes, MatchesProfilerUnderBvrDistributionMetric)
{
    PlanesFixture s("LU", EntropyMetric::BvrDistribution);
    const EntropyProfile direct =
        workloads::profileWorkload(*s.wl, s.po);
    const EntropyProfile planes = s.planes->profileFor(
        BitMatrix::identity(s.po.numBits), s.po.window, s.po.metric);
    for (std::size_t b = 0; b < direct.perBit.size(); ++b)
        EXPECT_EQ(direct.perBit[b], planes.perBit[b]) << "bit " << b;
}

TEST(TracePlanes, ParallelExtractionBitIdenticalToSerial)
{
    const auto wl = workloads::make("LU", kScale);
    PlaneOptions serial{30, 1};
    PlaneOptions parallel{30, 3};
    const TracePlanes a(*wl, serial);
    const TracePlanes b(*wl, parallel);
    const BitMatrix id = BitMatrix::identity(30);
    const EntropyProfile pa = a.profileFor(id, 12,
                                           EntropyMetric::BitProbability);
    const EntropyProfile pb = b.profileFor(id, 12,
                                           EntropyMetric::BitProbability);
    for (std::size_t bit = 0; bit < pa.perBit.size(); ++bit)
        EXPECT_EQ(pa.perBit[bit], pb.perBit[bit]);
}

TEST(TracePlanes, RowEntropyBatchMatchesRowEntropy)
{
    PlanesFixture s("MT");
    XorShiftRng rng(17);
    std::vector<std::uint64_t> masks;
    for (int i = 0; i < 40; ++i)
        masks.push_back(rng.next() & bits::mask(30));
    masks.push_back(0); // degenerate all-zero row
    for (const EntropyMetric metric :
         {EntropyMetric::BitProbability,
          EntropyMetric::BvrDistribution}) {
        const std::vector<double> batched =
            s.planes->rowEntropyBatch(masks, 12, metric);
        ASSERT_EQ(batched.size(), masks.size());
        for (std::size_t i = 0; i < masks.size(); ++i)
            EXPECT_EQ(batched[i],
                      s.planes->rowEntropy(masks[i], 12, metric))
                << "mask " << i;
    }
}

TEST(TracePlanes, IncrementalMovesMatchOracle)
{
    // Walk a row through the search's move kinds on cached planes:
    // every intermediate entropyFromOnes value must equal the
    // from-scratch rowEntropy of the mask the cache represents.
    PlanesFixture s("MT");
    const TracePlanes &p = *s.planes;
    XorShiftRng rng(23);
    std::vector<std::uint64_t> plane(p.planeWords());
    std::vector<std::uint64_t> other(p.planeWords());
    std::vector<std::uint64_t> ones(p.tbCount());
    std::vector<std::uint64_t> ones2(p.tbCount());

    std::uint64_t mask = rng.next() & bits::mask(30);
    p.combineRow(mask, plane.data(), ones.data());
    EXPECT_EQ(p.entropyFromOnes(ones.data(), 12,
                                EntropyMetric::BitProbability),
              p.rowEntropy(mask, 12, EntropyMetric::BitProbability));

    // Tap toggles, including toggling the same bit back.
    for (const unsigned bit : {3u, 17u, 29u, 17u, 0u}) {
        p.toggleRow(plane.data(), bit, plane.data(), ones.data());
        mask ^= std::uint64_t{1} << bit;
        EXPECT_EQ(
            p.entropyFromOnes(ones.data(), 12,
                              EntropyMetric::BitProbability),
            p.rowEntropy(mask, 12, EntropyMetric::BitProbability))
            << "bit " << bit;
        // The cached plane must be exactly what combineRow builds.
        std::vector<std::uint64_t> fresh(p.planeWords());
        p.combineRow(mask, fresh.data(), ones2.data());
        EXPECT_EQ(plane, fresh) << "bit " << bit;
        EXPECT_EQ(ones, ones2) << "bit " << bit;
    }

    // Row XOR against an independently combined row.
    const std::uint64_t omask = rng.next() & bits::mask(30);
    p.combineRow(omask, other.data(), ones2.data());
    p.xorRows(plane.data(), other.data(), plane.data(), ones.data());
    mask ^= omask;
    EXPECT_EQ(p.entropyFromOnes(ones.data(), 12,
                                EntropyMetric::BitProbability),
              p.rowEntropy(mask, 12, EntropyMetric::BitProbability));
}

TEST(TracePlanes, ForceScalarBitIdenticalToDispatched)
{
    const auto wl = workloads::make("LU", kScale);
    PlaneOptions dispatched{30, 1, false};
    PlaneOptions scalar{30, 1, true};
    const TracePlanes a(*wl, dispatched);
    const TracePlanes b(*wl, scalar);
    const BitMatrix id = BitMatrix::identity(30);
    for (const EntropyMetric metric :
         {EntropyMetric::BitProbability,
          EntropyMetric::BvrDistribution}) {
        const EntropyProfile pa = a.profileFor(id, 12, metric);
        const EntropyProfile pb = b.profileFor(id, 12, metric);
        for (std::size_t bit = 0; bit < pa.perBit.size(); ++bit)
            EXPECT_EQ(pa.perBit[bit], pb.perBit[bit])
                << "bit " << bit;
    }
}

TEST(FlatnessObjective, RewardsFlatHighEntropy)
{
    FlatnessObjective obj;
    const std::vector<double> valley = {0.1, 0.1, 0.9, 0.9, 0.9, 0.9};
    const std::vector<double> flat = {0.95, 0.95, 0.95,
                                      0.95, 0.95, 0.95};
    EXPECT_LT(obj.cost(flat, 6), obj.cost(valley, 6));
    // Gate regularizer breaks entropy ties toward cheaper hardware.
    EXPECT_LT(obj.cost(flat, 3), obj.cost(flat, 12));
    // Identity (entropy-free targets, no gates) is the worst case.
    const std::vector<double> dead(6, 0.0);
    EXPECT_NEAR(obj.cost(dead, 0),
                obj.meanWeight + obj.minWeight, 1e-12);
}

TEST(BimSearch, SearchedMatrixInvertibleWithIdentityNonTargetRows)
{
    PlanesFixture s("MT");
    const AddressLayout layout = gddr5();
    SearchOptions opts = defaultOptions(layout);
    opts.threads = 1;
    opts.restarts = 2;
    opts.iterations = 300;
    const BimSearch searcher(layout, *s.planes,
                             defaultObjective(layout), opts);
    const SearchResult r = searcher.anneal();

    EXPECT_TRUE(r.bim.invertible());
    // The search must only rewrite the channel/bank target rows —
    // everything else stays identity (the invariant documented in
    // bim_search.hh).
    std::vector<bool> is_target(layout.addrBits, false);
    for (unsigned t : searcher.targets())
        is_target[t] = true;
    for (unsigned row = 0; row < layout.addrBits; ++row)
        if (!is_target[row])
            EXPECT_TRUE(r.bim.rowIsIdentity(row)) << "row " << row;
    // Target rows only tap candidate (page-mask) bits.
    for (unsigned t : searcher.targets())
        EXPECT_EQ(r.bim.row(t) & ~searcher.candidateMask(), 0u);
}

TEST(BimSearch, DeterministicForFixedSeed)
{
    PlanesFixture s("MT");
    const AddressLayout layout = gddr5();
    SearchOptions opts = defaultOptions(layout);
    opts.threads = 1;
    opts.restarts = 2;
    opts.iterations = 300;
    const BimSearch searcher(layout, *s.planes,
                             defaultObjective(layout), opts);
    const SearchResult a = searcher.anneal();
    const SearchResult b = searcher.anneal();
    EXPECT_TRUE(a.bim == b.bim);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);

    SearchOptions other = opts;
    other.seed = 7;
    const BimSearch searcher7(layout, *s.planes,
                              defaultObjective(layout), other);
    const SearchResult c = searcher7.anneal();
    // Different seeds explore different chains (costs may tie, the
    // accept/reject trajectory must not).
    EXPECT_NE(a.stats.accepted, c.stats.accepted);
}

TEST(BimSearch, ParallelRestartsBitIdenticalToSerial)
{
    PlanesFixture s("LU");
    const AddressLayout layout = gddr5();
    SearchOptions serial = defaultOptions(layout);
    serial.restarts = 4;
    serial.iterations = 200;
    serial.threads = 1;
    SearchOptions parallel = serial;
    parallel.threads = 3;
    const BimSearch ss(layout, *s.planes, defaultObjective(layout),
                       serial);
    const BimSearch sp(layout, *s.planes, defaultObjective(layout),
                       parallel);
    const SearchResult a = ss.anneal();
    const SearchResult b = sp.anneal();
    EXPECT_TRUE(a.bim == b.bim);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.identityCost, b.identityCost);
    EXPECT_EQ(a.bestRestart, b.bestRestart);
    EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);
    EXPECT_EQ(a.stats.accepted, b.stats.accepted);
}

TEST(BimSearch, PhaseEvaluationCountsSumToTotal)
{
    // SearchStats breaks the evaluation budget down per phase; the
    // three phase counts must partition the global count exactly, and
    // each phase that runs must have done real work.
    PlanesFixture s("MT");
    const AddressLayout layout = gddr5();
    SearchOptions opts = defaultOptions(layout);
    opts.threads = 1;
    opts.restarts = 2;
    opts.iterations = 300;
    const BimSearch searcher(layout, *s.planes,
                             defaultObjective(layout), opts);

    const SearchResult annealed = searcher.anneal();
    EXPECT_EQ(annealed.stats.setupEvaluations +
                  annealed.stats.annealEvaluations +
                  annealed.stats.polishEvaluations,
              annealed.stats.evaluations);
    EXPECT_GT(annealed.stats.setupEvaluations, 0u);
    EXPECT_GT(annealed.stats.annealEvaluations, 0u);

    const SearchResult greedy = searcher.greedy();
    EXPECT_EQ(greedy.stats.setupEvaluations +
                  greedy.stats.annealEvaluations +
                  greedy.stats.polishEvaluations,
              greedy.stats.evaluations);
}

TEST(BimSearch, StrictlyBeatsIdentityOnValleyWorkloads)
{
    // The acceptance criterion: on entropy-valley workloads both the
    // annealed search and the greedy baseline must strictly lower the
    // flatness objective vs the identity (BASE) mapping.
    const AddressLayout layout = gddr5();
    for (const char *abbrev : {"MT", "LU"}) {
        PlanesFixture s(abbrev);
        SearchOptions opts = defaultOptions(layout);
        opts.threads = 1;
        opts.restarts = 2;
        opts.iterations = 400;
        const BimSearch searcher(layout, *s.planes,
                                 defaultObjective(layout), opts);
        const SearchResult annealed = searcher.anneal();
        const SearchResult greedy = searcher.greedy();
        EXPECT_LT(annealed.cost, annealed.identityCost) << abbrev;
        EXPECT_LT(greedy.cost, greedy.identityCost) << abbrev;
        EXPECT_GT(annealed.gain(), 0.0) << abbrev;
    }
}

TEST(BimSearch, RejectsTargetsOutsideCandidateMask)
{
    PlanesFixture s("MT");
    const AddressLayout layout = gddr5();
    SearchOptions opts = defaultOptions(layout);
    opts.candidateMask = 1ull << 20; // excludes the channel bits
    EXPECT_THROW(BimSearch(layout, *s.planes,
                           defaultObjective(layout), opts),
                 std::invalid_argument);
}

TEST(SearchedMapper, WrapsInvertibleBimNamedSbim)
{
    PlanesFixture s("MT");
    const AddressLayout layout = gddr5();
    SearchOptions opts = defaultOptions(layout);
    opts.threads = 1;
    opts.restarts = 2;
    opts.iterations = 300;
    // VALLEY_CACHE=0: this test must exercise the live search (and
    // never write a cache entry into the developer's cache dir).
    setenv("VALLEY_CACHE", "0", 1);
    const auto mapper =
        search::searchedMapper(layout, *s.wl, opts, kScale);
    unsetenv("VALLEY_CACHE");
    EXPECT_EQ(mapper->name(), "SBIM");
    EXPECT_TRUE(mapper->matrix().invertible());
    // One-to-one over a sample of addresses via the inverse matrix.
    const auto inv = mapper->matrix().inverse();
    ASSERT_TRUE(inv.has_value());
    XorShiftRng rng(99);
    for (int i = 0; i < 1000; ++i) {
        const Addr a = rng.next() & ((1ull << 30) - 1);
        EXPECT_EQ(inv->apply(mapper->map(a)), a);
    }
}

TEST(SearchedMapper, MakeSchemeRefusesSbim)
{
    EXPECT_THROW(mapping::makeScheme(Scheme::SBIM, gddr5()),
                 std::invalid_argument);
    EXPECT_EQ(schemeName(Scheme::SBIM), "SBIM");
    // The paper's presentation order stays the six paper schemes.
    EXPECT_EQ(allSchemes().size(), 6u);
}

TEST(BimSearch, CancelledSearchDegradesToScoredInvertibleIncumbent)
{
    PlanesFixture s("MT");
    const AddressLayout layout = gddr5();
    SearchOptions opts = defaultOptions(layout);
    opts.threads = 1;
    opts.restarts = 2;
    opts.iterations = 300;

    // Fire before the first move: the harshest deadline possible.
    // The degradation contract says the search must still return a
    // fully scored, invertible incumbent — never throw, never hand
    // back garbage — and flag the truncation.
    CancelToken token;
    token.cancel();
    opts.cancel = &token;
    const BimSearch searcher(layout, *s.planes,
                             defaultObjective(layout), opts);
    const SearchResult r = searcher.anneal();

    EXPECT_TRUE(r.stats.deadlineHit);
    EXPECT_FALSE(r.stats.capped); // budget was not the stopper
    EXPECT_TRUE(r.bim.invertible());
    EXPECT_TRUE(std::isfinite(r.cost));
    // The incumbent still honors the structural invariants.
    std::vector<bool> is_target(layout.addrBits, false);
    for (unsigned t : searcher.targets())
        is_target[t] = true;
    for (unsigned row = 0; row < layout.addrBits; ++row)
        if (!is_target[row])
            EXPECT_TRUE(r.bim.rowIsIdentity(row)) << "row " << row;
}

TEST(BimSearch, PlaneCacheOffBitIdenticalToOn)
{
    // The incremental row cache is a pure speedup: with it disabled
    // every proposal is scored from scratch through the oracle, and
    // the whole trajectory — matrix, cost, evaluation and acceptance
    // counts — must not move, under either entropy metric.
    const AddressLayout layout = gddr5();
    for (const EntropyMetric metric :
         {EntropyMetric::BitProbability,
          EntropyMetric::BvrDistribution}) {
        PlanesFixture s("MT", metric);
        SearchOptions cached = defaultOptions(layout);
        cached.threads = 1;
        cached.restarts = 2;
        cached.iterations = 300;
        cached.metric = metric;
        SearchOptions oracle = cached;
        oracle.planeCache = false;
        const BimSearch sc(layout, *s.planes,
                           defaultObjective(layout), cached);
        const BimSearch so(layout, *s.planes,
                           defaultObjective(layout), oracle);

        const SearchResult a = sc.anneal();
        const SearchResult b = so.anneal();
        EXPECT_TRUE(a.bim == b.bim);
        EXPECT_EQ(a.cost, b.cost);
        EXPECT_EQ(a.identityCost, b.identityCost);
        EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);
        EXPECT_EQ(a.stats.accepted, b.stats.accepted);
        // The cached run works through plane moves; the oracle run
        // must not touch the incremental machinery at all.
        EXPECT_GT(a.stats.planeToggles + a.stats.planeXors, 0u);
        EXPECT_GT(a.stats.planeRebuilds, 0u);
        EXPECT_EQ(b.stats.planeToggles, 0u);
        EXPECT_EQ(b.stats.planeXors, 0u);
        EXPECT_EQ(b.stats.planeRebuilds, 0u);

        const SearchResult ga = sc.greedy();
        const SearchResult gb = so.greedy();
        EXPECT_TRUE(ga.bim == gb.bim);
        EXPECT_EQ(ga.cost, gb.cost);
        EXPECT_EQ(ga.stats.evaluations, gb.stats.evaluations);
    }
}

TEST(BimSearch, UnfiredTokenLeavesTheSearchBitIdentical)
{
    PlanesFixture s("MT");
    const AddressLayout layout = gddr5();
    SearchOptions opts = defaultOptions(layout);
    opts.threads = 1;
    opts.restarts = 2;
    opts.iterations = 300;
    const BimSearch plain(layout, *s.planes,
                          defaultObjective(layout), opts);
    const SearchResult a = plain.anneal();

    CancelToken token; // present but never fired
    SearchOptions watched = opts;
    watched.cancel = &token;
    const BimSearch observed(layout, *s.planes,
                             defaultObjective(layout), watched);
    const SearchResult b = observed.anneal();

    EXPECT_FALSE(b.stats.deadlineHit);
    EXPECT_TRUE(a.bim == b.bim);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);
}
