/**
 * @file
 * Randomized property tests: reference-model equivalence for the
 * cache, conservation laws for the NoC and DRAM controller, algebraic
 * properties of the BIM schemes across many seeds, and symmetry
 * properties of the entropy metrics.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <set>

#include "bim/bim_builder.hh"
#include "cache/set_assoc_cache.hh"
#include "common/bitops.hh"
#include "common/rng.hh"
#include "dram/memory_controller.hh"
#include "entropy/window_entropy.hh"
#include "mapping/address_mapper.hh"
#include "mapping/layout_registry.hh"
#include "mapping/mapper_registry.hh"
#include "noc/crossbar.hh"

using namespace valley;

// --- BIM scheme properties over many seeds -------------------------------

class SchemeSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

INSTANTIATE_TEST_SUITE_P(Seeds, SchemeSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

TEST_P(SchemeSeeds, BroadSchemesAlwaysInvertible)
{
    const AddressLayout l = AddressLayout::hynixGddr5();
    for (Scheme s : {Scheme::PAE, Scheme::FAE, Scheme::ALL}) {
        const auto m = mapping::makeScheme(s, l, GetParam());
        EXPECT_TRUE(m->matrix().invertible()) << schemeName(s);
    }
}

TEST_P(SchemeSeeds, PaePreservesDramPageMembership)
{
    // Two addresses in the same DRAM page (equal page bits) must stay
    // in the same page under PAE — the property behind its row-buffer
    // friendliness (paper Section VI-B).
    const AddressLayout l = AddressLayout::hynixGddr5();
    const auto m = mapping::makeScheme(Scheme::PAE, l, GetParam());
    XorShiftRng rng(GetParam() * 31 + 7);
    for (int i = 0; i < 300; ++i) {
        const Addr page = rng.next() & l.pageMask();
        const Addr a = page | (rng.next() & ~l.pageMask() &
                               bits::mask(30));
        const Addr b = page | (rng.next() & ~l.pageMask() &
                               bits::mask(30));
        const DramCoord ca = m->coordOf(a);
        const DramCoord cb = m->coordOf(b);
        EXPECT_EQ(ca.channel, cb.channel);
        EXPECT_EQ(ca.bank, cb.bank);
        EXPECT_EQ(ca.row, cb.row);
    }
}

TEST_P(SchemeSeeds, FaeOnlyRewritesChannelBankBits)
{
    const AddressLayout l = AddressLayout::hynixGddr5();
    const auto m = mapping::makeScheme(Scheme::FAE, l, GetParam());
    const std::uint64_t targets = l.channel.positionMask() |
                                  l.bank.positionMask();
    XorShiftRng rng(GetParam());
    for (int i = 0; i < 300; ++i) {
        const Addr a = rng.next() & bits::mask(30);
        EXPECT_EQ(m->map(a) & ~targets, a & ~targets);
    }
}

TEST_P(SchemeSeeds, CompositionOfInvertiblesIsInvertible)
{
    const AddressLayout l = AddressLayout::hynixGddr5();
    const auto a = mapping::makeScheme(Scheme::PAE, l, GetParam());
    const auto b = mapping::makeScheme(Scheme::FAE, l, GetParam() + 1);
    const BitMatrix prod = a->matrix().multiply(b->matrix());
    EXPECT_TRUE(prod.invertible());
    // And it equals sequential application.
    XorShiftRng rng(GetParam());
    for (int i = 0; i < 100; ++i) {
        const Addr x = rng.next() & bits::mask(30);
        EXPECT_EQ(prod.apply(x), a->map(b->map(x)));
    }
}

// --- Registry mappers x layout presets -----------------------------------

TEST_P(SchemeSeeds, EveryRegisteredMapperInvertsOnEveryLayoutPreset)
{
    // For each buildable registered family on each layout preset:
    // random address batches must map one-to-one (decode via the
    // inverse recovers the address), stay inside the address space,
    // and decode to in-range channel/bank/row coordinates.
    for (const auto *org : mapping::layoutPresets()) {
        const AddressLayout l = mapping::makeLayout(org->key);
        const std::uint64_t mask =
            (std::uint64_t{1} << l.addrBits) - 1;
        for (const auto *f : mapping::mapperFamilies()) {
            if (f->needsProfiles)
                continue; // searched families: covered by the oracle
            std::string spec = "map:" + f->name;
            if (f->name == "perm")
                // order must name exactly the layout's fields.
                spec += l.vault.width ? ",order=RoCoBaVaCh"
                                      : ",order=RoCoBaCh";
            const auto m =
                mapping::makeMapper(spec, l, GetParam());
            ASSERT_TRUE(m->matrix().invertible())
                << org->key << " " << spec;
            const auto inv = m->matrix().inverse();
            ASSERT_TRUE(inv.has_value());
            XorShiftRng rng(GetParam() * 17 + 5);
            for (int i = 0; i < 200; ++i) {
                const Addr a = rng.next() & mask;
                const Addr mapped = m->map(a);
                EXPECT_EQ(mapped & ~mask, 0u)
                    << org->key << " " << spec;
                EXPECT_EQ(inv->apply(mapped), a);
                const DramCoord c = m->coordOf(a);
                EXPECT_LT(c.channel, l.numChannels());
                EXPECT_LT(c.bank, l.numBanksPerChannel());
                EXPECT_LT(c.row, l.numRows());
                EXPECT_LT(c.column, l.numColumns());
            }
        }
    }
}

// --- Cache vs reference model ------------------------------------------------

namespace {

/** Minimal reference: per-set LRU list of lines. */
class RefCache
{
  public:
    RefCache(unsigned sets, unsigned ways) : sets(sets), ways(ways),
                                             lru(sets)
    {
    }

    bool
    contains(Addr line) const
    {
        const auto &l = lru[setOf(line)];
        return std::find(l.begin(), l.end(), line) != l.end();
    }

    void
    touch(Addr line)
    {
        auto &l = lru[setOf(line)];
        l.remove(line);
        l.push_front(line);
        if (l.size() > ways)
            l.pop_back();
    }

  private:
    unsigned setOf(Addr line) const { return (line / 128) % sets; }

    unsigned sets, ways;
    std::vector<std::list<Addr>> lru;
};

} // namespace

TEST(CacheProperty, MatchesReferenceLruModel)
{
    CacheConfig cfg{4096, 4, 128, 64, false}; // 8 sets x 4 ways
    SetAssocCache cache(cfg);
    RefCache ref(cfg.numSets(), cfg.ways);
    XorShiftRng rng(99);

    for (int i = 0; i < 20000; ++i) {
        const Addr line = (rng.next() % 64) * 128; // 64 hot lines
        const bool expect_hit = ref.contains(line);
        const auto r = cache.access(line, false, 1);
        if (expect_hit) {
            ASSERT_EQ(r.kind, CacheAccessResult::Kind::Hit)
                << "iteration " << i;
            ref.touch(line);
        } else {
            ASSERT_NE(r.kind, CacheAccessResult::Kind::Hit)
                << "iteration " << i;
            // Fill immediately (no outstanding-miss window).
            CacheAccessResult ev;
            cache.fill(line, ev);
            ref.touch(line);
        }
    }
}

TEST(CacheProperty, NoRequestLostUnderRandomTraffic)
{
    CacheConfig cfg{2048, 2, 128, 8, false};
    SetAssocCache cache(cfg);
    XorShiftRng rng(7);
    std::uint64_t waiter = 0;
    std::uint64_t hits = 0, misses = 0, merges = 0, stalls = 0;
    std::set<Addr> outstanding;

    for (int i = 0; i < 50000; ++i) {
        const Addr line = (rng.next() % 256) * 128;
        const auto r = cache.access(line, false, ++waiter);
        switch (r.kind) {
          case CacheAccessResult::Kind::Hit:
            ++hits;
            break;
          case CacheAccessResult::Kind::Miss:
            ++misses;
            outstanding.insert(line);
            break;
          case CacheAccessResult::Kind::MergedMiss:
            ++merges;
            break;
          case CacheAccessResult::Kind::Stall:
            ++stalls;
            break;
        }
        // Randomly fill an outstanding line.
        if (!outstanding.empty() && rng.coin()) {
            const Addr fill = *outstanding.begin();
            outstanding.erase(outstanding.begin());
            CacheAccessResult ev;
            cache.fill(fill, ev);
        }
    }
    // Every allocated MSHR is either filled or still tracked, and the
    // stats ledger matches what we observed.
    EXPECT_EQ(cache.mshrInUse(), outstanding.size());
    EXPECT_EQ(cache.stats().hits, hits);
    EXPECT_EQ(cache.stats().misses, misses);
    EXPECT_EQ(cache.stats().mshrMerges, merges);
    EXPECT_EQ(cache.stats().mshrStalls, stalls);
    EXPECT_EQ(cache.stats().accesses, hits + misses + merges);
}

// --- NoC conservation ---------------------------------------------------------

TEST(NocProperty, AllInjectedPacketsDeliveredExactlyOnce)
{
    Crossbar xb(4, 4, 32, 16);
    XorShiftRng rng(123);
    std::map<std::uint64_t, unsigned> expected_output;
    std::vector<NocDelivery> done;
    std::uint64_t tag = 0;

    for (Cycle c = 0; c < 3000; ++c) {
        for (unsigned in = 0; in < 4; ++in) {
            if (tag < 500 && xb.canInject(in)) {
                const unsigned out =
                    static_cast<unsigned>(rng.below(4));
                const unsigned bytes =
                    rng.coin() ? 8 : 136;
                if (xb.inject(in, out, bytes, tag, c))
                    expected_output[tag++] = out;
            }
        }
        xb.tick(c, done);
    }
    ASSERT_EQ(done.size(), expected_output.size());
    std::set<std::uint64_t> seen;
    for (const auto &d : done) {
        EXPECT_TRUE(seen.insert(d.tag).second)
            << "duplicate " << d.tag;
        EXPECT_EQ(d.output, expected_output[d.tag]);
        EXPECT_GT(d.delivered, d.injected);
    }
}

// --- DRAM conservation ----------------------------------------------------------

TEST(DramProperty, EveryReadCompletesExactlyOnce)
{
    MemoryController mc(16, DramTiming::hynixGddr5(), 32);
    XorShiftRng rng(321);
    std::set<std::uint64_t> outstanding;
    std::vector<DramCompletion> done;
    std::uint64_t tag = 0;
    std::uint64_t writes = 0;

    Cycle now = 0;
    while (tag + writes < 2000 || !outstanding.empty()) {
        if (tag + writes < 2000 && mc.canAccept()) {
            DramRequest r;
            r.coord.bank = static_cast<unsigned>(rng.below(16));
            r.coord.row = static_cast<unsigned>(rng.below(64));
            r.write = rng.chance(1, 4);
            if (r.write) {
                ++writes;
            } else {
                r.tag = tag++;
                outstanding.insert(r.tag);
            }
            mc.enqueue(r, now);
        }
        mc.tick(++now, done);
        for (const auto &d : done) {
            ASSERT_EQ(outstanding.erase(d.tag), 1u)
                << "tag " << d.tag << " completed twice or never sent";
        }
        done.clear();
        ASSERT_LT(now, 10'000'000u) << "controller wedged";
    }
    EXPECT_EQ(mc.stats().reads, tag);
    EXPECT_EQ(mc.stats().writes, writes);
    EXPECT_EQ(mc.pending(), 0u);
}

TEST(DramProperty, ActivationsNeverExceedAccessesPlusConflicts)
{
    MemoryController mc(8, DramTiming::hynixGddr5());
    XorShiftRng rng(555);
    std::vector<DramCompletion> done;
    unsigned sent = 0;
    Cycle now = 0;
    while (sent < 1000) {
        if (mc.canAccept()) {
            DramRequest r;
            r.coord.bank = static_cast<unsigned>(rng.below(8));
            r.coord.row = static_cast<unsigned>(rng.below(4));
            r.tag = sent++;
            mc.enqueue(r, now);
        }
        mc.tick(++now, done);
        done.clear();
    }
    for (Cycle c = 0; c < 5000; ++c) {
        mc.tick(++now, done);
        done.clear();
    }
    const auto &s = mc.stats();
    EXPECT_LE(s.rowMisses, s.reads + s.writes);
    EXPECT_EQ(s.activations, s.rowMisses);
    EXPECT_LE(s.precharges, s.activations);
}

// --- Entropy symmetry ------------------------------------------------------------

TEST(EntropyProperty, BitComplementSymmetry)
{
    // H(p) == H(1-p): complementing every BVR leaves both window
    // metrics unchanged.
    XorShiftRng rng(777);
    std::vector<double> bvr(64), inv(64);
    for (std::size_t i = 0; i < bvr.size(); ++i) {
        bvr[i] = rng.uniform();
        inv[i] = 1.0 - bvr[i];
    }
    EXPECT_NEAR(windowBitEntropy(bvr, 12), windowBitEntropy(inv, 12),
                1e-9);
    EXPECT_NEAR(windowEntropy(bvr, 12), windowEntropy(inv, 12), 1e-9);
}

TEST(EntropyProperty, EntropyBoundedByOne)
{
    XorShiftRng rng(888);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> bvr(32);
        for (double &v : bvr)
            v = rng.uniform();
        for (unsigned w : {1u, 2u, 8u, 12u, 32u, 64u}) {
            const double h1 = windowEntropy(bvr, w);
            const double h2 = windowBitEntropy(bvr, w);
            EXPECT_GE(h1, 0.0);
            EXPECT_LE(h1, 1.0);
            EXPECT_GE(h2, 0.0);
            EXPECT_LE(h2, 1.0);
        }
    }
}

TEST(EntropyProperty, MappingCannotCreateEntropyFromConstants)
{
    // A constant address stream has zero entropy under any mapping —
    // BIMs redistribute information, they cannot create it.
    const AddressLayout l = AddressLayout::hynixGddr5();
    for (Scheme s : allSchemes()) {
        const auto m = mapping::makeScheme(s, l, 3);
        BvrAccumulator acc(30);
        for (int i = 0; i < 100; ++i)
            acc.add(m->map(0x12345680));
        for (double b : acc.bvrs()) {
            EXPECT_TRUE(b == 0.0 || b == 1.0);
        }
    }
}
