/**
 * @file
 * Unit tests for common/stats.hh.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace valley;

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, MeanMinMax)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.add(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(RunningStat, WeightedSamples)
{
    RunningStat s;
    s.addWeighted(2.0, 3);
    s.addWeighted(6.0, 1);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStat, ResetClearsState)
{
    RunningStat s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RatioStat, SafeOnZeroDenominator)
{
    RatioStat r;
    EXPECT_DOUBLE_EQ(r.value(), 0.0);
    r.num = 3;
    r.den = 4;
    EXPECT_DOUBLE_EQ(r.value(), 0.75);
}

TEST(Means, Arithmetic)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({2.0, 4.0}), 3.0);
}

TEST(Means, Harmonic)
{
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0}), 1.0);
    // HM of {1, 3} = 2 / (1 + 1/3) = 1.5
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 3.0}), 1.5);
    // Harmonic mean is dominated by the slow element.
    EXPECT_LT(harmonicMean({0.5, 8.0}), arithmeticMean({0.5, 8.0}));
}

TEST(Means, HarmonicRejectsNonPositive)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 0.0}), 0.0);
}

TEST(Means, Geometric)
{
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(geometricMean({5.0}), 5.0);
}
