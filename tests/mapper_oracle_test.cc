/**
 * @file
 * Differential oracle: the legacy `Scheme` enum path and the
 * registry spec path must be bit-identical — same BIM matrices on
 * every layout preset, same serialized `RunResult`s on every Table II
 * workload (and synth specs), same grid cells — and the new layout
 * presets must run end to end, searched mappers included.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "harness/experiment.hh"
#include "harness/result_cache.hh"
#include "mapping/address_mapper.hh"
#include "mapping/layout_registry.hh"
#include "mapping/mapper_registry.hh"
#include "search/searched_bim.hh"
#include "workloads/workload.hh"
#include "workloads/workload_set.hh"

using namespace valley;

namespace {

/**
 * Every oracle run uses a private cache directory: the enum and spec
 * paths must agree through the cache too (same keys, same hits), and
 * the developer's real cache must stay untouched.
 */
class MapperOracle : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("valley_oracle_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir);
        setenv("VALLEY_CACHE_DIR", dir.c_str(), 1);
        unsetenv("VALLEY_CACHE");
        harness::resultCacheResetForTesting();
    }

    void
    TearDown() override
    {
        unsetenv("VALLEY_CACHE_DIR");
        harness::resultCacheResetForTesting();
        std::filesystem::remove_all(dir);
    }

    std::filesystem::path dir;
};

/** The small scale every oracle simulation runs at. */
constexpr double kScale = 0.05;

} // namespace

TEST(MapperOracleMatrix, EnumAndSpecBuildIdenticalBimsOnEveryLayout)
{
    // The heart of the refactor: for every layout preset, every
    // buildable scheme and several seeds, `makeScheme` (legacy) and
    // `makeMapper(schemeSpec(s))` (registry) produce the same matrix
    // and the same display name.
    for (const auto *org : mapping::layoutPresets()) {
        const AddressLayout layout = mapping::makeLayout(org->key);
        for (Scheme s : allSchemes()) {
            for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
                const auto legacy =
                    mapping::makeScheme(s, layout, seed);
                const auto spec = mapping::makeMapper(
                    mapping::schemeSpec(s), layout, seed);
                EXPECT_TRUE(legacy->matrix() == spec->matrix())
                    << org->key << " " << schemeName(s) << " seed "
                    << seed;
                EXPECT_EQ(legacy->name(), spec->name());
                EXPECT_TRUE(spec->matrix().invertible());
            }
        }
        // The non-enum families are invertible everywhere too.
        const auto mop = mapping::makeMapper("map:mop", layout);
        EXPECT_TRUE(mop->matrix().invertible()) << org->key;
    }
}

TEST(MapperOracleMatrix, SearchedSchemesThrowInBothPaths)
{
    const AddressLayout l = AddressLayout::hynixGddr5();
    for (Scheme s : {Scheme::SBIM, Scheme::GBIM}) {
        EXPECT_THROW(mapping::makeScheme(s, l),
                     std::invalid_argument);
        EXPECT_THROW(
            mapping::makeMapper(mapping::schemeSpec(s), l),
            std::invalid_argument);
    }
}

TEST_F(MapperOracle, RunResultsBitIdenticalOnEveryTableIIWorkload)
{
    // All 16 Table II workloads under PM: the enum cell must
    // serialize byte-identically to the spec cell, and the spec cell
    // must be a cache hit of the enum cell (same v5 key).
    const SimConfig cfg = SimConfig::paperBaseline();
    for (const std::string &w : workloads::allSet()) {
        const RunResult a =
            harness::runOneCached(cfg, Scheme::PM, w, kScale, 1);
        const RunResult b =
            harness::runOneCached(cfg, "map:pm", w, kScale, 1);
        EXPECT_EQ(harness::serializeResult(a),
                  harness::serializeResult(b))
            << w;
    }
}

TEST_F(MapperOracle, RunResultsBitIdenticalAcrossSchemesAndSynthSpecs)
{
    const SimConfig cfg = SimConfig::paperBaseline();
    // Every buildable scheme on one workload...
    for (Scheme s : allSchemes()) {
        const RunResult a =
            harness::runOneCached(cfg, s, "MT", kScale, 1);
        const RunResult b = harness::runOneCached(
            cfg, mapping::schemeSpec(s), "MT", kScale, 1);
        EXPECT_EQ(harness::serializeResult(a),
                  harness::serializeResult(b))
            << schemeName(s);
    }
    // ...and a synth-spec workload (both grammars at once).
    const RunResult a = harness::runOneCached(
        cfg, Scheme::PAE, "synth:stencil3d", kScale, 1);
    const RunResult b = harness::runOneCached(
        cfg, "map:pae", "synth:stencil3d", kScale, 1);
    EXPECT_EQ(harness::serializeResult(a),
              harness::serializeResult(b));
}

TEST_F(MapperOracle, GridCellsBitIdenticalAcrossEnumAndSpecAxes)
{
    harness::GridOptions enum_axis;
    enum_axis.workloads = {"MT", "LU"};
    enum_axis.schemes = {Scheme::BASE, Scheme::PM, Scheme::PAE};
    enum_axis.scale = kScale;
    enum_axis.threads = 1;
    enum_axis.useCache = true;

    harness::GridOptions spec_axis = enum_axis;
    spec_axis.schemes.clear();
    spec_axis.mappers = {"map:base", "map:pm", "map:pae"};

    const harness::Grid ge = harness::runGrid(enum_axis);
    const harness::Grid gs = harness::runGrid(spec_axis);

    for (const std::string &w : {std::string("MT"),
                                 std::string("LU")}) {
        for (Scheme s : {Scheme::BASE, Scheme::PM, Scheme::PAE}) {
            // Enum lookup on the enum grid == spec lookup on the
            // spec grid — and the cross lookups agree too, because
            // the enum axis *is* the spec axis after normalization.
            EXPECT_EQ(harness::serializeResult(ge.at(w, s)),
                      harness::serializeResult(gs.at(
                          w, mapping::schemeSpec(s))))
                << w << " " << schemeName(s);
            EXPECT_EQ(harness::serializeResult(ge.at(
                          w, mapping::schemeSpec(s))),
                      harness::serializeResult(gs.at(w, s)));
        }
        EXPECT_EQ(ge.speedup(w, Scheme::PM),
                  gs.speedup(w, "map:pm"));
    }
    // Both spellings produced one normalized mapper axis.
    EXPECT_EQ(ge.options().mappers, gs.options().mappers);
}

TEST_F(MapperOracle, NewPresetsProduceInvertibleSearchedMappers)
{
    // SBIM/GBIM on each new hardware preset: the search must return
    // an invertible matrix whose mapping round-trips.
    for (const char *key : {"hbm2_4gb", "ddr4_4gb", "gddr6_2gb"}) {
        const AddressLayout layout = mapping::makeLayout(key);
        search::SearchOptions so = search::defaultOptions(layout);
        so.threads = 1;
        so.restarts = 1;
        so.iterations = 120;

        const auto sbim = search::setMapper(
            layout, workloads::WorkloadSet({"MT"}), so, kScale);
        EXPECT_EQ(sbim->name(), "SBIM") << key;
        ASSERT_TRUE(sbim->matrix().invertible()) << key;
        const auto gbim = search::setMapper(
            layout, workloads::WorkloadSet({"MT", "LU"}), so, kScale,
            "GBIM");
        EXPECT_EQ(gbim->name(), "GBIM") << key;
        ASSERT_TRUE(gbim->matrix().invertible()) << key;

        const auto inv = sbim->matrix().inverse();
        ASSERT_TRUE(inv.has_value()) << key;
        XorShiftRng rng(7);
        const std::uint64_t mask =
            (std::uint64_t{1} << layout.addrBits) - 1;
        for (int i = 0; i < 200; ++i) {
            const Addr a = rng.next() & mask;
            EXPECT_EQ(inv->apply(sbim->map(a)), a);
        }
    }
}

TEST_F(MapperOracle, LayoutAxisSweepsNewPresetsEndToEnd)
{
    // The layout becomes a grid axis: one grid per preset, each with
    // its own identity, each producing usable normalized metrics.
    harness::GridOptions o;
    o.workloads = {"MT"};
    o.mappers = {"map:base", "map:pm"};
    o.layouts = {"hbm2_4gb", "layout:ddr4_4gb", "gddr6_2gb"};
    o.scale = kScale;
    o.threads = 1;

    const auto grids = harness::runGrids(o);
    ASSERT_EQ(grids.size(), 3u);
    EXPECT_EQ(grids[0].layout, "layout:hbm2_4gb");
    EXPECT_EQ(grids[1].layout, "layout:ddr4_4gb");
    EXPECT_EQ(grids[2].layout, "layout:gddr6_2gb");
    for (const auto &lg : grids) {
        const RunResult &base = lg.grid.at("MT", "map:base");
        EXPECT_GT(base.cycles, 0u) << lg.layout;
        EXPECT_EQ(base.scheme, "BASE") << lg.layout;
        EXPECT_GT(lg.grid.speedup("MT", "map:pm"), 0.0) << lg.layout;
        EXPECT_FALSE(lg.grid.report().degraded()) << lg.layout;
    }
}
