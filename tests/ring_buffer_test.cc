/**
 * @file
 * Unit and property tests for the flat FIFO RingBuffer that replaced
 * std::deque on the simulator hot queues.
 */

#include <gtest/gtest.h>

#include <deque>
#include <string>

#include "common/ring_buffer.hh"
#include "common/rng.hh"

using namespace valley;

TEST(RingBuffer, StartsEmpty)
{
    RingBuffer<int> rb;
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.size(), 0u);
}

TEST(RingBuffer, FifoOrder)
{
    RingBuffer<int> rb;
    for (int i = 0; i < 100; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rb.front(), i);
        rb.pop_front();
    }
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, GrowsAcrossWrapBoundary)
{
    RingBuffer<int> rb;
    // Interleave pushes and pops so head is mid-buffer when growth
    // happens; the regrow must re-linearize correctly.
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 3; ++i)
            rb.push_back(next_in++);
        ASSERT_EQ(rb.front(), next_out);
        rb.pop_front();
        ++next_out;
    }
    while (!rb.empty()) {
        ASSERT_EQ(rb.front(), next_out++);
        rb.pop_front();
    }
    EXPECT_EQ(next_out, next_in);
}

TEST(RingBuffer, ReserveKeepsContents)
{
    RingBuffer<std::string> rb;
    rb.push_back("a");
    rb.push_back("b");
    rb.reserve(1000);
    EXPECT_GE(rb.capacity(), 1000u);
    EXPECT_EQ(rb.front(), "a");
    rb.pop_front();
    EXPECT_EQ(rb.front(), "b");
}

TEST(RingBuffer, ClearKeepsStorage)
{
    RingBuffer<int> rb(64);
    const std::size_t cap = rb.capacity();
    for (int i = 0; i < 50; ++i)
        rb.push_back(i);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), cap);
    rb.push_back(7);
    EXPECT_EQ(rb.front(), 7);
}

TEST(RingBuffer, EmplaceConstructsInPlace)
{
    RingBuffer<std::pair<unsigned, std::uint64_t>> rb;
    rb.emplace_back(3u, std::uint64_t{9});
    EXPECT_EQ(rb.front().first, 3u);
    EXPECT_EQ(rb.front().second, 9u);
}

TEST(RingBuffer, MatchesDequeUnderRandomTraffic)
{
    RingBuffer<std::uint64_t> rb;
    std::deque<std::uint64_t> ref;
    XorShiftRng rng(321);
    for (int i = 0; i < 100000; ++i) {
        if (ref.empty() || rng.coin()) {
            const std::uint64_t v = rng.next();
            rb.push_back(v);
            ref.push_back(v);
        } else {
            ASSERT_EQ(rb.front(), ref.front());
            rb.pop_front();
            ref.pop_front();
        }
        ASSERT_EQ(rb.size(), ref.size());
    }
}
