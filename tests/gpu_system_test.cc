/**
 * @file
 * Integration tests for the cycle-level GPU simulator: small kernels
 * run to completion, the metrics satisfy accounting invariants, runs
 * are deterministic, and the paper's headline effects appear.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_system.hh"
#include "harness/experiment.hh"

using namespace valley;

namespace {

/** A small single-kernel workload with a configurable pattern. */
std::unique_ptr<Workload>
miniWorkload(unsigned tbs, bool strided, bool writes = false)
{
    KernelParams p;
    p.name = "mini";
    p.numTbs = tbs;
    p.warpsPerTb = 4;
    p.computeGap = 4;
    p.instrsPerRequest = 10;
    Kernel k(p, [strided, writes](TbId tb, TraceBuilder &b) {
        for (unsigned w = 0; w < 4; ++w) {
            const Addr base = (Addr{tb} * 4 + w) * 4096;
            if (strided)
                b.accessStrided(w, base, 2048, 32, writes);
            else
                b.accessLine(w, base, writes);
            b.accessLine(w, base + 128, false);
        }
    });
    std::vector<Kernel> ks;
    ks.push_back(std::move(k));
    return std::make_unique<Workload>(
        WorkloadInfo{"mini", "MINI", "test", false}, std::move(ks));
}

SimConfig
quickConfig()
{
    SimConfig cfg = SimConfig::paperBaseline();
    cfg.maxCycles = 50'000'000;
    return cfg;
}

} // namespace

TEST(GpuSystem, TinyKernelCompletes)
{
    const SimConfig cfg = quickConfig();
    const auto mapper = mapping::makeScheme(Scheme::BASE, cfg.layout);
    GpuSystem sim(cfg, *mapper);
    const RunResult r = sim.run(*miniWorkload(4, false));
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.requests, 4u * 4 * 2); // 2 lines per warp
    EXPECT_GT(r.seconds, 0.0);
}

TEST(GpuSystem, RejectsMismatchedLayout)
{
    const SimConfig cfg = quickConfig();
    const auto mapper =
        mapping::makeScheme(Scheme::BASE, AddressLayout::stacked3d());
    EXPECT_THROW(GpuSystem(cfg, *mapper), std::invalid_argument);
}

TEST(GpuSystem, DeterministicAcrossRuns)
{
    const SimConfig cfg = quickConfig();
    const auto mapper = mapping::makeScheme(Scheme::PAE, cfg.layout, 1);
    GpuSystem sim(cfg, *mapper);
    const auto wl = miniWorkload(32, true);
    const RunResult a = sim.run(*wl);
    const RunResult b = sim.run(*wl);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.dram.activations, b.dram.activations);
}

TEST(GpuSystem, AccountingInvariants)
{
    const SimConfig cfg = quickConfig();
    const auto mapper = mapping::makeScheme(Scheme::BASE, cfg.layout);
    GpuSystem sim(cfg, *mapper);
    const RunResult r = sim.run(*miniWorkload(64, true, true));

    // Every coalesced transaction is exactly one L1 access.
    EXPECT_EQ(r.l1Accesses, r.requests);
    // LLC misses cannot exceed LLC accesses.
    EXPECT_LE(r.llcMisses, r.llcAccesses);
    // DRAM reads stem from LLC fill requests.
    EXPECT_LE(r.dram.reads, r.llcMisses);
    // Instructions follow the declared ratio.
    EXPECT_EQ(r.instructions,
              static_cast<std::uint64_t>(r.requests * 10));
    // Power must be populated and positive.
    EXPECT_GT(r.systemPowerW, 0.0);
    EXPECT_GT(r.gpuPower.staticW, 0.0);
    EXPECT_GE(r.dramPower.totalW(), r.dramPower.backgroundW);
}

TEST(GpuSystem, ParallelismMetricsWithinUnitCounts)
{
    const SimConfig cfg = quickConfig();
    const auto mapper = mapping::makeScheme(Scheme::FAE, cfg.layout, 1);
    GpuSystem sim(cfg, *mapper);
    const RunResult r = sim.run(*miniWorkload(64, true));
    EXPECT_GE(r.llcParallelism, 1.0);
    EXPECT_LE(r.llcParallelism, cfg.llcSlices);
    EXPECT_GE(r.channelParallelism, 1.0);
    EXPECT_LE(r.channelParallelism, cfg.layout.numChannels());
    EXPECT_LE(r.bankParallelism, cfg.layout.numBanksPerChannel());
    EXPECT_GE(r.rowBufferHitRate, 0.0);
    EXPECT_LE(r.rowBufferHitRate, 1.0);
}

TEST(GpuSystem, MoreSmsRunFasterOnParallelWork)
{
    const auto wl = miniWorkload(256, false);
    SimConfig c12 = quickConfig();
    SimConfig c24 = SimConfig::withSms(24);
    c24.maxCycles = c12.maxCycles;
    const auto m12 = mapping::makeScheme(Scheme::FAE, c12.layout, 1);
    const RunResult r12 = GpuSystem(c12, *m12).run(*wl);
    const RunResult r24 = GpuSystem(c24, *m12).run(*wl);
    EXPECT_LT(r24.cycles, r12.cycles);
}

TEST(GpuSystem, ValleyPatternSerializesUnderBase)
{
    // All TBs hammer addresses whose channel bits are constant: BASE
    // must be much slower than FAE (the paper's core effect).
    KernelParams p;
    p.name = "camped";
    p.numTbs = 48;
    p.warpsPerTb = 4;
    p.computeGap = 4;
    p.instrsPerRequest = 10;
    Kernel k(p, [](TbId tb, TraceBuilder &b) {
        for (unsigned w = 0; w < 4; ++w)
            // Stride 16 KB: bits 7-13 constant (channel 0, one bank).
            b.accessStrided(w, (Addr{tb} * 4 + w) * 512 * 1024, 16384,
                            32, false);
    });
    std::vector<Kernel> ks;
    ks.push_back(std::move(k));
    const Workload wl(WorkloadInfo{"camped", "CAMP", "test", true},
                      std::move(ks));

    const SimConfig cfg = quickConfig();
    const auto base = mapping::makeScheme(Scheme::BASE, cfg.layout);
    const auto fae = mapping::makeScheme(Scheme::FAE, cfg.layout, 1);
    const RunResult rb = GpuSystem(cfg, *base).run(wl);
    const RunResult rf = GpuSystem(cfg, *fae).run(wl);
    EXPECT_GT(static_cast<double>(rb.cycles) /
                  static_cast<double>(rf.cycles),
              1.5);
    // FAE spreads the requests across channels.
    EXPECT_GT(rf.channelParallelism, rb.channelParallelism);
}

TEST(GpuSystem, ApkiMpkiDerivedMetrics)
{
    const SimConfig cfg = quickConfig();
    const auto mapper = mapping::makeScheme(Scheme::BASE, cfg.layout);
    GpuSystem sim(cfg, *mapper);
    const RunResult r = sim.run(*miniWorkload(32, false));
    EXPECT_NEAR(r.apki(),
                1000.0 * r.llcAccesses / r.instructions, 1e-9);
    EXPECT_NEAR(r.mpki(), 1000.0 * r.llcMisses / r.instructions,
                1e-9);
    EXPECT_LE(r.mpki(), r.apki());
}

TEST(GpuSystem, Stacked3dConfigRuns)
{
    SimConfig cfg = SimConfig::stacked3d();
    cfg.maxCycles = 50'000'000;
    const auto mapper = mapping::makeScheme(Scheme::PAE, cfg.layout, 1);
    GpuSystem sim(cfg, *mapper);
    const RunResult r = sim.run(*miniWorkload(64, true));
    EXPECT_GT(r.cycles, 0u);
    EXPECT_LE(r.channelParallelism, 64.0);
}

TEST(SimConfigT, PaperBaselineMatchesTableI)
{
    const SimConfig c = SimConfig::paperBaseline();
    EXPECT_EQ(c.numSms, 12u);
    EXPECT_EQ(c.maxThreadsPerSm, 1536u);
    EXPECT_EQ(c.maxWarpsPerSm, 48u);
    EXPECT_EQ(c.schedulersPerSm, 2u);
    EXPECT_EQ(c.l1.sizeBytes, 16u * 1024);
    EXPECT_EQ(c.llcSlices, 8u);
    EXPECT_EQ(c.llcSlice.sizeBytes, 64u * 1024); // 512 KB total
    EXPECT_EQ(c.layout.numChannels(), 4u);
    EXPECT_EQ(c.layout.numBanksPerChannel(), 16u);
    EXPECT_DOUBLE_EQ(c.smClockGhz, 1.4);
}

TEST(SimConfigT, SliceMappingCoversAllSlices)
{
    const SimConfig c = SimConfig::paperBaseline();
    EXPECT_EQ(c.slicesPerChannel(), 2u);
    std::vector<bool> hit(c.llcSlices, false);
    for (unsigned ch = 0; ch < 4; ++ch)
        for (unsigned bank = 0; bank < 16; ++bank)
            hit[c.sliceOf(DramCoord{ch, bank, 0, 0})] = true;
    for (unsigned s = 0; s < c.llcSlices; ++s)
        EXPECT_TRUE(hit[s]) << "slice " << s << " unreachable";
}

TEST(SimConfigT, WithSmsValidates)
{
    EXPECT_THROW(SimConfig::withSms(0), std::invalid_argument);
    EXPECT_EQ(SimConfig::withSms(48).numSms, 48u);
}

TEST(SimConfigT, SecondsForUsesSmClock)
{
    const SimConfig c = SimConfig::paperBaseline();
    EXPECT_NEAR(c.secondsFor(1'400'000'000ull), 1.0, 1e-9);
}
