/**
 * @file
 * Fault-tolerance tests for the three on-disk caches (results,
 * profiles, searched BIMs) and the shared atomic-IO layer beneath
 * them: corrupt lines — truncated tails, flipped checksums, wrong
 * field counts, stray NULs — must never abort a run. They are
 * skipped-and-quarantined (moved to `cache/quarantine/`, counted,
 * logged), the good entries still load, and the affected keys
 * degrade to cache misses that repopulate on the next store.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "bim/bit_matrix.hh"
#include "harness/atomic_io.hh"
#include "harness/profile_cache.hh"
#include "harness/result_cache.hh"
#include "search/sbim_cache.hh"

using namespace valley;

namespace {

void
resetAllCaches()
{
    harness::resultCacheResetForTesting();
    harness::profileCacheResetForTesting();
    search::sbimCacheResetForTesting();
}

/** Fresh cache dir per test; caches reset so they re-read it. */
class CacheRobustnessTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("valley_robust_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir);
        setenv("VALLEY_CACHE_DIR", dir.c_str(), 1);
        unsetenv("VALLEY_CACHE");
        resetAllCaches();
    }

    void
    TearDown() override
    {
        resetAllCaches(); // drop this dir's entries from memory
        unsetenv("VALLEY_CACHE_DIR");
        std::filesystem::remove_all(dir);
    }

    /** Append raw bytes (possibly with NULs) to a cache file. */
    static void
    appendRaw(const std::string &path, const std::string &bytes)
    {
        std::ofstream out(path,
                          std::ios::app | std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    static std::string
    readAll(const std::string &path)
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    }

    std::string
    quarantinePath(const std::string &cache_path) const
    {
        return harness::cacheDir() + "/quarantine/" +
               std::filesystem::path(cache_path).filename().string();
    }

    std::filesystem::path dir;
};

RunResult
sampleResult(const std::string &workload)
{
    RunResult r;
    r.workload = workload;
    r.scheme = "BASE";
    r.cycles = 12345;
    r.seconds = 0.03125;
    r.llcMissRate = 1.0 / 3.0;
    r.systemPowerW = 0.91829583405448945;
    return r;
}

} // namespace

TEST(AtomicIo, ChecksummedRecordRoundTrips)
{
    const std::string rec =
        harness::checksummedRecord("v9;some;key", "1 2 3.5");
    ASSERT_FALSE(rec.empty());
    EXPECT_EQ(rec.back(), '\n');
    const auto parsed = harness::parseChecksummedRecord(
        rec.substr(0, rec.size() - 1));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->first, "v9;some;key");
    EXPECT_EQ(parsed->second, "1 2 3.5");
}

TEST(AtomicIo, ParseRejectsTamperedTruncatedAndNulLines)
{
    std::string rec = harness::checksummedRecord("k", "payload");
    rec.pop_back(); // strip '\n'

    std::string flipped = rec;
    flipped[2] = flipped[2] == 'x' ? 'y' : 'x'; // corrupt payload
    EXPECT_FALSE(harness::parseChecksummedRecord(flipped));

    EXPECT_FALSE(harness::parseChecksummedRecord(
        rec.substr(0, rec.size() / 2))); // torn append
    EXPECT_FALSE(harness::parseChecksummedRecord("k|payload"));
    EXPECT_FALSE(harness::parseChecksummedRecord(
        "k|payload|cnothexnothexnot!"));
    std::string nulled = rec;
    nulled[1] = '\0';
    EXPECT_FALSE(harness::parseChecksummedRecord(nulled));

    EXPECT_TRUE(harness::parseChecksummedRecord(rec));
}

TEST_F(CacheRobustnessTest, AtomicWriteFileReplacesWholeFile)
{
    const std::string path = (dir / "f.txt").string();
    ASSERT_TRUE(harness::atomicWriteFile(path, "first\n"));
    ASSERT_TRUE(harness::atomicWriteFile(path, "second\n"));
    EXPECT_EQ(readAll(path), "second\n");
    // No temp droppings left behind.
    std::size_t files = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        files += e.is_regular_file() ? 1 : 0;
    EXPECT_EQ(files, 1u);
}

TEST_F(CacheRobustnessTest, ResultCacheQuarantinesCorruptLines)
{
    const std::string k1 =
        harness::cacheKey("cfg", "MT", "BASE", 1, 1.0);
    const std::string k2 =
        harness::cacheKey("cfg", "LU", "BASE", 1, 1.0);
    const RunResult r1 = sampleResult("MT");
    const RunResult r2 = sampleResult("LU");
    harness::cacheStore(k1, r1);
    harness::cacheStore(k2, r2);
    resetAllCaches(); // force the next lookup to re-read disk

    const std::string path = harness::resultCachePath();
    const std::string v = harness::kResultCacheVersion;
    // Torn append: half a record, cut mid-payload.
    const std::string torn = harness::checksummedRecord(
        v + ";cfg;HS;BASE;1;1", harness::serializeResult(r1));
    appendRaw(path, torn.substr(0, torn.size() / 2) + "\n");
    // Bit rot: checksum no longer matches the payload.
    std::string rotted = harness::checksummedRecord(
        v + ";cfg;SC;BASE;1;1", harness::serializeResult(r2));
    rotted[rotted.find("BASE") + 1] = 'X';
    appendRaw(path, rotted);
    // Wrong field count: checksum fine, schema wrong.
    appendRaw(path, harness::checksummedRecord(
                        v + ";cfg;GS;BASE;1;1", "1 2 3"));
    // Stray NULs inside an otherwise current-version line.
    appendRaw(path, v + std::string(";cfg;NW;BASE;1;1|pay") +
                        std::string(1, '\0') + "load|c0123456789abcdef\n");
    // A pre-checksum epoch line is stale, NOT corrupt: preserved.
    appendRaw(path, "v3;cfg;MT;BASE;1;1|1 2 3\n");

    const std::uint64_t before = harness::quarantinedLineCount();
    const auto hit1 = harness::cacheLookup(k1);
    ASSERT_TRUE(hit1.has_value()); // good lines survive the cleanup
    EXPECT_EQ(*hit1, r1);
    const auto hit2 = harness::cacheLookup(k2);
    ASSERT_TRUE(hit2.has_value());
    EXPECT_EQ(*hit2, r2);
    EXPECT_EQ(harness::quarantinedLineCount(), before + 4);

    // The corrupt lines moved to quarantine; the rewritten cache file
    // keeps the good and the stale lines only.
    const std::string qfile = quarantinePath(path);
    ASSERT_TRUE(std::filesystem::exists(qfile));
    const std::string quarantined = readAll(qfile);
    EXPECT_NE(quarantined.find(";cfg;GS;"), std::string::npos);
    const std::string cleaned = readAll(path);
    EXPECT_EQ(cleaned.find(";cfg;GS;"), std::string::npos);
    EXPECT_EQ(cleaned.find('\0'), std::string::npos);
    EXPECT_NE(cleaned.find("v3;cfg;MT;"), std::string::npos);

    // The corrupted cells degraded to misses and repopulate.
    const std::string k3 =
        harness::cacheKey("cfg", "HS", "BASE", 1, 1.0);
    EXPECT_FALSE(harness::cacheLookup(k3).has_value());
    harness::cacheStore(k3, sampleResult("HS"));
    resetAllCaches();
    EXPECT_TRUE(harness::cacheLookup(k3).has_value());
}

TEST_F(CacheRobustnessTest, ProfileCacheQuarantinesCorruptLines)
{
    const std::string key = harness::profileCacheKey(
        "MT", "", 12, 32, EntropyMetric::BitProbability, 1.0);
    EntropyProfile p;
    p.weight = 7;
    p.perBit = {0.25, 1.0 / 3.0, 1.0};
    harness::profileCacheStore(key, p);
    resetAllCaches();

    const std::string path = harness::profileCachePath();
    const std::string v = harness::kProfileCacheVersion;
    // Valid checksum, impossible payload (2 bits declared, 1 given).
    appendRaw(path, harness::checksummedRecord(v + ";LU;identity",
                                               "7 2 0.5"));
    // Torn record.
    const std::string torn =
        harness::checksummedRecord(v + ";GS;identity", "7 1 0.5");
    appendRaw(path, torn.substr(0, torn.size() - 6) + "\n");

    const std::uint64_t before = harness::quarantinedLineCount();
    const auto hit = harness::profileCacheLookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->weight, p.weight);
    EXPECT_EQ(hit->perBit, p.perBit);
    EXPECT_EQ(harness::quarantinedLineCount(), before + 2);
    EXPECT_TRUE(std::filesystem::exists(quarantinePath(path)));
}

TEST_F(CacheRobustnessTest, SbimCacheQuarantinesCorruptLines)
{
    search::SearchResult good;
    good.bim = BitMatrix::identity(8);
    good.cost = 0.125;
    good.identityCost = 0.5;
    good.targetEntropy = {0.75, 0.875};
    const std::string key =
        std::string(search::kSbimCacheVersion) + ";robust;test;key";
    search::sbimCacheStore(key, good);
    resetAllCaches();

    const std::string path = search::sbimCachePath();
    const std::string v = search::kSbimCacheVersion;
    // Valid checksum, non-invertible matrix (all-zero rows): the
    // deserializer must refuse to hand the grid a garbage mapper.
    appendRaw(path,
              harness::checksummedRecord(
                  v + ";zeros", "4 0 0 0 0 1.0 2.0 1 0.5"));
    // Flipped checksum digit.
    std::string rotted =
        harness::checksummedRecord(v + ";rot", "1 1 0.1 0.2 0");
    const std::size_t crc_at = rotted.rfind("|c") + 2;
    rotted[crc_at] = rotted[crc_at] == '0' ? '1' : '0';
    appendRaw(path, rotted);

    const std::uint64_t before = harness::quarantinedLineCount();
    const auto hit = search::sbimCacheLookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->bim == good.bim);
    EXPECT_EQ(hit->cost, good.cost);
    EXPECT_EQ(hit->targetEntropy, good.targetEntropy);
    EXPECT_EQ(harness::quarantinedLineCount(), before + 2);
    EXPECT_TRUE(std::filesystem::exists(quarantinePath(path)));
    EXPECT_FALSE(
        search::sbimCacheLookup(v + ";zeros").has_value());
}

TEST_F(CacheRobustnessTest, ChecksummedRecordRejectsSeparatorBytes)
{
    // Enforced unconditionally, not by assert: an NDEBUG build must
    // not write a record that parses as two lines. Invalid inputs
    // yield an empty record (the caller's append becomes a no-op).
    EXPECT_TRUE(harness::checksummedRecord("bad|key", "p").empty());
    EXPECT_TRUE(harness::checksummedRecord("bad\nkey", "p").empty());
    EXPECT_TRUE(harness::checksummedRecord("k", "two\nlines").empty());
    EXPECT_TRUE(harness::checksummedRecord("k", "cr\rhere").empty());
    EXPECT_TRUE(
        harness::checksummedRecord("k", std::string("x\0y", 3))
            .empty());
    // '|' in the payload is legal (the checksum field is found with
    // rfind), and a valid record round-trips.
    const std::string rec =
        harness::checksummedRecord("k", "pipes|are|fine");
    ASSERT_FALSE(rec.empty());
    const auto parsed = harness::parseChecksummedRecord(
        rec.substr(0, rec.size() - 1)); // strip '\n'
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->first, "k");
    EXPECT_EQ(parsed->second, "pipes|are|fine");
}

TEST_F(CacheRobustnessTest, QuarantineRewriteKeepsConcurrentAppends)
{
    // Regression: the quarantine path rewrites the whole file; a
    // record appended between the read pass and the rename used to
    // be silently discarded. Both sides now hold the sidecar flock,
    // so every record appended by the writer thread must survive an
    // arbitrary interleaving of quarantining loads.
    const std::string path = (dir / "concurrent.csv").string();
    constexpr int kRecords = 200;
    std::thread writer([&path] {
        for (int i = 0; i < kRecords; ++i)
            harness::atomicAppend(
                path, harness::checksummedRecord(
                          "vT;k" + std::to_string(i), "p"));
    });
    const auto countKeys = [&path] {
        std::set<std::string> keys;
        harness::loadChecksummedRecords(
            path, "vT",
            [&keys](const std::string &k, const std::string &p) {
                if (p != "p")
                    return false;
                keys.insert(k);
                return true;
            });
        return keys.size();
    };
    for (int i = 0; i < 20; ++i) {
        // A fresh corrupt line forces every load down the
        // quarantine-rewrite path while the writer is appending.
        harness::atomicAppend(path, "vT;c|x|c0000000000000000\n");
        countKeys();
    }
    writer.join();
    EXPECT_EQ(countKeys(), static_cast<std::size_t>(kRecords));
}

TEST_F(CacheRobustnessTest, StaleLockSidecarIsCleanedAtCacheOpen)
{
    // A SIGKILL between sidecar creation and process death leaves the
    // `.<basename>.lock` dotfile behind with no live flock holder.
    std::filesystem::create_directories(dir);
    const std::string data = (dir / "victim.csv").string();
    const std::string lock = (dir / ".victim.csv.lock").string();
    appendRaw(data, harness::checksummedRecord("v;k", "payload"));
    appendRaw(lock, ""); // orphaned sidecar, nobody holds it

    ASSERT_TRUE(std::filesystem::exists(lock));
    EXPECT_TRUE(harness::cleanStaleLock(data));
    EXPECT_FALSE(std::filesystem::exists(lock));
    // Idempotent: nothing left to clean.
    EXPECT_FALSE(harness::cleanStaleLock(data));

    // loadChecksummedRecords performs the same sweep at every open
    // (its own FileLock then re-creates the sidecar and releases it,
    // so afterwards the file exists again but is unheld — stale by
    // definition, removable by the next probe).
    appendRaw(lock, "");
    std::size_t seen = 0;
    const harness::LoadStats stats = harness::loadChecksummedRecords(
        data, "v", [&](const std::string &, const std::string &) {
            ++seen;
            return true;
        });
    EXPECT_EQ(stats.accepted, 1u);
    EXPECT_EQ(seen, 1u);
    EXPECT_TRUE(harness::cleanStaleLock(data));
    EXPECT_FALSE(std::filesystem::exists(lock));
}

TEST_F(CacheRobustnessTest, LiveLockHolderIsLeftUntouched)
{
    std::filesystem::create_directories(dir);
    const std::string data = (dir / "held.csv").string();
    const std::string lock = (dir / ".held.csv.lock").string();

    // Hold the sidecar flock ourselves: the probe must see a live
    // holder and leave the file alone. flock(2) locks belong to the
    // open file description, so a second descriptor in the same
    // process genuinely contends.
    const int fd = ::open(lock.c_str(), O_WRONLY | O_CREAT, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::flock(fd, LOCK_EX), 0);

    EXPECT_FALSE(harness::cleanStaleLock(data));
    EXPECT_TRUE(std::filesystem::exists(lock));

    ::flock(fd, LOCK_UN);
    ::close(fd);
    EXPECT_TRUE(harness::cleanStaleLock(data));
    EXPECT_FALSE(std::filesystem::exists(lock));
}
