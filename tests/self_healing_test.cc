/**
 * @file
 * Tests for the self-healing execution stack: cooperative
 * cancellation tokens (parent/child composition, deadlines,
 * `VALLEY_DEADLINE_MS`), pool-level task skipping, per-cell retry
 * with bounded attempts, poisoned-cell quarantine (journal
 * round-trip, resume skip, report listing), and the ranked grid
 * report. The process-level supervisor has its own suite
 * (supervisor_test.cc); the end-to-end kill drill runs in CI via
 * `bench/supervise_smoke`.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/cancellation.hh"
#include "common/fault_inject.hh"
#include "common/thread_pool.hh"
#include "harness/experiment.hh"
#include "harness/grid_journal.hh"
#include "harness/grid_report.hh"
#include "harness/result_cache.hh"

using namespace valley;
using namespace valley::harness;

namespace {

/** Fresh cache dir per test; injector and deadline env cleaned. */
class SelfHealingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("valley_heal_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir);
        setenv("VALLEY_CACHE_DIR", dir.c_str(), 1);
        unsetenv("VALLEY_CACHE");
        unsetenv("VALLEY_CHECKPOINT");
        unsetenv("VALLEY_DEADLINE_MS");
    }

    void
    TearDown() override
    {
        fault::configure("");
        unsetenv("VALLEY_DEADLINE_MS");
        unsetenv("VALLEY_CACHE_DIR");
        std::filesystem::remove_all(dir);
    }

    /** Small, fast, deterministic grid. Caches off; the second cell
     * in grid order — hit 2 of the serial `grid_cell` site — is
     * (synth:strided, PM). */
    GridOptions
    gridOptions(unsigned threads = 1) const
    {
        GridOptions o;
        o.workloads = {"synth:strided", "synth:stencil3d"};
        o.schemes = {Scheme::BASE, Scheme::PM};
        o.scale = 0.25;
        o.useCache = false;
        o.threads = threads;
        return o;
    }

    static void
    expectBitIdentical(const Grid &a, const Grid &b)
    {
        for (const auto &w : a.options().workloads)
            for (Scheme s : a.options().schemes)
                EXPECT_EQ(serializeResult(a.at(w, s)),
                          serializeResult(b.at(w, s)))
                    << w << "/" << schemeName(s);
    }

    std::filesystem::path dir;
};

} // namespace

// ---------------------------------------------------------------
// CancelToken / Deadline semantics
// ---------------------------------------------------------------

TEST(CancelToken, CancelPropagatesToChildrenNotToParents)
{
    CancelToken parent;
    CancelToken child = parent.child();
    CancelToken grandchild = child.child();
    EXPECT_FALSE(parent.cancelled());
    EXPECT_FALSE(grandchild.cancelled());

    child.cancel();
    EXPECT_TRUE(child.cancelled());
    EXPECT_TRUE(grandchild.cancelled());
    // Cancellation flows down the tree only.
    EXPECT_FALSE(parent.cancelled());

    parent.cancel();
    EXPECT_TRUE(parent.cancelled());
}

TEST(CancelToken, CopiesShareOneCancellationState)
{
    CancelToken a;
    CancelToken b = a; // copy, not child
    b.cancel();
    EXPECT_TRUE(a.cancelled());
}

TEST(CancelToken, ExpiredDeadlineFiresAndChildCannotExtendParent)
{
    using namespace std::chrono;
    CancelToken parent;
    parent.setDeadline(Deadline::after(milliseconds(0)));
    EXPECT_TRUE(parent.cancelled());

    // A child arming its own generous deadline still observes the
    // parent's expired one: layers tighten budgets, never extend.
    CancelToken child = parent.child();
    child.setDeadline(Deadline::after(hours(24)));
    EXPECT_TRUE(child.cancelled());

    CancelToken fresh;
    fresh.setDeadline(Deadline::after(hours(24)));
    EXPECT_FALSE(fresh.cancelled());
    fresh.setDeadline(Deadline::never());
    EXPECT_FALSE(fresh.cancelled());
}

TEST(CancelToken, CheckThrowsCancelledOnlyWhenFired)
{
    CancelToken t;
    EXPECT_NO_THROW(t.check("should not fire"));
    t.cancel();
    EXPECT_THROW(t.check("fired"), Cancelled);
}

TEST(CancelToken, EnvDeadlineParsesPositiveIntegersOnly)
{
    unsetenv("VALLEY_DEADLINE_MS");
    EXPECT_FALSE(CancelToken::envDeadlineMs().has_value());

    setenv("VALLEY_DEADLINE_MS", "250", 1);
    const auto d = CancelToken::envDeadlineMs();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->count(), 250);

    setenv("VALLEY_DEADLINE_MS", "0", 1);
    EXPECT_FALSE(CancelToken::envDeadlineMs().has_value());
    setenv("VALLEY_DEADLINE_MS", "soon", 1);
    EXPECT_FALSE(CancelToken::envDeadlineMs().has_value());
    setenv("VALLEY_DEADLINE_MS", "", 1);
    EXPECT_FALSE(CancelToken::envDeadlineMs().has_value());
    unsetenv("VALLEY_DEADLINE_MS");
}

TEST(ThreadPool, FiredTokenDrainsTheRoundWithoutRunningTasks)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};

    CancelToken token;
    token.cancel();
    for (int i = 0; i < 16; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.run(&token); // must return promptly, tasks retired unrun
    EXPECT_EQ(ran.load(), 0);

    // The pool is unharmed: the next round (unfired token) runs.
    CancelToken calm;
    for (int i = 0; i < 16; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.run(&calm);
    EXPECT_EQ(ran.load(), 16);

    // And a token-free round still works after a cancelled one.
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.run();
    EXPECT_EQ(ran.load(), 17);
}

// ---------------------------------------------------------------
// Poisoned journal records
// ---------------------------------------------------------------

TEST_F(SelfHealingTest, PoisonedRecordRoundTripsWithNastyReason)
{
    const GridJournal j((dir / "j.csv").string());
    const std::string key = cacheKey("cfg", "MT", "PM", 1, 0.25);
    // Reason with every byte class the record format must escape.
    const std::string reason =
        "profile failed: pipe|sep 100% \"quoted\"\nsecond line";
    ASSERT_TRUE(j.recordPoisoned(key, reason));

    const JournalContents c = j.loadAll();
    EXPECT_TRUE(c.cells.empty());
    ASSERT_EQ(c.poisoned.size(), 1u);
    ASSERT_TRUE(c.poisoned.count(key));
    EXPECT_EQ(c.poisoned.at(key), reason);
}

TEST_F(SelfHealingTest, SuccessRecordTrumpsStalePoisonMark)
{
    const GridJournal j((dir / "j.csv").string());
    const std::string key = cacheKey("cfg", "MT", "PM", 1, 0.25);
    ASSERT_TRUE(j.recordPoisoned(key, "transient ENOSPC"));

    RunResult r;
    r.workload = "MT";
    r.scheme = "PM";
    r.cycles = 42;
    ASSERT_TRUE(j.record(key, r));

    // A later successful simulation supersedes the quarantine: the
    // cell loads as a normal resumed result, not as poisoned.
    const JournalContents c = j.loadAll();
    EXPECT_EQ(c.poisoned.size(), 0u);
    ASSERT_EQ(c.cells.size(), 1u);
    EXPECT_EQ(c.cells.at(key).cycles, 42u);
}

// ---------------------------------------------------------------
// Grid retry / poison / deadline degradation
// ---------------------------------------------------------------

TEST_F(SelfHealingTest, RetryRecoversAFlakyCellBitIdentically)
{
    const Grid reference = runGrid(gridOptions());

    fault::configure("grid_cell:2:throw"); // one-shot: retry passes
    GridOptions o = gridOptions();
    o.maxAttempts = 2;
    const Grid healed = runGrid(o);
    fault::configure("");

    expectBitIdentical(reference, healed);
    const GridReport &rep = healed.report();
    EXPECT_FALSE(rep.degraded());
    EXPECT_EQ(rep.retried, 1u);
    EXPECT_EQ(rep.ok, 3u);
    // The retried cell is ranked above the clean ones.
    ASSERT_FALSE(rep.cells.empty());
    EXPECT_EQ(rep.cells.front().status, CellStatus::Retried);
    EXPECT_EQ(rep.cells.front().attempts, 2u);
}

TEST_F(SelfHealingTest, RetryRecoversUnderParallelGridToo)
{
    const Grid reference = runGrid(gridOptions());

    // Which attempt the injector hits is scheduling-dependent with
    // two workers — the healed grid must be bit-identical either way.
    fault::configure("grid_cell:2:throw");
    GridOptions o = gridOptions(/*threads=*/2);
    o.maxAttempts = 2;
    const Grid healed = runGrid(o);
    fault::configure("");

    expectBitIdentical(reference, healed);
    EXPECT_FALSE(healed.report().degraded());
}

TEST_F(SelfHealingTest, ExhaustedAttemptsStillAbortWithoutPoisonMode)
{
    fault::configure("grid_cell:2:throw:every=1"); // fails forever
    GridOptions o = gridOptions();
    o.maxAttempts = 3;
    EXPECT_THROW(runGrid(o), fault::Injected);
}

TEST_F(SelfHealingTest, PoisonedCellQuarantinesAndGridCompletes)
{
    fault::configure("grid_cell:2:throw");
    GridOptions o = gridOptions();
    o.checkpoint = true;
    o.poison = true;
    o.report = true;
    const Grid degraded = runGrid(o);
    fault::configure("");

    const GridReport &rep = degraded.report();
    EXPECT_TRUE(rep.degraded());
    EXPECT_EQ(rep.poisoned, 1u);
    EXPECT_EQ(rep.ok, 3u);
    // The report names exactly the injected cell, reason included.
    ASSERT_FALSE(rep.cells.empty());
    const CellReport &worst = rep.cells.front();
    EXPECT_EQ(worst.status, CellStatus::Poisoned);
    EXPECT_EQ(worst.workload, "synth:strided");
    EXPECT_EQ(worst.scheme, "PM");
    EXPECT_NE(worst.reason.find("grid_cell"), std::string::npos);
    // --report wrote the ranked JSON artifact.
    EXPECT_TRUE(std::filesystem::exists(
        GridReport::pathFor(rep.gridId)));

    // Resume with the injector disarmed: the poison mark survives in
    // the journal, the cell is skipped (not re-simulated), the three
    // healthy cells come back from the journal.
    const Grid resumed = runGrid(o);
    const GridReport &rep2 = resumed.report();
    EXPECT_TRUE(rep2.degraded());
    EXPECT_EQ(rep2.poisoned, 1u);
    EXPECT_EQ(rep2.resumed, 3u);
    EXPECT_EQ(rep2.ok, 0u);
    ASSERT_FALSE(rep2.cells.empty());
    EXPECT_EQ(rep2.cells.front().status, CellStatus::Poisoned);
    EXPECT_EQ(rep2.cells.front().workload, "synth:strided");
    EXPECT_EQ(rep2.cells.front().scheme, "PM");

    // The healthy cells are bit-identical across the two runs.
    for (const auto &w : degraded.options().workloads)
        for (Scheme s : degraded.options().schemes) {
            if (w == "synth:strided" && s == Scheme::PM)
                continue;
            EXPECT_EQ(serializeResult(degraded.at(w, s)),
                      serializeResult(resumed.at(w, s)))
                << w << "/" << schemeName(s);
        }
}

TEST_F(SelfHealingTest, PreCancelledGridDegradesToDeadlineMissed)
{
    CancelToken token;
    token.cancel();
    GridOptions o = gridOptions();
    o.cancel = &token;
    const Grid g = runGrid(o);

    const GridReport &rep = g.report();
    EXPECT_TRUE(rep.deadlineHit);
    EXPECT_TRUE(rep.degraded());
    EXPECT_EQ(rep.deadlineMissed, 4u);
    EXPECT_EQ(rep.ok, 0u);
    for (const CellReport &c : rep.cells)
        EXPECT_EQ(c.status, CellStatus::DeadlineMissed);
}

TEST_F(SelfHealingTest, ResumeCompletesAnInterruptedGridBitIdentically)
{
    const Grid reference = runGrid(gridOptions());

    // First run dies at the 3rd cell (historical abort-on-failure
    // contract: maxAttempts=1, poison off) with the first two cells
    // already journaled.
    GridOptions o = gridOptions();
    o.checkpoint = true;
    {
        fault::configure("grid_cell:3:throw");
        EXPECT_THROW(runGrid(o), fault::Injected);
        fault::configure("");
    }

    // Second run resumes the journaled cells and finishes the rest;
    // the merged grid must be bit-identical to the fault-free one.
    const Grid resumed = runGrid(o);
    expectBitIdentical(reference, resumed);
    EXPECT_EQ(resumed.report().resumed, 2u);
    EXPECT_EQ(resumed.report().ok, 2u);
    EXPECT_FALSE(resumed.report().degraded());
}

// ---------------------------------------------------------------
// Grid report ranking / serialization
// ---------------------------------------------------------------

TEST(GridReportRank, FinalizeRanksMostDegradedFirstAndRecounts)
{
    GridReport rep;
    rep.gridId = "0123456789abcdef";
    const auto cell = [](const char *w, const char *s,
                         CellStatus st) {
        CellReport c;
        c.workload = w;
        c.scheme = s;
        c.status = st;
        c.attempts = 1;
        return c;
    };
    rep.cells = {
        cell("A", "BASE", CellStatus::Ok),
        cell("A", "PM", CellStatus::Resumed),
        cell("B", "BASE", CellStatus::Retried),
        cell("B", "PM", CellStatus::Poisoned),
        cell("C", "BASE", CellStatus::DeadlineMissed),
        cell("C", "PM", CellStatus::NotRun),
    };
    rep.finalize();

    ASSERT_EQ(rep.cells.size(), 6u);
    EXPECT_EQ(rep.cells[0].status, CellStatus::Poisoned);
    // NotRun is a transient alias for deadline-missed; both rank
    // above everything that actually produced a result.
    EXPECT_EQ(rep.cells[1].status, CellStatus::DeadlineMissed);
    EXPECT_EQ(rep.cells[2].status, CellStatus::NotRun);
    EXPECT_EQ(rep.cells[3].status, CellStatus::Retried);
    EXPECT_EQ(rep.cells[4].status, CellStatus::Resumed);
    EXPECT_EQ(rep.cells[5].status, CellStatus::Ok);

    EXPECT_EQ(rep.ok, 1u);
    EXPECT_EQ(rep.resumed, 1u);
    EXPECT_EQ(rep.retried, 1u);
    EXPECT_EQ(rep.poisoned, 1u);
    EXPECT_EQ(rep.deadlineMissed, 2u); // NotRun counts as missed
    EXPECT_TRUE(rep.degraded());
}

TEST(GridReportRank, JsonCarriesStatusNamesAndEscapedReasons)
{
    GridReport rep;
    rep.gridId = "feedbeeffeedbeef";
    CellReport bad;
    bad.workload = "MT";
    bad.scheme = "PM";
    bad.status = CellStatus::Poisoned;
    bad.attempts = 3;
    bad.reason = "said \"no\"\n\ttwice\\";
    CellReport good;
    good.workload = "LU";
    good.scheme = "BASE";
    good.status = CellStatus::Ok;
    good.attempts = 1;
    rep.cells = {good, bad};
    rep.finalize();

    const std::string json = rep.toJson();
    EXPECT_NE(json.find("\"grid_id\": \"feedbeeffeedbeef\""),
              std::string::npos);
    EXPECT_NE(json.find("\"status\": \"poisoned\""),
              std::string::npos);
    EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
    // The reason is JSON-escaped, not embedded raw.
    EXPECT_NE(json.find("said \\\"no\\\"\\n\\ttwice\\\\"),
              std::string::npos);
    EXPECT_EQ(json.find('\t'), std::string::npos);
    // Clean cells carry no reason key at all.
    EXPECT_EQ(json.find("\"reason\": \"\""), std::string::npos);
    EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
}

TEST(GridReportRank, StatusNamesAreStable)
{
    EXPECT_STREQ(cellStatusName(CellStatus::NotRun), "not_run");
    EXPECT_STREQ(cellStatusName(CellStatus::Ok), "ok");
    EXPECT_STREQ(cellStatusName(CellStatus::Resumed), "resumed");
    EXPECT_STREQ(cellStatusName(CellStatus::Retried), "retried");
    EXPECT_STREQ(cellStatusName(CellStatus::Poisoned), "poisoned");
    EXPECT_STREQ(cellStatusName(CellStatus::DeadlineMissed),
                 "deadline_missed");
}
