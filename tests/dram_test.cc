/**
 * @file
 * Unit tests for the FR-FCFS memory controller and DRAM system.
 */

#include <gtest/gtest.h>

#include "dram/dram_system.hh"

using namespace valley;

namespace {

DramTiming
fastTiming()
{
    // Small numbers make hand-computed schedules easy to verify.
    DramTiming t;
    t.tCL = 4;
    t.tRCD = 4;
    t.tRP = 4;
    t.tRAS = 8;
    t.tBurst = 2;
    t.tWR = 4;
    t.tRRD = 2;
    return t;
}

DramRequest
readReq(unsigned bank, unsigned row, std::uint64_t tag, unsigned col = 0)
{
    DramRequest r;
    r.coord = DramCoord{0, bank, row, col};
    r.write = false;
    r.tag = tag;
    return r;
}

/** Drive the controller until `tag` completes; returns finish cycle. */
Cycle
runUntilDone(MemoryController &mc, std::uint64_t tag, Cycle start,
             Cycle limit = 10000)
{
    std::vector<DramCompletion> done;
    for (Cycle c = start; c < limit; ++c) {
        mc.tick(c, done);
        for (const auto &d : done)
            if (d.tag == tag)
                return d.finished;
        done.clear();
    }
    ADD_FAILURE() << "request " << tag << " never completed";
    return 0;
}

} // namespace

TEST(MemoryController, ClosedBankReadTiming)
{
    MemoryController mc(4, fastTiming());
    ASSERT_TRUE(mc.enqueue(readReq(0, 5, 1), 0));
    // Activate at cycle 0 (tRCD=4), column at 4 (bus 2), data at
    // 4 + tCL + tBurst = 10.
    const Cycle done = runUntilDone(mc, 1, 0);
    EXPECT_EQ(done, 10u);
    EXPECT_EQ(mc.stats().activations, 1u);
    EXPECT_EQ(mc.stats().reads, 1u);
    EXPECT_EQ(mc.stats().rowMisses, 1u);
}

TEST(MemoryController, RowHitSkipsActivation)
{
    MemoryController mc(4, fastTiming());
    ASSERT_TRUE(mc.enqueue(readReq(0, 5, 1), 0));
    runUntilDone(mc, 1, 0);
    // Same row: no new activation, just a column access.
    ASSERT_TRUE(mc.enqueue(readReq(0, 5, 2, 3), 20));
    runUntilDone(mc, 2, 21);
    EXPECT_EQ(mc.stats().activations, 1u);
    EXPECT_EQ(mc.stats().rowMisses, 1u);
    EXPECT_DOUBLE_EQ(mc.stats().rowHitRate(), 0.5);
}

TEST(MemoryController, RowConflictPrechargesAndReactivates)
{
    MemoryController mc(4, fastTiming());
    ASSERT_TRUE(mc.enqueue(readReq(0, 5, 1), 0));
    runUntilDone(mc, 1, 0);
    ASSERT_TRUE(mc.enqueue(readReq(0, 9, 2), 20));
    runUntilDone(mc, 2, 21);
    EXPECT_EQ(mc.stats().activations, 2u);
    EXPECT_EQ(mc.stats().precharges, 1u);
    EXPECT_EQ(mc.stats().rowMisses, 2u);
    EXPECT_DOUBLE_EQ(mc.stats().rowHitRate(), 0.0);
}

TEST(MemoryController, FrFcfsPrefersRowHitOverOlderConflict)
{
    MemoryController mc(4, fastTiming());
    ASSERT_TRUE(mc.enqueue(readReq(0, 5, 1), 0));
    runUntilDone(mc, 1, 0);
    // Older request conflicts (row 9); younger hits the open row 5.
    ASSERT_TRUE(mc.enqueue(readReq(0, 9, 2), 20));
    ASSERT_TRUE(mc.enqueue(readReq(0, 5, 3, 1), 20));
    const Cycle hit_done = runUntilDone(mc, 3, 21);
    const Cycle conflict_done = runUntilDone(mc, 2, 21);
    EXPECT_LT(hit_done, conflict_done);
}

TEST(MemoryController, BanksOperateInParallel)
{
    MemoryController mc(4, fastTiming());
    // Two closed banks: their activations overlap (separated only by
    // tRRD), so total time is far below 2x the serial latency.
    ASSERT_TRUE(mc.enqueue(readReq(0, 5, 1), 0));
    ASSERT_TRUE(mc.enqueue(readReq(1, 7, 2), 0));
    const Cycle d1 = runUntilDone(mc, 1, 0);
    const Cycle d2 = runUntilDone(mc, 2, 0);
    EXPECT_LE(std::max(d1, d2), 16u); // serial would be ~20
}

TEST(MemoryController, WritesCountedAndNotCompleted)
{
    MemoryController mc(4, fastTiming());
    DramRequest w = readReq(0, 5, 7);
    w.write = true;
    ASSERT_TRUE(mc.enqueue(w, 0));
    std::vector<DramCompletion> done;
    for (Cycle c = 0; c < 100; ++c)
        mc.tick(c, done);
    EXPECT_TRUE(done.empty()); // writebacks produce no completions
    EXPECT_EQ(mc.stats().writes, 1u);
    EXPECT_EQ(mc.stats().reads, 0u);
}

TEST(MemoryController, QueueCapacityBackpressure)
{
    MemoryController mc(4, fastTiming(), /*queue_capacity=*/2);
    EXPECT_TRUE(mc.canAccept());
    ASSERT_TRUE(mc.enqueue(readReq(0, 1, 1), 0));
    ASSERT_TRUE(mc.enqueue(readReq(0, 2, 2), 0));
    EXPECT_FALSE(mc.canAccept());
    EXPECT_FALSE(mc.enqueue(readReq(0, 3, 3), 0));
    // Draining frees space again.
    runUntilDone(mc, 1, 0);
    EXPECT_TRUE(mc.canAccept());
}

TEST(MemoryController, PendingAndBanksWithPending)
{
    MemoryController mc(8, fastTiming());
    EXPECT_EQ(mc.pending(), 0u);
    EXPECT_EQ(mc.banksWithPending(), 0u);
    mc.enqueue(readReq(2, 1, 1), 0);
    mc.enqueue(readReq(2, 1, 2, 1), 0);
    mc.enqueue(readReq(5, 1, 3), 0);
    EXPECT_EQ(mc.pending(), 3u);
    EXPECT_EQ(mc.banksWithPending(), 2u);
}

TEST(MemoryController, DataBusSerializesColumnAccesses)
{
    // Both requests hit the same open row; the second is delayed by
    // the bus, not by bank timing.
    MemoryController mc(4, fastTiming());
    ASSERT_TRUE(mc.enqueue(readReq(0, 5, 1), 0));
    runUntilDone(mc, 1, 0);
    ASSERT_TRUE(mc.enqueue(readReq(0, 5, 2, 1), 20));
    ASSERT_TRUE(mc.enqueue(readReq(0, 5, 3, 2), 20));
    const Cycle d2 = runUntilDone(mc, 2, 21);
    const Cycle d3 = runUntilDone(mc, 3, 21);
    EXPECT_EQ(d3 - d2, fastTiming().tBurst);
}

TEST(MemoryController, LatencyAccounted)
{
    MemoryController mc(4, fastTiming());
    ASSERT_TRUE(mc.enqueue(readReq(0, 5, 1), 0));
    const Cycle done = runUntilDone(mc, 1, 0);
    EXPECT_EQ(mc.stats().latencySum, done);
}

TEST(DramChannelStats, RowHitRateClampsAndGuards)
{
    DramChannelStats s;
    EXPECT_DOUBLE_EQ(s.rowHitRate(), 0.0);
    s.reads = 10;
    s.rowMisses = 2;
    EXPECT_DOUBLE_EQ(s.rowHitRate(), 0.8);
    s.rowMisses = 50; // writeback-triggered activations can exceed
    EXPECT_DOUBLE_EQ(s.rowHitRate(), 0.0);
}

TEST(DramSystem, RoutesByChannel)
{
    DramSystem sys(4, 4, fastTiming());
    DramRequest r = readReq(0, 1, 1);
    r.coord.channel = 2;
    ASSERT_TRUE(sys.enqueue(r, 0));
    EXPECT_EQ(sys.channel(2).pending(), 1u);
    EXPECT_EQ(sys.channel(0).pending(), 0u);
    EXPECT_EQ(sys.channelsWithPending(), 1u);
}

TEST(DramSystem, AggregatesStatsAndCompletions)
{
    DramSystem sys(2, 4, fastTiming());
    DramRequest a = readReq(0, 1, 1);
    DramRequest b = readReq(1, 2, 2);
    b.coord.channel = 1;
    ASSERT_TRUE(sys.enqueue(a, 0));
    ASSERT_TRUE(sys.enqueue(b, 0));
    std::vector<DramCompletion> done;
    for (Cycle c = 0; c < 100 && done.size() < 2; ++c)
        sys.tick(c, done);
    ASSERT_EQ(done.size(), 2u);
    const DramChannelStats total = sys.totalStats();
    EXPECT_EQ(total.reads, 2u);
    EXPECT_EQ(total.activations, 2u);
}

TEST(DramSystem, ParallelismSamplingHelpers)
{
    DramSystem sys(4, 16, fastTiming());
    EXPECT_EQ(sys.channelsWithPending(), 0u);
    for (unsigned ch = 0; ch < 3; ++ch) {
        DramRequest r = readReq(ch % 16, 1, ch);
        r.coord.channel = ch;
        ASSERT_TRUE(sys.enqueue(r, 0));
    }
    EXPECT_EQ(sys.channelsWithPending(), 3u);
    EXPECT_EQ(sys.banksWithPending(), 3u);
    EXPECT_EQ(sys.totalPending(), 3u);
}

TEST(DramTiming, PresetsMatchTableI)
{
    const DramTiming t = DramTiming::hynixGddr5();
    EXPECT_EQ(t.tCL, 12u);
    EXPECT_EQ(t.tRCD, 12u);
    EXPECT_EQ(t.tRP, 12u);
    EXPECT_DOUBLE_EQ(t.clockGhz, 0.924);
    // Bandwidth check: 128 B per tBurst cycles at 924 MHz x 4 channels
    // = 118.3 GB/s as in Table I.
    const double bw =
        128.0 / (t.tBurst / (t.clockGhz * 1e9)) * 4 / 1e9;
    EXPECT_NEAR(bw, 118.3, 0.5);
}

TEST(DramTiming, Stacked3dBandwidth)
{
    // 64 vaults x 128 B / (16 cycles at 1.25 GHz) = 640 GB/s.
    const DramTiming t = DramTiming::stacked3d();
    const double bw =
        128.0 / (t.tBurst / (t.clockGhz * 1e9)) * 64 / 1e9;
    EXPECT_NEAR(bw, 640.0, 1.0);
}
