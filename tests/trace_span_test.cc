/**
 * @file
 * Tests for the Chrome trace-event span layer
 * (`src/common/trace_span.hh`): spans must cost nothing and record
 * nothing while disabled, stay balanced across exceptions and
 * explicit early `end()`, flush to well-formed Chrome trace JSON,
 * honor VALLEY_TRACE, and — the contract the whole harness leans
 * on — leave grid results bit-identical with tracing on or off.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/trace_span.hh"
#include "harness/experiment.hh"
#include "harness/result_cache.hh"

using namespace valley;

namespace {

/**
 * Minimal JSON well-formedness checker (objects, arrays, strings,
 * numbers, literals) — enough to catch unbalanced braces, stray
 * commas, and unescaped quotes in the flushed trace without pulling
 * in a JSON library.
 */
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : s(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos == s.size();
    }

  private:
    bool
    value()
    {
        if (pos >= s.size())
            return false;
        switch (s[pos]) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos; // '['
        skipWs();
        if (peek() == ']') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\')
                ++pos;
            ++pos;
        }
        if (pos >= s.size())
            return false;
        ++pos; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        return pos > start;
    }

    bool
    literal(const std::string &word)
    {
        if (s.compare(pos, word.size(), word) != 0)
            return false;
        pos += word.size();
        return true;
    }

    char
    peek() const
    {
        return pos < s.size() ? s[pos] : '\0';
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t' ||
                s[pos] == '\r'))
            ++pos;
    }

    const std::string &s;
    std::size_t pos = 0;
};

std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t at = haystack.find(needle);
         at != std::string::npos;
         at = haystack.find(needle, at + needle.size()))
        ++n;
    return n;
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::stringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Fresh trace state and a per-test output path. */
class TraceSpanTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        unsetenv("VALLEY_TRACE");
        trace::resetForTesting();
        path = std::filesystem::temp_directory_path() /
               ("valley_trace_test_" + std::to_string(::getpid()) +
                ".json");
        std::filesystem::remove(path);
    }

    void
    TearDown() override
    {
        trace::resetForTesting();
        unsetenv("VALLEY_TRACE");
        std::filesystem::remove(path);
    }

    std::filesystem::path path;
};

} // namespace

TEST_F(TraceSpanTest, DisabledSpansRecordNothing)
{
    ASSERT_FALSE(trace::enabled());
    {
        trace::Span a("outer", "test");
        trace::Span b(std::string("inner"), "test");
        trace::instant("marker", "test");
        b.end();
    }
    EXPECT_EQ(trace::pendingEventCountForTesting(), 0u);
    // Flush without a path fails cleanly and writes nothing.
    EXPECT_FALSE(trace::flush());
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(TraceSpanTest, FlushEmitsValidChromeTraceJson)
{
    trace::enable(path.string());
    {
        trace::Span outer("outer", "test");
        trace::Span inner(std::string("inner \"quoted\"\n"), "test");
        trace::instant("restart", "test");
    }
    EXPECT_EQ(trace::pendingEventCountForTesting(), 3u);
    ASSERT_TRUE(trace::flush());
    const std::string text = readFile(path);
    EXPECT_TRUE(JsonValidator(text).valid()) << text;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(countOccurrences(text, "\"ph\": \"X\""), 2u);
    EXPECT_EQ(countOccurrences(text, "\"ph\": \"i\""), 1u);
    EXPECT_NE(text.find("\"outer\""), std::string::npos);
    // Escaped quote survives, raw control chars do not.
    EXPECT_NE(text.find("inner \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(text.find("\"droppedEvents\": 0"), std::string::npos);
    // Flush drains the buffers.
    EXPECT_EQ(trace::pendingEventCountForTesting(), 0u);
}

TEST_F(TraceSpanTest, SpansStayBalancedAcrossExceptions)
{
    trace::enable(path.string());
    try {
        trace::Span s("doomed", "test");
        throw std::runtime_error("boom");
    } catch (const std::runtime_error &) {
    }
    ASSERT_TRUE(trace::flush());
    const std::string text = readFile(path);
    EXPECT_TRUE(JsonValidator(text).valid()) << text;
    // Complete events are emitted at destruction, so unwinding still
    // produces exactly one balanced event.
    EXPECT_EQ(countOccurrences(text, "\"ph\": \"X\""), 1u);
    EXPECT_NE(text.find("\"doomed\""), std::string::npos);
}

TEST_F(TraceSpanTest, ExplicitEndIsIdempotent)
{
    trace::enable(path.string());
    {
        trace::Span s("phase", "test");
        s.end();
        s.end(); // second end and the destructor must both no-op
    }
    EXPECT_EQ(trace::pendingEventCountForTesting(), 1u);
}

TEST_F(TraceSpanTest, DisableFreezesRecordingMidstream)
{
    trace::enable(path.string());
    trace::instant("before", "test");
    trace::disable();
    {
        trace::Span s("after", "test");
        trace::instant("after", "test");
    }
    EXPECT_EQ(trace::pendingEventCountForTesting(), 1u);
}

TEST_F(TraceSpanTest, InitFromEnvHonorsValleyTrace)
{
    setenv("VALLEY_TRACE", path.string().c_str(), 1);
    trace::initFromEnv();
    EXPECT_TRUE(trace::enabled());
    trace::instant("env", "test");
    ASSERT_TRUE(trace::flush());
    const std::string text = readFile(path);
    EXPECT_TRUE(JsonValidator(text).valid()) << text;
    EXPECT_NE(text.find("\"env\""), std::string::npos);
}

TEST_F(TraceSpanTest, GridResultsBitIdenticalWithTracingOnAndOff)
{
    // The observability layer must never feed back into computation:
    // the same grid, traced and untraced, serializes to identical
    // results byte for byte (the cache wire format is exhaustive —
    // cycles, power, energy — so string equality is bit identity).
    harness::GridOptions base;
    base.workloads = {"SC"};
    base.schemes = {Scheme::BASE, Scheme::PM};
    base.scale = 0.25;

    ASSERT_FALSE(trace::enabled());
    harness::GridOptions off = base;
    const harness::Grid untraced = harness::runGrid(std::move(off));

    trace::enable(path.string());
    harness::GridOptions on = base;
    const harness::Grid traced = harness::runGrid(std::move(on));
    ASSERT_TRUE(trace::flush());
    trace::disable();

    for (const std::string &w : base.workloads)
        for (Scheme s : base.schemes)
            EXPECT_EQ(harness::serializeResult(untraced.at(w, s)),
                      harness::serializeResult(traced.at(w, s)))
                << w;

    // And the traced run produced a loadable trace with cell spans.
    const std::string text = readFile(path);
    EXPECT_TRUE(JsonValidator(text).valid());
    EXPECT_NE(text.find("\"cat\": \"grid\""), std::string::npos);
    EXPECT_NE(text.find("cell SC/"), std::string::npos);
}
