/**
 * @file
 * Tests for the crash-restart supervisor (`harness::supervise`):
 * final exits pass through untouched, crashes — SIGKILL-grade
 * included — restart the child, the restart budget degrades to a
 * clean `exhausted` report, and exec failures count as crashes. The
 * children are tiny /bin/sh scripts using marker files to change
 * behavior between incarnations, exactly how a checkpointed grid
 * child "resumes" after a kill. The full valley_grid kill drill runs
 * in CI via `bench/supervise_smoke`.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/supervisor.hh"

using namespace valley;
using namespace valley::harness;

namespace {

/** Fast, quiet supervision for tests. */
SupervisorOptions
quiet(unsigned max_restarts = 4)
{
    SupervisorOptions o;
    o.maxRestarts = max_restarts;
    o.backoffMs = 0;
    o.log = false;
    return o;
}

std::vector<std::string>
shell(const std::string &script)
{
    return {"/bin/sh", "-c", script};
}

class SupervisorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("valley_supervisor_test_" +
               std::to_string(::getpid()));
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
        marker = (dir / "marker").string();
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir);
    }

    std::filesystem::path dir;
    std::string marker;
};

} // namespace

TEST_F(SupervisorTest, CleanExitPassesThroughWithoutRestart)
{
    const SuperviseOutcome out = supervise(shell("exit 0"), quiet());
    EXPECT_EQ(out.exitCode, 0);
    EXPECT_EQ(out.restarts, 0u);
    EXPECT_FALSE(out.exhausted);
}

TEST_F(SupervisorTest, NoRestartExitCodesAreFinalOutcomes)
{
    // 3 (deterministic grid failure) and 4 (degraded-but-complete)
    // are outcomes a rerun cannot change; the supervisor must not
    // burn its budget on them.
    for (int code : {1, 3, 4, 130}) {
        const SuperviseOutcome out = supervise(
            shell("exit " + std::to_string(code)), quiet());
        EXPECT_EQ(out.exitCode, code) << "code " << code;
        EXPECT_EQ(out.restarts, 0u) << "code " << code;
        EXPECT_FALSE(out.exhausted) << "code " << code;
    }
}

TEST_F(SupervisorTest, SigkilledChildIsRestartedAndRecovers)
{
    // First incarnation SIGKILLs itself after leaving a marker — the
    // shape of a crash mid-grid with the journal already flushed.
    // The second incarnation finds the marker and succeeds.
    const SuperviseOutcome out = supervise(
        shell("if [ -e " + marker + " ]; then exit 0; " +
              "else : > " + marker + "; kill -9 $$; fi"),
        quiet());
    EXPECT_EQ(out.exitCode, 0);
    EXPECT_EQ(out.restarts, 1u);
    EXPECT_FALSE(out.exhausted);
}

TEST_F(SupervisorTest, UnlistedExitCodeCountsAsACrash)
{
    // The fault injector's kill mode is _Exit(42): not a signal, but
    // not a listed outcome either — it must restart.
    const SuperviseOutcome out = supervise(
        shell("if [ -e " + marker + " ]; then exit 0; " +
              "else : > " + marker + "; exit 42; fi"),
        quiet());
    EXPECT_EQ(out.exitCode, 0);
    EXPECT_EQ(out.restarts, 1u);
    EXPECT_FALSE(out.exhausted);
}

TEST_F(SupervisorTest, HardCrashLoopExhaustsTheBudgetCleanly)
{
    const SuperviseOutcome out =
        supervise(shell("kill -9 $$"), quiet(/*max_restarts=*/2));
    EXPECT_TRUE(out.exhausted);
    EXPECT_EQ(out.restarts, 2u);
    EXPECT_EQ(out.exitCode, 128 + 9); // how the last child died
}

TEST_F(SupervisorTest, ExecFailureCountsAgainstTheBudget)
{
    const SuperviseOutcome out =
        supervise({(dir / "no_such_binary").string()},
                  quiet(/*max_restarts=*/1));
    EXPECT_TRUE(out.exhausted);
    EXPECT_EQ(out.restarts, 1u);
    EXPECT_EQ(out.exitCode, 127);
}
