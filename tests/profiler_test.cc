/**
 * @file
 * Tests for the batched parallel entropy profiler: the bit-sliced
 * pipeline must reproduce the scalar reference profile exactly, the
 * parallel run must be bit-identical to the serial one for every
 * suite workload, and the profile cache must round-trip profiles at
 * full precision.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/atomic_io.hh"
#include "harness/profile_cache.hh"
#include "harness/result_cache.hh"
#include "workloads/profiler.hh"

using namespace valley;

namespace {

/**
 * The scalar profiler the bit-sliced pipeline replaced: per-TB
 * `BvrAccumulator` walking every bit of every line, `map()` call per
 * line. Kept here as the oracle.
 */
EntropyProfile
scalarProfileKernel(const Kernel &kernel,
                    const workloads::ProfileOptions &opts)
{
    std::vector<std::vector<double>> tb_bvrs;
    tb_bvrs.reserve(kernel.numTbs());
    std::uint64_t requests = 0;
    for (TbId tb = 0; tb < kernel.numTbs(); ++tb) {
        BvrAccumulator acc(opts.numBits);
        const TbTrace trace = kernel.trace(tb);
        for (const WarpTrace &w : trace.warps)
            for (const MemInstr &instr : w.instrs)
                for (Addr line : instr.lines)
                    acc.add(opts.mapper ? opts.mapper->map(line)
                                        : line);
        requests += acc.requestCount();
        tb_bvrs.push_back(acc.bvrs());
    }
    return kernelProfile(tb_bvrs, opts.window, requests, opts.metric);
}

EntropyProfile
scalarProfileWorkload(const Workload &workload,
                      const workloads::ProfileOptions &opts)
{
    std::vector<EntropyProfile> per_kernel;
    for (const Kernel &k : workload.kernels())
        per_kernel.push_back(scalarProfileKernel(k, opts));
    return EntropyProfile::combine(per_kernel);
}

void
expectIdentical(const EntropyProfile &a, const EntropyProfile &b,
                const std::string &what)
{
    EXPECT_EQ(a.weight, b.weight) << what;
    ASSERT_EQ(a.perBit.size(), b.perBit.size()) << what;
    for (std::size_t i = 0; i < a.perBit.size(); ++i)
        ASSERT_EQ(a.perBit[i], b.perBit[i])
            << what << " bit " << i;
}

} // namespace

TEST(Profiler, SlicedMatchesScalarReferenceBitForBit)
{
    // The per-bit one-counts are exact integers on both paths, so the
    // profiles must agree exactly — with and without a remap.
    const AddressLayout layout = AddressLayout::hynixGddr5();
    const auto mapper = mapping::makeScheme(Scheme::PAE, layout, 1);
    for (const char *abbrev : {"MT", "SPMV"}) {
        const auto wl = workloads::make(abbrev, 0.25);
        const AddressMapper *mappers[] = {nullptr, mapper.get()};
        for (const AddressMapper *m : mappers) {
            workloads::ProfileOptions po;
            po.mapper = m;
            po.threads = 1;
            expectIdentical(scalarProfileWorkload(*wl, po),
                            workloads::profileWorkload(*wl, po),
                            std::string(abbrev) +
                                (m ? "+PAE" : "+none"));
        }
    }
}

TEST(Profiler, ParallelIsBitIdenticalToSerialForEverySuiteWorkload)
{
    for (const std::string &abbrev : workloads::allSet()) {
        const auto wl = workloads::make(abbrev, 0.25);
        workloads::ProfileOptions serial;
        serial.threads = 1;
        workloads::ProfileOptions parallel;
        parallel.threads = 3; // forced pool even on 1-core hosts
        expectIdentical(workloads::profileWorkload(*wl, serial),
                        workloads::profileWorkload(*wl, parallel),
                        abbrev);
    }
}

TEST(Profiler, ParallelKernelProfileMatchesSerial)
{
    // Single kernels split across TB ranges instead of kernels.
    const auto wl = workloads::make("GS", 0.5);
    workloads::ProfileOptions serial;
    serial.threads = 1;
    workloads::ProfileOptions parallel;
    parallel.threads = 4;
    expectIdentical(
        workloads::profileKernel(wl->kernels().front(), serial),
        workloads::profileKernel(wl->kernels().front(), parallel),
        "GS-K0");
}

TEST(Profiler, BvrDistributionMetricAlsoIdentical)
{
    // The incremental windowEntropy path feeds this metric; parallel
    // and serial runs must still agree exactly.
    const auto wl = workloads::make("LU", 0.25);
    workloads::ProfileOptions serial;
    serial.metric = EntropyMetric::BvrDistribution;
    serial.threads = 1;
    workloads::ProfileOptions parallel = serial;
    parallel.threads = 3;
    expectIdentical(workloads::profileWorkload(*wl, serial),
                    workloads::profileWorkload(*wl, parallel),
                    "LU bvr-distribution");
}

TEST(ProfileCache, KeyDistinguishesAllInputs)
{
    const auto base = harness::profileCacheKey(
        "MT", "PAE-1", 12, 30, EntropyMetric::BitProbability, 1.0);
    EXPECT_NE(base, harness::profileCacheKey(
                        "LU", "PAE-1", 12, 30,
                        EntropyMetric::BitProbability, 1.0));
    EXPECT_NE(base, harness::profileCacheKey(
                        "MT", "FAE-1", 12, 30,
                        EntropyMetric::BitProbability, 1.0));
    EXPECT_NE(base, harness::profileCacheKey(
                        "MT", "PAE-1", 16, 30,
                        EntropyMetric::BitProbability, 1.0));
    EXPECT_NE(base, harness::profileCacheKey(
                        "MT", "PAE-1", 12, 24,
                        EntropyMetric::BitProbability, 1.0));
    EXPECT_NE(base, harness::profileCacheKey(
                        "MT", "PAE-1", 12, 30,
                        EntropyMetric::BvrDistribution, 1.0));
    EXPECT_NE(base, harness::profileCacheKey(
                        "MT", "PAE-1", 12, 30,
                        EntropyMetric::BitProbability, 0.5));
}

TEST(ProfileCache, DiskFormatParsesAtFullPrecision)
{
    // Append a line in the on-disk format *before* the cache loads
    // its file, so the first lookup must come from the deserializer
    // rather than the in-memory shard. This is the only test that
    // exercises the parse path a fresh process depends on, so it
    // deliberately pins the CSV format.
    const std::string key = harness::profileCacheKey(
        "DISKTEST", "X", 12, 3, EntropyMetric::BitProbability, 1.0);
    {
        std::ostringstream payload;
        payload.precision(17);
        payload << 123456789 << " 3 " << 1.0 / 3.0 << ' '
                << 0.91829583405448945 << " 5e-324";
        harness::atomicAppend(
            harness::profileCachePath(),
            harness::checksummedRecord(key, payload.str()));
    }
    const auto hit = harness::profileCacheLookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->weight, 123456789u);
    ASSERT_EQ(hit->perBit.size(), 3u);
    EXPECT_EQ(hit->perBit[0], 1.0 / 3.0);
    EXPECT_EQ(hit->perBit[1], 0.91829583405448945);
    EXPECT_EQ(hit->perBit[2], 5e-324);
}

TEST(ProfileCache, StoreLookupRoundTripsAtFullPrecision)
{
    EntropyProfile p;
    p.perBit = {1.0 / 3.0, 0.0, 1.0, 0.91829583405448945, 5e-324};
    p.weight = 123456789;
    const std::string key = harness::profileCacheKey(
        "TESTONLY", "X", 12, 5, EntropyMetric::BitProbability, 1.0);
    harness::profileCacheStore(key, p);
    const auto hit = harness::profileCacheLookup(key);
    ASSERT_TRUE(hit.has_value());
    expectIdentical(p, *hit, "cache round trip");
}

TEST(ProfileCache, CachedWorkloadProfileMatchesDirect)
{
    const auto wl = workloads::make("NN", 0.25);
    workloads::ProfileOptions po;
    const EntropyProfile direct =
        workloads::profileWorkload(*wl, po);
    // First call may miss or hit a previous run's entry; either way
    // the deterministic profile must come back bit-identical.
    expectIdentical(
        direct, harness::profileWorkloadCached(*wl, po, 0.25),
        "cached vs direct");
    expectIdentical(
        direct, harness::profileWorkloadCached(*wl, po, 0.25),
        "cached second hit");
}
