/**
 * @file
 * Unit tests for the Micron-style DRAM power model and the
 * GPUWattch-style GPU power model.
 */

#include <gtest/gtest.h>

#include "power/dram_power.hh"
#include "power/gpu_power.hh"

using namespace valley;

TEST(DramPower, BackgroundScalesWithChannels)
{
    DramChannelStats s;
    const DramPowerParams p = DramPowerParams::hynixGddr5();
    const auto four = computeDramPower(s, 4, 1.0, p);
    const auto eight = computeDramPower(s, 8, 1.0, p);
    EXPECT_GT(four.backgroundW, 0.0);
    EXPECT_DOUBLE_EQ(eight.backgroundW, 2.0 * four.backgroundW);
    EXPECT_DOUBLE_EQ(four.activateW, 0.0);
    EXPECT_DOUBLE_EQ(four.readW, 0.0);
}

TEST(DramPower, ActivatePowerProportionalToActivations)
{
    DramChannelStats s;
    const DramPowerParams p = DramPowerParams::hynixGddr5();
    s.activations = 1'000'000;
    const auto one = computeDramPower(s, 4, 1.0, p);
    s.activations = 2'000'000;
    const auto two = computeDramPower(s, 4, 1.0, p);
    EXPECT_NEAR(two.activateW, 2.0 * one.activateW, 1e-9);
    // 1M activations x 55 nJ over 1 s = 55 mW.
    EXPECT_NEAR(one.activateW, 0.055, 1e-6);
}

TEST(DramPower, ShorterTimeMeansHigherPower)
{
    DramChannelStats s;
    s.reads = 1'000'000;
    const DramPowerParams p = DramPowerParams::hynixGddr5();
    const auto slow = computeDramPower(s, 4, 2.0, p);
    const auto fast = computeDramPower(s, 4, 1.0, p);
    EXPECT_NEAR(fast.readW, 2.0 * slow.readW, 1e-9);
}

TEST(DramPower, BreakdownSumsToTotal)
{
    DramChannelStats s;
    s.reads = 500'000;
    s.writes = 100'000;
    s.activations = 50'000;
    const auto b = computeDramPower(
        s, 4, 0.001, DramPowerParams::hynixGddr5());
    EXPECT_NEAR(b.totalW(), b.backgroundW + b.activateW + b.readW +
                                b.writeW,
                1e-12);
    EXPECT_GT(b.readW, b.writeW); // 5x the writes
}

TEST(DramPower, ZeroDurationIsSafe)
{
    DramChannelStats s;
    s.reads = 100;
    const auto b = computeDramPower(
        s, 4, 0.0, DramPowerParams::hynixGddr5());
    EXPECT_DOUBLE_EQ(b.totalW(), 0.0);
}

TEST(DramPower, PeakBandwidthPowerIsGddr5Scale)
{
    // Full 118 GB/s for one second: ~924M transactions of 128 B with
    // a 50% row hit rate. The paper's Fig. 16 y-axis tops out around
    // 60 W — the model must land in that regime, not at 5 W or 500 W.
    DramChannelStats s;
    s.reads = 740'000'000;
    s.writes = 185'000'000;
    s.activations = 460'000'000;
    const auto b = computeDramPower(
        s, 4, 1.0, DramPowerParams::hynixGddr5());
    EXPECT_GT(b.totalW(), 30.0);
    EXPECT_LT(b.totalW(), 80.0);
}

TEST(DramPower, Stacked3dCheaperPerBit)
{
    DramChannelStats s;
    s.reads = 1'000'000;
    const auto conv = computeDramPower(
        s, 4, 1.0, DramPowerParams::hynixGddr5());
    const auto tsv = computeDramPower(
        s, 4, 1.0, DramPowerParams::stacked3d());
    EXPECT_LT(tsv.readW, conv.readW);
}

TEST(GpuPower, StaticScalesWithSmCount)
{
    GpuActivityCounts a;
    const GpuPowerParams p = GpuPowerParams::gtx480Class();
    const auto g12 = computeGpuPower(a, 12, 1.0, p);
    const auto g24 = computeGpuPower(a, 24, 1.0, p);
    EXPECT_DOUBLE_EQ(g24.staticW - g12.staticW,
                     12 * p.staticWattsPerSm);
    EXPECT_DOUBLE_EQ(g12.dynamicW, 0.0);
}

TEST(GpuPower, DynamicProportionalToActivity)
{
    GpuActivityCounts a;
    a.instructions = 1'000'000'000;
    a.l1Accesses = 10'000'000;
    a.llcAccesses = 5'000'000;
    a.nocFlits = 20'000'000;
    const GpuPowerParams p = GpuPowerParams::gtx480Class();
    const auto one = computeGpuPower(a, 12, 1.0, p);
    a.instructions *= 2;
    a.l1Accesses *= 2;
    a.llcAccesses *= 2;
    a.nocFlits *= 2;
    const auto two = computeGpuPower(a, 12, 1.0, p);
    EXPECT_NEAR(two.dynamicW, 2.0 * one.dynamicW, 1e-9);
}

TEST(GpuPower, ZeroDurationKeepsStaticOnly)
{
    GpuActivityCounts a;
    a.instructions = 100;
    const auto g =
        computeGpuPower(a, 12, 0.0, GpuPowerParams::gtx480Class());
    EXPECT_GT(g.staticW, 0.0);
    EXPECT_DOUBLE_EQ(g.dynamicW, 0.0);
}

TEST(SystemPower, SumOfGpuAndDram)
{
    GpuPowerBreakdown g;
    g.staticW = 40.0;
    g.dynamicW = 20.0;
    DramPowerBreakdown d;
    d.backgroundW = 10.0;
    d.activateW = 5.0;
    EXPECT_DOUBLE_EQ(systemPowerW(g, d), 75.0);
}

TEST(SystemPower, DramShareStaysBelow40Percent)
{
    // Footnote 3: DRAM is up to ~40% of system power. Check a busy
    // operating point of the default models.
    GpuActivityCounts a;
    a.instructions = 500'000'000'000ull / 1000; // 0.5 G over 1 ms
    a.l1Accesses = 5'000'000;
    a.llcAccesses = 4'000'000;
    a.nocFlits = 20'000'000;
    const auto g = computeGpuPower(a, 12, 0.001,
                                   GpuPowerParams::gtx480Class());
    DramChannelStats s;
    s.reads = 700'000;
    s.writes = 150'000;
    s.activations = 300'000;
    const auto d = computeDramPower(s, 4, 0.001,
                                    DramPowerParams::hynixGddr5());
    const double share = d.totalW() / systemPowerW(g, d);
    EXPECT_LT(share, 0.45);
    EXPECT_GT(share, 0.10);
}
