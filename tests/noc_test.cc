/**
 * @file
 * Unit tests for the input-queued crossbar NoC.
 */

#include <gtest/gtest.h>

#include "noc/crossbar.hh"

using namespace valley;

namespace {

/** Tick until `n` deliveries arrive; returns them. */
std::vector<NocDelivery>
run(Crossbar &xb, Cycle start, std::size_t n, Cycle limit = 1000)
{
    std::vector<NocDelivery> done;
    for (Cycle c = start; c <= limit && done.size() < n; ++c)
        xb.tick(c, done);
    EXPECT_EQ(done.size(), n);
    return done;
}

} // namespace

TEST(Crossbar, SingleFlitPacketDelivery)
{
    Crossbar xb(2, 2, 32);
    ASSERT_TRUE(xb.inject(0, 1, 8, 42, 0));
    const auto done = run(xb, 1, 1);
    EXPECT_EQ(done[0].tag, 42u);
    EXPECT_EQ(done[0].output, 1u);
    // 1 flit: grabbed at cycle 1, tail passes at cycle 2.
    EXPECT_EQ(done[0].delivered, 2u);
}

TEST(Crossbar, MultiFlitPacketOccupiesOutput)
{
    Crossbar xb(2, 2, 32);
    // 128 B payload + 8 B header = 136 B -> 5 flits of 32 B.
    ASSERT_TRUE(xb.inject(0, 0, 136, 1, 0));
    const auto done = run(xb, 1, 1);
    EXPECT_EQ(done[0].delivered, 6u); // 1 (arb) + 5 flits
}

TEST(Crossbar, ZeroByteSinglePacketStillOneFlit)
{
    Crossbar xb(1, 1, 32);
    ASSERT_TRUE(xb.inject(0, 0, 0, 1, 0));
    const auto done = run(xb, 1, 1);
    EXPECT_GE(done[0].delivered, 2u);
}

TEST(Crossbar, OutputContentionSerializes)
{
    Crossbar xb(2, 2, 32);
    // Two inputs to the same output: transfers serialize.
    ASSERT_TRUE(xb.inject(0, 0, 128, 1, 0));
    ASSERT_TRUE(xb.inject(1, 0, 128, 2, 0));
    const auto done = run(xb, 1, 2);
    EXPECT_EQ(done[1].delivered - done[0].delivered, 4u);
}

TEST(Crossbar, DistinctOutputsProceedInParallel)
{
    Crossbar xb(2, 2, 32);
    ASSERT_TRUE(xb.inject(0, 0, 128, 1, 0));
    ASSERT_TRUE(xb.inject(1, 1, 128, 2, 0));
    const auto done = run(xb, 1, 2);
    EXPECT_EQ(done[0].delivered, done[1].delivered);
}

TEST(Crossbar, HeadOfLineBlocking)
{
    Crossbar xb(2, 2, 32);
    // Input 0: head packet to output 0 (contended), second to output 1
    // (free) — the second must wait for the head (input-queued HoL).
    ASSERT_TRUE(xb.inject(1, 0, 512, 1, 0)); // long hog via input 1
    std::vector<NocDelivery> scratch;
    xb.tick(1, scratch); // let the hog win arbitration
    ASSERT_TRUE(xb.inject(0, 0, 32, 2, 1));
    ASSERT_TRUE(xb.inject(0, 1, 32, 3, 1));
    std::vector<NocDelivery> done;
    for (Cycle c = 2; c < 100 && done.size() < 3; ++c)
        xb.tick(c, done);
    ASSERT_EQ(done.size(), 3u);
    // Packet 3 (to the free output) still delivered after packet 2
    // was unblocked.
    Cycle t2 = 0, t3 = 0;
    for (const auto &d : done) {
        if (d.tag == 2)
            t2 = d.delivered;
        if (d.tag == 3)
            t3 = d.delivered;
    }
    EXPECT_GT(t3, t2 - 2);
}

TEST(Crossbar, QueueDepthBackpressure)
{
    Crossbar xb(1, 1, 32, /*queue_depth=*/2);
    EXPECT_TRUE(xb.inject(0, 0, 32, 1, 0));
    EXPECT_TRUE(xb.inject(0, 0, 32, 2, 0));
    EXPECT_FALSE(xb.canInject(0));
    EXPECT_FALSE(xb.inject(0, 0, 32, 3, 0));
    EXPECT_EQ(xb.stats().rejects, 1u);
}

TEST(Crossbar, LatencyStatistics)
{
    Crossbar xb(1, 1, 32);
    ASSERT_TRUE(xb.inject(0, 0, 32, 1, 0));
    run(xb, 1, 1);
    EXPECT_EQ(xb.stats().packets, 1u);
    EXPECT_EQ(xb.stats().flits, 1u);
    EXPECT_GT(xb.stats().avgLatency(), 0.0);
}

TEST(Crossbar, FairnessUnderSymmetricLoad)
{
    // Round-robin start pointer must not starve any input.
    Crossbar xb(4, 1, 32);
    std::vector<NocDelivery> done;
    unsigned injected[4] = {0, 0, 0, 0};
    unsigned delivered[4] = {0, 0, 0, 0};
    for (Cycle c = 0; c < 400; ++c) {
        for (unsigned in = 0; in < 4; ++in)
            if (xb.canInject(in) && injected[in] < 50) {
                xb.inject(in, 0, 32, in, c);
                ++injected[in];
            }
        xb.tick(c, done);
    }
    for (const auto &d : done)
        ++delivered[d.tag];
    for (unsigned in = 0; in < 4; ++in)
        EXPECT_GT(delivered[in], 30u) << "input " << in;
}

TEST(Crossbar, ThroughputBoundedByChannelWidth)
{
    // One output of 32 B/cycle: 100 packets of 128 B take >= 400
    // cycles of bus time.
    Crossbar xb(1, 1, 32, 512);
    for (unsigned i = 0; i < 100; ++i)
        ASSERT_TRUE(xb.inject(0, 0, 128, i, 0));
    std::vector<NocDelivery> done;
    Cycle last = 0;
    for (Cycle c = 1; c < 2000 && done.size() < 100; ++c) {
        xb.tick(c, done);
        if (!done.empty())
            last = done.back().delivered;
    }
    ASSERT_EQ(done.size(), 100u);
    EXPECT_GE(last, 400u);
}

TEST(Crossbar, PendingCount)
{
    Crossbar xb(2, 2, 32);
    EXPECT_EQ(xb.pending(), 0u);
    xb.inject(0, 0, 32, 1, 0);
    xb.inject(1, 1, 32, 2, 0);
    EXPECT_EQ(xb.pending(), 2u);
    std::vector<NocDelivery> done;
    for (Cycle c = 1; c < 10; ++c)
        xb.tick(c, done);
    EXPECT_EQ(xb.pending(), 0u);
}
