/**
 * @file
 * Unit tests for the set-associative cache with MSHRs.
 */

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hh"

using namespace valley;

namespace {

CacheConfig
tinyCache(bool write_allocate = false)
{
    CacheConfig c;
    c.sizeBytes = 1024; // 2 sets x 4 ways x 128 B
    c.ways = 4;
    c.lineBytes = 128;
    c.mshrEntries = 4;
    c.writeAllocate = write_allocate;
    return c;
}

using Kind = CacheAccessResult::Kind;

} // namespace

TEST(CacheConfig, GeometryOfTableI)
{
    // L1: 16 KB, 4-way, 128 B lines -> 32 sets.
    CacheConfig l1{16 * 1024, 4, 128, 32, false};
    EXPECT_EQ(l1.numSets(), 32u);
    // LLC slice: 64 KB, 8-way -> 64 sets.
    CacheConfig llc{64 * 1024, 8, 128, 32, true};
    EXPECT_EQ(llc.numSets(), 64u);
}

TEST(SetAssocCache, MissThenHitAfterFill)
{
    SetAssocCache c(tinyCache());
    const Addr line = 0x1000;
    EXPECT_EQ(c.access(line, false, 7).kind, Kind::Miss);
    EXPECT_FALSE(c.contains(line));

    CacheAccessResult ev;
    const auto waiters = c.fill(line, ev);
    ASSERT_EQ(waiters.size(), 1u);
    EXPECT_EQ(waiters[0], 7u);
    EXPECT_FALSE(ev.dirtyEviction);
    EXPECT_TRUE(c.contains(line));
    EXPECT_EQ(c.access(line, false, 8).kind, Kind::Hit);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(SetAssocCache, MshrMergesSameLine)
{
    SetAssocCache c(tinyCache());
    EXPECT_EQ(c.access(0x1000, false, 1).kind, Kind::Miss);
    EXPECT_EQ(c.access(0x1000, false, 2).kind, Kind::MergedMiss);
    EXPECT_EQ(c.access(0x1000, false, 3).kind, Kind::MergedMiss);
    EXPECT_EQ(c.mshrInUse(), 1u);
    EXPECT_EQ(c.stats().mshrMerges, 2u);

    CacheAccessResult ev;
    const auto waiters = c.fill(0x1000, ev);
    EXPECT_EQ(waiters.size(), 3u);
    EXPECT_EQ(c.mshrInUse(), 0u);
}

TEST(SetAssocCache, MshrExhaustionStalls)
{
    SetAssocCache c(tinyCache());
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(c.access(0x1000 + i * 128, false, i).kind,
                  Kind::Miss);
    EXPECT_FALSE(c.mshrAvailable());
    const auto r = c.access(0x9000, false, 9);
    EXPECT_EQ(r.kind, Kind::Stall);
    EXPECT_EQ(c.stats().mshrStalls, 1u);
    // A stalled access is not counted as an access (it will retry).
    EXPECT_EQ(c.stats().accesses, 4u);
}

TEST(SetAssocCache, LruEviction)
{
    SetAssocCache c(tinyCache());
    CacheAccessResult ev;
    // Fill all 4 ways of set 0 (set = (line/128) % 2 -> even lines).
    for (unsigned i = 0; i < 4; ++i) {
        c.access(Addr{i} * 256, false, i);
        c.fill(Addr{i} * 256, ev);
    }
    // Touch line 0 so line 256 becomes LRU.
    EXPECT_EQ(c.access(0, false, 9).kind, Kind::Hit);
    // A new even line evicts line 256 (the LRU), not line 0.
    c.access(4 * 256, false, 10);
    c.fill(4 * 256, ev);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(256));
}

TEST(SetAssocCache, WriteThroughNoAllocate)
{
    SetAssocCache c(tinyCache(false));
    // Write miss: no MSHR, no allocation, counted as a write-through.
    const auto r = c.access(0x2000, true, 1);
    EXPECT_EQ(r.kind, Kind::Hit);
    EXPECT_EQ(c.mshrInUse(), 0u);
    EXPECT_FALSE(c.contains(0x2000));
    EXPECT_EQ(c.stats().writeThroughs, 1u);

    // Write hit: stays clean (no writeback on eviction).
    CacheAccessResult ev;
    c.access(0x3000, false, 2);
    c.fill(0x3000, ev);
    c.access(0x3000, true, 3);
    EXPECT_EQ(c.stats().writeThroughs, 2u);
}

TEST(SetAssocCache, WriteAllocateDirtyWriteback)
{
    SetAssocCache c(tinyCache(true));
    CacheAccessResult ev;
    // Write miss allocates (fetch-on-write) and marks dirty on fill.
    EXPECT_EQ(c.access(0x0, true, 1).kind, Kind::Miss);
    c.fill(0x0, ev);
    // Fill the set with clean lines, then one more to evict the dirty
    // victim.
    for (unsigned i = 1; i < 4; ++i) {
        c.access(Addr{i} * 256, false, i);
        c.fill(Addr{i} * 256, ev);
        EXPECT_FALSE(ev.dirtyEviction);
    }
    c.access(4 * 256, false, 9);
    c.fill(4 * 256, ev);
    EXPECT_TRUE(ev.dirtyEviction);
    EXPECT_EQ(ev.victimLine, 0u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(SetAssocCache, WriteHitMarksDirtyUnderWriteAllocate)
{
    SetAssocCache c(tinyCache(true));
    CacheAccessResult ev;
    c.access(0x0, false, 1);
    c.fill(0x0, ev);
    c.access(0x0, true, 2); // dirty now
    for (unsigned i = 1; i <= 4; ++i) {
        c.access(Addr{i} * 256, false, i);
        c.fill(Addr{i} * 256, ev);
    }
    EXPECT_TRUE(ev.dirtyEviction);
}

TEST(SetAssocCache, DistinctSetsDoNotConflict)
{
    SetAssocCache c(tinyCache());
    CacheAccessResult ev;
    // 8 lines alternating sets fit (4 ways x 2 sets).
    for (unsigned i = 0; i < 8; ++i) {
        c.access(Addr{i} * 128, false, i);
        c.fill(Addr{i} * 128, ev);
    }
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_TRUE(c.contains(Addr{i} * 128)) << i;
}

TEST(SetAssocCache, MshrPendingProbe)
{
    SetAssocCache c(tinyCache());
    EXPECT_FALSE(c.mshrPending(0x1000));
    c.access(0x1000, false, 1);
    EXPECT_TRUE(c.mshrPending(0x1000));
    CacheAccessResult ev;
    c.fill(0x1000, ev);
    EXPECT_FALSE(c.mshrPending(0x1000));
}

TEST(SetAssocCache, MissRateComputation)
{
    SetAssocCache c(tinyCache());
    CacheAccessResult ev;
    c.access(0x0, false, 1); // miss
    c.access(0x0, false, 2); // merged miss
    c.fill(0x0, ev);
    c.access(0x0, false, 3); // hit
    c.access(0x0, false, 4); // hit
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 0.5);
}

TEST(SetAssocCache, FillWithoutMshrInstallsLine)
{
    // Prefetch-style fill: no waiters recorded.
    SetAssocCache c(tinyCache());
    CacheAccessResult ev;
    const auto waiters = c.fill(0x4000, ev);
    EXPECT_TRUE(waiters.empty());
    EXPECT_TRUE(c.contains(0x4000));
}
