/**
 * @file
 * Unit tests for the DRAM address layouts (paper Fig. 4 + 3D config).
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "mapping/address_layout.hh"

using namespace valley;

TEST(HynixLayout, GeometryMatchesTableI)
{
    const AddressLayout l = AddressLayout::hynixGddr5();
    EXPECT_EQ(l.addrBits, 30u);
    EXPECT_EQ(l.numChannels(), 4u);
    EXPECT_EQ(l.numBanksPerChannel(), 16u);
    EXPECT_EQ(l.numRows(), 4096u);
    EXPECT_EQ(l.numColumns(), 64u);
    EXPECT_EQ(l.blockBytes(), 64u);
    EXPECT_EQ(l.capacityBytes(), std::uint64_t{1} << 30); // 1 GB
}

TEST(HynixLayout, FieldPositionsMatchPaperText)
{
    // Section VI: "channel bits 8-9 and bank bit 10" are in the BASE
    // valley; the channel field is [9:8] and bank [13:10].
    const AddressLayout l = AddressLayout::hynixGddr5();
    EXPECT_EQ(l.channel.lo, 8u);
    EXPECT_EQ(l.channel.hi(), 9u);
    EXPECT_EQ(l.bank.lo, 10u);
    EXPECT_EQ(l.bank.hi(), 13u);
    EXPECT_EQ(l.row.lo, 18u);
    EXPECT_EQ(l.row.hi(), 29u);
    EXPECT_EQ(l.block.lo, 0u);
    EXPECT_EQ(l.block.hi(), 5u);
}

TEST(HynixLayout, DecodeExtractsFields)
{
    const AddressLayout l = AddressLayout::hynixGddr5();
    Addr a = 0;
    a |= Addr{2} << 8;     // channel 2
    a |= Addr{11} << 10;   // bank 11
    a |= Addr{1234} << 18; // row 1234
    a |= Addr{3} << 6;     // colLo = 3
    a |= Addr{9} << 14;    // colHi = 9

    const DramCoord c = l.decode(a);
    EXPECT_EQ(c.channel, 2u);
    EXPECT_EQ(c.bank, 11u);
    EXPECT_EQ(c.row, 1234u);
    EXPECT_EQ(c.column, (9u << 2) | 3u);
}

TEST(HynixLayout, EncodeDecodeRoundTrip)
{
    const AddressLayout l = AddressLayout::hynixGddr5();
    for (unsigned ch = 0; ch < 4; ++ch) {
        for (unsigned bank = 0; bank < 16; bank += 5) {
            for (unsigned row = 0; row < 4096; row += 1111) {
                for (unsigned col = 0; col < 64; col += 13) {
                    const DramCoord in{ch, bank, row, col};
                    const DramCoord out = l.decode(l.encode(in));
                    EXPECT_EQ(out.channel, in.channel);
                    EXPECT_EQ(out.bank, in.bank);
                    EXPECT_EQ(out.row, in.row);
                    EXPECT_EQ(out.column, in.column);
                }
            }
        }
    }
}

TEST(HynixLayout, BitPositionHelpers)
{
    const AddressLayout l = AddressLayout::hynixGddr5();
    EXPECT_EQ(l.channelBits(), (std::vector<unsigned>{8, 9}));
    EXPECT_EQ(l.bankBits(), (std::vector<unsigned>{10, 11, 12, 13}));
    EXPECT_EQ(l.randomizeTargets(),
              (std::vector<unsigned>{8, 9, 10, 11, 12, 13}));
    ASSERT_EQ(l.rowBits().size(), 12u);
    EXPECT_EQ(l.rowBits().front(), 18u);
    EXPECT_EQ(l.rowBits().back(), 29u);
}

TEST(HynixLayout, Masks)
{
    const AddressLayout l = AddressLayout::hynixGddr5();
    // page = row | ch | bank
    const std::uint64_t page = (bits::mask(12) << 18) |
                               (bits::mask(2) << 8) |
                               (bits::mask(4) << 10);
    EXPECT_EQ(l.pageMask(), page);
    const std::uint64_t cols =
        (bits::mask(2) << 6) | (bits::mask(4) << 14);
    EXPECT_EQ(l.columnMask(), cols);
    EXPECT_EQ(l.nonBlockMask(), bits::mask(30) & ~bits::mask(6));
    // Fields must partition the address space.
    EXPECT_EQ(l.pageMask() | l.columnMask() | bits::mask(6),
              bits::mask(30));
    EXPECT_EQ(l.pageMask() & l.columnMask(), 0u);
}

TEST(Stacked3dLayout, GeometryMatchesPaper)
{
    const AddressLayout l = AddressLayout::stacked3d();
    EXPECT_EQ(l.addrBits, 32u);
    // 4 stacks x 16 vaults = 64 independent buses.
    EXPECT_EQ(l.numChannels(), 64u);
    EXPECT_EQ(l.numBanksPerChannel(), 16u);
    // 2 channel + 4 vault + 4 bank = 10 randomize-target bits
    // ("2 channel bits, 4 vault bits and 4 bank bits", Section VI-D).
    EXPECT_EQ(l.randomizeTargets().size(), 10u);
    EXPECT_EQ(l.capacityBytes(), std::uint64_t{1} << 32);
}

TEST(Stacked3dLayout, DecodeGlobalChannelCombinesStackAndVault)
{
    const AddressLayout l = AddressLayout::stacked3d();
    Addr a = 0;
    a |= Addr{3} << 8;  // stack 3
    a |= Addr{7} << 10; // vault 7
    const DramCoord c = l.decode(a);
    EXPECT_EQ(c.channel, 3u * 16 + 7);
}

TEST(Stacked3dLayout, EncodeDecodeRoundTrip)
{
    const AddressLayout l = AddressLayout::stacked3d();
    for (unsigned ch = 0; ch < 64; ch += 9) {
        const DramCoord in{ch, 5u, 77u, 13u};
        const DramCoord out = l.decode(l.encode(in));
        EXPECT_EQ(out.channel, in.channel);
        EXPECT_EQ(out.bank, in.bank);
        EXPECT_EQ(out.row, in.row);
        EXPECT_EQ(out.column, in.column);
    }
}

TEST(Layout, DescribeListsFields)
{
    const std::string d = AddressLayout::hynixGddr5().describe();
    EXPECT_NE(d.find("row[29:18]"), std::string::npos);
    EXPECT_NE(d.find("ch[9:8]"), std::string::npos);
    EXPECT_NE(d.find("bank[13:10]"), std::string::npos);
    EXPECT_NE(d.find("block[5:0]"), std::string::npos);
}
