/**
 * @file
 * Tests for the benchmark suite (Table II): registry integrity,
 * determinism, address ranges and the valley/non-valley entropy
 * property the whole paper rests on.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "workloads/profiler.hh"
#include "workloads/workload.hh"

using namespace valley;

TEST(WorkloadRegistry, SixteenBenchmarks)
{
    EXPECT_EQ(workloads::valleySet().size(), 10u);
    EXPECT_EQ(workloads::nonValleySet().size(), 6u);
    EXPECT_EQ(workloads::allSet().size(), 16u);
}

TEST(WorkloadRegistry, UnknownAbbreviationThrows)
{
    EXPECT_THROW(workloads::make("NOPE"), std::invalid_argument);
    EXPECT_THROW(workloads::make("MT", 0.0), std::invalid_argument);
    EXPECT_THROW(workloads::make("MT", 1.5), std::invalid_argument);
}

TEST(WorkloadRegistry, InfoMatchesGroup)
{
    for (const auto &a : workloads::valleySet())
        EXPECT_TRUE(workloads::make(a, 0.25)->info().entropyValley) << a;
    for (const auto &a : workloads::nonValleySet())
        EXPECT_FALSE(workloads::make(a, 0.25)->info().entropyValley)
            << a;
}

TEST(WorkloadRegistry, KernelCountsMatchTableIIWhereFeasible)
{
    // Exact matches (see EXPERIMENTS.md for documented deviations).
    EXPECT_EQ(workloads::make("MT", 0.25)->numKernels(), 4u);
    EXPECT_EQ(workloads::make("LU", 1.0)->numKernels(), 1022u);
    EXPECT_EQ(workloads::make("NW", 1.0)->numKernels(), 255u);
    EXPECT_EQ(workloads::make("LPS", 0.25)->numKernels(), 2u);
    EXPECT_EQ(workloads::make("SC", 0.25)->numKernels(), 50u);
    EXPECT_EQ(workloads::make("SRAD2", 0.25)->numKernels(), 4u);
    EXPECT_EQ(workloads::make("DWT2D", 0.25)->numKernels(), 10u);
    EXPECT_EQ(workloads::make("HS", 0.25)->numKernels(), 1u);
    EXPECT_EQ(workloads::make("SP", 0.25)->numKernels(), 1u);
    EXPECT_EQ(workloads::make("FWT", 0.25)->numKernels(), 22u);
    EXPECT_EQ(workloads::make("NN", 0.25)->numKernels(), 4u);
    EXPECT_EQ(workloads::make("SPMV", 0.25)->numKernels(), 50u);
    EXPECT_EQ(workloads::make("LM", 0.25)->numKernels(), 1u);
    EXPECT_EQ(workloads::make("MUM", 0.25)->numKernels(), 2u);
    EXPECT_EQ(workloads::make("BFS", 0.25)->numKernels(), 24u);
}

class EveryWorkload : public ::testing::TestWithParam<std::string>
{
};

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryWorkload,
    ::testing::ValuesIn(workloads::allSet()),
    [](const auto &info) { return info.param; });

TEST_P(EveryWorkload, ProducesRequests)
{
    const auto w = workloads::make(GetParam(), 0.25);
    EXPECT_GT(w->countRequests(), 1000u) << GetParam();
}

TEST_P(EveryWorkload, AddressesWithinPhysicalSpace)
{
    const auto w = workloads::make(GetParam(), 0.25);
    const Addr limit = Addr{1} << kPhysAddrBits;
    for (const Kernel &k : w->kernels()) {
        // Check the first, a middle and the last TB of each kernel.
        for (TbId tb :
             {TbId{0}, k.numTbs() / 2, k.numTbs() - 1}) {
            const TbTrace t = k.trace(tb);
            for (const auto &warp : t.warps)
                for (const auto &instr : warp.instrs)
                    for (Addr line : instr.lines) {
                        ASSERT_LT(line, limit)
                            << GetParam() << " " << k.name();
                        ASSERT_EQ(line % 128, 0u);
                    }
        }
    }
}

TEST_P(EveryWorkload, TracesAreDeterministic)
{
    const auto w1 = workloads::make(GetParam(), 0.25);
    const auto w2 = workloads::make(GetParam(), 0.25);
    const Kernel &k1 = w1->kernels().front();
    const Kernel &k2 = w2->kernels().front();
    ASSERT_EQ(k1.numTbs(), k2.numTbs());
    const TbTrace a = k1.trace(0);
    const TbTrace b = k2.trace(0);
    ASSERT_EQ(a.warps.size(), b.warps.size());
    for (std::size_t i = 0; i < a.warps.size(); ++i) {
        ASSERT_EQ(a.warps[i].instrs.size(), b.warps[i].instrs.size());
        for (std::size_t j = 0; j < a.warps[i].instrs.size(); ++j)
            EXPECT_EQ(a.warps[i].instrs[j].lines,
                      b.warps[i].instrs[j].lines);
    }
}

TEST_P(EveryWorkload, ScaleShrinksTraces)
{
    const auto big = workloads::make(GetParam(), 1.0);
    const auto small = workloads::make(GetParam(), 0.25);
    EXPECT_LE(small->countRequests(), big->countRequests())
        << GetParam();
}

TEST_P(EveryWorkload, WarpsRespectDeclaredCount)
{
    const auto w = workloads::make(GetParam(), 0.25);
    for (const Kernel &k : w->kernels()) {
        const TbTrace t = k.trace(0);
        EXPECT_EQ(t.warps.size(), k.warpsPerTb());
        break; // first kernel suffices per workload
    }
}

namespace {

/** Entropy profile at evaluation scale with the paper's window. */
EntropyProfile
profileOf(const std::string &abbrev)
{
    const auto w = workloads::make(abbrev, 1.0);
    workloads::ProfileOptions po; // window 12, 30 bits
    return workloads::profileWorkload(*w, po);
}

} // namespace

TEST(ValleyProperty, ValleyBenchmarksHaveLowChannelBitEntropy)
{
    // The paper's central observation (Fig. 5): the valley set's
    // channel bits (8-9) carry little window entropy...
    for (const std::string a : {"MT", "LU", "NW", "LPS", "SC",
                                "SRAD2", "HS", "SP"}) {
        const EntropyProfile p = profileOf(a);
        EXPECT_LT(p.meanOver({8, 9}), 0.55) << a;
        // ...while high-entropy bits exist elsewhere to harvest.
        double best = 0.0;
        for (unsigned b = 10; b < 30; ++b)
            best = std::max(best, p.perBit[b]);
        EXPECT_GT(best, 0.85) << a;
    }
}

TEST(ValleyProperty, NonValleyBenchmarksHaveHighLowOrderEntropy)
{
    // Fig. 5 bottom group: entropy concentrated in the low-order bits,
    // channel/bank bits included.
    for (const std::string a : {"FWT", "NN", "SPMV", "MUM", "BFS"}) {
        const EntropyProfile p = profileOf(a);
        EXPECT_GT(p.meanOver({8, 9, 10, 11, 12, 13}), 0.8) << a;
    }
}

TEST(ValleyProperty, Dwt2dValleyIsBroad)
{
    // DWT2D's multi-scale strides produce a broad aggregate valley
    // (Fig. 5i) spanning channel and bank bits.
    const EntropyProfile p = profileOf("DWT2D");
    EXPECT_LT(p.meanOver({8, 9, 10, 11}), 0.5);
}

TEST(ValleyProperty, KernelEntropyDiffersFromApplication)
{
    // Fig. 5i vs 5j: a single kernel's profile can differ from the
    // application aggregate (intra-application entropy variation).
    const auto w = workloads::make("DWT2D", 1.0);
    workloads::ProfileOptions po;
    const EntropyProfile app = workloads::profileWorkload(*w, po);
    const EntropyProfile k0 =
        workloads::profileKernel(w->kernels().front(), po);
    double max_delta = 0.0;
    for (unsigned b = 6; b < 30; ++b)
        max_delta = std::max(
            max_delta, std::abs(app.perBit[b] - k0.perBit[b]));
    EXPECT_GT(max_delta, 0.2);
}

TEST(ValleyProperty, LuValleyMovesAcrossKernels)
{
    // The pivot-column bits pin different valley positions as k
    // advances — "high-entropy bits move as the application iterates".
    const auto w = workloads::make("LU", 1.0);
    workloads::ProfileOptions po;
    // Perimeter kernels at k=16 and k=48 pin different bits 7-11.
    const EntropyProfile a =
        workloads::profileKernel(w->kernels()[2 * 16], po);
    const EntropyProfile b =
        workloads::profileKernel(w->kernels()[2 * 48], po);
    double delta = 0.0;
    for (unsigned bit = 7; bit <= 11; ++bit)
        delta += std::abs(a.perBit[bit] - b.perBit[bit]);
    (void)delta; // BVRs are pinned per kernel: both are valleys...
    // ...but the *addresses* differ: compare first-TB request lines.
    const Addr la =
        w->kernels()[2 * 16].trace(0).warps[0].instrs[1].lines[0];
    const Addr lb =
        w->kernels()[2 * 48].trace(0).warps[0].instrs[1].lines[0];
    EXPECT_NE(bits::extract(la, 11, 7), bits::extract(lb, 11, 7));
}
