/**
 * @file
 * Unit tests for the memory coalescer and trace builder.
 */

#include <gtest/gtest.h>

#include "workloads/trace.hh"

using namespace valley;

TEST(Coalesce, FullyCoalescedWarpIsOneLine)
{
    // 32 consecutive 4 B accesses span one 128 B line.
    std::vector<Addr> addrs;
    for (unsigned t = 0; t < 32; ++t)
        addrs.push_back(0x1000 + t * 4);
    const auto lines = coalesce(addrs, 128);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x1000u);
}

TEST(Coalesce, MisalignedWarpSpansTwoLines)
{
    std::vector<Addr> addrs;
    for (unsigned t = 0; t < 32; ++t)
        addrs.push_back(0x1040 + t * 4);
    EXPECT_EQ(coalesce(addrs, 128).size(), 2u);
}

TEST(Coalesce, StridedWarpScattersTo32Lines)
{
    // The Fig. 2 column-major pathology: stride = one matrix row.
    std::vector<Addr> addrs;
    for (unsigned t = 0; t < 32; ++t)
        addrs.push_back(Addr{t} * 2048);
    const auto lines = coalesce(addrs, 128);
    ASSERT_EQ(lines.size(), 32u);
    EXPECT_EQ(lines[1] - lines[0], 2048u);
}

TEST(Coalesce, DuplicateAddressesMerge)
{
    // Broadcast: all threads read the same word.
    std::vector<Addr> addrs(32, 0x4000);
    EXPECT_EQ(coalesce(addrs, 128).size(), 1u);
}

TEST(Coalesce, OutputSortedUnique)
{
    std::vector<Addr> addrs = {0x300, 0x100, 0x300, 0x200};
    const auto lines = coalesce(addrs, 128);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_LT(lines[0], lines[1]);
    EXPECT_LT(lines[1], lines[2]);
}

TEST(TraceBuilder, AccessStridedGeneratesThreadAddresses)
{
    TraceBuilder b(2, 128, 4);
    b.accessStrided(0, 0x10000, 2048, 32, false);
    const TbTrace tb = b.take();
    ASSERT_EQ(tb.warps.size(), 2u);
    ASSERT_EQ(tb.warps[0].instrs.size(), 1u);
    EXPECT_EQ(tb.warps[0].instrs[0].lines.size(), 32u);
    EXPECT_FALSE(tb.warps[0].instrs[0].write);
    EXPECT_TRUE(tb.warps[1].instrs.empty());
}

TEST(TraceBuilder, AccessLineAligns)
{
    TraceBuilder b(1, 128, 4);
    b.accessLine(0, 0x1234, true);
    const TbTrace tb = b.take();
    ASSERT_EQ(tb.warps[0].instrs.size(), 1u);
    EXPECT_EQ(tb.warps[0].instrs[0].lines[0], 0x1200u);
    EXPECT_TRUE(tb.warps[0].instrs[0].write);
}

TEST(TraceBuilder, DefaultGapApplied)
{
    TraceBuilder b(1, 128, 7);
    b.accessLine(0, 0, false);
    b.accessLine(0, 128, false);
    const TbTrace tb = b.take();
    EXPECT_EQ(tb.warps[0].instrs[0].gap, 7u);
    EXPECT_EQ(tb.warps[0].instrs[1].gap, 7u);
}

TEST(TraceBuilder, ComputeDelayAddsToNextAccess)
{
    TraceBuilder b(1, 128, 4);
    b.computeDelay(0, 100);
    b.accessLine(0, 0, false);
    b.accessLine(0, 128, false);
    const TbTrace tb = b.take();
    EXPECT_EQ(tb.warps[0].instrs[0].gap, 104u);
    EXPECT_EQ(tb.warps[0].instrs[1].gap, 4u); // delay consumed
}

TEST(TraceBuilder, NegativeStrideSupported)
{
    TraceBuilder b(1, 128, 4);
    b.accessStrided(0, 0x10000, -2048, 4, false);
    const TbTrace tb = b.take();
    ASSERT_EQ(tb.warps[0].instrs.size(), 1u);
    EXPECT_EQ(tb.warps[0].instrs[0].lines.size(), 4u);
    EXPECT_EQ(tb.warps[0].instrs[0].lines.front(), 0x10000u - 3 * 2048);
}

TEST(TbTrace, RequestCountSumsAllLines)
{
    TraceBuilder b(2, 128, 4);
    b.accessStrided(0, 0, 128, 8, false); // 8 lines
    b.accessLine(1, 0x4000, true);        // 1 line
    const TbTrace tb = b.take();
    EXPECT_EQ(tb.requestCount(), 9u);
}

TEST(TraceBuilder, EmptyAccessIgnored)
{
    TraceBuilder b(1, 128, 4);
    b.access(0, {}, false);
    EXPECT_EQ(b.take().requestCount(), 0u);
}
