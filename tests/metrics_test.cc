/**
 * @file
 * Tests for the process-wide metrics registry
 * (`src/common/metrics.hh`): counters and histograms must count
 * exactly under the work-stealing thread pool, sharded merges must
 * equal serial totals, snapshots must be byte-deterministic with
 * name-sorted keys, and reset must zero values while keeping every
 * outstanding reference valid.
 *
 * The registry is process-wide and other subsystems (thread pool,
 * caches) also bump it, so every assertion here is delta-based
 * against instrument names only this file uses.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/metrics.hh"
#include "common/thread_pool.hh"

using namespace valley;

namespace {

/** Unique-per-test instrument names so deltas are uncontaminated. */
std::string
uniq(const std::string &stem)
{
    static int n = 0;
    return "test.metrics." + stem + "." + std::to_string(n++);
}

} // namespace

TEST(Metrics, CounterAddAndInc)
{
    metrics::Counter &c = metrics::counter(uniq("basic"));
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, SameNameReturnsSameInstrument)
{
    const std::string name = uniq("interned");
    metrics::Counter &a = metrics::counter(name);
    metrics::Counter &b = metrics::counter(name);
    EXPECT_EQ(&a, &b);
    a.inc();
    EXPECT_EQ(b.value(), 1u);
}

TEST(Metrics, CounterExactUnderWorkStealingPool)
{
    // Shards merge to the exact total no matter how tasks land on
    // threads: 64 tasks x 1000 bumps across 8 stealing workers.
    metrics::Counter &c = metrics::counter(uniq("pool"));
    ThreadPool pool(8);
    constexpr int kTasks = 64;
    constexpr int kBumps = 1000;
    for (int t = 0; t < kTasks; ++t)
        pool.submit([&c] {
            for (int i = 0; i < kBumps; ++i)
                c.inc();
        });
    pool.run();
    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kTasks) * kBumps);
}

TEST(Metrics, ShardedMergeEqualsSerialTotal)
{
    metrics::Counter &serial = metrics::counter(uniq("serial"));
    metrics::Counter &sharded = metrics::counter(uniq("sharded"));
    constexpr int kTasks = 32;
    constexpr std::uint64_t kDelta = 7;
    for (int t = 0; t < kTasks; ++t)
        serial.add(kDelta);
    ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t)
        pool.submit([&sharded] { sharded.add(kDelta); });
    pool.run();
    EXPECT_EQ(sharded.value(), serial.value());
}

TEST(Metrics, GaugeSetAndAdd)
{
    metrics::Gauge &g = metrics::gauge(uniq("gauge"));
    g.set(10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, HistogramBucketPlacement)
{
    // Bucket i holds samples of bit width i: 0 -> bucket 0,
    // 1 -> bucket 1, {2,3} -> bucket 2; huge values clamp into the
    // last bucket instead of indexing out of range.
    metrics::Histogram &h = metrics::histogram(uniq("buckets"));
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(std::uint64_t(1) << 60);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 6u + (std::uint64_t(1) << 60));
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(metrics::Histogram::kBuckets - 1), 1u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
}

TEST(Metrics, HistogramExactUnderWorkStealingPool)
{
    metrics::Histogram &h = metrics::histogram(uniq("pool_hist"));
    ThreadPool pool(8);
    constexpr int kTasks = 48;
    constexpr std::uint64_t kSamples = 100;
    for (int t = 0; t < kTasks; ++t)
        pool.submit([&h] {
            for (std::uint64_t v = 1; v <= kSamples; ++v)
                h.record(v);
        });
    pool.run();
    EXPECT_EQ(h.count(),
              static_cast<std::uint64_t>(kTasks) * kSamples);
    EXPECT_EQ(h.sum(), static_cast<std::uint64_t>(kTasks) *
                           (kSamples * (kSamples + 1) / 2));
    std::uint64_t bucketed = 0;
    for (std::size_t i = 0; i < metrics::Histogram::kBuckets; ++i)
        bucketed += h.bucket(i);
    EXPECT_EQ(bucketed, h.count());
}

TEST(Metrics, ScopedTimerRecordsOneSample)
{
    metrics::Histogram &h = metrics::histogram(uniq("timer"));
    {
        metrics::ScopedTimer t(h);
    }
    EXPECT_EQ(h.count(), 1u);
}

TEST(Metrics, SnapshotIsByteDeterministic)
{
    metrics::counter(uniq("snap_a")).inc();
    metrics::histogram(uniq("snap_h")).record(5);
    const std::string a = metrics::snapshotJson();
    const std::string b = metrics::snapshotJson();
    EXPECT_EQ(a, b);
}

TEST(Metrics, SnapshotSortsNamesAndOrdersFields)
{
    // Register deliberately out of order; the snapshot must sort.
    const std::string hi = "test.metrics.zz_last";
    const std::string lo = "test.metrics.aa_first";
    metrics::counter(hi).inc();
    metrics::counter(lo).inc();
    const std::string snap = metrics::snapshotJson();
    const std::size_t lo_pos = snap.find('"' + lo + '"');
    const std::size_t hi_pos = snap.find('"' + hi + '"');
    ASSERT_NE(lo_pos, std::string::npos);
    ASSERT_NE(hi_pos, std::string::npos);
    EXPECT_LT(lo_pos, hi_pos);

    // Fixed section and histogram field order.
    const std::size_t counters = snap.find("\"counters\"");
    const std::size_t gauges = snap.find("\"gauges\"");
    const std::size_t histograms = snap.find("\"histograms\"");
    ASSERT_NE(counters, std::string::npos);
    ASSERT_NE(gauges, std::string::npos);
    ASSERT_NE(histograms, std::string::npos);
    EXPECT_LT(counters, gauges);
    EXPECT_LT(gauges, histograms);

    metrics::histogram(uniq("field_order")).record(1);
    const std::string snap2 = metrics::snapshotJson();
    const std::size_t count_f = snap2.find("\"count\"", histograms);
    const std::size_t sum_f = snap2.find("\"sum_us\"", histograms);
    const std::size_t buckets_f = snap2.find("\"buckets\"", histograms);
    ASSERT_NE(count_f, std::string::npos);
    ASSERT_NE(sum_f, std::string::npos);
    ASSERT_NE(buckets_f, std::string::npos);
    EXPECT_LT(count_f, sum_f);
    EXPECT_LT(sum_f, buckets_f);
}

TEST(Metrics, SnapshotIndentEmbedsAtValuePosition)
{
    metrics::counter(uniq("indent")).inc();
    const std::string top = metrics::snapshotJson(0);
    // Opening brace unindented (value position), no trailing newline.
    ASSERT_FALSE(top.empty());
    EXPECT_EQ(top.front(), '{');
    EXPECT_EQ(top.back(), '}');
    EXPECT_NE(top.find("\n  \"counters\""), std::string::npos);

    const std::string nested = metrics::snapshotJson(1);
    EXPECT_EQ(nested.front(), '{');
    EXPECT_NE(nested.find("\n    \"counters\""), std::string::npos);
    // Closing brace at the embedding depth.
    EXPECT_NE(nested.rfind("\n  }"), std::string::npos);
}

TEST(Metrics, WriteSnapshotFileMatchesSnapshotJson)
{
    metrics::counter(uniq("file")).add(3);
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("valley_metrics_test_" + std::to_string(::getpid()) +
         ".json");
    ASSERT_TRUE(metrics::writeSnapshotFile(path.string()));
    std::ifstream in(path);
    std::stringstream read;
    read << in.rdbuf();
    EXPECT_EQ(read.str(), metrics::snapshotJson() + "\n");
    std::filesystem::remove(path);
}

TEST(Metrics, ResetZeroesButKeepsReferencesValid)
{
    metrics::Counter &c = metrics::counter(uniq("reset_c"));
    metrics::Gauge &g = metrics::gauge(uniq("reset_g"));
    metrics::Histogram &h = metrics::histogram(uniq("reset_h"));
    c.add(5);
    g.set(-2);
    h.record(9);
    metrics::resetForTesting();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    // References survive the reset and keep counting.
    c.inc();
    EXPECT_EQ(c.value(), 1u);
}
