/**
 * @file
 * Tests for the string-keyed mapper registry
 * (`mapping/mapper_registry`): spec grammar round trips, canonical
 * forms and hash stability, schema validation diagnostics (unknown
 * family/parameter listing the registered keys), duplicate
 * registration rejection, and the legacy `Scheme` facade.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "mapping/address_layout.hh"
#include "mapping/mapper_registry.hh"
#include "mapping/mapper_spec.hh"

using namespace valley;

namespace {

/** Exception message of a throwing callable (fails if it returns). */
template <typename Fn>
std::string
errorOf(Fn &&fn)
{
    try {
        fn();
    } catch (const std::invalid_argument &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected std::invalid_argument";
    return "";
}

/** A minimal valid family for registration-path tests. */
mapping::MapperFamily
probeFamily(const std::string &name)
{
    mapping::MapperFamily f;
    f.name = name;
    f.summary = "test probe";
    f.seedTag = 900;
    f.displayName = [](const mapping::ResolvedMapperSpec &) {
        return std::string("PROBE");
    };
    f.build = [](const mapping::ResolvedMapperSpec &,
                 const AddressLayout &l, XorShiftRng &) {
        return BitMatrix::identity(l.addrBits);
    };
    return f;
}

} // namespace

TEST(MapperSpec, ParsePrintRoundTrips)
{
    const auto s =
        mapping::MapperSpec::parse("map:perm,order=RoCoBaCh");
    EXPECT_EQ(s.family, "perm");
    ASSERT_EQ(s.params.size(), 1u);
    EXPECT_EQ(s.params[0].first, "order");
    EXPECT_EQ(s.params[0].second, "RoCoBaCh");
    EXPECT_EQ(s.print(), "map:perm,order=RoCoBaCh");
}

TEST(MapperSpec, GrammarErrorsCarryTheOffendingSpec)
{
    // Every diagnostic names the spec it was parsing.
    for (const char *bad :
         {"map:", "map:PAE", "map:pae,seed", "map:pae,=1",
          "map:pae,seed=1,seed=2", "map:pae,,seed=1", "pae"}) {
        const std::string msg = errorOf(
            [&] { mapping::MapperSpec::parse(bad); });
        EXPECT_NE(msg.find(bad), std::string::npos) << msg;
    }
}

TEST(MapperRegistry, BuiltinFamiliesAreRegistered)
{
    // The builtin TU must survive static-archive linking (the anchor
    // regression): every family the harness depends on is present.
    for (const char *name : {"base", "pm", "rmp", "pae", "fae", "all",
                             "sbim", "gbim", "mop", "perm"}) {
        const auto *f = mapping::findMapperFamily(name);
        ASSERT_NE(f, nullptr) << name;
        EXPECT_EQ(f->name, name);
    }
    EXPECT_EQ(mapping::findMapperFamily("nosuch"), nullptr);
}

TEST(MapperRegistry, CanonicalFormOmitsDefaultsAndNormalizesInts)
{
    EXPECT_EQ(mapping::canonicalMapperSpec("map:pae"), "map:pae");
    // Default-valued parameters are dropped from the canonical form.
    EXPECT_EQ(mapping::canonicalMapperSpec("map:pae,seed=0"),
              "map:pae");
    // U64 values are parsed and reprinted, so spellings converge.
    EXPECT_EQ(mapping::canonicalMapperSpec("map:pae,seed=007"),
              "map:pae,seed=7");
    EXPECT_EQ(mapping::canonicalMapperSpec("map:perm,order=RoCoBaCh"),
              "map:perm,order=RoCoBaCh");
    // Canonicalization is idempotent.
    const std::string c =
        mapping::canonicalMapperSpec("map:all,seed=12");
    EXPECT_EQ(mapping::canonicalMapperSpec(c), c);
}

TEST(MapperRegistry, HashIsStableAcrossSpellingsAndDistinctAcrossSpecs)
{
    const auto h = [](const std::string &s) {
        return mapping::resolveMapperSpec(s).hash();
    };
    EXPECT_EQ(h("map:pae"), h("map:pae,seed=0"));
    EXPECT_EQ(h("map:pae,seed=3"), h("map:pae,seed=03"));
    EXPECT_NE(h("map:pae"), h("map:fae"));
    EXPECT_NE(h("map:pae,seed=1"), h("map:pae,seed=2"));
    EXPECT_NE(h("map:perm,order=RoCoBaCh"),
              h("map:perm,order=RoCoChBa"));
}

TEST(MapperRegistry, UnknownFamilyDiagnosticListsRegisteredFamilies)
{
    const std::string msg = errorOf(
        [] { mapping::resolveMapperSpec("map:nosuch"); });
    EXPECT_NE(msg.find("unknown family 'nosuch'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("registered families are"), std::string::npos);
    for (const char *name : {"base", "pm", "sbim", "perm"})
        EXPECT_NE(msg.find(name), std::string::npos) << msg;
}

TEST(MapperRegistry, UnknownParameterDiagnosticListsKnownKeys)
{
    const std::string msg = errorOf(
        [] { mapping::resolveMapperSpec("map:pae,bogus=1"); });
    EXPECT_NE(msg.find("no parameter 'bogus'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("seed"), std::string::npos) << msg;
}

TEST(MapperRegistry, RequiredParameterMustBeGiven)
{
    const std::string msg =
        errorOf([] { mapping::resolveMapperSpec("map:perm"); });
    EXPECT_NE(msg.find("requires parameter"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("order"), std::string::npos) << msg;
}

TEST(MapperRegistry, ValueValidationRejectsGarbage)
{
    // Non-numeric U64 value.
    EXPECT_THROW(mapping::resolveMapperSpec("map:pae,seed=abc"),
                 std::invalid_argument);
    EXPECT_THROW(mapping::resolveMapperSpec("map:pae,seed=1x"),
                 std::invalid_argument);
    // The perm order validator: unknown and duplicate field tokens.
    EXPECT_THROW(mapping::resolveMapperSpec("map:perm,order=RoXx"),
                 std::invalid_argument);
    EXPECT_THROW(mapping::resolveMapperSpec("map:perm,order=RoRoCo"),
                 std::invalid_argument);
}

TEST(MapperRegistry, DuplicateRegistrationIsRejected)
{
    mapping::registerMapper(probeFamily("zzdupprobe"));
    const std::string msg = errorOf(
        [] { mapping::registerMapper(probeFamily("zzdupprobe")); });
    EXPECT_NE(msg.find("zzdupprobe"), std::string::npos) << msg;
    // The first registration stays usable.
    EXPECT_NE(mapping::findMapperFamily("zzdupprobe"), nullptr);
}

TEST(MapperRegistry, MalformedFamiliesAreRejected)
{
    auto bad_name = probeFamily("ZZ-Bad");
    EXPECT_THROW(mapping::registerMapper(std::move(bad_name)),
                 std::invalid_argument);
    auto no_build = probeFamily("zznobuild");
    no_build.build = nullptr;
    EXPECT_THROW(mapping::registerMapper(std::move(no_build)),
                 std::invalid_argument);
}

TEST(MapperRegistry, SchemeSpecCoversEveryEnumValue)
{
    for (Scheme s : {Scheme::BASE, Scheme::PM, Scheme::RMP,
                     Scheme::PAE, Scheme::FAE, Scheme::ALL,
                     Scheme::SBIM, Scheme::GBIM}) {
        const std::string spec = mapping::schemeSpec(s);
        const auto r = mapping::resolveMapperSpec(spec);
        // The builtin family keeps its legacy enum ordinal as the
        // seed tag, the bit-identity anchor of the differential
        // oracle.
        EXPECT_EQ(r.family().seedTag,
                  static_cast<std::uint64_t>(s))
            << spec;
        // And the display name is the legacy scheme name.
        EXPECT_EQ(r.family().displayName(r), schemeName(s));
    }
}

TEST(MapperRegistry, DisplayNamesAreJournalSafe)
{
    // Display names land in space-separated result rows and
    // '|'-separated journal lines; none of the reserved characters
    // may appear.
    for (const auto *f : mapping::mapperFamilies()) {
        std::string spec = "map:" + f->name;
        if (f->name == "perm")
            spec += ",order=RoCoBaCh";
        const auto r = mapping::resolveMapperSpec(spec);
        const std::string label = f->displayName(r);
        EXPECT_FALSE(label.empty()) << f->name;
        EXPECT_EQ(label.find_first_of(" \t,;|%\n\r"),
                  std::string::npos)
            << f->name << ": " << label;
    }
}

TEST(MapperRegistry, SpecSeedOverridesCallerSeed)
{
    const AddressLayout l = AddressLayout::hynixGddr5();
    const auto pinned = mapping::makeMapper("map:pae,seed=3", l, 1);
    const auto caller = mapping::makeMapper("map:pae", l, 3);
    EXPECT_TRUE(pinned->matrix() == caller->matrix());
    // seed=0 inherits the caller seed instead.
    const auto inherit = mapping::makeMapper("map:pae,seed=0", l, 5);
    const auto five = mapping::makeMapper("map:pae", l, 5);
    EXPECT_TRUE(inherit->matrix() == five->matrix());
}

TEST(MapperRegistry, ProfileDrivenFamiliesRefuseMakeMapper)
{
    const AddressLayout l = AddressLayout::hynixGddr5();
    for (const char *spec : {"map:sbim", "map:gbim"}) {
        const std::string msg = errorOf(
            [&] { mapping::makeMapper(spec, l); });
        EXPECT_NE(msg.find("search"), std::string::npos) << msg;
    }
}
