/**
 * @file
 * Unit and property tests for the GF(2) BitMatrix.
 */

#include <gtest/gtest.h>

#include "bim/bit_matrix.hh"
#include "common/bitops.hh"
#include "common/rng.hh"

using namespace valley;

TEST(BitMatrix, IdentityMapsAddressesToThemselves)
{
    const BitMatrix m = BitMatrix::identity(30);
    EXPECT_EQ(m.apply(0), 0u);
    EXPECT_EQ(m.apply(0x12345678u & bits::mask(30)),
              0x12345678u & bits::mask(30));
    EXPECT_EQ(m.apply(bits::mask(30)), bits::mask(30));
}

TEST(BitMatrix, BitsAboveMatrixSizePassThrough)
{
    const BitMatrix m = BitMatrix::identity(8);
    const Addr a = (Addr{0xAB} << 8) | 0x5C;
    EXPECT_EQ(m.apply(a), a);
}

TEST(BitMatrix, GetSetRoundTrip)
{
    BitMatrix m(4);
    EXPECT_FALSE(m.get(2, 3));
    m.set(2, 3, true);
    EXPECT_TRUE(m.get(2, 3));
    m.set(2, 3, false);
    EXPECT_FALSE(m.get(2, 3));
}

TEST(BitMatrix, SetRowAndRowMask)
{
    BitMatrix m(6);
    m.setRow(4, 0b101011);
    EXPECT_EQ(m.row(4), 0b101011u);
    EXPECT_TRUE(m.get(4, 0));
    EXPECT_TRUE(m.get(4, 1));
    EXPECT_FALSE(m.get(4, 2));
    EXPECT_TRUE(m.get(4, 5));
}

TEST(BitMatrix, ApplyComputesXorOfTaps)
{
    // Paper Fig. 6e: out bit 1 (channel) = r2 ^ r1 ^ r0 ^ c with the
    // example 5-bit address map [r2 r1 r0 c b] = bits [4 3 2 1 0].
    BitMatrix m = BitMatrix::identity(5);
    m.setRow(1, 0b11110); // c_out = r2^r1^r0^c_in
    m.setRow(0, 0b01101); // b_out = r1^r0^b_in
    EXPECT_TRUE(m.invertible());

    const Addr in = 0b11000; // r2=1 r1=1 r0=0 c=0 b=0
    // c_out = 1^1^0^0 = 0; b_out = 1^0^0 = 1
    EXPECT_EQ(m.apply(in), 0b11001u);
}

TEST(BitMatrix, SingularMatrixDetected)
{
    BitMatrix m = BitMatrix::identity(8);
    m.setRow(3, m.row(4)); // duplicate row -> singular
    EXPECT_FALSE(m.invertible());
    EXPECT_EQ(m.rank(), 7u);
    EXPECT_FALSE(m.inverse().has_value());
}

TEST(BitMatrix, ZeroRowIsSingular)
{
    BitMatrix m = BitMatrix::identity(8);
    m.setRow(0, 0);
    EXPECT_FALSE(m.invertible());
}

TEST(BitMatrix, RankOfZeroMatrixIsZero)
{
    BitMatrix m(5);
    EXPECT_EQ(m.rank(), 0u);
}

TEST(BitMatrix, InverseOfIdentityIsIdentity)
{
    const BitMatrix m = BitMatrix::identity(16);
    const auto inv = m.inverse();
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(*inv, m);
}

TEST(BitMatrix, InverseComposesToIdentity)
{
    XorShiftRng rng(1234);
    for (int trial = 0; trial < 20; ++trial) {
        BitMatrix m(24);
        do {
            for (unsigned r = 0; r < 24; ++r)
                m.setRow(r, rng.next() & bits::mask(24));
        } while (!m.invertible());

        const auto inv = m.inverse();
        ASSERT_TRUE(inv.has_value());
        EXPECT_EQ(m.multiply(*inv), BitMatrix::identity(24));
        EXPECT_EQ(inv->multiply(m), BitMatrix::identity(24));
    }
}

TEST(BitMatrix, InverseUndoesApply)
{
    XorShiftRng rng(99);
    BitMatrix m(30);
    do {
        for (unsigned r = 0; r < 30; ++r)
            m.setRow(r, rng.next() & bits::mask(30));
    } while (!m.invertible());
    const auto inv = m.inverse();
    ASSERT_TRUE(inv.has_value());

    for (int i = 0; i < 1000; ++i) {
        const Addr a = rng.next() & bits::mask(30);
        EXPECT_EQ(inv->apply(m.apply(a)), a);
    }
}

TEST(BitMatrix, MultiplyMatchesSequentialApply)
{
    XorShiftRng rng(5);
    BitMatrix a(12), b(12);
    for (unsigned r = 0; r < 12; ++r) {
        a.setRow(r, rng.next() & bits::mask(12));
        b.setRow(r, rng.next() & bits::mask(12));
    }
    const BitMatrix ab = a.multiply(b);
    for (int i = 0; i < 500; ++i) {
        const Addr x = rng.next() & bits::mask(12);
        EXPECT_EQ(ab.apply(x), a.apply(b.apply(x)));
    }
}

TEST(BitMatrix, ApplyIsLinear)
{
    // Property: M(x ^ y) == M(x) ^ M(y) for the low bits.
    XorShiftRng rng(77);
    BitMatrix m(30);
    for (unsigned r = 0; r < 30; ++r)
        m.setRow(r, rng.next() & bits::mask(30));
    for (int i = 0; i < 500; ++i) {
        const Addr x = rng.next() & bits::mask(30);
        const Addr y = rng.next() & bits::mask(30);
        EXPECT_EQ(m.apply(x ^ y), m.apply(x) ^ m.apply(y));
    }
}

TEST(BitMatrix, XorGateCountAndDepth)
{
    BitMatrix m = BitMatrix::identity(8);
    EXPECT_EQ(m.xorGateCount(), 0u);
    EXPECT_EQ(m.xorTreeDepth(), 0u);
    EXPECT_EQ(m.maxRowTaps(), 1u);

    m.setRow(0, 0b00001111); // 4 taps -> 3 gates, depth 2
    m.setRow(1, 0b00000110); // 2 taps -> 1 gate, depth 1
    EXPECT_EQ(m.xorGateCount(), 4u);
    EXPECT_EQ(m.maxRowTaps(), 4u);
    EXPECT_EQ(m.xorTreeDepth(), 2u);
}

TEST(BitMatrix, RowIsIdentity)
{
    BitMatrix m = BitMatrix::identity(8);
    EXPECT_TRUE(m.rowIsIdentity(3));
    m.set(3, 5, true);
    EXPECT_FALSE(m.rowIsIdentity(3));
}

TEST(BitMatrix, ToStringShowsGrid)
{
    BitMatrix m = BitMatrix::identity(3);
    EXPECT_EQ(m.toString(), "100\n010\n001\n");
}

TEST(BitMatrix, OneToOneOverFullSmallSpace)
{
    // Exhaustive bijectivity check on a 10-bit space.
    XorShiftRng rng(2024);
    BitMatrix m(10);
    do {
        for (unsigned r = 0; r < 10; ++r)
            m.setRow(r, rng.next() & bits::mask(10));
    } while (!m.invertible());

    std::vector<bool> hit(1u << 10, false);
    for (Addr a = 0; a < (1u << 10); ++a) {
        const Addr out = m.apply(a);
        ASSERT_LT(out, 1u << 10);
        ASSERT_FALSE(hit[out]) << "collision at " << a;
        hit[out] = true;
    }
}
