/**
 * @file
 * Tests for the synthetic scenario generator (`src/synth/`): spec
 * grammar and canonicalization, registry integrity, generator
 * determinism across runs and thread counts, the line-alignment
 * invariant every family must uphold, the entropy shapes the families
 * advertise, and the `workloads::make` fallthrough (including the
 * zero-TB clamp of `workloads::scaled`).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/types.hh"
#include "search/searched_bim.hh"
#include "synth/registry.hh"
#include "synth/spec.hh"
#include "workloads/profiler.hh"

using namespace valley;

namespace {

/** Tiny-but-nontrivial spec per family, used by the sweep tests. */
std::vector<std::string>
smallSpecs()
{
    std::vector<std::string> specs;
    for (const synth::FamilyInfo &f : synth::families())
        specs.push_back("synth:" + f.name);
    return specs;
}

} // namespace

// ---------------------------------------------------------------- spec

TEST(SynthSpec, ParsePrintRoundTrip)
{
    const auto s =
        synth::SynthSpec::parse("synth:stencil3d,n=96,halo=1");
    EXPECT_EQ(s.family, "stencil3d");
    ASSERT_EQ(s.params.size(), 2u);
    EXPECT_EQ(s.params[0].first, "n");
    EXPECT_EQ(s.params[0].second, "96");
    EXPECT_EQ(s.print(), "synth:stencil3d,n=96,halo=1");
}

TEST(SynthSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(synth::SynthSpec::parse("stencil3d"),
                 std::invalid_argument);
    EXPECT_THROW(synth::SynthSpec::parse("synth:"),
                 std::invalid_argument);
    EXPECT_THROW(synth::SynthSpec::parse("synth:st encil"),
                 std::invalid_argument);
    EXPECT_THROW(synth::SynthSpec::parse("synth:stream,n"),
                 std::invalid_argument);
    EXPECT_THROW(synth::SynthSpec::parse("synth:stream,n="),
                 std::invalid_argument);
    EXPECT_THROW(synth::SynthSpec::parse("synth:stream,=4"),
                 std::invalid_argument);
    EXPECT_THROW(synth::SynthSpec::parse("synth:stream,n=1,n=2"),
                 std::invalid_argument);
}

TEST(SynthSpec, ResolveCanonicalizesValuesAndOrder)
{
    // Reordered keys, redundant zero padding: same canonical form,
    // same hash — the property the on-disk caches key on.
    const auto a =
        synth::resolve("synth:stencil3d,halo=2,n=096,scale=0.5");
    const auto b =
        synth::resolve("synth:stencil3d,scale=0.50,n=96,halo=2");
    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.hash(), b.hash());

    // Round trip: resolving the canonical string is a fixed point.
    const auto c = synth::resolve(a.canonical());
    EXPECT_EQ(c.canonical(), a.canonical());
    EXPECT_EQ(c.hash(), a.hash());
}

TEST(SynthSpec, CanonicalDropsDefaults)
{
    // Explicitly passing a default value is canonically invisible.
    const auto def = synth::resolve("synth:stream");
    const auto expl = synth::resolve("synth:stream,n=1048576");
    EXPECT_EQ(def.canonical(), "synth:stream");
    EXPECT_EQ(expl.canonical(), "synth:stream");
    EXPECT_EQ(def.hash(), expl.hash());

    // ...and different parameters hash differently.
    const auto other = synth::resolve("synth:stream,n=8192");
    EXPECT_NE(other.hash(), def.hash());
    EXPECT_EQ(other.canonical(), "synth:stream,n=8192");
}

TEST(SynthSpec, ResolveRejectsBadInput)
{
    EXPECT_THROW(synth::resolve("synth:nope"), std::invalid_argument);
    EXPECT_THROW(synth::resolve("synth:stream,bogus=1"),
                 std::invalid_argument);
    EXPECT_THROW(synth::resolve("synth:stream,n=abc"),
                 std::invalid_argument);
    EXPECT_THROW(synth::resolve("synth:stream,n=-5"),
                 std::invalid_argument);
    EXPECT_THROW(synth::resolve("synth:tiled2d,order=diag"),
                 std::invalid_argument);
    EXPECT_THROW(synth::resolve("synth:stream,scale=0"),
                 std::invalid_argument);
    EXPECT_THROW(synth::resolve("synth:stream,warps=64"),
                 std::invalid_argument);
    // Out-of-range geometry is rejected at build time, not truncated.
    EXPECT_THROW(synth::make("synth:stencil3d,nx=100", 1.0),
                 std::invalid_argument);
    EXPECT_THROW(synth::make("synth:hash_shuffle,fmb=100", 1.0),
                 std::invalid_argument);
}

// ------------------------------------------------------------ registry

TEST(SynthRegistry, AtLeastSixFamilies)
{
    EXPECT_GE(synth::families().size(), 6u);
    for (const synth::FamilyInfo &f : synth::families()) {
        EXPECT_NE(synth::findFamily(f.name), nullptr);
        EXPECT_FALSE(f.summary.empty());
        EXPECT_FALSE(f.params.empty());
    }
    EXPECT_EQ(synth::findFamily("nope"), nullptr);
}

TEST(SynthRegistry, MakeFallsThroughFromWorkloads)
{
    const auto wl = workloads::make("synth:stream", 0.25);
    EXPECT_EQ(wl->info().suite, "synth");
    EXPECT_EQ(wl->info().abbrev, "synth:stream");
    EXPECT_FALSE(wl->info().dims.empty());
    EXPECT_THROW(workloads::make("synth:nope", 0.25),
                 std::invalid_argument);
    EXPECT_THROW(workloads::make("synth:stream", 0.0),
                 std::invalid_argument);
}

TEST(SynthRegistry, AbbrevIsCanonicalSpec)
{
    const auto wl =
        workloads::make("synth:tiled2d,ny=512,order=col", 0.5);
    // Default parameters vanish from the canonical identity.
    EXPECT_EQ(wl->info().abbrev, "synth:tiled2d");
}

// ------------------------------------------------- generator invariants

class EverySynthFamily
    : public ::testing::TestWithParam<std::string>
{
};

INSTANTIATE_TEST_SUITE_P(
    Suite, EverySynthFamily, ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const synth::FamilyInfo &f : synth::families())
            names.push_back(f.name);
        return names;
    }()),
    [](const auto &info) { return info.param; });

TEST_P(EverySynthFamily, ProducesRequests)
{
    const auto wl =
        workloads::make("synth:" + GetParam(), 0.25);
    EXPECT_GT(wl->countRequests(), 1000u);
}

TEST_P(EverySynthFamily, LinesAlignedAndWithinPhysicalSpace)
{
    const auto wl = workloads::make("synth:" + GetParam(), 0.25);
    const Addr limit = Addr{1} << kPhysAddrBits;
    for (const Kernel &k : wl->kernels()) {
        for (TbId tb : {TbId{0}, k.numTbs() / 2, k.numTbs() - 1}) {
            const TbTrace t = k.trace(tb);
            ASSERT_EQ(t.warps.size(), k.warpsPerTb());
            for (const auto &warp : t.warps)
                for (const auto &instr : warp.instrs)
                    for (Addr line : instr.lines) {
                        ASSERT_EQ(line % 128, 0u)
                            << GetParam() << " " << k.name();
                        ASSERT_LT(line, limit)
                            << GetParam() << " " << k.name();
                    }
        }
    }
}

TEST_P(EverySynthFamily, SameSpecSameTraceAcrossRuns)
{
    const std::string spec = "synth:" + GetParam();
    const auto w1 = workloads::make(spec, 0.25);
    const auto w2 = workloads::make(spec, 0.25);
    ASSERT_EQ(w1->numKernels(), w2->numKernels());
    for (unsigned ki = 0; ki < w1->numKernels(); ++ki) {
        const Kernel &k1 = w1->kernels()[ki];
        const Kernel &k2 = w2->kernels()[ki];
        ASSERT_EQ(k1.numTbs(), k2.numTbs());
        for (TbId tb : {TbId{0}, k1.numTbs() - 1}) {
            const TbTrace a = k1.trace(tb);
            const TbTrace b = k2.trace(tb);
            ASSERT_EQ(a.warps.size(), b.warps.size());
            for (std::size_t w = 0; w < a.warps.size(); ++w) {
                ASSERT_EQ(a.warps[w].instrs.size(),
                          b.warps[w].instrs.size());
                for (std::size_t i = 0; i < a.warps[w].instrs.size();
                     ++i) {
                    EXPECT_EQ(a.warps[w].instrs[i].lines,
                              b.warps[w].instrs[i].lines);
                    EXPECT_EQ(a.warps[w].instrs[i].write,
                              b.warps[w].instrs[i].write);
                }
            }
        }
    }
}

TEST_P(EverySynthFamily, ProfileIdenticalAcrossThreadCounts)
{
    const auto wl = workloads::make("synth:" + GetParam(), 0.25);
    workloads::ProfileOptions serial;
    serial.threads = 1;
    workloads::ProfileOptions parallel;
    parallel.threads = 3;
    const EntropyProfile a = workloads::profileWorkload(*wl, serial);
    const EntropyProfile b = workloads::profileWorkload(*wl, parallel);
    EXPECT_EQ(a.perBit, b.perBit);
    EXPECT_EQ(a.weight, b.weight);
}

TEST_P(EverySynthFamily, ScaleShrinksTraces)
{
    const std::string spec = "synth:" + GetParam();
    const auto big = workloads::make(spec, 1.0);
    const auto small = workloads::make(spec, 0.25);
    EXPECT_LE(small->countRequests(), big->countRequests());
}

// -------------------------------------------------------- entropy shape

TEST(SynthEntropy, Stencil3dShowsAValley)
{
    // The x-block bits sit on the channel bits and stay pinned across
    // the TB window; the y/z sweep keeps high bits hot — the shape
    // BimSearch exists to fix.
    const auto wl = workloads::make("synth:stencil3d", 0.5);
    workloads::ProfileOptions po;
    const EntropyProfile p = workloads::profileWorkload(*wl, po);
    EXPECT_LT(p.meanOver({8, 9}), 0.3);
    double best = 0.0;
    for (unsigned b = 10; b < 30; ++b)
        best = std::max(best, p.perBit[b]);
    EXPECT_GT(best, 0.9);
}

TEST(SynthEntropy, StridedValleyWidthFollowsPitch)
{
    // pitch 2048 pins bits 7-10; pitch 512 only bits 7-8 — the valley
    // is a controllable function of the spec.
    const auto wide =
        workloads::make("synth:strided,rows=4096", 1.0);
    const auto narrow =
        workloads::make("synth:strided,rows=4096,pitch=512", 1.0);
    workloads::ProfileOptions po;
    const EntropyProfile pw = workloads::profileWorkload(*wide, po);
    const EntropyProfile pn = workloads::profileWorkload(*narrow, po);
    EXPECT_LT(pw.meanOver({8, 9, 10}), 0.5);
    EXPECT_GT(pn.meanOver({9, 10}), pw.meanOver({9, 10}));
}

TEST(SynthEntropy, HashShuffleIsNearFlat)
{
    const auto wl =
        workloads::make("synth:hash_shuffle,fmb=64,tbs=32", 1.0);
    workloads::ProfileOptions po;
    const EntropyProfile p = workloads::profileWorkload(*wl, po);
    EXPECT_GT(p.meanOver({8, 9, 10, 11, 12, 13}), 0.95);
}

TEST(SynthEntropy, Tiled2dOrderFlipsTheValley)
{
    workloads::ProfileOptions po;
    const auto col =
        workloads::make("synth:tiled2d,order=col", 1.0);
    const auto row =
        workloads::make("synth:tiled2d,order=row", 1.0);
    const EntropyProfile pc = workloads::profileWorkload(*col, po);
    const EntropyProfile pr = workloads::profileWorkload(*row, po);
    EXPECT_LT(pc.meanOver({8, 9}), pr.meanOver({8, 9}));
    EXPECT_GT(pr.meanOver({8, 9}), 0.85);
    EXPECT_FALSE(col->info().entropyValley == false);
    EXPECT_FALSE(row->info().entropyValley);
}

TEST(SynthEntropy, PipelineKernelsMixRegimes)
{
    // Per-kernel profiles must differ: the transpose stage has a
    // valley the produce stage does not — the multi-kernel scenario.
    const auto wl = workloads::make("synth:pipeline", 0.5);
    ASSERT_GE(wl->numKernels(), 2u);
    workloads::ProfileOptions po;
    const EntropyProfile produce =
        workloads::profileKernel(wl->kernels()[0], po);
    const EntropyProfile transpose =
        workloads::profileKernel(wl->kernels()[1], po);
    double max_delta = 0.0;
    for (unsigned b = 7; b < 30; ++b)
        max_delta = std::max(max_delta,
                             std::abs(produce.perBit[b] -
                                      transpose.perBit[b]));
    EXPECT_GT(max_delta, 0.3);
}

// ------------------------------------------------- search end-to-end

TEST(SynthSearch, SbimBeatsBaseOnSynthValley)
{
    // The acceptance bar of the subsystem: BimSearch finds a matrix
    // that strictly improves a *synthetic* workload's target-bit
    // entropy, profiles flowing through the standard pipeline.
    setenv("VALLEY_CACHE", "0", 1); // keep this test hermetic
    const auto wl = workloads::make("synth:stencil3d", 0.25);
    const AddressLayout layout = AddressLayout::hynixGddr5();
    search::SearchOptions so = search::defaultOptions(layout);
    so.restarts = 2;
    so.iterations = 400;
    so.threads = 1;
    const search::WorkloadSearchResult r =
        search::searchWorkload(*wl, layout, so, 0.25);
    unsetenv("VALLEY_CACHE");

    EXPECT_GT(r.annealed.gain(), 0.0);
    const std::vector<unsigned> targets = layout.randomizeTargets();
    EXPECT_GT(r.searchedProfile.meanOver(targets),
              r.identityProfile.meanOver(targets));
    EXPECT_TRUE(r.annealed.bim.invertible());
}

// ------------------------------------------------------- scaled() fix

TEST(ScaledClamp, TinyScaleNeverProducesZeroDimensions)
{
    EXPECT_EQ(workloads::scaled(100, 0.001, 32), 32u);
    EXPECT_EQ(workloads::scaled(512, 1.0, 128), 512u);
    EXPECT_EQ(workloads::scaled(1, 0.01, 1), 1u);
    // Every family survives the smallest representable scale with a
    // non-empty trace (the clamp + the Kernel zero-TB guard).
    for (const std::string &spec : smallSpecs()) {
        const auto wl = workloads::make(spec, 0.01);
        EXPECT_GT(wl->countRequests(), 0u) << spec;
    }
}

TEST(ScaledClamp, ZeroTbKernelThrows)
{
    KernelParams p;
    p.numTbs = 0;
    EXPECT_THROW(Kernel(p, [](TbId, TraceBuilder &) {}),
                 std::invalid_argument);
    KernelParams q;
    q.warpsPerTb = 0;
    EXPECT_THROW(Kernel(q, [](TbId, TraceBuilder &) {}),
                 std::invalid_argument);
}
