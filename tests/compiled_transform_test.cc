/**
 * @file
 * Property tests for the byte-sliced CompiledTransform fast path and
 * the precompiled address-layout decoder: both must be exact
 * drop-in replacements for their naive counterparts.
 */

#include <gtest/gtest.h>

#include "bim/compiled_transform.hh"
#include "common/bitops.hh"
#include "common/rng.hh"
#include "mapping/address_mapper.hh"

using namespace valley;

TEST(CompiledTransform, MatchesNaiveApplyForAllSchemes)
{
    for (const AddressLayout &layout :
         {AddressLayout::hynixGddr5(), AddressLayout::stacked3d()}) {
        for (Scheme s : allSchemes()) {
            for (std::uint64_t seed : {1, 2, 3}) {
                const auto m = mapping::makeScheme(s, layout, seed);
                const CompiledTransform &ct = m->compiled();
                XorShiftRng rng(seed * 1000 +
                                static_cast<std::uint64_t>(s));
                for (int i = 0; i < 2000; ++i) {
                    const Addr a =
                        rng.next() & bits::mask(layout.addrBits);
                    ASSERT_EQ(ct.apply(a), m->matrix().apply(a))
                        << schemeName(s) << " seed " << seed
                        << " addr " << a;
                }
            }
        }
    }
}

TEST(CompiledTransform, MatchesNaiveApplyOnRandomInvertibleBims)
{
    XorShiftRng rng(2026);
    for (int trial = 0; trial < 30; ++trial) {
        const unsigned n = 2 + static_cast<unsigned>(rng.below(63));
        BitMatrix m(n);
        do {
            for (unsigned r = 0; r < n; ++r)
                m.setRow(r, rng.next() & bits::mask(n));
        } while (!m.invertible());
        const CompiledTransform ct(m);
        for (int i = 0; i < 500; ++i) {
            const Addr a = rng.next(); // full 64-bit input
            ASSERT_EQ(ct.apply(a), m.apply(a))
                << "n=" << n << " addr " << a;
        }
    }
}

TEST(CompiledTransform, PassThroughAboveMatrixSize)
{
    const BitMatrix m = BitMatrix::identity(8);
    const CompiledTransform ct(m);
    const Addr a = 0xFEDCBA9876543210ull;
    EXPECT_EQ(ct.apply(a), a);
}

TEST(CompiledTransform, IdentityDetection)
{
    EXPECT_TRUE(
        CompiledTransform(BitMatrix::identity(30)).isIdentity());
    BitMatrix m = BitMatrix::identity(30);
    m.set(8, 20, true);
    EXPECT_FALSE(CompiledTransform(m).isIdentity());

    const auto base = mapping::makeScheme(
        Scheme::BASE, AddressLayout::hynixGddr5(), 1);
    EXPECT_TRUE(base->compiled().isIdentity());
    const auto fae = mapping::makeScheme(
        Scheme::FAE, AddressLayout::hynixGddr5(), 1);
    EXPECT_FALSE(fae->compiled().isIdentity());
}

TEST(CompiledDecoder, MatchesLayoutDecode)
{
    XorShiftRng rng(7);
    for (const AddressLayout &layout :
         {AddressLayout::hynixGddr5(), AddressLayout::stacked3d()}) {
        const CompiledDecoder dec(layout);
        for (int i = 0; i < 5000; ++i) {
            const Addr a = rng.next() & bits::mask(layout.addrBits);
            const DramCoord slow = layout.decode(a);
            const DramCoord fast = dec.decode(a);
            ASSERT_EQ(fast.channel, slow.channel) << a;
            ASSERT_EQ(fast.bank, slow.bank) << a;
            ASSERT_EQ(fast.row, slow.row) << a;
            ASSERT_EQ(fast.column, slow.column) << a;
        }
    }
}

TEST(AddressMapper, MapUsesCompiledPath)
{
    // mapper.map must equal the naive matrix apply for every scheme —
    // the mapper freezes its matrix at construction.
    const AddressLayout layout = AddressLayout::hynixGddr5();
    XorShiftRng rng(11);
    for (Scheme s : allSchemes()) {
        const auto m = mapping::makeScheme(s, layout, 5);
        for (int i = 0; i < 1000; ++i) {
            const Addr a = rng.next() & bits::mask(30);
            ASSERT_EQ(m->map(a), m->matrix().apply(a));
        }
    }
}
