/**
 * @file
 * Unit tests for the window-based entropy metric (paper Section III).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hh"
#include "entropy/window_entropy.hh"

using namespace valley;

TEST(ShannonEntropyBaseV, FairCoinIsOne)
{
    EXPECT_DOUBLE_EQ(shannonEntropyBaseV({0.5, 0.5}), 1.0);
}

TEST(ShannonEntropyBaseV, ConstantIsZero)
{
    EXPECT_DOUBLE_EQ(shannonEntropyBaseV({1.0}), 0.0);
    EXPECT_DOUBLE_EQ(shannonEntropyBaseV({1.0, 0.0}), 0.0);
}

TEST(ShannonEntropyBaseV, PaperFootnoteExample)
{
    // Footnote 1: two unique BVRs with p = 2/3 and 1/3 -> H = 0.92.
    const double h = shannonEntropyBaseV({2.0 / 3.0, 1.0 / 3.0});
    EXPECT_NEAR(h, 0.918295, 1e-5);
}

TEST(ShannonEntropyBaseV, UniformOverVIsOneForAnyV)
{
    // log base v makes the uniform distribution max out at 1.
    for (int v = 2; v <= 8; ++v) {
        std::vector<double> p(v, 1.0 / v);
        EXPECT_NEAR(shannonEntropyBaseV(p), 1.0, 1e-12) << "v=" << v;
    }
}

TEST(ShannonEntropyBaseV, SkewLowersEntropy)
{
    EXPECT_LT(shannonEntropyBaseV({0.9, 0.1}),
              shannonEntropyBaseV({0.6, 0.4}));
}

TEST(ShannonEntropyBaseV, SingleOutcomeEdgeCases)
{
    // v == 1 must be handled inside the function (log base 1 is
    // undefined), whatever the support looks like: a lone
    // probability, one live outcome among zeros, or an empty vector.
    EXPECT_DOUBLE_EQ(shannonEntropyBaseV({1.0}), 0.0);
    EXPECT_DOUBLE_EQ(shannonEntropyBaseV({0.0, 0.0, 1.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(shannonEntropyBaseV({}), 0.0);
    EXPECT_DOUBLE_EQ(shannonEntropyBaseV({0.0, 0.0}), 0.0);
}

TEST(ShannonEntropyBaseV, AllEqualProbabilityIsExactlyOne)
{
    // The uniform distribution saturates the log-base-v metric; the
    // fair coin must be *exactly* 1 (windowBitEntropy sums it per
    // window and exact-equality tests depend on it).
    EXPECT_DOUBLE_EQ(shannonEntropyBaseV({0.5, 0.5}), 1.0);
    for (int v = 2; v <= 12; ++v) {
        std::vector<double> p(v, 1.0 / v);
        EXPECT_NEAR(shannonEntropyBaseV(p), 1.0, 1e-12) << "v=" << v;
        // Zero-probability entries must not change the support count.
        p.push_back(0.0);
        EXPECT_NEAR(shannonEntropyBaseV(p), 1.0, 1e-12) << "v=" << v;
    }
}

TEST(BvrAccumulator, CountsOnesPerBit)
{
    BvrAccumulator acc(4);
    acc.add(0b0001);
    acc.add(0b0011);
    acc.add(0b0111);
    acc.add(0b1111);
    const auto bvr = acc.bvrs();
    EXPECT_DOUBLE_EQ(bvr[0], 1.0);
    EXPECT_DOUBLE_EQ(bvr[1], 0.75);
    EXPECT_DOUBLE_EQ(bvr[2], 0.5);
    EXPECT_DOUBLE_EQ(bvr[3], 0.25);
    EXPECT_EQ(acc.requestCount(), 4u);
}

TEST(BvrAccumulator, EmptyIsAllZero)
{
    BvrAccumulator acc(8);
    for (double v : acc.bvrs())
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(WindowEntropy, PaperFigure3WindowSize2)
{
    // 8 TBs, alternating BVR 0 / 1 after sorting:
    // windows of 2: entropies 0,1,0,1,0,1,0 -> H* = 3/7.
    const std::vector<double> bvr = {0, 0, 1, 1, 0, 0, 1, 1};
    // Fig. 3 sorts per TB id; the sequence below reproduces the
    // figure's counts: windows alternate between {2 same} and {1+1}.
    const std::vector<double> fig3 = {0, 0, 1, 1, 0, 0, 1, 1};
    (void)bvr;
    EXPECT_NEAR(windowEntropy(fig3, 2), 3.0 / 7.0, 1e-12);
}

TEST(WindowEntropy, PaperFigure3WindowSize4)
{
    // Window size 4: every window holds two 0s and two 1s -> H* = 1.
    const std::vector<double> fig3 = {0, 0, 1, 1, 0, 0, 1, 1};
    EXPECT_DOUBLE_EQ(windowEntropy(fig3, 4), 1.0);
}

TEST(WindowEntropy, ConstantSeriesIsZero)
{
    EXPECT_DOUBLE_EQ(windowEntropy({0.5, 0.5, 0.5, 0.5}, 2), 0.0);
    EXPECT_DOUBLE_EQ(windowEntropy({0, 0, 0, 0, 0}, 3), 0.0);
}

TEST(WindowEntropy, WindowLargerThanSeriesUsesSingleWindow)
{
    // 2 TBs with different BVRs, window 8 -> one window, entropy 1.
    EXPECT_DOUBLE_EQ(windowEntropy({0.0, 1.0}, 8), 1.0);
}

TEST(WindowEntropy, EmptyOrZeroWindow)
{
    EXPECT_DOUBLE_EQ(windowEntropy({}, 4), 0.0);
    EXPECT_DOUBLE_EQ(windowEntropy({0.5}, 0), 0.0);
}

TEST(WindowEntropy, SingleTbIsZero)
{
    EXPECT_DOUBLE_EQ(windowEntropy({0.7}, 4), 0.0);
}

TEST(WindowEntropy, LargerWindowCanRaiseEntropy)
{
    // The paper's key observation (Fig. 3): inter-TB entropy can
    // compensate for low intra-TB entropy when the window grows.
    const std::vector<double> series = {0, 0, 1, 1, 0, 0, 1, 1};
    EXPECT_GT(windowEntropy(series, 4), windowEntropy(series, 2));
}

TEST(WindowEntropy, QuantizationTreatsEqualRatiosEqual)
{
    // 1/3 computed different ways must count as one BVR value.
    const double a = 1.0 / 3.0;
    const double b = 2.0 / 6.0;
    const double c = 333333.0 / 999999.0;
    EXPECT_DOUBLE_EQ(windowEntropy({a, b, c}, 3), 0.0);
}

TEST(WindowEntropy, ThreeDistinctValuesUseLogBase3)
{
    // One window of 3 distinct BVRs: uniform over v=3 -> entropy 1.
    EXPECT_DOUBLE_EQ(windowEntropy({0.0, 0.5, 1.0}, 3), 1.0);
}

TEST(WindowEntropy, IncrementalMatchesReferenceOracle)
{
    // The production implementation maintains the window multiset
    // incrementally; the per-window sort oracle must agree to within
    // accumulated-rounding noise on adversarial streams: few distinct
    // values (deep counts), all-distinct values (max support), and
    // alternating runs (counts repeatedly hitting zero).
    XorShiftRng rng(4242);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 4 + rng.below(180);
        std::vector<double> few(n), many(n), runs(n);
        for (std::size_t i = 0; i < n; ++i) {
            few[i] = static_cast<double>(rng.below(4)) / 3.0;
            many[i] = rng.uniform();
            runs[i] = (i / 3) % 2 ? 1.0 : 0.0;
        }
        for (unsigned w : {1u, 2u, 7u, 12u, 64u, 256u}) {
            for (const auto *s : {&few, &many, &runs}) {
                EXPECT_NEAR(windowEntropy(*s, w),
                            windowEntropyReference(*s, w), 1e-12)
                    << "n=" << n << " w=" << w;
            }
        }
    }
}

TEST(WindowEntropy, ReferenceAgreesOnPaperExamples)
{
    // The oracle itself still reproduces the Fig. 3 numbers.
    const std::vector<double> fig3 = {0, 0, 1, 1, 0, 0, 1, 1};
    EXPECT_NEAR(windowEntropyReference(fig3, 2), 3.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(windowEntropyReference(fig3, 4), 1.0);
    EXPECT_DOUBLE_EQ(windowEntropyReference({0.5, 0.5, 0.5}, 2), 0.0);
}

TEST(WindowBitEntropy, MatchesEq2OnBinaryBvrExamples)
{
    // On 0/1 BVRs the two readings coincide (Fig. 3 + footnote 1).
    const std::vector<double> fig3 = {0, 0, 1, 1, 0, 0, 1, 1};
    EXPECT_NEAR(windowBitEntropy(fig3, 2), windowEntropy(fig3, 2), 1e-12);
    EXPECT_NEAR(windowBitEntropy(fig3, 4), windowEntropy(fig3, 4), 1e-12);
    EXPECT_NEAR(windowBitEntropy(fig3, 2), 3.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(windowBitEntropy(fig3, 4), 1.0);
}

TEST(WindowBitEntropy, FootnoteExample)
{
    // Window of 3 TBs, BVRs {0, 0, 1}: p = 1/3 -> H = 0.92.
    EXPECT_NEAR(windowBitEntropy({0, 0, 1}, 3), 0.918295, 1e-5);
}

TEST(WindowBitEntropy, SweepingTbsCarryFullInformation)
{
    // TBs that each sweep the bit uniformly (BVR 0.5) saturate the
    // request-weighted reading; the literal BVR-distribution reading
    // sees a single unique value and reports zero.
    const std::vector<double> sweep(16, 0.5);
    EXPECT_DOUBLE_EQ(windowBitEntropy(sweep, 4), 1.0);
    EXPECT_DOUBLE_EQ(windowEntropy(sweep, 4), 0.0);
}

TEST(WindowBitEntropy, ConstantBitIsZero)
{
    EXPECT_DOUBLE_EQ(windowBitEntropy(std::vector<double>(8, 0.0), 4),
                     0.0);
    EXPECT_DOUBLE_EQ(windowBitEntropy(std::vector<double>(8, 1.0), 4),
                     0.0);
}

TEST(WindowBitEntropy, EdgeCases)
{
    EXPECT_DOUBLE_EQ(windowBitEntropy({}, 4), 0.0);
    EXPECT_DOUBLE_EQ(windowBitEntropy({0.5}, 0), 0.0);
    EXPECT_DOUBLE_EQ(windowBitEntropy({0.0, 1.0}, 8), 1.0);
}

namespace {

/**
 * The pre-memoization windowBitEntropy: sliding BVR sum with the
 * heap-allocating `shannonEntropyBaseV({p, 1 - p})` tail. The
 * memoized production path must reproduce it bit for bit — the memo
 * caches results keyed on the exact bit pattern of p, so a hit
 * returns the very double a prior identical input produced.
 */
double
windowBitEntropyReference(const std::vector<double> &bvr_per_tb,
                          unsigned window)
{
    const std::size_t n = bvr_per_tb.size();
    if (n == 0 || window == 0)
        return 0.0;
    const std::size_t w = std::min<std::size_t>(window, n);
    const std::size_t windows = n - w + 1;
    double sum_bvr = 0.0;
    for (std::size_t i = 0; i < w; ++i)
        sum_bvr += bvr_per_tb[i];
    double total = 0.0;
    for (std::size_t i = 0;; ++i) {
        const double p = sum_bvr / static_cast<double>(w);
        if (p > 0.0 && p < 1.0)
            total += shannonEntropyBaseV({p, 1.0 - p});
        if (i + 1 >= windows)
            break;
        sum_bvr += bvr_per_tb[i + w] - bvr_per_tb[i];
    }
    return total / static_cast<double>(windows);
}

} // namespace

TEST(WindowBitEntropy, MemoizedTailMatchesVectorFormExactly)
{
    // Random request-count-style BVRs (k/64 with k uniform) repeat
    // window means heavily — the memo-hit path — while fully random
    // doubles in (0, 1) are almost all misses. Both must equal the
    // reference bit for bit, across window sizes.
    XorShiftRng rng(91);
    for (const unsigned window : {1u, 2u, 5u, 12u, 64u}) {
        for (int trial = 0; trial < 20; ++trial) {
            std::vector<double> ratio(257), dense(257);
            for (std::size_t i = 0; i < ratio.size(); ++i) {
                ratio[i] =
                    static_cast<double>(rng.below(65)) / 64.0;
                dense[i] = rng.uniform();
            }
            ASSERT_EQ(windowBitEntropy(ratio, window),
                      windowBitEntropyReference(ratio, window))
                << "window=" << window << " trial=" << trial;
            ASSERT_EQ(windowBitEntropy(dense, window),
                      windowBitEntropyReference(dense, window))
                << "window=" << window << " trial=" << trial;
        }
    }
}

TEST(WindowBitEntropy, MemoizedTailHandlesDenormals)
{
    // Denormal window means exercise the memo's key scheme at the
    // bottom of the double range (every p > 0 has a nonzero bit
    // pattern, including subnormals). log of a subnormal is finite,
    // so the entropy term stays well-defined.
    const double tiny = std::numeric_limits<double>::denorm_min();
    const double sub = std::numeric_limits<double>::min() / 4.0;
    for (const unsigned window : {1u, 2u, 4u}) {
        const std::vector<double> series = {
            tiny, 0.0, sub, tiny, 0.5, sub * 3.0, 0.0, tiny};
        const double got = windowBitEntropy(series, window);
        const double want = windowBitEntropyReference(series, window);
        ASSERT_EQ(got, want) << "window=" << window;
        ASSERT_TRUE(std::isfinite(got));
        // Second call must hit the memo and return the same double.
        ASSERT_EQ(windowBitEntropy(series, window), got);
    }
}

TEST(KernelProfile, MetricSelection)
{
    // All TBs sweep bit 0 (BVR 0.5): BitProbability sees entropy 1,
    // BvrDistribution sees 0.
    const std::vector<std::vector<double>> tb_bvrs(8, {0.5});
    const auto bitp =
        kernelProfile(tb_bvrs, 4, 10, EntropyMetric::BitProbability);
    const auto bvrd =
        kernelProfile(tb_bvrs, 4, 10, EntropyMetric::BvrDistribution);
    EXPECT_DOUBLE_EQ(bitp.perBit[0], 1.0);
    EXPECT_DOUBLE_EQ(bvrd.perBit[0], 0.0);
}

TEST(KernelProfile, PerBitEntropyAndWeight)
{
    // Two TBs; bit 0 BVR flips 0->1 (entropy 1 with w=2), bit 1
    // constant (entropy 0).
    const std::vector<std::vector<double>> tb_bvrs = {
        {0.0, 1.0},
        {1.0, 1.0},
    };
    const EntropyProfile p = kernelProfile(tb_bvrs, 2, 1000);
    ASSERT_EQ(p.numBits(), 2u);
    EXPECT_DOUBLE_EQ(p.perBit[0], 1.0);
    EXPECT_DOUBLE_EQ(p.perBit[1], 0.0);
    EXPECT_EQ(p.weight, 1000u);
}

TEST(EntropyProfile, CombineWeightsByRequests)
{
    EntropyProfile a;
    a.perBit = {1.0, 0.0};
    a.weight = 300;
    EntropyProfile b;
    b.perBit = {0.0, 1.0};
    b.weight = 100;
    const EntropyProfile c = EntropyProfile::combine({a, b});
    EXPECT_DOUBLE_EQ(c.perBit[0], 0.75);
    EXPECT_DOUBLE_EQ(c.perBit[1], 0.25);
    EXPECT_EQ(c.weight, 400u);
}

TEST(EntropyProfile, CombineEmptyAndZeroWeight)
{
    EXPECT_EQ(EntropyProfile::combine({}).numBits(), 0u);
    EntropyProfile a;
    a.perBit = {0.5};
    a.weight = 0;
    const EntropyProfile c = EntropyProfile::combine({a});
    EXPECT_DOUBLE_EQ(c.perBit[0], 0.0);
}

TEST(EntropyProfile, MeanAndMinOver)
{
    EntropyProfile p;
    p.perBit = {0.2, 0.4, 0.9, 1.0};
    EXPECT_DOUBLE_EQ(p.meanOver({0, 1}), 0.3);
    EXPECT_DOUBLE_EQ(p.minOver({1, 2, 3}), 0.4);
    EXPECT_DOUBLE_EQ(p.meanOver({}), 0.0);
    // Out-of-range bits read as zero entropy.
    EXPECT_DOUBLE_EQ(p.minOver({17}), 0.0);
}

TEST(BitFlipProfile, DetectsTogglingBits)
{
    // Alternating bit 3, constant elsewhere.
    std::vector<Addr> reqs;
    for (int i = 0; i < 100; ++i)
        reqs.push_back(i % 2 ? 0x8 : 0x0);
    const EntropyProfile p = bitFlipProfile(reqs, 8);
    EXPECT_DOUBLE_EQ(p.perBit[3], 1.0);
    EXPECT_DOUBLE_EQ(p.perBit[2], 0.0);
    EXPECT_EQ(p.weight, 100u);
}

TEST(BitFlipProfile, EmptyAndSingleRequestAreZero)
{
    EXPECT_DOUBLE_EQ(bitFlipProfile({}, 8).perBit[0], 0.0);
    const std::vector<Addr> one = {0xFF};
    EXPECT_DOUBLE_EQ(bitFlipProfile(one, 8).perBit[0], 0.0);
}

TEST(BitFlipProfile, InterleavingChangesFlipRateButNotWindowEntropy)
{
    // The paper's Section VII argument: two TBs, A writing addresses
    // with bit 5 = 0 and B with bit 5 = 1. Round-robin interleaving
    // shows bit 5 flipping constantly; batched interleaving shows it
    // flipping once. The window-based metric sees identical BVR sets
    // either way.
    std::vector<Addr> round_robin, batched;
    for (int i = 0; i < 64; ++i) {
        round_robin.push_back(i % 2 ? 0x20 : 0x0);
        batched.push_back(i < 32 ? 0x0 : 0x20);
    }
    const double rr = bitFlipProfile(round_robin, 8).perBit[5];
    const double ba = bitFlipProfile(batched, 8).perBit[5];
    EXPECT_DOUBLE_EQ(rr, 1.0);
    EXPECT_LT(ba, 0.2); // one flip out of 63 pairs
    // Window entropy on the per-TB BVRs is interleaving-independent
    // by construction: both TBs have fixed BVRs {0, 1}.
    EXPECT_DOUBLE_EQ(windowBitEntropy({0.0, 1.0}, 2), 1.0);
}

TEST(EntropyProfile, ChartRendersBars)
{
    EntropyProfile p;
    p.perBit.assign(10, 0.0);
    p.perBit[9] = 1.0;
    const std::string chart = p.chart(9, 6);
    // Exactly one full-height column (bit 9) -> 10 '#'s.
    const auto hashes = std::count(chart.begin(), chart.end(), '#');
    EXPECT_EQ(hashes, 10);
}
