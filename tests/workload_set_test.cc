/**
 * @file
 * Tests for `workloads::WorkloadSet`: canonical order-insensitive
 * identity (members sorted/deduplicated, synth specs canonicalized),
 * the `--set`-style parser including synth specs with comma
 * parameters, and the `escapeSpecField` escaping that keeps spec
 * strings safe inside the one-line-per-entry cache CSVs.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "workloads/workload_set.hh"

using namespace valley;
using workloads::WorkloadSet;
using workloads::escapeSpecField;

TEST(EscapeSpecField, EscapesSeparatorsInjectively)
{
    EXPECT_EQ(escapeSpecField("MT"), "MT");
    EXPECT_EQ(escapeSpecField("a,b"), "a%2Cb");
    EXPECT_EQ(escapeSpecField("a;b"), "a%3Bb");
    EXPECT_EQ(escapeSpecField("a|b"), "a%7Cb");
    EXPECT_EQ(escapeSpecField("a\nb"), "a%0Ab");
    EXPECT_EQ(escapeSpecField("a\rb"), "a%0Db");
    // '%' itself escapes, so escaping is injective: the escaped form
    // of a literal "%2C" differs from the escape of ",".
    EXPECT_EQ(escapeSpecField("a%2Cb"), "a%252Cb");
    EXPECT_NE(escapeSpecField("a%2Cb"), escapeSpecField("a,b"));
    // No separator characters survive.
    const std::string e =
        escapeSpecField("synth:hash_shuffle,fmb=64,tbs=32");
    EXPECT_EQ(e.find(','), std::string::npos);
    EXPECT_EQ(e.find('\n'), std::string::npos);
}

TEST(WorkloadSet, IdentityIsOrderInsensitive)
{
    const WorkloadSet a({"MT", "LU", "GS"});
    const WorkloadSet b({"GS", "MT", "LU"});
    EXPECT_EQ(a.key(), b.key());
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_EQ(a.members(), b.members());
    EXPECT_EQ(a.shortId(), b.shortId());
    // Sorted member order is the defining order.
    EXPECT_EQ(a.members(),
              (std::vector<std::string>{"GS", "LU", "MT"}));
}

TEST(WorkloadSet, DeduplicatesAndCanonicalizesSynthSpecs)
{
    // Reordered synth parameters resolve to one canonical spec, so
    // the two spellings are the same member — and the duplicate "MT"
    // collapses.
    const WorkloadSet a(
        {"MT", "MT", "synth:hash_shuffle,fmb=64,tbs=32"});
    const WorkloadSet b({"synth:hash_shuffle,tbs=32,fmb=64", "MT"});
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.key(), b.key());
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(WorkloadSet, DistinctSetsGetDistinctIdentity)
{
    const WorkloadSet a({"MT", "LU"});
    const WorkloadSet b({"MT", "GS"});
    const WorkloadSet c({"MT"});
    EXPECT_NE(a.key(), b.key());
    EXPECT_NE(a.key(), c.key());
    EXPECT_NE(a.hash(), b.hash());
}

TEST(WorkloadSet, RejectsEmptyAndUnknownMembers)
{
    EXPECT_THROW(WorkloadSet({}), std::invalid_argument);
    EXPECT_THROW(WorkloadSet({"NOPE"}), std::invalid_argument);
    EXPECT_THROW(WorkloadSet({"synth:not_a_family"}),
                 std::invalid_argument);
}

TEST(WorkloadSet, ParseReattachesSynthParameters)
{
    // "fmb=64" / "tbs=32" are parameters of the preceding synth
    // member, not members themselves.
    const WorkloadSet s = WorkloadSet::parse(
        "MT,synth:hash_shuffle,fmb=64,tbs=32,LU");
    EXPECT_EQ(s.size(), 3u);
    const WorkloadSet expect(
        {"MT", "LU", "synth:hash_shuffle,fmb=64,tbs=32"});
    EXPECT_EQ(s.key(), expect.key());
}

TEST(WorkloadSet, ParseRejectsDanglingParameters)
{
    // A key=value fragment with no synth member to attach to.
    EXPECT_THROW(WorkloadSet::parse("fmb=64,MT"),
                 std::invalid_argument);
    EXPECT_THROW(WorkloadSet::parse("MT,fmb=64"),
                 std::invalid_argument);
}

TEST(WorkloadSet, BuildsEveryMemberInCanonicalOrder)
{
    const WorkloadSet s({"LU", "synth:strided", "MT"});
    const auto wls = s.build(0.25);
    ASSERT_EQ(wls.size(), 3u);
    for (std::size_t i = 0; i < wls.size(); ++i)
        EXPECT_EQ(wls[i]->info().abbrev, s.members()[i]);
    // Canonical (sorted) order, not construction order.
    EXPECT_EQ(wls[0]->info().abbrev, "LU");
    EXPECT_EQ(wls[1]->info().abbrev, "MT");
    EXPECT_EQ(wls[2]->info().abbrev, "synth:strided");
}

TEST(WorkloadSet, SplitListPreservesInputOrder)
{
    const auto raw = WorkloadSet::splitList(
        "MT,synth:hash_shuffle,fmb=64,LU");
    ASSERT_EQ(raw.size(), 3u);
    EXPECT_EQ(raw[0], "MT");
    EXPECT_EQ(raw[1], "synth:hash_shuffle,fmb=64");
    EXPECT_EQ(raw[2], "LU");
}

TEST(WorkloadSet, CanonicalMemberWeightsFollowTheSort)
{
    // Input order MT,LU — canonical order LU,MT: the weights must
    // travel with their members through the sort.
    const auto w = workloads::canonicalMemberWeights({"MT", "LU"},
                                                     {1.0, 2.0});
    const WorkloadSet set({"MT", "LU"});
    ASSERT_EQ(set.members()[0], "LU");
    ASSERT_EQ(w.size(), 2u);
    EXPECT_EQ(w[0], 2.0); // LU's weight
    EXPECT_EQ(w[1], 1.0); // MT's weight
}

TEST(WorkloadSet, CanonicalMemberWeightsSumDuplicates)
{
    const auto w = workloads::canonicalMemberWeights(
        {"MT", "LU", "MT"}, {1.0, 4.0, 2.0});
    // Set dedups to {LU, MT}; MT's two spellings sum.
    ASSERT_EQ(w.size(), 2u);
    EXPECT_EQ(w[0], 4.0);
    EXPECT_EQ(w[1], 3.0);
}

TEST(WorkloadSet, CanonicalMemberWeightsRejectBadInput)
{
    EXPECT_THROW(
        workloads::canonicalMemberWeights({"MT", "LU"}, {1.0}),
        std::invalid_argument);
    EXPECT_THROW(
        workloads::canonicalMemberWeights({"MT"}, {0.0}),
        std::invalid_argument);
    EXPECT_THROW(
        workloads::canonicalMemberWeights({"MT"}, {-1.0}),
        std::invalid_argument);
}
