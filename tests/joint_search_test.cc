/**
 * @file
 * Tests for the joint ("global") BIM search over workload sets:
 * the `JointObjective` combiners, bit-identical serial/parallel
 * restarts on a multi-member set, set-order invariance of both the
 * search result and the cache key, the size-1 set reducing exactly
 * to the single-workload search, the `maxEvaluations` budget cap,
 * and `Scheme::GBIM` end-to-end through `harness::runGrid` with
 * cache hits on repeat runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <unistd.h>

#include "harness/experiment.hh"
#include "search/sbim_cache.hh"
#include "search/searched_bim.hh"
#include "workloads/workload_set.hh"

using namespace valley;
using namespace valley::search;
using workloads::WorkloadSet;

namespace {

constexpr double kScale = 0.25;

AddressLayout
gddr5()
{
    return AddressLayout::hynixGddr5();
}

/** Planes for every member of a set, plus the pointer view. */
struct SetPlanes
{
    std::vector<std::unique_ptr<Workload>> wls;
    std::vector<TracePlanes> planes;

    explicit SetPlanes(const WorkloadSet &set)
        : wls(set.build(kScale))
    {
        planes.reserve(wls.size());
        for (const auto &w : wls)
            planes.emplace_back(*w, PlaneOptions{30, 1});
    }

    std::vector<const TracePlanes *>
    ptrs() const
    {
        std::vector<const TracePlanes *> out;
        for (const TracePlanes &p : planes)
            out.push_back(&p);
        return out;
    }
};

SearchOptions
smallOptions(const AddressLayout &layout)
{
    SearchOptions o = defaultOptions(layout);
    o.threads = 1;
    o.restarts = 2;
    o.iterations = 200;
    return o;
}

/** Scoped VALLEY_CACHE=0 so searches run live, never touch disk. */
struct CacheOff
{
    CacheOff() { setenv("VALLEY_CACHE", "0", 1); }
    ~CacheOff() { unsetenv("VALLEY_CACHE"); }
};

} // namespace

TEST(JointObjective, MeanOfOneMemberIsTheMemberCost)
{
    JointObjective obj;
    const double costs[] = {0.37};
    EXPECT_EQ(obj.combine(costs), 0.37);
}

TEST(JointObjective, CombinersFoldAsDocumented)
{
    JointObjective obj;
    const double costs[] = {0.2, 0.6, 0.1};
    EXPECT_NEAR(obj.combine(costs), 0.3, 1e-12);
    obj.combiner = JointCombiner::WorstCase;
    EXPECT_EQ(obj.combine(costs), 0.6);
    // Member weights skew the mean (and are ignored by WorstCase).
    obj.combiner = JointCombiner::Mean;
    obj.memberWeights = {1.0, 2.0, 1.0};
    EXPECT_NEAR(obj.combine(costs), (0.2 + 1.2 + 0.1) / 4.0, 1e-12);
    EXPECT_EQ(combinerName(JointCombiner::Mean),
              std::string("mean"));
    EXPECT_EQ(combinerName(JointCombiner::WorstCase),
              std::string("worst"));
}

TEST(JointSearch, ParallelRestartsBitIdenticalToSerialOnSet)
{
    const AddressLayout layout = gddr5();
    const WorkloadSet set({"MT", "LU", "synth:strided"});
    const SetPlanes sp(set);

    SearchOptions serial = smallOptions(layout);
    serial.restarts = 3;
    SearchOptions parallel = serial;
    parallel.threads = 3;

    const JointObjective obj = defaultJointObjective(
        layout, serial.targets, JointCombiner::Mean);
    const BimSearch ss(layout, sp.ptrs(), obj, serial);
    const BimSearch ps(layout, sp.ptrs(), obj, parallel);
    const SearchResult a = ss.anneal();
    const SearchResult b = ps.anneal();
    EXPECT_TRUE(a.bim == b.bim);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.identityCost, b.identityCost);
    EXPECT_EQ(a.bestRestart, b.bestRestart);
    EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);
    EXPECT_EQ(a.stats.accepted, b.stats.accepted);
    EXPECT_EQ(a.memberCosts, b.memberCosts);
    EXPECT_EQ(a.memberTargetEntropy, b.memberTargetEntropy);
}

TEST(JointSearch, PlaneCacheOffBitIdenticalToOnOnSet)
{
    // The incremental plane cache must be invisible to a multi-member
    // joint search too: same trajectory, same matrix, same counters
    // story (cached run toggles/xors planes, oracle run never does).
    const AddressLayout layout = gddr5();
    const WorkloadSet set({"MT", "synth:stencil3d"});
    const SetPlanes sp(set);

    SearchOptions cached = smallOptions(layout);
    SearchOptions oracle = cached;
    oracle.planeCache = false;

    const JointObjective obj = defaultJointObjective(
        layout, cached.targets, JointCombiner::Mean);
    const BimSearch cs(layout, sp.ptrs(), obj, cached);
    const BimSearch os(layout, sp.ptrs(), obj, oracle);
    const SearchResult a = cs.anneal();
    const SearchResult b = os.anneal();
    EXPECT_TRUE(a.bim == b.bim);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.identityCost, b.identityCost);
    EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);
    EXPECT_EQ(a.stats.accepted, b.stats.accepted);
    EXPECT_EQ(a.memberCosts, b.memberCosts);
    EXPECT_GT(a.stats.planeToggles + a.stats.planeXors, 0u);
    EXPECT_GT(a.stats.planeRebuilds, 0u);
    EXPECT_EQ(b.stats.planeToggles, 0u);
    EXPECT_EQ(b.stats.planeXors, 0u);
    EXPECT_EQ(b.stats.planeRebuilds, 0u);
}

TEST(JointSearch, JointMatrixImprovesEveryMemberHere)
{
    // One matrix against a 3-member set: the joint objective must
    // strictly beat identity, and on these valley-shaped members no
    // one should be left behind (that is what the min term plus the
    // joint mean is for).
    const AddressLayout layout = gddr5();
    const WorkloadSet set({"MT", "LU", "synth:stencil3d"});
    const SetPlanes sp(set);
    SearchOptions opts = smallOptions(layout);
    opts.iterations = 400;
    const BimSearch s(layout, sp.ptrs(),
                      defaultJointObjective(layout, opts.targets,
                                            JointCombiner::Mean),
                      opts);
    const SearchResult r = s.anneal();
    EXPECT_TRUE(r.bim.invertible());
    EXPECT_LT(r.cost, r.identityCost);
    ASSERT_EQ(r.memberCosts.size(), 3u);
    ASSERT_EQ(r.memberTargetEntropy.size(), 3u);
    for (std::size_t m = 0; m < 3; ++m) {
        // Each member's searched mean target entropy beats its own
        // identity baseline.
        double searched = 0.0, identity = 0.0;
        for (std::size_t i = 0; i < opts.targets.size(); ++i)
            searched += r.memberTargetEntropy[m][i];
        for (unsigned t : opts.targets)
            identity += sp.planes[m].rowEntropy(
                std::uint64_t{1} << t, opts.window, opts.metric);
        EXPECT_GT(searched, identity) << "member " << m;
    }
}

TEST(JointSearch, SetOrderInvarianceOfResultAndCacheKey)
{
    const CacheOff off; // live searches; nothing persisted
    const AddressLayout layout = gddr5();
    const WorkloadSet fwd({"MT", "LU", "synth:strided"});
    const WorkloadSet rev({"synth:strided", "LU", "MT"});
    const SearchOptions opts = smallOptions(layout);

    EXPECT_EQ(sbimCacheKey(fwd, kScale, layout.name, opts),
              sbimCacheKey(rev, kScale, layout.name, opts));

    const SetSearchResult a = searchSet(fwd, layout, opts, kScale);
    const SetSearchResult b = searchSet(rev, layout, opts, kScale);
    EXPECT_TRUE(a.annealed.bim == b.annealed.bim);
    EXPECT_EQ(a.annealed.cost, b.annealed.cost);
    EXPECT_EQ(a.annealed.memberCosts, b.annealed.memberCosts);
    ASSERT_EQ(a.searchedProfiles.size(), b.searchedProfiles.size());
    for (std::size_t m = 0; m < a.searchedProfiles.size(); ++m)
        EXPECT_EQ(a.searchedProfiles[m].perBit,
                  b.searchedProfiles[m].perBit);
}

TEST(JointSearch, SizeOneSetBitIdenticalToSearchWorkload)
{
    const CacheOff off;
    const AddressLayout layout = gddr5();
    const SearchOptions opts = smallOptions(layout);

    const WorkloadSet set({"MT"});
    const SetSearchResult joint =
        searchSet(set, layout, opts, kScale);
    const auto wl = workloads::make("MT", kScale);
    const WorkloadSearchResult single =
        searchWorkload(*wl, layout, opts, kScale);

    EXPECT_TRUE(joint.annealed.bim == single.annealed.bim);
    EXPECT_EQ(joint.annealed.cost, single.annealed.cost);
    EXPECT_EQ(joint.annealed.identityCost,
              single.annealed.identityCost);
    EXPECT_EQ(joint.annealed.targetEntropy,
              single.annealed.targetEntropy);
    EXPECT_EQ(joint.searchedProfiles[0].perBit,
              single.searchedProfile.perBit);
    EXPECT_EQ(joint.identityProfiles[0].perBit,
              single.identityProfile.perBit);

    // Mapper naming: size-1 sets stay "SBIM", real sets are "GBIM".
    EXPECT_EQ(jointMapperName(set), "SBIM");
    EXPECT_EQ(jointMapperName(WorkloadSet({"MT", "LU"})), "GBIM");
    const auto m1 = setMapper(layout, set, opts, kScale);
    const auto m2 = searchedMapper(layout, *wl, opts, kScale);
    EXPECT_EQ(m1->name(), "SBIM");
    EXPECT_TRUE(m1->matrix() == m2->matrix());
}

TEST(JointSearch, WeightedSizeOneEqualsUnweighted)
{
    // With one member, the weighted mean collapses to the member
    // cost no matter the weight, so the searched matrix must be
    // bit-identical to the unweighted search.
    const CacheOff off;
    const AddressLayout layout = gddr5();
    const WorkloadSet set({"MT"});

    const SearchOptions plain = smallOptions(layout);
    SearchOptions weighted = plain;
    weighted.memberWeights = {2.5};

    const SetSearchResult a = searchSet(set, layout, plain, kScale);
    const SetSearchResult b = searchSet(set, layout, weighted, kScale);
    EXPECT_TRUE(a.annealed.bim == b.annealed.bim);
    EXPECT_EQ(a.annealed.cost, b.annealed.cost);
    EXPECT_EQ(a.annealed.targetEntropy, b.annealed.targetEntropy);
}

TEST(JointSearch, MismatchedWeightsAreRejected)
{
    const CacheOff off;
    const AddressLayout layout = gddr5();
    SearchOptions opts = smallOptions(layout);
    opts.memberWeights = {1.0, 2.0, 3.0};
    EXPECT_THROW(
        searchSet(WorkloadSet({"MT", "LU"}), layout, opts, kScale),
        std::invalid_argument);
    EXPECT_THROW(setMapper(layout, WorkloadSet({"MT", "LU"}), opts,
                           kScale),
                 std::invalid_argument);
}

TEST(JointSearch, WeightsShapeTheSbimCacheKey)
{
    // Weights change the searched matrix, so they must change the
    // cache key — and empty weights must key exactly like a build
    // that predates the field.
    const AddressLayout layout = gddr5();
    const WorkloadSet set({"MT", "LU"});
    const SearchOptions plain = smallOptions(layout);
    SearchOptions weighted = plain;
    weighted.memberWeights = {1.0, 2.0};
    SearchOptions reweighted = plain;
    reweighted.memberWeights = {2.0, 1.0};

    const std::string k0 =
        sbimCacheKey(set, kScale, layout.name, plain);
    const std::string k1 =
        sbimCacheKey(set, kScale, layout.name, weighted);
    const std::string k2 =
        sbimCacheKey(set, kScale, layout.name, reweighted);
    EXPECT_NE(k0, k1);
    EXPECT_NE(k0, k2);
    EXPECT_NE(k1, k2);
}

TEST(JointSearch, MaxEvaluationsIsAHardDeterministicCap)
{
    const AddressLayout layout = gddr5();
    const WorkloadSet set({"MT", "LU"});
    const SetPlanes sp(set);
    const JointObjective obj = defaultJointObjective(
        layout, defaultOptions(layout).targets, JointCombiner::Mean);

    SearchOptions uncapped = smallOptions(layout);
    const BimSearch su(layout, sp.ptrs(), obj, uncapped);
    const SearchResult ru = su.anneal();
    EXPECT_FALSE(ru.stats.capped);

    SearchOptions capped = uncapped;
    capped.maxEvaluations = 300;
    const BimSearch sc(layout, sp.ptrs(), obj, capped);
    const SearchResult rc = sc.anneal();
    EXPECT_TRUE(rc.stats.capped);
    EXPECT_LT(rc.stats.evaluations, ru.stats.evaluations);
    // Hard cap: each chain stops at its budget share; a move
    // evaluates at most one candidate row per member past the check.
    EXPECT_LE(rc.stats.evaluations,
              capped.maxEvaluations + capped.restarts * set.size());
    EXPECT_TRUE(rc.bim.invertible());

    // The greedy baseline is one chain and gets the whole per-run
    // cap, not a 1/restarts share (its rejected-without-evaluation
    // moves mean it needs a tighter cap than the anneal to bind).
    SearchOptions gcap = uncapped;
    gcap.maxEvaluations = 100;
    const BimSearch sg(layout, sp.ptrs(), obj, gcap);
    const SearchResult rg = sg.greedy();
    EXPECT_TRUE(rg.stats.capped);
    EXPECT_LE(rg.stats.evaluations,
              gcap.maxEvaluations + set.size());
    EXPECT_GT(rg.stats.evaluations,
              gcap.maxEvaluations / gcap.restarts + set.size());

    // Capped runs stay bit-identical at any thread count.
    SearchOptions capped_par = capped;
    capped_par.threads = 3;
    const BimSearch scp(layout, sp.ptrs(), obj, capped_par);
    const SearchResult rcp = scp.anneal();
    EXPECT_TRUE(rc.bim == rcp.bim);
    EXPECT_EQ(rc.stats.evaluations, rcp.stats.evaluations);

    // The cap shapes the outcome, so it must shape the cache key.
    EXPECT_NE(sbimCacheKey(set, kScale, layout.name, capped),
              sbimCacheKey(set, kScale, layout.name, uncapped));
    // So does the combiner.
    SearchOptions worst = uncapped;
    worst.combiner = JointCombiner::WorstCase;
    EXPECT_NE(sbimCacheKey(set, kScale, layout.name, worst),
              sbimCacheKey(set, kScale, layout.name, uncapped));
}

TEST(JointSearch, WorstCaseCombinerLiftsTheWorstMember)
{
    const AddressLayout layout = gddr5();
    const WorkloadSet set({"MT", "LU"});
    const SetPlanes sp(set);
    SearchOptions opts = smallOptions(layout);
    opts.combiner = JointCombiner::WorstCase;
    const BimSearch s(layout, sp.ptrs(),
                      defaultJointObjective(layout, opts.targets,
                                            JointCombiner::WorstCase),
                      opts);
    const SearchResult r = s.anneal();
    // The joint cost IS the worst member cost under this combiner.
    ASSERT_EQ(r.memberCosts.size(), 2u);
    EXPECT_EQ(r.cost,
              std::max(r.memberCosts[0], r.memberCosts[1]));
    EXPECT_LT(r.cost, r.identityCost);
}

namespace {

/** Point every cache at a fresh per-test-run directory. */
class GbimGridTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("valley_gbim_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir);
        setenv("VALLEY_CACHE_DIR", dir.c_str(), 1);
        unsetenv("VALLEY_CACHE");
    }

    void
    TearDown() override
    {
        unsetenv("VALLEY_CACHE_DIR");
        std::filesystem::remove_all(dir);
    }

    std::filesystem::path dir;
};

} // namespace

TEST_F(GbimGridTest, GbimRunsEndToEndWithCacheHitsOnRepeat)
{
    harness::GridOptions o;
    o.workloads = {"synth:strided", "synth:stencil3d"};
    o.schemes = {Scheme::BASE, Scheme::GBIM};
    o.scale = 0.25;
    o.useCache = true;
    o.threads = 1;

    const harness::Grid first = harness::runGrid(o);
    for (const std::string &w : o.workloads) {
        EXPECT_GT(first.speedup(w, Scheme::GBIM), 0.0) << w;
        EXPECT_GT(first.at(w, Scheme::GBIM).seconds, 0.0) << w;
    }
    // The searched-BIM cache now holds the joint matrix; a repeat
    // grid must reproduce every cell exactly from the caches.
    const harness::Grid second = harness::runGrid(o);
    for (const std::string &w : o.workloads)
        for (Scheme s : o.schemes)
            EXPECT_TRUE(first.at(w, s) == second.at(w, s))
                << w << " " << schemeName(s);
}

TEST(GbimScheme, MakeSchemeRefusesGbim)
{
    EXPECT_THROW(mapping::makeScheme(Scheme::GBIM, gddr5()),
                 std::invalid_argument);
    EXPECT_EQ(schemeName(Scheme::GBIM), "GBIM");
    // The paper's presentation order stays the six paper schemes.
    EXPECT_EQ(allSchemes().size(), 6u);
}
