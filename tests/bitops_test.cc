/**
 * @file
 * Unit tests for common/bitops.hh.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <vector>

#include "common/bitops.hh"
#include "common/rng.hh"

using namespace valley;

TEST(Bitops, MaskBasics)
{
    EXPECT_EQ(bits::mask(0), 0u);
    EXPECT_EQ(bits::mask(1), 1u);
    EXPECT_EQ(bits::mask(6), 0x3Fu);
    EXPECT_EQ(bits::mask(30), 0x3FFFFFFFu);
    EXPECT_EQ(bits::mask(64), ~std::uint64_t{0});
}

TEST(Bitops, ExtractField)
{
    const std::uint64_t v = 0b1011'0110'1100;
    EXPECT_EQ(bits::extract(v, 3, 0), 0b1100u);
    EXPECT_EQ(bits::extract(v, 7, 4), 0b0110u);
    EXPECT_EQ(bits::extract(v, 11, 8), 0b1011u);
    EXPECT_EQ(bits::extract(v, 11, 0), v);
}

TEST(Bitops, ExtractSingleBit)
{
    EXPECT_EQ(bits::bit(0b100, 2), 1u);
    EXPECT_EQ(bits::bit(0b100, 1), 0u);
    EXPECT_EQ(bits::bit(~std::uint64_t{0}, 63), 1u);
}

TEST(Bitops, InsertField)
{
    std::uint64_t v = 0;
    v = bits::insert(v, 7, 4, 0xF);
    EXPECT_EQ(v, 0xF0u);
    v = bits::insert(v, 7, 4, 0x3);
    EXPECT_EQ(v, 0x30u);
    // Inserting must not disturb neighboring bits.
    v = bits::insert(0xFFFF, 7, 4, 0);
    EXPECT_EQ(v, 0xFF0Fu);
}

TEST(Bitops, InsertTruncatesOversizedField)
{
    // Field wider than [hi:lo] is masked down.
    EXPECT_EQ(bits::insert(0, 3, 0, 0x1F), 0xFu);
}

TEST(Bitops, SetBit)
{
    EXPECT_EQ(bits::setBit(0, 5, 1), 32u);
    EXPECT_EQ(bits::setBit(32, 5, 0), 0u);
    EXPECT_EQ(bits::setBit(32, 5, 1), 32u);
}

TEST(Bitops, Parity)
{
    EXPECT_EQ(bits::parity(0), 0u);
    EXPECT_EQ(bits::parity(1), 1u);
    EXPECT_EQ(bits::parity(0b1010101), 0u);
    EXPECT_EQ(bits::parity(0b101010), 1u);
}

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(bits::isPow2(0));
    EXPECT_TRUE(bits::isPow2(1));
    EXPECT_TRUE(bits::isPow2(1024));
    EXPECT_FALSE(bits::isPow2(1023));
}

TEST(Bitops, Log2Exact)
{
    EXPECT_EQ(bits::log2Exact(1), 0u);
    EXPECT_EQ(bits::log2Exact(2), 1u);
    EXPECT_EQ(bits::log2Exact(1u << 20), 20u);
}

TEST(Bitops, Log2Ceil)
{
    EXPECT_EQ(bits::log2Ceil(1), 0u);
    EXPECT_EQ(bits::log2Ceil(2), 1u);
    EXPECT_EQ(bits::log2Ceil(3), 2u);
    EXPECT_EQ(bits::log2Ceil(4), 2u);
    EXPECT_EQ(bits::log2Ceil(5), 3u);
}

TEST(Bitops, Transpose64Orientation)
{
    // After the transpose, bit c of rows[r] is bit r of the original
    // rows[c] — the exact property the bit-sliced accumulator needs
    // (lane[b] position i == address i bit b).
    XorShiftRng rng(31);
    std::array<std::uint64_t, 64> orig, t;
    for (unsigned i = 0; i < 64; ++i)
        orig[i] = t[i] = rng.next();
    bits::transpose64(t.data());
    for (unsigned r = 0; r < 64; ++r)
        for (unsigned c = 0; c < 64; ++c)
            ASSERT_EQ((t[r] >> c) & 1, (orig[c] >> r) & 1)
                << "r=" << r << " c=" << c;
}

TEST(Bitops, Transpose64IsAnInvolution)
{
    XorShiftRng rng(32);
    std::array<std::uint64_t, 64> orig, t;
    for (unsigned i = 0; i < 64; ++i)
        orig[i] = t[i] = rng.next();
    bits::transpose64(t.data());
    bits::transpose64(t.data());
    EXPECT_EQ(t, orig);
}

TEST(Bitops, Transpose64Identity)
{
    // The identity matrix (row r = bit r) is its own transpose.
    std::array<std::uint64_t, 64> t;
    for (unsigned i = 0; i < 64; ++i)
        t[i] = std::uint64_t{1} << i;
    const std::array<std::uint64_t, 64> orig = t;
    bits::transpose64(t.data());
    EXPECT_EQ(t, orig);
}

// ---- runtime SIMD dispatch: every level must be bit-identical to the
// scalar oracle on random and adversarial inputs ------------------------------

namespace {

/** Kernel tables this CPU can actually run, scalar first. */
std::vector<const bits::SimdOps *>
availableLevels()
{
    std::vector<const bits::SimdOps *> out;
    for (const bits::SimdLevel level :
         {bits::SimdLevel::Scalar, bits::SimdLevel::Avx2,
          bits::SimdLevel::Avx512})
        if (const bits::SimdOps *ops = bits::simdOpsFor(level))
            out.push_back(ops);
    return out;
}

/** Word patterns that stress shuffle/blend/mask lanes, not just RNG. */
std::vector<std::uint64_t>
adversarialWords()
{
    std::vector<std::uint64_t> w = {
        0,
        ~std::uint64_t{0},
        0x5555555555555555ull,
        0xAAAAAAAAAAAAAAAAull,
        0x0F0F0F0F0F0F0F0Full,
        0x00FF00FF00FF00FFull,
        0x0000FFFF0000FFFFull,
        0x00000000FFFFFFFFull,
        0x8000000000000001ull,
        1,
    };
    for (unsigned b = 0; b < 64; b += 7)
        w.push_back(std::uint64_t{1} << b);
    return w;
}

/** Lengths around every vector-width boundary, plus empty. */
const std::size_t kLens[] = {0,  1,  2,  3,  4,  5,   7,   8,
                             9,  15, 16, 17, 31, 32,  33,  63,
                             64, 65, 96, 100, 511, 1024, 1025};

std::vector<std::uint64_t>
randomWords(std::size_t n, XorShiftRng &rng)
{
    std::vector<std::uint64_t> v(n);
    for (std::uint64_t &x : v)
        x = rng.next();
    return v;
}

} // namespace

TEST(SimdDispatch, ScalarTableAlwaysAvailable)
{
    EXPECT_EQ(bits::scalarSimdOps().level, bits::SimdLevel::Scalar);
    EXPECT_STREQ(bits::scalarSimdOps().name, "scalar");
    ASSERT_NE(bits::simdOpsFor(bits::SimdLevel::Scalar), nullptr);
    // The dispatched table is one of the constructable ones.
    const bits::SimdOps &d = bits::simdOps();
    EXPECT_EQ(bits::simdOpsFor(d.level), &d);
}

TEST(SimdDispatch, Transpose64MatchesScalar)
{
    XorShiftRng rng(77);
    for (const bits::SimdOps *ops : availableLevels()) {
        for (int trial = 0; trial < 50; ++trial) {
            std::array<std::uint64_t, 64> a, b;
            for (unsigned i = 0; i < 64; ++i)
                a[i] = b[i] = rng.next();
            bits::transpose64Scalar(a.data());
            ops->transpose64(b.data());
            ASSERT_EQ(a, b) << ops->name << " trial " << trial;
        }
        // Adversarial: constant-pattern rows hit degenerate blends.
        for (const std::uint64_t w : adversarialWords()) {
            std::array<std::uint64_t, 64> a, b;
            a.fill(w);
            b.fill(w);
            bits::transpose64Scalar(a.data());
            ops->transpose64(b.data());
            ASSERT_EQ(a, b) << ops->name << " word " << w;
        }
    }
}

TEST(SimdDispatch, PopcountWordsMatchesScalar)
{
    XorShiftRng rng(78);
    const bits::SimdOps &oracle = bits::scalarSimdOps();
    for (const bits::SimdOps *ops : availableLevels())
        for (const std::size_t n : kLens) {
            const auto v = randomWords(n, rng);
            ASSERT_EQ(ops->popcountWords(v.data(), n),
                      oracle.popcountWords(v.data(), n))
                << ops->name << " n=" << n;
        }
}

TEST(SimdDispatch, XorPopcount2MatchesScalarAndSupportsAliasing)
{
    XorShiftRng rng(79);
    const bits::SimdOps &oracle = bits::scalarSimdOps();
    for (const bits::SimdOps *ops : availableLevels())
        for (const std::size_t n : kLens) {
            const auto a = randomWords(n, rng);
            const auto b = randomWords(n, rng);
            std::vector<std::uint64_t> d1(n), d2(n);
            const std::uint64_t o1 =
                oracle.xorPopcount2(a.data(), b.data(), d1.data(), n);
            const std::uint64_t o2 =
                ops->xorPopcount2(a.data(), b.data(), d2.data(), n);
            ASSERT_EQ(o1, o2) << ops->name << " n=" << n;
            ASSERT_EQ(d1, d2) << ops->name << " n=" << n;
            // dst aliasing a is the in-place accept path of the
            // search's row cache.
            auto alias = a;
            const std::uint64_t oa = ops->xorPopcount2(
                alias.data(), b.data(), alias.data(), n);
            ASSERT_EQ(oa, o1) << ops->name << " alias n=" << n;
            ASSERT_EQ(alias, d1) << ops->name << " alias n=" << n;
        }
}

TEST(SimdDispatch, XorPopcountNMatchesScalar)
{
    XorShiftRng rng(80);
    const bits::SimdOps &oracle = bits::scalarSimdOps();
    for (const bits::SimdOps *ops : availableLevels())
        for (const std::size_t n : kLens)
            for (const std::size_t nsrc : {0u, 1u, 2u, 5u, 13u}) {
                std::vector<std::vector<std::uint64_t>> bufs;
                std::vector<const std::uint64_t *> srcs;
                for (std::size_t s = 0; s < nsrc; ++s) {
                    bufs.push_back(randomWords(n, rng));
                    srcs.push_back(bufs.back().data());
                }
                std::vector<std::uint64_t> d1(n, 0xDEAD),
                    d2(n, 0xBEEF);
                const std::uint64_t o1 = oracle.xorPopcountN(
                    srcs.data(), nsrc, d1.data(), n);
                const std::uint64_t o2 = ops->xorPopcountN(
                    srcs.data(), nsrc, d2.data(), n);
                ASSERT_EQ(o1, o2)
                    << ops->name << " n=" << n << " nsrc=" << nsrc;
                ASSERT_EQ(d1, d2)
                    << ops->name << " n=" << n << " nsrc=" << nsrc;
                // Null dst: count-only mode.
                ASSERT_EQ(
                    ops->xorPopcountN(srcs.data(), nsrc, nullptr, n),
                    o1)
                    << ops->name << " n=" << n << " nsrc=" << nsrc;
            }
}

TEST(SimdDispatch, XorPopcountEachMatchesScalar)
{
    XorShiftRng rng(81);
    const bits::SimdOps &oracle = bits::scalarSimdOps();
    for (const bits::SimdOps *ops : availableLevels())
        for (const std::size_t n : kLens) {
            auto a = randomWords(n, rng);
            const auto b = randomWords(n, rng);
            // Sprinkle adversarial words across the run.
            const auto adv = adversarialWords();
            for (std::size_t i = 0; i < n; i += 3)
                a[i] = adv[i % adv.size()];
            std::vector<std::uint64_t> d1(n), d2(n), c1(n), c2(n);
            oracle.xorPopcountEach(a.data(), b.data(), d1.data(),
                                   c1.data(), n);
            ops->xorPopcountEach(a.data(), b.data(), d2.data(),
                                 c2.data(), n);
            ASSERT_EQ(d1, d2) << ops->name << " n=" << n;
            ASSERT_EQ(c1, c2) << ops->name << " n=" << n;
            // dst aliasing a, as in the in-place row-cache update.
            auto alias = a;
            ops->xorPopcountEach(alias.data(), b.data(), alias.data(),
                                 c2.data(), n);
            ASSERT_EQ(alias, d1) << ops->name << " alias n=" << n;
            ASSERT_EQ(c2, c1) << ops->name << " alias n=" << n;
        }
}
