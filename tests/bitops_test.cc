/**
 * @file
 * Unit tests for common/bitops.hh.
 */

#include <gtest/gtest.h>

#include <array>

#include "common/bitops.hh"
#include "common/rng.hh"

using namespace valley;

TEST(Bitops, MaskBasics)
{
    EXPECT_EQ(bits::mask(0), 0u);
    EXPECT_EQ(bits::mask(1), 1u);
    EXPECT_EQ(bits::mask(6), 0x3Fu);
    EXPECT_EQ(bits::mask(30), 0x3FFFFFFFu);
    EXPECT_EQ(bits::mask(64), ~std::uint64_t{0});
}

TEST(Bitops, ExtractField)
{
    const std::uint64_t v = 0b1011'0110'1100;
    EXPECT_EQ(bits::extract(v, 3, 0), 0b1100u);
    EXPECT_EQ(bits::extract(v, 7, 4), 0b0110u);
    EXPECT_EQ(bits::extract(v, 11, 8), 0b1011u);
    EXPECT_EQ(bits::extract(v, 11, 0), v);
}

TEST(Bitops, ExtractSingleBit)
{
    EXPECT_EQ(bits::bit(0b100, 2), 1u);
    EXPECT_EQ(bits::bit(0b100, 1), 0u);
    EXPECT_EQ(bits::bit(~std::uint64_t{0}, 63), 1u);
}

TEST(Bitops, InsertField)
{
    std::uint64_t v = 0;
    v = bits::insert(v, 7, 4, 0xF);
    EXPECT_EQ(v, 0xF0u);
    v = bits::insert(v, 7, 4, 0x3);
    EXPECT_EQ(v, 0x30u);
    // Inserting must not disturb neighboring bits.
    v = bits::insert(0xFFFF, 7, 4, 0);
    EXPECT_EQ(v, 0xFF0Fu);
}

TEST(Bitops, InsertTruncatesOversizedField)
{
    // Field wider than [hi:lo] is masked down.
    EXPECT_EQ(bits::insert(0, 3, 0, 0x1F), 0xFu);
}

TEST(Bitops, SetBit)
{
    EXPECT_EQ(bits::setBit(0, 5, 1), 32u);
    EXPECT_EQ(bits::setBit(32, 5, 0), 0u);
    EXPECT_EQ(bits::setBit(32, 5, 1), 32u);
}

TEST(Bitops, Parity)
{
    EXPECT_EQ(bits::parity(0), 0u);
    EXPECT_EQ(bits::parity(1), 1u);
    EXPECT_EQ(bits::parity(0b1010101), 0u);
    EXPECT_EQ(bits::parity(0b101010), 1u);
}

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(bits::isPow2(0));
    EXPECT_TRUE(bits::isPow2(1));
    EXPECT_TRUE(bits::isPow2(1024));
    EXPECT_FALSE(bits::isPow2(1023));
}

TEST(Bitops, Log2Exact)
{
    EXPECT_EQ(bits::log2Exact(1), 0u);
    EXPECT_EQ(bits::log2Exact(2), 1u);
    EXPECT_EQ(bits::log2Exact(1u << 20), 20u);
}

TEST(Bitops, Log2Ceil)
{
    EXPECT_EQ(bits::log2Ceil(1), 0u);
    EXPECT_EQ(bits::log2Ceil(2), 1u);
    EXPECT_EQ(bits::log2Ceil(3), 2u);
    EXPECT_EQ(bits::log2Ceil(4), 2u);
    EXPECT_EQ(bits::log2Ceil(5), 3u);
}

TEST(Bitops, Transpose64Orientation)
{
    // After the transpose, bit c of rows[r] is bit r of the original
    // rows[c] — the exact property the bit-sliced accumulator needs
    // (lane[b] position i == address i bit b).
    XorShiftRng rng(31);
    std::array<std::uint64_t, 64> orig, t;
    for (unsigned i = 0; i < 64; ++i)
        orig[i] = t[i] = rng.next();
    bits::transpose64(t.data());
    for (unsigned r = 0; r < 64; ++r)
        for (unsigned c = 0; c < 64; ++c)
            ASSERT_EQ((t[r] >> c) & 1, (orig[c] >> r) & 1)
                << "r=" << r << " c=" << c;
}

TEST(Bitops, Transpose64IsAnInvolution)
{
    XorShiftRng rng(32);
    std::array<std::uint64_t, 64> orig, t;
    for (unsigned i = 0; i < 64; ++i)
        orig[i] = t[i] = rng.next();
    bits::transpose64(t.data());
    bits::transpose64(t.data());
    EXPECT_EQ(t, orig);
}

TEST(Bitops, Transpose64Identity)
{
    // The identity matrix (row r = bit r) is its own transpose.
    std::array<std::uint64_t, 64> t;
    for (unsigned i = 0; i < 64; ++i)
        t[i] = std::uint64_t{1} << i;
    const std::array<std::uint64_t, 64> orig = t;
    bits::transpose64(t.data());
    EXPECT_EQ(t, orig);
}
