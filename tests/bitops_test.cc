/**
 * @file
 * Unit tests for common/bitops.hh.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"

using namespace valley;

TEST(Bitops, MaskBasics)
{
    EXPECT_EQ(bits::mask(0), 0u);
    EXPECT_EQ(bits::mask(1), 1u);
    EXPECT_EQ(bits::mask(6), 0x3Fu);
    EXPECT_EQ(bits::mask(30), 0x3FFFFFFFu);
    EXPECT_EQ(bits::mask(64), ~std::uint64_t{0});
}

TEST(Bitops, ExtractField)
{
    const std::uint64_t v = 0b1011'0110'1100;
    EXPECT_EQ(bits::extract(v, 3, 0), 0b1100u);
    EXPECT_EQ(bits::extract(v, 7, 4), 0b0110u);
    EXPECT_EQ(bits::extract(v, 11, 8), 0b1011u);
    EXPECT_EQ(bits::extract(v, 11, 0), v);
}

TEST(Bitops, ExtractSingleBit)
{
    EXPECT_EQ(bits::bit(0b100, 2), 1u);
    EXPECT_EQ(bits::bit(0b100, 1), 0u);
    EXPECT_EQ(bits::bit(~std::uint64_t{0}, 63), 1u);
}

TEST(Bitops, InsertField)
{
    std::uint64_t v = 0;
    v = bits::insert(v, 7, 4, 0xF);
    EXPECT_EQ(v, 0xF0u);
    v = bits::insert(v, 7, 4, 0x3);
    EXPECT_EQ(v, 0x30u);
    // Inserting must not disturb neighboring bits.
    v = bits::insert(0xFFFF, 7, 4, 0);
    EXPECT_EQ(v, 0xFF0Fu);
}

TEST(Bitops, InsertTruncatesOversizedField)
{
    // Field wider than [hi:lo] is masked down.
    EXPECT_EQ(bits::insert(0, 3, 0, 0x1F), 0xFu);
}

TEST(Bitops, SetBit)
{
    EXPECT_EQ(bits::setBit(0, 5, 1), 32u);
    EXPECT_EQ(bits::setBit(32, 5, 0), 0u);
    EXPECT_EQ(bits::setBit(32, 5, 1), 32u);
}

TEST(Bitops, Parity)
{
    EXPECT_EQ(bits::parity(0), 0u);
    EXPECT_EQ(bits::parity(1), 1u);
    EXPECT_EQ(bits::parity(0b1010101), 0u);
    EXPECT_EQ(bits::parity(0b101010), 1u);
}

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(bits::isPow2(0));
    EXPECT_TRUE(bits::isPow2(1));
    EXPECT_TRUE(bits::isPow2(1024));
    EXPECT_FALSE(bits::isPow2(1023));
}

TEST(Bitops, Log2Exact)
{
    EXPECT_EQ(bits::log2Exact(1), 0u);
    EXPECT_EQ(bits::log2Exact(2), 1u);
    EXPECT_EQ(bits::log2Exact(1u << 20), 20u);
}

TEST(Bitops, Log2Ceil)
{
    EXPECT_EQ(bits::log2Ceil(1), 0u);
    EXPECT_EQ(bits::log2Ceil(2), 1u);
    EXPECT_EQ(bits::log2Ceil(3), 2u);
    EXPECT_EQ(bits::log2Ceil(4), 2u);
    EXPECT_EQ(bits::log2Ceil(5), 3u);
}
