/**
 * @file
 * Tests for the bit-sliced BVR accumulator: bit-for-bit equivalence
 * with the scalar `BvrAccumulator` at stream lengths that exercise
 * the block boundaries and the scalar tail path, plus the fused
 * remap entry point.
 */

#include <gtest/gtest.h>

#include <vector>

#include "bim/compiled_transform.hh"
#include "common/bitops.hh"
#include "common/rng.hh"
#include "entropy/sliced_bvr.hh"
#include "entropy/window_entropy.hh"
#include "mapping/address_mapper.hh"

using namespace valley;

namespace {

std::vector<Addr>
randomStream(std::size_t n, unsigned bits, std::uint64_t seed)
{
    XorShiftRng rng(seed);
    std::vector<Addr> addrs(n);
    for (Addr &a : addrs)
        a = rng.next() & bits::mask(bits);
    return addrs;
}

} // namespace

TEST(SlicedBvrAccumulator, MatchesScalarBitForBitAcrossTailLengths)
{
    // Lengths straddling the 64-address transpose block and the
    // 128-address packed block: everything from empty through
    // multi-block plus a partial tail.
    const std::size_t lengths[] = {0,   1,   2,   63,  64,  65,
                                   100, 127, 128, 129, 191, 192,
                                   255, 256, 1000, 4113};
    for (const std::size_t n : lengths) {
        const auto addrs = randomStream(n, 30, 1000 + n);
        BvrAccumulator scalar(30);
        SlicedBvrAccumulator sliced(30);
        for (Addr a : addrs) {
            scalar.add(a);
            sliced.add(a);
        }
        EXPECT_EQ(scalar.requestCount(), sliced.requestCount())
            << "n=" << n;
        const auto sb = scalar.bvrs();
        const auto lb = sliced.bvrs();
        ASSERT_EQ(sb.size(), lb.size());
        for (std::size_t b = 0; b < sb.size(); ++b)
            ASSERT_EQ(sb[b], lb[b]) << "n=" << n << " bit=" << b;
    }
}

TEST(SlicedBvrAccumulator, AddManyMatchesAdd)
{
    // Batched insertion in ragged chunk sizes must land exactly where
    // one-at-a-time insertion does, including the direct-from-source
    // full-block fast path.
    const auto addrs = randomStream(777, 30, 42);
    SlicedBvrAccumulator one(30), many(30);
    for (Addr a : addrs)
        one.add(a);
    std::size_t i = 0;
    const std::size_t chunks[] = {1, 63, 64, 129, 7, 256, 200};
    std::size_t c = 0;
    while (i < addrs.size()) {
        const std::size_t take =
            std::min(chunks[c++ % 7], addrs.size() - i);
        many.addMany({addrs.data() + i, take});
        i += take;
    }
    EXPECT_EQ(one.requestCount(), many.requestCount());
    EXPECT_EQ(one.bvrs(), many.bvrs());
}

TEST(SlicedBvrAccumulator, WideModeMatchesScalar)
{
    // nbits > 32 disables address packing; the plain 64-address block
    // must stay exact, including bits in the upper word half.
    const auto addrs = randomStream(517, 48, 7);
    BvrAccumulator scalar(48);
    SlicedBvrAccumulator sliced(48);
    for (Addr a : addrs) {
        scalar.add(a);
        sliced.add(a);
    }
    EXPECT_EQ(scalar.bvrs(), sliced.bvrs());
}

TEST(SlicedBvrAccumulator, IgnoresBitsAboveWidth)
{
    // Junk above `nbits` (packing leaves it in unread lanes) must not
    // leak into the tracked counts.
    XorShiftRng rng(9);
    BvrAccumulator scalar(8);
    SlicedBvrAccumulator sliced(8);
    for (int i = 0; i < 300; ++i) {
        const Addr a = rng.next(); // full 64-bit values
        scalar.add(a);
        sliced.add(a);
    }
    EXPECT_EQ(scalar.bvrs(), sliced.bvrs());
}

TEST(SlicedBvrAccumulator, AddManyMappedFusesTheRemap)
{
    // Feeding raw addresses through the fused remap must equal
    // mapping each address first and accumulating the result.
    const AddressLayout layout = AddressLayout::hynixGddr5();
    const auto mapper = mapping::makeScheme(Scheme::FAE, layout, 1);
    const CompiledTransform &ct = mapper->compiled();
    const auto addrs = randomStream(999, 30, 11);

    BvrAccumulator premapped(30);
    for (Addr a : addrs)
        premapped.add(ct.apply(a));

    SlicedBvrAccumulator fused(30);
    fused.addManyMapped(addrs, [&ct](Addr a) { return ct.apply(a); });

    EXPECT_EQ(premapped.requestCount(), fused.requestCount());
    EXPECT_EQ(premapped.bvrs(), fused.bvrs());
}

TEST(SlicedBvrAccumulator, EmptyIsAllZero)
{
    SlicedBvrAccumulator acc(16);
    EXPECT_EQ(acc.requestCount(), 0u);
    for (double v : acc.bvrs())
        EXPECT_DOUBLE_EQ(v, 0.0);
}
