/**
 * @file
 * Tests for the fork/join ThreadPool used by the parallel experiment
 * grid.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

using namespace valley;

TEST(ThreadPool, RunsEverySubmittedTaskOnce)
{
    ThreadPool pool(4);
    std::vector<int> hits(257, 0);
    for (std::size_t i = 0; i < hits.size(); ++i)
        pool.submit([&hits, i] { ++hits[i]; });
    pool.run();
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "task " << i;
}

TEST(ThreadPool, DeterministicResultPlacement)
{
    // Tasks write only their own slot, so the result layout is
    // independent of scheduling — the property the grid relies on.
    ThreadPool pool(8);
    std::vector<std::uint64_t> out(100, 0);
    for (std::size_t i = 0; i < out.size(); ++i)
        pool.submit([&out, i] { out[i] = i * i; });
    pool.run();
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ReusableAcrossRounds)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
        pool.run();
        EXPECT_EQ(count.load(), (round + 1) * 10);
    }
}

TEST(ThreadPool, BackToBackRoundsDoNotRace)
{
    // Regression: submit() used to publish tasks into the worker
    // deques immediately, so a worker still scanning after finishing
    // the previous round's last task could claim a next-round task
    // before run() initialized the counters — underflowing the
    // unsigned `unclaimed`/`pending` and hanging the pool. Tiny
    // rounds submitted back-to-back (the profiler's two-round
    // pattern) maximize that window; with the fix (staged tasks +
    // ticketed claims) this must neither hang nor drop/duplicate a
    // task.
    ThreadPool pool(4);
    std::atomic<int> count{0};
    int expected = 0;
    for (int round = 0; round < 2000; ++round) {
        const int tasks = 1 + round % 3;
        for (int i = 0; i < tasks; ++i)
            pool.submit([&count] {
                count.fetch_add(1, std::memory_order_relaxed);
            });
        expected += tasks;
        pool.run();
    }
    EXPECT_EQ(count.load(), expected);
}

TEST(ThreadPool, EmptyRunReturnsImmediately)
{
    ThreadPool pool(3);
    pool.run(); // must not deadlock
    SUCCEED();
}

TEST(ThreadPool, PropagatesTaskException)
{
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&completed, i] {
            if (i == 3)
                throw std::runtime_error("cell failed");
            ++completed;
        });
    EXPECT_THROW(pool.run(), std::runtime_error);
    // The remaining tasks still ran to completion.
    EXPECT_EQ(completed.load(), 7);
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, StealsFromBlockedWorker)
{
    // Round-robin placement (task i -> deque i % 2) puts `setter`
    // and `blocker` on worker 0's deque, `trivial` on worker 1's.
    // Worker 0 claims its own deque from the BACK, so its first task
    // is `blocker`, which waits on the promise only `setter` fulfils
    // — and `setter`, sitting at worker 0's FRONT, can only ever be
    // claimed by worker 1's steal. Any interleaving therefore forces
    // at least one steal, and a pool without stealing would deadlock
    // here (worker 0 blocked forever on its own front task).
    ThreadPool pool(2);
    std::promise<void> ready;
    std::shared_future<void> fut = ready.get_future().share();
    pool.submit([&ready] { ready.set_value(); });     // -> deque 0
    pool.submit([] {});                               // -> deque 1
    pool.submit([fut] {
        ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "setter was never stolen";
    });                                               // -> deque 0
    pool.run();
    EXPECT_GE(pool.stealCount(), 1u);
}

TEST(ThreadPool, SkewedLoadIsRebalancedByStealing)
{
    // All the slow tasks land on worker 0 (round-robin placement);
    // the other workers drain their trivial tasks immediately and
    // must steal from worker 0's backlog to help. The static
    // partition this pool replaced would leave them idle.
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 32; ++i) {
        const bool slow = i % 4 == 0;
        pool.submit([&done, slow] {
            if (slow)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            ++done;
        });
    }
    pool.run();
    EXPECT_EQ(done.load(), 32);
    EXPECT_GE(pool.stealCount(), 1u);
}

TEST(ThreadPool, NoStealsWithOneWorker)
{
    ThreadPool pool(1);
    std::atomic<int> done{0};
    for (int i = 0; i < 16; ++i)
        pool.submit([&done] { ++done; });
    pool.run();
    EXPECT_EQ(done.load(), 16);
    EXPECT_EQ(pool.stealCount(), 0u);
}
