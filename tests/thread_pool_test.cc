/**
 * @file
 * Tests for the fork/join ThreadPool used by the parallel experiment
 * grid.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hh"

using namespace valley;

TEST(ThreadPool, RunsEverySubmittedTaskOnce)
{
    ThreadPool pool(4);
    std::vector<int> hits(257, 0);
    for (std::size_t i = 0; i < hits.size(); ++i)
        pool.submit([&hits, i] { ++hits[i]; });
    pool.run();
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "task " << i;
}

TEST(ThreadPool, DeterministicResultPlacement)
{
    // Tasks write only their own slot, so the result layout is
    // independent of scheduling — the property the grid relies on.
    ThreadPool pool(8);
    std::vector<std::uint64_t> out(100, 0);
    for (std::size_t i = 0; i < out.size(); ++i)
        pool.submit([&out, i] { out[i] = i * i; });
    pool.run();
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ReusableAcrossRounds)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
        pool.run();
        EXPECT_EQ(count.load(), (round + 1) * 10);
    }
}

TEST(ThreadPool, EmptyRunReturnsImmediately)
{
    ThreadPool pool(3);
    pool.run(); // must not deadlock
    SUCCEED();
}

TEST(ThreadPool, PropagatesTaskException)
{
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&completed, i] {
            if (i == 3)
                throw std::runtime_error("cell failed");
            ++completed;
        });
    EXPECT_THROW(pool.run(), std::runtime_error);
    // The remaining tasks still ran to completion.
    EXPECT_EQ(completed.load(), 7);
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1u);
}
