/**
 * @file
 * Tests for the deterministic fault-injection hook: spec parsing,
 * exact-Nth-hit triggering, site filtering, and disarm/reset — the
 * machinery `bench/resume_smoke` and the CI interrupted-grid step
 * rely on. (Kill mode is exercised end-to-end by CI, not here: a
 * gtest process that _Exit(42)s fails the suite by design.)
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/fault_inject.hh"

using namespace valley;

namespace {

/** Disarm on scope exit so no test leaks an armed spec. */
struct Disarm
{
    ~Disarm() { fault::configure(""); }
};

} // namespace

TEST(FaultInject, MalformedSpecsAreRejected)
{
    EXPECT_THROW(fault::configure("nosite"), std::invalid_argument);
    EXPECT_THROW(fault::configure(":3"), std::invalid_argument);
    EXPECT_THROW(fault::configure("site:"), std::invalid_argument);
    EXPECT_THROW(fault::configure("site:0"), std::invalid_argument);
    EXPECT_THROW(fault::configure("site:x"), std::invalid_argument);
    EXPECT_THROW(fault::configure("site:3:explode"),
                 std::invalid_argument);
}

TEST(FaultInject, ThrowsAtExactlyTheNthHit)
{
    Disarm guard;
    fault::configure("cell:3:throw");
    fault::maybeInject("cell");
    fault::maybeInject("cell");
    EXPECT_EQ(fault::hitCount(), 2u);
    EXPECT_THROW(fault::maybeInject("cell"), fault::Injected);
    // Hits past N pass through: a resumed run that re-counts from an
    // earlier total must not re-fire a once-triggered fault.
    fault::maybeInject("cell");
    EXPECT_EQ(fault::hitCount(), 4u);
}

TEST(FaultInject, OtherSitesDoNotCount)
{
    Disarm guard;
    fault::configure("cache_write:1");
    fault::maybeInject("grid_cell");
    fault::maybeInject("grid_cell");
    EXPECT_EQ(fault::hitCount(), 0u);
    EXPECT_THROW(fault::maybeInject("cache_write"), fault::Injected);
}

TEST(FaultInject, DefaultModeIsThrow)
{
    Disarm guard;
    fault::configure("s:1");
    EXPECT_THROW(fault::maybeInject("s"), fault::Injected);
}

TEST(FaultInject, DisarmResetsCounterAndSilences)
{
    Disarm guard;
    fault::configure("s:2");
    fault::maybeInject("s");
    EXPECT_EQ(fault::hitCount(), 1u);
    fault::configure("");
    EXPECT_EQ(fault::hitCount(), 0u);
    // Disarmed: the would-be 2nd hit is a no-op.
    fault::maybeInject("s");
    EXPECT_EQ(fault::hitCount(), 0u);
    // Re-arming restarts the count from zero.
    fault::configure("s:2");
    fault::maybeInject("s");
    EXPECT_EQ(fault::hitCount(), 1u);
    EXPECT_THROW(fault::maybeInject("s"), fault::Injected);
}

TEST(FaultInject, EveryKRecursAfterTheFirstFiring)
{
    Disarm guard;
    fault::configure("s:2:every=3");
    fault::maybeInject("s");                             // hit 1
    EXPECT_THROW(fault::maybeInject("s"), fault::Injected); // hit 2
    fault::maybeInject("s");                             // hit 3
    fault::maybeInject("s");                             // hit 4
    EXPECT_THROW(fault::maybeInject("s"), fault::Injected); // hit 5
    fault::maybeInject("s");                             // hit 6
    fault::maybeInject("s");                             // hit 7
    EXPECT_THROW(fault::maybeInject("s"), fault::Injected); // hit 8
    EXPECT_EQ(fault::hitCount(), 8u);
}

TEST(FaultInject, EverySuffixComposesWithModeInEitherOrder)
{
    Disarm guard;
    fault::configure("s:1:throw:every=2");
    EXPECT_THROW(fault::maybeInject("s"), fault::Injected); // hit 1
    fault::maybeInject("s");                                // hit 2
    EXPECT_THROW(fault::maybeInject("s"), fault::Injected); // hit 3

    fault::configure("s:1:every=2:throw");
    EXPECT_THROW(fault::maybeInject("s"), fault::Injected); // hit 1
    fault::maybeInject("s");                                // hit 2
    EXPECT_THROW(fault::maybeInject("s"), fault::Injected); // hit 3
}

TEST(FaultInject, MalformedEverySuffixIsRejected)
{
    EXPECT_THROW(fault::configure("s:1:every"),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("s:1:every="),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("s:1:every=0"),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("s:1:every=x"),
                 std::invalid_argument);
}

TEST(FaultInject, ResetRestartsTheCountKeepingTheSpec)
{
    Disarm guard;
    fault::configure("s:2");
    fault::maybeInject("s");
    EXPECT_THROW(fault::maybeInject("s"), fault::Injected);
    // A once-only fault stays quiet past N...
    fault::maybeInject("s");
    EXPECT_EQ(fault::hitCount(), 3u);
    // ...until reset() re-arms the count (spec unchanged) — the hook
    // a multi-leg drill uses between legs without reparsing env.
    fault::reset();
    EXPECT_EQ(fault::hitCount(), 0u);
    fault::maybeInject("s");
    EXPECT_THROW(fault::maybeInject("s"), fault::Injected);
}
