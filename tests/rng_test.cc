/**
 * @file
 * Unit tests for the deterministic xorshift RNG.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

using namespace valley;

TEST(XorShiftRng, DeterministicForSeed)
{
    XorShiftRng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(XorShiftRng, DifferentSeedsDiverge)
{
    XorShiftRng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 16; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 12);
}

TEST(XorShiftRng, ZeroSeedIsUsable)
{
    XorShiftRng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(XorShiftRng, BelowStaysInRange)
{
    XorShiftRng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
    EXPECT_EQ(r.below(0), 0u);
    EXPECT_EQ(r.below(1), 0u);
}

TEST(XorShiftRng, RangeInclusive)
{
    XorShiftRng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values hit
}

TEST(XorShiftRng, UniformInUnitInterval)
{
    XorShiftRng r(11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(XorShiftRng, ShufflePreservesElements)
{
    XorShiftRng r(3);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(XorShiftRng, ChanceExtremes)
{
    XorShiftRng r(5);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0, 10));
        EXPECT_TRUE(r.chance(10, 10));
    }
}
