/**
 * @file
 * Unit and property tests for the six address mapping schemes.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitops.hh"
#include "common/rng.hh"
#include "mapping/address_mapper.hh"

using namespace valley;

namespace {

const AddressLayout &
gddr5()
{
    static const AddressLayout l = AddressLayout::hynixGddr5();
    return l;
}

} // namespace

TEST(Schemes, AllSchemesOrdered)
{
    const auto &order = allSchemes();
    ASSERT_EQ(order.size(), 6u);
    EXPECT_EQ(schemeName(order[0]), "BASE");
    EXPECT_EQ(schemeName(order[1]), "PM");
    EXPECT_EQ(schemeName(order[2]), "RMP");
    EXPECT_EQ(schemeName(order[3]), "PAE");
    EXPECT_EQ(schemeName(order[4]), "FAE");
    EXPECT_EQ(schemeName(order[5]), "ALL");
}

TEST(BaseScheme, IsIdentity)
{
    const auto m = mapping::makeScheme(Scheme::BASE, gddr5());
    XorShiftRng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const Addr a = rng.next() & bits::mask(30);
        EXPECT_EQ(m->map(a), a);
    }
    EXPECT_EQ(m->remapLatency(), 0u);
}

TEST(PmScheme, OnlyChannelAndBankBitsChange)
{
    const auto m = mapping::makeScheme(Scheme::PM, gddr5());
    XorShiftRng rng(2);
    const std::uint64_t target_mask = bits::mask(6) << 8; // bits 8-13
    for (int i = 0; i < 1000; ++i) {
        const Addr a = rng.next() & bits::mask(30);
        EXPECT_EQ(m->map(a) & ~target_mask, a & ~target_mask);
    }
}

TEST(PmScheme, XorsLowRowBits)
{
    const auto m = mapping::makeScheme(Scheme::PM, gddr5());
    // Flipping row bit 18 must flip exactly one target bit (bit 8) in
    // the output, since PM donors are the LSB row bits in order.
    const Addr base = 0;
    const Addr flipped = Addr{1} << 18;
    const Addr diff = m->map(base) ^ m->map(flipped);
    EXPECT_EQ(diff, (Addr{1} << 18) | (Addr{1} << 8));
}

TEST(PmScheme, MatrixRowsHaveTwoTaps)
{
    // Fig. 6c: PM rows for target bits have exactly two ones.
    const auto m = mapping::makeScheme(Scheme::PM, gddr5());
    for (unsigned t : gddr5().randomizeTargets())
        EXPECT_EQ(std::popcount(m->matrix().row(t)), 2);
}

TEST(RmpScheme, RoutesGlobalTopEntropyBitsToChannelBank)
{
    // RMP's donors are the suite's top-6 average-entropy bits (11-16,
    // per the Section IV-B methodology applied to our workload set);
    // they land in the channel/bank positions 8-13 in order.
    const auto m = mapping::makeScheme(Scheme::RMP, gddr5());
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_EQ(m->map(Addr{1} << (11 + i)), Addr{1} << (8 + i));
    // Displaced inputs 8..10 reappear at the vacated outputs 14..16.
    EXPECT_EQ(m->map(Addr{1} << 8), Addr{1} << 14);
    EXPECT_EQ(m->map(Addr{1} << 9), Addr{1} << 15);
    EXPECT_EQ(m->map(Addr{1} << 10), Addr{1} << 16);
    // Permutation matrix: every row has a single tap.
    EXPECT_EQ(m->matrix().xorGateCount(), 0u);
}

TEST(PaeScheme, ReadsOnlyPageBitsWritesOnlyChBank)
{
    const auto m = mapping::makeScheme(Scheme::PAE, gddr5(), 1);
    const auto targets = gddr5().randomizeTargets();
    const std::uint64_t page = gddr5().pageMask();
    for (unsigned t = 0; t < 30; ++t) {
        const bool is_target =
            std::find(targets.begin(), targets.end(), t) != targets.end();
        if (is_target) {
            EXPECT_EQ(m->matrix().row(t) & ~page, 0u) << "bit " << t;
        } else {
            EXPECT_TRUE(m->matrix().rowIsIdentity(t)) << "bit " << t;
        }
    }
}

TEST(PaeScheme, ColumnBitsNeverAffectOutput)
{
    // PAE must keep requests within a DRAM page on the same page:
    // changing only column/block bits never changes channel/bank/row.
    const auto m = mapping::makeScheme(Scheme::PAE, gddr5(), 1);
    XorShiftRng rng(3);
    const std::uint64_t page = gddr5().pageMask();
    for (int i = 0; i < 300; ++i) {
        const Addr base = rng.next() & bits::mask(30) & page;
        const DramCoord c0 = m->coordOf(base);
        for (int j = 0; j < 20; ++j) {
            const Addr col_noise =
                rng.next() & (gddr5().columnMask() | bits::mask(6));
            const DramCoord c = m->coordOf(base | col_noise);
            EXPECT_EQ(c.channel, c0.channel);
            EXPECT_EQ(c.bank, c0.bank);
            EXPECT_EQ(c.row, c0.row);
        }
    }
}

TEST(FaeScheme, ColumnBitsDoAffectChannelBank)
{
    // FAE harvests column entropy, so some column bit must influence
    // the channel/bank selection — the row-locality cost the paper
    // reports (Fig. 15).
    const auto m = mapping::makeScheme(Scheme::FAE, gddr5(), 1);
    bool any_column_tap = false;
    for (unsigned t : gddr5().randomizeTargets())
        any_column_tap |=
            (m->matrix().row(t) & gddr5().columnMask()) != 0;
    EXPECT_TRUE(any_column_tap);
    // But FAE still only rewrites channel/bank bits.
    XorShiftRng rng(4);
    const std::uint64_t target_mask = bits::mask(6) << 8;
    for (int i = 0; i < 1000; ++i) {
        const Addr a = rng.next() & bits::mask(30);
        EXPECT_EQ(m->map(a) & ~target_mask, a & ~target_mask);
    }
}

TEST(AllScheme, RewritesRowAndColumnBitsToo)
{
    const auto m = mapping::makeScheme(Scheme::ALL, gddr5(), 1);
    unsigned non_identity_rows = 0;
    for (unsigned b = 6; b < 30; ++b)
        non_identity_rows += !m->matrix().rowIsIdentity(b);
    // All 24 non-block rows are random; overwhelmingly unlikely that
    // any collapses to identity, but require at least row+col changes.
    EXPECT_GT(non_identity_rows, 12u);
}

TEST(AllSchemesP, BlockBitsAlwaysPreserved)
{
    for (Scheme s : allSchemes()) {
        const auto m = mapping::makeScheme(s, gddr5(), 1);
        XorShiftRng rng(5);
        for (int i = 0; i < 500; ++i) {
            const Addr a = rng.next() & bits::mask(30);
            EXPECT_EQ(m->map(a) & bits::mask(6), a & bits::mask(6))
                << schemeName(s);
        }
    }
}

TEST(AllSchemesP, BijectiveOnRandomSample)
{
    for (Scheme s : allSchemes()) {
        const auto m = mapping::makeScheme(s, gddr5(), 2);
        const auto inv = m->matrix().inverse();
        ASSERT_TRUE(inv.has_value()) << schemeName(s);
        XorShiftRng rng(6);
        for (int i = 0; i < 2000; ++i) {
            const Addr a = rng.next() & bits::mask(30);
            EXPECT_EQ(inv->apply(m->map(a)), a) << schemeName(s);
        }
    }
}

TEST(AllSchemesP, RemapLatencyOneCycleExceptBase)
{
    for (Scheme s : allSchemes()) {
        const auto m = mapping::makeScheme(s, gddr5(), 1);
        if (s == Scheme::BASE || s == Scheme::RMP) {
            // Pure wire permutations need no XOR gates.
            EXPECT_EQ(m->matrix().xorGateCount(), 0u);
        } else {
            EXPECT_EQ(m->remapLatency(), 1u) << schemeName(s);
        }
    }
}

TEST(AllSchemesP, SingleCycleXorTreeDepth)
{
    // The paper's single-cycle budget: tree depth must stay tiny
    // (< 6 levels of 2-input XORs even for ALL).
    for (Scheme s : allSchemes()) {
        const auto m = mapping::makeScheme(s, gddr5(), 1);
        EXPECT_LE(m->matrix().xorTreeDepth(), 5u) << schemeName(s);
    }
}

TEST(BroadSchemes, DifferentSeedsGiveDifferentBims)
{
    for (Scheme s : {Scheme::PAE, Scheme::FAE, Scheme::ALL}) {
        const auto m1 = mapping::makeScheme(s, gddr5(), 1);
        const auto m2 = mapping::makeScheme(s, gddr5(), 2);
        const auto m3 = mapping::makeScheme(s, gddr5(), 3);
        EXPECT_FALSE(m1->matrix() == m2->matrix()) << schemeName(s);
        EXPECT_FALSE(m2->matrix() == m3->matrix()) << schemeName(s);
        // Same seed reproduces the same BIM.
        const auto m1b = mapping::makeScheme(s, gddr5(), 1);
        EXPECT_TRUE(m1->matrix() == m1b->matrix()) << schemeName(s);
    }
}

TEST(Schemes3d, TargetsCoverStackVaultBank)
{
    const AddressLayout l = AddressLayout::stacked3d();
    for (Scheme s : {Scheme::PAE, Scheme::FAE, Scheme::ALL}) {
        const auto m = mapping::makeScheme(s, l, 1);
        EXPECT_TRUE(m->matrix().invertible());
        // 10 randomized bits (2 ch + 4 vault + 4 bank).
        unsigned randomized = 0;
        for (unsigned t : l.randomizeTargets())
            randomized += !m->matrix().rowIsIdentity(t);
        EXPECT_GE(randomized, 9u) << schemeName(s);
    }
    // PM and RMP build too.
    EXPECT_NO_THROW(mapping::makeScheme(Scheme::PM, l));
    EXPECT_NO_THROW(mapping::makeScheme(Scheme::RMP, l));
}

TEST(Mapper, CoordOfUsesMappedAddress)
{
    const auto base = mapping::makeScheme(Scheme::BASE, gddr5());
    const Addr a = (Addr{3} << 8) | (Addr{9} << 10); // ch 3, bank 9
    const DramCoord c = base->coordOf(a);
    EXPECT_EQ(c.channel, 3u);
    EXPECT_EQ(c.bank, 9u);

    const auto rmp = mapping::makeScheme(Scheme::RMP, gddr5());
    // Input bit 15 routed to output bit 12 (bank bit 2).
    const DramCoord cr = rmp->coordOf(Addr{1} << 15);
    EXPECT_EQ(cr.bank, 4u);
    EXPECT_EQ(cr.channel, 0u);
}

TEST(Mapper, CustomBimWrapping)
{
    BitMatrix m = BitMatrix::identity(30);
    m.set(8, 20, true); // channel bit harvests one row bit
    const auto mapper = mapping::makeCustom("MY", gddr5(), m);
    EXPECT_EQ(mapper->name(), "MY");
    EXPECT_EQ(mapper->map(Addr{1} << 20),
              (Addr{1} << 20) | (Addr{1} << 8));
}

TEST(Mapper, RejectsSingularBim)
{
    BitMatrix m = BitMatrix::identity(30);
    m.setRow(8, 0);
    EXPECT_THROW(mapping::makeCustom("BAD", gddr5(), m),
                 std::invalid_argument);
}

TEST(Mapper, RejectsSizeMismatch)
{
    EXPECT_THROW(
        mapping::makeCustom("BAD", gddr5(), BitMatrix::identity(16)),
        std::invalid_argument);
}

TEST(MinimalistOpenPage, RoutesLowestRowBitsToChannelBank)
{
    const auto m = mapping::makeMinimalistOpenPage(gddr5());
    EXPECT_EQ(m->name(), "MOP");
    // Row bits 18..23 land in the channel/bank positions 8..13.
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_EQ(m->map(Addr{1} << (18 + i)), Addr{1} << (8 + i));
    // Pure permutation, bijective.
    EXPECT_EQ(m->matrix().xorGateCount(), 0u);
    EXPECT_TRUE(m->matrix().invertible());
}

TEST(MinimalistOpenPage, ConsecutivePagesInterleaveAcrossChannels)
{
    // The scheme's design goal: page-sized strides hit different
    // channels/banks (good for CPU streams).
    const auto m = mapping::makeMinimalistOpenPage(gddr5());
    std::set<unsigned> channels;
    for (unsigned page = 0; page < 8; ++page)
        channels.insert(
            m->coordOf(Addr{page} << 18).channel);
    EXPECT_EQ(channels.size(), 4u);
}

TEST(RemapFromProfile, PicksTopEntropyBits)
{
    std::vector<double> profile(30, 0.1);
    // Plant high entropy at six scattered bits.
    for (unsigned b : {7u, 12u, 16u, 20u, 24u, 28u})
        profile[b] = 0.9;
    const auto m = mapping::makeRemapFromProfile(gddr5(), profile);
    // Each planted bit must land in a channel/bank position (8-13),
    // in ascending order.
    const unsigned planted[6] = {7, 12, 16, 20, 24, 28};
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_EQ(m->map(Addr{1} << planted[i]), Addr{1} << (8 + i));
    EXPECT_TRUE(m->matrix().invertible());
}

TEST(RemapFromProfile, MatchesDefaultRmpOnSuiteProfile)
{
    // Feeding a profile whose top-6 bits are 11..16 reproduces the
    // built-in RMP permutation.
    std::vector<double> profile(30, 0.0);
    for (unsigned b = 11; b <= 16; ++b)
        profile[b] = 1.0;
    const auto custom = mapping::makeRemapFromProfile(gddr5(), profile);
    const auto rmp = mapping::makeScheme(Scheme::RMP, gddr5());
    EXPECT_TRUE(custom->matrix() == rmp->matrix());
}

TEST(Schemes, ChannelSpreadOnPathologicalColumnMajorStream)
{
    // The Fig. 2 scenario: a column-major TB whose addresses differ
    // only in high-order bits all land on channel 0 under BASE; Broad
    // schemes must spread them over all 4 channels.
    const std::uint64_t stride = 1u << 17; // touches colHi+row bits only
    std::vector<Addr> addrs;
    for (int i = 0; i < 64; ++i)
        addrs.push_back(static_cast<Addr>(i) * stride);

    const auto count_channels = [&](const AddressMapper &m) {
        std::set<unsigned> chans;
        for (Addr a : addrs)
            chans.insert(m.coordOf(a).channel);
        return chans.size();
    };

    const auto base = mapping::makeScheme(Scheme::BASE, gddr5());
    const auto pae = mapping::makeScheme(Scheme::PAE, gddr5(), 1);
    const auto fae = mapping::makeScheme(Scheme::FAE, gddr5(), 1);
    EXPECT_EQ(count_channels(*base), 1u);
    EXPECT_EQ(count_channels(*pae), 4u);
    EXPECT_EQ(count_channels(*fae), 4u);
}
