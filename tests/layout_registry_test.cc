/**
 * @file
 * Tests for the declarative layout registry
 * (`mapping/layout_registry`): the presets derive bit-for-bit the
 * legacy hard-coded layouts, organizations are validated, unknown
 * keys diagnose with the registered list, and every preset is a
 * well-formed partition of its address space.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "mapping/address_layout.hh"
#include "mapping/layout_registry.hh"

using namespace valley;
using mapping::DramOrganization;
using mapping::FieldKind;
using mapping::OrgField;

namespace {

/** Exception message of a throwing callable (fails if it returns). */
template <typename Fn>
std::string
errorOf(Fn &&fn)
{
    try {
        fn();
    } catch (const std::invalid_argument &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected std::invalid_argument";
    return "";
}

void
expectField(const BitField &f, unsigned lo, unsigned width,
            const char *what)
{
    EXPECT_EQ(f.lo, lo) << what;
    EXPECT_EQ(f.width, width) << what;
}

} // namespace

TEST(LayoutRegistry, Gddr5PresetMatchesThePaperFig4Positions)
{
    // The positions the seed hard-coded from the paper's text: the
    // BASE valley covers channel bits 8-9 and bank bit 10; RMP's
    // donors are bits 8-11, 15 and 16.
    const AddressLayout l = mapping::makeLayout("gddr5_1gb");
    EXPECT_EQ(l.addrBits, 30u);
    expectField(l.block, 0, 6, "block");
    expectField(l.colLo, 6, 2, "colLo");
    expectField(l.channel, 8, 2, "channel");
    expectField(l.bank, 10, 4, "bank");
    expectField(l.colHi, 14, 4, "colHi");
    expectField(l.row, 18, 12, "row");
    EXPECT_EQ(l.vault.width, 0u);
    EXPECT_EQ(l.spec, "layout:gddr5_1gb");
}

TEST(LayoutRegistry, Stacked3dPresetMatchesTheLegacyConstructor)
{
    const AddressLayout l = mapping::makeLayout("stacked3d_4gb");
    EXPECT_EQ(l.addrBits, 32u);
    expectField(l.block, 0, 6, "block");
    expectField(l.colLo, 6, 2, "colLo");
    expectField(l.channel, 8, 2, "channel (stack select)");
    expectField(l.vault, 10, 4, "vault");
    expectField(l.bank, 14, 4, "bank");
    expectField(l.colHi, 18, 4, "colHi");
    expectField(l.row, 22, 10, "row");
}

TEST(LayoutRegistry, LegacyConstructorsDelegateToThePresets)
{
    // hynixGddr5/stacked3d and the registry can never drift: they ARE
    // the presets now.
    const AddressLayout a = AddressLayout::hynixGddr5();
    const AddressLayout b = mapping::makeLayout("layout:gddr5_1gb");
    EXPECT_EQ(a.spec, b.spec);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.addrBits, b.addrBits);
    EXPECT_EQ(a.row.lo, b.row.lo);
    EXPECT_EQ(AddressLayout::stacked3d().spec,
              "layout:stacked3d_4gb");
}

TEST(LayoutRegistry, EveryPresetPartitionsItsAddressSpace)
{
    // Structural invariant of any registered organization: the fields
    // tile [0, addrBits) exactly — pairwise disjoint, jointly
    // covering.
    for (const DramOrganization *org : mapping::layoutPresets()) {
        const AddressLayout l = mapping::makeLayout(org->key);
        std::uint64_t seen = 0;
        for (const BitField *f :
             {&l.block, &l.colLo, &l.channel, &l.vault, &l.bank,
              &l.colHi, &l.row}) {
            const std::uint64_t m = f->positionMask();
            EXPECT_EQ(seen & m, 0u) << org->key << ": overlap";
            seen |= m;
        }
        ASSERT_LT(l.addrBits, 64u);
        EXPECT_EQ(seen, (std::uint64_t{1} << l.addrBits) - 1)
            << org->key << ": fields must cover the address";
        EXPECT_GE(l.channel.width + l.vault.width, 1u) << org->key;
        EXPECT_GE(l.bank.width, 1u) << org->key;
        EXPECT_EQ(l.spec, "layout:" + org->key);
        EXPECT_EQ(mapping::layoutIdentity(l), l.spec);
    }
    // The new hardware axes of this PR are all present.
    for (const char *key :
         {"gddr5_1gb", "stacked3d_4gb", "hbm2_4gb", "ddr4_4gb",
          "gddr6_2gb"})
        EXPECT_NE(mapping::findLayoutPreset(key), nullptr) << key;
}

TEST(LayoutRegistry, SpecAndBareKeySpellAreEquivalent)
{
    EXPECT_EQ(mapping::canonicalLayoutSpec("hbm2_4gb"),
              "layout:hbm2_4gb");
    EXPECT_EQ(mapping::canonicalLayoutSpec("layout:hbm2_4gb"),
              "layout:hbm2_4gb");
    const AddressLayout a = mapping::makeLayout("hbm2_4gb");
    const AddressLayout b = mapping::makeLayout("layout:hbm2_4gb");
    EXPECT_EQ(a.spec, b.spec);
    EXPECT_EQ(a.addrBits, b.addrBits);
}

TEST(LayoutRegistry, UnknownKeyDiagnosticListsRegisteredKeys)
{
    const std::string msg =
        errorOf([] { mapping::makeLayout("nosuch"); });
    EXPECT_NE(msg.find("nosuch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("registered layouts"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("gddr5_1gb"), std::string::npos) << msg;
    EXPECT_NE(msg.find("hbm2_4gb"), std::string::npos) << msg;
}

TEST(LayoutRegistry, DuplicateKeyIsRejected)
{
    DramOrganization dup;
    dup.key = "gddr5_1gb";
    dup.displayName = "imposter";
    dup.summary = "duplicate";
    dup.fields = {{FieldKind::Block, 6},
                  {FieldKind::Channel, 2},
                  {FieldKind::Bank, 4},
                  {FieldKind::Row, 12}};
    const std::string msg = errorOf(
        [&] { mapping::registerLayout(dup); });
    EXPECT_NE(msg.find("gddr5_1gb"), std::string::npos) << msg;
    // The original preset is untouched.
    EXPECT_EQ(mapping::findLayoutPreset("gddr5_1gb")->displayName,
              "Hynix GDDR5 1GB");
}

TEST(LayoutRegistry, MalformedOrganizationsAreRejected)
{
    const auto org = [](std::vector<OrgField> fields) {
        DramOrganization o;
        o.key = "zzbadorg";
        o.displayName = "bad";
        o.summary = "bad";
        o.fields = std::move(fields);
        return o;
    };
    // Missing Row.
    EXPECT_THROW(mapping::layoutFromOrganization(
                     org({{FieldKind::Block, 6},
                          {FieldKind::Channel, 2},
                          {FieldKind::Bank, 4}})),
                 std::invalid_argument);
    // Duplicate Channel.
    EXPECT_THROW(mapping::layoutFromOrganization(
                     org({{FieldKind::Block, 6},
                          {FieldKind::Channel, 2},
                          {FieldKind::Channel, 2},
                          {FieldKind::Bank, 4},
                          {FieldKind::Row, 12}})),
                 std::invalid_argument);
    // Zero-width field.
    EXPECT_THROW(mapping::layoutFromOrganization(
                     org({{FieldKind::Block, 0},
                          {FieldKind::Channel, 2},
                          {FieldKind::Bank, 4},
                          {FieldKind::Row, 12}})),
                 std::invalid_argument);
}

TEST(LayoutRegistry, HandAssembledLayoutsKeyOnTheirName)
{
    // A layout built without the registry has no spec; its cache
    // identity falls back to the (escaped) free-form name.
    AddressLayout l = AddressLayout::hynixGddr5();
    l.spec.clear();
    l.name = "custom,layout";
    EXPECT_EQ(mapping::layoutIdentity(l), "custom%2Clayout");
}
