/**
 * @file
 * Tests for the experiment harness (grid running + normalization) and
 * an end-to-end reproduction sanity check at reduced scale.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "workloads/profiler.hh"

using namespace valley;
using namespace valley::harness;

namespace {

/** Shared small grid: one valley workload, three schemes. */
const Grid &
smallGrid()
{
    static const Grid grid = [] {
        GridOptions o;
        o.workloads = {"SC", "GS"};
        o.schemes = {Scheme::BASE, Scheme::PM, Scheme::FAE};
        o.scale = 0.5;
        return runGrid(std::move(o));
    }();
    return grid;
}

} // namespace

TEST(Harness, RunOneProducesLabeledResult)
{
    const RunResult r =
        runOne(SimConfig::paperBaseline(), Scheme::PAE, "GS", 0.25, 1);
    EXPECT_EQ(r.workload, "GS");
    EXPECT_EQ(r.scheme, "PAE");
    EXPECT_GT(r.cycles, 0u);
}

TEST(Harness, GridShapeAndLookup)
{
    const Grid &g = smallGrid();
    EXPECT_EQ(g.options().workloads.size(), 2u);
    EXPECT_EQ(g.at("SC", Scheme::BASE).workload, "SC");
    EXPECT_EQ(g.at("GS", Scheme::FAE).scheme, "FAE");
    EXPECT_THROW(g.at("XXX", Scheme::BASE), std::out_of_range);
    EXPECT_THROW(g.at("SC", Scheme::ALL), std::out_of_range);
}

TEST(Harness, BaseNormalizationsAreOne)
{
    const Grid &g = smallGrid();
    for (const auto &w : g.options().workloads) {
        EXPECT_DOUBLE_EQ(g.speedup(w, Scheme::BASE), 1.0);
        EXPECT_DOUBLE_EQ(g.dramPowerNorm(w, Scheme::BASE), 1.0);
        EXPECT_DOUBLE_EQ(g.systemPowerNorm(w, Scheme::BASE), 1.0);
        EXPECT_DOUBLE_EQ(g.perfPerWattNorm(w, Scheme::BASE), 1.0);
    }
    EXPECT_DOUBLE_EQ(g.hmeanSpeedup(Scheme::BASE), 1.0);
}

TEST(Harness, SpeedupIsTimeRatio)
{
    const Grid &g = smallGrid();
    const double expected = g.at("SC", Scheme::BASE).seconds /
                            g.at("SC", Scheme::FAE).seconds;
    EXPECT_DOUBLE_EQ(g.speedup("SC", Scheme::FAE), expected);
}

TEST(Harness, PerfPerWattConsistency)
{
    const Grid &g = smallGrid();
    const double sp = g.speedup("SC", Scheme::FAE);
    const double pw = g.systemPowerNorm("SC", Scheme::FAE);
    EXPECT_NEAR(g.perfPerWattNorm("SC", Scheme::FAE), sp / pw, 1e-9);
}

TEST(Harness, MeanHelpers)
{
    const Grid &g = smallGrid();
    const double m = g.mean(Scheme::BASE, [](const RunResult &r) {
        return r.llcMissRate;
    });
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
    EXPECT_GT(g.meanDramPowerNorm(Scheme::FAE), 0.0);
    EXPECT_GT(g.hmeanPerfPerWattNorm(Scheme::FAE), 0.0);
    EXPECT_NEAR(g.meanExecTimeNorm(Scheme::BASE), 1.0, 1e-12);
}

TEST(Harness, ReproductionShapeAtReducedScale)
{
    // End-to-end: even at half scale, FAE must beat BASE on the
    // valley workload SC and leave the random-access workload MUM
    // essentially untouched (paper Figs. 12 & 20).
    GridOptions o;
    o.workloads = {"SC", "MUM"};
    o.schemes = {Scheme::BASE, Scheme::FAE};
    o.scale = 0.5;
    const Grid g = runGrid(std::move(o));
    EXPECT_GT(g.speedup("SC", Scheme::FAE), 1.3);
    EXPECT_NEAR(g.speedup("MUM", Scheme::FAE), 1.0, 0.1);
}

TEST(Harness, ParallelGridBitIdenticalToSerial)
{
    // Each cell is an independent, deterministically seeded
    // simulation, so the threaded grid must reproduce the serial one
    // exactly — including every derived power/parallelism metric.
    GridOptions o;
    o.workloads = {"SC", "GS"};
    o.schemes = {Scheme::BASE, Scheme::FAE};
    o.scale = 0.25;

    GridOptions serial = o;
    serial.threads = 1;
    const Grid gs = runGrid(std::move(serial));

    GridOptions parallel = o;
    parallel.threads = 4;
    const Grid gp = runGrid(std::move(parallel));

    for (const auto &w : o.workloads)
        for (Scheme s : o.schemes)
            EXPECT_TRUE(gs.at(w, s) == gp.at(w, s))
                << w << "/" << schemeName(s);
}

TEST(Harness, BimSeedChangesBroadSchemeResults)
{
    // Fig. 19: different BIMs give (slightly) different results; the
    // run must at least be wired through to the generator.
    const RunResult a =
        runOne(SimConfig::paperBaseline(), Scheme::PAE, "GS", 0.25, 1);
    const RunResult b =
        runOne(SimConfig::paperBaseline(), Scheme::PAE, "GS", 0.25, 2);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(Profiler, MappedProfileRemovesValley)
{
    // Fig. 10: applying FAE to MT's addresses lifts the channel-bit
    // entropy that BASE leaves in the valley. (Full scale: the MT
    // valley needs the full TB grid to show against window w=12.)
    const auto wl = workloads::make("MT", 1.0);
    workloads::ProfileOptions po;
    const EntropyProfile base = workloads::profileWorkload(*wl, po);

    const auto fae = mapping::makeScheme(
        Scheme::FAE, AddressLayout::hynixGddr5(), 1);
    workloads::ProfileOptions pm = po;
    pm.mapper = fae.get();
    const EntropyProfile mapped = workloads::profileWorkload(*wl, pm);

    const std::vector<unsigned> chbank = {8, 9, 10, 11, 12, 13};
    EXPECT_GT(mapped.meanOver(chbank), base.meanOver(chbank) + 0.3);
    EXPECT_GT(mapped.minOver(chbank), 0.8);
}

TEST(Profiler, BlockBitsAlwaysZeroEntropy)
{
    const auto wl = workloads::make("FWT", 0.25);
    workloads::ProfileOptions po;
    const EntropyProfile p = workloads::profileWorkload(*wl, po);
    for (unsigned b = 0; b < 7; ++b)
        EXPECT_DOUBLE_EQ(p.perBit[b], 0.0) << "bit " << b;
}

TEST(Profiler, WindowSizeMatters)
{
    // Larger windows can only expose more inter-TB entropy (Fig. 3).
    const auto wl = workloads::make("MT", 0.5);
    workloads::ProfileOptions w1;
    w1.window = 1;
    workloads::ProfileOptions w12;
    w12.window = 12;
    const auto p1 = workloads::profileWorkload(*wl, w1);
    const auto p12 = workloads::profileWorkload(*wl, w12);
    double gain = 0.0;
    for (unsigned b = 6; b < 30; ++b)
        gain += p12.perBit[b] - p1.perBit[b];
    EXPECT_GT(gain, 0.0);
}
