/**
 * @file
 * Ablation study of the Broad-scheme design choices (not a paper
 * figure; DESIGN.md §5):
 *
 *  1. Input-range ablation: where may the BIM harvest entropy from?
 *     narrow PM donors -> page bits (PAE) -> +columns (FAE) ->
 *     rewrite everything (ALL), plus the two extra Remap baselines
 *     (minimalist open-page, profile-driven remap).
 *  2. Tap-count ablation: PAE with a minimum of 1/2/4/8 taps per
 *     generated row — how much "broadness" is actually needed?
 *
 * Run on three representative valley workloads at VALLEY_SCALE
 * (default 0.5).
 */

#include "bench_util.hh"
#include "bim/bim_builder.hh"

using namespace valley;

namespace {

const std::vector<std::string> kWorkloads = {"MT", "LU", "SC"};

double
hmeanSpeedup(const SimConfig &cfg, const AddressMapper &mapper,
             const std::vector<RunResult> &base, double scale)
{
    std::vector<double> v;
    for (std::size_t i = 0; i < kWorkloads.size(); ++i) {
        const auto wl = workloads::make(kWorkloads[i], scale);
        GpuSystem sim(cfg, mapper);
        const RunResult r = sim.run(*wl);
        v.push_back(base[i].seconds / r.seconds);
    }
    return harmonicMean(v);
}

} // namespace

int
main()
{
    bench::printHeader("Ablation",
                       "Broad-scheme design choices (MT+LU+SC hmean)");
    const double scale = bench::envScale(0.5);
    const SimConfig cfg = SimConfig::paperBaseline();
    const AddressLayout &l = cfg.layout;

    std::vector<RunResult> base;
    for (const auto &w : kWorkloads)
        base.push_back(
            harness::runOneCached(cfg, Scheme::BASE, w, scale));

    // --- 1. input-range ablation ------------------------------------
    TextTable t1;
    t1.setHeader({"mapper", "input range", "hmean speedup"});
    const auto add = [&](const AddressMapper &m, const char *range) {
        t1.addRow({m.name(), range,
                   TextTable::num(hmeanSpeedup(cfg, m, base, scale),
                                  2)});
    };
    add(*mapping::makeScheme(Scheme::PM, l), "1 row bit per target");
    add(*mapping::makeMinimalistOpenPage(l), "lowest row bits (remap)");
    add(*mapping::makeScheme(Scheme::RMP, l), "global top-entropy bits");
    add(*mapping::makeScheme(Scheme::PAE, l, 1), "page address bits");
    add(*mapping::makeScheme(Scheme::FAE, l, 1), "full address");
    add(*mapping::makeScheme(Scheme::ALL, l, 1),
        "full address, all outputs");
    std::printf("%s\n", t1.toString().c_str());

    // --- 2. tap-count ablation (PAE) ---------------------------------
    TextTable t2;
    t2.setHeader({"min taps/row", "avg taps", "xor gates",
                  "hmean speedup"});
    for (unsigned taps : {1u, 2u, 4u, 8u}) {
        XorShiftRng rng(100 + taps);
        const BitMatrix m = bim::randomBroad(
            l.addrBits, l.randomizeTargets(), l.pageMask(), rng, taps);
        const auto mapper = mapping::makeCustom(
            "PAE-t" + std::to_string(taps), l, m);
        double total_taps = 0;
        for (unsigned b : l.randomizeTargets())
            total_taps += std::popcount(m.row(b));
        t2.addRow({std::to_string(taps),
                   TextTable::num(total_taps /
                                      l.randomizeTargets().size(),
                                  1),
                   std::to_string(m.xorGateCount()),
                   TextTable::num(
                       hmeanSpeedup(cfg, *mapper, base, scale), 2)});
    }
    std::printf("%s\n", t2.toString().c_str());
    std::printf(
        "Reading: performance grows with the width of the harvested "
        "input range\n(the paper's Broad thesis); a handful of taps "
        "per row already captures most\nof the benefit, which is why "
        "random BIMs work (Fig. 19). VALLEY_SCALE=%.2f\n",
        scale);
    return 0;
}
