/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Each bench binary regenerates one table or figure of the paper.
 * Results are memoized under harness::cacheDir() (cache/ by default,
 * VALLEY_CACHE_DIR to relocate) so the benches that share the
 * Fig. 11-17 grid only simulate it once (VALLEY_CACHE=0 disables).
 * VALLEY_SCALE (0 < s <= 1) scales the workload problem sizes for
 * quick runs.
 */

#ifndef VALLEY_BENCH_BENCH_UTIL_HH
#define VALLEY_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "mapping/layout_registry.hh"
#include "workloads/profiler.hh"

namespace valley {
namespace bench {

/**
 * Minimal machine-readable bench output: a flat, ordered JSON object
 * written on destruction. Used for the BENCH_*.json perf-trajectory
 * files that later PRs compare against.
 */
class JsonEmitter
{
  public:
    explicit JsonEmitter(std::string path) : path(std::move(path)) {}

    ~JsonEmitter() { write(); }

    JsonEmitter(const JsonEmitter &) = delete;
    JsonEmitter &operator=(const JsonEmitter &) = delete;

    void
    field(const std::string &key, double v)
    {
        std::ostringstream out;
        out.precision(17);
        out << v;
        fields.emplace_back(key, out.str());
    }

    void
    field(const std::string &key, std::uint64_t v)
    {
        fields.emplace_back(key, std::to_string(v));
    }

    void
    field(const std::string &key, unsigned v)
    {
        field(key, static_cast<std::uint64_t>(v));
    }

    void
    field(const std::string &key, bool v)
    {
        fields.emplace_back(key, v ? "true" : "false");
    }

    void
    field(const std::string &key, const std::string &v)
    {
        fields.emplace_back(key, '"' + v + '"');
    }

    /** Keep string literals out of the bool overload. */
    void
    field(const std::string &key, const char *v)
    {
        field(key, std::string(v));
    }

    /**
     * Embed a pre-rendered JSON value verbatim (e.g. the metrics
     * registry snapshot, itself a nested object). The caller is
     * responsible for `json` being valid JSON; render it at nesting
     * depth 1 if it is multiline, so the indentation lines up.
     */
    void
    rawField(const std::string &key, std::string json)
    {
        fields.emplace_back(key, std::move(json));
    }

    void
    write() const
    {
        std::ofstream out(path);
        out << "{\n";
        for (std::size_t i = 0; i < fields.size(); ++i)
            out << "  \"" << fields[i].first
                << "\": " << fields[i].second
                << (i + 1 < fields.size() ? ",\n" : "\n");
        out << "}\n";
    }

  private:
    std::string path;
    std::vector<std::pair<std::string, std::string>> fields;
};

inline double
envScale(double fallback = 1.0)
{
    if (const char *s = std::getenv("VALLEY_SCALE")) {
        const double v = std::atof(s);
        if (v > 0.0 && v <= 1.0)
            return v;
    }
    return fallback;
}

/**
 * Workload axis override: VALLEY_WORKLOADS is a ';'-separated list of
 * Table II abbreviations and/or `synth:` spec strings (';' because
 * spec parameters use ','). Empty/unset keeps `fallback` — so every
 * grid bench can be pointed at a synthetic set without recompiling:
 *
 *   VALLEY_WORKLOADS='synth:stencil3d;synth:strided' ./build/fig12_speedup
 */
inline std::vector<std::string>
envWorkloads(std::vector<std::string> fallback)
{
    const char *s = std::getenv("VALLEY_WORKLOADS");
    if (!s || !*s)
        return fallback;
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(s);
    while (std::getline(in, item, ';'))
        if (!item.empty())
            out.push_back(item);
    return out.empty() ? fallback : out;
}

/**
 * Layout axis override: VALLEY_LAYOUT names a registered DRAM
 * organization preset (a key like `hbm2_4gb` or a `layout:` spec —
 * see `valley_search --list-layouts`). Unset keeps the bench's
 * config default (the paper's GDDR5 baseline), so any fig grid can
 * be rerun on another organization without recompiling:
 *
 *   VALLEY_LAYOUT=hbm2_4gb ./build/fig12_speedup
 */
inline AddressLayout
envLayout(AddressLayout fallback)
{
    const char *s = std::getenv("VALLEY_LAYOUT");
    if (!s || !*s)
        return fallback;
    return mapping::makeLayout(s); // throws on unknown presets
}

inline void
printHeader(const std::string &experiment, const std::string &what)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s — %s\n", experiment.c_str(), what.c_str());
    std::printf("Get Out of the Valley (ISCA'18) reproduction; see "
                "EXPERIMENTS.md\n");
    std::printf("==================================================="
                "=========================\n\n");
}

/**
 * The Fig. 11-17 grid: valley set x `schemes`, Table I machine.
 * Benches that add columns (fig12's SBIM) pass an extended scheme
 * list; the shared cells still come from the same result cache.
 * VALLEY_WORKLOADS swaps the workload axis (synth specs included).
 */
inline harness::Grid
valleyGrid(double scale = 1.0,
           std::vector<Scheme> schemes = allSchemes())
{
    harness::GridOptions o;
    o.workloads = envWorkloads(workloads::valleySet());
    o.schemes = std::move(schemes);
    o.config.layout = envLayout(o.config.layout);
    o.scale = envScale(scale);
    o.useCache = true;
    o.progress = true;
    return harness::runGrid(std::move(o));
}

/** The Fig. 20 grid: non-valley set x all schemes. */
inline harness::Grid
nonValleyGrid(double scale = 1.0)
{
    harness::GridOptions o;
    o.workloads = envWorkloads(workloads::nonValleySet());
    o.schemes = allSchemes();
    o.config.layout = envLayout(o.config.layout);
    o.scale = envScale(scale);
    o.useCache = true;
    o.progress = true;
    return harness::runGrid(std::move(o));
}

} // namespace bench
} // namespace valley

#endif // VALLEY_BENCH_BENCH_UTIL_HH
