/**
 * @file
 * Fig. 3 — the window-based entropy worked example: 8 TBs whose BVR
 * alternates in pairs; window sizes 2 and 4.
 */

#include "bench_util.hh"
#include "entropy/window_entropy.hh"

using namespace valley;

int
main()
{
    bench::printHeader("Figure 3", "window-based entropy example");
    const std::vector<double> bvr = {0, 0, 1, 1, 0, 0, 1, 1};

    std::printf("sorted per-TB BVRs: ");
    for (double v : bvr)
        std::printf("%.0f ", v);
    std::printf("\n\n");

    for (unsigned w : {2u, 4u}) {
        TextTable t;
        t.setHeader({"window#", "#BVR0", "#BVR1", "entropy"});
        const std::size_t windows = bvr.size() - w + 1;
        for (std::size_t i = 0; i < windows; ++i) {
            unsigned zeros = 0, ones = 0;
            std::vector<double> slice;
            for (std::size_t j = i; j < i + w; ++j) {
                slice.push_back(bvr[j]);
                (bvr[j] < 0.5 ? zeros : ones)++;
            }
            t.addRow({std::to_string(i + 1), std::to_string(zeros),
                      std::to_string(ones),
                      TextTable::num(windowEntropy(slice, w), 2)});
        }
        std::printf("window size w = %u\n%s", w,
                    t.toString().c_str());
        std::printf("H* = %.4f   (paper: %s)\n\n",
                    windowEntropy(bvr, w),
                    w == 2 ? "3/7 = 0.43" : "5/5 = 1.00");
    }
    return 0;
}
