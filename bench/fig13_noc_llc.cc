/**
 * @file
 * Fig. 13 — (a) average NoC packet latency and (b) LLC miss rate,
 * per benchmark and scheme.
 */

#include "bench_util.hh"

using namespace valley;

int
main()
{
    bench::printHeader("Figure 13",
                       "NoC packet latency and LLC miss rate");
    const harness::Grid g = bench::valleyGrid();

    TextTable lat;
    TextTable miss;
    std::vector<std::string> header = {"bench"};
    for (Scheme s : allSchemes())
        header.push_back(schemeName(s));
    lat.setHeader(header);
    miss.setHeader(header);

    for (const auto &w : g.options().workloads) {
        std::vector<std::string> lrow = {w}, mrow = {w};
        for (Scheme s : allSchemes()) {
            lrow.push_back(
                TextTable::num(g.at(w, s).nocLatencySmCycles, 0));
            mrow.push_back(
                TextTable::num(g.at(w, s).llcMissRate * 100, 1) + "%");
        }
        lat.addRow(lrow);
        miss.addRow(mrow);
    }
    lat.addRule();
    miss.addRule();
    std::vector<std::string> lavg = {"AVG"}, mavg = {"AVG"};
    for (Scheme s : allSchemes()) {
        lavg.push_back(TextTable::num(
            g.mean(s, [](const RunResult &r) {
                return r.nocLatencySmCycles;
            }),
            0));
        mavg.push_back(
            TextTable::num(g.mean(s,
                                  [](const RunResult &r) {
                                      return r.llcMissRate;
                                  }) *
                               100,
                           1) +
            "%");
    }
    lat.addRow(lavg);
    miss.addRow(mavg);

    std::printf("(a) avg NoC packet latency [SM cycles]\n%s\n",
                lat.toString().c_str());
    std::printf("(b) LLC miss rate\n%s\n", miss.toString().c_str());
    std::printf("Paper shape: PAE/FAE/ALL dramatically reduce NoC "
                "latency (BASE up to ~200+\ncycles) and substantially "
                "reduce the LLC miss rate by spreading requests "
                "over\nall slices.\n");
    return 0;
}
