/**
 * @file
 * Resume smoke — the end-to-end drill of the mega-grid resilience
 * layer, run by CI next to `synth_smoke`/`joint_smoke`:
 *
 *  1. a reference grid runs uninterrupted (no checkpointing);
 *  2. the same grid runs with checkpointing on and an armed fault
 *     (`grid_cell:N:throw`) that kills it mid-grid — the throw is
 *     caught here, exactly like a crash the journal must survive;
 *  3. the grid runs again with checkpointing on: the journaled cells
 *     are skipped, the rest simulate, and every cell must be
 *     BIT-IDENTICAL to the reference (compared via the journal's own
 *     precision-17 serialization);
 *  4. the same interrupt/resume cycle repeats in parallel mode.
 *
 * The result cache stays off throughout: the journal alone must
 * carry the resumed state. Everything lands in BENCH_resume.json;
 * exit status is non-zero unless both resumes are bit-identical and
 * the interrupted runs actually journaled partial progress.
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/fault_inject.hh"
#include "harness/grid_journal.hh"
#include "harness/result_cache.hh"

using namespace valley;

namespace {

harness::GridOptions
gridOptions(bool checkpoint, unsigned threads, double scale,
            const std::vector<std::string> &workloads)
{
    harness::GridOptions o;
    o.workloads = workloads;
    o.schemes = {Scheme::BASE, Scheme::PM, Scheme::PAE};
    o.scale = scale;
    o.useCache = false; // the journal alone carries resumed state
    o.checkpoint = checkpoint;
    o.threads = threads;
    o.progress = true;
    return o;
}

/** Count cells that differ between two grids (0 = bit-identical). */
std::size_t
countMismatches(const harness::Grid &a, const harness::Grid &b)
{
    std::size_t bad = 0;
    for (const auto &w : a.options().workloads)
        for (Scheme s : a.options().schemes)
            if (harness::serializeResult(a.at(w, s)) !=
                harness::serializeResult(b.at(w, s))) {
                std::fprintf(stderr,
                             "MISMATCH %s/%s after resume\n",
                             w.c_str(), schemeName(s).c_str());
                ++bad;
            }
    return bad;
}

/** Journal entries currently recorded for this grid's journal. */
std::size_t
journalEntries()
{
    std::size_t total = 0;
    const std::string dir = harness::cacheDir();
    if (!std::filesystem::exists(dir))
        return 0;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().filename().string().rfind("grid_journal_", 0) ==
            0)
            total += harness::GridJournal(e.path().string())
                         .load()
                         .size();
    return total;
}

/** One interrupt-then-resume drill; returns mismatch count. */
std::size_t
drill(const char *label, unsigned threads, double scale,
      const std::vector<std::string> &workloads,
      const harness::Grid &reference, bench::JsonEmitter &json,
      std::size_t &journaled_at_interrupt)
{
    // Interrupt at the 2nd freshly-simulated cell. Serial mode dies
    // with exactly one journaled cell; parallel mode may journal a
    // few more (in-flight cells run to completion), which is exactly
    // the semantics a real crash has.
    fault::configure("grid_cell:2:throw");
    bool interrupted = false;
    try {
        harness::runGrid(
            gridOptions(true, threads, scale, workloads));
    } catch (const fault::Injected &e) {
        interrupted = true;
        std::printf("[%s] interrupted as planned: %s\n", label,
                    e.what());
    }
    fault::configure("");
    journaled_at_interrupt = journalEntries();
    std::printf("[%s] journal holds %zu cell(s) at interrupt\n",
                label, journaled_at_interrupt);

    const harness::Grid resumed = harness::runGrid(
        gridOptions(true, threads, scale, workloads));
    const std::size_t mismatches = countMismatches(reference, resumed);

    json.field(std::string(label) + "_interrupted", interrupted);
    json.field(std::string(label) + "_journaled_at_interrupt",
               static_cast<std::uint64_t>(journaled_at_interrupt));
    json.field(std::string(label) + "_mismatches",
               static_cast<std::uint64_t>(mismatches));
    return interrupted ? mismatches : mismatches + 1;
}

} // namespace

int
main()
{
    bench::printHeader("Resume smoke",
                       "interrupted checkpointed grid resumes "
                       "bit-identically");

    const double scale = bench::envScale(0.25);
    const std::vector<std::string> workloads = bench::envWorkloads({
        "synth:strided",
        "synth:stencil3d",
    });

    bench::JsonEmitter json("BENCH_resume.json");
    json.field("scale", scale);
    json.field("cells",
               static_cast<std::uint64_t>(workloads.size() * 3));

    // Reference: same grid, no checkpointing, no faults.
    const harness::Grid reference =
        harness::runGrid(gridOptions(false, 1, scale, workloads));

    std::size_t journaled_serial = 0, journaled_parallel = 0;
    const std::size_t serial_bad =
        drill("serial", 1, scale, workloads, reference, json,
              journaled_serial);

    // Parallel drill on a fresh journal (different thread count, same
    // grid identity — wipe so the interrupt actually interrupts).
    for (const auto &e : std::filesystem::directory_iterator(
             harness::cacheDir()))
        if (e.path().filename().string().rfind("grid_journal_", 0) ==
            0)
            std::filesystem::remove(e.path());
    const std::size_t parallel_bad =
        drill("parallel", 4, scale, workloads, reference, json,
              journaled_parallel);

    const bool partial_progress_persisted =
        journaled_serial > 0 && journaled_parallel > 0;
    const bool ok = serial_bad == 0 && parallel_bad == 0 &&
                    partial_progress_persisted;
    json.field("partial_progress_persisted",
               partial_progress_persisted);
    json.field("bit_identical", serial_bad + parallel_bad == 0);
    json.field("ok", ok);

    std::printf("\nresume smoke: %s (serial mismatches %zu, parallel "
                "mismatches %zu)\n",
                ok ? "bit-identical resume in both modes" : "FAILED",
                serial_bad, parallel_bad);
    return ok ? 0 : 1;
}
