/**
 * @file
 * Fig. 11 — normalized execution time vs normalized DRAM power for
 * the six schemes, averaged over the entropy-valley benchmarks.
 */

#include "bench_util.hh"

using namespace valley;

int
main()
{
    bench::printHeader("Figure 11",
                       "performance vs DRAM power (valley set)");
    const harness::Grid g = bench::valleyGrid();

    TextTable t;
    t.setHeader({"scheme", "norm. DRAM power", "norm. exec time",
                 "hmean speedup"});
    for (Scheme s : allSchemes())
        t.addRow({schemeName(s),
                  TextTable::num(g.meanDramPowerNorm(s), 3),
                  TextTable::num(g.meanExecTimeNorm(s), 3),
                  TextTable::num(g.hmeanSpeedup(s), 2)});
    std::printf("%s\n", t.toString().c_str());

    std::printf(
        "Paper: PAE 1.52x speedup at +3%% DRAM power; FAE 1.56x at "
        "+35%%; ALL 1.54x at\n+45%%; PM 1.16x at +8%%; RMP 1.21x at "
        "+16%%. Shape to check: PAE sits closest to\nthe origin "
        "(fast AND power-frugal); FAE/ALL are fast but burn "
        "activate power;\nPM/RMP are dominated.\n");
    return 0;
}
