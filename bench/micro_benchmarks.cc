/**
 * @file
 * google-benchmark micro-benchmarks: cost of the BIM transform (the
 * hardware the paper implements as a single-cycle XOR tree), entropy
 * analysis throughput, FR-FCFS controller throughput and end-to-end
 * simulator speed.
 */

#include <benchmark/benchmark.h>

#include "bim/bim_builder.hh"
#include "common/bitops.hh"
#include "common/rng.hh"
#include "dram/dram_system.hh"
#include "entropy/sliced_bvr.hh"
#include "entropy/window_entropy.hh"
#include "harness/experiment.hh"
#include "workloads/profiler.hh"

using namespace valley;

// --- BIM ----------------------------------------------------------------

static void
BM_BimApply(benchmark::State &state)
{
    const AddressLayout layout = AddressLayout::hynixGddr5();
    const auto mapper = mapping::makeScheme(
        static_cast<Scheme>(state.range(0)), layout, 1);
    XorShiftRng rng(7);
    Addr a = rng.next() & bits::mask(30);
    for (auto _ : state) {
        a = mapper->map(a) + 64;
        a &= bits::mask(30);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BimApply)
    ->Arg(static_cast<int>(Scheme::BASE))
    ->Arg(static_cast<int>(Scheme::PM))
    ->Arg(static_cast<int>(Scheme::PAE))
    ->Arg(static_cast<int>(Scheme::FAE))
    ->Arg(static_cast<int>(Scheme::ALL));

static void
BM_BimApplyNaive(benchmark::State &state)
{
    // The row-wise parity loop CompiledTransform replaces: one AND +
    // popcount-parity per output bit, 30 iterations per address.
    const AddressLayout layout = AddressLayout::hynixGddr5();
    const auto mapper = mapping::makeScheme(
        static_cast<Scheme>(state.range(0)), layout, 1);
    const BitMatrix &m = mapper->matrix();
    XorShiftRng rng(7);
    Addr a = rng.next() & bits::mask(30);
    for (auto _ : state) {
        a = m.apply(a) + 64;
        a &= bits::mask(30);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BimApplyNaive)
    ->Arg(static_cast<int>(Scheme::BASE))
    ->Arg(static_cast<int>(Scheme::PAE))
    ->Arg(static_cast<int>(Scheme::ALL));

static void
BM_BimApplyCompiled(benchmark::State &state)
{
    // The byte-sliced fast path used by AddressMapper::map: 8 table
    // loads XORed together, independent of the matrix size.
    const AddressLayout layout = AddressLayout::hynixGddr5();
    const auto mapper = mapping::makeScheme(
        static_cast<Scheme>(state.range(0)), layout, 1);
    const CompiledTransform &ct = mapper->compiled();
    XorShiftRng rng(7);
    Addr a = rng.next() & bits::mask(30);
    for (auto _ : state) {
        a = ct.apply(a) + 64;
        a &= bits::mask(30);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BimApplyCompiled)
    ->Arg(static_cast<int>(Scheme::BASE))
    ->Arg(static_cast<int>(Scheme::PAE))
    ->Arg(static_cast<int>(Scheme::ALL));

static void
BM_BimGenerateInvertible(benchmark::State &state)
{
    const AddressLayout layout = AddressLayout::hynixGddr5();
    std::uint64_t seed = 1;
    for (auto _ : state) {
        XorShiftRng rng(seed++);
        const BitMatrix m = bim::randomBroad(
            30, layout.randomizeTargets(), layout.pageMask(), rng);
        benchmark::DoNotOptimize(m.row(8));
    }
}
BENCHMARK(BM_BimGenerateInvertible);

static void
BM_BimInverse(benchmark::State &state)
{
    XorShiftRng rng(3);
    BitMatrix m(30);
    do {
        for (unsigned r = 0; r < 30; ++r)
            m.setRow(r, rng.next() & bits::mask(30));
    } while (!m.invertible());
    for (auto _ : state) {
        auto inv = m.inverse();
        benchmark::DoNotOptimize(inv->row(0));
    }
}
BENCHMARK(BM_BimInverse);

// --- Entropy ---------------------------------------------------------------

static void
BM_WindowEntropy(benchmark::State &state)
{
    // The incremental sliding-multiset implementation.
    XorShiftRng rng(11);
    std::vector<double> bvr(static_cast<std::size_t>(state.range(0)));
    for (double &v : bvr)
        v = rng.uniform();
    for (auto _ : state)
        benchmark::DoNotOptimize(windowEntropy(bvr, 12));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WindowEntropy)->Arg(256)->Arg(4096);

static void
BM_WindowEntropyReference(benchmark::State &state)
{
    // The per-window assign+sort oracle it replaced.
    XorShiftRng rng(11);
    std::vector<double> bvr(static_cast<std::size_t>(state.range(0)));
    for (double &v : bvr)
        v = rng.uniform();
    for (auto _ : state)
        benchmark::DoNotOptimize(windowEntropyReference(bvr, 12));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WindowEntropyReference)->Arg(256)->Arg(4096);

static void
BM_BvrAccumulate(benchmark::State &state)
{
    // Scalar baseline: one shift/mask/add per bit per address.
    XorShiftRng rng(13);
    std::vector<Addr> addrs(1024);
    for (Addr &a : addrs)
        a = rng.next() & bits::mask(30);
    for (auto _ : state) {
        BvrAccumulator acc(30);
        for (Addr a : addrs)
            acc.add(a);
        benchmark::DoNotOptimize(acc.bvrs());
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_BvrAccumulate);

static void
BM_SlicedBvrAccumulate(benchmark::State &state)
{
    // Bit-sliced path: transpose 64 addresses, popcount per bit.
    XorShiftRng rng(13);
    std::vector<Addr> addrs(1024);
    for (Addr &a : addrs)
        a = rng.next() & bits::mask(30);
    for (auto _ : state) {
        SlicedBvrAccumulator acc(30);
        acc.addMany(addrs);
        benchmark::DoNotOptimize(acc.bvrs());
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_SlicedBvrAccumulate);

static void
BM_ProfileWorkload(benchmark::State &state)
{
    // threads: 1 = serial, 0 = one worker per hardware thread.
    const auto wl = workloads::make("GS", 0.25);
    for (auto _ : state) {
        workloads::ProfileOptions po;
        po.threads = static_cast<unsigned>(state.range(0));
        benchmark::DoNotOptimize(
            workloads::profileWorkload(*wl, po).perBit[8]);
    }
}
BENCHMARK(BM_ProfileWorkload)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

// --- DRAM -------------------------------------------------------------------

static void
BM_FrFcfsThroughput(benchmark::State &state)
{
    const bool random_rows = state.range(0);
    XorShiftRng rng(17);
    for (auto _ : state) {
        MemoryController mc(16, DramTiming::hynixGddr5());
        std::vector<DramCompletion> done;
        unsigned issued = 0, completed = 0;
        Cycle now = 0;
        while (completed < 512) {
            while (issued < 512 && mc.canAccept()) {
                DramRequest r;
                r.coord.bank = rng.below(16);
                r.coord.row =
                    random_rows ? static_cast<unsigned>(rng.below(4096))
                                : issued / 64;
                r.tag = issued++;
                mc.enqueue(r, now);
            }
            mc.tick(++now, done);
            completed += static_cast<unsigned>(done.size());
            done.clear();
        }
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_FrFcfsThroughput)
    ->Arg(0)  // streaming rows (row hits)
    ->Arg(1); // random rows (activation bound)

// --- Full simulator -----------------------------------------------------------

static void
BM_SimulatorEndToEnd(benchmark::State &state)
{
    const SimConfig cfg = SimConfig::paperBaseline();
    const auto mapper = mapping::makeScheme(Scheme::PAE, cfg.layout, 1);
    const auto wl = workloads::make("GS", 0.25);
    for (auto _ : state) {
        GpuSystem sim(cfg, *mapper);
        const RunResult r = sim.run(*wl);
        benchmark::DoNotOptimize(r.cycles);
        state.counters["cycles/s"] = benchmark::Counter(
            static_cast<double>(r.cycles),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_SimulatorEndToEnd)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
