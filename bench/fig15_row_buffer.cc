/**
 * @file
 * Fig. 15 — DRAM row buffer hit rate per benchmark and scheme.
 */

#include "bench_util.hh"

using namespace valley;

int
main()
{
    bench::printHeader("Figure 15", "DRAM row buffer hit rate");
    const harness::Grid g = bench::valleyGrid();

    TextTable t;
    std::vector<std::string> header = {"bench"};
    for (Scheme s : allSchemes())
        header.push_back(schemeName(s));
    t.setHeader(header);
    for (const auto &w : g.options().workloads) {
        std::vector<std::string> row = {w};
        for (Scheme s : allSchemes())
            row.push_back(
                TextTable::num(g.at(w, s).rowBufferHitRate * 100, 1) +
                "%");
        t.addRow(row);
    }
    t.addRule();
    std::vector<std::string> avg = {"AVG"};
    for (Scheme s : allSchemes())
        avg.push_back(
            TextTable::num(g.mean(s,
                                  [](const RunResult &r) {
                                      return r.rowBufferHitRate;
                                  }) *
                               100,
                           1) +
            "%");
    t.addRow(avg);
    std::printf("%s\n", t.toString().c_str());
    std::printf("Paper shape: PAE achieves the highest row buffer hit "
                "rate (it balances load\nwhile keeping good-locality "
                "requests in the same bank); FAE and ALL degrade\nrow "
                "buffer locality by scattering page hits across "
                "banks.\n");
    return 0;
}
