/**
 * @file
 * Table II — benchmark characteristics: LLC APKI, LLC MPKI, kernel
 * launches and dynamic instruction counts, measured on the BASE
 * configuration, next to the paper's reported values.
 */

#include "bench_util.hh"

using namespace valley;

namespace {

struct PaperRow
{
    const char *abbrev;
    double apki, mpki;
    unsigned kernels;
    double insnsB;
};

const PaperRow kPaper[] = {
    {"MT", 7.44, 5.69, 4, 0.19},   {"LU", 12.32, 1.97, 1022, 2.22},
    {"GS", 9.09, 0.01, 510, 0.43}, {"NW", 5.25, 5.12, 255, 0.21},
    {"LPS", 2.27, 1.66, 2, 2.33},  {"SC", 4.24, 3.58, 50, 1.71},
    {"SRAD2", 3.29, 1.85, 4, 2.43},{"DWT2D", 1.56, 1.21, 10, 0.33},
    {"HS", 0.71, 0.08, 1, 1.3},    {"SP", 2.17, 2.16, 1, 0.12},
    {"FWT", 2.69, 1.38, 22, 4.38}, {"NN", 2.33, 0.2, 4, 0.31},
    {"SPMV", 5.95, 2.75, 50, 0.19},{"LM", 18.23, 0.01, 1, 2.11},
    {"MUM", 25.63, 22.53, 2, 0.23},{"BFS", 26.92, 18.14, 24, 0.46},
};

} // namespace

int
main()
{
    bench::printHeader("Table II",
                       "GPU-compute benchmarks (measured vs paper)");
    const double scale = bench::envScale();
    const SimConfig cfg = SimConfig::paperBaseline();

    TextTable t;
    t.setHeader({"bench", "APKI", "MPKI", "#Knls", "#Insns",
                 "(paper", "APKI", "MPKI", "#Knls", "#Insns)"});
    for (const PaperRow &p : kPaper) {
        const RunResult r = harness::runOneCached(cfg, Scheme::BASE,
                                                  p.abbrev, scale);
        const auto wl = workloads::make(p.abbrev, scale);
        t.addRow({p.abbrev, TextTable::num(r.apki(), 2),
                  TextTable::num(r.mpki(), 2),
                  std::to_string(wl->numKernels()),
                  TextTable::num(r.instructions / 1e9, 3) + " B", "",
                  TextTable::num(p.apki, 2), TextTable::num(p.mpki, 2),
                  std::to_string(p.kernels),
                  TextTable::num(p.insnsB, 2) + " B"});
    }
    std::printf("%s\n", t.toString().c_str());
    std::printf(
        "Notes: problem sizes are scaled for a 1 GB / 12 SM machine, "
        "so absolute\ninstruction counts are smaller than the paper's "
        "(scale factor VALLEY_SCALE=%.2f).\nAPKI/MPKI differ where the "
        "scaled working sets change cache behavior; the\nrelative "
        "intensity ordering follows Table II. See EXPERIMENTS.md.\n",
        scale);
    return 0;
}
