/**
 * @file
 * Fig. 19 — sensitivity to the randomly generated BIM: three BIMs
 * per Broad scheme (seeds 1-3), harmonic-mean speedup each.
 */

#include "bench_util.hh"

using namespace valley;

int
main()
{
    bench::printHeader("Figure 19",
                       "speedup for three randomly generated BIMs");
    const double scale = bench::envScale();

    TextTable t;
    t.setHeader({"scheme", "BIM-1", "BIM-2", "BIM-3", "spread"});
    for (Scheme s : {Scheme::PAE, Scheme::FAE, Scheme::ALL}) {
        std::vector<std::string> row = {schemeName(s)};
        double lo = 1e9, hi = 0.0;
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            harness::GridOptions o;
            o.workloads = workloads::valleySet();
            o.schemes = {Scheme::BASE, s};
            o.bimSeed = seed;
            o.scale = scale;
            o.useCache = true;
            o.progress = true;
            const harness::Grid g = harness::runGrid(std::move(o));
            const double sp = g.hmeanSpeedup(s);
            lo = std::min(lo, sp);
            hi = std::max(hi, sp);
            row.push_back(TextTable::num(sp, 2));
        }
        row.push_back(TextTable::num(hi - lo, 2));
        t.addRow(row);
    }
    std::printf("%s\n", t.toString().c_str());
    std::printf("Paper shape: FAE and ALL are insensitive to the "
                "specific BIM; PAE is slightly\nmore sensitive "
                "(page-address inputs only), yet even its worst BIM "
                "improves\nperformance substantially.\n");
    return 0;
}
