/**
 * @file
 * Joint smoke — a tiny-scale end-to-end pass over the workload-set
 * ("global BIM") machinery, run by CI next to `synth_smoke`:
 *
 *  1. a 3-member synth set runs through the full harness grid under
 *     {BASE, SBIM, GBIM} — i.e. set canonicalization → per-cell
 *     simulation where SBIM searches per workload and GBIM anneals
 *     ONE matrix jointly against the whole set (shared via the
 *     searched-BIM cache across cells);
 *  2. the joint matrix's entropy on the target bits is compared per
 *     member against BASE and against that member's own SBIM — the
 *     specialization price of serving the whole set with one BIM;
 *  3. everything lands in BENCH_joint.json.
 *
 * Exit status is non-zero unless the joint BIM strictly beats the
 * identity mapping's mean target entropy across the set — the
 * acceptance bar for the workload-set refactor of the mapping
 * service.
 */

#include <string>
#include <vector>

#include "bench_util.hh"
#include "search/searched_bim.hh"
#include "workloads/workload_set.hh"

using namespace valley;

int
main()
{
    bench::printHeader("Joint smoke",
                       "one global BIM x {BASE, SBIM, GBIM} grid");

    const std::vector<std::string> members = bench::envWorkloads({
        "synth:strided",
        "synth:stencil3d",
        "synth:hash_shuffle,fmb=64,tbs=32",
    });
    const double scale = bench::envScale(0.25);
    const workloads::WorkloadSet set(members);

    harness::GridOptions o;
    // Grid rows use the canonical member names: the grid is indexed
    // by whatever strings it is given, and a VALLEY_WORKLOADS
    // spelling with reordered spec params would otherwise not be
    // findable under set.members() below.
    o.workloads = set.members();
    o.schemes = {Scheme::BASE, Scheme::SBIM, Scheme::GBIM};
    o.scale = scale;
    o.useCache = true;
    o.progress = true;
    const harness::Grid g = harness::runGrid(std::move(o));

    const AddressLayout layout = AddressLayout::hynixGddr5();
    const std::vector<unsigned> targets = layout.randomizeTargets();

    // The joint search itself (hits the searched-BIM cache the grid
    // just warmed) for the entropy view of the one shared matrix.
    search::SearchOptions so = search::defaultOptions(layout);
    so.threads = 1;
    const search::SetSearchResult joint =
        search::searchSet(set, layout, so, scale);

    bench::JsonEmitter json("BENCH_joint.json");
    json.field("set_id", set.shortId());
    json.field("members", static_cast<std::uint64_t>(set.size()));
    json.field("scale", scale);
    json.field("combine",
               search::combinerName(so.combiner));
    json.field("joint_cost", joint.annealed.cost);
    json.field("joint_identity_cost", joint.annealed.identityCost);
    json.field("joint_gain", joint.annealed.gain());
    json.field("joint_xor_gates",
               joint.annealed.bim.xorGateCount());

    TextTable t;
    t.setHeader({"member", "speedup SBIM", "speedup GBIM",
                 "H* BASE", "H* SBIM", "H* GBIM"});

    double id_mean = 0.0, joint_mean = 0.0;
    bool all_members_non_regressing = true;
    for (std::size_t m = 0; m < set.size(); ++m) {
        const std::string &w = set.members()[m];
        const auto wl = workloads::make(w, scale);
        // The member's own specialized mapping, for the
        // one-BIM-for-all vs one-BIM-each comparison (served from the
        // caches the SBIM grid column already filled).
        const search::WorkloadSearchResult own =
            search::searchWorkload(*wl, layout, so, scale);

        const double base_h = joint.identityProfiles[m].meanOver(targets);
        const double joint_h =
            joint.searchedProfiles[m].meanOver(targets);
        const double own_h = own.searchedProfile.meanOver(targets);
        id_mean += base_h;
        joint_mean += joint_h;
        // Tolerance: an already-flat member (H* ~ 1.0) may measure a
        // few 1e-5 lower under the joint matrix; that is measurement
        // granularity, not a regression.
        all_members_non_regressing =
            all_members_non_regressing && joint_h >= base_h - 1e-4;

        t.addRow({w, TextTable::num(g.speedup(w, Scheme::SBIM), 3),
                  TextTable::num(g.speedup(w, Scheme::GBIM), 3),
                  TextTable::num(base_h, 3), TextTable::num(own_h, 3),
                  TextTable::num(joint_h, 3)});

        const std::string key = "member" + std::to_string(m);
        json.field(key, w);
        json.field(key + "_speedup_sbim",
                   g.speedup(w, Scheme::SBIM));
        json.field(key + "_speedup_gbim",
                   g.speedup(w, Scheme::GBIM));
        json.field(key + "_base_target_entropy", base_h);
        json.field(key + "_sbim_target_entropy", own_h);
        json.field(key + "_gbim_target_entropy", joint_h);
    }
    id_mean /= static_cast<double>(set.size());
    joint_mean /= static_cast<double>(set.size());

    const bool joint_beats_identity = joint_mean > id_mean;
    json.field("mean_base_target_entropy", id_mean);
    json.field("mean_gbim_target_entropy", joint_mean);
    json.field("joint_beats_identity", joint_beats_identity);
    json.field("all_members_non_regressing",
               all_members_non_regressing);
    json.field("hmean_speedup_sbim", g.hmeanSpeedup(Scheme::SBIM));
    json.field("hmean_speedup_gbim", g.hmeanSpeedup(Scheme::GBIM));

    std::printf("%s\n", t.toString().c_str());
    std::printf("one joint BIM, mean H* targets: %.3f -> %.3f "
                "(beats identity: %s; no member regresses: %s)\n",
                id_mean, joint_mean,
                joint_beats_identity ? "yes" : "NO",
                all_members_non_regressing ? "yes" : "NO");
    return joint_beats_identity ? 0 : 1;
}
