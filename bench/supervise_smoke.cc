/**
 * @file
 * Supervise smoke — the end-to-end drill of the self-healing
 * execution stack, run by CI next to `resume_smoke`. Four legs, all
 * driving the real `valley_grid` binary as a child process:
 *
 *  1. *reference*: the grid runs clean (exit 0, zero restarts) and
 *     writes its per-cell `--out` file;
 *  2. *kill mode*: `VALLEY_FAULT_INJECT=grid_cell:2:kill` hard-exits
 *     the child at the 2nd fresh cell of every incarnation; the
 *     supervisor must restart it until the checkpoint journal
 *     carries it past the injection point, and the converged `--out`
 *     file must be byte-identical to the reference (serial grid —
 *     each incarnation retires one new cell before the recurring hit
 *     count reaches the trigger);
 *  3. *throw mode, retry*: a one-shot in-process throw with
 *     `--max-attempts 2` must heal invisibly — exit 0, no restarts,
 *     byte-identical output;
 *  4. *throw mode, poison*: a deterministically failing cell with
 *     `--poison` must quarantine — NOT crash, NOT restart: exit 4
 *     (degraded), zero restarts, and `cache/grid_report_<id>.json`
 *     names exactly that cell as poisoned.
 *
 * Everything lands in BENCH_supervise.json; exit status is non-zero
 * on any unexpected exit code, any supervisor exhaustion, an output
 * mismatch, or a report that misnames the poisoned cell.
 */

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/result_cache.hh"
#include "harness/supervisor.hh"

using namespace valley;

namespace {

/** The valley_grid binary next to our own executable. */
std::string
gridBinary()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf,
                                 sizeof buf - 1);
    if (n <= 0)
        return "./valley_grid";
    buf[n] = '\0';
    return (std::filesystem::path(buf).parent_path() / "valley_grid")
        .string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Drop every grid journal so the next leg starts from scratch. */
void
wipeJournals()
{
    const std::string dir = harness::cacheDir();
    if (!std::filesystem::exists(dir))
        return;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().filename().string().rfind("grid_journal_", 0) ==
            0)
            std::filesystem::remove(e.path());
}

/** Supervise one valley_grid invocation (backoff off, chatty). */
harness::SuperviseOutcome
runLeg(const char *label, const std::vector<std::string> &args,
       const char *fault, unsigned max_restarts)
{
    std::printf("\n[%s] %s\n", label,
                fault != nullptr ? fault : "(no fault)");
    if (fault != nullptr)
        setenv("VALLEY_FAULT_INJECT", fault, 1);
    else
        unsetenv("VALLEY_FAULT_INJECT");

    std::vector<std::string> argv;
    argv.push_back(gridBinary());
    argv.insert(argv.end(), args.begin(), args.end());

    harness::SupervisorOptions opts;
    opts.maxRestarts = max_restarts;
    opts.backoffMs = 0;
    const harness::SuperviseOutcome out =
        harness::supervise(argv, opts);
    unsetenv("VALLEY_FAULT_INJECT");
    std::printf("[%s] exit %d after %u restart(s)%s\n", label,
                out.exitCode, out.restarts,
                out.exhausted ? " (EXHAUSTED)" : "");
    return out;
}

/** The grid_report naming `workload`/`scheme` poisoned, if any. */
bool
reportNamesPoisonedCell(const std::string &workload,
                        const std::string &scheme)
{
    const std::string needle = "{\"workload\": \"" + workload +
                               "\", \"scheme\": \"" + scheme +
                               "\", \"status\": \"poisoned\"";
    const std::string dir = harness::cacheDir();
    if (!std::filesystem::exists(dir))
        return false;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        const std::string name = e.path().filename().string();
        if (name.rfind("grid_report_", 0) != 0)
            continue;
        const std::string json = readFile(e.path().string());
        if (json.find("\"poisoned\": 1") != std::string::npos &&
            json.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

int
main()
{
    bench::printHeader("Supervise smoke",
                       "crash-restart supervisor converges; "
                       "deterministic failures poison, not crash");

    const double scale = bench::envScale(0.25);
    std::ostringstream scale_str;
    scale_str.precision(17);
    scale_str << scale;

    // Serial on purpose: the kill drill only converges when each
    // incarnation finishes at least one new cell before the recurring
    // `grid_cell` hit count reaches the injection point (see
    // DESIGN.md, "Supervision & degradation").
    const std::vector<std::string> base_args = {
        "--workloads", "synth:strided,synth:stencil3d",
        "--schemes",   "BASE,PM",
        "--scale",     scale_str.str(),
        "--threads",   "1",
    };
    const auto with = [&](std::initializer_list<const char *> extra) {
        std::vector<std::string> v = base_args;
        for (const char *e : extra)
            v.push_back(e);
        return v;
    };

    bench::JsonEmitter json("BENCH_supervise.json");
    json.field("scale", scale);
    json.field("cells", static_cast<std::uint64_t>(4));

    // Leg 1: fault-free reference.
    wipeJournals();
    const auto ref = runLeg("reference",
                            with({"--out", "BENCH_supervise_ref.txt"}),
                            nullptr, 0);
    const std::string ref_out = readFile("BENCH_supervise_ref.txt");
    const bool ref_ok = ref.exitCode == 0 && ref.restarts == 0 &&
                        !ref.exhausted && !ref_out.empty();
    json.field("reference_exit", static_cast<std::uint64_t>(ref.exitCode));
    json.field("reference_ok", ref_ok);

    // Leg 2: kill mode under supervision, bit-identical convergence.
    wipeJournals();
    const auto kill = runLeg(
        "kill",
        with({"--checkpoint", "--report", "--out",
              "BENCH_supervise_kill.txt"}),
        "grid_cell:2:kill", /*max_restarts=*/8);
    const bool kill_identical =
        !ref_out.empty() &&
        readFile("BENCH_supervise_kill.txt") == ref_out;
    const bool kill_ok = kill.exitCode == 0 && !kill.exhausted &&
                         kill.restarts > 0 && kill_identical;
    json.field("kill_exit", static_cast<std::uint64_t>(kill.exitCode));
    json.field("kill_restarts", kill.restarts);
    json.field("kill_exhausted", kill.exhausted);
    json.field("kill_bit_identical", kill_identical);

    // Leg 3: one-shot throw heals in-process via retry — the
    // supervisor never even notices.
    wipeJournals();
    const auto retry = runLeg(
        "retry",
        with({"--max-attempts", "2", "--out",
              "BENCH_supervise_retry.txt"}),
        "grid_cell:2:throw", /*max_restarts=*/2);
    const bool retry_identical =
        !ref_out.empty() &&
        readFile("BENCH_supervise_retry.txt") == ref_out;
    const bool retry_ok = retry.exitCode == 0 &&
                          retry.restarts == 0 && !retry.exhausted &&
                          retry_identical;
    json.field("retry_exit", static_cast<std::uint64_t>(retry.exitCode));
    json.field("retry_restarts", retry.restarts);
    json.field("retry_bit_identical", retry_identical);

    // Leg 4: a deterministically failing cell must POISON the grid —
    // degraded final exit, no restart burned — and the report must
    // name exactly that cell (2nd in grid order: synth:strided/PM).
    // Distinct scheme axis => distinct grid id => its own report.
    const auto poison = runLeg(
        "poison",
        {"--workloads", "synth:strided,synth:stencil3d", "--schemes",
         "BASE,PM,RMP", "--scale", scale_str.str(), "--threads", "1",
         "--checkpoint", "--poison", "--report"},
        "grid_cell:2:throw", /*max_restarts=*/2);
    const bool poison_named =
        reportNamesPoisonedCell("synth:strided", "PM");
    const bool poison_ok = poison.exitCode == 4 &&
                           poison.restarts == 0 &&
                           !poison.exhausted && poison_named;
    json.field("poison_exit", static_cast<std::uint64_t>(poison.exitCode));
    json.field("poison_restarts", poison.restarts);
    json.field("poison_report_names_cell", poison_named);

    const bool ok = ref_ok && kill_ok && retry_ok && poison_ok;
    json.field("ok", ok);
    std::printf("\nsupervise smoke: %s (kill restarts %u, poison "
                "exit %d)\n",
                ok ? "all legs green" : "FAILED", kill.restarts,
                poison.exitCode);
    return ok ? 0 : 1;
}
