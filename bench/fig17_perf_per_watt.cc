/**
 * @file
 * Fig. 17 — normalized performance per Watt considering total system
 * (GPU + DRAM) power.
 */

#include "bench_util.hh"

using namespace valley;

int
main()
{
    bench::printHeader(
        "Figure 17",
        "performance per Watt, total system power (valley set)");
    const harness::Grid g = bench::valleyGrid();

    TextTable t;
    std::vector<std::string> header = {"bench"};
    for (Scheme s : allSchemes())
        header.push_back(schemeName(s));
    t.setHeader(header);
    for (const auto &w : g.options().workloads) {
        std::vector<std::string> row = {w};
        for (Scheme s : allSchemes())
            row.push_back(TextTable::num(g.perfPerWattNorm(w, s), 2));
        t.addRow(row);
    }
    t.addRule();
    std::vector<std::string> hm = {"HMEAN"};
    for (Scheme s : allSchemes())
        hm.push_back(TextTable::num(g.hmeanPerfPerWattNorm(s), 2));
    t.addRow(hm);
    std::printf("%s\n", t.toString().c_str());

    TextTable sys;
    sys.setHeader({"scheme", "norm. system power"});
    for (Scheme s : allSchemes())
        sys.addRow({schemeName(s),
                    TextTable::num(g.meanSystemPowerNorm(s), 3)});
    std::printf("%s\n", sys.toString().c_str());

    std::printf("Paper: system power increases by 9%%/15%%/18%% under "
                "PAE/FAE/ALL; perf/Watt\nimproves 1.39x/1.36x/1.31x — "
                "PAE is the most power-efficient scheme\n(1.25x over "
                "state-of-the-art PM).\n");
    return 0;
}
