/**
 * @file
 * Fig. 14 — memory-level parallelism: (a) LLC-level, (b) channel-
 * level and (c) bank-level (banks per busy channel), sampled per
 * cycle when at least one request is outstanding.
 */

#include "bench_util.hh"

using namespace valley;

namespace {

void
printMetric(const harness::Grid &g, const char *title,
            double (RunResult::*field))
{
    TextTable t;
    std::vector<std::string> header = {"bench"};
    for (Scheme s : allSchemes())
        header.push_back(schemeName(s));
    t.setHeader(header);
    for (const auto &w : g.options().workloads) {
        std::vector<std::string> row = {w};
        for (Scheme s : allSchemes())
            row.push_back(TextTable::num(g.at(w, s).*field, 2));
        t.addRow(row);
    }
    t.addRule();
    std::vector<std::string> avg = {"AVG"};
    for (Scheme s : allSchemes())
        avg.push_back(TextTable::num(
            g.mean(s, [field](const RunResult &r) { return r.*field; }),
            2));
    t.addRow(avg);
    std::printf("%s\n%s\n", title, t.toString().c_str());
}

} // namespace

int
main()
{
    bench::printHeader("Figure 14", "memory-level parallelism");
    const harness::Grid g = bench::valleyGrid();
    printMetric(g, "(a) LLC-level parallelism [busy slices | >=1]",
                &RunResult::llcParallelism);
    printMetric(g, "(b) channel-level parallelism [busy channels | >=1]",
                &RunResult::channelParallelism);
    printMetric(g, "(c) bank-level parallelism [busy banks per busy channel]",
                &RunResult::bankParallelism);
    std::printf(
        "Paper shape: under BASE, MT/LU serialize on one LLC slice "
        "(parallelism ~1);\nPAE/FAE/ALL raise parallelism at every "
        "level, with the multiplier effect of\nchannel x bank "
        "parallelism.\n");
    return 0;
}
