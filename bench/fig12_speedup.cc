/**
 * @file
 * Fig. 12 — per-benchmark speedup over BASE for the entropy-valley
 * set, plus the harmonic mean.
 */

#include "bench_util.hh"

using namespace valley;

int
main()
{
    bench::printHeader("Figure 12",
                       "per-benchmark speedup over BASE (valley set)");
    const harness::Grid g = bench::valleyGrid();

    TextTable t;
    std::vector<std::string> header = {"bench"};
    for (Scheme s : allSchemes())
        header.push_back(schemeName(s));
    t.setHeader(header);
    for (const auto &w : g.options().workloads) {
        std::vector<std::string> row = {w};
        for (Scheme s : allSchemes())
            row.push_back(TextTable::num(g.speedup(w, s), 2));
        t.addRow(row);
    }
    t.addRule();
    std::vector<std::string> hm = {"HMEAN"};
    for (Scheme s : allSchemes())
        hm.push_back(TextTable::num(g.hmeanSpeedup(s), 2));
    t.addRow(hm);
    std::printf("%s\n", t.toString().c_str());

    std::printf("Paper HMEAN: BASE 1.00, PM 1.16, RMP 1.21, PAE 1.52, "
                "FAE 1.56, ALL 1.54;\nMT and LU reach up to ~7.5x "
                "under the Broad schemes.\n");
    return 0;
}
