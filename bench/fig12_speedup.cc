/**
 * @file
 * Fig. 12 — per-benchmark speedup over BASE for the entropy-valley
 * set, plus the harmonic mean. Extends the paper's six schemes with
 * SBIM, the profile-driven searched BIM (`search::BimSearch`), so the
 * automated Section IV-B methodology is evaluated side by side with
 * the paper's hand-derived mappings.
 */

#include "bench_util.hh"

using namespace valley;

int
main()
{
    bench::printHeader("Figure 12",
                       "per-benchmark speedup over BASE (valley set)");

    // The shared Fig. 11-17 grid plus the searched scheme; the common
    // cells come from (and land in) the same result cache.
    std::vector<Scheme> with_sbim = allSchemes();
    with_sbim.push_back(Scheme::SBIM);
    const harness::Grid g =
        bench::valleyGrid(1.0, std::move(with_sbim));
    const std::vector<Scheme> &schemes = g.options().schemes;

    TextTable t;
    std::vector<std::string> header = {"bench"};
    for (Scheme s : schemes)
        header.push_back(schemeName(s));
    t.setHeader(header);
    for (const auto &w : g.options().workloads) {
        std::vector<std::string> row = {w};
        for (Scheme s : schemes)
            row.push_back(TextTable::num(g.speedup(w, s), 2));
        t.addRow(row);
    }
    t.addRule();
    std::vector<std::string> hm = {"HMEAN"};
    for (Scheme s : schemes)
        hm.push_back(TextTable::num(g.hmeanSpeedup(s), 2));
    t.addRow(hm);
    std::printf("%s\n", t.toString().c_str());

    std::printf("Paper HMEAN: BASE 1.00, PM 1.16, RMP 1.21, PAE 1.52, "
                "FAE 1.56, ALL 1.54;\nMT and LU reach up to ~7.5x "
                "under the Broad schemes.\nSBIM is this repo's "
                "searched per-workload BIM (no paper counterpart).\n");
    return 0;
}
