/**
 * @file
 * Fig. 10 — MT's entropy distribution under the six address mapping
 * schemes plus SBIM (this repo's searched BIM): PAE and FAE must
 * remove the valley in the channel/bank bits; ALL removes all
 * valleys; SBIM should match the Broad schemes on its target bits.
 *
 * Profiles are memoized in the profile cache, keyed by scheme name
 * plus BIM seed (the per-scheme remap is fused into the bit-sliced
 * accumulation on a miss; SBIM keys on the searched matrix's hash).
 */

#include "bench_util.hh"
#include "harness/profile_cache.hh"
#include "search/searched_bim.hh"

using namespace valley;

int
main()
{
    // VALLEY_WORKLOADS (first entry) swaps the profiled workload —
    // synth specs included — so Fig. 10's scheme comparison runs on
    // any scenario, not only MT.
    const std::string which =
        bench::envWorkloads({"MT"}).front();
    bench::printHeader(
        "Figure 10",
        which + " entropy distribution per address mapping scheme");
    const double scale = bench::envScale();
    const auto wl = workloads::make(which, scale);
    const AddressLayout layout = AddressLayout::hynixGddr5();

    TextTable summary;
    summary.setHeader({"scheme", "mean H* ch bits (8-9)",
                       "mean H* bank bits (10-13)",
                       "min H* ch/bank"});

    const std::uint64_t bim_seed = 1;
    std::vector<Scheme> schemes = allSchemes();
    schemes.push_back(Scheme::SBIM); // this repo's searched mapping
    for (Scheme s : schemes) {
        EntropyProfile p;
        if (s == Scheme::SBIM) {
            // The searched mapping depends on the workload's own
            // profile, so it comes from the search front-end, whose
            // result carries the profile of the searched matrix
            // (computed from the already-extracted bit planes and
            // stored in the profile cache under the matrix hash).
            search::SearchOptions so = search::defaultOptions(layout);
            so.seed = bim_seed;
            p = search::searchWorkload(*wl, layout, so, scale)
                    .searchedProfile;
        } else {
            const auto mapper =
                mapping::makeScheme(s, layout, bim_seed);
            workloads::ProfileOptions po;
            po.mapper = s == Scheme::BASE ? nullptr : mapper.get();
            p = harness::profileWorkloadCached(
                *wl, po, scale,
                s == Scheme::BASE
                    ? ""
                    : schemeName(s) + "-" + std::to_string(bim_seed));
        }

        std::printf("--- %s\n%s", schemeName(s).c_str(),
                    p.chart(29, 6).c_str());
        std::printf("  H*:");
        for (int b = 29; b >= 6; --b)
            std::printf("%5.2f", p.perBit[b]);
        std::printf("\n\n");

        summary.addRow(
            {schemeName(s), TextTable::num(p.meanOver({8, 9}), 3),
             TextTable::num(p.meanOver({10, 11, 12, 13}), 3),
             TextTable::num(p.minOver({8, 9, 10, 11, 12, 13}), 3)});
    }
    std::printf("%s\n", summary.toString().c_str());
    std::printf("Paper: BASE has a clear valley at channel bits 8-9 "
                "and bank bit 10; PM and RMP\ncannot remove it; PAE "
                "and FAE remove it; ALL removes all valleys.\n");
    return 0;
}
