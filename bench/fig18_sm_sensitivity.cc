/**
 * @file
 * Fig. 18 — sensitivity to the number of SMs (12/24/48, conventional
 * GDDR5) and to 3D-stacked memory (64 SMs, 4 stacks x 16 vaults).
 *
 * Runs at VALLEY_SCALE (default 0.5 here: 4 machine configurations x
 * 10 workloads x 6 schemes).
 */

#include "bench_util.hh"

using namespace valley;

int
main()
{
    bench::printHeader(
        "Figure 18",
        "speedup sensitivity: SM count and 3D-stacked memory");
    const double scale = bench::envScale(0.5);

    std::vector<SimConfig> configs = {
        SimConfig::withSms(12), SimConfig::withSms(24),
        SimConfig::withSms(48), SimConfig::stacked3d()};

    TextTable t;
    std::vector<std::string> header = {"configuration"};
    for (Scheme s : allSchemes())
        header.push_back(schemeName(s));
    t.setHeader(header);

    for (const SimConfig &cfg : configs) {
        harness::GridOptions o;
        o.config = cfg;
        o.workloads = workloads::valleySet();
        o.schemes = allSchemes();
        o.scale = scale;
        o.useCache = true;
        o.progress = true;
        const harness::Grid g = harness::runGrid(std::move(o));
        std::vector<std::string> row = {cfg.name};
        for (Scheme s : allSchemes())
            row.push_back(TextTable::num(g.hmeanSpeedup(s), 2));
        t.addRow(row);
    }
    std::printf("%s\n", t.toString().c_str());
    std::printf(
        "Paper shape: PAE/FAE/ALL consistently improve performance "
        "across SM counts\n(somewhat lower at 48 SMs due to memory "
        "saturation) and on 3D-stacked memory;\nRMP performs close to "
        "BASE on the 3D configuration. (VALLEY_SCALE=%.2f)\n",
        scale);
    return 0;
}
