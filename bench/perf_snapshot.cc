/**
 * @file
 * Perf trajectory snapshot: measures the tentpole optimizations and
 * records them as machine-readable JSON so subsequent PRs can track
 * the numbers.
 *
 *  - BENCH_mapper.json: naive `BitMatrix::apply` (one parity
 *    reduction per output bit) vs the byte-sliced
 *    `CompiledTransform::apply` (8 table loads), addrs/sec on the
 *    30-bit paper layout across all six schemes.
 *  - BENCH_profiler.json: scalar `BvrAccumulator` vs the bit-sliced
 *    `SlicedBvrAccumulator` (addrs/sec, with a bit-identity check),
 *    the reference vs incremental `windowEntropy`, and serial vs
 *    parallel `profileWorkload` wall-clock with a profile
 *    bit-identity check.
 *  - BENCH_grid.json: serial vs parallel `harness::runGrid` on a
 *    6-cell grid, wall-clock seconds plus a bit-identity check of
 *    the two result sets.
 *
 * Single-core hosts force the parallel legs onto 2 worker threads so
 * the recorded speedups exercise the thread-pool path instead of
 * degenerating into a second serial run.
 *
 * BENCH_search.json (evals/sec across the scalar/SIMD and
 * oracle/cached scoring legs, plus the joint-vs-independent set
 * comparison) is owned by `bench/search_throughput.cc`.
 */

#include <chrono>
#include <vector>

#include "bench_util.hh"
#include "common/bitops.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "entropy/sliced_bvr.hh"
#include "search/searched_bim.hh"
#include "workloads/workload_set.hh"

using namespace valley;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

struct MapperTiming
{
    double naiveAddrsPerSec = 0.0;
    double compiledAddrsPerSec = 0.0;
};

MapperTiming
timeMapper(const AddressMapper &mapper, const std::vector<Addr> &addrs,
           unsigned passes)
{
    MapperTiming t;
    Addr sink = 0;

    auto start = Clock::now();
    for (unsigned p = 0; p < passes; ++p)
        for (Addr a : addrs)
            sink ^= mapper.matrix().apply(a);
    const double naive = secondsSince(start);

    start = Clock::now();
    for (unsigned p = 0; p < passes; ++p)
        for (Addr a : addrs)
            sink ^= mapper.compiled().apply(a);
    const double compiled = secondsSince(start);

    // The two sums cancel iff both paths agree; folding the sink into
    // the count keeps the loops from being optimized away.
    const double n =
        static_cast<double>(addrs.size()) * passes + (sink ? 1 : 0);
    t.naiveAddrsPerSec = naive > 0.0 ? n / naive : 0.0;
    t.compiledAddrsPerSec = compiled > 0.0 ? n / compiled : 0.0;
    return t;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Perf snapshot",
        "compiled BIM + bit-sliced profiler + parallel grid");

    const unsigned hw_threads = ThreadPool::defaultThreads();
    // On a 1-core host a "parallel" run at the default thread count
    // is just the serial path again; 2 workers keep the measurement
    // meaningful as a thread-pool exercise.
    const unsigned parallel_threads = hw_threads == 1 ? 2 : 0;
    std::printf("hardware threads: %u (parallel runs use %s)\n\n",
                hw_threads,
                parallel_threads == 0 ? "all of them" : "2, forced");

    // ---- mapper throughput ------------------------------------------------
    const AddressLayout layout = AddressLayout::hynixGddr5();
    XorShiftRng rng(42);
    std::vector<Addr> addrs(1u << 18);
    for (Addr &a : addrs)
        a = rng.next() & bits::mask(30);
    const unsigned passes = 8;

    bench::JsonEmitter mapper_json("BENCH_mapper.json");
    mapper_json.field("layout", layout.name);
    mapper_json.field("addresses",
                      static_cast<std::uint64_t>(addrs.size()) * passes);

    TextTable t;
    t.setHeader({"scheme", "naive addr/s", "compiled addr/s",
                 "speedup"});
    double naive_sum = 0.0, compiled_sum = 0.0;
    for (Scheme s : allSchemes()) {
        const auto mapper = mapping::makeScheme(s, layout, 1);
        const MapperTiming timing = timeMapper(*mapper, addrs, passes);
        naive_sum += timing.naiveAddrsPerSec;
        compiled_sum += timing.compiledAddrsPerSec;
        const double speedup =
            timing.naiveAddrsPerSec > 0.0
                ? timing.compiledAddrsPerSec / timing.naiveAddrsPerSec
                : 0.0;
        t.addRow({schemeName(s),
                  TextTable::num(timing.naiveAddrsPerSec),
                  TextTable::num(timing.compiledAddrsPerSec),
                  TextTable::num(speedup)});
        mapper_json.field(schemeName(s) + "_naive_addrs_per_sec",
                          timing.naiveAddrsPerSec);
        mapper_json.field(schemeName(s) + "_compiled_addrs_per_sec",
                          timing.compiledAddrsPerSec);
    }
    const double mean_speedup =
        naive_sum > 0.0 ? compiled_sum / naive_sum : 0.0;
    mapper_json.field("mean_naive_addrs_per_sec",
                      naive_sum / allSchemes().size());
    mapper_json.field("mean_compiled_addrs_per_sec",
                      compiled_sum / allSchemes().size());
    mapper_json.field("compiled_over_naive_speedup", mean_speedup);
    std::printf("%s", t.toString().c_str());
    std::printf("\nmean compiled/naive speedup: %.2fx\n\n",
                mean_speedup);

    // ---- entropy profiler -------------------------------------------------
    bool profiler_ok = true;
    {
        bench::JsonEmitter prof_json("BENCH_profiler.json");
        prof_json.field("hardware_threads", hw_threads);

        // Scalar vs bit-sliced BVR accumulation on the same stream.
        XorShiftRng prng(1234);
        std::vector<Addr> paddrs(1u << 18);
        for (Addr &a : paddrs)
            a = prng.next() & bits::mask(30);
        const unsigned ppasses = 16;
        const double n_accum =
            static_cast<double>(paddrs.size()) * ppasses;

        BvrAccumulator scalar_acc(30);
        auto start = Clock::now();
        for (unsigned p = 0; p < ppasses; ++p)
            for (Addr a : paddrs)
                scalar_acc.add(a);
        const double scalar_sec = secondsSince(start);

        SlicedBvrAccumulator sliced_acc(30);
        start = Clock::now();
        for (unsigned p = 0; p < ppasses; ++p)
            sliced_acc.addMany(paddrs);
        const double sliced_sec = secondsSince(start);

        const bool bvrs_identical =
            scalar_acc.bvrs() == sliced_acc.bvrs() &&
            scalar_acc.requestCount() == sliced_acc.requestCount();
        profiler_ok = profiler_ok && bvrs_identical;
        const double accum_speedup =
            sliced_sec > 0.0 ? scalar_sec / sliced_sec : 0.0;
        prof_json.field("accum_addresses",
                        static_cast<std::uint64_t>(n_accum));
        prof_json.field("scalar_addrs_per_sec",
                        scalar_sec > 0.0 ? n_accum / scalar_sec : 0.0);
        prof_json.field("sliced_addrs_per_sec",
                        sliced_sec > 0.0 ? n_accum / sliced_sec : 0.0);
        prof_json.field("sliced_over_scalar_speedup", accum_speedup);
        prof_json.field("bvrs_identical", bvrs_identical);
        std::printf("bvr accumulation: scalar %.0f addr/s, sliced "
                    "%.0f addr/s (%.1fx), identical=%s\n",
                    n_accum / scalar_sec, n_accum / sliced_sec,
                    accum_speedup, bvrs_identical ? "yes" : "NO");

        // Reference (per-window sort) vs incremental window entropy.
        XorShiftRng wrng(99);
        std::vector<double> series(4096);
        for (double &v : series)
            v = static_cast<double>(wrng.below(8)) / 7.0;
        const unsigned wpasses = 32;
        double sink = 0.0;
        start = Clock::now();
        for (unsigned p = 0; p < wpasses; ++p)
            sink += windowEntropyReference(series, 12);
        const double ref_sec = secondsSince(start);
        start = Clock::now();
        for (unsigned p = 0; p < wpasses; ++p)
            sink -= windowEntropy(series, 12);
        const double incr_sec = secondsSince(start);
        const double tbs_per_pass = static_cast<double>(series.size());
        prof_json.field("window_entropy_reference_tbs_per_sec",
                        ref_sec > 0.0
                            ? tbs_per_pass * wpasses / ref_sec
                            : 0.0);
        prof_json.field("window_entropy_incremental_tbs_per_sec",
                        incr_sec > 0.0
                            ? tbs_per_pass * wpasses / incr_sec
                            : 0.0);
        prof_json.field("window_entropy_speedup",
                        incr_sec > 0.0 ? ref_sec / incr_sec : 0.0);
        std::printf("window entropy: reference %.3fs, incremental "
                    "%.3fs (%.1fx, drift %.2g)\n",
                    ref_sec, incr_sec,
                    incr_sec > 0.0 ? ref_sec / incr_sec : 0.0,
                    sink / wpasses);

        // Serial vs parallel workload profiling, bit-identity checked.
        const double pscale = bench::envScale(1.0);
        const std::vector<std::string> pworkloads = {"MT", "GS",
                                                     "DWT2D"};
        workloads::ProfileOptions serial_po;
        serial_po.threads = 1;
        workloads::ProfileOptions parallel_po;
        parallel_po.threads = parallel_threads;

        double serial_sec = 0.0, par_sec = 0.0;
        bool profiles_identical = true;
        for (const std::string &w : pworkloads) {
            const auto wl = workloads::make(w, pscale);
            // Best of 3 per leg: on short runs scheduler noise would
            // otherwise dominate the recorded ratio.
            EntropyProfile ps, pp;
            double best_s = 0.0, best_p = 0.0;
            for (int rep = 0; rep < 3; ++rep) {
                start = Clock::now();
                ps = workloads::profileWorkload(*wl, serial_po);
                const double s = secondsSince(start);
                start = Clock::now();
                pp = workloads::profileWorkload(*wl, parallel_po);
                const double p = secondsSince(start);
                if (rep == 0 || s < best_s)
                    best_s = s;
                if (rep == 0 || p < best_p)
                    best_p = p;
            }
            serial_sec += best_s;
            par_sec += best_p;
            profiles_identical = profiles_identical &&
                                 ps.perBit == pp.perBit &&
                                 ps.weight == pp.weight;
        }
        // Synth scenario generators through the same serial/parallel
        // identity check: the open-ended workload space must hold the
        // same determinism contract as the Table II suite.
        const std::vector<std::string> sworkloads = {
            "synth:stencil3d", "synth:hash_shuffle,fmb=64,tbs=32"};
        double synth_serial_sec = 0.0, synth_par_sec = 0.0;
        bool synth_identical = true;
        for (const std::string &w : sworkloads) {
            const auto wl = workloads::make(w, 0.5);
            start = Clock::now();
            const EntropyProfile ps =
                workloads::profileWorkload(*wl, serial_po);
            synth_serial_sec += secondsSince(start);
            start = Clock::now();
            const EntropyProfile pp =
                workloads::profileWorkload(*wl, parallel_po);
            synth_par_sec += secondsSince(start);
            synth_identical = synth_identical &&
                              ps.perBit == pp.perBit &&
                              ps.weight == pp.weight;
        }
        profiler_ok = profiler_ok && synth_identical;
        prof_json.field("synth_profile_workloads",
                        "stencil3d+hash_shuffle");
        prof_json.field("synth_profile_serial_seconds",
                        synth_serial_sec);
        prof_json.field("synth_profile_parallel_seconds",
                        synth_par_sec);
        prof_json.field("synth_profiles_identical", synth_identical);
        std::printf("synth profiles: serial %.2fs, parallel %.2fs, "
                    "identical=%s\n",
                    synth_serial_sec, synth_par_sec,
                    synth_identical ? "yes" : "NO");

        profiler_ok = profiler_ok && profiles_identical;
        const unsigned par_used = parallel_po.threads == 0
                                      ? hw_threads
                                      : parallel_po.threads;
        prof_json.field("profile_workloads", "MT+GS+DWT2D");
        prof_json.field("profile_scale", pscale);
        prof_json.field("profile_serial_seconds", serial_sec);
        prof_json.field("profile_parallel_seconds", par_sec);
        prof_json.field("profile_parallel_threads", par_used);
        prof_json.field("profile_parallel_speedup",
                        par_sec > 0.0 ? serial_sec / par_sec : 0.0);
        prof_json.field("profiles_identical", profiles_identical);
        std::printf("profileWorkload: serial %.2fs, parallel %.2fs "
                    "(%u threads, %.2fx), identical=%s\n\n",
                    serial_sec, par_sec, par_used,
                    par_sec > 0.0 ? serial_sec / par_sec : 0.0,
                    profiles_identical ? "yes" : "NO");
    }

    // ---- grid wall-clock -------------------------------------------------
    harness::GridOptions opts;
    opts.workloads = {"SC", "GS"};
    opts.schemes = {Scheme::BASE, Scheme::PM, Scheme::FAE};
    opts.scale = bench::envScale(0.25);
    opts.useCache = false;

    harness::GridOptions serial = opts;
    serial.threads = 1;
    auto start = Clock::now();
    const harness::Grid gs = harness::runGrid(std::move(serial));
    const double serial_sec = secondsSince(start);

    harness::GridOptions parallel = opts;
    parallel.threads = parallel_threads; // 0 = one per hw thread
    start = Clock::now();
    const harness::Grid gp = harness::runGrid(std::move(parallel));
    const double parallel_sec = secondsSince(start);

    bool identical = true;
    for (const auto &w : opts.workloads)
        for (Scheme s : opts.schemes)
            identical = identical && gs.at(w, s) == gp.at(w, s);

    const unsigned grid_threads =
        parallel_threads == 0 ? hw_threads : parallel_threads;
    bench::JsonEmitter grid_json("BENCH_grid.json");
    grid_json.field("cells",
                    static_cast<std::uint64_t>(opts.workloads.size() *
                                               opts.schemes.size()));
    grid_json.field("scale", opts.scale);
    grid_json.field("hardware_threads", hw_threads);
    grid_json.field("parallel_threads", grid_threads);
    grid_json.field("serial_seconds", serial_sec);
    grid_json.field("parallel_seconds", parallel_sec);
    grid_json.field("parallel_speedup",
                    parallel_sec > 0.0 ? serial_sec / parallel_sec
                                       : 0.0);
    grid_json.field("results_identical", identical);
    // Internal attribution for the perf trajectory: the process-wide
    // metrics snapshot (cache hit/miss, per-phase search evals,
    // steal/submit counts) accumulated across every section above.
    grid_json.rawField("metrics", metrics::snapshotJson(1));

    std::printf("grid: %zu cells, serial %.2fs, parallel %.2fs "
                "(%u threads on %u-core host), identical=%s\n",
                opts.workloads.size() * opts.schemes.size(), serial_sec,
                parallel_sec, grid_threads, hw_threads,
                identical ? "yes" : "NO");
    return identical && profiler_ok ? 0 : 1;
}
