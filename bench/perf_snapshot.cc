/**
 * @file
 * Perf trajectory snapshot: measures the two tentpole optimizations
 * and records them as machine-readable JSON so subsequent PRs can
 * track the numbers.
 *
 *  - BENCH_mapper.json: naive `BitMatrix::apply` (one parity
 *    reduction per output bit) vs the byte-sliced
 *    `CompiledTransform::apply` (8 table loads), addrs/sec on the
 *    30-bit paper layout across all six schemes.
 *  - BENCH_grid.json: serial vs parallel `harness::runGrid` on a
 *    6-cell grid, wall-clock seconds plus a bit-identity check of
 *    the two result sets.
 */

#include <chrono>
#include <vector>

#include "bench_util.hh"
#include "common/bitops.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"

using namespace valley;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

struct MapperTiming
{
    double naiveAddrsPerSec = 0.0;
    double compiledAddrsPerSec = 0.0;
};

MapperTiming
timeMapper(const AddressMapper &mapper, const std::vector<Addr> &addrs,
           unsigned passes)
{
    MapperTiming t;
    Addr sink = 0;

    auto start = Clock::now();
    for (unsigned p = 0; p < passes; ++p)
        for (Addr a : addrs)
            sink ^= mapper.matrix().apply(a);
    const double naive = secondsSince(start);

    start = Clock::now();
    for (unsigned p = 0; p < passes; ++p)
        for (Addr a : addrs)
            sink ^= mapper.compiled().apply(a);
    const double compiled = secondsSince(start);

    // The two sums cancel iff both paths agree; folding the sink into
    // the count keeps the loops from being optimized away.
    const double n =
        static_cast<double>(addrs.size()) * passes + (sink ? 1 : 0);
    t.naiveAddrsPerSec = naive > 0.0 ? n / naive : 0.0;
    t.compiledAddrsPerSec = compiled > 0.0 ? n / compiled : 0.0;
    return t;
}

} // namespace

int
main()
{
    bench::printHeader("Perf snapshot",
                       "compiled BIM fast path + parallel grid");

    // ---- mapper throughput ------------------------------------------------
    const AddressLayout layout = AddressLayout::hynixGddr5();
    XorShiftRng rng(42);
    std::vector<Addr> addrs(1u << 18);
    for (Addr &a : addrs)
        a = rng.next() & bits::mask(30);
    const unsigned passes = 8;

    bench::JsonEmitter mapper_json("BENCH_mapper.json");
    mapper_json.field("layout", layout.name);
    mapper_json.field("addresses",
                      static_cast<std::uint64_t>(addrs.size()) * passes);

    TextTable t;
    t.setHeader({"scheme", "naive addr/s", "compiled addr/s",
                 "speedup"});
    double naive_sum = 0.0, compiled_sum = 0.0;
    for (Scheme s : allSchemes()) {
        const auto mapper = mapping::makeScheme(s, layout, 1);
        const MapperTiming timing = timeMapper(*mapper, addrs, passes);
        naive_sum += timing.naiveAddrsPerSec;
        compiled_sum += timing.compiledAddrsPerSec;
        const double speedup =
            timing.naiveAddrsPerSec > 0.0
                ? timing.compiledAddrsPerSec / timing.naiveAddrsPerSec
                : 0.0;
        t.addRow({schemeName(s),
                  TextTable::num(timing.naiveAddrsPerSec),
                  TextTable::num(timing.compiledAddrsPerSec),
                  TextTable::num(speedup)});
        mapper_json.field(schemeName(s) + "_naive_addrs_per_sec",
                          timing.naiveAddrsPerSec);
        mapper_json.field(schemeName(s) + "_compiled_addrs_per_sec",
                          timing.compiledAddrsPerSec);
    }
    const double mean_speedup =
        naive_sum > 0.0 ? compiled_sum / naive_sum : 0.0;
    mapper_json.field("mean_naive_addrs_per_sec",
                      naive_sum / allSchemes().size());
    mapper_json.field("mean_compiled_addrs_per_sec",
                      compiled_sum / allSchemes().size());
    mapper_json.field("compiled_over_naive_speedup", mean_speedup);
    std::printf("%s", t.toString().c_str());
    std::printf("\nmean compiled/naive speedup: %.2fx\n\n",
                mean_speedup);

    // ---- grid wall-clock -------------------------------------------------
    harness::GridOptions opts;
    opts.workloads = {"SC", "GS"};
    opts.schemes = {Scheme::BASE, Scheme::PM, Scheme::FAE};
    opts.scale = bench::envScale(0.25);
    opts.useCache = false;

    harness::GridOptions serial = opts;
    serial.threads = 1;
    auto start = Clock::now();
    const harness::Grid gs = harness::runGrid(std::move(serial));
    const double serial_sec = secondsSince(start);

    harness::GridOptions parallel = opts;
    parallel.threads = 0; // one worker per hardware thread
    start = Clock::now();
    const harness::Grid gp = harness::runGrid(std::move(parallel));
    const double parallel_sec = secondsSince(start);

    bool identical = true;
    for (const auto &w : opts.workloads)
        for (Scheme s : opts.schemes)
            identical = identical && gs.at(w, s) == gp.at(w, s);

    const unsigned threads = ThreadPool::defaultThreads();
    bench::JsonEmitter grid_json("BENCH_grid.json");
    grid_json.field("cells",
                    static_cast<std::uint64_t>(opts.workloads.size() *
                                               opts.schemes.size()));
    grid_json.field("scale", opts.scale);
    grid_json.field("hardware_threads", threads);
    grid_json.field("serial_seconds", serial_sec);
    grid_json.field("parallel_seconds", parallel_sec);
    grid_json.field("parallel_speedup",
                    parallel_sec > 0.0 ? serial_sec / parallel_sec
                                       : 0.0);
    grid_json.field("results_identical", identical);

    std::printf("grid: %zu cells, serial %.2fs, parallel %.2fs "
                "(%u threads), identical=%s\n",
                opts.workloads.size() * opts.schemes.size(), serial_sec,
                parallel_sec, threads, identical ? "yes" : "NO");
    return identical ? 0 : 1;
}
