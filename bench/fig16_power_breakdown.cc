/**
 * @file
 * Fig. 16 — DRAM power breakdown into background / activate / read /
 * write components per benchmark and scheme.
 */

#include "bench_util.hh"

using namespace valley;

int
main()
{
    bench::printHeader("Figure 16", "DRAM power breakdown [W]");
    const harness::Grid g = bench::valleyGrid();

    TextTable t;
    t.setHeader({"bench", "scheme", "background", "activate", "read",
                 "write", "total"});
    for (const auto &w : g.options().workloads) {
        for (Scheme s : allSchemes()) {
            const DramPowerBreakdown &p = g.at(w, s).dramPower;
            t.addRow({w, schemeName(s),
                      TextTable::num(p.backgroundW, 1),
                      TextTable::num(p.activateW, 1),
                      TextTable::num(p.readW, 1),
                      TextTable::num(p.writeW, 1),
                      TextTable::num(p.totalW(), 1)});
        }
        t.addRule();
    }
    for (Scheme s : allSchemes()) {
        const auto mean = [&](double (DramPowerBreakdown::*f)) {
            return g.mean(s, [f](const RunResult &r) {
                return r.dramPower.*f;
            });
        };
        t.addRow({"AVG", schemeName(s),
                  TextTable::num(mean(&DramPowerBreakdown::backgroundW), 1),
                  TextTable::num(mean(&DramPowerBreakdown::activateW), 1),
                  TextTable::num(mean(&DramPowerBreakdown::readW), 1),
                  TextTable::num(mean(&DramPowerBreakdown::writeW), 1),
                  TextTable::num(g.mean(s,
                                        [](const RunResult &r) {
                                            return r.dramPower.totalW();
                                        }),
                                 1)});
    }
    std::printf("%s\n", t.toString().c_str());
    std::printf("Paper shape: address mapping primarily affects the "
                "activate component; FAE and\nALL increase activate "
                "power substantially (+35%%/+45%% total DRAM power), "
                "PAE only\nmarginally (+3%%).\n");
    return 0;
}
