/**
 * @file
 * Fig. 5 — window-entropy distribution of all 16 benchmarks plus the
 * two individually-plotted kernels (SRAD2-K1, DWT2D-K1). Bits used
 * for channel/bank selection (8-13 under the Hynix map) are marked.
 *
 * Workload profiles go through the on-disk profile cache (first run
 * computes with the parallel bit-sliced profiler, later runs reuse;
 * VALLEY_CACHE=0 disables).
 */

#include "bench_util.hh"
#include "harness/profile_cache.hh"

using namespace valley;

namespace {

void
printProfile(const std::string &label, const EntropyProfile &p)
{
    std::printf("--- %s (requests: %s)\n", label.c_str(),
                TextTable::big(p.weight).c_str());
    std::printf("%s", p.chart(29, 6).c_str());
    std::printf("bit: ");
    for (int b = 29; b >= 6; --b)
        std::printf("%5d", b);
    std::printf("\n  H*:");
    for (int b = 29; b >= 6; --b)
        std::printf("%5.2f", p.perBit[b]);
    std::printf("\n      ");
    for (int b = 29; b >= 6; --b)
        std::printf("%5s", (b >= 8 && b <= 13) ? "^^^" : "");
    std::printf("   (^^^ = channel/bank bits)\n\n");
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 5",
        "entropy distributions, 16 benchmarks + 2 kernels (w = 12)");
    const double scale = bench::envScale();
    workloads::ProfileOptions po; // window 12 = #SMs

    for (const std::string &a : workloads::allSet()) {
        const auto wl = workloads::make(a, scale);
        printProfile(a + (wl->info().entropyValley
                              ? "  [entropy valley]"
                              : "  [non-valley]"),
                     harness::profileWorkloadCached(*wl, po, scale));
    }

    // The two kernel-level profiles of Fig. 5h / 5j.
    {
        const auto srad2 = workloads::make("SRAD2", scale);
        printProfile("SRAD2-K1 (first gradient kernel)",
                     workloads::profileKernel(srad2->kernels().front(),
                                              po));
        const auto dwt = workloads::make("DWT2D", scale);
        printProfile("DWT2D-K1 (first horizontal pass)",
                     workloads::profileKernel(dwt->kernels().front(),
                                              po));
    }

    std::printf("Paper take-away reproduced: every benchmark has "
                "high-entropy bits, but their\nposition is "
                "application-dependent; the top-ten group shows "
                "valleys overlapping\nthe channel/bank bits, the "
                "bottom six concentrate entropy in low-order "
                "bits.\n");
    return 0;
}
