/**
 * @file
 * Synth smoke — a tiny-scale end-to-end pass over the synthetic
 * scenario subsystem, run by CI next to `perf_snapshot`:
 *
 *  1. three synth specs (two valley shapes, one near-flat) run
 *     through the full harness grid under BASE and SBIM — i.e.
 *     spec parse → trace generation → profile → BIM search →
 *     simulation → normalized metrics;
 *  2. the searched mapping's entropy on its target bits is compared
 *     against BASE for each spec;
 *  3. everything lands in BENCH_synth.json.
 *
 * Exit status is non-zero unless every search at least matches the
 * identity mapping and at least one synth workload strictly beats
 * BASE mapping entropy — the acceptance bar for the scenario
 * generator feeding the mapping service.
 */

#include <string>
#include <vector>

#include "bench_util.hh"
#include "search/searched_bim.hh"

using namespace valley;

int
main()
{
    bench::printHeader("Synth smoke",
                       "scenario generator x {BASE, SBIM} grid");

    const std::vector<std::string> specs = bench::envWorkloads({
        "synth:strided",
        "synth:stencil3d",
        "synth:hash_shuffle,fmb=64,tbs=32",
    });
    const double scale = bench::envScale(0.25);

    harness::GridOptions o;
    o.workloads = specs;
    o.schemes = {Scheme::BASE, Scheme::SBIM};
    o.scale = scale;
    o.useCache = true;
    o.progress = true;
    const harness::Grid g = harness::runGrid(std::move(o));

    const AddressLayout layout = AddressLayout::hynixGddr5();
    const std::vector<unsigned> targets = layout.randomizeTargets();

    bench::JsonEmitter json("BENCH_synth.json");
    json.field("scale", scale);
    json.field("specs", static_cast<std::uint64_t>(specs.size()));

    TextTable t;
    t.setHeader({"spec", "dims", "speedup", "H* targets BASE",
                 "H* targets SBIM", "search gain"});

    bool all_non_regressing = true;
    bool any_strict_gain = false;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string &spec = specs[i];
        const auto wl = workloads::make(spec, scale);

        search::SearchOptions so =
            search::defaultOptions(layout);
        so.threads = 1;
        const search::WorkloadSearchResult r =
            search::searchWorkload(*wl, layout, so, scale);

        const double base_h = r.identityProfile.meanOver(targets);
        const double sbim_h = r.searchedProfile.meanOver(targets);
        const double speedup = g.speedup(spec, Scheme::SBIM);
        const double gain = r.annealed.gain();

        all_non_regressing = all_non_regressing && gain >= 0.0;
        any_strict_gain = any_strict_gain || (gain > 1e-9 &&
                                              sbim_h > base_h);

        t.addRow({spec, wl->info().dims, TextTable::num(speedup, 3),
                  TextTable::num(base_h, 3), TextTable::num(sbim_h, 3),
                  TextTable::num(gain, 4)});

        const std::string key = "spec" + std::to_string(i);
        json.field(key, spec);
        json.field(key + "_speedup", speedup);
        json.field(key + "_base_target_entropy", base_h);
        json.field(key + "_sbim_target_entropy", sbim_h);
        json.field(key + "_search_gain", gain);
    }
    json.field("all_non_regressing", all_non_regressing);
    json.field("any_strict_gain", any_strict_gain);

    std::printf("%s\n", t.toString().c_str());
    std::printf("search never regresses vs identity: %s; at least one "
                "spec strictly improves: %s\n",
                all_non_regressing ? "yes" : "NO",
                any_strict_gain ? "yes" : "NO");
    return all_non_regressing && any_strict_gain ? 0 : 1;
}
