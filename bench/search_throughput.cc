/**
 * @file
 * Search-throughput bench: owns `BENCH_search.json`.
 *
 * Measures `BimSearch` candidate-evaluation throughput on a fixed
 * synth joint set at a small and a large scale.
 *
 * The speedup denominator (`baseline_evaluations_per_second`) comes
 * from a **legacy reference** kept verbatim in this file: the pre-PR
 * scoring path — per-TB `std::vector` planes, the per-word
 * `countr_zero` tap walk, and the vector-allocating
 * `shannonEntropyBaseV` binary-entropy tail — timed on this host over
 * a fixed mask set. Its values double as an oracle: they must match
 * today's `rowEntropy` bit for bit, so the recorded speedup can never
 * come from computing something different.
 *
 * On top of that, three full anneal legs (identical trajectories
 * asserted):
 *
 *  - **scalar oracle**: `PlaneOptions::forceScalar` planes, per-move
 *    from-scratch scoring (`SearchOptions::planeCache = false`);
 *  - **simd oracle**: dispatched SIMD kernels, from-scratch scoring;
 *  - **cached** (headline `evaluations_per_second`): SIMD kernels
 *    plus the incremental plane cache.
 *
 * A fourth leg times `rowEntropyBatch` against a per-row loop over
 * the same masks, and the joint-vs-independent comparison that used
 * to live in perf_snapshot is carried over with its `joint_*` fields,
 * including the `joint_deterministic` re-run check CI asserts on.
 * Exit code is non-zero on any identity failure.
 */

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/bitops.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "entropy/window_entropy.hh"
#include "search/searched_bim.hh"
#include "workloads/workload_set.hh"

using namespace valley;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---- legacy (pre-PR) scoring reference ------------------------------------
// A faithful copy of the original TracePlanes scoring path, preserved
// as the fixed denominator of `speedup_vs_baseline` (and as an oracle
// for today's rowEntropy). Do not "optimize" this: its point is to
// keep measuring what the code did before the plane cache, the SIMD
// dispatch and the arena landed.

struct LegacyTb
{
    std::uint64_t requests = 0;
    std::uint32_t words = 0;
    std::vector<std::uint64_t> bits; ///< plane b at [b * words + w]
};

struct LegacyKernel
{
    std::vector<LegacyTb> tbs;
    std::uint64_t requests = 0;
};

struct LegacyPlanes
{
    unsigned nbits = 0;
    std::uint64_t total = 0;
    std::vector<LegacyKernel> kernels;
};

LegacyPlanes
legacyExtract(const Workload &wl, unsigned nbits)
{
    LegacyPlanes lp;
    lp.nbits = nbits;
    for (const Kernel &k : wl.kernels()) {
        LegacyKernel lk;
        lk.tbs.resize(k.numTbs());
        for (TbId tb = 0; tb < k.numTbs(); ++tb) {
            LegacyTb &t = lk.tbs[tb];
            const TbTrace trace = k.trace(tb);
            t.requests = trace.requestCount();
            t.words =
                static_cast<std::uint32_t>((t.requests + 63) / 64);
            t.bits.assign(static_cast<std::size_t>(nbits) * t.words,
                          0);
            std::uint64_t block[64];
            unsigned fill = 0;
            std::uint32_t word = 0;
            const auto flush = [&] {
                std::fill(block + fill, block + 64, 0);
                bits::transpose64Scalar(block);
                for (unsigned b = 0; b < nbits; ++b)
                    t.bits[static_cast<std::size_t>(b) * t.words +
                           word] = block[b];
                ++word;
                fill = 0;
            };
            for (const WarpTrace &w : trace.warps)
                for (const MemInstr &instr : w.instrs)
                    for (Addr a : instr.lines) {
                        block[fill] = a;
                        if (++fill == 64)
                            flush();
                    }
            if (fill > 0)
                flush();
            lk.requests += t.requests;
        }
        lp.total += lk.requests;
        lp.kernels.push_back(std::move(lk));
    }
    return lp;
}

double
legacyTbBvr(const LegacyTb &tb, std::uint64_t row_mask)
{
    if (tb.requests == 0)
        return 0.0;
    std::uint64_t ones = 0;
    for (std::uint32_t w = 0; w < tb.words; ++w) {
        std::uint64_t x = 0;
        for (std::uint64_t m = row_mask; m != 0; m &= m - 1) {
            const unsigned b =
                static_cast<unsigned>(std::countr_zero(m));
            x ^= tb.bits[static_cast<std::size_t>(b) * tb.words + w];
        }
        ones += static_cast<std::uint64_t>(std::popcount(x));
    }
    return static_cast<double>(ones) /
           static_cast<double>(tb.requests);
}

/** Pre-PR windowBitEntropy: heap-allocating binary-entropy tail. */
double
legacyWindowBitEntropy(const std::vector<double> &bvr_per_tb,
                       unsigned window)
{
    const std::size_t n = bvr_per_tb.size();
    if (n == 0 || window == 0)
        return 0.0;
    const std::size_t w = std::min<std::size_t>(window, n);
    const std::size_t windows = n - w + 1;
    double sum_bvr = 0.0;
    for (std::size_t i = 0; i < w; ++i)
        sum_bvr += bvr_per_tb[i];
    double total = 0.0;
    for (std::size_t i = 0;; ++i) {
        const double p = sum_bvr / static_cast<double>(w);
        if (p > 0.0 && p < 1.0)
            total += shannonEntropyBaseV({p, 1.0 - p});
        if (i + 1 >= windows)
            break;
        sum_bvr += bvr_per_tb[i + w] - bvr_per_tb[i];
    }
    return total / static_cast<double>(windows);
}

double
legacyRowEntropy(const LegacyPlanes &lp, std::uint64_t row_mask,
                 unsigned window, EntropyMetric metric)
{
    if (lp.total == 0)
        return 0.0;
    double combined = 0.0;
    std::vector<double> series;
    for (const LegacyKernel &k : lp.kernels) {
        series.resize(k.tbs.size());
        for (std::size_t t = 0; t < k.tbs.size(); ++t)
            series[t] = legacyTbBvr(k.tbs[t], row_mask);
        const double e = metric == EntropyMetric::BvrDistribution
                             ? windowEntropy(series, window)
                             : legacyWindowBitEntropy(series, window);
        combined += static_cast<double>(k.requests) /
                    static_cast<double>(lp.total) * e;
    }
    return combined;
}

// ---- anneal legs ----------------------------------------------------------

/** One scoring configuration's annealed run. */
struct Leg
{
    search::SearchResult result;
    double seconds = 0.0;

    double
    evalsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(
                                   result.stats.evaluations) /
                                   seconds
                             : 0.0;
    }
};

/** Non-owning member pointers for the joint constructor. */
std::vector<const search::TracePlanes *>
ptrsOf(const std::vector<search::TracePlanes> &planes)
{
    std::vector<const search::TracePlanes *> out;
    out.reserve(planes.size());
    for (const search::TracePlanes &p : planes)
        out.push_back(&p);
    return out;
}

/** Results that must be bit-identical across scoring configs. */
bool
sameResult(const search::SearchResult &a, const search::SearchResult &b)
{
    return a.bim == b.bim && a.cost == b.cost &&
           a.stats.evaluations == b.stats.evaluations &&
           a.targetEntropy == b.targetEntropy;
}

Leg
runLeg(const AddressLayout &layout,
       const std::vector<search::TracePlanes> &planes,
       const search::SearchOptions &so)
{
    const search::BimSearch s(
        layout, ptrsOf(planes),
        search::defaultJointObjective(layout, so.targets,
                                      search::JointCombiner::Mean),
        so);
    Leg leg;
    const auto start = Clock::now();
    leg.result = s.anneal();
    leg.seconds = secondsSince(start);
    return leg;
}

} // namespace

int
main()
{
    bench::printHeader("Search throughput",
                       "incremental plane cache + SIMD dispatch + "
                       "arena planes");

    const AddressLayout layout = AddressLayout::hynixGddr5();
    const workloads::WorkloadSet jset(
        {"synth:strided", "synth:stencil3d"});
    std::printf("simd level: %s (dispatched)\n\n",
                bits::simdOps().name);

    bench::JsonEmitter json("BENCH_search.json");
    json.field("set_members", static_cast<std::uint64_t>(jset.size()));
    json.field("set_id", jset.shortId());
    json.field("simd_level", bits::simdOps().name);

    bool ok = true;

    // Fixed candidate-row mask set shared by the legacy and batch
    // legs (nonzero masks under the PAE candidate restriction).
    const std::uint64_t cmask =
        layout.pageMask() & bits::mask(layout.addrBits);
    XorShiftRng mask_rng(7);
    constexpr std::size_t kMasks = 64;
    std::vector<std::uint64_t> masks(kMasks);
    for (std::uint64_t &m : masks)
        do {
            m = mask_rng.next() & cmask;
        } while (m == 0);

    // ---- evals/sec at small and large scale -------------------------------
    const double small_scale = 0.25;
    const double large_scale = bench::envScale(1.0);
    json.field("scale", small_scale);
    json.field("large_scale", large_scale);

    double small_evals_per_sec = 0.0;
    for (const double scale : {small_scale, large_scale}) {
        const bool small = scale == small_scale;
        const char *tag = small ? "" : "large_";

        const auto wls = jset.build(scale);
        search::PlaneOptions scalar_po{layout.addrBits, 1, true};
        search::PlaneOptions simd_po{layout.addrBits, 1, false};
        std::vector<search::TracePlanes> scalar_planes;
        std::vector<search::TracePlanes> simd_planes;
        std::vector<LegacyPlanes> legacy_planes;
        for (const auto &w : wls) {
            scalar_planes.emplace_back(*w, scalar_po);
            simd_planes.emplace_back(*w, simd_po);
            legacy_planes.push_back(
                legacyExtract(*w, layout.addrBits));
        }
        std::uint64_t plane_bytes = 0;
        for (const search::TracePlanes &p : simd_planes)
            plane_bytes += p.planeBytes();

        search::SearchOptions so = search::defaultOptions(layout);
        so.threads = 1;
        so.restarts = 2;
        so.iterations = 600;

        // Legacy baseline: pre-PR scoring, timed over the fixed mask
        // set, one (member, row) score = one evaluation — the same
        // unit SearchStats::evaluations counts. Every value must
        // match today's oracle bit for bit.
        bool legacy_identical = true;
        std::uint64_t legacy_evals = 0;
        auto start = Clock::now();
        for (std::size_t m = 0; m < legacy_planes.size(); ++m)
            for (const std::uint64_t mask : masks) {
                const double legacy = legacyRowEntropy(
                    legacy_planes[m], mask, so.window, so.metric);
                ++legacy_evals;
                legacy_identical =
                    legacy_identical &&
                    legacy == simd_planes[m].rowEntropy(
                                  mask, so.window, so.metric);
            }
        // The identity re-check above runs the modern path inside the
        // timed region; time a clean second pass for the denominator.
        double legacy_sink = 0.0;
        start = Clock::now();
        for (const LegacyPlanes &lp : legacy_planes)
            for (const std::uint64_t mask : masks)
                legacy_sink += legacyRowEntropy(lp, mask, so.window,
                                                so.metric);
        const double legacy_sec = secondsSince(start);
        ok = ok && legacy_sink >= 0.0; // keep the timed loop live
        const double legacy_evals_per_sec =
            legacy_sec > 0.0
                ? static_cast<double>(legacy_evals) / legacy_sec
                : 0.0;
        ok = ok && legacy_identical;

        search::SearchOptions oracle_so = so;
        oracle_so.planeCache = false;

        const Leg scalar_leg =
            runLeg(layout, scalar_planes, oracle_so);
        const Leg simd_leg = runLeg(layout, simd_planes, oracle_so);
        const Leg cached = runLeg(layout, simd_planes, so);

        const bool simd_identical =
            sameResult(scalar_leg.result, simd_leg.result);
        const bool cached_identical =
            sameResult(scalar_leg.result, cached.result);
        ok = ok && simd_identical && cached_identical;

        const double speedup =
            legacy_evals_per_sec > 0.0
                ? cached.evalsPerSec() / legacy_evals_per_sec
                : 0.0;
        if (small)
            small_evals_per_sec = cached.evalsPerSec();

        json.field(std::string(tag) + "plane_bytes", plane_bytes);
        json.field(std::string(tag) +
                       "baseline_evaluations_per_second",
                   legacy_evals_per_sec);
        json.field(std::string(tag) + "baseline_identical",
                   legacy_identical);
        json.field(std::string(tag) +
                       "scalar_oracle_evaluations_per_second",
                   scalar_leg.evalsPerSec());
        json.field(std::string(tag) +
                       "simd_oracle_evaluations_per_second",
                   simd_leg.evalsPerSec());
        json.field(std::string(tag) + "evaluations_per_second",
                   cached.evalsPerSec());
        json.field(std::string(tag) + "speedup_vs_baseline", speedup);
        json.field(std::string(tag) + "simd_identical",
                   simd_identical);
        json.field(std::string(tag) + "cached_identical",
                   cached_identical);
        json.field(std::string(tag) + "plane_toggles",
                   cached.result.stats.planeToggles);
        json.field(std::string(tag) + "plane_xors",
                   cached.result.stats.planeXors);
        json.field(std::string(tag) + "plane_rebuilds",
                   cached.result.stats.planeRebuilds);

        std::printf(
            "scale %.2f (%.1f MiB planes): legacy %.0f evals/s, "
            "scalar-oracle %.0f, simd-oracle %.0f, cached %.0f "
            "(%.1fx vs legacy), identical=%s\n",
            scale,
            static_cast<double>(plane_bytes) / (1024.0 * 1024.0),
            legacy_evals_per_sec, scalar_leg.evalsPerSec(),
            simd_leg.evalsPerSec(), cached.evalsPerSec(), speedup,
            legacy_identical && simd_identical && cached_identical
                ? "yes"
                : "NO");
    }

    // ---- batched scoring vs a per-row rowEntropy loop ---------------------
    {
        const auto wls = jset.build(small_scale);
        const search::TracePlanes planes(
            *wls.front(),
            search::PlaneOptions{layout.addrBits, 1, false});
        const search::SearchOptions so =
            search::defaultOptions(layout);

        constexpr int kReps = 8;
        auto start = Clock::now();
        std::vector<double> per_row(kMasks);
        for (int r = 0; r < kReps; ++r)
            for (std::size_t i = 0; i < kMasks; ++i)
                per_row[i] = planes.rowEntropy(masks[i], so.window,
                                               so.metric);
        const double row_sec = secondsSince(start);

        start = Clock::now();
        std::vector<double> batched;
        for (int r = 0; r < kReps; ++r)
            batched = planes.rowEntropyBatch(masks, so.window,
                                             so.metric);
        const double batch_sec = secondsSince(start);

        const bool batch_identical = batched == per_row;
        ok = ok && batch_identical;
        const double batch_speedup =
            batch_sec > 0.0 ? row_sec / batch_sec : 0.0;
        json.field("batch_masks",
                   static_cast<std::uint64_t>(kMasks));
        json.field("batch_speedup", batch_speedup);
        json.field("batch_identical", batch_identical);
        std::printf("rowEntropyBatch: %zu masks, per-row %.3fs, "
                    "batched %.3fs (%.1fx), identical=%s\n\n",
                    kMasks, row_sec, batch_sec, batch_speedup,
                    batch_identical ? "yes" : "NO");
    }

    // ---- joint search vs N independent searches ---------------------------
    bool joint_ok = true;
    {
        // The workload-set question: serving an N-member set used to
        // mean N independent annealing runs (one matrix each); the
        // joint search anneals ONE matrix against all members over
        // their shared trace planes. Record both wall clocks plus the
        // joint run's per-phase breakdown so the plane-sharing win
        // lands in the perf trajectory.
        const double jscale = 0.25;
        search::SearchOptions so = search::defaultOptions(layout);
        so.threads = 1;
        so.restarts = 2;
        so.iterations = 600;

        const auto wls = jset.build(jscale);
        std::vector<search::TracePlanes> planes;
        planes.reserve(wls.size());
        for (const auto &w : wls)
            planes.emplace_back(
                *w, search::PlaneOptions{layout.addrBits, 1});

        auto start = Clock::now();
        double independent_cost = 0.0;
        for (const search::TracePlanes &p : planes) {
            const search::BimSearch s(
                layout, p,
                search::defaultObjective(layout, so.targets), so);
            independent_cost += s.anneal().cost;
        }
        const double independent_sec = secondsSince(start);

        const search::BimSearch js(
            layout, ptrsOf(planes),
            search::defaultJointObjective(layout, so.targets,
                                          search::JointCombiner::Mean),
            so);
        start = Clock::now();
        const search::SearchResult jr = js.anneal();
        const double joint_sec = secondsSince(start);
        // Same seed, same planes: a second joint run must reproduce
        // the exact matrix (the determinism contract of BimSearch).
        joint_ok = js.anneal().bim == jr.bim;
        ok = ok && joint_ok;

        json.field("independent_seconds", independent_sec);
        json.field("independent_cost_sum", independent_cost);
        json.field("joint_seconds", joint_sec);
        json.field("joint_cost", jr.cost);
        json.field("joint_gain", jr.gain());
        json.field("independent_over_joint_seconds",
                   joint_sec > 0.0 ? independent_sec / joint_sec
                                   : 0.0);
        json.field("joint_evaluations", jr.stats.evaluations);
        json.field("joint_setup_seconds", jr.stats.setupSeconds);
        json.field("joint_anneal_seconds", jr.stats.annealSeconds);
        json.field("joint_polish_seconds", jr.stats.polishSeconds);
        json.field("joint_setup_evaluations",
                   jr.stats.setupEvaluations);
        json.field("joint_anneal_evaluations",
                   jr.stats.annealEvaluations);
        json.field("joint_polish_evaluations",
                   jr.stats.polishEvaluations);
        json.field("joint_deterministic", joint_ok);
        std::printf("joint search (%zu members): independent %.3fs, "
                    "joint %.3fs (%.2fx), deterministic=%s\n",
                    jset.size(), independent_sec, joint_sec,
                    joint_sec > 0.0 ? independent_sec / joint_sec
                                    : 0.0,
                    joint_ok ? "yes" : "NO");
    }

    // Registry attribution: search.evals_per_sec / search.plane_*
    // counters and the search.plane_bytes gauge (zero here — every
    // TracePlanes above has been destroyed, so a leak shows up as a
    // nonzero residue).
    json.rawField("metrics", metrics::snapshotJson(1));

    std::printf("\nheadline: %.0f evaluations/sec (small scale, "
                "cached+%s)\n",
                small_evals_per_sec, bits::simdOps().name);
    return ok ? 0 : 1;
}
