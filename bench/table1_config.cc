/**
 * @file
 * Table I — simulated GPU architecture. Prints the configuration the
 * simulator actually instantiates, for comparison against the paper.
 */

#include "bench_util.hh"
#include "dram/dram_timing.hh"

using namespace valley;

namespace {

void
printConfig(const SimConfig &cfg)
{
    TextTable t;
    t.setHeader({"parameter", "value"});
    t.addRow({"configuration", cfg.name});
    t.addRow({"SMs", std::to_string(cfg.numSms)});
    t.addRow({"SM clock", TextTable::num(cfg.smClockGhz, 2) + " GHz"});
    t.addRow({"max threads/SM", std::to_string(cfg.maxThreadsPerSm)});
    t.addRow({"max warps/SM (32 thr)",
              std::to_string(cfg.maxWarpsPerSm)});
    t.addRow({"warp schedulers/SM",
              std::to_string(cfg.schedulersPerSm) + " (GTO)"});
    t.addRow({"L1D / SM",
              std::to_string(cfg.l1.sizeBytes / 1024) + " KB, " +
                  std::to_string(cfg.l1.ways) + "-way, " +
                  std::to_string(cfg.l1.numSets()) + " sets, " +
                  std::to_string(cfg.l1.lineBytes) + " B lines, " +
                  std::to_string(cfg.l1.mshrEntries) + " MSHRs"});
    t.addRow({"LLC", std::to_string(cfg.llcSlices * cfg.llcSlice.sizeBytes /
                                    1024) +
                         " KB total (" + std::to_string(cfg.llcSlices) +
                         " slices, " + std::to_string(cfg.llcSlice.ways) +
                         "-way, " +
                         std::to_string(cfg.llcSlice.numSets()) +
                         " sets)"});
    t.addRow({"NoC", std::to_string(cfg.numSms) + "x" +
                         std::to_string(cfg.llcSlices) + " crossbar, " +
                         std::to_string(cfg.nocChannelBytes) +
                         " B channels, 700 MHz"});
    const double noc_bw = cfg.nocChannelBytes * 0.7 * cfg.llcSlices;
    t.addRow({"NoC bandwidth", TextTable::num(noc_bw, 1) + " GB/s"});
    t.addRow({"DRAM", cfg.layout.describe()});
    t.addRow({"channels",
              std::to_string(cfg.layout.numChannels())});
    t.addRow({"banks/channel",
              std::to_string(cfg.layout.numBanksPerChannel())});
    t.addRow({"rows/bank", std::to_string(cfg.layout.numRows())});
    t.addRow({"columns/row",
              std::to_string(cfg.layout.numColumns())});
    t.addRow({"timing (CL-tRCD-tRP)",
              std::to_string(cfg.dram.tCL) + "-" +
                  std::to_string(cfg.dram.tRCD) + "-" +
                  std::to_string(cfg.dram.tRP) + " @ " +
                  TextTable::num(cfg.dram.clockGhz, 3) + " GHz"});
    const double dram_bw = 128.0 * cfg.dram.clockGhz /
                           cfg.dram.tBurst *
                           cfg.layout.numChannels();
    t.addRow({"DRAM bandwidth", TextTable::num(dram_bw, 1) + " GB/s"});
    t.addRow({"MC scheduling", "FR-FCFS, open page"});
    t.addRow({"MC queue depth", std::to_string(cfg.mcQueueDepth)});
    std::printf("%s\n", t.toString().c_str());
}

} // namespace

int
main()
{
    bench::printHeader("Table I", "simulated GPU architecture");
    printConfig(SimConfig::paperBaseline());
    std::printf("Paper: 12 SMs @1.4 GHz, 1536 threads/SM, GTO; 16 KB "
                "L1 (4-way, 32 sets);\n512 KB LLC (8 slices, 8-way, 64 "
                "sets); 12x8 crossbar @700 MHz, 179.3 GB/s;\nHynix "
                "GDDR5 @924 MHz, 4 MCs x 16 banks, 12-12-12, FR-FCFS, "
                "118.3 GB/s.\n\n");
    printConfig(SimConfig::stacked3d());
    std::printf("Paper (3D): 4 stacks x 16 vaults x 16 banks, 64 "
                "TSVs/vault,\n1.25 Gb/s signaling, 640 GB/s.\n");
    return 0;
}
