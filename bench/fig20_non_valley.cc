/**
 * @file
 * Fig. 20 — the non-entropy-valley benchmarks: address mapping must
 * not hurt workloads whose channel/bank bits already carry entropy.
 */

#include "bench_util.hh"

using namespace valley;

int
main()
{
    bench::printHeader("Figure 20",
                       "non-entropy-valley benchmark speedups");
    const harness::Grid g = bench::nonValleyGrid();

    TextTable t;
    std::vector<std::string> header = {"bench"};
    for (Scheme s : allSchemes())
        header.push_back(schemeName(s));
    t.setHeader(header);
    for (const auto &w : g.options().workloads) {
        std::vector<std::string> row = {w};
        for (Scheme s : allSchemes())
            row.push_back(TextTable::num(g.speedup(w, s), 2));
        t.addRow(row);
    }
    t.addRule();
    std::vector<std::string> hm = {"HMEAN"};
    for (Scheme s : allSchemes())
        hm.push_back(TextTable::num(g.hmeanSpeedup(s), 2));
    t.addRow(hm);
    std::printf("%s\n", t.toString().c_str());
    std::printf("Paper shape: address mapping has a relatively minor "
                "impact on these (still\nmemory-intensive) "
                "benchmarks; PAE and FAE give small average "
                "improvements.\n");
    return 0;
}
