#!/usr/bin/env bash
# Docs lint: fail if `valley_search --help` drifts from the usage
# block README.md pins between the valley-search-help markers. Run by
# CI (docs-lint job) and usable locally:
#
#   tools/check_help_drift.sh [path/to/valley_search]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
bin="${1:-$repo/build/valley_search}"

if [[ ! -x "$bin" ]]; then
    echo "check_help_drift: $bin not built (cmake --build build --target valley_search)" >&2
    exit 1
fi

expected="$(mktemp)"
actual="$(mktemp)"
trap 'rm -f "$expected" "$actual"' EXIT

# Extract the fenced block between the markers, dropping the fences.
awk '/^<!-- valley-search-help -->$/{f=1;next} /^<!-- \/valley-search-help -->$/{f=0} f' \
    "$repo/README.md" | sed '/^```/d' > "$expected"

if [[ ! -s "$expected" ]]; then
    echo "check_help_drift: no valley-search-help block found in README.md" >&2
    exit 1
fi

"$bin" --help > "$actual"

if ! diff -u "$expected" "$actual"; then
    echo >&2
    echo "check_help_drift: README.md usage block is out of date with" >&2
    echo "valley_search --help; update the block between the" >&2
    echo "valley-search-help markers." >&2
    exit 1
fi
echo "check_help_drift: README usage block matches valley_search --help"
