#!/usr/bin/env bash
# Docs lint: fail if any tool's `--help` drifts from the usage block
# README.md pins between `<!-- TOOL-help -->` markers. The tool list
# is derived from tools/*.cc, so adding a CLI automatically requires a
# pinned README block. Run by CI (docs-lint job) and usable locally:
#
#   tools/check_help_drift.sh [build-dir | path/to/one/binary]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
arg="${1:-$repo/build}"

# Accept a build directory, or (legacy) a single binary whose basename
# picks the one tool to check.
if [[ -f "$arg" ]]; then
    builddir="$(cd "$(dirname "$arg")" && pwd)"
    only="$(basename "$arg")"
else
    builddir="$arg"
    only=""
fi

expected="$(mktemp)"
actual="$(mktemp)"
trap 'rm -f "$expected" "$actual"' EXIT

fail=0
checked=0
for src in "$repo"/tools/*.cc; do
    tool="$(basename "${src%.cc}")"
    [[ -n "$only" && "$tool" != "$only" ]] && continue
    bin="$builddir/$tool"

    if [[ ! -x "$bin" ]]; then
        echo "check_help_drift: $bin not built" \
             "(cmake --build build --target $tool)" >&2
        fail=1
        continue
    fi

    # Extract the fenced block between the tool's markers, dropping
    # the fences.
    awk -v tool="$tool" '
        $0 == "<!-- " tool "-help -->" {f=1; next}
        $0 == "<!-- /" tool "-help -->" {f=0}
        f' "$repo/README.md" | sed '/^```/d' > "$expected"

    if [[ ! -s "$expected" ]]; then
        echo "check_help_drift: no $tool-help block found in" \
             "README.md (pin it between <!-- $tool-help --> markers)" >&2
        fail=1
        continue
    fi

    "$bin" --help > "$actual"

    if ! diff -u "$expected" "$actual"; then
        echo >&2
        echo "check_help_drift: README.md usage block is out of date" >&2
        echo "with $tool --help; update the block between the" >&2
        echo "$tool-help markers." >&2
        fail=1
        continue
    fi
    echo "check_help_drift: README usage block matches $tool --help"
    checked=$((checked + 1))
done

if [[ "$checked" -eq 0 && "$fail" -eq 0 ]]; then
    echo "check_help_drift: no tools checked" >&2
    fail=1
fi
exit "$fail"
