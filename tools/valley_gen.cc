/**
 * @file
 * `valley_gen` — the synthetic scenario generator front-end.
 *
 * Lists the registered pattern families with their parameter schemas,
 * resolves a `synth:` spec string (round-tripping it to canonical
 * form and the stable cache hash), prints the resulting kernel/TB
 * geometry and request counts, optionally profiles the workload's
 * per-bit window entropy, and dumps everything as JSON for scripting.
 * Table II abbreviations are accepted wherever a spec is, so the tool
 * doubles as a workload inspector for the fixed suite.
 *
 * The --help text below is pinned by README.md's usage block; CI
 * fails if the two drift (`tools/check_help_drift.sh`).
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/table.hh"
#include "synth/registry.hh"
#include "workloads/profiler.hh"

using namespace valley;

namespace {

const char *kHelp =
    R"(valley_gen — synthetic scenario generator (unlimited workloads)

Builds parameterized synthetic workloads from spec strings of the form
synth:FAMILY[,key=value...] (e.g. synth:stencil3d,n=96,halo=1), prints
the resolved parameters, kernel/TB geometry and request counts, and
optionally the per-bit window-entropy profile. Spec strings run
everywhere a Table II abbreviation does: workloads::make, the harness
grid, the entropy profiler, the BIM search and valley_search.

Usage: valley_gen --list | valley_gen --spec SPEC [options]

Options:
  --list          print every family with its parameter schema and exit
  --spec S        synth spec string (canonical or not; Table II
                  abbreviations are also accepted)
  --scale S       external problem-size scale in (0, 1], multiplied
                  into the spec's own scale parameter; default 1
  --entropy       profile the workload and print the per-bit entropy
                  chart plus a channel/bank-bit summary
  --window W      TB window w for --entropy (#SMs); default 12
  --kernels N     print at most N per-kernel geometry rows; default 8
  --json FILE     dump the resolved spec, geometry, request counts and
                  (with --entropy) the per-bit profile as JSON
  --help          print this help and exit

Environment:
  VALLEY_CACHE=0       disable the on-disk profile cache
  VALLEY_CACHE_DIR=D   cache directory (default: ./cache)

Exit status: 0 on success, 1 on usage errors (unknown family or
parameter, value out of range, malformed spec).
)";

struct CliOptions
{
    std::string spec;
    std::string json;
    double scale = 1.0;
    unsigned window = 12;
    unsigned maxKernels = 8;
    bool list = false;
    bool entropy = false;
};

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "valley_gen: %s\n(try --help)\n",
                 msg.c_str());
    std::exit(1);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions o;
    const auto need = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            std::fputs(kHelp, stdout);
            std::exit(0);
        } else if (a == "--list") {
            o.list = true;
        } else if (a == "--spec") {
            o.spec = need(i, "--spec");
        } else if (a == "--scale") {
            o.scale = std::atof(need(i, "--scale").c_str());
            if (o.scale <= 0.0 || o.scale > 1.0)
                usageError("--scale must be in (0, 1]");
        } else if (a == "--entropy") {
            o.entropy = true;
        } else if (a == "--window") {
            o.window = static_cast<unsigned>(
                std::atoi(need(i, "--window").c_str()));
            if (o.window == 0)
                usageError("--window must be >= 1");
        } else if (a == "--kernels") {
            o.maxKernels = static_cast<unsigned>(
                std::atoi(need(i, "--kernels").c_str()));
        } else if (a == "--json") {
            o.json = need(i, "--json");
        } else {
            usageError("unknown option " + a);
        }
    }
    return o;
}

void
printFamilies()
{
    for (const synth::FamilyInfo &f : synth::families()) {
        std::printf("synth:%s — %s%s\n", f.name.c_str(),
                    f.summary.c_str(),
                    f.typicallyValley ? " [valley]" : "");
        TextTable t;
        t.setHeader({"param", "type", "default", "description"});
        for (const synth::ParamSpec &p : f.params) {
            std::string kind =
                p.kind == synth::ParamKind::U64   ? "int"
                : p.kind == synth::ParamKind::F64 ? "float"
                                                  : "choice";
            std::string help = p.help;
            if (!p.choices.empty()) {
                help += " (";
                for (std::size_t i = 0; i < p.choices.size(); ++i)
                    help += (i ? "|" : "") + p.choices[i];
                help += ")";
            }
            t.addRow({p.key, kind, p.def, help});
        }
        std::printf("%s\n", t.toString().c_str());
    }
}

/** Aggregate trace statistics of one workload. */
struct TraceStats
{
    std::uint64_t requests = 0;
    std::uint64_t writes = 0;
    std::uint64_t instrs = 0;
    std::uint64_t tbs = 0;
};

TraceStats
traceStats(const Workload &wl)
{
    TraceStats s;
    for (const Kernel &k : wl.kernels()) {
        s.tbs += k.numTbs();
        for (TbId tb = 0; tb < k.numTbs(); ++tb) {
            const TbTrace t = k.trace(tb);
            for (const auto &w : t.warps)
                for (const auto &i : w.instrs) {
                    ++s.instrs;
                    s.requests += i.lines.size();
                    if (i.write)
                        s.writes += i.lines.size();
                }
        }
    }
    return s;
}

bool
writeJson(const std::string &path, const CliOptions &o,
          const Workload &wl, const synth::ResolvedSpec *spec,
          const TraceStats &stats, const EntropyProfile *profile)
{
    std::ofstream out(path);
    out.precision(17);
    out << "{\n";
    out << "  \"workload\": \"" << wl.info().abbrev << "\",\n";
    if (spec) {
        out << "  \"canonical\": \"" << spec->canonical() << "\",\n";
        char hash[32];
        std::snprintf(hash, sizeof hash, "%016" PRIx64, spec->hash());
        out << "  \"spec_hash\": \"" << hash << "\",\n";
        out << "  \"params\": {";
        const auto &vals = spec->values();
        for (std::size_t i = 0; i < vals.size(); ++i)
            out << (i ? ", " : "") << '"' << vals[i].first << "\": \""
                << vals[i].second << '"';
        out << "},\n";
    }
    out << "  \"suite\": \"" << wl.info().suite << "\",\n";
    out << "  \"dims\": \"" << wl.info().dims << "\",\n";
    out << "  \"entropy_valley\": "
        << (wl.info().entropyValley ? "true" : "false") << ",\n";
    out << "  \"scale\": " << o.scale << ",\n";
    out << "  \"kernels\": " << wl.numKernels() << ",\n";
    out << "  \"thread_blocks\": " << stats.tbs << ",\n";
    out << "  \"warp_instructions\": " << stats.instrs << ",\n";
    out << "  \"requests\": " << stats.requests << ",\n";
    out << "  \"writes\": " << stats.writes;
    if (profile) {
        out << ",\n  \"entropy_window\": " << o.window << ",\n";
        out << "  \"entropy_per_bit\": [";
        for (std::size_t b = 0; b < profile->perBit.size(); ++b)
            out << (b ? ", " : "") << profile->perBit[b];
        out << "]";
    }
    out << "\n}\n";
    out.flush();
    return out.good();
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions o = parseArgs(argc, argv);
    if (o.list) {
        printFamilies();
        return 0;
    }
    if (o.spec.empty())
        usageError("--spec (or --list) is required");

    // Resolve first so spec errors carry their precise message; keep
    // the resolved form around for the canonical/hash report.
    std::unique_ptr<synth::ResolvedSpec> resolved;
    std::unique_ptr<Workload> wl;
    try {
        if (synth::isSynthSpec(o.spec))
            resolved = std::make_unique<synth::ResolvedSpec>(
                synth::resolve(o.spec));
        wl = workloads::make(o.spec, o.scale);
    } catch (const std::exception &e) {
        usageError(e.what());
    }

    const WorkloadInfo &info = wl->info();
    std::printf("workload: %s (%s, %s)\n", info.abbrev.c_str(),
                info.name.c_str(), info.suite.c_str());
    if (resolved) {
        std::printf("canonical: %s\n", resolved->canonical().c_str());
        std::printf("spec hash: %016" PRIx64 "\n", resolved->hash());
        TextTable params;
        params.setHeader({"param", "value"});
        for (const auto &[k, v] : resolved->values())
            params.addRow({k, v});
        std::printf("%s", params.toString().c_str());
    }
    std::printf("dims: %s  scale: %.3g  valley: %s\n",
                info.dims.c_str(), o.scale,
                info.entropyValley ? "yes" : "no");

    const TraceStats stats = traceStats(*wl);
    std::printf("\nkernels: %u  TBs: %" PRIu64 "  requests: %" PRIu64
                " (%.1f%% writes)\n",
                wl->numKernels(), stats.tbs, stats.requests,
                stats.requests
                    ? 100.0 * static_cast<double>(stats.writes) /
                          static_cast<double>(stats.requests)
                    : 0.0);

    TextTable t;
    t.setHeader({"kernel", "TBs", "warps/TB", "requests"});
    unsigned shown = 0;
    for (const Kernel &k : wl->kernels()) {
        if (shown++ >= o.maxKernels) {
            t.addRow({"... (" +
                          std::to_string(wl->numKernels() - shown + 1) +
                          " more)",
                      "", "", ""});
            break;
        }
        t.addRow({k.name(), std::to_string(k.numTbs()),
                  std::to_string(k.warpsPerTb()),
                  std::to_string(k.countRequests())});
    }
    std::printf("%s", t.toString().c_str());

    EntropyProfile profile;
    if (o.entropy) {
        workloads::ProfileOptions po;
        po.window = o.window;
        profile = workloads::profileWorkload(*wl, po);
        const unsigned hi = profile.numBits() - 1;
        std::printf("\n--- window entropy (w = %u)\n%s", o.window,
                    profile.chart(hi, 6).c_str());
        std::printf("mean H* channel bits (8-9): %.3f   bank bits "
                    "(10-13): %.3f   bits 14+: %.3f\n",
                    profile.meanOver({8, 9}),
                    profile.meanOver({10, 11, 12, 13}), [&] {
                        std::vector<unsigned> hi_bits;
                        for (unsigned b = 14; b < profile.numBits();
                             ++b)
                            hi_bits.push_back(b);
                        return profile.meanOver(hi_bits);
                    }());
    }

    if (!o.json.empty()) {
        if (!writeJson(o.json, o, *wl, resolved.get(), stats,
                       o.entropy ? &profile : nullptr)) {
            std::fprintf(stderr, "valley_gen: cannot write %s\n",
                         o.json.c_str());
            return 1;
        }
        std::printf("\nwrote %s\n", o.json.c_str());
    }
    return 0;
}
