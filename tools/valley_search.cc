/**
 * @file
 * `valley_search` — the long-running "mapping service" front-end of
 * the profile-driven BIM search (ROADMAP item; paper Section IV-B as
 * an online tool).
 *
 * Two modes share one pipeline:
 *
 *  - `--workload A`: per-workload search (the SBIM of Figs. 10/12) —
 *    anneal one invertible BIM against a single workload's entropy
 *    valley;
 *  - `--set a,b,c`: joint ("global") search — anneal ONE invertible
 *    BIM against every member of a workload set at once, the
 *    profile-driven counterpart of the paper's global RMP. Members
 *    mix Table II abbreviations and `synth:` specs; the set identity
 *    is order-insensitive, so repeat invocations hit the on-disk
 *    caches no matter how the list is spelled.
 *
 * Emits the result as JSON: the matrix rows, the cost breakdown
 * against the identity and greedy baselines (per member for sets),
 * and the compiled 8x256 lookup table in exactly the form the
 * simulator's `CompiledTransform` fast path consumes.
 *
 * The --help text below is pinned by README.md's usage block; CI
 * fails if the two drift (`tools/check_help_drift.sh`).
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bim/compiled_transform.hh"
#include "common/bitops.hh"
#include "common/metrics.hh"
#include "common/table.hh"
#include "common/trace_span.hh"
#include "mapping/layout_registry.hh"
#include "mapping/mapper_registry.hh"
#include "search/searched_bim.hh"
#include "synth/registry.hh"
#include "workloads/workload.hh"
#include "workloads/workload_set.hh"

using namespace valley;

namespace {

const char *kHelp =
    R"(valley_search — profile-driven BIM search (the "mapping service")

Searches for an invertible bit-matrix (BIM) address mapping that
flattens a workload's entropy valley: simulated annealing plus a
greedy baseline over the workload's bit-plane trace profile, scored
by the entropy-flatness objective (paper Section IV-B). With --set,
one BIM is annealed jointly against every member of a workload set
(the "global" searched mapping, GBIM).

Usage: valley_search --workload ABBREV [options]
       valley_search --set A,B,C [options]

Options:
  --workload A    Table II benchmark abbreviation (MT, LU, GS, NW,
                  LPS, SC, SRAD2, DWT2D, HS, SP, FWT, NN, SPMV, LM,
                  MUM, BFS) or a synth:FAMILY[,key=value...] scenario
                  spec (see valley_gen --list); required unless
                  --set or --list is given
  --set A,B,C     joint search over a workload set: comma-separated
                  members, each a Table II abbreviation or synth:
                  spec (spec key=value parameters attach to the
                  preceding synth: member). Order-insensitive.
  --combine C     joint member-cost combiner: mean (default) or
                  worst (optimize the worst-served member)
  --weights W,... per-member weights for the mean combiner, matched
                  positionally to the --set list (duplicates sum);
                  each weight must be > 0. Requires --set; ignored
                  by --combine worst. Default: uniform
  --list          print the known workloads and synth families, exit
  --list-mappers  print the registered map: mapper families with
                  their parameters, exit
  --list-layouts  print the registered layout: presets, exit
  --scale S       problem-size scale in (0, 1]; default 0.25
  --layout L      DRAM layout preset: a key or layout: spec from
                  --list-layouts (e.g. gddr5_1gb, layout:hbm2_4gb);
                  the aliases gddr5 (default) and 3d name the
                  gddr5_1gb and stacked3d_4gb presets
  --seed N        search seed (the "BIM-N" of Fig. 19); default 1
  --restarts N    annealing restarts; default 4
  --iters N       moves per restart; default 1200
  --max-evals N   hard cap on row-entropy evaluations per search run
                  (split over restarts; the greedy baseline budgets
                  its own run separately); 0 = unlimited
  --window W      TB window w (#SMs, Section III-A); default 12
  --metric M      window metric: bitprob (default) or bvrdist
  --threads N     worker threads (0 = all cores, 1 = serial);
                  default 0; results are identical at any count
  --out FILE      write the searched BIM as JSON (matrix rows, cost
                  breakdown, per-member entropy for sets, and the
                  compiled 8x256 LUT)
  --trace FILE    record Chrome trace-event spans (search phases,
                  profiling, cache lookups) and write them to FILE —
                  loadable in Perfetto / chrome://tracing
                  (VALLEY_TRACE=FILE does the same)
  --metrics FILE  write the metrics-registry snapshot (counters,
                  per-phase evals/seconds, cache hit/miss, latency
                  histograms) to FILE as stable, diffable JSON
  --help          print this help and exit

Environment:
  VALLEY_CACHE=0       disable the on-disk profile/result caches
  VALLEY_CACHE_DIR=D   cache directory (default: ./cache)
  VALLEY_TRACE=FILE    same as --trace FILE
  VALLEY_NO_SIMD=1     pin the scalar kernels (bit-identical; for
                       benchmarking and SIMD triage)

Exit status: 0 if the searched BIM strictly beats the identity
mapping's entropy-flatness objective (and, for --set, does not
regress mean target entropy across members), 2 otherwise, 1 on
usage errors.
)";

struct CliOptions
{
    std::string workload;
    std::string set;
    std::string weights;
    std::string out;
    std::string tracePath;
    std::string metricsPath;
    double scale = 0.25;
    std::string layout = "gddr5";
    bool list = false;
    bool listMappers = false;
    bool listLayouts = false;
    search::SearchOptions search;
};

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "valley_search: %s\n(try --help)\n",
                 msg.c_str());
    std::exit(1);
}

/** Resolve --layout: a registry key/spec, or a legacy alias. */
AddressLayout
resolveLayout(const std::string &l)
{
    std::string key = l;
    if (l == "gddr5")
        key = "gddr5_1gb";
    else if (l == "3d")
        key = "stacked3d_4gb";
    try {
        return mapping::makeLayout(key);
    } catch (const std::exception &e) {
        usageError(e.what()); // lists the registered presets
    }
}

/** --list-mappers: every registered family with its schema. */
void
listMappers()
{
    for (const auto *f : mapping::mapperFamilies()) {
        std::printf("map:%-6s %s%s\n", f->name.c_str(),
                    f->summary.c_str(),
                    f->needsProfiles
                        ? " [profile-driven: built by the search]"
                        : "");
        for (const auto &p : f->params)
            std::printf("    %s=%s  %s\n", p.key.c_str(),
                        p.def.empty() ? "<required>" : p.def.c_str(),
                        p.help.c_str());
    }
}

/** --list-layouts: every registered DRAM organization preset. */
void
listLayouts()
{
    for (const auto *org : mapping::layoutPresets())
        std::printf("layout:%-14s %s — %s\n", org->key.c_str(),
                    org->displayName.c_str(), org->summary.c_str());
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions o;
    const auto need = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            std::fputs(kHelp, stdout);
            std::exit(0);
        } else if (a == "--list") {
            o.list = true;
        } else if (a == "--list-mappers") {
            o.listMappers = true;
        } else if (a == "--list-layouts") {
            o.listLayouts = true;
        } else if (a == "--workload") {
            o.workload = need(i, "--workload");
        } else if (a == "--set") {
            o.set = need(i, "--set");
        } else if (a == "--weights") {
            o.weights = need(i, "--weights");
        } else if (a == "--combine") {
            const std::string c = need(i, "--combine");
            if (c == "mean")
                o.search.combiner = search::JointCombiner::Mean;
            else if (c == "worst")
                o.search.combiner = search::JointCombiner::WorstCase;
            else
                usageError("--combine must be mean or worst");
        } else if (a == "--scale") {
            o.scale = std::atof(need(i, "--scale").c_str());
            if (o.scale <= 0.0 || o.scale > 1.0)
                usageError("--scale must be in (0, 1]");
        } else if (a == "--layout") {
            o.layout = need(i, "--layout");
        } else if (a == "--seed") {
            o.search.seed = std::strtoull(
                need(i, "--seed").c_str(), nullptr, 10);
        } else if (a == "--restarts") {
            o.search.restarts = static_cast<unsigned>(
                std::atoi(need(i, "--restarts").c_str()));
        } else if (a == "--iters") {
            o.search.iterations = static_cast<unsigned>(
                std::atoi(need(i, "--iters").c_str()));
        } else if (a == "--max-evals") {
            o.search.maxEvaluations = std::strtoull(
                need(i, "--max-evals").c_str(), nullptr, 10);
        } else if (a == "--window") {
            o.search.window = static_cast<unsigned>(
                std::atoi(need(i, "--window").c_str()));
            if (o.search.window == 0)
                usageError("--window must be >= 1");
        } else if (a == "--metric") {
            const std::string m = need(i, "--metric");
            if (m == "bitprob")
                o.search.metric = EntropyMetric::BitProbability;
            else if (m == "bvrdist")
                o.search.metric = EntropyMetric::BvrDistribution;
            else
                usageError("--metric must be bitprob or bvrdist");
        } else if (a == "--threads") {
            o.search.threads = static_cast<unsigned>(
                std::atoi(need(i, "--threads").c_str()));
        } else if (a == "--out") {
            o.out = need(i, "--out");
        } else if (a == "--trace") {
            o.tracePath = need(i, "--trace");
        } else if (a == "--metrics") {
            o.metricsPath = need(i, "--metrics");
        } else {
            usageError("unknown option " + a);
        }
    }
    return o;
}

std::string
hex64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%" PRIx64, v);
    return buf;
}

/** Common JSON tail: cost breakdown, matrix rows, compiled LUT. */
void
writeJsonTail(std::ofstream &out, const search::SetSearchResult &r)
{
    const BitMatrix &m = r.annealed.bim;
    const CompiledTransform compiled(m);

    out << "  \"identity_cost\": " << r.annealed.identityCost
        << ",\n";
    out << "  \"greedy_cost\": " << r.greedyBaseline.cost << ",\n";
    out << "  \"cost\": " << r.annealed.cost << ",\n";
    out << "  \"gain\": " << r.annealed.gain() << ",\n";
    out << "  \"target_entropy\": [";
    for (std::size_t i = 0; i < r.annealed.targetEntropy.size(); ++i)
        out << (i ? ", " : "") << r.annealed.targetEntropy[i];
    out << "],\n";
    out << "  \"xor_gates\": " << m.xorGateCount() << ",\n";
    out << "  \"xor_tree_depth\": " << m.xorTreeDepth() << ",\n";
    out << "  \"evaluations\": " << r.annealed.stats.evaluations
        << ",\n";
    out << "  \"capped\": "
        << (r.annealed.stats.capped ? "true" : "false") << ",\n";

    // Matrix rows, output bit 0 first: bit c of rows[r] is M[r][c].
    out << "  \"rows\": [";
    for (unsigned row = 0; row < m.size(); ++row)
        out << (row ? ", " : "") << '"' << hex64(m.row(row)) << '"';
    out << "],\n";

    // The byte-sliced LUT: lut[s][v] is the XOR contribution of input
    // byte slice s holding value v — the exact tables
    // CompiledTransform::apply reads (8 loads + 7 XORs per address).
    out << "  \"lut\": [\n";
    const auto &tables = compiled.tables();
    for (std::size_t s = 0; s < tables.size(); ++s) {
        out << "    [";
        for (std::size_t v = 0; v < tables[s].size(); ++v)
            out << (v ? ", " : "") << '"' << hex64(tables[s][v])
                << '"';
        out << (s + 1 < tables.size() ? "],\n" : "]\n");
    }
    out << "  ]\n}\n";
    out.flush();
}

/**
 * Emit the search result as JSON; false if the file could not be
 * written. Hand-rolled: the repo's `bench::JsonEmitter` is flat
 * key/value only, and the LUT and member arrays need nesting.
 */
bool
writeJson(const std::string &path, const CliOptions &o,
          const AddressLayout &layout,
          const workloads::WorkloadSet &set,
          const search::SearchOptions &so,
          const search::SetSearchResult &r)
{
    std::ofstream out(path);
    out.precision(17);
    out << "{\n";
    if (set.size() == 1) {
        out << "  \"workload\": \"" << set.members()[0] << "\",\n";
    } else {
        out << "  \"members\": [";
        for (std::size_t m = 0; m < set.size(); ++m)
            out << (m ? ", " : "") << '"' << set.members()[m] << '"';
        out << "],\n";
        out << "  \"set_id\": \"" << set.shortId() << "\",\n";
        out << "  \"combine\": \""
            << search::combinerName(so.combiner) << "\",\n";
        if (!so.memberWeights.empty()) {
            // Canonical members() order, like member_costs.
            out << "  \"member_weights\": [";
            for (std::size_t m = 0; m < so.memberWeights.size(); ++m)
                out << (m ? ", " : "") << so.memberWeights[m];
            out << "],\n";
        }
    }
    out << "  \"layout\": \"" << mapping::layoutIdentity(layout)
        << "\",\n";
    out << "  \"scale\": " << o.scale << ",\n";
    out << "  \"seed\": " << so.seed << ",\n";
    out << "  \"window\": " << so.window << ",\n";
    out << "  \"metric\": \""
        << (so.metric == EntropyMetric::BitProbability ? "bitprob"
                                                       : "bvrdist")
        << "\",\n";
    out << "  \"address_bits\": " << r.annealed.bim.size() << ",\n";

    out << "  \"targets\": [";
    for (std::size_t i = 0; i < so.targets.size(); ++i)
        out << (i ? ", " : "") << so.targets[i];
    out << "],\n";

    if (set.size() > 1) {
        out << "  \"member_costs\": [";
        for (std::size_t m = 0; m < r.annealed.memberCosts.size(); ++m)
            out << (m ? ", " : "") << r.annealed.memberCosts[m];
        out << "],\n";
        out << "  \"member_target_entropy\": [\n";
        for (std::size_t m = 0;
             m < r.annealed.memberTargetEntropy.size(); ++m) {
            out << "    [";
            const auto &ent = r.annealed.memberTargetEntropy[m];
            for (std::size_t i = 0; i < ent.size(); ++i)
                out << (i ? ", " : "") << ent[i];
            out << (m + 1 < r.annealed.memberTargetEntropy.size()
                        ? "],\n"
                        : "]\n");
        }
        out << "  ],\n";
    }

    writeJsonTail(out, r);
    return out.good();
}

void
printSearchStats(const search::SearchResult &r)
{
    std::printf("search: %" PRIu64 " row evaluations%s, %" PRIu64
                " accepted moves, %" PRIu64
                " singular rejections, best restart %u\n",
                r.stats.evaluations,
                r.stats.capped ? " (budget-capped)" : "",
                r.stats.accepted, r.stats.rejectedSingular,
                r.bestRestart);
    std::printf("phases: setup %.3fs, anneal %.3fs, polish %.3fs "
                "(chain-seconds; wall %.3fs)\n",
                r.stats.setupSeconds, r.stats.annealSeconds,
                r.stats.polishSeconds, r.stats.totalSeconds);
    std::printf("phase evals: setup %" PRIu64 ", anneal %" PRIu64
                ", polish %" PRIu64 "\n",
                r.stats.setupEvaluations, r.stats.annealEvaluations,
                r.stats.polishEvaluations);
    const double secs = r.stats.totalSeconds;
    std::printf("throughput: %.0f evals/s (simd %s); plane cache: %"
                PRIu64 " toggles, %" PRIu64 " xors, %" PRIu64
                " rebuilds\n",
                secs > 0.0
                    ? static_cast<double>(r.stats.evaluations) / secs
                    : 0.0,
                bits::simdOps().name, r.stats.planeToggles,
                r.stats.planeXors, r.stats.planeRebuilds);
}

/** Mean of `p.meanOver(targets)` across member profiles. */
double
meanTargetEntropy(const std::vector<EntropyProfile> &profiles,
                  const std::vector<unsigned> &targets)
{
    double sum = 0.0;
    for (const EntropyProfile &p : profiles)
        sum += p.meanOver(targets);
    return profiles.empty() ? 0.0
                            : sum / static_cast<double>(profiles.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions o = parseArgs(argc, argv);
    if (o.list) {
        for (const std::string &w : workloads::allSet())
            std::printf("%s\n", w.c_str());
        for (const auto &f : synth::families())
            std::printf("synth:%s\n", f.name.c_str());
        return 0;
    }
    if (o.listMappers || o.listLayouts) {
        if (o.listMappers)
            listMappers();
        if (o.listLayouts)
            listLayouts();
        return 0;
    }
    if (o.workload.empty() && o.set.empty())
        usageError("--workload or --set is required");
    if (!o.workload.empty() && !o.set.empty())
        usageError("--workload and --set are mutually exclusive");
    if (!o.weights.empty() && o.set.empty())
        usageError("--weights requires --set");

    std::unique_ptr<workloads::WorkloadSet> set;
    std::vector<double> weights;
    try {
        set = std::make_unique<workloads::WorkloadSet>(
            o.set.empty()
                ? workloads::WorkloadSet({o.workload})
                : workloads::WorkloadSet::parse(o.set));
        if (!o.weights.empty()) {
            // One weight per raw --set member, in --set order; the
            // set canonicalizes (sorts, dedups) its members, so the
            // weights are remapped onto that canonical order here.
            std::vector<double> raw_weights;
            std::size_t start = 0;
            while (start <= o.weights.size()) {
                const std::size_t comma = o.weights.find(',', start);
                const std::size_t end = comma == std::string::npos
                                            ? o.weights.size()
                                            : comma;
                const std::string f =
                    o.weights.substr(start, end - start);
                std::size_t used = 0;
                const double w = f.empty() ? 0.0 : std::stod(f, &used);
                if (f.empty() || used != f.size())
                    throw std::invalid_argument(
                        "--weights: \"" + f + "\" is not a number");
                raw_weights.push_back(w);
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
            weights = workloads::canonicalMemberWeights(
                workloads::WorkloadSet::splitList(o.set), raw_weights);
        }
    } catch (const std::exception &e) {
        usageError(e.what());
    }
    const AddressLayout layout = resolveLayout(o.layout);
    if (!o.tracePath.empty())
        trace::enable(o.tracePath);

    search::SearchOptions so = o.search;
    so.targets = layout.randomizeTargets();
    so.candidateMask = layout.pageMask();
    so.memberWeights = weights;

    const bool joint = set->size() > 1;
    const std::string label =
        joint ? set->shortId() + " {" + set->key() + "}"
              : set->members()[0];
    std::printf("valley_search: %s (%s, scale %.3g, seed %" PRIu64
                ", %u restarts x %u iters%s)\n\n",
                label.c_str(),
                mapping::layoutIdentity(layout).c_str(), o.scale,
                so.seed, so.restarts, so.iterations,
                joint ? (std::string(", combine ") +
                         search::combinerName(so.combiner))
                            .c_str()
                      : "");

    const search::SetSearchResult r =
        search::searchSet(*set, layout, so, o.scale);

    const std::vector<unsigned> targets = so.targets;
    const std::string searched_name = joint ? "GBIM" : "SBIM";

    if (!joint) {
        const unsigned hi = layout.addrBits - 1;
        std::printf("--- BASE (identity) entropy\n%s\n",
                    r.identityProfiles[0].chart(hi, 6).c_str());
        std::printf("--- SBIM (searched) entropy\n%s\n",
                    r.searchedProfiles[0].chart(hi, 6).c_str());
    }

    // Per-member breakdown: what the one searched matrix does to each
    // member's target bits, next to that member's identity baseline.
    TextTable members;
    members.setHeader({"member", "H* targets BASE",
                       "H* targets " + searched_name, "min H*",
                       "member cost"});
    for (std::size_t m = 0; m < set->size(); ++m) {
        members.addRow(
            {set->members()[m],
             TextTable::num(r.identityProfiles[m].meanOver(targets), 3),
             TextTable::num(r.searchedProfiles[m].meanOver(targets), 3),
             TextTable::num(r.searchedProfiles[m].minOver(targets), 3),
             m < r.annealed.memberCosts.size()
                 ? TextTable::num(r.annealed.memberCosts[m], 4)
                 : "-"});
    }
    std::printf("%s\n", members.toString().c_str());

    TextTable t;
    t.setHeader({"mapping", "objective", "mean H* targets",
                 "min H* targets", "XOR gates", "depth"});
    const double id_mean = meanTargetEntropy(r.identityProfiles,
                                             targets);
    const double searched_mean =
        meanTargetEntropy(r.searchedProfiles, targets);
    const auto minOverMembers =
        [&](const std::vector<EntropyProfile> &profiles) {
            double mn = 1.0;
            for (const EntropyProfile &p : profiles)
                mn = std::min(mn, p.minOver(targets));
            return mn;
        };
    t.addRow({"BASE", TextTable::num(r.annealed.identityCost, 4),
              TextTable::num(id_mean, 3),
              TextTable::num(minOverMembers(r.identityProfiles), 3),
              "0", "0"});
    t.addRow({"greedy", TextTable::num(r.greedyBaseline.cost, 4), "-",
              "-",
              std::to_string(r.greedyBaseline.bim.xorGateCount()),
              std::to_string(r.greedyBaseline.bim.xorTreeDepth())});
    t.addRow({searched_name, TextTable::num(r.annealed.cost, 4),
              TextTable::num(searched_mean, 3),
              TextTable::num(minOverMembers(r.searchedProfiles), 3),
              std::to_string(r.annealed.bim.xorGateCount()),
              std::to_string(r.annealed.bim.xorTreeDepth())});
    std::printf("%s\n", t.toString().c_str());

    printSearchStats(r.annealed);

    if (trace::enabled() && !trace::flush())
        std::fprintf(stderr,
                     "valley_search: warning: failed to write trace\n");
    if (!o.metricsPath.empty() &&
        !metrics::writeSnapshotFile(o.metricsPath))
        std::fprintf(stderr,
                     "valley_search: warning: failed to write %s\n",
                     o.metricsPath.c_str());

    if (!o.out.empty()) {
        if (!writeJson(o.out, o, layout, *set, so, r)) {
            std::fprintf(stderr, "valley_search: cannot write %s\n",
                         o.out.c_str());
            return 1;
        }
        std::printf("wrote %s\n", o.out.c_str());
    }

    // The documented --set contract keys on the flag, not the set
    // size: `--set MT` (or a list that dedups to one member) still
    // must not regress identity mean target entropy to exit 0. The
    // 1e-4 tolerance absorbs measurement granularity on
    // already-flat sets (same epsilon as bench/joint_smoke).
    const bool objective_improved =
        r.annealed.cost < r.annealed.identityCost;
    const bool mean_ok =
        o.set.empty() || searched_mean > id_mean - 1e-4;
    if (objective_improved && mean_ok) {
        std::printf("objective improved: %.4f -> %.4f (gain %.4f"
                    "%s)\n",
                    r.annealed.identityCost, r.annealed.cost,
                    r.annealed.gain(),
                    joint ? (", mean H* " + TextTable::num(id_mean, 3)
                             + " -> " + TextTable::num(searched_mean,
                                                       3))
                                .c_str()
                          : "");
        return 0;
    }
    if (!objective_improved)
        std::printf("objective NOT improved over identity\n");
    else
        std::printf("objective improved but mean target entropy "
                    "regressed: %.4f -> %.4f\n",
                    id_mean, searched_mean);
    return 2;
}
