/**
 * @file
 * `valley_search` — the long-running "mapping service" front-end of
 * the profile-driven BIM search (ROADMAP item; paper Section IV-B as
 * an online tool).
 *
 * Reads a workload trace (regenerated from its Table II abbreviation)
 * or, on repeat invocations, the on-disk profile cache; searches for
 * an invertible BIM that flattens the workload's entropy valley; and
 * emits the result as JSON: the matrix rows, the cost breakdown
 * against the identity and greedy baselines, and the compiled 8x256
 * lookup table in exactly the form the simulator's
 * `CompiledTransform` fast path consumes.
 *
 * The --help text below is pinned by README.md's usage block; CI
 * fails if the two drift (`tools/check_help_drift.sh`).
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bim/compiled_transform.hh"
#include "common/table.hh"
#include "search/searched_bim.hh"
#include "synth/registry.hh"
#include "workloads/workload.hh"

using namespace valley;

namespace {

const char *kHelp =
    R"(valley_search — profile-driven BIM search (the "mapping service")

Searches for an invertible bit-matrix (BIM) address mapping that
flattens a workload's entropy valley: simulated annealing plus a
greedy baseline over the workload's bit-plane trace profile, scored
by the entropy-flatness objective (paper Section IV-B).

Usage: valley_search --workload ABBREV [options]

Options:
  --workload A    Table II benchmark abbreviation (MT, LU, GS, NW,
                  LPS, SC, SRAD2, DWT2D, HS, SP, FWT, NN, SPMV, LM,
                  MUM, BFS) or a synth:FAMILY[,key=value...] scenario
                  spec (see valley_gen --list); required unless
                  --list is given
  --list          print the known workloads and synth families, exit
  --scale S       problem-size scale in (0, 1]; default 0.25
  --layout L      DRAM layout: gddr5 (default) or 3d
  --seed N        search seed (the "BIM-N" of Fig. 19); default 1
  --restarts N    annealing restarts; default 4
  --iters N       moves per restart; default 1200
  --window W      TB window w (#SMs, Section III-A); default 12
  --metric M      window metric: bitprob (default) or bvrdist
  --threads N     worker threads (0 = all cores, 1 = serial);
                  default 0; results are identical at any count
  --out FILE      write the searched BIM as JSON (matrix rows, cost
                  breakdown, and the compiled 8x256 LUT)
  --help          print this help and exit

Environment:
  VALLEY_CACHE=0       disable the on-disk profile/result caches
  VALLEY_CACHE_DIR=D   cache directory (default: ./cache)

Exit status: 0 if the searched BIM strictly beats the identity
mapping's entropy-flatness objective, 2 otherwise, 1 on usage errors.
)";

struct CliOptions
{
    std::string workload;
    std::string out;
    double scale = 0.25;
    bool use3d = false;
    bool list = false;
    search::SearchOptions search;
};

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "valley_search: %s\n(try --help)\n",
                 msg.c_str());
    std::exit(1);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions o;
    const auto need = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            std::fputs(kHelp, stdout);
            std::exit(0);
        } else if (a == "--list") {
            o.list = true;
        } else if (a == "--workload") {
            o.workload = need(i, "--workload");
        } else if (a == "--scale") {
            o.scale = std::atof(need(i, "--scale").c_str());
            if (o.scale <= 0.0 || o.scale > 1.0)
                usageError("--scale must be in (0, 1]");
        } else if (a == "--layout") {
            const std::string l = need(i, "--layout");
            if (l == "gddr5")
                o.use3d = false;
            else if (l == "3d")
                o.use3d = true;
            else
                usageError("--layout must be gddr5 or 3d");
        } else if (a == "--seed") {
            o.search.seed = std::strtoull(
                need(i, "--seed").c_str(), nullptr, 10);
        } else if (a == "--restarts") {
            o.search.restarts = static_cast<unsigned>(
                std::atoi(need(i, "--restarts").c_str()));
        } else if (a == "--iters") {
            o.search.iterations = static_cast<unsigned>(
                std::atoi(need(i, "--iters").c_str()));
        } else if (a == "--window") {
            o.search.window = static_cast<unsigned>(
                std::atoi(need(i, "--window").c_str()));
            if (o.search.window == 0)
                usageError("--window must be >= 1");
        } else if (a == "--metric") {
            const std::string m = need(i, "--metric");
            if (m == "bitprob")
                o.search.metric = EntropyMetric::BitProbability;
            else if (m == "bvrdist")
                o.search.metric = EntropyMetric::BvrDistribution;
            else
                usageError("--metric must be bitprob or bvrdist");
        } else if (a == "--threads") {
            o.search.threads = static_cast<unsigned>(
                std::atoi(need(i, "--threads").c_str()));
        } else if (a == "--out") {
            o.out = need(i, "--out");
        } else {
            usageError("unknown option " + a);
        }
    }
    return o;
}

std::string
hex64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%" PRIx64, v);
    return buf;
}

/**
 * Emit the search result as JSON; false if the file could not be
 * written. Hand-rolled: the repo's `bench::JsonEmitter` is flat
 * key/value only, and the LUT needs nested arrays.
 */
bool
writeJson(const std::string &path, const CliOptions &o,
          const search::SearchOptions &so,
          const search::WorkloadSearchResult &r)
{
    const BitMatrix &m = r.annealed.bim;
    const CompiledTransform compiled(m);

    std::ofstream out(path);
    out.precision(17);
    out << "{\n";
    out << "  \"workload\": \"" << o.workload << "\",\n";
    out << "  \"layout\": \"" << (o.use3d ? "3d" : "gddr5")
        << "\",\n";
    out << "  \"scale\": " << o.scale << ",\n";
    out << "  \"seed\": " << o.search.seed << ",\n";
    out << "  \"window\": " << o.search.window << ",\n";
    out << "  \"metric\": \""
        << (o.search.metric == EntropyMetric::BitProbability
                ? "bitprob"
                : "bvrdist")
        << "\",\n";
    out << "  \"address_bits\": " << m.size() << ",\n";

    out << "  \"targets\": [";
    for (std::size_t i = 0; i < so.targets.size(); ++i)
        out << (i ? ", " : "") << so.targets[i];
    out << "],\n";

    out << "  \"identity_cost\": " << r.annealed.identityCost
        << ",\n";
    out << "  \"greedy_cost\": " << r.greedyBaseline.cost << ",\n";
    out << "  \"cost\": " << r.annealed.cost << ",\n";
    out << "  \"gain\": " << r.annealed.gain() << ",\n";
    out << "  \"target_entropy\": [";
    for (std::size_t i = 0; i < r.annealed.targetEntropy.size(); ++i)
        out << (i ? ", " : "") << r.annealed.targetEntropy[i];
    out << "],\n";
    out << "  \"xor_gates\": " << m.xorGateCount() << ",\n";
    out << "  \"xor_tree_depth\": " << m.xorTreeDepth() << ",\n";
    out << "  \"evaluations\": " << r.annealed.stats.evaluations
        << ",\n";

    // Matrix rows, output bit 0 first: bit c of rows[r] is M[r][c].
    out << "  \"rows\": [";
    for (unsigned row = 0; row < m.size(); ++row)
        out << (row ? ", " : "") << '"' << hex64(m.row(row)) << '"';
    out << "],\n";

    // The byte-sliced LUT: lut[s][v] is the XOR contribution of input
    // byte slice s holding value v — the exact tables
    // CompiledTransform::apply reads (8 loads + 7 XORs per address).
    out << "  \"lut\": [\n";
    const auto &tables = compiled.tables();
    for (std::size_t s = 0; s < tables.size(); ++s) {
        out << "    [";
        for (std::size_t v = 0; v < tables[s].size(); ++v)
            out << (v ? ", " : "") << '"' << hex64(tables[s][v])
                << '"';
        out << (s + 1 < tables.size() ? "],\n" : "]\n");
    }
    out << "  ]\n}\n";
    out.flush();
    return out.good();
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions o = parseArgs(argc, argv);
    if (o.list) {
        for (const std::string &w : workloads::allSet())
            std::printf("%s\n", w.c_str());
        for (const auto &f : synth::families())
            std::printf("synth:%s\n", f.name.c_str());
        return 0;
    }
    if (o.workload.empty())
        usageError("--workload is required");

    std::unique_ptr<Workload> wl;
    try {
        wl = workloads::make(o.workload, o.scale);
    } catch (const std::exception &e) {
        usageError(e.what());
    }
    const AddressLayout layout = o.use3d
                                     ? AddressLayout::stacked3d()
                                     : AddressLayout::hynixGddr5();

    search::SearchOptions so = o.search;
    so.targets = layout.randomizeTargets();
    so.candidateMask = layout.pageMask();

    std::printf("valley_search: %s (%s, scale %.3g, seed %" PRIu64
                ", %u restarts x %u iters)\n\n",
                o.workload.c_str(), o.use3d ? "3d" : "gddr5", o.scale,
                so.seed, so.restarts, so.iterations);

    const search::WorkloadSearchResult r =
        search::searchWorkload(*wl, layout, so, o.scale);

    const unsigned hi = layout.addrBits - 1;
    std::printf("--- BASE (identity) entropy\n%s\n",
                r.identityProfile.chart(hi, 6).c_str());
    std::printf("--- SBIM (searched) entropy\n%s\n",
                r.searchedProfile.chart(hi, 6).c_str());

    TextTable t;
    t.setHeader({"mapping", "objective", "mean H* targets",
                 "min H* targets", "XOR gates", "depth"});
    const std::vector<unsigned> targets = so.targets;
    const auto addRow = [&](const char *name, double cost,
                            const EntropyProfile &p,
                            const BitMatrix *m) {
        t.addRow({name, TextTable::num(cost, 4),
                  TextTable::num(p.meanOver(targets), 3),
                  TextTable::num(p.minOver(targets), 3),
                  m ? std::to_string(m->xorGateCount()) : "0",
                  m ? std::to_string(m->xorTreeDepth()) : "0"});
    };
    addRow("BASE", r.annealed.identityCost, r.identityProfile,
           nullptr);
    t.addRow({"greedy", TextTable::num(r.greedyBaseline.cost, 4), "-",
              "-",
              std::to_string(r.greedyBaseline.bim.xorGateCount()),
              std::to_string(r.greedyBaseline.bim.xorTreeDepth())});
    addRow("SBIM", r.annealed.cost, r.searchedProfile,
           &r.annealed.bim);
    std::printf("%s\n", t.toString().c_str());

    std::printf("search: %" PRIu64 " row evaluations, %" PRIu64
                " accepted moves, %" PRIu64
                " singular rejections, best restart %u\n",
                r.annealed.stats.evaluations,
                r.annealed.stats.accepted,
                r.annealed.stats.rejectedSingular,
                r.annealed.bestRestart);

    if (!o.out.empty()) {
        if (!writeJson(o.out, o, so, r)) {
            std::fprintf(stderr, "valley_search: cannot write %s\n",
                         o.out.c_str());
            return 1;
        }
        std::printf("wrote %s\n", o.out.c_str());
    }

    if (r.annealed.cost < r.annealed.identityCost) {
        std::printf("objective improved: %.4f -> %.4f (gain %.4f)\n",
                    r.annealed.identityCost, r.annealed.cost,
                    r.annealed.gain());
        return 0;
    }
    std::printf("objective NOT improved over identity\n");
    return 2;
}
