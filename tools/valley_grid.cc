/**
 * @file
 * `valley_grid` — self-healing grid runner: the unattended-execution
 * front-end of `harness::runGrid` (checkpoints, retries, poisoning,
 * deadlines) plus the `--supervise` crash-restart wrapper.
 *
 * The plain mode runs one workloads x schemes grid with every
 * robustness knob exposed as a flag; `--supervise` re-execs the same
 * invocation as a child process under `harness::supervise`, so a
 * crashed grid (SIGKILL, `_Exit`, OOM) restarts itself and resumes
 * from the checkpoint journal — the CI drill "inject a kill at cell
 * k, supervise, diff against the fault-free grid" runs through this
 * binary.
 *
 * The --help text below is pinned by README.md's usage block; CI
 * fails if the two drift (`tools/check_help_drift.sh`).
 */

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "common/cancellation.hh"
#include "common/metrics.hh"
#include "common/trace_span.hh"
#include "harness/experiment.hh"
#include "harness/grid_journal.hh"
#include "harness/result_cache.hh"
#include "harness/supervisor.hh"
#include "mapping/address_mapper.hh"
#include "mapping/layout_registry.hh"
#include "mapping/mapper_registry.hh"

using namespace valley;

namespace {

const char *kHelp =
    R"(valley_grid — self-healing workloads x schemes grid runner

Runs one harness grid (every workload under every mapping scheme)
with the robustness stack exposed: per-cell checkpoint/resume, bounded
retries with deterministic backoff, poisoned-cell quarantine, a
wall-clock deadline that degrades instead of overrunning, and an
optional crash-restart supervisor that re-execs the grid after a
SIGKILL-grade loss and resumes from the journal.

Usage: valley_grid --workloads A,B,C [options]

Options:
  --workloads A,B   comma-separated workloads: Table II abbreviations
                    (MT, LU, GS, NW, LPS, SC, SRAD2, DWT2D, HS, SP,
                    FWT, NN, SPMV, LM, MUM, BFS) and/or
                    synth:FAMILY[,key=value...] specs; required
  --schemes S,S     comma-separated mappings: legacy scheme names
                    (BASE, PM, RMP, PAE, FAE, ALL, SBIM, GBIM) and/or
                    map:FAMILY[,key=value...] registry specs (see
                    valley_search --list-mappers; spec key=value
                    parameters attach to the preceding map: entry);
                    default all six paper schemes
  --layouts L,L     comma-separated DRAM layout presets, each a key
                    or layout: spec (see valley_search
                    --list-layouts); the grid runs once per layout;
                    default: the gddr5_1gb baseline
  --scale S         problem-size scale in (0, 1]; default 0.25
  --seed N          BIM seed (the "BIM-N" of Fig. 19); default 1
  --threads N       worker threads (0 = all cores, 1 = serial);
                    default 0; results are identical at any count
  --checkpoint      journal every finished cell and resume a rerun
                    of the same grid bit-identically
                    (VALLEY_CHECKPOINT=1 does the same)
  --max-attempts N  simulation attempts per cell before giving up on
                    it; default 1
  --retry-backoff-ms N  base of the exponential backoff between
                    attempts (N, 2N, 4N... ms); default 0
  --poison          quarantine a cell that fails every attempt
                    (journaled; skipped on resume) and keep going
                    instead of aborting the grid
  --deadline-ms N   wall-clock budget for the whole grid; on expiry
                    unstarted cells are skipped and reported as
                    deadline-missed (VALLEY_DEADLINE_MS does the
                    same); default 0 = unlimited
  --report          write the ranked cache/grid_report_<id>.json
                    outcome artifact (includes a metrics snapshot)
  --cache           memoize finished cells in the on-disk result
                    cache and reuse matching cells from prior runs
                    (VALLEY_CACHE=0 still disables all caches)
  --trace FILE      record Chrome trace-event spans (grid cells,
                    search phases, cache lookups) and write them to
                    FILE — loadable in Perfetto / chrome://tracing
                    (VALLEY_TRACE=FILE does the same)
  --metrics FILE    write the metrics-registry snapshot (counters,
                    gauges, latency histograms) to FILE as stable,
                    diffable JSON
  --out FILE        write per-cell results (workload|scheme|payload
                    lines, grid order; with --layouts a leading
                    layout| field is prepended) — byte-identical
                    across runs that computed the same cells
  --progress        log per-cell progress to stderr
  --supervise       run the grid as a supervised child process:
                    crashes (signals, _Exit) restart it with resume
                    from the journal; implies --checkpoint
  --max-restarts N  supervised crash restarts before giving up;
                    default 16
  --restart-backoff-ms N  base supervisor restart backoff (doubling,
                    capped at 5s); default 100; 0 disables
  --help            print this help and exit

Environment:
  VALLEY_CACHE=0        disable the on-disk result/profile caches
  VALLEY_CACHE_DIR=D    cache directory (default: ./cache)
  VALLEY_CHECKPOINT=1   same as --checkpoint
  VALLEY_DEADLINE_MS=N  same as --deadline-ms N
  VALLEY_TRACE=FILE     same as --trace FILE
  VALLEY_FAULT_INJECT=site:N[:throw|:kill][:every=K]
                        deterministic fault injection (CI drills)

Exit status: 0 grid complete; 4 complete but degraded (poisoned or
deadline-missed cells — see the grid report); 3 grid failed with an
error; 5 supervisor restart budget exhausted; 130 interrupted
(SIGINT/SIGTERM; journal flushed); 1 on usage errors.
)";

struct CliOptions
{
    harness::GridOptions grid;
    std::string out;
    std::string tracePath;
    std::string metricsPath;
    bool supervise = false;
    unsigned maxRestarts = 16;
    unsigned restartBackoffMs = 100;
};

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "valley_grid: %s\n(see valley_grid --help)\n",
                 msg.c_str());
    std::exit(1);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const auto sep = s.find(',', start);
        const std::string item =
            s.substr(start, sep == std::string::npos
                                ? std::string::npos
                                : sep - start);
        if (!item.empty())
            out.push_back(item);
        if (sep == std::string::npos)
            break;
        start = sep + 1;
    }
    return out;
}

/**
 * One --schemes token to a canonical mapper spec: a `map:` spec is
 * schema-validated as-is, anything else must be a legacy scheme name.
 */
std::string
parseMapper(const std::string &name)
{
    try {
        if (mapping::isMapperSpec(name))
            return mapping::canonicalMapperSpec(name);
    } catch (const std::exception &e) {
        usageError(e.what()); // lists the registered families
    }
    static const Scheme all[] = {Scheme::BASE, Scheme::PM,
                                 Scheme::RMP,  Scheme::PAE,
                                 Scheme::FAE,  Scheme::ALL,
                                 Scheme::SBIM, Scheme::GBIM};
    for (Scheme s : all)
        if (schemeName(s) == name)
            return mapping::schemeSpec(s);
    usageError("unknown scheme: " + name);
}

/** Display label of a canonical spec (the --out scheme column). */
std::string
mapperLabel(const std::string &spec)
{
    const mapping::ResolvedMapperSpec r =
        mapping::resolveMapperSpec(spec);
    return r.family().displayName(r);
}

/** Our own executable, for the supervised re-exec. */
std::string
selfExe(const char *argv0)
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

// SIGINT/SIGTERM: one async-signal-safe atomic store each. The grid
// stops at the next cell boundary; every finished cell is already on
// disk (the journal appends as it goes), so "flush and exit cleanly"
// is simply "stop starting cells and return".
CancelToken g_token;                       // constructed before main
volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void
onSignal(int)
{
    g_interrupted = 1;
    g_token.cancel();
}

int
runChild(CliOptions cli)
{
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    cli.grid.cancel = &g_token;
    if (!cli.tracePath.empty())
        trace::enable(cli.tracePath);

    const bool multi_layout = !cli.grid.layouts.empty();
    const std::vector<harness::LayoutGrid> grids = [&] {
        try {
            return harness::runGrids(cli.grid);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "valley_grid: grid failed: %s\n",
                         e.what());
            std::exit(3);
        }
    }();

    if (!cli.out.empty()) {
        // Grid order is fixed by the options, so two runs that
        // computed the same cells emit byte-identical files — the
        // comparison artifact of the CI supervisor drill. Without
        // --layouts the format is the legacy 3-field one.
        std::ofstream out(cli.out);
        if (!out)
            usageError("cannot write --out file: " + cli.out);
        for (const harness::LayoutGrid &lg : grids) {
            const auto &opts = lg.grid.options();
            for (const auto &w : opts.workloads)
                for (const auto &m : opts.mappers) {
                    if (multi_layout)
                        out << lg.layout << '|';
                    out << w << '|' << mapperLabel(m) << '|'
                        << harness::serializeResult(lg.grid.at(w, m))
                        << '\n';
                }
        }
    }

    bool degraded = false;
    for (const harness::LayoutGrid &lg : grids) {
        const harness::GridReport &report = lg.grid.report();
        std::printf("grid %s: %zu cells — %zu ok, %zu resumed, %zu "
                    "retried, %zu poisoned, %zu deadline-missed\n",
                    report.gridId.c_str(), report.cells.size(),
                    report.ok, report.resumed, report.retried,
                    report.poisoned, report.deadlineMissed);
        degraded = degraded || report.degraded();
    }
    // Observability artifacts are written on every exit path —
    // including the interrupted one, where a partial trace is the
    // most useful kind.
    if (trace::enabled() && !trace::flush())
        std::fprintf(stderr,
                     "valley_grid: warning: failed to write trace\n");
    if (!cli.metricsPath.empty() &&
        !metrics::writeSnapshotFile(cli.metricsPath))
        std::fprintf(stderr,
                     "valley_grid: warning: failed to write %s\n",
                     cli.metricsPath.c_str());
    if (g_interrupted)
        return 130;
    return degraded ? 4 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.grid.schemes = allSchemes();
    cli.grid.scale = 0.25;

    // Args forwarded to the supervised child: everything except the
    // supervisor's own flags (the child must not supervise again).
    std::vector<std::string> child_args;

    const auto need = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " needs a value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const int arg_index = i;
        bool forward = true;
        if (arg == "--help") {
            std::fputs(kHelp, stdout);
            return 0;
        } else if (arg == "--workloads") {
            cli.grid.workloads = splitList(need(i, "--workloads"));
        } else if (arg == "--schemes") {
            cli.grid.schemes.clear();
            cli.grid.mappers.clear();
            // A key=value token attaches to the preceding map: spec
            // (same list grammar as valley_search --set for synth:
            // members) — the spec's own commas were just split.
            std::vector<std::string> merged;
            for (const std::string &s :
                 splitList(need(i, "--schemes"))) {
                if (!merged.empty() &&
                    mapping::isMapperSpec(merged.back()) &&
                    !mapping::isMapperSpec(s) &&
                    s.find('=') != std::string::npos)
                    merged.back() += "," + s;
                else
                    merged.push_back(s);
            }
            for (const std::string &s : merged)
                cli.grid.mappers.push_back(parseMapper(s));
        } else if (arg == "--layouts") {
            cli.grid.layouts.clear();
            for (const std::string &l :
                 splitList(need(i, "--layouts"))) {
                try {
                    cli.grid.layouts.push_back(
                        mapping::canonicalLayoutSpec(l));
                } catch (const std::exception &e) {
                    usageError(e.what()); // lists registered presets
                }
            }
        } else if (arg == "--scale") {
            cli.grid.scale = std::atof(need(i, "--scale"));
        } else if (arg == "--seed") {
            cli.grid.bimSeed = std::strtoull(need(i, "--seed"),
                                             nullptr, 10);
        } else if (arg == "--threads") {
            cli.grid.threads = static_cast<unsigned>(
                std::strtoul(need(i, "--threads"), nullptr, 10));
        } else if (arg == "--checkpoint") {
            cli.grid.checkpoint = true;
        } else if (arg == "--max-attempts") {
            cli.grid.maxAttempts = static_cast<unsigned>(
                std::strtoul(need(i, "--max-attempts"), nullptr, 10));
        } else if (arg == "--retry-backoff-ms") {
            cli.grid.retryBackoffMs = static_cast<unsigned>(
                std::strtoul(need(i, "--retry-backoff-ms"), nullptr,
                             10));
        } else if (arg == "--poison") {
            cli.grid.poison = true;
        } else if (arg == "--deadline-ms") {
            cli.grid.deadlineMs = std::strtoull(
                need(i, "--deadline-ms"), nullptr, 10);
        } else if (arg == "--report") {
            cli.grid.report = true;
        } else if (arg == "--cache") {
            cli.grid.useCache = true;
        } else if (arg == "--trace") {
            cli.tracePath = need(i, "--trace");
        } else if (arg == "--metrics") {
            cli.metricsPath = need(i, "--metrics");
        } else if (arg == "--out") {
            cli.out = need(i, "--out");
        } else if (arg == "--progress") {
            cli.grid.progress = true;
        } else if (arg == "--supervise") {
            cli.supervise = true;
            forward = false;
        } else if (arg == "--max-restarts") {
            cli.maxRestarts = static_cast<unsigned>(
                std::strtoul(need(i, "--max-restarts"), nullptr, 10));
            forward = false;
        } else if (arg == "--restart-backoff-ms") {
            cli.restartBackoffMs = static_cast<unsigned>(
                std::strtoul(need(i, "--restart-backoff-ms"), nullptr,
                             10));
            forward = false;
        } else {
            usageError("unknown option: " + arg);
        }
        if (forward)
            for (int j = arg_index; j <= i; ++j)
                child_args.push_back(argv[j]);
    }

    if (cli.grid.workloads.empty())
        usageError("--workloads is required");
    if (cli.grid.schemes.empty() && cli.grid.mappers.empty())
        usageError("--schemes must name at least one scheme");
    if (!(cli.grid.scale > 0.0) || cli.grid.scale > 1.0)
        usageError("--scale must be in (0, 1]");

    if (!cli.supervise)
        return runChild(std::move(cli));

    // Supervised mode: re-exec ourselves as the grid child, with the
    // supervisor flags stripped and --checkpoint forced — resume from
    // the journal is what makes the restart loop converge.
    std::vector<std::string> child_argv;
    child_argv.push_back(selfExe(argv[0]));
    child_argv.insert(child_argv.end(), child_args.begin(),
                      child_args.end());
    if (!cli.grid.checkpoint)
        child_argv.push_back("--checkpoint");

    harness::SupervisorOptions sup;
    sup.maxRestarts = cli.maxRestarts;
    sup.backoffMs = cli.restartBackoffMs;
    const harness::SuperviseOutcome outcome =
        harness::supervise(child_argv, sup);
    if (outcome.exhausted) {
        std::fprintf(stderr,
                     "valley_grid: supervision exhausted after %u "
                     "restart(s) (last exit %d)\n",
                     outcome.restarts, outcome.exitCode);
        return 5;
    }
    if (outcome.restarts > 0)
        std::fprintf(stderr,
                     "valley_grid: recovered after %u crash "
                     "restart(s)\n",
                     outcome.restarts);
    return outcome.exitCode;
}
