/**
 * @file
 * Profile a workload's window-based address-bit entropy (Section III
 * of the paper) and report where its valley sits relative to the
 * channel/bank bits — the analysis a memory-system architect would
 * run before choosing an address mapping.
 *
 *   ./build/examples/entropy_profile [workload] [window] [scale] [threads]
 *
 * Profiling runs on the bit-sliced parallel pipeline: per-TB BVRs
 * accumulate 64 addresses at a time via transpose+popcount and
 * kernels fan out over a thread pool (threads: 0 = one per hardware
 * thread, 1 = serial; the result is bit-identical either way).
 */

#include <cstdio>
#include <cstdlib>

#include "workloads/profiler.hh"

using namespace valley;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "LU";
    const unsigned window = argc > 2 ? std::atoi(argv[2]) : 12;
    const double scale = argc > 3 ? std::atof(argv[3]) : 1.0;
    const unsigned threads = argc > 4 ? std::atoi(argv[4]) : 0;

    const auto wl = workloads::make(workload, scale);
    const AddressLayout layout = AddressLayout::hynixGddr5();

    workloads::ProfileOptions po;
    po.window = window;
    po.threads = threads;
    const EntropyProfile p = workloads::profileWorkload(*wl, po);

    std::printf("%s — window-based entropy, w = %u TBs\n\n",
                wl->info().name.c_str(), window);
    std::printf("%s\n", p.chart(29, 6).c_str());

    const double ch = p.meanOver(layout.channelBits());
    const double bank = p.meanOver(layout.bankBits());
    const double row = p.meanOver(layout.rowBits());
    std::printf("mean entropy: channel bits %.2f | bank bits %.2f | "
                "row bits %.2f\n",
                ch, bank, row);

    if (ch < 0.5 || bank < 0.5) {
        std::printf("\n=> entropy valley overlaps the channel/bank "
                    "bits: this workload will\n   serialize on a few "
                    "channels/banks under the baseline map. A Broad\n"
                    "   scheme (PAE/FAE) can harvest the high-entropy "
                    "bits elsewhere in the\n   address.\n");
    } else {
        std::printf("\n=> no entropy valley: address mapping will "
                    "have minor impact here.\n");
    }

    // Per-kernel variation (the paper's DWT2D observation).
    if (wl->numKernels() > 1) {
        const EntropyProfile k0 =
            workloads::profileKernel(wl->kernels().front(), po);
        std::printf("\nfirst kernel only (%s): channel-bit entropy "
                    "%.2f vs %.2f for the whole app\n",
                    wl->kernels().front().name().c_str(),
                    k0.meanOver(layout.channelBits()), ch);
    }
    return 0;
}
