/**
 * @file
 * Quickstart: simulate one workload under BASE and PAE and print the
 * headline metrics. This is the 60-second tour of the public API.
 *
 *   ./build/examples/quickstart [workload] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"

using namespace valley;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "MT";
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

    // 1. The machine: Table I of the paper (12 SMs, 4-channel GDDR5).
    const SimConfig cfg = SimConfig::paperBaseline();
    std::printf("machine : %s\n", cfg.layout.describe().c_str());

    // 2. The workload: a Table II benchmark reproduction.
    const auto wl = workloads::make(workload, scale);
    std::printf("workload: %s (%s), %u kernels\n",
                wl->info().name.c_str(), wl->info().abbrev.c_str(),
                wl->numKernels());

    // 3. Two address mappers: the Hynix baseline and the paper's
    //    power-efficient Page Address Entropy scheme.
    const auto base = mapping::makeScheme(Scheme::BASE, cfg.layout);
    const auto pae = mapping::makeScheme(Scheme::PAE, cfg.layout, 1);

    // 4. Simulate.
    for (const AddressMapper *m : {base.get(), pae.get()}) {
        GpuSystem sim(cfg, *m);
        const RunResult r = sim.run(*wl);
        std::printf(
            "\n%-4s: %10llu cycles  (%.3f ms simulated)\n"
            "      row-buffer hit %.1f%%   LLC miss %.1f%%   NoC "
            "latency %.0f cyc\n"
            "      DRAM %.1f W   system %.1f W   perf/W %.3f 1/(s*W)\n",
            m->name().c_str(),
            static_cast<unsigned long long>(r.cycles),
            r.seconds * 1e3, r.rowBufferHitRate * 100,
            r.llcMissRate * 100, r.nocLatencySmCycles,
            r.dramPower.totalW(), r.systemPowerW,
            r.performancePerWatt());
    }

    std::printf("\nPAE harvests entropy from the DRAM page-address "
                "bits and concentrates it\ninto the channel/bank "
                "bits — run the bench/ binaries for the full "
                "evaluation.\n");
    return 0;
}
