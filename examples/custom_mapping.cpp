/**
 * @file
 * Build a *custom* BIM-based address mapping scheme and evaluate it
 * against the paper's schemes on one workload — the workflow for
 * anyone extending this library with their own mapping ideas.
 */

#include <cstdio>

#include "bim/bim_builder.hh"
#include "harness/experiment.hh"

using namespace valley;

int
main()
{
    const SimConfig cfg = SimConfig::paperBaseline();
    const AddressLayout &layout = cfg.layout;

    // A hand-crafted "wide PM": each channel/bank bit XORs *four*
    // donors spread across row and column bits — broader than PM's
    // single donor, narrower than PAE's random page rows.
    BitMatrix m = BitMatrix::identity(layout.addrBits);
    const std::vector<unsigned> targets = layout.randomizeTargets();
    const unsigned donors[6][4] = {
        {14, 18, 22, 26}, {15, 19, 23, 27}, {16, 20, 24, 28},
        {17, 21, 25, 29}, {14, 20, 26, 7},  {15, 21, 27, 6},
    };
    for (unsigned i = 0; i < targets.size(); ++i)
        for (unsigned d : donors[i])
            m.set(targets[i], d, true);

    if (!m.invertible()) {
        std::printf("custom matrix is singular — aborting\n");
        return 1;
    }
    const auto custom = mapping::makeCustom("WIDE-PM", layout, m);
    std::printf("custom scheme: %u XOR gates, depth %u\n\n",
                custom->matrix().xorGateCount(),
                custom->matrix().xorTreeDepth());

    // Evaluate against BASE / PM / PAE on the transpose workload.
    const auto wl = workloads::make("MT", 0.5);
    const auto base = mapping::makeScheme(Scheme::BASE, layout);
    const auto pm = mapping::makeScheme(Scheme::PM, layout);
    const auto pae = mapping::makeScheme(Scheme::PAE, layout, 1);

    double base_seconds = 0.0;
    std::printf("%-8s %12s %10s %10s %10s\n", "scheme", "cycles",
                "speedup", "rb-hit", "dram W");
    for (const AddressMapper *mp :
         {base.get(), pm.get(), custom.get(), pae.get()}) {
        GpuSystem sim(cfg, *mp);
        const RunResult r = sim.run(*wl);
        if (mp == base.get())
            base_seconds = r.seconds;
        std::printf("%-8s %12llu %9.2fx %9.1f%% %10.1f\n",
                    mp->name().c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    base_seconds / r.seconds,
                    r.rowBufferHitRate * 100, r.dramPower.totalW());
    }

    std::printf("\nAnything expressible with AND/XOR can be plugged "
                "in this way — the BIM\nabstraction covers all "
                "one-to-one mappings of that family (Section IV).\n");
    return 0;
}
