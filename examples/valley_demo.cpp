/**
 * @file
 * The paper's Fig. 2 walk-through: a column-major thread block whose
 * memory requests all land on DRAM channel 0 under the baseline map,
 * state-of-the-art permutation-based mapping (PM) failing to fix it,
 * and a Broad BIM restoring perfect channel balance.
 */

#include <cstdio>
#include <vector>

#include "bim/bim_builder.hh"
#include "common/rng.hh"
#include "mapping/address_mapper.hh"

using namespace valley;

namespace {

void
showDistribution(const char *label, const AddressMapper &mapper,
                 const std::vector<Addr> &requests)
{
    unsigned per_channel[4] = {0, 0, 0, 0};
    for (Addr a : requests)
        per_channel[mapper.coordOf(a).channel]++;
    std::printf("%-28s channels [", label);
    for (unsigned c = 0; c < 4; ++c)
        std::printf(" %2u", per_channel[c]);
    std::printf(" ]\n");
}

} // namespace

int
main()
{
    const AddressLayout layout = AddressLayout::hynixGddr5();
    std::printf("Fig. 2 demo — %s\n\n", layout.describe().c_str());

    // A column-major TB (Fig. 2's TB-CM0): thread i accesses element
    // [i][0] of a row-major matrix with a 2 KB pitch, i.e. a column
    // walk with the row-pitch stride. The addresses differ only in
    // bits 11+ (bank/row bits); channel bits 8-9 are constant zero.
    std::vector<Addr> requests;
    for (unsigned i = 0; i < 8; ++i)
        requests.push_back(Addr{i} * 2048);

    std::printf("TB-CM requests (column-major thread block):\n");
    for (Addr a : requests)
        std::printf("  0x%08llx\n",
                    static_cast<unsigned long long>(a));
    std::printf("\n");

    const auto base = mapping::makeScheme(Scheme::BASE, layout);
    showDistribution("BASE (Hynix map):", *base, requests);

    // State-of-the-art PM: XORs channel/bank bits with the lowest
    // row bits — too narrow a range for this access pattern.
    const auto pm = mapping::makeScheme(Scheme::PM, layout);
    showDistribution("PM (narrow XOR):", *pm, requests);

    // A Broad-strategy BIM gathers entropy from the whole page
    // address; the invertibility check guarantees one-to-one mapping.
    const auto pae = mapping::makeScheme(Scheme::PAE, layout, 1);
    showDistribution("PAE (Broad BIM):", *pae, requests);

    const auto fae = mapping::makeScheme(Scheme::FAE, layout, 1);
    showDistribution("FAE (Broad BIM, full addr):", *fae, requests);

    std::printf(
        "\nThe Broad BIM rows for the channel bits tap wide input "
        "ranges:\n  ch bit 8 row taps: 0x%08llx\n  ch bit 9 row "
        "taps: 0x%08llx\nHardware: %u 2-input XOR gates, tree depth "
        "%u (single cycle).\n",
        static_cast<unsigned long long>(pae->matrix().row(8)),
        static_cast<unsigned long long>(pae->matrix().row(9)),
        pae->matrix().xorGateCount(), pae->matrix().xorTreeDepth());

    // Bijectivity: the invertibility criterion at work.
    const auto inv = pae->matrix().inverse();
    XorShiftRng rng(5);
    bool ok = true;
    for (int i = 0; i < 100000; ++i) {
        const Addr a = rng.next() & ((Addr{1} << 30) - 1);
        ok &= inv->apply(pae->map(a)) == a;
    }
    std::printf("one-to-one check over 100k random addresses: %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
