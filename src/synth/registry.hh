/**
 * @file
 * Registry of synthetic scenario families.
 *
 * Each family is a parameterized pattern primitive — `stream`,
 * `strided`, `tiled2d`, `stencil3d`, `csr_gather`, `attention`,
 * `hash_shuffle`, `pipeline` — with a declared parameter schema
 * (keys, types, defaults, help text). A spec string is resolved
 * against the schema into a `ResolvedSpec`: every parameter gets a
 * validated, canonically formatted value, so two spec strings that
 * mean the same workload (reordered keys, redundant defaults,
 * `n=096` vs `n=96`) resolve to the same canonical form and the same
 * stable hash — the property the on-disk profile/result/SBIM caches
 * key on.
 *
 * `workloads::make()` falls through to `synth::make()` for any name
 * with the `synth:` prefix, so spec strings run everywhere a Table II
 * abbreviation does: the harness grid, the entropy profiler, the BIM
 * search, the figure benches and the CLIs.
 */

#ifndef VALLEY_SYNTH_REGISTRY_HH
#define VALLEY_SYNTH_REGISTRY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "synth/spec.hh"
#include "workloads/workload.hh"

namespace valley {
namespace synth {

/** Parameter value type. */
enum class ParamKind
{
    U64, ///< unsigned integer
    F64, ///< double
    Str, ///< identifier from a fixed choice set
};

/** One schema entry of a family. */
struct ParamSpec
{
    std::string key;
    ParamKind kind = ParamKind::U64;
    std::string def;            ///< default, canonical text
    std::string help;           ///< one-line description
    std::vector<std::string> choices; ///< Str only: allowed values
};

/** One registered scenario family. */
struct FamilyInfo
{
    std::string name;           ///< e.g. "stencil3d"
    std::string summary;        ///< one-line description
    bool typicallyValley = false; ///< default-parameter entropy shape
    std::vector<ParamSpec> params;
};

/**
 * A spec validated against its family schema: every schema key is
 * present with a canonically formatted value.
 */
class ResolvedSpec
{
  public:
    ResolvedSpec(const FamilyInfo *family,
                 std::vector<std::pair<std::string, std::string>> values);

    const FamilyInfo &family() const { return *family_; }

    /** All (key, canonical value) pairs in schema order. */
    const std::vector<std::pair<std::string, std::string>> &
    values() const
    {
        return values_;
    }

    /** Typed accessors; the key must exist in the schema. */
    std::uint64_t u(const std::string &key) const;
    double d(const std::string &key) const;
    const std::string &s(const std::string &key) const;

    /**
     * Canonical spec string: `synth:family` plus only the parameters
     * that differ from their defaults, in schema order. Parsing the
     * canonical string resolves back to an identical `ResolvedSpec`
     * (round-trip), so it is the stable workload identity used for
     * `WorkloadInfo::abbrev` and every cache key.
     */
    std::string canonical() const;

    /** FNV-1a hash of `canonical()` — stable across runs/platforms. */
    std::uint64_t hash() const;

  private:
    const std::string &raw(const std::string &key) const;

    const FamilyInfo *family_;
    std::vector<std::pair<std::string, std::string>> values_;
};

/** All registered families, listing order. */
const std::vector<FamilyInfo> &families();

/** Find a family by name; nullptr when unknown. */
const FamilyInfo *findFamily(const std::string &name);

/**
 * Resolve a parsed spec against its family schema. Throws
 * `std::invalid_argument` on an unknown family, unknown key, or a
 * value that fails to parse/validate for its kind.
 */
ResolvedSpec resolve(const SynthSpec &spec);

/** Convenience: parse + resolve a spec string. */
ResolvedSpec resolve(const std::string &spec_string);

/**
 * Build the workload of a spec string. `scale` multiplies the spec's
 * own `scale` parameter (both in (0, 1]); the workload's
 * `WorkloadInfo::abbrev` is the canonical spec (without the external
 * `scale`, which callers pass alongside, mirroring Table II usage).
 */
std::unique_ptr<Workload> make(const std::string &spec_string,
                               double scale = 1.0);

} // namespace synth
} // namespace valley

#endif // VALLEY_SYNTH_REGISTRY_HH
