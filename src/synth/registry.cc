#include "synth/registry.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/fnv.hh"
#include "synth/patterns.hh"

namespace valley {
namespace synth {
namespace {

using MakeFn = std::unique_ptr<Workload> (*)(const ResolvedSpec &,
                                             double);

/** Family metadata + its generator, in listing order. */
struct Entry
{
    FamilyInfo info;
    MakeFn make;
};

/** Schema tail shared by every family (warp/issue shaping). */
std::vector<ParamSpec>
commonParams(unsigned warps, unsigned gap, const char *ipr)
{
    return {
        {"warps", ParamKind::U64, std::to_string(warps),
         "warps per thread block (1-32)", {}},
        {"gap", ParamKind::U64, std::to_string(gap),
         "SM cycles between a warp's accesses", {}},
        {"ipr", ParamKind::F64, ipr,
         "dynamic instructions per memory request", {}},
        {"scale", ParamKind::F64, "1",
         "problem-size scale in (0, 1]", {}},
    };
}

std::vector<ParamSpec>
withCommon(std::vector<ParamSpec> params, unsigned warps, unsigned gap,
           const char *ipr)
{
    for (auto &p : commonParams(warps, gap, ipr))
        params.push_back(std::move(p));
    return params;
}

const std::vector<Entry> &
entries()
{
    static const std::vector<Entry> e = {
        {{"stream",
          "sequential streaming; tstride sets per-warp coalescing",
          false,
          withCommon({{"n", ParamKind::U64, "1048576",
                       "elements streamed (quantized by 4096)", {}},
                      {"tstride", ParamKind::U64, "4",
                       "bytes per thread: 4 = coalesced, >=128 = "
                       "32-line scatter", {}},
                      {"wr", ParamKind::F64, "0.25",
                       "write fraction of the access stream", {}},
                      {"ipt", ParamKind::U64, "64",
                       "instructions per warp per TB", {}}},
                     8, 8, "350")},
         &makeStream},
        {{"strided",
          "column-block walk over a pitched array (partition camping)",
          true,
          withCommon({{"rows", ParamKind::U64, "4096",
                       "array rows (quantized by 256)", {}},
                      {"pitch", ParamKind::U64, "2048",
                       "row pitch in bytes (multiple of 128); sets "
                       "the valley width", {}},
                      {"rpt", ParamKind::U64, "256",
                       "rows walked per TB", {}}},
                     8, 8, "300")},
         &makeStrided},
        {{"tiled2d",
          "2D tile copy; order=col pins the x-block (valley) bits",
          true,
          withCommon({{"nx", ParamKind::U64, "1024",
                       "row length (multiple of 32)", {}},
                      {"ny", ParamKind::U64, "512",
                       "rows (quantized by 64)", {}},
                      {"tile", ParamKind::U64, "32",
                       "rows per TB tile (divides ny)", {}},
                      {"order", ParamKind::Str, "col",
                       "TB allocation order",
                       {"col", "row"}}},
                     8, 8, "400")},
         &makeTiled2d},
        {{"stencil3d",
          "halo-exchange stencil over an n^3 grid (LPS generalized)",
          true,
          withCommon({{"nx", ParamKind::U64, "256",
                       "xy plane dimension (pow2 in [64, 1024])", {}},
                      {"n", ParamKind::U64, "32",
                       "z planes (quantized by 4; scale applies here)",
                       {}},
                      {"halo", ParamKind::U64, "1",
                       "neighbor reach in y/z (1-4)", {}}},
                     4, 10, "440")},
         &makeStencil3d},
        {{"csr_gather",
          "CSR gather over a deterministic graph (Mosaic-style "
          "irregular)",
          false,
          withCommon({{"nodes", ParamKind::U64, "8192",
                       "graph nodes (quantized by 1024)", {}},
                      {"deg", ParamKind::U64, "8",
                       "edges per node (1-64)", {}},
                      {"xmb", ParamKind::U64, "16",
                       "feature-table footprint in MB (pow2 <= 32)",
                       {}},
                      {"loc", ParamKind::F64, "0.25",
                       "fraction of neighborhood-local edges", {}},
                      {"seed", ParamKind::U64, "1",
                       "graph/gather RNG seed", {}}},
                     8, 8, "170")},
         &makeCsrGather},
        {{"attention",
          "QK gather: dense Q reads + top-k random K-row gathers",
          false,
          withCommon({{"seq", ParamKind::U64, "2048",
                       "sequence length (quantized by 256)", {}},
                      {"dm", ParamKind::U64, "64",
                       "head dimension in floats (multiple of 32)",
                       {}},
                      {"topk", ParamKind::U64, "32",
                       "key rows gathered per query warp (1-256)", {}},
                      {"seed", ParamKind::U64, "1",
                       "gather RNG seed", {}}},
                     8, 6, "120")},
         &makeAttention},
        {{"hash_shuffle",
          "uniform random lines over a pow2 footprint (near-flat)",
          false,
          withCommon({{"fmb", ParamKind::U64, "256",
                       "footprint in MB (power of two <= 512)", {}},
                      {"rpw", ParamKind::U64, "16",
                       "random accesses per warp", {}},
                      {"tbs", ParamKind::U64, "64",
                       "thread blocks (quantized by 8)", {}},
                      {"wr", ParamKind::F64, "0.25",
                       "write fraction of the access stream", {}},
                      {"seed", ParamKind::U64, "1",
                       "shuffle RNG seed", {}}},
                     8, 5, "40")},
         &makeHashShuffle},
        {{"pipeline",
          "multi-kernel chain: produce -> transpose -> gather through "
          "shared regions",
          true,
          withCommon({{"stages", ParamKind::U64, "3",
                       "pipeline stages (2-4)", {}},
                      {"n", ParamKind::U64, "512",
                       "matrix dimension (quantized by 128, <= 2048)",
                       {}},
                      {"seed", ParamKind::U64, "1",
                       "gather RNG seed", {}}},
                     8, 8, "250")},
         &makePipeline},
    };
    return e;
}

[[noreturn]] void
resolveError(const std::string &family, const std::string &why)
{
    throw std::invalid_argument("synth:" + family + ": " + why);
}

const ParamSpec *
findParam(const FamilyInfo &fam, const std::string &key)
{
    for (const ParamSpec &p : fam.params)
        if (p.key == key)
            return &p;
    return nullptr;
}

std::uint64_t
parseU64(const FamilyInfo &fam, const ParamSpec &p,
         const std::string &text)
{
    if (text.empty() || text[0] == '-' || text[0] == '+')
        resolveError(fam.name, "parameter '" + p.key +
                                   "' must be a non-negative integer");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        resolveError(fam.name, "parameter '" + p.key + "' value '" +
                                   text + "' is not an integer");
    return v;
}

double
parseF64(const FamilyInfo &fam, const ParamSpec &p,
         const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        resolveError(fam.name, "parameter '" + p.key + "' value '" +
                                   text + "' is not a number");
    return v;
}

/** Canonical text of a value (so `n=096` and `n=96` key the same). */
std::string
canonicalValue(const FamilyInfo &fam, const ParamSpec &p,
               const std::string &text)
{
    switch (p.kind) {
    case ParamKind::U64:
        return std::to_string(parseU64(fam, p, text));
    case ParamKind::F64: {
        std::ostringstream out;
        out.precision(17);
        out << parseF64(fam, p, text);
        return out.str();
    }
    case ParamKind::Str:
        for (const std::string &c : p.choices)
            if (c == text)
                return text;
        resolveError(fam.name, "parameter '" + p.key + "' value '" +
                                   text + "' is not one of its " +
                                   std::to_string(p.choices.size()) +
                                   " choices");
    }
    resolveError(fam.name, "unreachable");
}

} // namespace

ResolvedSpec::ResolvedSpec(
    const FamilyInfo *family,
    std::vector<std::pair<std::string, std::string>> values)
    : family_(family), values_(std::move(values))
{
}

const std::string &
ResolvedSpec::raw(const std::string &key) const
{
    for (const auto &[k, v] : values_)
        if (k == key)
            return v;
    throw std::logic_error("synth:" + family_->name +
                           ": no such parameter '" + key + "'");
}

std::uint64_t
ResolvedSpec::u(const std::string &key) const
{
    return std::strtoull(raw(key).c_str(), nullptr, 10);
}

double
ResolvedSpec::d(const std::string &key) const
{
    return std::strtod(raw(key).c_str(), nullptr);
}

const std::string &
ResolvedSpec::s(const std::string &key) const
{
    return raw(key);
}

std::string
ResolvedSpec::canonical() const
{
    std::string out = std::string(kSpecPrefix) + family_->name;
    for (const ParamSpec &p : family_->params) {
        const std::string &v = raw(p.key);
        if (v != p.def)
            out += "," + p.key + "=" + v;
    }
    return out;
}

std::uint64_t
ResolvedSpec::hash() const
{
    // FNV-1a over the canonical string: stable across runs and
    // platforms, so on-disk caches can key on it.
    return bits::fnv1a(canonical());
}

const std::vector<FamilyInfo> &
families()
{
    static const std::vector<FamilyInfo> f = [] {
        std::vector<FamilyInfo> v;
        for (const Entry &e : entries())
            v.push_back(e.info);
        return v;
    }();
    return f;
}

const FamilyInfo *
findFamily(const std::string &name)
{
    for (const Entry &e : entries())
        if (e.info.name == name)
            return &e.info;
    return nullptr;
}

ResolvedSpec
resolve(const SynthSpec &spec)
{
    const FamilyInfo *fam = findFamily(spec.family);
    if (!fam) {
        std::string known;
        for (const FamilyInfo &f : families())
            known += (known.empty() ? "" : ", ") + f.name;
        throw std::invalid_argument("unknown synth family '" +
                                    spec.family + "' (known: " + known +
                                    ")");
    }

    // Reject keys outside the schema.
    for (const auto &[k, v] : spec.params)
        if (!findParam(*fam, k))
            resolveError(fam->name, "unknown parameter '" + k + "'");

    // Canonicalize every schema key (given value or default).
    std::vector<std::pair<std::string, std::string>> values;
    values.reserve(fam->params.size());
    for (const ParamSpec &p : fam->params) {
        const std::string *given = spec.find(p.key);
        values.emplace_back(
            p.key, given ? canonicalValue(*fam, p, *given) : p.def);
    }
    ResolvedSpec r(fam, std::move(values));

    // Generic validation of the shared parameters.
    const std::uint64_t warps = r.u("warps");
    if (warps < 1 || warps > 32)
        resolveError(fam->name, "warps must be in [1, 32]");
    if (r.d("ipr") <= 0.0)
        resolveError(fam->name, "ipr must be > 0");
    const double s = r.d("scale");
    if (s <= 0.0 || s > 1.0)
        resolveError(fam->name, "scale must be in (0, 1]");
    return r;
}

ResolvedSpec
resolve(const std::string &spec_string)
{
    return resolve(SynthSpec::parse(spec_string));
}

std::unique_ptr<Workload>
make(const std::string &spec_string, double scale)
{
    if (scale <= 0.0 || scale > 1.0)
        throw std::invalid_argument("workload scale must be in (0,1]");
    const ResolvedSpec spec = resolve(spec_string);
    for (const Entry &e : entries())
        if (e.info.name == spec.family().name)
            return e.make(spec, scale);
    throw std::logic_error("synth family without generator: " +
                           spec.family().name);
}

} // namespace synth
} // namespace valley
