/**
 * @file
 * The pattern primitives behind the synthetic scenario families.
 *
 * Each `make*` function turns a `ResolvedSpec` (validated parameters)
 * plus an external scale factor into a `Workload` whose kernels emit
 * deterministic `TraceBuilder` streams. Families control the three
 * knobs that shape an address stream's entropy profile:
 *
 *  - **TB geometry**: which grid dimension advances fastest across
 *    consecutive TB ids decides which address bits stay pinned inside
 *    the paper's TB window (column-major allocation ⇒ entropy valley);
 *  - **read/write mix**: a `wr` fraction or explicit output streams;
 *  - **per-warp coalescing**: per-thread stride selects between one
 *    128 B transaction per warp access and a 32-line scatter.
 *
 * All generators are pure functions of (spec, scale, tb) — the same
 * spec yields bit-identical traces on every run and thread count.
 * Addresses stay inside the 30-bit synthetic heap (32 MB regions, as
 * in `workloads/suite.cc`); parameter combinations that would
 * overflow a family's regions are rejected with
 * `std::invalid_argument` at build time, not truncated silently.
 */

#ifndef VALLEY_SYNTH_PATTERNS_HH
#define VALLEY_SYNTH_PATTERNS_HH

#include "synth/registry.hh"

namespace valley {
namespace synth {

/** Sequential streaming; `tstride` controls per-warp coalescing. */
std::unique_ptr<Workload> makeStream(const ResolvedSpec &spec,
                                     double scale);

/** Column-block walk over a pitched array (partition camping). */
std::unique_ptr<Workload> makeStrided(const ResolvedSpec &spec,
                                      double scale);

/** 2D tile copy; `order=col|row` flips the TB allocation order. */
std::unique_ptr<Workload> makeTiled2d(const ResolvedSpec &spec,
                                      double scale);

/** 3D halo-exchange stencil over an n^3 grid (LPS generalized). */
std::unique_ptr<Workload> makeStencil3d(const ResolvedSpec &spec,
                                        double scale);

/** CSR gather over a deterministically generated graph. */
std::unique_ptr<Workload> makeCsrGather(const ResolvedSpec &spec,
                                        double scale);

/** Attention-style QK gather: dense Q reads, top-k K row gathers. */
std::unique_ptr<Workload> makeAttention(const ResolvedSpec &spec,
                                        double scale);

/** Uniform random lines over a power-of-two footprint (near-flat). */
std::unique_ptr<Workload> makeHashShuffle(const ResolvedSpec &spec,
                                          double scale);

/** Multi-kernel pipeline chaining stages through shared regions. */
std::unique_ptr<Workload> makePipeline(const ResolvedSpec &spec,
                                       double scale);

} // namespace synth
} // namespace valley

#endif // VALLEY_SYNTH_PATTERNS_HH
