/**
 * @file
 * Spec strings for the synthetic scenario generator.
 *
 * A synthetic workload is named by a spec string
 *
 *     synth:FAMILY[,key=value]...
 *
 * e.g. `synth:stencil3d,n=96,halo=1,scale=0.5`. `SynthSpec` is the
 * raw parse of such a string: the family name plus the key=value
 * pairs exactly as written. Validation against a family's parameter
 * schema — defaults, types, canonical formatting, the stable hash
 * used by the on-disk caches — happens in `registry.hh`'s
 * `ResolvedSpec`, so the parser stays grammar-only.
 *
 * Grammar (no whitespace; keys are [a-z0-9_]+, values are anything
 * up to the next ','):
 *
 *     spec  := "synth:" family ("," param)*
 *     param := key "=" value
 */

#ifndef VALLEY_SYNTH_SPEC_HH
#define VALLEY_SYNTH_SPEC_HH

#include <string>
#include <utility>
#include <vector>

namespace valley {
namespace synth {

/** Prefix marking a workload name as a synthetic spec. */
inline constexpr const char *kSpecPrefix = "synth:";

/** True iff `name` is a `synth:` spec string (by prefix). */
bool isSynthSpec(const std::string &name);

/** Raw parse of one spec string (grammar only, no schema checks). */
struct SynthSpec
{
    std::string family;
    /** key=value pairs in written order; duplicate keys rejected. */
    std::vector<std::pair<std::string, std::string>> params;

    /**
     * Parse a spec string. Throws `std::invalid_argument` on a
     * missing prefix, empty family, malformed parameter (no '=',
     * empty key/value, bad key characters) or duplicate key.
     */
    static SynthSpec parse(const std::string &text);

    /** Re-print as written: `synth:family,k=v,...`. */
    std::string print() const;

    /** Value of `key`, or nullptr if absent. */
    const std::string *find(const std::string &key) const;
};

} // namespace synth
} // namespace valley

#endif // VALLEY_SYNTH_SPEC_HH
