#include "synth/patterns.hh"

#include <algorithm>
#include <stdexcept>

#include "common/bitops.hh"
#include "common/rng.hh"

namespace valley {
namespace synth {
namespace {

/** Synthetic heap regions, as in workloads/suite.cc: 32 x 32 MB. */
constexpr Addr region(unsigned idx) { return Addr{idx} << 25; }
constexpr std::uint64_t kRegionBytes = std::uint64_t{1} << 25;

/** Reject invalid parameter combinations loudly (never truncate). */
void
require(bool ok, const std::string &family, const std::string &why)
{
    if (!ok)
        throw std::invalid_argument("synth:" + family + ": " + why);
}

/**
 * Effective problem scale: the spec's own `scale` parameter times the
 * external `workloads::make` scale, both already validated in (0, 1].
 */
double
effScale(const ResolvedSpec &spec, double scale)
{
    return spec.d("scale") * scale;
}

/** Deterministic per-(family,seed,kernel,tb) RNG. */
XorShiftRng
synthRng(std::uint64_t family_id, std::uint64_t seed,
         std::uint64_t kernel, TbId tb)
{
    return XorShiftRng(0x5EEDull ^ (family_id << 52) ^ (seed << 36) ^
                       (kernel << 24) ^ (Addr{tb} + 1));
}

/**
 * Deterministic write-mix predicate: true for a `wr` fraction of the
 * instruction indices, evenly spread (no RNG, so the read/write mix
 * is independent of every other random stream).
 */
bool
writeAt(unsigned i, double wr)
{
    return static_cast<unsigned>((i + 1) * wr) >
           static_cast<unsigned>(i * wr);
}

/** Shared WorkloadInfo shape for the synth suite. */
WorkloadInfo
synthInfo(const ResolvedSpec &spec, bool valley, std::string dims)
{
    return WorkloadInfo{spec.family().name, spec.canonical(), "synth",
                        valley, std::move(dims)};
}

KernelParams
kernelParams(const ResolvedSpec &spec, const std::string &name,
             unsigned num_tbs)
{
    KernelParams p;
    p.name = name;
    p.numTbs = num_tbs;
    p.warpsPerTb = static_cast<unsigned>(spec.u("warps"));
    p.computeGap = static_cast<unsigned>(spec.u("gap"));
    p.instrsPerRequest = spec.d("ipr");
    return p;
}

} // namespace

// ---------------------------------------------------------------------
// stream — sequential streaming with controllable per-warp coalescing.
// Thread t of a warp instruction reads base + t * tstride: tstride 4
// is one fully coalesced 128 B line per access, tstride >= 128 is a
// 32-line scatter. Low-order bits sweep inside every TB: no valley.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeStream(const ResolvedSpec &spec, double scale)
{
    const unsigned n =
        workloads::scaled(static_cast<unsigned>(spec.u("n")),
                          effScale(spec, scale), 4096);
    const unsigned tstride = static_cast<unsigned>(spec.u("tstride"));
    const double wr = spec.d("wr");
    const unsigned warps = static_cast<unsigned>(spec.u("warps"));
    const unsigned ipt = static_cast<unsigned>(spec.u("ipt"));

    require(tstride >= 4 && tstride % 4 == 0, "stream",
            "tstride must be a positive multiple of 4");
    require(std::uint64_t{n} * tstride <= kRegionBytes, "stream",
            "n * tstride exceeds the 32 MB stream region");
    require(wr >= 0.0 && wr <= 1.0, "stream", "wr must be in [0, 1]");

    const Addr src = region(0);
    const Addr dst = region(2);
    const unsigned instrs = n / 32; // one warp access = 32 elements
    const unsigned per_tb = warps * ipt;
    const unsigned num_tbs = std::max(1u, instrs / per_tb);

    std::vector<Kernel> kernels;
    kernels.emplace_back(
        kernelParams(spec, "stream", num_tbs),
        [=](TbId tb, TraceBuilder &b) {
            for (unsigned w = 0; w < warps; ++w)
                for (unsigned i = 0; i < ipt; ++i) {
                    const unsigned g =
                        ((tb * warps + w) * ipt + i) % instrs;
                    const Addr base = Addr{g} * 32 * tstride;
                    b.accessStrided(w, src + base, tstride, 32, false);
                    if (writeAt(i, wr))
                        b.accessStrided(w, dst + base, tstride, 32,
                                        true);
                }
        });

    return std::make_unique<Workload>(
        synthInfo(spec, false,
                  std::to_string(n) + "x" + std::to_string(tstride)),
        std::move(kernels));
}

// ---------------------------------------------------------------------
// strided — the partition-camping shape (SP/MT generalized): TBs own a
// column block of a pitched array (slow grid dimension) and walk rows
// (fast). Bits 7..log2(pitch/128)+6 hold the column block, pinned
// across the TB window: an entropy valley whose width is set by
// `pitch`.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeStrided(const ResolvedSpec &spec, double scale)
{
    const unsigned rows =
        workloads::scaled(static_cast<unsigned>(spec.u("rows")),
                          effScale(spec, scale), 256);
    const unsigned pitch = static_cast<unsigned>(spec.u("pitch"));
    const unsigned rpt = static_cast<unsigned>(spec.u("rpt"));
    const unsigned warps = static_cast<unsigned>(spec.u("warps"));

    require(pitch >= 128 && pitch % 128 == 0, "strided",
            "pitch must be a positive multiple of 128");
    require(rpt >= warps && rpt % warps == 0, "strided",
            "rpt must be a multiple of warps");
    require(std::uint64_t{rows} * pitch <= kRegionBytes, "strided",
            "rows * pitch exceeds the 32 MB region");

    const Addr va = region(4);
    const Addr res = region(6);
    const unsigned col_blocks = pitch / 128;
    const unsigned chunks = std::max(1u, rows / rpt);
    const unsigned rows_per_warp = rpt / warps;

    std::vector<Kernel> kernels;
    kernels.emplace_back(
        kernelParams(spec, "strided", chunks * col_blocks),
        [=](TbId tb, TraceBuilder &b) {
            const unsigned ch = tb % chunks; // fast: row chunk
            const unsigned cb = tb / chunks; // slow: valley bits
            for (unsigned w = 0; w < warps; ++w) {
                for (unsigned i = 0; i < rows_per_warp; ++i) {
                    const unsigned r =
                        ch * rpt + w * rows_per_warp + i;
                    if (r >= rows)
                        break;
                    b.accessLine(w,
                                 va + Addr{r} * pitch + Addr{cb} * 128,
                                 false);
                }
                // Per-warp partial result.
                b.accessLine(w,
                             res + (Addr{tb} * warps + w) * 128, true);
            }
        });

    return std::make_unique<Workload>(
        synthInfo(spec, true,
                  std::to_string(rows) + "x" +
                      std::to_string(col_blocks)),
        std::move(kernels));
}

// ---------------------------------------------------------------------
// tiled2d — 2D tile copy whose TB allocation order is the parameter:
// `order=col` walks the y blocks fastest, so the x-block bits (7..)
// stay pinned across the TB window (SRAD2/HS shape, valley);
// `order=row` walks x fastest and sweeps those bits (no valley).
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeTiled2d(const ResolvedSpec &spec, double scale)
{
    const unsigned nx = static_cast<unsigned>(spec.u("nx"));
    const unsigned ny =
        workloads::scaled(static_cast<unsigned>(spec.u("ny")),
                          effScale(spec, scale), 64);
    const unsigned tile = static_cast<unsigned>(spec.u("tile"));
    const bool col_major = spec.s("order") == "col";
    const unsigned warps = static_cast<unsigned>(spec.u("warps"));

    require(nx >= 32 && nx % 32 == 0, "tiled2d",
            "nx must be a positive multiple of 32");
    require(tile >= 1 && ny % tile == 0, "tiled2d",
            "tile must divide ny");
    require(std::uint64_t{ny} * nx * 4 <= kRegionBytes, "tiled2d",
            "nx * ny exceeds the 32 MB region");

    const unsigned pitch = nx * 4;
    const unsigned x_blocks = nx / 32;
    const unsigned y_blocks = ny / tile;
    const Addr in = region(8);
    const Addr out = region(10);

    std::vector<Kernel> kernels;
    kernels.emplace_back(
        kernelParams(spec, "tiled2d", x_blocks * y_blocks),
        [=](TbId tb, TraceBuilder &b) {
            const unsigned yb =
                col_major ? tb % y_blocks : tb / x_blocks;
            const unsigned xb =
                col_major ? tb / y_blocks : tb % x_blocks;
            for (unsigned r = 0; r < tile; ++r) {
                const unsigned y = yb * tile + r;
                const unsigned w = r % warps;
                b.accessLine(w, in + Addr{y} * pitch + Addr{xb} * 128,
                             false);
                b.accessLine(w, out + Addr{y} * pitch + Addr{xb} * 128,
                             true);
            }
        });

    return std::make_unique<Workload>(
        synthInfo(spec, col_major,
                  std::to_string(nx) + "x" + std::to_string(ny)),
        std::move(kernels));
}

// ---------------------------------------------------------------------
// stencil3d — 7-point (halo-widened) stencil over an nx x nx x n grid
// with power-of-two plane pitches: TBs cover 32 x warps xy tiles with
// (yb fast, xb slow, z slowest) allocation — the LPS shape. The
// x-block bits sit right on the channel bits and stay pinned across
// the window; `halo` widens the neighbor reach in y/z. Scaling
// shrinks the number of z planes only, so the valley position is
// invariant under `scale` (the xy pitch never moves).
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeStencil3d(const ResolvedSpec &spec, double scale)
{
    const unsigned nx = static_cast<unsigned>(spec.u("nx"));
    const unsigned n =
        workloads::scaled(static_cast<unsigned>(spec.u("n")),
                          effScale(spec, scale), 4);
    const unsigned halo = static_cast<unsigned>(spec.u("halo"));
    const unsigned warps = static_cast<unsigned>(spec.u("warps"));

    require(nx >= 64 && nx <= 1024 && bits::isPow2(nx), "stencil3d",
            "nx must be a power of two in [64, 1024]");
    require(halo >= 1 && halo <= 4, "stencil3d",
            "halo must be in [1, 4]");
    require(nx % warps == 0, "stencil3d", "warps must divide nx");

    const Addr pitchY = Addr{nx} * 4;              // pow2: clean bits
    const Addr pitchZ = pitchY * nx;
    const Addr in = region(12);
    const Addr out = region(20); // 8 regions apart: room to grow in z
    require(pitchZ * n <= 8 * kRegionBytes, "stencil3d",
            "nx * nx * n exceeds the 256 MB stencil region");

    const unsigned x_blocks = nx / 32;
    const unsigned y_blocks = nx / warps;

    std::vector<Kernel> kernels;
    kernels.emplace_back(
        kernelParams(spec, "stencil3d", x_blocks * y_blocks * n),
        [=](TbId tb, TraceBuilder &b) {
            const unsigned yb = tb % y_blocks;                 // fast
            const unsigned xb = (tb / y_blocks) % x_blocks;    // slow
            const unsigned z = tb / (y_blocks * x_blocks);     // slowest
            for (unsigned w = 0; w < warps; ++w) {
                const unsigned y = yb * warps + w;
                const Addr c = in + Addr{z} * pitchZ +
                               Addr{y} * pitchY + Addr{xb} * 128;
                b.accessLine(w, c, false);
                for (unsigned h = 1; h <= halo; ++h) {
                    if (y + h < nx)
                        b.accessLine(w, c + h * pitchY, false);
                    if (y >= h)
                        b.accessLine(w, c - h * pitchY, false);
                    if (z + h < n)
                        b.accessLine(w, c + h * pitchZ, false);
                    if (z >= h)
                        b.accessLine(w, c - h * pitchZ, false);
                }
                b.accessLine(w,
                             out + Addr{z} * pitchZ + Addr{y} * pitchY +
                                 Addr{xb} * 128,
                             true);
            }
        });

    return std::make_unique<Workload>(
        synthInfo(spec, true,
                  std::to_string(nx) + "x" + std::to_string(nx) + "x" +
                      std::to_string(n)),
        std::move(kernels));
}

// ---------------------------------------------------------------------
// csr_gather — CSR y = A x over a deterministically generated graph:
// streaming row pointers/values/column indices plus per-edge gathers
// into the feature table. `loc` mixes neighborhood-local edges (the
// community structure of real graphs) with uniform ones; the gather
// sweeps all bits of the footprint — the Mosaic-style irregular
// regime, no valley.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeCsrGather(const ResolvedSpec &spec, double scale)
{
    const unsigned nodes =
        workloads::scaled(static_cast<unsigned>(spec.u("nodes")),
                          effScale(spec, scale), 1024);
    const unsigned deg = static_cast<unsigned>(spec.u("deg"));
    const unsigned xmb = static_cast<unsigned>(spec.u("xmb"));
    const double loc = spec.d("loc");
    const std::uint64_t seed = spec.u("seed");
    const unsigned warps = static_cast<unsigned>(spec.u("warps"));

    require(deg >= 1 && deg <= 64, "csr_gather",
            "deg must be in [1, 64]");
    require(bits::isPow2(xmb) && xmb <= 32, "csr_gather",
            "xmb must be a power of two <= 32");
    require(loc >= 0.0 && loc <= 1.0, "csr_gather",
            "loc must be in [0, 1]");
    require(std::uint64_t{nodes} * deg * 8 <= kRegionBytes,
            "csr_gather", "nodes * deg exceeds the values region");

    const Addr rp = region(24);
    const Addr cols = region(24) + (Addr{1} << 22);
    const Addr y = region(24) + (Addr{3} << 22);
    const Addr vals = region(28);
    const Addr x = region(26);
    const std::uint64_t xlines = (std::uint64_t{xmb} << 20) / 128;

    // Each warp owns 32 rows, so TB count follows the warp count —
    // r0 below never reaches past `nodes` (guarded for the remainder
    // TBs a non-dividing warp count leaves).
    const unsigned rows_per_tb = warps * 32;
    const unsigned num_tbs = std::max(1u, nodes / rows_per_tb);

    std::vector<Kernel> kernels;
    kernels.emplace_back(
        kernelParams(spec, "csr_gather", num_tbs),
        [=](TbId tb, TraceBuilder &b) {
            XorShiftRng rng = synthRng(4, seed, 0, tb);
            for (unsigned w = 0; w < warps; ++w) {
                const unsigned r0 = (tb * warps + w) * 32;
                if (r0 >= nodes)
                    break;
                // Row pointers + column indices: coalesced streams.
                b.accessLine(w, rp + Addr{r0} * 4, false);
                b.accessStrided(w, cols + Addr{r0} * deg * 4, deg * 4,
                                32, false);
                for (unsigned e = 0; e < deg; ++e) {
                    // Values: strided stream (row-major CSR arrays).
                    b.accessStrided(w,
                                    vals + Addr{r0} * deg * 8 +
                                        Addr{e} * 8,
                                    deg * 8, 32, false);
                    // Feature gather: local (community) or uniform.
                    std::vector<Addr> addrs;
                    addrs.reserve(32);
                    for (unsigned t = 0; t < 32; ++t) {
                        const std::uint64_t r = r0 + t;
                        std::uint64_t line;
                        if (rng.uniform() < loc)
                            line = (r + rng.below(64)) % xlines;
                        else
                            line = rng.below(xlines);
                        addrs.push_back(x + line * 128);
                    }
                    b.access(w, addrs, false);
                }
                b.accessLine(w, y + Addr{r0} * 8, true);
            }
        });

    return std::make_unique<Workload>(
        synthInfo(spec, false,
                  std::to_string(nodes) + "x" + std::to_string(deg)),
        std::move(kernels));
}

// ---------------------------------------------------------------------
// attention — QK gather: each warp owns 32 query rows (dense,
// row-pitch-strided reads), gathers `topk` key rows at random
// sequence positions, and writes its output rows. Key rows are
// dm*4 >= 128 bytes, so gathers touch whole multi-line rows at
// random row offsets: entropy spreads over all footprint bits.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeAttention(const ResolvedSpec &spec, double scale)
{
    const unsigned seq =
        workloads::scaled(static_cast<unsigned>(spec.u("seq")),
                          effScale(spec, scale), 256);
    const unsigned dm = static_cast<unsigned>(spec.u("dm"));
    const unsigned topk = static_cast<unsigned>(spec.u("topk"));
    const std::uint64_t seed = spec.u("seed");
    const unsigned warps = static_cast<unsigned>(spec.u("warps"));

    require(dm >= 32 && dm % 32 == 0 && dm <= 512, "attention",
            "dm must be a multiple of 32 in [32, 512]");
    require(topk >= 1 && topk <= 256, "attention",
            "topk must be in [1, 256]");
    const unsigned rb = dm * 4; // row bytes, multiple of 128
    require(std::uint64_t{seq} * rb <= kRegionBytes, "attention",
            "seq * dm exceeds the 32 MB region");

    const Addr q = region(1);
    const Addr k = region(3);
    const Addr o = region(5);
    const unsigned row_lines = rb / 128;
    const unsigned num_tbs = std::max(1u, seq / (warps * 32));

    std::vector<Kernel> kernels;
    kernels.emplace_back(
        kernelParams(spec, "attention_qk", num_tbs),
        [=](TbId tb, TraceBuilder &b) {
            XorShiftRng rng = synthRng(5, seed, 0, tb);
            for (unsigned w = 0; w < warps; ++w) {
                const unsigned q0 = ((tb * warps + w) * 32) % seq;
                // Dense Q block: line l of rows q0..q0+31.
                for (unsigned l = 0; l < row_lines; ++l)
                    b.accessStrided(w, q + Addr{q0} * rb + l * 128, rb,
                                    32, false);
                // Top-k key gather at random sequence positions.
                for (unsigned j = 0; j < topk; ++j) {
                    const std::uint64_t kidx = rng.below(seq);
                    for (unsigned l = 0; l < row_lines; ++l)
                        b.accessLine(w, k + kidx * rb + l * 128,
                                     false);
                }
                // Output rows.
                for (unsigned l = 0; l < row_lines; ++l)
                    b.accessStrided(w, o + Addr{q0} * rb + l * 128, rb,
                                    32, true);
            }
        });

    return std::make_unique<Workload>(
        synthInfo(spec, false,
                  std::to_string(seq) + "x" + std::to_string(dm)),
        std::move(kernels));
}

// ---------------------------------------------------------------------
// hash_shuffle — uniformly random lines over a power-of-two footprint
// (hash-table probing / shuffle traffic). Every bit from 7 up to the
// footprint top carries near-maximal window entropy: the flattest
// profile a mapping could hope for, and the hardest to improve.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeHashShuffle(const ResolvedSpec &spec, double scale)
{
    const unsigned fmb = static_cast<unsigned>(spec.u("fmb"));
    const unsigned rpw = static_cast<unsigned>(spec.u("rpw"));
    const unsigned tbs =
        workloads::scaled(static_cast<unsigned>(spec.u("tbs")),
                          effScale(spec, scale), 8);
    const double wr = spec.d("wr");
    const std::uint64_t seed = spec.u("seed");
    const unsigned warps = static_cast<unsigned>(spec.u("warps"));

    require(bits::isPow2(fmb) && fmb <= 512, "hash_shuffle",
            "fmb must be a power of two <= 512");
    require(rpw >= 1, "hash_shuffle", "rpw must be >= 1");
    require(wr >= 0.0 && wr <= 1.0, "hash_shuffle",
            "wr must be in [0, 1]");

    const Addr base = region(0);
    const std::uint64_t mask = (std::uint64_t{fmb} << 20) - 1;

    std::vector<Kernel> kernels;
    kernels.emplace_back(
        kernelParams(spec, "hash_shuffle", tbs),
        [=](TbId tb, TraceBuilder &b) {
            XorShiftRng rng = synthRng(6, seed, 0, tb);
            for (unsigned w = 0; w < warps; ++w)
                for (unsigned i = 0; i < rpw; ++i) {
                    std::vector<Addr> addrs;
                    addrs.reserve(32);
                    for (unsigned t = 0; t < 32; ++t)
                        addrs.push_back(base + (rng.next() & mask));
                    b.access(w, addrs, false);
                    if (writeAt(i, wr))
                        b.accessLine(w, base + (rng.next() & mask),
                                     true);
                }
        });

    return std::make_unique<Workload>(
        synthInfo(spec, false, std::to_string(fmb) + "MB"),
        std::move(kernels));
}

// ---------------------------------------------------------------------
// pipeline — a multi-kernel chain through shared regions: stage s
// reads region 2s and writes region 2s+2. Stage types cycle
// produce (row-major stream, flat) → transpose (column scatter,
// valley) → gather (random reads, flat), so the aggregate profile
// mixes regimes and the per-kernel profiles differ — the
// multi-kernel-pipeline scenario of the ROADMAP.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makePipeline(const ResolvedSpec &spec, double scale)
{
    const unsigned stages = static_cast<unsigned>(spec.u("stages"));
    const unsigned n =
        workloads::scaled(static_cast<unsigned>(spec.u("n")),
                          effScale(spec, scale), 128);
    const std::uint64_t seed = spec.u("seed");
    const unsigned warps = static_cast<unsigned>(spec.u("warps"));

    require(stages >= 2 && stages <= 4, "pipeline",
            "stages must be in [2, 4]");
    require(n <= 2048, "pipeline", "n must be <= 2048");
    require(n % 32 == 0, "pipeline", "n must be a multiple of 32");

    const unsigned pitch = n * 4;
    const unsigned x_blocks = n / 32;
    const unsigned y_rows = 8; // rows per TB in the dense stages

    std::vector<Kernel> kernels;
    for (unsigned s = 0; s < stages; ++s) {
        const Addr in = region(2 * s);
        const Addr out = region(2 * s + 2);
        const unsigned type = s % 3;
        if (type == 0) {
            // Produce: row-major tile stream, x block fastest.
            kernels.emplace_back(
                kernelParams(spec,
                             "pipe_produce#" + std::to_string(s),
                             x_blocks * (n / y_rows)),
                [=](TbId tb, TraceBuilder &b) {
                    const unsigned xb = tb % x_blocks; // fast
                    const unsigned yb = tb / x_blocks;
                    for (unsigned r = 0; r < y_rows; ++r) {
                        const unsigned y = yb * y_rows + r;
                        const unsigned w = r % warps;
                        b.accessLine(w,
                                     in + Addr{y} * pitch +
                                         Addr{xb} * 128,
                                     false);
                        b.accessLine(w,
                                     out + Addr{y} * pitch +
                                         Addr{xb} * 128,
                                     true);
                    }
                });
        } else if (type == 1) {
            // Transpose: coalesced row reads, column scatter writes
            // whose low bits hold the slow y index — the valley stage.
            kernels.emplace_back(
                kernelParams(spec,
                             "pipe_transpose#" + std::to_string(s),
                             x_blocks * (n / y_rows)),
                [=](TbId tb, TraceBuilder &b) {
                    const unsigned tx = tb % x_blocks; // fast
                    const unsigned ty = tb / x_blocks; // slow
                    for (unsigned r = 0; r < y_rows; ++r) {
                        const unsigned y = ty * y_rows + r;
                        const unsigned w = r % warps;
                        b.accessLine(w,
                                     in + Addr{y} * pitch +
                                         Addr{tx} * 128,
                                     false);
                        b.accessStrided(w,
                                        out +
                                            Addr{tx} * 32 * pitch +
                                            Addr{y} * 4,
                                        pitch, 32, true);
                    }
                });
        } else {
            // Gather: random lines of the previous stage's output.
            const std::uint64_t fp =
                Addr{1} << bits::log2Ceil(Addr{n} * n * 4);
            kernels.emplace_back(
                kernelParams(spec, "pipe_gather#" + std::to_string(s),
                             std::max(1u, n * n / 4096)),
                [=](TbId tb, TraceBuilder &b) {
                    XorShiftRng rng = synthRng(7, seed, s, tb);
                    for (unsigned w = 0; w < warps; ++w)
                        for (unsigned i = 0; i < 4; ++i) {
                            std::vector<Addr> addrs;
                            addrs.reserve(32);
                            for (unsigned t = 0; t < 32; ++t)
                                addrs.push_back(in + (rng.next() &
                                                      (fp - 1)));
                            b.access(w, addrs, false);
                            b.accessLine(
                                w,
                                out + (Addr{tb} * warps + w) * 128,
                                true);
                        }
                });
        }
    }

    return std::make_unique<Workload>(
        synthInfo(spec, true,
                  std::to_string(n) + "x" + std::to_string(n) + "x" +
                      std::to_string(stages)),
        std::move(kernels));
}

} // namespace synth
} // namespace valley
