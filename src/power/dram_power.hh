/**
 * @file
 * Micron-style DRAM power model (paper Section V, "Calculating Memory
 * System Power for DDR3" [24], configured for the Hynix GDDR5 parts).
 *
 * The model charges four components, matching Fig. 16's breakdown:
 *  - background: always-on standby + refresh power per channel,
 *  - activate:   energy per ACT/PRE pair (row buffer fills),
 *  - read:       energy per read burst,
 *  - write:      energy per write burst.
 *
 * Event counts come from the FR-FCFS controllers. Energies are
 * system-level (all devices of a channel) and calibrated so that a
 * fully utilized 118 GB/s GDDR5 subsystem draws a few tens of Watts,
 * the scale of the paper's Fig. 16.
 */

#ifndef VALLEY_POWER_DRAM_POWER_HH
#define VALLEY_POWER_DRAM_POWER_HH

#include "dram/memory_controller.hh"

namespace valley {

/** Energy/power coefficients of the DRAM devices. */
struct DramPowerParams
{
    double backgroundWattsPerChannel = 3.0; ///< standby (IDD2N-class)
    double refreshWattsPerChannel = 0.4;    ///< distributed refresh
    /**
     * Per ACT/PRE pair, all devices of a channel (V * IDD0-overhead *
     * tRC * 8 GDDR5 chips ~ 40-80 nJ).
     */
    double activateEnergyNj = 55.0;
    double readEnergyNj = 12.0;             ///< per 128 B read burst
    double writeEnergyNj = 13.0;            ///< per 128 B write burst

    static DramPowerParams
    hynixGddr5()
    {
        return DramPowerParams{};
    }

    /** 3D-stacked DRAM: TSV I/O is cheaper per bit, core similar. */
    static DramPowerParams
    stacked3d()
    {
        DramPowerParams p;
        p.backgroundWattsPerChannel = 0.25; // per vault (64 vaults)
        p.refreshWattsPerChannel = 0.05;
        p.activateEnergyNj = 14.0;
        p.readEnergyNj = 8.0;
        p.writeEnergyNj = 9.0;
        return p;
    }
};

/** The four-component breakdown of Fig. 16. */
struct DramPowerBreakdown
{
    double backgroundW = 0.0;
    double activateW = 0.0;
    double readW = 0.0;
    double writeW = 0.0;

    bool operator==(const DramPowerBreakdown &) const = default;

    double
    totalW() const
    {
        return backgroundW + activateW + readW + writeW;
    }
};

/**
 * Average DRAM power over an interval.
 *
 * @param stats    aggregated controller event counts
 * @param channels number of channels (background multiplier)
 * @param seconds  wall-clock duration of the interval
 */
DramPowerBreakdown computeDramPower(const DramChannelStats &stats,
                                    unsigned channels, double seconds,
                                    const DramPowerParams &params);

} // namespace valley

#endif // VALLEY_POWER_DRAM_POWER_HH
