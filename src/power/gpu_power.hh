/**
 * @file
 * GPUWattch-style GPU power model (paper Section V, [23]).
 *
 * Reduced to the granularity the experiments need: static leakage
 * proportional to the SM count plus per-event dynamic energies for
 * instructions, L1/LLC accesses and NoC flits. Combined with the
 * Micron DRAM model it yields total system power for the
 * performance-per-Watt results (Fig. 17); the paper notes DRAM power
 * is up to 40% of the system total (footnote 3), which these defaults
 * respect.
 */

#ifndef VALLEY_POWER_GPU_POWER_HH
#define VALLEY_POWER_GPU_POWER_HH

#include <cstdint>

#include "power/dram_power.hh"

namespace valley {

/** Per-event GPU core/uncore energies and leakage. */
struct GpuPowerParams
{
    double staticWattsPerSm = 3.0;   ///< SM leakage + clock tree
    double staticWattsUncore = 9.0;  ///< LLC + NoC + MCs leakage
    /**
     * Dynamic energy per *thread-level* instruction (Table II counts
     * PTX instructions per thread; a warp instruction is ~32 of
     * these, so this is ~2 nJ per warp instruction — GPUWattch-scale).
     */
    double energyPerInstrNj = 0.06;
    double energyPerL1AccessNj = 0.4;
    double energyPerLlcAccessNj = 1.6;
    double energyPerNocFlitNj = 0.5;

    static GpuPowerParams
    gtx480Class()
    {
        return GpuPowerParams{};
    }
};

/** Dynamic event counts accumulated by the simulator. */
struct GpuActivityCounts
{
    std::uint64_t instructions = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t nocFlits = 0;
};

/** GPU (non-DRAM) power split. */
struct GpuPowerBreakdown
{
    double staticW = 0.0;
    double dynamicW = 0.0;

    bool operator==(const GpuPowerBreakdown &) const = default;

    double
    totalW() const
    {
        return staticW + dynamicW;
    }
};

/** Average GPU power over an interval of `seconds`. */
GpuPowerBreakdown computeGpuPower(const GpuActivityCounts &activity,
                                  unsigned num_sms, double seconds,
                                  const GpuPowerParams &params);

/** Total system power: GPU + DRAM (paper's perf/Watt denominator). */
double systemPowerW(const GpuPowerBreakdown &gpu,
                    const DramPowerBreakdown &dram);

} // namespace valley

#endif // VALLEY_POWER_GPU_POWER_HH
