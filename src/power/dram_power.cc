#include "power/dram_power.hh"

#include <cassert>

namespace valley {

DramPowerBreakdown
computeDramPower(const DramChannelStats &stats, unsigned channels,
                 double seconds, const DramPowerParams &params)
{
    DramPowerBreakdown out;
    if (seconds <= 0.0)
        return out;

    out.backgroundW =
        (params.backgroundWattsPerChannel +
         params.refreshWattsPerChannel) *
        static_cast<double>(channels);

    constexpr double nj = 1e-9;
    out.activateW = static_cast<double>(stats.activations) *
                    params.activateEnergyNj * nj / seconds;
    out.readW = static_cast<double>(stats.reads) *
                params.readEnergyNj * nj / seconds;
    out.writeW = static_cast<double>(stats.writes) *
                 params.writeEnergyNj * nj / seconds;
    return out;
}

} // namespace valley
