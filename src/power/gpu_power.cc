#include "power/gpu_power.hh"

namespace valley {

GpuPowerBreakdown
computeGpuPower(const GpuActivityCounts &activity, unsigned num_sms,
                double seconds, const GpuPowerParams &params)
{
    GpuPowerBreakdown out;
    out.staticW = params.staticWattsPerSm * num_sms +
                  params.staticWattsUncore;
    if (seconds <= 0.0)
        return out;

    constexpr double nj = 1e-9;
    const double dyn_j =
        static_cast<double>(activity.instructions) *
            params.energyPerInstrNj * nj +
        static_cast<double>(activity.l1Accesses) *
            params.energyPerL1AccessNj * nj +
        static_cast<double>(activity.llcAccesses) *
            params.energyPerLlcAccessNj * nj +
        static_cast<double>(activity.nocFlits) *
            params.energyPerNocFlitNj * nj;
    out.dynamicW = dyn_j / seconds;
    return out;
}

double
systemPowerW(const GpuPowerBreakdown &gpu, const DramPowerBreakdown &dram)
{
    return gpu.totalW() + dram.totalW();
}

} // namespace valley
