/**
 * @file
 * Memory trace representation for GPU-compute workloads.
 *
 * A workload is a sequence of kernels; a kernel is a grid of thread
 * blocks (TBs); a TB is a set of warps; each warp executes a sequence
 * of memory instructions. The memory coalescer (part of this module,
 * as in GPGPU-Sim it sits before the address mapper) merges the 32
 * per-thread accesses of one warp instruction into the minimal set of
 * 128 B line transactions — these transactions are "the memory
 * requests" of the paper's entropy analysis and the units entering
 * the L1/NoC/LLC/DRAM hierarchy.
 */

#ifndef VALLEY_WORKLOADS_TRACE_HH
#define VALLEY_WORKLOADS_TRACE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hh"

namespace valley {

/** One warp-level memory instruction after coalescing. */
struct MemInstr
{
    std::vector<Addr> lines; ///< line-aligned transaction addresses
    bool write = false;
    std::uint16_t gap = 0;   ///< compute cycles before this instr issues
};

/** The memory instruction stream of one warp. */
struct WarpTrace
{
    std::vector<MemInstr> instrs;
};

/** The trace of one thread block. */
struct TbTrace
{
    std::vector<WarpTrace> warps;

    /** Total coalesced transactions in the TB. */
    std::uint64_t
    requestCount() const
    {
        std::uint64_t n = 0;
        for (const auto &w : warps)
            for (const auto &i : w.instrs)
                n += i.lines.size();
        return n;
    }
};

/**
 * Coalesce per-thread byte addresses of one warp access into sorted,
 * de-duplicated line transactions.
 */
std::vector<Addr> coalesce(std::span<const Addr> thread_addrs,
                           unsigned line_bytes);

/**
 * Incremental builder used by the kernel generator callbacks.
 */
class TraceBuilder
{
  public:
    TraceBuilder(unsigned warps_per_tb, unsigned line_bytes,
                 unsigned compute_gap);

    /** Warp-level access from explicit per-thread byte addresses. */
    void access(unsigned warp, std::span<const Addr> thread_addrs,
                bool write);

    /**
     * Strided warp access: thread t touches base + t * stride bytes.
     * Covers both coalesced (|stride| <= 4) and scatter/gather
     * (|stride| >= line) patterns.
     */
    void accessStrided(unsigned warp, Addr base, std::int64_t stride,
                       unsigned threads, bool write);

    /** Fully coalesced access: a single line transaction. */
    void accessLine(unsigned warp, Addr line_addr, bool write);

    /** Extra compute cycles before the *next* access of `warp`. */
    void computeDelay(unsigned warp, unsigned cycles);

    /** Finish and move the accumulated trace out. */
    TbTrace take();

    unsigned lineBytes() const { return lineBytes_; }

  private:
    unsigned lineBytes_;
    unsigned computeGap;
    std::vector<unsigned> pendingGap;
    TbTrace tb;
};

} // namespace valley

#endif // VALLEY_WORKLOADS_TRACE_HH
