/**
 * @file
 * Entropy profiling of workloads (paper Section III-B, Figs. 5 & 10).
 *
 * Bridges the workload trace generators and the window-entropy
 * metric: gathers per-TB BVR vectors over the coalesced request
 * addresses (optionally after an address mapper, for Fig. 10),
 * computes per-kernel profiles with the TB window, and combines them
 * weighted by request count.
 *
 * The pipeline is batched and parallel: per-TB accumulation streams
 * through the bit-sliced `SlicedBvrAccumulator` with the mapper's
 * `CompiledTransform` fused into the batch loop, and
 * `profileWorkload` fans kernels — and large kernels, split into TB
 * ranges — over a `ThreadPool`. Every TB writes only its own
 * preallocated BVR slot and kernels combine in launch order, so the
 * parallel profile is bit-identical to the serial one
 * (`ProfileOptions::threads = 1`), which in turn is bit-identical to
 * the scalar `BvrAccumulator` path (see `tests/profiler_test.cc`).
 */

#ifndef VALLEY_WORKLOADS_PROFILER_HH
#define VALLEY_WORKLOADS_PROFILER_HH

#include "common/cancellation.hh"
#include "entropy/window_entropy.hh"
#include "mapping/address_mapper.hh"
#include "workloads/workload.hh"

namespace valley {
namespace workloads {

/** Profiling knobs. */
struct ProfileOptions
{
    unsigned window = 12;   ///< TB window w = #SMs (Section III-A)
    unsigned numBits = 30;  ///< physical address bits
    const AddressMapper *mapper = nullptr; ///< optional remapping
    EntropyMetric metric = EntropyMetric::BitProbability;

    /**
     * Worker threads for BVR accumulation and per-kernel profiling:
     * 1 = serial, 0 = one per hardware thread. Results are
     * bit-identical at any thread count.
     */
    unsigned threads = 0;

    /**
     * Optional cooperative cancellation token (non-owning; must
     * outlive the call). A profile has no meaningful partial result —
     * half the TBs is a *different* profile, not a degraded one — so
     * unlike `BimSearch` the profiler checks the token at each TB
     * range / kernel-combine boundary and throws `Cancelled`. The
     * caller's cell-level retry/poison machinery treats that like any
     * other cell failure.
     */
    const CancelToken *cancel = nullptr;
};

/** Per-bit entropy profile of a single kernel. */
EntropyProfile profileKernel(const Kernel &kernel,
                             const ProfileOptions &opts);

/**
 * Application-level profile: request-count weighted average of the
 * per-kernel profiles.
 */
EntropyProfile profileWorkload(const Workload &workload,
                               const ProfileOptions &opts);

} // namespace workloads
} // namespace valley

#endif // VALLEY_WORKLOADS_PROFILER_HH
