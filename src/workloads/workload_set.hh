/**
 * @file
 * `WorkloadSet` — a *set* of workloads as the mapping service's
 * first-class unit.
 *
 * The paper's Section IV-B methodology derives one BIM per workload,
 * but a deployed mapping — like the global RMP it compares against —
 * must serve many resident applications at once. The joint ("global")
 * BIM search therefore operates on a `WorkloadSet`: named members
 * (Table II abbreviations and/or `synth:` scenario specs) with a
 * canonical, order-insensitive identity.
 *
 * ## Canonical identity
 *
 * Construction canonicalizes every member (synth specs through
 * `synth::resolve(...).canonical()`, Table II abbreviations
 * validated against the registry), then sorts and deduplicates, so
 * `{MT, LU}` and `{LU, MT}` — or a synth spec with reordered
 * parameters — are the *same* set: same `members()` order, same
 * `key()`, same `hash()`. Every downstream consumer (joint search,
 * SBIM cache, result cache, benches) keys on that canonical identity,
 * which is what makes repeat grid runs hit their caches regardless of
 * how the set was spelled.
 *
 * `key()` percent-escapes each member with `escapeSpecField` before
 * joining with ',': synth specs legitimately contain commas
 * (`synth:hash_shuffle,fmb=64`), and unescaped they would make the
 * joined key — and the CSV cache lines built from it — ambiguous.
 */

#ifndef VALLEY_WORKLOADS_WORKLOAD_SET_HH
#define VALLEY_WORKLOADS_WORKLOAD_SET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace valley {
namespace workloads {

/**
 * Percent-escape the characters that act as separators in the
 * on-disk cache keys and key lists: '%', ',', ';', '|', newline and
 * carriage return. Injective (distinct inputs keep distinct
 * outputs), so escaped fields can be joined with any of those
 * separators without ambiguity.
 */
std::string escapeSpecField(const std::string &field);

/**
 * An order-insensitive set of named workloads.
 *
 * Immutable after construction; members are stored canonicalized,
 * sorted and deduplicated (see file comment). Throws
 * `std::invalid_argument` on an empty list, an unknown Table II
 * abbreviation, or an invalid synth spec.
 */
class WorkloadSet
{
  public:
    explicit WorkloadSet(std::vector<std::string> members);

    /**
     * Parse a comma-separated member list, e.g.
     * `"MT,LU,synth:hash_shuffle,fmb=64,tbs=32"`. Because synth spec
     * parameters also use commas, a fragment of the form `key=value`
     * is re-attached to the preceding `synth:` member rather than
     * starting a new one (Table II abbreviations never contain '=').
     */
    static WorkloadSet parse(const std::string &list);

    /**
     * The raw member-splitting step of `parse`, exposed separately:
     * the member strings in *input order*, before canonicalization,
     * sorting or deduplication. This is the order a user's positional
     * side-channel data (e.g. `valley_search --weights`) refers to,
     * which `canonicalMemberWeights` then maps onto the canonical
     * `members()` order.
     */
    static std::vector<std::string> splitList(const std::string &list);

    /** Canonical members, sorted; the set's defining order. */
    const std::vector<std::string> &members() const { return members_; }

    std::size_t size() const { return members_.size(); }

    /**
     * Canonical identity string: `escapeSpecField(member)` joined
     * with ','. Two sets compare equal iff their keys are equal.
     */
    const std::string &key() const { return key_; }

    /** FNV-1a hash of `key()` — stable across runs and platforms. */
    std::uint64_t hash() const { return hash_; }

    /** Short display/cache id: "set-<16 hex digits of hash()>". */
    std::string shortId() const;

    /**
     * Build every member at `scale`, in `members()` order. Generators
     * are deterministic, so two builds of the same set are
     * request-for-request identical.
     */
    std::vector<std::unique_ptr<Workload>> build(double scale) const;

  private:
    std::vector<std::string> members_;
    std::string key_;
    std::uint64_t hash_ = 0;
};

/**
 * Map per-member weights given in raw input order (one per entry of
 * `raw_members`, e.g. a `--weights` list matched to a `--set` list)
 * onto the canonical `members()` order of
 * `WorkloadSet(raw_members)`. Duplicate spellings of the same member
 * sum their weights — `{MT, MT}` with `{1, 2}` weights MT at 3.
 * Throws `std::invalid_argument` on a size mismatch or a
 * non-positive weight.
 */
std::vector<double> canonicalMemberWeights(
    const std::vector<std::string> &raw_members,
    const std::vector<double> &weights);

} // namespace workloads
} // namespace valley

#endif // VALLEY_WORKLOADS_WORKLOAD_SET_HH
