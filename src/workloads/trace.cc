#include "workloads/trace.hh"

#include <algorithm>
#include <cassert>

namespace valley {

std::vector<Addr>
coalesce(std::span<const Addr> thread_addrs, unsigned line_bytes)
{
    std::vector<Addr> lines;
    lines.reserve(thread_addrs.size());
    for (Addr a : thread_addrs)
        lines.push_back(a / line_bytes * line_bytes);
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    return lines;
}

TraceBuilder::TraceBuilder(unsigned warps_per_tb, unsigned line_bytes,
                           unsigned compute_gap)
    : lineBytes_(line_bytes), computeGap(compute_gap),
      pendingGap(warps_per_tb, 0)
{
    tb.warps.resize(warps_per_tb);
}

void
TraceBuilder::access(unsigned warp, std::span<const Addr> thread_addrs,
                     bool write)
{
    assert(warp < tb.warps.size());
    MemInstr instr;
    instr.lines = coalesce(thread_addrs, lineBytes_);
    if (instr.lines.empty())
        return;
    instr.write = write;
    instr.gap = static_cast<std::uint16_t>(
        std::min<unsigned>(computeGap + pendingGap[warp], 0xFFFF));
    pendingGap[warp] = 0;
    tb.warps[warp].instrs.push_back(std::move(instr));
}

void
TraceBuilder::accessStrided(unsigned warp, Addr base, std::int64_t stride,
                            unsigned threads, bool write)
{
    std::vector<Addr> addrs;
    addrs.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        const std::int64_t a = static_cast<std::int64_t>(base) +
                               static_cast<std::int64_t>(t) * stride;
        assert(a >= 0);
        addrs.push_back(static_cast<Addr>(a));
    }
    access(warp, addrs, write);
}

void
TraceBuilder::accessLine(unsigned warp, Addr line_addr, bool write)
{
    const Addr line = line_addr / lineBytes_ * lineBytes_;
    access(warp, std::span<const Addr>(&line, 1), write);
}

void
TraceBuilder::computeDelay(unsigned warp, unsigned cycles)
{
    assert(warp < tb.warps.size());
    pendingGap[warp] += cycles;
}

TbTrace
TraceBuilder::take()
{
    return std::move(tb);
}

} // namespace valley
