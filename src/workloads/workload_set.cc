#include "workloads/workload_set.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "common/fnv.hh"
#include "synth/registry.hh"
#include "synth/spec.hh"

namespace valley {
namespace workloads {

std::string
escapeSpecField(const std::string &field)
{
    static const char *hex = "0123456789ABCDEF";
    std::string out;
    out.reserve(field.size());
    for (char ch : field) {
        switch (ch) {
          case '%':
          case ',':
          case ';':
          case '|':
          case '\n':
          case '\r':
            out += '%';
            out += hex[(static_cast<unsigned char>(ch) >> 4) & 0xF];
            out += hex[static_cast<unsigned char>(ch) & 0xF];
            break;
          default:
            out += ch;
        }
    }
    return out;
}

namespace {

/** Canonical form of one member name; throws on unknown names. */
std::string
canonicalMember(const std::string &name)
{
    if (synth::isSynthSpec(name))
        return synth::resolve(name).canonical();
    const auto &all = allSet();
    if (std::find(all.begin(), all.end(), name) == all.end())
        throw std::invalid_argument(
            "WorkloadSet: unknown workload \"" + name +
            "\" (not a Table II abbreviation or synth: spec)");
    return name;
}

} // namespace

WorkloadSet::WorkloadSet(std::vector<std::string> members)
{
    if (members.empty())
        throw std::invalid_argument("WorkloadSet: empty member list");
    members_.reserve(members.size());
    for (const std::string &m : members)
        members_.push_back(canonicalMember(m));
    std::sort(members_.begin(), members_.end());
    members_.erase(std::unique(members_.begin(), members_.end()),
                   members_.end());

    for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i)
            key_ += ',';
        key_ += escapeSpecField(members_[i]);
    }
    hash_ = bits::fnv1a(key_);
}

std::vector<std::string>
WorkloadSet::splitList(const std::string &list)
{
    std::vector<std::string> members;
    std::string fragment;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        fragment = list.substr(start, end - start);
        if (!fragment.empty()) {
            // `key=value` fragments are synth spec parameters split
            // off by the comma scan: glue them back onto the
            // preceding synth member.
            if (fragment.find('=') != std::string::npos &&
                !synth::isSynthSpec(fragment)) {
                if (members.empty() ||
                    !synth::isSynthSpec(members.back()))
                    throw std::invalid_argument(
                        "WorkloadSet: parameter fragment \"" +
                        fragment + "\" without a preceding synth: "
                        "member");
                members.back() += ',' + fragment;
            } else {
                members.push_back(fragment);
            }
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return members;
}

WorkloadSet
WorkloadSet::parse(const std::string &list)
{
    return WorkloadSet(splitList(list));
}

std::string
WorkloadSet::shortId() const
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "set-%016llx",
                  static_cast<unsigned long long>(hash_));
    return buf;
}

std::vector<std::unique_ptr<Workload>>
WorkloadSet::build(double scale) const
{
    std::vector<std::unique_ptr<Workload>> out;
    out.reserve(members_.size());
    for (const std::string &m : members_)
        out.push_back(make(m, scale));
    return out;
}

std::vector<double>
canonicalMemberWeights(const std::vector<std::string> &raw_members,
                       const std::vector<double> &weights)
{
    if (raw_members.size() != weights.size())
        throw std::invalid_argument(
            "canonicalMemberWeights: " +
            std::to_string(weights.size()) + " weight(s) for " +
            std::to_string(raw_members.size()) + " set member(s)");
    const WorkloadSet set(raw_members);
    std::map<std::string, double> acc;
    for (std::size_t i = 0; i < raw_members.size(); ++i) {
        if (!(weights[i] > 0.0))
            throw std::invalid_argument(
                "canonicalMemberWeights: weight " +
                std::to_string(weights[i]) + " for \"" +
                raw_members[i] + "\" must be > 0");
        acc[canonicalMember(raw_members[i])] += weights[i];
    }
    std::vector<double> out;
    out.reserve(set.size());
    for (const std::string &m : set.members())
        out.push_back(acc.at(m));
    return out;
}

} // namespace workloads
} // namespace valley
