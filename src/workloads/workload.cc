#include "workloads/workload.hh"

#include <cassert>

namespace valley {

Kernel::Kernel(KernelParams params, TraceFn fn_)
    : params_(std::move(params)), fn(std::move(fn_))
{
    assert(params_.numTbs >= 1);
    assert(params_.warpsPerTb >= 1);
}

TbTrace
Kernel::trace(TbId tb) const
{
    assert(tb < params_.numTbs);
    TraceBuilder builder(params_.warpsPerTb, workloads::kLineBytes,
                         params_.computeGap);
    fn(tb, builder);
    return builder.take();
}

std::uint64_t
Kernel::countRequests() const
{
    std::uint64_t n = 0;
    for (TbId tb = 0; tb < params_.numTbs; ++tb)
        n += trace(tb).requestCount();
    return n;
}

Workload::Workload(WorkloadInfo info, std::vector<Kernel> kernels)
    : info_(std::move(info)), kernels_(std::move(kernels))
{
    assert(!kernels_.empty());
}

std::uint64_t
Workload::countRequests() const
{
    std::uint64_t n = 0;
    for (const Kernel &k : kernels_)
        n += k.countRequests();
    return n;
}

} // namespace valley
