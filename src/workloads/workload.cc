#include "workloads/workload.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace valley {

Kernel::Kernel(KernelParams params, TraceFn fn_)
    : params_(std::move(params)), fn(std::move(fn_))
{
    // A zero-TB (or zero-warp) launch would silently contribute no
    // requests — and in Release builds an assert would compile out —
    // so reject it outright. Generators that scale their dimensions
    // must clamp (see workloads::scaled).
    if (params_.numTbs < 1)
        throw std::invalid_argument("kernel '" + params_.name +
                                    "' launched with zero TBs");
    if (params_.warpsPerTb < 1)
        throw std::invalid_argument("kernel '" + params_.name +
                                    "' launched with zero warps/TB");
}

TbTrace
Kernel::trace(TbId tb) const
{
    assert(tb < params_.numTbs);
    TraceBuilder builder(params_.warpsPerTb, workloads::kLineBytes,
                         params_.computeGap);
    fn(tb, builder);
    return builder.take();
}

std::uint64_t
Kernel::countRequests() const
{
    std::uint64_t n = 0;
    for (TbId tb = 0; tb < params_.numTbs; ++tb)
        n += trace(tb).requestCount();
    return n;
}

Workload::Workload(WorkloadInfo info, std::vector<Kernel> kernels)
    : info_(std::move(info)), kernels_(std::move(kernels))
{
    assert(!kernels_.empty());
}

std::uint64_t
Workload::countRequests() const
{
    std::uint64_t n = 0;
    for (const Kernel &k : kernels_)
        n += k.countRequests();
    return n;
}

namespace workloads {

unsigned
scaled(unsigned dim, double scale, unsigned quantum)
{
    assert(quantum >= 1);
    const auto raw = static_cast<unsigned>(std::lround(dim * scale));
    const unsigned q = std::max(raw / quantum, 1u) * quantum;
    assert(q >= quantum && q % quantum == 0);
    return q;
}

} // namespace workloads
} // namespace valley
