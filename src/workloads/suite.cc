/**
 * @file
 * The 16 GPU-compute benchmarks of Table II, reproduced as synthetic
 * trace generators (see DESIGN.md, "Substitutions").
 *
 * Valley benchmarks (MT, LU, GS, NW, LPS, SC, SRAD2, DWT2D, HS, SP)
 * share a structural property with their CUDA namesakes: the warp and
 * TB geometry keeps some block-index bits in the 256 B - 16 KB range
 * (address bits ~7-13) constant across the thread blocks that execute
 * concurrently, while sweeping higher-order bits. Under the BASE map
 * those are exactly the channel/bank bits, so concurrent requests
 * serialize on a few channels/banks — the paper's "entropy valley".
 * The generators realize this with column-major TB allocation and
 * column walks whose column-block index advances slower than the
 * paper's TB window (w = #SMs = 12).
 *
 * Non-valley benchmarks (FWT, NN, SPMV, LM, MUM, BFS) stream or
 * gather, which sweeps the low-order bits within every TB.
 */

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/rng.hh"
#include "synth/registry.hh"
#include "workloads/workload.hh"

namespace valley {
namespace workloads {
namespace {

/** Base addresses of the synthetic heap: 32 regions of 32 MB. */
constexpr Addr region(unsigned idx) { return Addr{idx} << 25; }

/** Deterministic per-(kernel,tb) RNG for irregular workloads. */
XorShiftRng
tbRng(std::uint64_t workload_id, std::uint64_t kernel_id, TbId tb)
{
    return XorShiftRng((workload_id << 40) ^ (kernel_id << 20) ^
                       (tb + 1));
}

// ---------------------------------------------------------------------
// MT — Matrix Transpose (CUDA SDK). 4 kernel launches (one per
// horizontal stripe of the matrix).
//
// The naive transpose: each warp reads one coalesced row segment of
// the input and scatters it into a column of the output — 32 write
// transactions with stride Rpitch per warp. The write stream (97 % of
// the traffic) carries the valley: its bits 7-11 encode the
// y-block, which is the *slow* TB grid dimension, so all concurrently
// running TBs store to the same channel under BASE (the classic
// "partition camping" pathology this paper's Fig. 2 illustrates).
// The output column index sweeps bits 12-20 inside every warp, so
// the row bits carry harvestable entropy for PAE/FAE.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeMT(double scale)
{
    const unsigned cols = 512;                    // input pitch 2 KB
    const unsigned rows = scaled(512, scale, 128);
    const unsigned pitch = cols * 4;
    const unsigned out_pitch = rows * 4;          // transposed pitch
    const unsigned stripe = rows / 4;             // rows per launch
    const unsigned tiles_x = cols / 32;           // fast TB dim
    const unsigned tiles_y = stripe / 8;          // slow TB dim

    std::vector<Kernel> kernels;
    for (unsigned launch = 0; launch < 4; ++launch) {
        const Addr in = region(0);
        const Addr out = region(2);
        const unsigned y_base = launch * stripe;
        KernelParams p;
        p.name = "transpose_naive#" + std::to_string(launch);
        p.numTbs = tiles_x * tiles_y;
        p.warpsPerTb = 8;
        p.computeGap = 6;
        p.instrsPerRequest = 134; // Table II: APKI 7.44
        kernels.emplace_back(p, [=](TbId tb, TraceBuilder &b) {
            const unsigned tx = tb % tiles_x; // fast
            const unsigned ty = tb / tiles_x; // slow -> valley bits
            for (unsigned w = 0; w < 8; ++w) {
                const unsigned y = y_base + ty * 8 + w;
                // Coalesced read of in[y][tx*32 .. +32): one line.
                b.accessLine(w, in + Addr{y} * pitch + Addr{tx} * 128,
                             false);
                // Scatter to out[tx*32+t][y]: 32 lines, stride Rpitch.
                b.accessStrided(w,
                                out + Addr{tx} * 32 * out_pitch +
                                    Addr{y} * 4,
                                out_pitch, 32, true);
            }
        });
    }

    return std::make_unique<Workload>(
        WorkloadInfo{"Transpose", "MT", "CUDA SDK", true,
                     "512x" + std::to_string(rows)},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// LU — LU Decomposition (CUDA SDK version in the paper). 1022 kernels.
//
// Right-looking panel factorization over an N x N double matrix
// (pitch 4 KB). Per iteration k: a "perimeter" kernel reads/writes
// pivot column k (uncoalesced, stride pitch; bits 7-11 are f(k),
// constant for the whole kernel) and a "panel update" kernel updates
// the next 32-column panel with coalesced row segments whose column-
// block bits are also f(k). The per-kernel valley position moves with
// k — the paper's observation that high-entropy bits move as the
// application iterates.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeLU(double scale)
{
    const unsigned n = scaled(512, scale, 64); // doubles; pitch 4 KB
    const unsigned pitch = 512 * 8;
    const Addr a = region(4);
    const unsigned iters = n - 1;

    std::vector<Kernel> kernels;
    kernels.reserve(iters * 2);
    for (unsigned k = 0; k < iters; ++k) {
        const unsigned m = n - 1 - k; // trailing size
        const unsigned col_line = (k * 8) / kLineBytes * kLineBytes;

        // Perimeter: scale pivot column below the diagonal.
        {
            KernelParams p;
            p.name = "lud_perimeter#" + std::to_string(k);
            p.numTbs = std::max(1u, (m + 255) / 256);
            p.warpsPerTb = 8;
            p.computeGap = 8;
            p.instrsPerRequest = 81; // Table II: APKI 12.32
            kernels.emplace_back(p, [=](TbId tb, TraceBuilder &b) {
                for (unsigned w = 0; w < 8; ++w) {
                    const unsigned r0 = k + 1 + tb * 256 + w * 32;
                    if (r0 >= n)
                        break;
                    // Read pivot row head (coalesced, shared).
                    b.accessLine(w, a + Addr{k} * pitch + col_line,
                                 false);
                    // Read+write column k rows r0..r0+31 (stride pitch).
                    b.accessStrided(w, a + Addr{r0} * pitch + col_line,
                                    pitch, std::min(32u, n - r0),
                                    false);
                    b.accessStrided(w, a + Addr{r0} * pitch + col_line,
                                    pitch, std::min(32u, n - r0), true);
                }
            });
        }

        // Panel update: A[r][j] -= L[r][k] * U[k][j] for the next
        // 32-wide column panel, coalesced row segments.
        {
            const unsigned j0 = k + 1;
            const unsigned panel_line = (j0 * 8) / kLineBytes * kLineBytes;
            KernelParams p;
            p.name = "lud_internal#" + std::to_string(k);
            p.numTbs = std::max(1u, (m + 31) / 32);
            p.warpsPerTb = 8;
            p.computeGap = 8;
            p.instrsPerRequest = 81;
            kernels.emplace_back(p, [=](TbId tb, TraceBuilder &b) {
                const unsigned r0 = k + 1 + tb * 32;
                if (r0 >= n)
                    return;
                const unsigned nr = std::min(32u, n - r0);
                for (unsigned r = 0; r < nr; ++r) {
                    const unsigned warp = r % 8;
                    // Multiplier L[r0+r][k] (uncoalesced column bit).
                    b.accessLine(warp,
                                 a + Addr{r0 + r} * pitch + col_line,
                                 false);
                    // Pivot row segment U[k][j0..] (shared across TBs).
                    b.accessLine(warp, a + Addr{k} * pitch + panel_line,
                                 false);
                    // Row segment of the panel: 32 doubles = 2 lines.
                    b.accessStrided(warp,
                                    a + Addr{r0 + r} * pitch +
                                        Addr{j0} * 8,
                                    8, 32, false);
                    b.accessStrided(warp,
                                    a + Addr{r0 + r} * pitch +
                                        Addr{j0} * 8,
                                    8, 32, true);
                }
            });
        }
    }

    return std::make_unique<Workload>(
        WorkloadInfo{"LU Decomposition", "LU", "CUDA SDK", true,
                     std::to_string(n) + "x" + std::to_string(n)},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// GS — Gaussian Elimination (Rodinia). 510 kernels... 254 here
// (two kernels per iteration of a 128x128 system; the paper's input
// launches 510 — see EXPERIMENTS.md). 128x128 floats, pitch 512 B:
// the 64 KB matrix fits a single LLC slice, so DRAM traffic nearly
// vanishes after warmup (Table II MPKI 0.01) and speedups stay small.
// The per-kernel pivot column pins bits 7-8 (the entropy valley);
// PM's row-bit donors are entirely dead.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeGS(double scale)
{
    const unsigned n = scaled(128, scale, 32);
    const unsigned pitch = 512;
    const Addr a = region(6);
    const Addr mvec = region(6) + (1u << 20);
    const unsigned iters = n - 1;

    std::vector<Kernel> kernels;
    kernels.reserve(iters * 2);
    for (unsigned k = 0; k < iters; ++k) {
        const unsigned m = n - 1 - k;
        const unsigned col_line = (k * 4) / kLineBytes * kLineBytes;

        KernelParams p1;
        p1.name = "gs_fan1#" + std::to_string(k);
        p1.numTbs = std::max(1u, (m + 255) / 256);
        p1.warpsPerTb = 8;
        p1.computeGap = 12;
        p1.instrsPerRequest = 110; // Table II: APKI 9.09
        kernels.emplace_back(p1, [=](TbId tb, TraceBuilder &b) {
            for (unsigned w = 0; w < 8; ++w) {
                const unsigned r0 = k + 1 + tb * 256 + w * 32;
                if (r0 >= n)
                    break;
                b.accessStrided(w, a + Addr{r0} * pitch + col_line,
                                pitch, std::min(32u, n - r0), false);
                b.accessStrided(w, mvec + Addr{r0} * 4, 4,
                                std::min(32u, n - r0), true);
            }
        });

        KernelParams p2;
        p2.name = "gs_fan2#" + std::to_string(k);
        p2.numTbs = std::max(1u, (m + 31) / 32);
        p2.warpsPerTb = 8;
        p2.computeGap = 12;
        p2.instrsPerRequest = 110;
        kernels.emplace_back(p2, [=](TbId tb, TraceBuilder &b) {
            const unsigned r0 = k + 1 + tb * 32;
            if (r0 >= n)
                return;
            const unsigned nr = std::min(32u, n - r0);
            for (unsigned r = 0; r < nr; ++r) {
                const unsigned warp = r % 8;
                b.accessLine(warp, mvec + Addr{r0 + r} * 4, false);
                // Pivot row + own row, coalesced (32 floats = 1 line).
                b.accessLine(warp, a + Addr{k} * pitch + col_line,
                             false);
                b.accessStrided(warp,
                                a + Addr{r0 + r} * pitch +
                                    Addr{k + 1} * 4,
                                4, 32, false);
                b.accessStrided(warp,
                                a + Addr{r0 + r} * pitch +
                                    Addr{k + 1} * 4,
                                4, 32, true);
            }
        });
    }

    return std::make_unique<Workload>(
        WorkloadInfo{"Gaussian", "GS", "Rodinia", true,
                     std::to_string(n) + "x" + std::to_string(n)},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// NW — Needleman-Wunsch (Rodinia). 255 diagonal kernel launches
// (2N-1 for N=128 cell rows, matching Table II's kernel count).
//
// The DP score matrix uses skewed (diagonal-major, cell-strided)
// storage, the classic wavefront layout: cell (i, d-i) lives at
// S + i * DSTRIDE + d*4. Per kernel, every access's bits 7-10 are
// f(d/32) — pinned for the whole kernel — while the cell index i
// sweeps the high bits: a deep per-kernel entropy valley whose
// position moves with d, exactly the "entropy moves as the
// application iterates" behavior the paper describes.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeNW(double scale)
{
    const unsigned n = scaled(128, scale, 32); // cell rows
    const unsigned ndiags = 2 * n - 1;
    // Skewed-row stride: 2 KB holds all 2N-1 diagonals of one cell
    // row. Rows are allocated in 16-row blocks, each starting on a
    // fresh 1 MB region (pooled allocator behavior): the block index
    // lands in address bits 20-22, real *row-bit* entropy that PAE can
    // harvest, while bits 18-19 stay dead so PM's lowest row-bit
    // donors still find nothing.
    const unsigned dstride = 2048;
    const auto skew_row = [dstride](unsigned i) {
        return (Addr{i / 16} << 20) + Addr{i % 16} * dstride;
    };
    const auto ref_row = [](unsigned i) {
        return (Addr{i / 16} << 20) + Addr{i % 16} * 4096 + (1u << 19);
    };
    const Addr skew = region(8);
    const Addr ref = region(8) + (1u << 24);

    std::vector<Kernel> kernels;
    for (unsigned d = 0; d < ndiags; ++d) {
        const unsigned lo = d < n ? 0 : d - n + 1;
        const unsigned hi = std::min(d, n - 1);
        const unsigned cells = hi - lo + 1;
        const Addr dcol = (Addr{d} * 4) / 128 * 128;       // this diag
        const Addr pcol = d ? (Addr{d - 1} * 4) / 128 * 128 : 0;
        KernelParams p;
        p.name = "nw_diag#" + std::to_string(d);
        p.numTbs = (cells + 31) / 32;
        p.warpsPerTb = 2;
        p.computeGap = 8;
        p.instrsPerRequest = 190; // Table II: APKI 5.25
        kernels.emplace_back(p, [=](TbId tb, TraceBuilder &b) {
            const Addr ppcol =
                d >= 2 ? (Addr{d - 2} * 4) / 128 * 128 : 0;
            for (unsigned w = 0; w < 2; ++w) {
                const unsigned i0 = lo + tb * 32 + w * 16;
                if (i0 > hi)
                    break;
                const unsigned cnt = std::min(16u, hi - i0 + 1);
                std::vector<Addr> prev, prev2, refs, cur;
                for (unsigned t = 0; t < cnt; ++t) {
                    const unsigned i = i0 + t;
                    // Previous two diagonals (left/up/diag neighbors).
                    prev.push_back(skew + skew_row(i) + pcol);
                    if (d >= 2)
                        prev2.push_back(skew + skew_row(i) + ppcol);
                    // Reference ref[i][d-i] in 4 KB-pitch row blocks.
                    refs.push_back(ref + ref_row(i) +
                                   Addr{d - std::min(d, i)} * 4);
                    // This diagonal's cell.
                    cur.push_back(skew + skew_row(i) + dcol);
                }
                b.access(w, prev, false);
                if (d >= 2)
                    b.access(w, prev2, false);
                b.access(w, refs, false);
                b.access(w, cur, true);
            }
        });
    }

    return std::make_unique<Workload>(
        WorkloadInfo{"Needle", "NW", "Rodinia", true,
                     std::to_string(n) + "x" + std::to_string(n)},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// LPS — 3D Laplace solver. 2 kernels over a 256x256xZ float grid
// (row pitch 1 KB, plane 256 KB). The TB grid is (yb fast, xb slow,
// z slowest): each TB handles a 32x4 xy tile of one plane, so the
// x-block bits 7-9 form the valley and the plane index z is constant
// across the TB window — the z-plane bits (18+) carry almost no
// *window* entropy, which starves PM's narrow donors, while the
// y bits (10-15) keep PAE supplied.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeLPS(double scale)
{
    const unsigned nx = 256, ny = 256;
    const unsigned nz = scaled(16, scale, 4);
    const unsigned pitchY = nx * 4;
    const unsigned pitchZ = nx * ny * 4;
    const unsigned x_blocks = nx / 32;
    const unsigned y_blocks = ny / 4;

    std::vector<Kernel> kernels;
    for (unsigned launch = 0; launch < 2; ++launch) {
        const Addr in = region(launch ? 12 : 10);
        const Addr out = region(launch ? 10 : 12);
        KernelParams p;
        p.name = "lps_jacobi#" + std::to_string(launch);
        p.numTbs = x_blocks * y_blocks * nz;
        p.warpsPerTb = 4; // 32x4 tile
        p.computeGap = 10;
        p.instrsPerRequest = 441; // Table II: APKI 2.27
        kernels.emplace_back(p, [=](TbId tb, TraceBuilder &b) {
            const unsigned yb = tb % y_blocks;             // fast
            const unsigned xb = (tb / y_blocks) % x_blocks; // slow
            const unsigned z = tb / (y_blocks * x_blocks); // slowest
            for (unsigned w = 0; w < 4; ++w) {
                const unsigned y = yb * 4 + w;
                const Addr c = in + Addr{z} * pitchZ +
                               Addr{y} * pitchY + Addr{xb} * 128;
                b.accessLine(w, c, false);
                if (y + 1 < ny)
                    b.accessLine(w, c + pitchY, false);
                if (y >= 1)
                    b.accessLine(w, c - pitchY, false);
                if (z + 1 < nz)
                    b.accessLine(w, c + pitchZ, false);
                if (z >= 1)
                    b.accessLine(w, c - pitchZ, false);
                b.accessLine(w,
                             out + Addr{z} * pitchZ +
                                 Addr{y} * pitchY + Addr{xb} * 128,
                             true);
            }
        });
    }

    return std::make_unique<Workload>(
        WorkloadInfo{"Laplace", "LPS", "GPU microbench suite", true,
                     "256x256x" + std::to_string(nz)},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// SC — StreamCluster (Rodinia). 50 evaluation rounds over a
// point-major coefficient matrix (512 points x 256 dims, pitch 1 KB).
// Each round evaluates two rotating 32-dim blocks: TBs own a dim
// block (slow: the valley bits 7-9) and walk 16-point blocks (fast).
// The active span is 512 KB and the point-block index crosses bit 18
// slower than the TB window, so PM's donors are again mostly dead.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeSC(double scale)
{
    const unsigned dims = 256;    // pitch 1 KB
    const unsigned points = scaled(512, scale, 128);
    const unsigned pitch = dims * 4;
    const unsigned pt_blocks = points / 16;  // fast dim
    const unsigned dim_blocks_per_round = 2; // rotating subset
    const unsigned passes = 2;               // distance + assignment

    std::vector<Kernel> kernels;
    for (unsigned round = 0; round < 50; ++round) {
        const Addr pts = region(14);
        const unsigned db0 = (round * dim_blocks_per_round) % 8;
        KernelParams p;
        p.name = "sc_pgain#" + std::to_string(round);
        p.numTbs = pt_blocks * dim_blocks_per_round;
        p.warpsPerTb = 4;
        p.computeGap = 10;
        p.instrsPerRequest = 236; // Table II: APKI 4.24
        kernels.emplace_back(p, [=](TbId tb, TraceBuilder &b) {
            const unsigned pb = tb % pt_blocks;       // fast
            const unsigned db = db0 + tb / pt_blocks; // slow
            for (unsigned pass = 0; pass < passes; ++pass) {
                for (unsigned i = 0; i < 16; ++i) {
                    const unsigned point = pb * 16 + i;
                    const unsigned warp = i % 4;
                    // 32 consecutive dims of one point: one line.
                    b.accessLine(warp,
                                 pts + Addr{point} * pitch +
                                     Addr{db} * 128,
                                 false);
                }
            }
        });
    }

    return std::make_unique<Workload>(
        WorkloadInfo{"StreamCluster", "SC", "Rodinia", true,
                     std::to_string(points) + "x256"},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// SRAD2 — Srad v2 (Rodinia). 4 kernels (2 iterations x gradient +
// update) over a 1024x128 float image (pitch 4 KB). Column-major TB
// allocation keeps the x-block bits (7-11) constant across concurrent
// TBs; N/S neighbors sweep the row bits 12-18, mostly out of reach
// of PM's channel donors.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeSRAD2(double scale)
{
    const unsigned nx = 1024;
    const unsigned ny = scaled(128, scale, 32);
    const unsigned rows_per_tb = 8;
    const unsigned pitch = nx * 4;
    const unsigned x_blocks = nx / 32;
    const unsigned y_blocks = ny / rows_per_tb;
    const Addr img = region(16);
    const Addr dn = region(16) + (1u << 22);
    const Addr ds = region(16) + (1u << 23);

    std::vector<Kernel> kernels;
    for (unsigned iter = 0; iter < 2; ++iter) {
        // Gradient kernel: read 5-point stencil, write two gradients.
        KernelParams p1;
        p1.name = "srad2_grad#" + std::to_string(iter);
        p1.numTbs = x_blocks * y_blocks;
        p1.warpsPerTb = 8;
        p1.computeGap = 8;
        p1.instrsPerRequest = 304; // Table II: APKI 3.29
        kernels.emplace_back(p1, [=](TbId tb, TraceBuilder &b) {
            const unsigned yb = tb % y_blocks; // fast
            const unsigned xb = tb / y_blocks; // slow
            for (unsigned r = 0; r < rows_per_tb; ++r) {
                const unsigned y = yb * rows_per_tb + r;
                const unsigned warp = r % 8;
                const Addr c =
                    img + Addr{y} * pitch + Addr{xb} * 128;
                b.accessLine(warp, c, false);
                if (y + 1 < ny)
                    b.accessLine(warp, c + pitch, false);
                if (y >= 1)
                    b.accessLine(warp, c - pitch, false);
                b.accessLine(warp,
                             dn + Addr{y} * pitch + Addr{xb} * 128,
                             true);
                b.accessLine(warp,
                             ds + Addr{y} * pitch + Addr{xb} * 128,
                             true);
            }
        });

        // Update kernel: narrower access mix (this is the kernel shown
        // separately as SRAD2-K1 in Fig. 5h).
        KernelParams p2;
        p2.name = "srad2_update#" + std::to_string(iter);
        p2.numTbs = x_blocks * y_blocks;
        p2.warpsPerTb = 8;
        p2.computeGap = 8;
        p2.instrsPerRequest = 304;
        kernels.emplace_back(p2, [=](TbId tb, TraceBuilder &b) {
            const unsigned yb = tb % y_blocks;
            const unsigned xb = tb / y_blocks;
            for (unsigned r = 0; r < rows_per_tb; ++r) {
                const unsigned y = yb * rows_per_tb + r;
                const unsigned warp = r % 8;
                b.accessLine(warp,
                             dn + Addr{y} * pitch + Addr{xb} * 128,
                             false);
                b.accessLine(warp,
                             ds + Addr{y} * pitch + Addr{xb} * 128,
                             false);
                b.accessLine(warp,
                             img + Addr{y} * pitch + Addr{xb} * 128,
                             true);
            }
        });
    }

    return std::make_unique<Workload>(
        WorkloadInfo{"Srad v2", "SRAD2", "Rodinia", true,
                     "1024x" + std::to_string(ny)},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// DWT2D (Rodinia). 10 kernels: 5 decomposition levels x (horizontal +
// vertical pass) on a 1024x512 float image (pitch 4 KB). The access
// stride doubles per level, moving the valley across the address map
// — the paper's example of intra-application entropy variation
// (Fig. 5i/5j).
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeDWT2D(double scale)
{
    const unsigned nx = 1024;
    const unsigned ny = scaled(512, scale, 32);
    const unsigned pitch = nx * 4;
    const Addr img = region(18);
    const Addr tmp = region(18) + (1u << 24);

    std::vector<Kernel> kernels;
    for (unsigned level = 0; level < 5; ++level) {
        const unsigned w = nx >> level;
        const unsigned h = ny >> level;
        const unsigned x_blocks = std::max(1u, w / 32);
        const unsigned y_blocks = std::max(1u, h / 32);

        // Horizontal pass: coalesced row segments, column-block slow.
        KernelParams ph;
        ph.name = "dwt_h#" + std::to_string(level);
        ph.numTbs = x_blocks * y_blocks;
        ph.warpsPerTb = 8;
        ph.computeGap = 10;
        ph.instrsPerRequest = 641; // Table II: APKI 1.56
        kernels.emplace_back(ph, [=](TbId tb, TraceBuilder &b) {
            const unsigned yb = tb % y_blocks;
            const unsigned xb = tb / y_blocks;
            for (unsigned r = 0; r < 32 && yb * 32 + r < h; ++r) {
                const unsigned y = yb * 32 + r;
                const unsigned warp = r % 8;
                b.accessLine(warp,
                             img + Addr{y} * pitch + Addr{xb} * 128,
                             false);
                b.accessLine(warp,
                             tmp + Addr{y} * pitch + Addr{xb} * 128,
                             true);
            }
        });

        // Vertical pass: column walk with stride pitch * 2^level.
        KernelParams pv;
        pv.name = "dwt_v#" + std::to_string(level);
        pv.numTbs = x_blocks * y_blocks;
        pv.warpsPerTb = 8;
        pv.computeGap = 10;
        pv.instrsPerRequest = 641;
        kernels.emplace_back(pv, [=](TbId tb, TraceBuilder &b) {
            const unsigned yb = tb % y_blocks;
            const unsigned xb = tb / y_blocks;
            const unsigned stride = pitch << level;
            for (unsigned c = 0; c < 4; ++c) {
                const unsigned warp = c % 8;
                const Addr base = tmp + Addr{yb} * 32 * stride +
                                  Addr{xb} * 128 + Addr{c} * 32;
                if (yb * 32 + 31 < h) {
                    b.accessStrided(warp, base, stride, 32, false);
                    b.accessStrided(warp, base, stride, 32, true);
                }
            }
        });
    }

    return std::make_unique<Workload>(
        WorkloadInfo{"DWT2D", "DWT2D", "Rodinia", true,
                     "1024x" + std::to_string(ny)},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// HS — Hotspot (Rodinia). 1 kernel; heavily tiled/pyramidal, so most
// traffic hits the L1 after the initial tile load (Table II MPKI
// 0.08). Column-major TB allocation gives a shallow valley.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeHS(double scale)
{
    const unsigned nx = 512;
    const unsigned ny = scaled(512, scale, 32);
    const unsigned pitch = nx * 4;
    const unsigned x_blocks = nx / 32;
    const unsigned y_blocks = ny / 32;
    const Addr temp = region(20);
    const Addr power = region(20) + (1u << 22);
    const Addr out = region(20) + (1u << 23);

    KernelParams p;
    p.name = "hotspot";
    p.numTbs = x_blocks * y_blocks;
    p.warpsPerTb = 8;
    p.computeGap = 120; // compute-bound pyramid iterations
    p.instrsPerRequest = 1408; // Table II: APKI 0.71
    std::vector<Kernel> kernels;
    kernels.emplace_back(p, [=](TbId tb, TraceBuilder &b) {
        const unsigned yb = tb % y_blocks;
        const unsigned xb = tb / y_blocks;
        // Pyramid: 4 sweeps over the same tile; sweeps 1-3 hit L1.
        for (unsigned sweep = 0; sweep < 4; ++sweep) {
            for (unsigned r = 0; r < 32; ++r) {
                const unsigned y = yb * 32 + r;
                const unsigned warp = r % 8;
                b.accessLine(warp,
                             temp + Addr{y} * pitch + Addr{xb} * 128,
                             false);
                if (sweep == 0)
                    b.accessLine(warp,
                                 power + Addr{y} * pitch +
                                     Addr{xb} * 128,
                                 false);
                if (sweep == 3)
                    b.accessLine(warp,
                                 out + Addr{y} * pitch +
                                     Addr{xb} * 128,
                                 true);
            }
        }
    });

    return std::make_unique<Workload>(
        WorkloadInfo{"Hotspot", "HS", "Rodinia", true,
                     "512x" + std::to_string(ny)},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// SP — Scalar Product (CUDA SDK). 1 kernel. Batched dot products over
// a pair-major coefficient matrix (512 pairs as columns, pitch 2 KB):
// TBs own 32-pair column blocks (slow) and sweep element chunks
// (fast), the same partition-camping shape as MT's reads.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeSP(double scale)
{
    const unsigned pairs = 512;   // pitch 2 KB
    const unsigned elems = scaled(4096, scale, 256);
    const unsigned pitch = pairs * 4;
    const unsigned chunk = 256;
    const unsigned chunks = elems / chunk;   // fast dim
    const unsigned pair_blocks = pairs / 32; // slow dim
    const Addr va = region(22);
    const Addr vb = region(22) + (1u << 24);
    const Addr res = region(22) + (3u << 23);

    KernelParams p;
    p.name = "scalarProd";
    p.numTbs = chunks * pair_blocks;
    p.warpsPerTb = 8;
    p.computeGap = 6;
    p.instrsPerRequest = 461; // Table II: APKI 2.17
    std::vector<Kernel> kernels;
    kernels.emplace_back(p, [=](TbId tb, TraceBuilder &b) {
        const unsigned ch = tb % chunks;      // fast
        const unsigned pb = tb / chunks;      // slow -> valley
        for (unsigned i = 0; i < chunk; ++i) {
            const unsigned e = ch * chunk + i;
            const unsigned warp = i % 8;
            b.accessLine(warp,
                         va + Addr{e} * pitch + Addr{pb} * 128, false);
            b.accessLine(warp,
                         vb + Addr{e} * pitch + Addr{pb} * 128, false);
        }
        // Partial result per pair block.
        b.accessLine(0, res + Addr{pb} * 128 + Addr{ch} * 4, true);
    });

    return std::make_unique<Workload>(
        WorkloadInfo{"Scalar Product", "SP", "CUDA SDK", true,
                     "512x" + std::to_string(elems)},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// FWT — Fast Walsh Transform (CUDA SDK). 22 kernels (two transforms
// of 2^17 floats, one kernel per butterfly stage). Streaming pairs at
// stage-dependent distance: low-order bits sweep within every TB, so
// there is no valley (Fig. 5m).
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeFWT(double scale)
{
    const unsigned log_n = 17;
    const unsigned n = scaled(1u << log_n, scale, 1u << 13);
    const Addr data = region(24);

    std::vector<Kernel> kernels;
    for (unsigned launch = 0; launch < 22; ++launch) {
        const unsigned stage = launch % 11 + 2; // strides 4..8192 elems
        const std::uint64_t dist = (std::uint64_t{1} << stage) * 4;
        KernelParams p;
        p.name = "fwt_stage#" + std::to_string(launch);
        p.numTbs = std::max(1u, n / 512);
        p.warpsPerTb = 8;
        p.computeGap = 8;
        p.instrsPerRequest = 372; // Table II: APKI 2.69
        kernels.emplace_back(p, [=](TbId tb, TraceBuilder &b) {
            for (unsigned w = 0; w < 8; ++w) {
                const unsigned e0 = tb * 512 + w * 64;
                // Butterfly: (i, i ^ dist) pairs; both sides coalesce.
                const Addr lo = data + Addr{e0} * 4;
                b.accessLine(w, lo, false);
                b.accessLine(w, lo + 128, false);
                b.accessLine(w, lo ^ dist, false);
                b.accessLine(w, (lo + 128) ^ dist, false);
                b.accessLine(w, lo, true);
                b.accessLine(w, lo + 128, true);
            }
        });
    }

    return std::make_unique<Workload>(
        WorkloadInfo{"Fast Walsh Transform", "FWT", "CUDA SDK", false,
                     std::to_string(n)},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// NN — Nearest Neighbor style streaming classifier. 4 kernels reading
// 64 B records sequentially: pure streaming, entropy concentrated in
// the low-order bits (Fig. 5n).
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeNN(double scale)
{
    const unsigned records = scaled(65536, scale, 8192);
    const Addr recs = region(26);
    const Addr dist = region(26) + (1u << 23);

    std::vector<Kernel> kernels;
    for (unsigned launch = 0; launch < 4; ++launch) {
        KernelParams p;
        p.name = "nn_find#" + std::to_string(launch);
        p.numTbs = records / 2048;
        p.warpsPerTb = 8;
        p.computeGap = 20;
        p.instrsPerRequest = 429; // Table II: APKI 2.33
        kernels.emplace_back(p, [=](TbId tb, TraceBuilder &b) {
            for (unsigned w = 0; w < 8; ++w) {
                for (unsigned i = 0; i < 8; ++i) {
                    // 32 threads x 64 B records = 2 KB = 16 lines,
                    // fully coalesced streaming.
                    const unsigned r0 = tb * 2048 + w * 256 + i * 32;
                    b.accessStrided(w, recs + Addr{r0} * 64, 64, 32,
                                    false);
                    b.accessLine(w, dist + Addr{r0} * 4, true);
                }
            }
        });
    }

    return std::make_unique<Workload>(
        WorkloadInfo{"NN", "NN", "GPU microbench suite", false,
                     std::to_string(records)},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// SPMV (Parboil). 50 iterations of CSR y = Ax: streaming vals/cols +
// random gathers into x. Gathers sweep all bits (Fig. 5o).
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeSPMV(double scale)
{
    const unsigned rows = scaled(2048, scale, 256);
    const unsigned nnz_per_row = 8;
    const Addr vals = region(28);
    const Addr cols = region(28) + (1u << 22);
    const Addr x = region(28) + (2u << 22); // 64 KB vector
    const Addr y = region(28) + (3u << 22);

    std::vector<Kernel> kernels;
    for (unsigned it = 0; it < 50; ++it) {
        KernelParams p;
        p.name = "spmv_csr#" + std::to_string(it);
        p.numTbs = rows / 256;
        p.warpsPerTb = 8;
        p.computeGap = 10;
        p.instrsPerRequest = 168; // Table II: APKI 5.95
        kernels.emplace_back(p, [=](TbId tb, TraceBuilder &b) {
            XorShiftRng rng = tbRng(13, it % 4, tb);
            for (unsigned w = 0; w < 8; ++w) {
                const unsigned r0 = tb * 256 + w * 32;
                for (unsigned e = 0; e < nnz_per_row; ++e) {
                    // vals/cols: thread t streams row r0+t element e
                    // (stride nnz*8 -> partially coalesced).
                    b.accessStrided(w,
                                    vals + Addr{r0} * nnz_per_row * 8 +
                                        Addr{e} * 8,
                                    nnz_per_row * 8, 32, false);
                    b.accessStrided(w,
                                    cols + Addr{r0} * nnz_per_row * 4 +
                                        Addr{e} * 4,
                                    nnz_per_row * 4, 32, false);
                    // Gather x[col]: random line in the 64 KB vector.
                    b.accessLine(w, x + (rng.next() & 0xFFC0), false);
                }
                b.accessLine(w, y + Addr{r0} * 8, true);
            }
        });
    }

    return std::make_unique<Workload>(
        WorkloadInfo{"SPMV", "SPMV", "Parboil", false,
                     std::to_string(rows) + "x8"},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// LM — LavaMD (Rodinia). One kernel; each TB processes a particle box
// and its 26 neighbors. Heavy re-reading of neighbor boxes gives high
// APKI with near-zero MPKI (Table II: 18.23 / 0.01) — the footprint
// fits the LLC.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeLM(double scale)
{
    const unsigned grid = 8; // 8x8x8 boxes
    const unsigned boxes = grid * grid * grid;
    const unsigned box_bytes = 1024; // 64 particles x 16 B
    const unsigned passes = std::max(1u, scaled(4, scale, 1));
    const Addr particles = region(30);
    const Addr forces = region(30) + (1u << 22);

    KernelParams p;
    p.name = "lavamd_kernel";
    p.numTbs = boxes;
    p.warpsPerTb = 4;
    p.computeGap = 30;
    p.instrsPerRequest = 55; // Table II: APKI 18.23
    std::vector<Kernel> kernels;
    kernels.emplace_back(p, [=](TbId tb, TraceBuilder &b) {
        const unsigned bx = tb % grid;
        const unsigned by = (tb / grid) % grid;
        const unsigned bz = tb / (grid * grid);
        for (unsigned pass = 0; pass < passes; ++pass) {
            for (int dz = -1; dz <= 1; ++dz) {
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        const unsigned nx = (bx + dx + grid) % grid;
                        const unsigned ny = (by + dy + grid) % grid;
                        const unsigned nz = (bz + dz + grid) % grid;
                        const unsigned nb =
                            nz * grid * grid + ny * grid + nx;
                        const unsigned warp =
                            static_cast<unsigned>(dx + 1) % 4;
                        // Read the whole neighbor box (8 lines).
                        for (unsigned l = 0; l < box_bytes / 128; ++l)
                            b.accessLine(warp,
                                         particles +
                                             Addr{nb} * box_bytes +
                                             Addr{l} * 128,
                                         false);
                    }
                }
            }
            // Write own forces (8 lines).
            for (unsigned l = 0; l < box_bytes / 128; ++l)
                b.accessLine(l % 4,
                             forces + Addr{tb} * box_bytes +
                                 Addr{l} * 128,
                             true);
        }
    });

    return std::make_unique<Workload>(
        WorkloadInfo{"LavaMD", "LM", "Rodinia", false,
                     "8x8x8x" + std::to_string(passes)},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// MUM — MUMmerGPU (Rodinia). 2 kernels: suffix-tree matching = random
// pointer chasing over a 256 MB tree (uniformly random lines; Table
// II: MPKI 22.53), then a small print/output kernel.
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeMUM(double scale)
{
    const unsigned queries = scaled(8192, scale, 1024);
    const unsigned hops = 12;
    const Addr tree = region(0); // aliases the low region: random reads
    const std::uint64_t tree_mask = (Addr{1} << 28) - 1; // 256 MB
    const Addr qbuf = region(31);
    const Addr obuf = region(31) + (1u << 22);

    std::vector<Kernel> kernels;
    KernelParams p1;
    p1.name = "mummergpu_kernel";
    p1.numTbs = queries / 256;
    p1.warpsPerTb = 8;
    p1.computeGap = 6;
    p1.instrsPerRequest = 39; // Table II: APKI 25.63
    kernels.emplace_back(p1, [=](TbId tb, TraceBuilder &b) {
        XorShiftRng rng = tbRng(15, 0, tb);
        for (unsigned w = 0; w < 8; ++w) {
            const unsigned q0 = tb * 256 + w * 32;
            // Read the query strings (coalesced).
            b.accessStrided(w, qbuf + Addr{q0} * 32, 32, 32, false);
            // Each thread walks the tree: per hop, 32 random lines.
            for (unsigned h = 0; h < hops; ++h) {
                std::vector<Addr> addrs;
                addrs.reserve(32);
                for (unsigned t = 0; t < 32; ++t)
                    addrs.push_back(tree + (rng.next() & tree_mask));
                b.access(w, addrs, false);
            }
        }
    });

    KernelParams p2;
    p2.name = "mummergpu_print";
    p2.numTbs = std::max(1u, queries / 2048);
    p2.warpsPerTb = 8;
    p2.computeGap = 12;
    p2.instrsPerRequest = 39;
    kernels.emplace_back(p2, [=](TbId tb, TraceBuilder &b) {
        for (unsigned w = 0; w < 8; ++w)
            b.accessStrided(w, obuf + (Addr{tb} * 8 + w) * 2048, 64,
                            32, true);
    });

    return std::make_unique<Workload>(
        WorkloadInfo{"MUMmerGPU", "MUM", "Rodinia", false,
                     std::to_string(queries)},
        std::move(kernels));
}

// ---------------------------------------------------------------------
// BFS (Rodinia). 24 level kernels; frontier sizes grow then shrink.
// Visiting a frontier node reads its adjacency segment (short
// streaming burst at a random offset) and random visited/cost flags:
// high entropy everywhere, very memory intensive (MPKI 18.14).
// ---------------------------------------------------------------------
std::unique_ptr<Workload>
makeBFS(double scale)
{
    const unsigned base_nodes = scaled(2048, scale, 256);
    const Addr adj = region(1);
    const std::uint64_t adj_mask = (Addr{1} << 27) - 1; // 128 MB
    const Addr flags = region(29);
    const std::uint64_t flag_mask = (Addr{1} << 24) - 1;

    std::vector<Kernel> kernels;
    for (unsigned level = 0; level < 24; ++level) {
        // Triangular frontier-size profile peaking mid-search.
        const unsigned ramp =
            level < 12 ? level + 1 : 24 - level;
        const unsigned frontier = base_nodes * ramp / 4;
        KernelParams p;
        p.name = "bfs_level#" + std::to_string(level);
        p.numTbs = std::max(1u, frontier / 256);
        p.warpsPerTb = 8;
        p.computeGap = 5;
        p.instrsPerRequest = 37; // Table II: APKI 26.92
        kernels.emplace_back(p, [=](TbId tb, TraceBuilder &b) {
            XorShiftRng rng = tbRng(16, level, tb);
            for (unsigned w = 0; w < 8; ++w) {
                // Frontier array itself: coalesced.
                b.accessStrided(w, flags + ((rng.next() & flag_mask) &
                                            ~Addr{127}),
                                4, 32, false);
                for (unsigned i = 0; i < 4; ++i) {
                    // Adjacency segment: short random burst.
                    const Addr seg =
                        adj + ((rng.next() & adj_mask) & ~Addr{127});
                    b.accessLine(w, seg, false);
                    b.accessLine(w, seg + 128, false);
                    // Random visited flag + cost update.
                    std::vector<Addr> addrs;
                    for (unsigned t = 0; t < 32; ++t)
                        addrs.push_back(flags +
                                        (rng.next() & flag_mask));
                    b.access(w, addrs, false);
                    b.accessLine(w, flags + (rng.next() & flag_mask),
                                 true);
                }
            }
        });
    }

    return std::make_unique<Workload>(
        WorkloadInfo{"BFS", "BFS", "Rodinia", false,
                     std::to_string(base_nodes)},
        std::move(kernels));
}

} // namespace

std::unique_ptr<Workload>
make(const std::string &abbrev, double scale)
{
    if (scale <= 0.0 || scale > 1.0)
        throw std::invalid_argument("workload scale must be in (0,1]");
    // `synth:` spec strings fall through to the scenario-generator
    // registry: unlimited parameterized workloads next to the fixed
    // Table II set, behind the same entry point.
    if (synth::isSynthSpec(abbrev))
        return synth::make(abbrev, scale);
    if (abbrev == "MT") return makeMT(scale);
    if (abbrev == "LU") return makeLU(scale);
    if (abbrev == "GS") return makeGS(scale);
    if (abbrev == "NW") return makeNW(scale);
    if (abbrev == "LPS") return makeLPS(scale);
    if (abbrev == "SC") return makeSC(scale);
    if (abbrev == "SRAD2") return makeSRAD2(scale);
    if (abbrev == "DWT2D") return makeDWT2D(scale);
    if (abbrev == "HS") return makeHS(scale);
    if (abbrev == "SP") return makeSP(scale);
    if (abbrev == "FWT") return makeFWT(scale);
    if (abbrev == "NN") return makeNN(scale);
    if (abbrev == "SPMV") return makeSPMV(scale);
    if (abbrev == "LM") return makeLM(scale);
    if (abbrev == "MUM") return makeMUM(scale);
    if (abbrev == "BFS") return makeBFS(scale);
    throw std::invalid_argument("unknown workload: " + abbrev);
}

const std::vector<std::string> &
valleySet()
{
    static const std::vector<std::string> s = {
        "MT", "LU", "GS", "NW", "LPS",
        "SC", "SRAD2", "DWT2D", "HS", "SP",
    };
    return s;
}

const std::vector<std::string> &
nonValleySet()
{
    static const std::vector<std::string> s = {
        "FWT", "NN", "SPMV", "LM", "MUM", "BFS",
    };
    return s;
}

const std::vector<std::string> &
allSet()
{
    static const std::vector<std::string> s = [] {
        std::vector<std::string> v = valleySet();
        for (const auto &x : nonValleySet())
            v.push_back(x);
        return v;
    }();
    return s;
}

} // namespace workloads
} // namespace valley
