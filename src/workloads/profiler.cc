#include "workloads/profiler.hh"

namespace valley {
namespace workloads {

EntropyProfile
profileKernel(const Kernel &kernel, const ProfileOptions &opts)
{
    std::vector<std::vector<double>> tb_bvrs;
    tb_bvrs.reserve(kernel.numTbs());
    std::uint64_t requests = 0;

    for (TbId tb = 0; tb < kernel.numTbs(); ++tb) {
        BvrAccumulator acc(opts.numBits);
        const TbTrace trace = kernel.trace(tb);
        for (const WarpTrace &w : trace.warps) {
            for (const MemInstr &instr : w.instrs) {
                for (Addr line : instr.lines) {
                    const Addr a =
                        opts.mapper ? opts.mapper->map(line) : line;
                    acc.add(a);
                }
            }
        }
        requests += acc.requestCount();
        tb_bvrs.push_back(acc.bvrs());
    }
    return kernelProfile(tb_bvrs, opts.window, requests, opts.metric);
}

EntropyProfile
profileWorkload(const Workload &workload, const ProfileOptions &opts)
{
    std::vector<EntropyProfile> per_kernel;
    per_kernel.reserve(workload.kernels().size());
    for (const Kernel &k : workload.kernels())
        per_kernel.push_back(profileKernel(k, opts));
    return EntropyProfile::combine(per_kernel);
}

} // namespace workloads
} // namespace valley
