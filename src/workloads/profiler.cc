#include "workloads/profiler.hh"

#include <numeric>
#include <string>

#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "common/trace_span.hh"
#include "entropy/sliced_bvr.hh"

namespace valley {
namespace workloads {

namespace {

/** Non-identity compiled remap of the options, if any. */
const CompiledTransform *
activeTransform(const ProfileOptions &opts)
{
    if (!opts.mapper)
        return nullptr;
    const CompiledTransform &ct = opts.mapper->compiled();
    return ct.isIdentity() ? nullptr : &ct;
}

/**
 * BVR vector and request count of one TB, streamed through the
 * bit-sliced accumulator. The remap, when present, is fused into the
 * accumulator's batch loop — profiling under a BIM never pays a
 * per-line `AddressMapper::map` call.
 */
void
accumulateTb(const Kernel &kernel, TbId tb, const ProfileOptions &opts,
             const CompiledTransform *ct, std::vector<double> &bvr,
             std::uint64_t &requests)
{
    SlicedBvrAccumulator acc(opts.numBits);
    const TbTrace trace = kernel.trace(tb);
    for (const WarpTrace &w : trace.warps) {
        for (const MemInstr &instr : w.instrs) {
            if (ct)
                acc.addManyMapped(instr.lines, [ct](Addr a) {
                    return ct->apply(a);
                });
            else
                acc.addMany(instr.lines);
        }
    }
    requests = acc.requestCount();
    bvr = acc.bvrs();
}

/** TB-range task granularity for splitting large kernels. */
constexpr unsigned kTbsPerTask = 256;

/**
 * Profile a batch of kernels, parallelized across kernels and across
 * TB ranges within each kernel. Each TB owns one preallocated BVR
 * slot and each kernel one profile slot, so results are deterministic
 * under any scheduling order.
 */
std::vector<EntropyProfile>
profileKernels(std::span<const Kernel> kernels,
               const ProfileOptions &opts)
{
    const std::size_t nk = kernels.size();
    std::vector<std::vector<std::vector<double>>> bvrs(nk);
    std::vector<std::vector<std::uint64_t>> counts(nk);
    std::size_t tb_tasks = 0;
    for (std::size_t ki = 0; ki < nk; ++ki) {
        const unsigned tbs = kernels[ki].numTbs();
        bvrs[ki].resize(tbs);
        counts[ki].resize(tbs, 0);
        tb_tasks += (tbs + kTbsPerTask - 1) / kTbsPerTask;
    }

    const CompiledTransform *ct = activeTransform(opts);
    const auto bvrRange = [&](std::size_t ki, TbId lo, TbId hi) {
        // Task-start boundary: throws Cancelled (a partial profile is
        // not a degraded profile — see ProfileOptions::cancel). In the
        // pool path the throw propagates to the caller via run().
        if (opts.cancel)
            opts.cancel->check("profileWorkload cancelled");
        trace::Span span(trace::enabled()
                             ? "kernel#" + std::to_string(ki) +
                                   " tb[" + std::to_string(lo) + "," +
                                   std::to_string(hi) + ")"
                             : std::string(),
                         "profiler");
        for (TbId tb = lo; tb < hi; ++tb)
            accumulateTb(kernels[ki], tb, opts, ct, bvrs[ki][tb],
                         counts[ki][tb]);
    };
    std::vector<EntropyProfile> out(nk);
    const auto profileOne = [&](std::size_t ki) {
        if (opts.cancel)
            opts.cancel->check("profileWorkload cancelled");
        trace::Span span(trace::enabled()
                             ? "kernel#" + std::to_string(ki) +
                                   " profile"
                             : std::string(),
                         "profiler");
        metrics::counter("profiler.kernels_profiled").inc();
        // Summed in TB order — integer, hence order-independent, but
        // kept ordered for clarity.
        const std::uint64_t requests = std::accumulate(
            counts[ki].begin(), counts[ki].end(), std::uint64_t{0});
        out[ki] = kernelProfile(bvrs[ki], opts.window, requests,
                                opts.metric);
    };

    const unsigned threads = opts.threads == 0
                                 ? ThreadPool::defaultThreads()
                                 : opts.threads;
    if (threads <= 1 || tb_tasks <= 1) {
        for (std::size_t ki = 0; ki < nk; ++ki) {
            bvrRange(ki, 0, kernels[ki].numTbs());
            profileOne(ki);
        }
    } else {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(threads, tb_tasks)));
        for (std::size_t ki = 0; ki < nk; ++ki)
            for (TbId lo = 0; lo < kernels[ki].numTbs();
                 lo += kTbsPerTask)
                pool.submit([&bvrRange, &kernels, ki, lo] {
                    bvrRange(ki, lo,
                             std::min<TbId>(lo + kTbsPerTask,
                                            kernels[ki].numTbs()));
                });
        pool.run();
        for (std::size_t ki = 0; ki < nk; ++ki)
            pool.submit([&profileOne, ki] { profileOne(ki); });
        pool.run();
    }
    return out;
}

} // namespace

EntropyProfile
profileKernel(const Kernel &kernel, const ProfileOptions &opts)
{
    return profileKernels({&kernel, 1}, opts).front();
}

EntropyProfile
profileWorkload(const Workload &workload, const ProfileOptions &opts)
{
    trace::Span span(trace::enabled()
                         ? "profile " + workload.info().abbrev
                         : std::string(),
                     "profiler");
    return EntropyProfile::combine(
        profileKernels(workload.kernels(), opts));
}

} // namespace workloads
} // namespace valley
