/**
 * @file
 * Kernel and Workload abstractions plus the benchmark registry
 * (paper Table II).
 *
 * Each of the 16 benchmarks is reproduced as a synthetic trace
 * generator that mimics the documented address pattern of its
 * namesake CUDA kernel (see DESIGN.md for the substitution
 * rationale). Generators are deterministic: the same (workload,
 * kernel, TB) always yields the same trace.
 */

#ifndef VALLEY_WORKLOADS_WORKLOAD_HH
#define VALLEY_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workloads/trace.hh"

namespace valley {

/** Static parameters of one kernel launch. */
struct KernelParams
{
    std::string name = "kernel";
    unsigned numTbs = 1;
    unsigned warpsPerTb = 8;       ///< 8 warps = 256 threads
    unsigned computeGap = 8;       ///< SM cycles between a warp's accesses
    double instrsPerRequest = 60;  ///< dynamic instrs per memory request
};

/** Deterministic generator: fill the builder with TB `tb`'s trace. */
using TraceFn = std::function<void(TbId tb, TraceBuilder &out)>;

/**
 * One kernel launch. Lightweight: holds the generator closure; traces
 * are produced lazily per TB.
 */
class Kernel
{
  public:
    Kernel(KernelParams params, TraceFn fn);

    /** Generate the trace of one TB (line size 128 B). */
    TbTrace trace(TbId tb) const;

    const KernelParams &params() const { return params_; }
    const std::string &name() const { return params_.name; }
    unsigned numTbs() const { return params_.numTbs; }
    unsigned warpsPerTb() const { return params_.warpsPerTb; }
    unsigned
    threadsPerTb() const
    {
        return params_.warpsPerTb * 32;
    }

    /** Coalesced transactions of the whole kernel (generates traces). */
    std::uint64_t countRequests() const;

  private:
    KernelParams params_;
    TraceFn fn;
};

/** Identity of one benchmark (Table II row or a synthetic spec). */
struct WorkloadInfo
{
    std::string name;    ///< e.g. "Transpose"
    std::string abbrev;  ///< e.g. "MT", or a canonical `synth:` spec
    std::string suite;   ///< e.g. "CUDA SDK", or "synth"
    bool entropyValley = false; ///< top group of Table II

    /**
     * Resolved problem dimensions after scaling, e.g. "512x256x16".
     * Purely informational (bench tables, `valley_gen`); "" when a
     * generator has nothing meaningful to report.
     */
    std::string dims;
};

/** A benchmark: metadata + its kernel launch sequence. */
class Workload
{
  public:
    Workload(WorkloadInfo info, std::vector<Kernel> kernels);

    const WorkloadInfo &info() const { return info_; }
    const std::vector<Kernel> &kernels() const { return kernels_; }
    unsigned
    numKernels() const
    {
        return static_cast<unsigned>(kernels_.size());
    }

    /** Total coalesced transactions (generates all traces; O(trace)). */
    std::uint64_t countRequests() const;

  private:
    WorkloadInfo info_;
    std::vector<Kernel> kernels_;
};

namespace workloads {

/**
 * Build one benchmark by abbreviation (Table II: MT, LU, GS, NW, LPS,
 * SC, SRAD2, DWT2D, HS, SP, FWT, NN, SPMV, LM, MUM, BFS) or by a
 * `synth:` scenario spec string (`synth:FAMILY[,key=value...]`, see
 * `synth/registry.hh` and `tools/valley_gen --list`).
 *
 * @param scale linear problem-size scale in (0, 1]; 1.0 is the
 *              default evaluation size, smaller values shrink traces
 *              for fast tests. For synth specs it multiplies the
 *              spec's own `scale` parameter.
 */
std::unique_ptr<Workload> make(const std::string &abbrev,
                               double scale = 1.0);

/**
 * Scale a problem dimension, keeping it a positive multiple of
 * `quantum`: the result is always >= quantum, so no combination of
 * tiny `scale` values and integer division downstream can silently
 * produce a zero-sized dimension (generators additionally get a
 * hard guarantee from `Kernel` rejecting zero-TB launches).
 */
unsigned scaled(unsigned dim, double scale, unsigned quantum);

/** The ten entropy-valley benchmarks (Fig. 12 set), paper order. */
const std::vector<std::string> &valleySet();

/** The six non-valley benchmarks (Fig. 20 set), paper order. */
const std::vector<std::string> &nonValleySet();

/** All sixteen, paper order. */
const std::vector<std::string> &allSet();

/** Line size used by every generator (Table I L1/LLC line). */
constexpr unsigned kLineBytes = 128;

} // namespace workloads
} // namespace valley

#endif // VALLEY_WORKLOADS_WORKLOAD_HH
