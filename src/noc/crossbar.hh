/**
 * @file
 * Input-queued crossbar network-on-chip (Table I: 12x8 crossbar,
 * 700 MHz, 32-byte channels).
 *
 * Packets carry a byte size; a packet occupies its output port for
 * ceil(bytes / channelBytes) NoC cycles. Each output port arbitrates
 * round-robin over the input queues whose head packet targets it —
 * the classic input-queued crossbar with head-of-line blocking, which
 * is exactly the congestion behavior that makes LLC-slice imbalance
 * expensive (paper Section VI-B, Fig. 13a).
 */

#ifndef VALLEY_NOC_CROSSBAR_HH
#define VALLEY_NOC_CROSSBAR_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace valley {

/** A packet delivered by the crossbar. */
struct NocDelivery
{
    unsigned output = 0;
    std::uint64_t tag = 0;
    Cycle delivered = 0; ///< NoC cycle the tail flit arrived
    Cycle injected = 0;
};

/** Aggregate NoC statistics. */
struct NocStats
{
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;
    std::uint64_t latencySum = 0; ///< inject-to-delivery, NoC cycles
    std::uint64_t rejects = 0;    ///< injections refused (queue full)

    double
    avgLatency() const
    {
        return packets ? static_cast<double>(latencySum) /
                             static_cast<double>(packets)
                       : 0.0;
    }
};

/**
 * One direction of the interconnect (request or reply network).
 */
class Crossbar
{
  public:
    /**
     * @param inputs        input ports (SMs for requests)
     * @param outputs       output ports (LLC slices for requests)
     * @param channel_bytes flit width (32 B in Table I)
     * @param queue_depth   per-input packet queue depth
     */
    Crossbar(unsigned inputs, unsigned outputs, unsigned channel_bytes,
             unsigned queue_depth = 8);

    /** True iff input port `in` can take another packet. */
    bool canInject(unsigned in) const;

    /**
     * Inject a packet; returns false (rejected) when the input queue
     * is full.
     */
    bool inject(unsigned in, unsigned out, unsigned bytes,
                std::uint64_t tag, Cycle now);

    /**
     * Advance one NoC cycle; deliveries completing this cycle are
     * appended to `done`.
     */
    void tick(Cycle now, std::vector<NocDelivery> &done);

    /** Packets buffered or in flight. */
    unsigned pending() const;

    const NocStats &stats() const { return stats_; }

    unsigned numInputs() const { return inputs; }
    unsigned numOutputs() const { return outputs; }

  private:
    struct Packet
    {
        unsigned output;
        unsigned flits;
        std::uint64_t tag;
        Cycle injected;
    };

    struct OutputPort
    {
        Cycle busyUntil = 0;
        bool transferring = false;
        Packet current{};
    };

    unsigned inputs;
    unsigned outputs;
    unsigned channelBytes;
    unsigned queueDepth;
    std::vector<std::deque<Packet>> inQueue;
    std::vector<OutputPort> outPort;
    unsigned rrPointer = 0;
    NocStats stats_;
};

} // namespace valley

#endif // VALLEY_NOC_CROSSBAR_HH
