#include "noc/crossbar.hh"

#include <cassert>

namespace valley {

Crossbar::Crossbar(unsigned inputs_, unsigned outputs_,
                   unsigned channel_bytes, unsigned queue_depth)
    : inputs(inputs_), outputs(outputs_), channelBytes(channel_bytes),
      queueDepth(queue_depth), inQueue(inputs_), outPort(outputs_)
{
    assert(inputs >= 1 && outputs >= 1 && channelBytes >= 1);
}

bool
Crossbar::canInject(unsigned in) const
{
    assert(in < inputs);
    return inQueue[in].size() < queueDepth;
}

bool
Crossbar::inject(unsigned in, unsigned out, unsigned bytes,
                 std::uint64_t tag, Cycle now)
{
    assert(in < inputs && out < outputs);
    if (!canInject(in)) {
        ++stats_.rejects;
        return false;
    }
    Packet p;
    p.output = out;
    p.flits = (bytes + channelBytes - 1) / channelBytes;
    if (p.flits == 0)
        p.flits = 1;
    p.tag = tag;
    p.injected = now;
    inQueue[in].push_back(p);
    return true;
}

void
Crossbar::tick(Cycle now, std::vector<NocDelivery> &done)
{
    // Complete transfers whose tail flit has passed.
    for (unsigned o = 0; o < outputs; ++o) {
        OutputPort &port = outPort[o];
        if (port.transferring && port.busyUntil <= now) {
            port.transferring = false;
            ++stats_.packets;
            stats_.flits += port.current.flits;
            stats_.latencySum += now - port.current.injected;
            done.push_back(
                NocDelivery{o, port.current.tag, now,
                            port.current.injected});
        }
    }

    // Arbitration: each free output picks one input whose head packet
    // targets it. The round-robin start pointer rotates each cycle for
    // fairness across SMs.
    for (unsigned o = 0; o < outputs; ++o) {
        OutputPort &port = outPort[o];
        if (port.transferring)
            continue;
        for (unsigned k = 0; k < inputs; ++k) {
            const unsigned in = (rrPointer + k) % inputs;
            if (inQueue[in].empty())
                continue;
            const Packet &head = inQueue[in].front();
            if (head.output != o)
                continue; // head-of-line blocking
            port.current = head;
            port.transferring = true;
            port.busyUntil = now + head.flits;
            inQueue[in].pop_front();
            break;
        }
    }
    rrPointer = (rrPointer + 1) % inputs;
}

unsigned
Crossbar::pending() const
{
    unsigned n = 0;
    for (const auto &q : inQueue)
        n += static_cast<unsigned>(q.size());
    for (const auto &port : outPort)
        n += port.transferring ? 1 : 0;
    return n;
}

} // namespace valley
