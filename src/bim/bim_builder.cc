#include "bim/bim_builder.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/bitops.hh"

namespace valley {
namespace bim {

BitMatrix
permutation(unsigned n, const std::vector<unsigned> &source_of_output)
{
    if (source_of_output.size() != n)
        throw std::invalid_argument("permutation: wrong source count");
    std::vector<bool> used(n, false);
    BitMatrix m(n);
    for (unsigned out = 0; out < n; ++out) {
        const unsigned src = source_of_output[out];
        if (src >= n || used[src])
            throw std::invalid_argument("permutation: not a permutation");
        used[src] = true;
        m.set(out, src, true);
    }
    return m;
}

BitMatrix
remap(unsigned n, const std::vector<unsigned> &target_positions,
      const std::vector<unsigned> &source_bits)
{
    if (target_positions.size() != source_bits.size())
        throw std::invalid_argument("remap: size mismatch");

    std::vector<unsigned> source_of_output(n);
    for (unsigned i = 0; i < n; ++i)
        source_of_output[i] = i;

    // Route the chosen sources to the target positions.
    std::vector<bool> output_filled(n, false);
    std::vector<bool> input_used(n, false);
    for (std::size_t i = 0; i < target_positions.size(); ++i) {
        const unsigned out = target_positions[i];
        const unsigned src = source_bits[i];
        if (out >= n || src >= n)
            throw std::invalid_argument("remap: bit out of range");
        if (output_filled[out] || input_used[src])
            throw std::invalid_argument("remap: duplicate bit");
        source_of_output[out] = src;
        output_filled[out] = true;
        input_used[src] = true;
    }

    // Fill the vacated output positions with the displaced inputs, both
    // taken in ascending order. Positions whose identity source is
    // still free keep it.
    std::vector<unsigned> free_outputs;
    std::vector<unsigned> free_inputs;
    for (unsigned i = 0; i < n; ++i) {
        if (!output_filled[i] && input_used[i])
            free_outputs.push_back(i);
        if (!input_used[i] && output_filled[i])
            free_inputs.push_back(i);
    }
    assert(free_outputs.size() == free_inputs.size());
    for (std::size_t i = 0; i < free_outputs.size(); ++i)
        source_of_output[free_outputs[i]] = free_inputs[i];

    return permutation(n, source_of_output);
}

BitMatrix
permutationBased(unsigned n, const std::vector<unsigned> &targets,
                 const std::vector<unsigned> &donors)
{
    if (targets.size() != donors.size())
        throw std::invalid_argument("permutationBased: size mismatch");
    BitMatrix m = BitMatrix::identity(n);
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const unsigned t = targets[i];
        const unsigned d = donors[i];
        if (t >= n || d >= n)
            throw std::invalid_argument("permutationBased: out of range");
        if (std::find(targets.begin(), targets.end(), d) != targets.end())
            throw std::invalid_argument(
                "permutationBased: donor overlaps target");
        m.set(t, d, true);
    }
    assert(m.invertible());
    return m;
}

BitMatrix
fromRowSpecs(unsigned n,
             const std::vector<std::pair<unsigned, std::uint64_t>> &specs)
{
    BitMatrix m = BitMatrix::identity(n);
    for (const auto &[row, mask] : specs) {
        if (row >= n)
            throw std::invalid_argument("fromRowSpecs: row out of range");
        m.setRow(row, mask & bits::mask(n));
    }
    if (!m.invertible())
        throw std::invalid_argument("fromRowSpecs: singular matrix");
    return m;
}

BitMatrix
randomBroad(unsigned n, const std::vector<unsigned> &targets,
            std::uint64_t candidate_mask, XorShiftRng &rng,
            unsigned min_taps)
{
    candidate_mask &= bits::mask(n);
    for (unsigned t : targets) {
        if (t >= n)
            throw std::invalid_argument("randomBroad: target out of range");
        if (!((candidate_mask >> t) & 1))
            throw std::invalid_argument(
                "randomBroad: targets must be candidates (else singular)");
    }
    const unsigned candidates =
        static_cast<unsigned>(std::popcount(candidate_mask));
    if (candidates < targets.size() || min_taps > candidates)
        throw std::invalid_argument("randomBroad: too few candidates");

    // Rejection-sample rows until the complete matrix (random target
    // rows + identity elsewhere) is invertible. A uniformly random
    // GF(2) k x k block is invertible with probability ~0.29, so a few
    // dozen attempts always suffice in practice; the bound below only
    // guards against caller errors.
    constexpr unsigned max_attempts = 100000;
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        BitMatrix m = BitMatrix::identity(n);
        for (unsigned t : targets) {
            std::uint64_t row = 0;
            unsigned taps = 0;
            do {
                row = rng.next() & candidate_mask;
                taps = static_cast<unsigned>(std::popcount(row));
            } while (taps < min_taps);
            m.setRow(t, row);
        }
        if (m.invertible())
            return m;
    }
    throw std::runtime_error("randomBroad: no invertible matrix found");
}

} // namespace bim
} // namespace valley
