/**
 * @file
 * Constructors for the BIM families discussed in the paper
 * (Section IV): Remap, Permutation-based (PM) and the Broad strategies
 * (PAE / FAE / ALL) that gather entropy from wide input-bit ranges.
 *
 * All builders return full n x n invertible matrices; callers pick the
 * output target bits (channel/bank positions) and the candidate input
 * bit sets according to the DRAM address layout.
 */

#ifndef VALLEY_BIM_BIM_BUILDER_HH
#define VALLEY_BIM_BIM_BUILDER_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "bim/bit_matrix.hh"
#include "common/rng.hh"

namespace valley {
namespace bim {

/**
 * Pure bit-permutation matrix: output bit i takes input bit
 * `source_of_output[i]`. `source_of_output` must be a permutation of
 * 0..n-1; otherwise the matrix would not be invertible.
 */
BitMatrix permutation(unsigned n,
                      const std::vector<unsigned> &source_of_output);

/**
 * Remap-strategy builder (Fig. 6b): route the chosen high-entropy
 * input bits `source_bits[i]` to the channel/bank output positions
 * `target_positions[i]`; displaced input bits fill the vacated output
 * positions in ascending order; all other bits map straight through.
 */
BitMatrix remap(unsigned n, const std::vector<unsigned> &target_positions,
                const std::vector<unsigned> &source_bits);

/**
 * Permutation-based mapping builder (Fig. 6c, [4,5]): output target
 * bit `targets[i]` is the XOR of input bit `targets[i]` and donor
 * input bit `donors[i]`. Donors must be distinct from all targets;
 * such a matrix is always invertible (unit upper-triangular under a
 * suitable ordering).
 */
BitMatrix permutationBased(unsigned n, const std::vector<unsigned> &targets,
                           const std::vector<unsigned> &donors);

/**
 * Build a matrix from explicit (output bit, input tap mask) rows;
 * unspecified rows are identity. Asserts the result is invertible.
 */
BitMatrix fromRowSpecs(
    unsigned n,
    const std::vector<std::pair<unsigned, std::uint64_t>> &specs);

/**
 * Broad-strategy builder (Fig. 6d): every output bit in `targets` gets
 * a random tap subset of `candidate_mask` (each candidate with
 * probability 1/2, at least `min_taps` taps); remaining rows are
 * identity. Rejection-samples until the full matrix is invertible,
 * which guarantees a one-to-one address mapping.
 *
 * The target bits must all be contained in `candidate_mask`; otherwise
 * no invertible matrix with identity non-target rows exists.
 */
BitMatrix randomBroad(unsigned n, const std::vector<unsigned> &targets,
                      std::uint64_t candidate_mask, XorShiftRng &rng,
                      unsigned min_taps = 2);

} // namespace bim
} // namespace valley

#endif // VALLEY_BIM_BIM_BUILDER_HH
