/**
 * @file
 * Byte-sliced compilation of a GF(2) bit matrix.
 *
 * `BitMatrix::apply` pays one AND + parity reduction per output bit —
 * ~n iterations per address on the hottest path of the simulator. A
 * matrix-vector product over GF(2) can instead be evaluated
 * column-wise: the output is the XOR of the matrix columns selected
 * by the set input bits. Grouping the input into 8 byte slices and
 * tabulating all 256 column combinations per slice turns `apply`
 * into 8 table loads XORed together, independent of the matrix size —
 * the software analogue of the paper's "one tree of XOR gates per
 * output bit" hardware cost model.
 */

#ifndef VALLEY_BIM_COMPILED_TRANSFORM_HH
#define VALLEY_BIM_COMPILED_TRANSFORM_HH

#include <array>
#include <cstdint>

#include "bim/bit_matrix.hh"
#include "common/types.hh"

namespace valley {

/**
 * Immutable 8 x 256 lookup-table form of a BitMatrix.
 *
 * Input bits at or above the matrix size pass through unchanged,
 * matching `BitMatrix::apply`: they are compiled as identity columns,
 * so no masking is needed at lookup time and the table is exact for
 * every 64-bit input.
 */
class CompiledTransform
{
  public:
    /** Tabulate the matrix (one-time cost; ~16 KB of tables). */
    explicit CompiledTransform(const BitMatrix &m);

    /** Exact equivalent of `BitMatrix::apply`, in 8 loads + 7 XORs. */
    Addr
    apply(Addr in) const
    {
        const auto x = static_cast<std::uint64_t>(in);
        return slice[0][x & 0xFF] ^ slice[1][(x >> 8) & 0xFF] ^
               slice[2][(x >> 16) & 0xFF] ^ slice[3][(x >> 24) & 0xFF] ^
               slice[4][(x >> 32) & 0xFF] ^ slice[5][(x >> 40) & 0xFF] ^
               slice[6][(x >> 48) & 0xFF] ^ slice[7][x >> 56];
    }

    /** True iff the compiled matrix is the identity (BASE scheme). */
    bool isIdentity() const { return identity; }

    /**
     * The raw 8 x 256 lookup tables: `tables()[s][v]` is the XOR
     * contribution of input byte slice `s` holding value `v`.
     * Exported by `tools/valley_search` so a searched BIM ships in
     * the exact form the simulator (or an RTL table generator)
     * consumes.
     */
    const std::array<std::array<std::uint64_t, 256>, 8> &
    tables() const
    {
        return slice;
    }

  private:
    std::array<std::array<std::uint64_t, 256>, 8> slice;
    bool identity = false;
};

} // namespace valley

#endif // VALLEY_BIM_COMPILED_TRANSFORM_HH
