#include "bim/compiled_transform.hh"

#include <bit>

namespace valley {

CompiledTransform::CompiledTransform(const BitMatrix &m)
{
    const unsigned n = m.size();

    // Column vectors of the matrix: bit r of col[c] is M[r][c]. Bits
    // at or above the matrix size pass through, i.e. behave as
    // identity columns.
    std::array<std::uint64_t, 64> col{};
    for (unsigned c = 0; c < 64; ++c) {
        if (c >= n) {
            col[c] = std::uint64_t{1} << c;
            continue;
        }
        std::uint64_t v = 0;
        for (unsigned r = 0; r < n; ++r)
            v |= static_cast<std::uint64_t>(m.get(r, c)) << r;
        col[c] = v;
    }

    identity = true;
    for (unsigned c = 0; c < 64; ++c)
        identity = identity && col[c] == (std::uint64_t{1} << c);

    // slice[b][v] = XOR of the columns selected by byte value v at
    // byte position b. Built incrementally: entry v adds its lowest
    // set bit's column to the already-computed entry v with that bit
    // cleared.
    for (unsigned b = 0; b < 8; ++b) {
        slice[b][0] = 0;
        for (unsigned v = 1; v < 256; ++v) {
            const unsigned low = v & (~v + 1);
            const unsigned c =
                b * 8 + static_cast<unsigned>(std::countr_zero(low));
            slice[b][v] = slice[b][v ^ low] ^ col[c];
        }
    }
}

} // namespace valley
