#include "bim/bit_matrix.hh"

#include <cassert>

#include "common/bitops.hh"

namespace valley {

BitMatrix::BitMatrix(unsigned n_) : n(n_), rowMask(n_, 0)
{
    assert(n_ >= 1 && n_ <= 64);
}

BitMatrix
BitMatrix::identity(unsigned n)
{
    BitMatrix m(n);
    for (unsigned i = 0; i < n; ++i)
        m.rowMask[i] = std::uint64_t{1} << i;
    return m;
}

bool
BitMatrix::get(unsigned row, unsigned col) const
{
    assert(row < n && col < n);
    return (rowMask[row] >> col) & 1;
}

void
BitMatrix::set(unsigned row, unsigned col, bool v)
{
    assert(row < n && col < n);
    rowMask[row] = bits::setBit(rowMask[row], col, v ? 1 : 0);
}

std::uint64_t
BitMatrix::row(unsigned r) const
{
    assert(r < n);
    return rowMask[r];
}

void
BitMatrix::setRow(unsigned r, std::uint64_t mask)
{
    assert(r < n);
    assert((mask & ~bits::mask(n)) == 0);
    rowMask[r] = mask;
}

Addr
BitMatrix::apply(Addr in) const
{
    Addr out = in & ~bits::mask(n);
    const std::uint64_t low = in & bits::mask(n);
    for (unsigned r = 0; r < n; ++r)
        out |= static_cast<Addr>(bits::parity(rowMask[r] & low)) << r;
    return out;
}

BitMatrix
BitMatrix::multiply(const BitMatrix &rhs) const
{
    assert(n == rhs.n);
    // (this * rhs) row r = XOR of rhs rows selected by this row's taps.
    BitMatrix out(n);
    for (unsigned r = 0; r < n; ++r) {
        std::uint64_t acc = 0;
        std::uint64_t taps = rowMask[r];
        while (taps) {
            const unsigned c = bits::log2Exact(taps & (~taps + 1));
            acc ^= rhs.rowMask[c];
            taps &= taps - 1;
        }
        out.rowMask[r] = acc;
    }
    return out;
}

unsigned
BitMatrix::rank() const
{
    std::vector<std::uint64_t> rows = rowMask;
    unsigned rank = 0;
    for (unsigned col = 0; col < n && rank < n; ++col) {
        const std::uint64_t bit = std::uint64_t{1} << col;
        unsigned pivot = rank;
        while (pivot < n && !(rows[pivot] & bit))
            ++pivot;
        if (pivot == n)
            continue;
        std::swap(rows[rank], rows[pivot]);
        for (unsigned r = 0; r < n; ++r)
            if (r != rank && (rows[r] & bit))
                rows[r] ^= rows[rank];
        ++rank;
    }
    return rank;
}

std::optional<BitMatrix>
BitMatrix::inverse() const
{
    // Gauss-Jordan over the augmented system [M | I].
    std::vector<std::uint64_t> m = rowMask;
    std::vector<std::uint64_t> inv(n);
    for (unsigned i = 0; i < n; ++i)
        inv[i] = std::uint64_t{1} << i;

    unsigned row = 0;
    for (unsigned col = 0; col < n; ++col) {
        const std::uint64_t bit = std::uint64_t{1} << col;
        unsigned pivot = row;
        while (pivot < n && !(m[pivot] & bit))
            ++pivot;
        if (pivot == n)
            return std::nullopt;
        std::swap(m[row], m[pivot]);
        std::swap(inv[row], inv[pivot]);
        for (unsigned r = 0; r < n; ++r) {
            if (r != row && (m[r] & bit)) {
                m[r] ^= m[row];
                inv[r] ^= inv[row];
            }
        }
        ++row;
    }

    // m is now a permutation of identity rows; undo the row ordering so
    // inv rows line up with output bit indices.
    BitMatrix out(n);
    for (unsigned r = 0; r < n; ++r) {
        const unsigned out_bit = bits::log2Exact(m[r]);
        out.rowMask[out_bit] = inv[r];
    }
    return out;
}

bool
BitMatrix::operator==(const BitMatrix &rhs) const
{
    return n == rhs.n && rowMask == rhs.rowMask;
}

unsigned
BitMatrix::xorGateCount() const
{
    unsigned gates = 0;
    for (unsigned r = 0; r < n; ++r) {
        const unsigned taps =
            static_cast<unsigned>(std::popcount(rowMask[r]));
        if (taps > 1)
            gates += taps - 1;
    }
    return gates;
}

unsigned
BitMatrix::maxRowTaps() const
{
    unsigned taps = 0;
    for (unsigned r = 0; r < n; ++r)
        taps = std::max(
            taps, static_cast<unsigned>(std::popcount(rowMask[r])));
    return taps;
}

unsigned
BitMatrix::xorTreeDepth() const
{
    const unsigned taps = maxRowTaps();
    return taps <= 1 ? 0 : bits::log2Ceil(taps);
}

bool
BitMatrix::rowIsIdentity(unsigned r) const
{
    assert(r < n);
    return rowMask[r] == (std::uint64_t{1} << r);
}

std::string
BitMatrix::toString() const
{
    std::string out;
    out.reserve(static_cast<std::size_t>(n) * (n + 1));
    for (unsigned r = 0; r < n; ++r) {
        for (unsigned c = 0; c < n; ++c)
            out.push_back(get(r, c) ? '1' : '0');
        out.push_back('\n');
    }
    return out;
}

} // namespace valley
