/**
 * @file
 * GF(2) bit-matrix algebra underlying the Binary Invertible Matrix
 * (BIM) address mapping abstraction (paper Section IV-A).
 *
 * An address transform is the matrix-vector product
 * `a_out = M x a_in` where multiplication is AND and addition is XOR.
 * Requiring M to be invertible over GF(2) guarantees the mapping is
 * one-to-one, i.e. no two physical addresses collide after remapping.
 *
 * `BitMatrix` itself is plain algebra — `set`/`setRow` can build any
 * matrix, singular ones included. The invertibility invariant is
 * enforced at the system's boundaries instead:
 *
 *  - every `bim_builder.hh` constructor returns an invertible matrix
 *    by construction (permutations, unit-triangular XOR taps) or by
 *    rejection sampling against `invertible()` (`randomBroad`);
 *  - `AddressMapper` refuses a singular BIM at construction, so no
 *    singular matrix can ever reach the simulator;
 *  - the BIM search (`search/bim_search.hh`) only applies moves that
 *    preserve invertibility, rank-checking every candidate before it
 *    can be accepted.
 */

#ifndef VALLEY_BIM_BIT_MATRIX_HH
#define VALLEY_BIM_BIT_MATRIX_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace valley {

/**
 * Square bit matrix over GF(2) with up to 64 columns.
 *
 * Rows are stored as 64-bit masks: bit `c` of `rowMask[r]` is the
 * matrix entry M[r][c]. Row `r` generates output address bit `r`;
 * column `c` consumes input address bit `c`. Applying the matrix to an
 * address is one AND plus a parity per output bit, which corresponds
 * directly to the tree-of-XOR-gates hardware realization (Fig. 7).
 */
class BitMatrix
{
  public:
    /** Construct an n x n zero matrix (1 <= n <= 64). */
    explicit BitMatrix(unsigned n);

    /** The n x n identity (the BASE "no remapping" transform). */
    static BitMatrix identity(unsigned n);

    /** Matrix dimension. */
    unsigned size() const { return n; }

    /** Entry accessor. */
    bool get(unsigned row, unsigned col) const;

    /** Entry mutator. */
    void set(unsigned row, unsigned col, bool v);

    /** Raw row mask (bit c = M[row][c]). */
    std::uint64_t row(unsigned r) const;

    /** Replace a full row by its mask. */
    void setRow(unsigned r, std::uint64_t mask);

    /**
     * Apply the transform to an address: out bit r is the XOR of the
     * input bits selected by row r. Bits at or above `size()` pass
     * through unchanged so 30-bit maps can be applied to full Addr
     * values.
     */
    Addr apply(Addr in) const;

    /** Matrix product (this * rhs); both operands must share size. */
    BitMatrix multiply(const BitMatrix &rhs) const;

    /** Rank over GF(2) via Gaussian elimination. */
    unsigned rank() const;

    /** True iff the matrix is invertible over GF(2). */
    bool invertible() const { return rank() == n; }

    /** Inverse matrix, if it exists (Gauss-Jordan on [M|I]). */
    std::optional<BitMatrix> inverse() const;

    /** Structural equality. */
    bool operator==(const BitMatrix &rhs) const;

    /**
     * Number of 2-input XOR gates needed by a direct tree
     * implementation: sum over rows of max(popcount - 1, 0).
     */
    unsigned xorGateCount() const;

    /** Maximum number of taps on any row (fan-in of widest XOR tree). */
    unsigned maxRowTaps() const;

    /**
     * Depth in 2-input XOR gate levels of the widest row tree; this is
     * the quantity that must fit in the single remap cycle the paper
     * budgets (Section V).
     */
    unsigned xorTreeDepth() const;

    /** True iff row r is the identity row (single tap on column r). */
    bool rowIsIdentity(unsigned r) const;

    /** Printable 0/1 grid, one row per line, row 0 first. */
    std::string toString() const;

  private:
    unsigned n;
    std::vector<std::uint64_t> rowMask;
};

} // namespace valley

#endif // VALLEY_BIM_BIT_MATRIX_HH
