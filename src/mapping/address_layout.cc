#include "mapping/address_layout.hh"

#include <cassert>
#include <sstream>

#include "common/bitops.hh"
#include "mapping/layout_registry.hh"

namespace valley {

// Both legacy constructors now derive from the declarative preset
// table in layout_registry.cc; the bit positions (paper Fig. 4 /
// Sec. VI-D) follow from the field order there.

AddressLayout
AddressLayout::hynixGddr5()
{
    AddressLayout l = mapping::makeLayout("gddr5_1gb");
    assert(l.capacityBytes() == (std::uint64_t{1} << 30));
    return l;
}

AddressLayout
AddressLayout::stacked3d()
{
    AddressLayout l = mapping::makeLayout("stacked3d_4gb");
    assert(l.capacityBytes() == (std::uint64_t{1} << 32));
    return l;
}

unsigned
AddressLayout::numChannels() const
{
    return 1u << (channel.width + vault.width);
}

unsigned
AddressLayout::numBanksPerChannel() const
{
    return 1u << bank.width;
}

unsigned
AddressLayout::numRows() const
{
    return 1u << row.width;
}

unsigned
AddressLayout::numColumns() const
{
    return 1u << (colLo.width + colHi.width);
}

std::uint64_t
AddressLayout::capacityBytes() const
{
    return std::uint64_t{1} << addrBits;
}

unsigned
AddressLayout::blockBytes() const
{
    return 1u << block.width;
}

DramCoord
AddressLayout::decode(Addr a) const
{
    DramCoord c;
    const auto field = [a](const BitField &f) -> unsigned {
        if (f.width == 0)
            return 0;
        return static_cast<unsigned>(bits::extract(a, f.hi(), f.lo));
    };
    c.channel = field(channel);
    if (vault.width)
        c.channel = c.channel * (1u << vault.width) + field(vault);
    c.bank = field(bank);
    c.row = field(row);
    c.column = (field(colHi) << colLo.width) | field(colLo);
    return c;
}

Addr
AddressLayout::encode(const DramCoord &c) const
{
    Addr a = 0;
    const auto put = [&a](const BitField &f, unsigned v) {
        if (f.width)
            a = bits::insert(a, f.hi(), f.lo, v);
    };
    unsigned chan = c.channel;
    if (vault.width) {
        put(vault, chan & ((1u << vault.width) - 1));
        chan >>= vault.width;
    }
    put(channel, chan);
    put(bank, c.bank);
    put(row, c.row);
    put(colLo, c.column & ((1u << colLo.width) - 1));
    put(colHi, c.column >> colLo.width);
    return a;
}

void
AddressLayout::appendField(std::vector<unsigned> &v, const BitField &f)
{
    for (unsigned i = 0; i < f.width; ++i)
        v.push_back(f.lo + i);
}

std::vector<unsigned>
AddressLayout::randomizeTargets() const
{
    std::vector<unsigned> v;
    appendField(v, channel);
    appendField(v, vault);
    appendField(v, bank);
    return v;
}

std::vector<unsigned>
AddressLayout::channelBits() const
{
    std::vector<unsigned> v;
    appendField(v, channel);
    appendField(v, vault);
    return v;
}

std::vector<unsigned>
AddressLayout::bankBits() const
{
    std::vector<unsigned> v;
    appendField(v, bank);
    return v;
}

std::vector<unsigned>
AddressLayout::rowBits() const
{
    std::vector<unsigned> v;
    appendField(v, row);
    return v;
}

std::uint64_t
AddressLayout::pageMask() const
{
    return row.positionMask() | channel.positionMask() |
           vault.positionMask() | bank.positionMask();
}

std::uint64_t
AddressLayout::columnMask() const
{
    return colLo.positionMask() | colHi.positionMask();
}

std::uint64_t
AddressLayout::nonBlockMask() const
{
    return bits::mask(addrBits) & ~block.positionMask();
}

std::string
AddressLayout::describe() const
{
    struct Named { const char *label; const BitField *f; };
    const Named fields[] = {
        {"row", &row},     {"colHi", &colHi}, {"bank", &bank},
        {"vault", &vault}, {"ch", &channel},  {"colLo", &colLo},
        {"block", &block},
    };
    std::ostringstream out;
    out << name << " (" << addrBits << "-bit): ";
    bool first = true;
    for (const auto &nf : fields) {
        if (nf.f->width == 0)
            continue;
        if (!first)
            out << " | ";
        first = false;
        out << nf.label << "[" << nf.f->hi() << ":" << nf.f->lo << "]";
    }
    return out.str();
}

} // namespace valley
