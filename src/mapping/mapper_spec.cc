#include "mapping/mapper_spec.hh"

#include <cctype>
#include <cstring>
#include <stdexcept>

namespace valley {
namespace mapping {

namespace {

[[noreturn]] void
parseError(const std::string &text, const std::string &why)
{
    throw std::invalid_argument("bad mapper spec '" + text + "': " +
                                why);
}

bool
validKey(const std::string &k)
{
    if (k.empty())
        return false;
    for (char c : k)
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) || c == '_'))
            return false;
    return true;
}

} // namespace

bool
isMapperSpec(const std::string &name)
{
    return name.rfind(kMapperPrefix, 0) == 0;
}

MapperSpec
MapperSpec::parse(const std::string &text)
{
    if (!isMapperSpec(text))
        parseError(text, "missing 'map:' prefix");

    MapperSpec spec;
    const std::string body = text.substr(std::strlen(kMapperPrefix));

    // Split on ',' — the grammar has no escaping; values cannot
    // contain commas.
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (pos <= body.size()) {
        const std::size_t comma = body.find(',', pos);
        if (comma == std::string::npos) {
            fields.push_back(body.substr(pos));
            break;
        }
        fields.push_back(body.substr(pos, comma - pos));
        pos = comma + 1;
    }

    spec.family = fields.front();
    if (!validKey(spec.family))
        parseError(text, "bad family name '" + fields.front() + "'");

    for (std::size_t i = 1; i < fields.size(); ++i) {
        const std::string &f = fields[i];
        const std::size_t eq = f.find('=');
        if (eq == std::string::npos)
            parseError(text, "parameter '" + f + "' has no '='");
        const std::string key = f.substr(0, eq);
        const std::string value = f.substr(eq + 1);
        if (!validKey(key))
            parseError(text, "bad parameter key '" + key + "'");
        if (value.empty())
            parseError(text, "parameter '" + key + "' has no value");
        if (spec.find(key))
            parseError(text, "duplicate parameter '" + key + "'");
        spec.params.emplace_back(key, value);
    }
    return spec;
}

std::string
MapperSpec::print() const
{
    std::string out = std::string(kMapperPrefix) + family;
    for (const auto &[k, v] : params)
        out += "," + k + "=" + v;
    return out;
}

const std::string *
MapperSpec::find(const std::string &key) const
{
    for (const auto &[k, v] : params)
        if (k == key)
            return &v;
    return nullptr;
}

} // namespace mapping
} // namespace valley
