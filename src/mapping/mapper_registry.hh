/**
 * @file
 * String-keyed, self-registering address-mapper registry.
 *
 * The seed's closed `Scheme` enum meant adding a mapper touched the
 * harness, the caches and every CLI. Now a mapper *family* registers
 * under a spec-string key (the Ramulator
 * `RAMULATOR_REGISTER_IMPLEMENTATION` idiom) and everything downstream
 * — `harness::runOne`/`runGrid`, the cache keys, the CLIs — speaks
 * specs:
 *
 *     map:FAMILY[,key=value]...
 *     e.g.  map:base   map:pae,seed=3   map:perm,order=RoCoBaCh
 *
 * A family owns a parameter schema (defaults + canonical formatting),
 * a display name, and a build function from (resolved spec, layout,
 * rng) to a BIM. `ResolvedMapperSpec` is a spec validated against its
 * family's schema; its `canonical()` form (non-default parameters
 * only, schema order) and FNV-1a `hash()` are the stable identities
 * the on-disk caches key on — exactly the `synth:` workload-spec
 * semantics (`synth/registry.hh`).
 *
 * The legacy `Scheme` enum survives as a thin facade: every enum
 * value maps to a registered family via `schemeSpec`, and the
 * differential oracle (tests/mapper_oracle_test.cc) pins the two
 * paths bit-identical.
 *
 * Profile-dependent families (sbim, gbim) register with
 * `needsProfiles`; `makeMapper` cannot build them from a layout alone
 * and the harness routes them through `search::` instead, as before.
 *
 * Registration idiom for a new out-of-tree family (in any linked TU):
 *
 *     VALLEY_REGISTER_MAPPER([] {
 *         MapperFamily f;
 *         f.name = "myfam";
 *         ...
 *         return f;
 *     }());
 *
 * Built-in families live in builtin_mappers.cc; the registry pins
 * that translation unit via an anchor symbol so static-library
 * linking cannot strip its registrations.
 */

#ifndef VALLEY_MAPPING_MAPPER_REGISTRY_HH
#define VALLEY_MAPPING_MAPPER_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bim/bit_matrix.hh"
#include "common/rng.hh"
#include "mapping/address_mapper.hh"
#include "mapping/mapper_spec.hh"

namespace valley {
namespace mapping {

class ResolvedMapperSpec;

/** Parameter value types; drive canonicalization. */
enum class MapperParamKind
{
    U64, ///< unsigned integer; canonicalized via parse + reprint
    Str, ///< free text (no ','); kept verbatim after validation
};

/** One parameter of a mapper family's schema. */
struct MapperParamSpec
{
    std::string key;  ///< [a-z0-9_]+
    MapperParamKind kind = MapperParamKind::U64;
    /**
     * Canonical default text; empty means the parameter is required.
     * `canonical()` omits parameters whose value equals the default.
     */
    std::string def;
    std::string help; ///< one-liner for --list-mappers
    /** Optional extra validation; throws std::invalid_argument. */
    std::function<void(const std::string &value)> validate;
};

/** A registered mapper family. */
struct MapperFamily
{
    std::string name;    ///< registry key, [a-z0-9_]+
    std::string summary; ///< one-liner for --list-mappers

    /**
     * True for searched mappers (sbim/gbim) that are built by the
     * search service from workload profiles; `makeMapper` throws for
     * them and the harness routes through `search::` instead.
     */
    bool needsProfiles = false;

    /**
     * Seed-stream tag mixed with the user seed into the family's RNG
     * (see `mapperSeed`). Built-in families keep their legacy enum
     * ordinal so their BIM draws are bit-identical to the seed's
     * `makeScheme`; new families pick any unused value.
     */
    std::uint64_t seedTag = 0;

    std::vector<MapperParamSpec> params;

    /**
     * Display name of the built mapper — `AddressMapper::name()`,
     * which lands in `RunResult::scheme` and the figure columns. Must
     * contain no whitespace and none of `,;|%` (it is embedded in
     * space-separated result rows and '|'-separated journal lines).
     */
    std::function<std::string(const ResolvedMapperSpec &)> displayName;

    /**
     * Build the family's BIM. `rng` is pre-seeded from (seedTag,
     * effective seed); deterministic families simply never draw.
     * Absent for needsProfiles families.
     */
    std::function<BitMatrix(const ResolvedMapperSpec &,
                            const AddressLayout &layout,
                            XorShiftRng &rng)>
        build;
};

/**
 * A mapper spec validated against its family's schema: every
 * parameter resolved to canonical text (defaults filled in).
 */
class ResolvedMapperSpec
{
  public:
    ResolvedMapperSpec(const MapperFamily *family,
                       std::vector<std::string> values)
        : family_(family), values_(std::move(values))
    {
    }

    const MapperFamily &family() const { return *family_; }

    /** Canonical value of a schema parameter (must exist). */
    const std::string &value(const std::string &key) const;

    /** `value(key)` parsed as u64 (parameter must be U64-kind). */
    std::uint64_t u64(const std::string &key) const;

    /**
     * Canonical spec string: `map:family[,key=value]...` with
     * default-valued parameters omitted, remaining ones in schema
     * order. Equal mappers print equal strings; this is the cache
     * identity.
     */
    std::string canonical() const;

    /** FNV-1a 64 of `canonical()` — the stable short identity. */
    std::uint64_t hash() const;

  private:
    const MapperFamily *family_;
    std::vector<std::string> values_; ///< schema order, canonical text
};

/**
 * Register a family. Throws `std::invalid_argument` on a duplicate
 * or malformed name, a malformed parameter schema, or a missing
 * build function (unless `needsProfiles`). Thread-safe; handles
 * returned by `findMapperFamily` stay valid across registrations.
 */
void registerMapper(MapperFamily family);

/** All registered families, registration order. */
std::vector<const MapperFamily *> mapperFamilies();

/** Find a family by name; nullptr if unknown. */
const MapperFamily *findMapperFamily(const std::string &name);

/**
 * Parse + schema-validate a spec string. Throws
 * `std::invalid_argument` on grammar errors, an unknown family (the
 * diagnostic lists every registered family), an unknown parameter
 * key (diagnostic lists the family's keys), a missing required
 * parameter, or a value failing its kind/validator.
 */
ResolvedMapperSpec resolveMapperSpec(const std::string &spec);

/** Shorthand for `resolveMapperSpec(spec).canonical()`. */
std::string canonicalMapperSpec(const std::string &spec);

/**
 * RNG seed stream of a family: mixes the family's `seedTag` with the
 * user seed exactly like the seed's `schemeSeed`, so built-in
 * families reproduce the legacy BIM draws bit-for-bit.
 */
std::uint64_t mapperSeed(const MapperFamily &family, std::uint64_t seed);

/**
 * Build a mapper from a spec string.
 *
 * @param seed BIM instantiation seed, used when the family draws
 *             randomness and the spec does not pin `seed=` itself
 *             ("BIM-1..3" in Fig. 19 are seeds 1..3).
 * @throws std::invalid_argument on any resolve error, or for
 *         needsProfiles families (route those through `search::`).
 */
std::unique_ptr<AddressMapper> makeMapper(const std::string &spec,
                                          const AddressLayout &layout,
                                          std::uint64_t seed = 1);

/** Canonical registry spec of a legacy enum scheme. */
std::string schemeSpec(Scheme s);

namespace detail {

/**
 * No-op defined in builtin_mappers.cc; calling it forces that TU
 * into the link so its self-registrations run (static-archive
 * stripping guard — a data anchor would be constant-folded away,
 * an out-of-line call cannot be without LTO).
 */
void linkBuiltinMappers();

/** Load-time registration helper for VALLEY_REGISTER_MAPPER. */
bool registerMapperAtLoad(MapperFamily family);

} // namespace detail
} // namespace mapping
} // namespace valley

#define VALLEY_MAPPER_CONCAT_INNER(a, b) a##b
#define VALLEY_MAPPER_CONCAT(a, b) VALLEY_MAPPER_CONCAT_INNER(a, b)

/** Self-register a MapperFamily at program load. */
#define VALLEY_REGISTER_MAPPER(family_expr)                                \
    static const bool VALLEY_MAPPER_CONCAT(valley_mapper_registered_,      \
                                           __COUNTER__) =                  \
        ::valley::mapping::detail::registerMapperAtLoad((family_expr))

#endif // VALLEY_MAPPING_MAPPER_REGISTRY_HH
