/**
 * @file
 * DRAM address layouts: how physical address bits split into the
 * block / column / channel / bank (/ vault) / row fields.
 *
 * The baseline layout follows the paper's Fig. 4 (Hynix GDDR5 1 GB,
 * 30-bit physical address) with the field positions pinned by the
 * paper's text: the BASE entropy valley covers "channel bits 8-9 and
 * bank bit 10" and RMP's high-entropy donor bits are "8-11, 15 and
 * 16". The 3D-stacked layout models 4 stacks x 16 vaults x 16 banks
 * (Section VI-D) in a 32-bit (4 GB) space.
 */

#ifndef VALLEY_MAPPING_ADDRESS_LAYOUT_HH
#define VALLEY_MAPPING_ADDRESS_LAYOUT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace valley {

/** A contiguous bit field inside the physical address. */
struct BitField
{
    unsigned lo = 0;    ///< least significant bit position
    unsigned width = 0; ///< number of bits (0 = absent field)

    unsigned hi() const { return lo + width - 1; }

    /** Mask of the field's bit positions within the address. */
    std::uint64_t
    positionMask() const
    {
        if (width == 0)
            return 0;
        return ((width >= 64 ? ~std::uint64_t{0}
                             : ((std::uint64_t{1} << width) - 1))
                << lo);
    }
};

/**
 * Decoded DRAM coordinates of one physical address.
 *
 * `channel` is the global independent-bus index: for the conventional
 * layout it is the channel field; for the 3D-stacked layout it is
 * stack * vaultsPerStack + vault, since each vault owns its own TSV
 * bus and bank set.
 */
struct DramCoord
{
    unsigned channel = 0;
    unsigned bank = 0;
    unsigned row = 0;
    unsigned column = 0;
};

/**
 * Field geometry of a DRAM system plus decode helpers.
 */
class AddressLayout
{
  public:
    /** Paper Fig. 4: 1 GB Hynix GDDR5, 4 channels x 16 banks. */
    static AddressLayout hynixGddr5();

    /** Section VI-D: 4 stacks x 16 vaults x 16 banks, 4 GB. */
    static AddressLayout stacked3d();

    std::string name;

    /**
     * Canonical `layout:KEY` spec when this layout was built from a
     * registered preset (`mapping/layout_registry.hh`); empty for
     * hand-assembled layouts. Cache and journal identities key on
     * this via `mapping::layoutIdentity`.
     */
    std::string spec;

    unsigned addrBits = 0;

    BitField block;   ///< intra-page offset (never remapped)
    BitField colLo;   ///< low column bits (below the channel field)
    BitField channel; ///< channel (conventional) or stack (3D)
    BitField vault;   ///< vault (3D only; width 0 otherwise)
    BitField bank;    ///< bank within channel/vault
    BitField colHi;   ///< high column bits
    BitField row;     ///< DRAM row (page)

    /** @name Geometry queries */
    /// @{
    unsigned numChannels() const;           ///< independent buses
    unsigned numBanksPerChannel() const;
    unsigned numRows() const;
    unsigned numColumns() const;
    std::uint64_t capacityBytes() const;
    unsigned blockBytes() const;
    /// @}

    /** Decode an address into DRAM coordinates. */
    DramCoord decode(Addr a) const;

    /** Inverse of decode (block offset zero). */
    Addr encode(const DramCoord &c) const;

    /**
     * Output bit positions that select channel/vault/bank — the bits
     * the Broad schemes concentrate entropy into (ascending order).
     */
    std::vector<unsigned> randomizeTargets() const;

    /** Channel(+vault) bit positions only (ascending). */
    std::vector<unsigned> channelBits() const;

    /** Bank bit positions only (ascending). */
    std::vector<unsigned> bankBits() const;

    /** Row bit positions (ascending) — PM donor pool. */
    std::vector<unsigned> rowBits() const;

    /**
     * Mask of DRAM page address bits: row + channel + vault + bank.
     * These are the PAE input candidates (Fig. 9).
     */
    std::uint64_t pageMask() const;

    /** Mask of column bits (colLo + colHi). */
    std::uint64_t columnMask() const;

    /** Mask of all non-block bits — FAE/ALL input candidates. */
    std::uint64_t nonBlockMask() const;

    /** Human-readable field map, most significant field first. */
    std::string describe() const;

  private:
    static void appendField(std::vector<unsigned> &v, const BitField &f);
};

/**
 * Precompiled decode plan for one AddressLayout.
 *
 * `AddressLayout::decode` re-derives each field's shift and mask per
 * call; this flattens the geometry into six shift/mask pairs once so
 * the per-address work is straight-line shifts, ANDs and ORs — the
 * form the simulator uses on its per-request hot path. Width-0 fields
 * compile to a zero mask, so the vault-less conventional layout needs
 * no branch.
 */
class CompiledDecoder
{
  public:
    CompiledDecoder() = default;

    explicit CompiledDecoder(const AddressLayout &l)
        : chShift(l.channel.lo), chMask(fieldMask(l.channel)),
          vShift(l.vault.lo), vMask(fieldMask(l.vault)),
          vWidth(l.vault.width), bankShift(l.bank.lo),
          bankMask(fieldMask(l.bank)), rowShift(l.row.lo),
          rowMask(fieldMask(l.row)), colLoShift(l.colLo.lo),
          colLoMask(fieldMask(l.colLo)), colLoWidth(l.colLo.width),
          colHiShift(l.colHi.lo), colHiMask(fieldMask(l.colHi))
    {
    }

    /** Exact equivalent of `AddressLayout::decode`. */
    DramCoord
    decode(Addr a) const
    {
        DramCoord c;
        c.channel = (static_cast<unsigned>(a >> chShift) & chMask)
                        << vWidth |
                    (static_cast<unsigned>(a >> vShift) & vMask);
        c.bank = static_cast<unsigned>(a >> bankShift) & bankMask;
        c.row = static_cast<unsigned>(a >> rowShift) & rowMask;
        c.column = (static_cast<unsigned>(a >> colHiShift) & colHiMask)
                       << colLoWidth |
                   (static_cast<unsigned>(a >> colLoShift) & colLoMask);
        return c;
    }

  private:
    static unsigned
    fieldMask(const BitField &f)
    {
        return f.width == 0 ? 0u : (1u << f.width) - 1u;
    }

    unsigned chShift = 0, chMask = 0;
    unsigned vShift = 0, vMask = 0, vWidth = 0;
    unsigned bankShift = 0, bankMask = 0;
    unsigned rowShift = 0, rowMask = 0;
    unsigned colLoShift = 0, colLoMask = 0, colLoWidth = 0;
    unsigned colHiShift = 0, colHiMask = 0;
};

} // namespace valley

#endif // VALLEY_MAPPING_ADDRESS_LAYOUT_HH
