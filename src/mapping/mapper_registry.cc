#include "mapping/mapper_registry.hh"

#include <cctype>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/fnv.hh"

namespace valley {
namespace mapping {

namespace {

bool
validKey(const std::string &k)
{
    if (k.empty())
        return false;
    for (char c : k)
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) || c == '_'))
            return false;
    return true;
}

/** Canonical text of a value under its parameter kind; throws. */
std::string
canonicalValue(const MapperParamSpec &p, const std::string &value,
               const std::string &spec_text)
{
    std::string out = value;
    if (p.kind == MapperParamKind::U64) {
        std::size_t used = 0;
        unsigned long long v = 0;
        try {
            v = std::stoull(value, &used, 10);
        } catch (const std::exception &) {
            used = std::string::npos;
        }
        if (used != value.size())
            throw std::invalid_argument(
                "bad mapper spec '" + spec_text + "': parameter '" +
                p.key + "' wants an unsigned integer, got '" + value +
                "'");
        out = std::to_string(v);
    }
    if (p.validate)
        p.validate(out);
    return out;
}

struct Registry
{
    std::mutex mu;
    // unique_ptr keeps `const MapperFamily *` handles stable across
    // later registrations.
    std::vector<std::unique_ptr<const MapperFamily>> families;

    void
    add(MapperFamily f)
    {
        if (!validKey(f.name))
            throw std::invalid_argument("bad mapper family name '" +
                                        f.name + "': want [a-z0-9_]+");
        if (!f.build && !f.needsProfiles)
            throw std::invalid_argument("mapper family '" + f.name +
                                        "' has no build function");
        if (!f.displayName)
            throw std::invalid_argument("mapper family '" + f.name +
                                        "' has no display name");
        for (const auto &p : f.params)
            if (!validKey(p.key))
                throw std::invalid_argument(
                    "mapper family '" + f.name +
                    "' has a bad parameter key '" + p.key + "'");
        std::lock_guard<std::mutex> lock(mu);
        for (const auto &existing : families)
            if (existing->name == f.name)
                throw std::invalid_argument(
                    "duplicate mapper family '" + f.name + "'");
        families.push_back(
            std::make_unique<const MapperFamily>(std::move(f)));
    }

    static Registry &
    instance()
    {
        static Registry r;
        return r;
    }
};

/** Force builtin_mappers.cc to link before any registry lookup. */
void
ensureBuiltins()
{
    detail::linkBuiltinMappers();
}

} // namespace

const std::string &
ResolvedMapperSpec::value(const std::string &key) const
{
    for (std::size_t i = 0; i < family_->params.size(); ++i)
        if (family_->params[i].key == key)
            return values_[i];
    throw std::invalid_argument("mapper family '" + family_->name +
                                "' has no parameter '" + key + "'");
}

std::uint64_t
ResolvedMapperSpec::u64(const std::string &key) const
{
    return std::stoull(value(key));
}

std::string
ResolvedMapperSpec::canonical() const
{
    std::string out = std::string(kMapperPrefix) + family_->name;
    for (std::size_t i = 0; i < family_->params.size(); ++i)
        if (values_[i] != family_->params[i].def)
            out += "," + family_->params[i].key + "=" + values_[i];
    return out;
}

std::uint64_t
ResolvedMapperSpec::hash() const
{
    return bits::fnv1a(canonical());
}

void
registerMapper(MapperFamily family)
{
    Registry::instance().add(std::move(family));
}

std::vector<const MapperFamily *>
mapperFamilies()
{
    ensureBuiltins();
    Registry &r = Registry::instance();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<const MapperFamily *> out;
    out.reserve(r.families.size());
    for (const auto &f : r.families)
        out.push_back(f.get());
    return out;
}

const MapperFamily *
findMapperFamily(const std::string &name)
{
    ensureBuiltins();
    Registry &r = Registry::instance();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto &f : r.families)
        if (f->name == name)
            return f.get();
    return nullptr;
}

ResolvedMapperSpec
resolveMapperSpec(const std::string &spec)
{
    const MapperSpec parsed = MapperSpec::parse(spec);

    const MapperFamily *family = findMapperFamily(parsed.family);
    if (!family) {
        std::string known;
        for (const MapperFamily *f : mapperFamilies())
            known += (known.empty() ? "" : ", ") + f->name;
        throw std::invalid_argument(
            "bad mapper spec '" + spec + "': unknown family '" +
            parsed.family + "'; registered families are " + known);
    }

    // Every written parameter must exist in the schema.
    for (const auto &[key, value] : parsed.params) {
        bool known = false;
        for (const auto &p : family->params)
            known = known || p.key == key;
        if (!known) {
            std::string keys;
            for (const auto &p : family->params)
                keys += (keys.empty() ? "" : ", ") + p.key;
            throw std::invalid_argument(
                "bad mapper spec '" + spec + "': family '" +
                family->name + "' has no parameter '" + key +
                "'; known parameters are " +
                (keys.empty() ? std::string("(none)") : keys));
        }
    }

    // Fill schema order: written value (canonicalized) or default.
    std::vector<std::string> values;
    values.reserve(family->params.size());
    for (const auto &p : family->params) {
        const std::string *written = parsed.find(p.key);
        if (!written && p.def.empty())
            throw std::invalid_argument(
                "bad mapper spec '" + spec + "': family '" +
                family->name + "' requires parameter '" + p.key + "'");
        values.push_back(
            written ? canonicalValue(p, *written, spec) : p.def);
    }
    return ResolvedMapperSpec(family, std::move(values));
}

std::string
canonicalMapperSpec(const std::string &spec)
{
    return resolveMapperSpec(spec).canonical();
}

std::uint64_t
mapperSeed(const MapperFamily &family, std::uint64_t seed)
{
    // The seed's `schemeSeed` mix, with the family's tag standing in
    // for the enum ordinal — bit-compatibility is load-bearing: the
    // differential oracle compares registry BIMs against legacy
    // `makeScheme` draws.
    return (seed + 1) * 0x9E3779B97F4A7C15ull ^
           (family.seedTag + 1) * 0xBF58476D1CE4E5B9ull;
}

std::unique_ptr<AddressMapper>
makeMapper(const std::string &spec, const AddressLayout &layout,
           std::uint64_t seed)
{
    const ResolvedMapperSpec resolved = resolveMapperSpec(spec);
    const MapperFamily &family = resolved.family();
    if (family.needsProfiles)
        throw std::invalid_argument(
            "makeMapper: " + resolved.canonical() +
            " requires workload profiles; use the search:: mappers");

    // A spec-pinned `seed=` overrides the caller's seed so the spec
    // string alone names the exact matrix; 0 (the default) inherits.
    std::uint64_t effective = seed;
    for (const auto &p : family.params)
        if (p.key == "seed" && resolved.u64("seed") != 0)
            effective = resolved.u64("seed");

    XorShiftRng rng(mapperSeed(family, effective));
    BitMatrix m = family.build(resolved, layout, rng);
    return std::make_unique<AddressMapper>(family.displayName(resolved),
                                           layout, std::move(m));
}

std::string
schemeSpec(Scheme s)
{
    switch (s) {
      case Scheme::BASE: return "map:base";
      case Scheme::PM:   return "map:pm";
      case Scheme::RMP:  return "map:rmp";
      case Scheme::PAE:  return "map:pae";
      case Scheme::FAE:  return "map:fae";
      case Scheme::ALL:  return "map:all";
      case Scheme::SBIM: return "map:sbim";
      case Scheme::GBIM: return "map:gbim";
    }
    return "map:base";
}

namespace detail {

bool
registerMapperAtLoad(MapperFamily family)
{
    registerMapper(std::move(family));
    return true;
}

} // namespace detail
} // namespace mapping
} // namespace valley
