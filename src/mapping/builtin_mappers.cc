/**
 * @file
 * Built-in mapper families: the paper's six schemes, the searched
 * SBIM/GBIM placeholders, the minimalist open-page mapping, and the
 * permutation-order family the registry makes nearly free.
 *
 * The BIM constructions are moved verbatim from the seed's
 * `makeScheme` — the differential oracle (tests/mapper_oracle_test.cc)
 * holds every family bit-identical to its legacy enum path, so edits
 * here must preserve draw order and seed tags.
 */

#include <stdexcept>

#include "bim/bim_builder.hh"
#include "mapping/mapper_registry.hh"

namespace valley {
namespace mapping {
namespace {

BitMatrix
buildPm(const AddressLayout &layout)
{
    // Each channel/vault/bank bit XORed with a distinct least
    // significant row bit (Fig. 8): the narrow-range gather the Broad
    // schemes improve upon.
    const std::vector<unsigned> targets = layout.randomizeTargets();
    const std::vector<unsigned> row_bits = layout.rowBits();
    if (row_bits.size() < targets.size())
        throw std::invalid_argument("PM: not enough row bits");
    const std::vector<unsigned> donors(row_bits.begin(),
                                       row_bits.begin() + targets.size());
    return bim::permutationBased(layout.addrBits, targets, donors);
}

BitMatrix
buildRmp(const AddressLayout &layout)
{
    // RMP routes the 6 bits with the highest *average* entropy across
    // all benchmarks into the channel/bank positions (Section IV-B).
    // Applying that methodology to this repository's workload suite
    // (see bench/fig05) selects bits 11-16 on the GDDR5 layout; other
    // layouts fall back to a generic above-column donor choice. Like
    // the paper's RMP, a static global choice cannot adapt to
    // per-application valleys — exactly the weakness the Broad
    // schemes fix.
    std::vector<unsigned> sources;
    if (layout.addrBits == 30 && layout.vault.width == 0) {
        sources = {11, 12, 13, 14, 15, 16};
    } else {
        const std::vector<unsigned> targets = layout.randomizeTargets();
        sources.assign(targets.begin(), targets.end() - 2);
        sources.push_back(layout.colHi.lo + 1);
        sources.push_back(layout.colHi.lo + 2);
    }
    return bim::remap(layout.addrBits, layout.randomizeTargets(), sources);
}

BitMatrix
buildAll(const AddressLayout &layout, XorShiftRng &rng)
{
    // ALL rewrites every non-block bit. Bit 6 stays identity: the
    // memory hierarchy operates on 128 B transactions, so bits [6:0]
    // are intra-transaction offsets and remapping bit 6 would break
    // one-to-one mapping at transaction granularity (see DESIGN.md).
    const unsigned n = layout.addrBits;
    std::vector<unsigned> targets;
    std::uint64_t mask = layout.nonBlockMask() & ~(1ull << 6);
    for (unsigned b = 0; b < n; ++b)
        if ((mask >> b) & 1)
            targets.push_back(b);
    return bim::randomBroad(n, targets, mask, rng);
}

/** Fixed display name + no parameters + legacy seed tag. */
MapperFamily
paperFamily(std::string name, std::string display, std::string summary,
            std::uint64_t seed_tag,
            std::function<BitMatrix(const ResolvedMapperSpec &,
                                    const AddressLayout &, XorShiftRng &)>
                build)
{
    MapperFamily f;
    f.name = std::move(name);
    f.summary = std::move(summary);
    f.seedTag = seed_tag;
    f.displayName = [display](const ResolvedMapperSpec &) {
        return display;
    };
    f.build = std::move(build);
    return f;
}

/** The `seed=` parameter of the randomized Broad families. */
MapperParamSpec
seedParam()
{
    return {"seed", MapperParamKind::U64, "0",
            "BIM instantiation seed; 0 inherits the harness seed",
            nullptr};
}

/** needsProfiles placeholder for the searched families. */
MapperFamily
searchedFamily(std::string name, std::string display,
               std::string summary, std::uint64_t seed_tag)
{
    MapperFamily f;
    f.name = std::move(name);
    f.summary = std::move(summary);
    f.needsProfiles = true;
    f.seedTag = seed_tag;
    f.displayName = [display](const ResolvedMapperSpec &) {
        return display;
    };
    return f;
}

// --- the permutation-order family ----------------------------------

/** Field tokens of a `map:perm` order string, MSB first. */
const char *const kPermTokens[] = {"Ro", "Co", "Ch", "Va", "Ba"};

std::vector<std::string>
parseOrderTokens(const std::string &order)
{
    std::vector<std::string> tokens;
    for (std::size_t pos = 0; pos < order.size(); pos += 2) {
        const std::string tok = order.substr(pos, 2);
        bool known = false;
        for (const char *t : kPermTokens)
            known = known || tok == t;
        if (!known)
            throw std::invalid_argument(
                "bad perm order '" + order + "': unknown field token '" +
                tok + "' (want a sequence of Ro/Co/Ch/Va/Ba)");
        for (const auto &seen : tokens)
            if (seen == tok)
                throw std::invalid_argument("bad perm order '" + order +
                                            "': duplicate field token '" +
                                            tok + "'");
        tokens.push_back(tok);
    }
    if (tokens.empty())
        throw std::invalid_argument("bad perm order '" + order +
                                    "': empty");
    return tokens;
}

/** Input bit positions of one order token, ascending. */
std::vector<unsigned>
tokenBits(const std::string &tok, const AddressLayout &layout)
{
    const auto bitsOf = [](const BitField &f) {
        std::vector<unsigned> v;
        for (unsigned i = 0; i < f.width; ++i)
            v.push_back(f.lo + i);
        return v;
    };
    if (tok == "Ro")
        return bitsOf(layout.row);
    if (tok == "Ch")
        return bitsOf(layout.channel);
    if (tok == "Va")
        return bitsOf(layout.vault);
    if (tok == "Ba")
        return bitsOf(layout.bank);
    // Co: the merged column, low bits first.
    std::vector<unsigned> v = bitsOf(layout.colLo);
    for (unsigned b : bitsOf(layout.colHi))
        v.push_back(b);
    return v;
}

/**
 * Pure bit-permutation mapper: place the address fields above the
 * block offset in the requested MSB→LSB order. `order` must name
 * every field the layout actually has (Va only on 3D layouts, Co
 * only when there are column bits) exactly once.
 */
BitMatrix
buildPerm(const std::string &order, const AddressLayout &layout)
{
    const std::vector<std::string> tokens = parseOrderTokens(order);

    for (const char *t : kPermTokens) {
        const bool present = !tokenBits(t, layout).empty();
        bool named = false;
        for (const auto &tok : tokens)
            named = named || tok == t;
        if (present && !named)
            throw std::invalid_argument(
                "bad perm order '" + order + "' for layout '" +
                layout.name + "': missing field " + t);
        if (!present && named)
            throw std::invalid_argument(
                "bad perm order '" + order + "' for layout '" +
                layout.name + "': field " + t + " is absent here");
    }

    // Output positions above the block field, filled LSB first from
    // the reversed (LSB-first) token order.
    std::vector<unsigned> source_of_output(layout.addrBits);
    for (unsigned i = 0; i < layout.block.width; ++i)
        source_of_output[layout.block.lo + i] = layout.block.lo + i;

    unsigned out = layout.block.lo + layout.block.width;
    for (auto it = tokens.rbegin(); it != tokens.rend(); ++it)
        for (unsigned in : tokenBits(*it, layout))
            source_of_output[out++] = in;

    return bim::permutation(layout.addrBits, source_of_output);
}

MapperFamily
permFamily()
{
    MapperFamily f;
    f.name = "perm";
    f.summary = "pure field permutation; order= lists fields MSB to "
                "LSB from Ro/Co/Ch/Va/Ba";
    f.seedTag = 17; // never draws; tag only namespaces the seed stream
    f.params = {{"order", MapperParamKind::Str, "",
                 "field order, MSB first, e.g. RoCoBaCh (required)",
                 [](const std::string &v) { parseOrderTokens(v); }}};
    f.displayName = [](const ResolvedMapperSpec &r) {
        return "PERM-" + r.value("order");
    };
    f.build = [](const ResolvedMapperSpec &r, const AddressLayout &l,
                 XorShiftRng &) {
        return buildPerm(r.value("order"), l);
    };
    return f;
}

MapperFamily
mopFamily()
{
    // The minimalist open-page mapping of Kaseridis et al. [7]:
    // donors are the bits directly above the high column field, i.e.
    // the lowest row bits — consecutive DRAM pages interleave across
    // banks and channels (good for CPU streams; the paper shows the
    // strategy cannot adapt to GPU valleys).
    return paperFamily(
        "mop", "MOP",
        "minimalist open-page: lowest row bits remapped into "
        "channel/bank",
        16,
        [](const ResolvedMapperSpec &, const AddressLayout &layout,
           XorShiftRng &) {
            const std::vector<unsigned> targets =
                layout.randomizeTargets();
            std::vector<unsigned> sources;
            for (unsigned i = 0; i < targets.size(); ++i)
                sources.push_back(layout.row.lo + i);
            return bim::remap(layout.addrBits, targets, sources);
        });
}

// Seed tags 0..7 are the legacy `Scheme` enum ordinals — load-bearing
// for bit-identity with the seed's `makeScheme` RNG streams.

VALLEY_REGISTER_MAPPER(paperFamily(
    "base", "BASE", "the native layout order (identity BIM)", 0,
    [](const ResolvedMapperSpec &, const AddressLayout &layout,
       XorShiftRng &) { return BitMatrix::identity(layout.addrBits); }));

VALLEY_REGISTER_MAPPER(paperFamily(
    "pm", "PM",
    "permutation-based mapping: channel/bank bits XOR low row bits",
    1,
    [](const ResolvedMapperSpec &, const AddressLayout &layout,
       XorShiftRng &) { return buildPm(layout); }));

VALLEY_REGISTER_MAPPER(paperFamily(
    "rmp", "RMP",
    "remap: globally highest-entropy bits into channel/bank", 2,
    [](const ResolvedMapperSpec &, const AddressLayout &layout,
       XorShiftRng &) { return buildRmp(layout); }));

VALLEY_REGISTER_MAPPER([] {
    MapperFamily f = paperFamily(
        "pae", "PAE",
        "Broad over the DRAM page address bits (power-efficient)", 3,
        [](const ResolvedMapperSpec &, const AddressLayout &layout,
           XorShiftRng &rng) {
            return bim::randomBroad(layout.addrBits,
                                    layout.randomizeTargets(),
                                    layout.pageMask(), rng);
        });
    f.params = {seedParam()};
    return f;
}());

VALLEY_REGISTER_MAPPER([] {
    MapperFamily f = paperFamily(
        "fae", "FAE", "Broad over the full non-block address", 4,
        [](const ResolvedMapperSpec &, const AddressLayout &layout,
           XorShiftRng &rng) {
            return bim::randomBroad(layout.addrBits,
                                    layout.randomizeTargets(),
                                    layout.nonBlockMask(), rng);
        });
    f.params = {seedParam()};
    return f;
}());

VALLEY_REGISTER_MAPPER([] {
    MapperFamily f = paperFamily(
        "all", "ALL",
        "Broad rewriting every non-block bit (rows and columns too)",
        5,
        [](const ResolvedMapperSpec &, const AddressLayout &layout,
           XorShiftRng &rng) { return buildAll(layout, rng); });
    f.params = {seedParam()};
    return f;
}());

VALLEY_REGISTER_MAPPER(searchedFamily(
    "sbim", "SBIM",
    "per-workload searched BIM (built by search::searchedMapper)", 6));

VALLEY_REGISTER_MAPPER(searchedFamily(
    "gbim", "GBIM",
    "joint workload-set searched BIM (built by search::setMapper)",
    7));

VALLEY_REGISTER_MAPPER(mopFamily());

VALLEY_REGISTER_MAPPER(permFamily());

} // namespace

namespace detail {

// Called by mapper_registry.cc so static-library linking keeps this
// TU (and with it the registrations above). A data anchor is not
// enough: the compiler may fold the unused load away, dropping the
// undefined-symbol reference that pulls this object from the archive.
void
linkBuiltinMappers()
{
}

} // namespace detail
} // namespace mapping
} // namespace valley
