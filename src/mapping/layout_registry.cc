#include "mapping/layout_registry.hh"

#include <cctype>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "workloads/workload_set.hh"

namespace valley {
namespace mapping {

namespace {

bool
validKey(const std::string &k)
{
    if (k.empty())
        return false;
    for (char c : k)
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) || c == '_'))
            return false;
    return true;
}

BitField *
fieldOf(AddressLayout &l, FieldKind kind)
{
    switch (kind) {
      case FieldKind::Block:   return &l.block;
      case FieldKind::ColLo:   return &l.colLo;
      case FieldKind::Channel: return &l.channel;
      case FieldKind::Vault:   return &l.vault;
      case FieldKind::Bank:    return &l.bank;
      case FieldKind::ColHi:   return &l.colHi;
      case FieldKind::Row:     return &l.row;
    }
    return nullptr;
}

const char *
kindName(FieldKind kind)
{
    switch (kind) {
      case FieldKind::Block:   return "block";
      case FieldKind::ColLo:   return "colLo";
      case FieldKind::Channel: return "channel";
      case FieldKind::Vault:   return "vault";
      case FieldKind::Bank:    return "bank";
      case FieldKind::ColHi:   return "colHi";
      case FieldKind::Row:     return "row";
    }
    return "?";
}

[[noreturn]] void
orgError(const DramOrganization &org, const std::string &why)
{
    throw std::invalid_argument("bad DRAM organization '" + org.key +
                                "': " + why);
}

/**
 * The preset table. Bit positions follow from the field order; the
 * first two entries must stay field-for-field identical to the
 * legacy hand-coded constructors (layout_registry_test.cc pins this).
 */
std::vector<DramOrganization>
builtinOrganizations()
{
    using K = FieldKind;
    return {
        // Paper Fig. 4: 4 channels x 16 banks, 30-bit address.
        {"gddr5_1gb", "Hynix GDDR5 1GB",
         "paper baseline: 4 channels x 16 banks x 4K rows, 30-bit",
         {{K::Block, 6}, {K::ColLo, 2}, {K::Channel, 2}, {K::Bank, 4},
          {K::ColHi, 4}, {K::Row, 12}}},
        // Section VI-D: stack select above colLo, vault above that.
        {"stacked3d_4gb", "3D-stacked 4GB (4 stacks x 16 vaults)",
         "paper Sec. VI-D: 4 stacks x 16 vaults x 16 banks, 32-bit",
         {{K::Block, 6}, {K::ColLo, 2}, {K::Channel, 2}, {K::Vault, 4},
          {K::Bank, 4}, {K::ColHi, 4}, {K::Row, 10}}},
        // HBM2-like: 8 pseudo-channels, wide rows, 32-bit (4 GB).
        {"hbm2_4gb", "HBM2-like 4GB (8 channels x 16 banks)",
         "8 pseudo-channels x 16 banks x 8K rows, 32-bit",
         {{K::Block, 6}, {K::ColLo, 2}, {K::Channel, 3}, {K::Bank, 4},
          {K::ColHi, 4}, {K::Row, 13}}},
        // DDR4-like: few channels, deep rows, 32-bit (4 GB).
        {"ddr4_4gb", "DDR4-like 4GB (2 channels x 16 banks)",
         "2 channels x 16 banks (4 groups x 4) x 16K rows, 32-bit",
         {{K::Block, 6}, {K::ColLo, 2}, {K::Channel, 1}, {K::Bank, 4},
          {K::ColHi, 5}, {K::Row, 14}}},
        // GDDR6-like: GDDR5 geometry with a doubled row count, 31-bit.
        {"gddr6_2gb", "GDDR6-like 2GB (4 channels x 16 banks)",
         "4 channels x 16 banks x 8K rows, 31-bit",
         {{K::Block, 6}, {K::ColLo, 2}, {K::Channel, 2}, {K::Bank, 4},
          {K::ColHi, 4}, {K::Row, 13}}},
    };
}

struct Registry
{
    std::mutex mu;
    // unique_ptr keeps `const DramOrganization *` handles stable
    // across later registrations.
    std::vector<std::unique_ptr<const DramOrganization>> presets;

    Registry()
    {
        for (auto &org : builtinOrganizations())
            add(std::move(org));
    }

    void
    add(DramOrganization org)
    {
        if (!validKey(org.key))
            throw std::invalid_argument("bad layout key '" + org.key +
                                        "': want [a-z0-9_]+");
        // Validate the field list up front so a broken registration
        // fails at the registration site, not at first use.
        layoutFromOrganization(org);
        std::lock_guard<std::mutex> lock(mu);
        for (const auto &p : presets)
            if (p->key == org.key)
                throw std::invalid_argument(
                    "duplicate layout key '" + org.key + "'");
        presets.push_back(
            std::make_unique<const DramOrganization>(std::move(org)));
    }

    static Registry &
    instance()
    {
        static Registry r;
        return r;
    }
};

} // namespace

bool
isLayoutSpec(const std::string &name)
{
    return name.rfind(kLayoutPrefix, 0) == 0;
}

AddressLayout
layoutFromOrganization(const DramOrganization &org)
{
    AddressLayout l;
    l.name = org.displayName;
    l.spec = std::string(kLayoutPrefix) + org.key;

    unsigned lo = 0;
    for (const auto &f : org.fields) {
        BitField *dst = fieldOf(l, f.kind);
        if (f.width == 0)
            orgError(org, std::string(kindName(f.kind)) +
                              " field has zero width");
        if (dst->width != 0)
            orgError(org, std::string("duplicate ") +
                              kindName(f.kind) + " field");
        *dst = {lo, f.width};
        lo += f.width;
    }
    l.addrBits = lo;

    for (FieldKind required : {FieldKind::Block, FieldKind::Channel,
                               FieldKind::Bank, FieldKind::Row})
        if (fieldOf(l, required)->width == 0)
            orgError(org, std::string("missing ") +
                              kindName(required) + " field");
    if (l.addrBits >= 63)
        orgError(org, "total width " + std::to_string(l.addrBits) +
                          " does not fit a 64-bit address space");
    // Field values are decoded into `unsigned`; keep each field (and
    // the merged column/channel views) well inside 32 bits.
    if (l.row.width > 30 || l.colLo.width + l.colHi.width > 30 ||
        l.channel.width + l.vault.width > 30)
        orgError(org, "a field is too wide to decode");
    return l;
}

void
registerLayout(DramOrganization org)
{
    Registry::instance().add(std::move(org));
}

std::vector<const DramOrganization *>
layoutPresets()
{
    Registry &r = Registry::instance();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<const DramOrganization *> out;
    out.reserve(r.presets.size());
    for (const auto &p : r.presets)
        out.push_back(p.get());
    return out;
}

const DramOrganization *
findLayoutPreset(const std::string &key)
{
    Registry &r = Registry::instance();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto &p : r.presets)
        if (p->key == key)
            return p.get();
    return nullptr;
}

AddressLayout
makeLayout(const std::string &spec)
{
    const std::string key =
        isLayoutSpec(spec) ? spec.substr(std::strlen(kLayoutPrefix))
                           : spec;
    if (const DramOrganization *org = findLayoutPreset(key))
        return layoutFromOrganization(*org);

    std::string known;
    for (const DramOrganization *org : layoutPresets())
        known += (known.empty() ? "" : ", ") + org->key;
    throw std::invalid_argument("unknown layout '" + spec +
                                "': registered layouts are " + known);
}

std::string
canonicalLayoutSpec(const std::string &spec)
{
    // Resolve through the registry so unknown keys diagnose here.
    return makeLayout(spec).spec;
}

std::string
layoutIdentity(const AddressLayout &layout)
{
    if (!layout.spec.empty())
        return layout.spec;
    return workloads::escapeSpecField(layout.name);
}

} // namespace mapping
} // namespace valley
