/**
 * @file
 * Address mapping schemes evaluated by the paper (Section VI):
 *
 *  - BASE: the Hynix address map, i.e. the identity BIM.
 *  - PM:   permutation-based mapping [4,5]; XORs each channel/bank bit
 *          with one low-order row bit.
 *  - RMP:  remap; routes the globally highest-entropy bits into the
 *          channel/bank positions.
 *  - PAE:  Broad strategy, inputs limited to the DRAM page address
 *          bits (row + channel + bank) — the power-efficient scheme.
 *  - FAE:  Broad strategy, inputs from the full (non-block) address.
 *  - ALL:  like FAE but also rewrites the row and column output bits.
 *
 * Every scheme is realized as a BIM, so mapping is one GF(2)
 * matrix-vector product == a tree of XOR gates in hardware.
 */

#ifndef VALLEY_MAPPING_ADDRESS_MAPPER_HH
#define VALLEY_MAPPING_ADDRESS_MAPPER_HH

#include <memory>
#include <string>
#include <vector>

#include "bim/bit_matrix.hh"
#include "bim/compiled_transform.hh"
#include "mapping/address_layout.hh"

namespace valley {

/**
 * The six schemes of the paper's evaluation, plus the two searched
 * schemes produced by `search::BimSearch` (this repo's automation of
 * the Section IV-B design-time methodology):
 *
 *  - SBIM: per-workload searched BIM — one matrix annealed against a
 *    single workload's trace planes;
 *  - GBIM: global searched BIM — one matrix annealed *jointly*
 *    against a whole `workloads::WorkloadSet`, the profile-driven
 *    counterpart of the paper's one-size-fits-all RMP.
 *
 * Both depend on workload profiles, so `mapping::makeScheme` cannot
 * build them from a layout alone; the harness routes them through
 * `search::searchedMapper` / `search::setMapper` instead.
 */
enum class Scheme { BASE, PM, RMP, PAE, FAE, ALL, SBIM, GBIM };

/**
 * The paper's six schemes in its presentation order (SBIM/GBIM
 * excluded; benches append them explicitly when comparing searched
 * mappings).
 */
const std::vector<Scheme> &allSchemes();

/** Scheme name as printed in the paper's figures. */
std::string schemeName(Scheme s);

/**
 * An address mapper: a named BIM bound to an address layout. Maps
 * physical addresses right after memory coalescing (Section IV) and
 * can decode the mapped address into DRAM coordinates.
 *
 * The BIM is frozen into a byte-sliced CompiledTransform at
 * construction and the layout's decode plan is precompiled, so both
 * map() and coordOf() are straight-line table/shift code on the
 * simulator's per-request hot path.
 */
class AddressMapper
{
  public:
    /**
     * Bind a BIM to a layout and compile its fast paths.
     *
     * @throws std::invalid_argument if the matrix size differs from
     *         the layout's address bits or the BIM is singular — this
     *         is the enforcement point that keeps every mapping that
     *         reaches the simulator one-to-one (see bit_matrix.hh).
     */
    AddressMapper(std::string name, AddressLayout layout, BitMatrix bim);

    /** Transform an input address into the remapped address. */
    Addr map(Addr a) const { return compiled_.apply(a); }

    /** Decode DRAM coordinates of the *mapped* address. */
    DramCoord
    coordOf(Addr a) const
    {
        return decoder_.decode(map(a));
    }

    const std::string &name() const { return name_; }
    const AddressLayout &layout() const { return layout_; }
    const BitMatrix &matrix() const { return matrix_; }
    const CompiledTransform &compiled() const { return compiled_; }

    /** Extra pipeline latency of the remap logic, in SM cycles. */
    unsigned
    remapLatency() const
    {
        // The paper assumes a single cycle for all but BASE.
        return matrix_.xorGateCount() == 0 ? 0 : 1;
    }

  private:
    std::string name_;
    AddressLayout layout_;
    BitMatrix matrix_;
    CompiledTransform compiled_;
    CompiledDecoder decoder_;
};

namespace mapping {

/**
 * Build one of the six paper schemes for a layout.
 *
 * @param s      scheme
 * @param layout DRAM address layout (conventional or 3D-stacked)
 * @param seed   BIM instantiation seed for PAE/FAE/ALL ("BIM-1..3" in
 *               Fig. 19 are seeds 1..3); ignored by BASE/PM/RMP
 */
std::unique_ptr<AddressMapper> makeScheme(Scheme s,
                                          const AddressLayout &layout,
                                          std::uint64_t seed = 1);

/**
 * Remap scheme with explicit donor bits (ascending target order).
 * `makeScheme(RMP,...)` uses the paper's global-entropy bits for the
 * GDDR5 layout; this overload supports profile-driven selection.
 */
std::unique_ptr<AddressMapper> makeRemap(
    const AddressLayout &layout, const std::vector<unsigned> &source_bits);

/** Wrap an arbitrary (invertible) BIM as a mapper. */
std::unique_ptr<AddressMapper> makeCustom(std::string name,
                                          const AddressLayout &layout,
                                          BitMatrix bim);

/**
 * The minimalist open-page mapping of Kaseridis et al. [7], one of
 * the paper's Remap-strategy examples: route the address bits
 * immediately above the column field — where streaming CPU workloads
 * carry their entropy — into the channel/bank positions.
 */
std::unique_ptr<AddressMapper> makeMinimalistOpenPage(
    const AddressLayout &layout);

/**
 * Profile-driven Remap: route the `n` highest-entropy bits of the
 * given per-bit profile (restricted to non-block bits) into the
 * channel/bank positions — the Section IV-B design-time methodology
 * as a reusable tool.
 */
std::unique_ptr<AddressMapper> makeRemapFromProfile(
    const AddressLayout &layout, const std::vector<double> &per_bit);

} // namespace mapping
} // namespace valley

#endif // VALLEY_MAPPING_ADDRESS_MAPPER_HH
