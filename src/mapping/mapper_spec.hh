/**
 * @file
 * Spec strings for the pluggable address-mapper registry.
 *
 * A mapper is named by a spec string
 *
 *     map:FAMILY[,key=value]...
 *
 * e.g. `map:perm,order=RoCoBaCh` or `map:pae,seed=3`. `MapperSpec`
 * is the raw parse of such a string: the family name plus the
 * key=value pairs exactly as written. Validation against a family's
 * parameter schema — defaults, canonical formatting, the stable hash
 * the on-disk caches key on — happens in `mapper_registry.hh`'s
 * `ResolvedMapperSpec`, so the parser stays grammar-only.
 *
 * The grammar deliberately mirrors the `synth:` workload grammar
 * (`synth/spec.hh`): no whitespace, keys are [a-z0-9_]+, values are
 * anything up to the next ','.
 *
 *     spec  := "map:" family ("," param)*
 *     param := key "=" value
 */

#ifndef VALLEY_MAPPING_MAPPER_SPEC_HH
#define VALLEY_MAPPING_MAPPER_SPEC_HH

#include <string>
#include <utility>
#include <vector>

namespace valley {
namespace mapping {

/** Prefix marking a name as a mapper spec. */
inline constexpr const char *kMapperPrefix = "map:";

/** True iff `name` is a `map:` spec string (by prefix). */
bool isMapperSpec(const std::string &name);

/** Raw parse of one mapper spec (grammar only, no schema checks). */
struct MapperSpec
{
    std::string family;
    /** key=value pairs in written order; duplicate keys rejected. */
    std::vector<std::pair<std::string, std::string>> params;

    /**
     * Parse a spec string. Throws `std::invalid_argument` on a
     * missing prefix, empty family, malformed parameter (no '=',
     * empty key/value, bad key characters) or duplicate key.
     */
    static MapperSpec parse(const std::string &text);

    /** Re-print as written: `map:family,k=v,...`. */
    std::string print() const;

    /** Value of `key`, or nullptr if absent. */
    const std::string *find(const std::string &key) const;
};

} // namespace mapping
} // namespace valley

#endif // VALLEY_MAPPING_MAPPER_SPEC_HH
