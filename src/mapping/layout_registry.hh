/**
 * @file
 * Declarative DRAM organizations and the `layout:` preset registry.
 *
 * The seed hard-coded the Hynix GDDR5 bit positions (paper Fig. 4)
 * into `AddressLayout::hynixGddr5`. Opening the *hardware* axis of
 * the evaluation — HBM2-, DDR4- and GDDR6-like organizations as grid
 * columns — needs layouts to be data, not code: a `DramOrganization`
 * lists the address fields least-significant-first with their widths,
 * and `layoutFromOrganization` derives the `AddressLayout` bit
 * positions from the running offset. Presets register under a
 * canonical key addressed by spec string:
 *
 *     layout:KEY            e.g. layout:gddr5_1gb, layout:hbm2_4gb
 *
 * `AddressLayout::hynixGddr5()` / `stacked3d()` now delegate to the
 * `gddr5_1gb` / `stacked3d_4gb` presets, so the legacy constructors
 * and the registry can never drift apart (asserted bit-for-bit in
 * tests/layout_registry_test.cc).
 *
 * All presets share the GDDR5 timing/power models (`SimConfig::dram`,
 * `SimConfig::dramPower`): the study varies *address geometry*, and a
 * per-preset timing table is future work. Capacity, channel/bank
 * counts and field positions are fully preset-driven.
 */

#ifndef VALLEY_MAPPING_LAYOUT_REGISTRY_HH
#define VALLEY_MAPPING_LAYOUT_REGISTRY_HH

#include <string>
#include <vector>

#include "mapping/address_layout.hh"

namespace valley {
namespace mapping {

/** Prefix marking a name as a layout spec. */
inline constexpr const char *kLayoutPrefix = "layout:";

/** True iff `name` is a `layout:` spec string (by prefix). */
bool isLayoutSpec(const std::string &name);

/** Address field kinds, in `AddressLayout` terms. */
enum class FieldKind
{
    Block,   ///< intra-line offset, never remapped
    ColLo,   ///< low column bits (below the channel field)
    Channel, ///< channel (conventional) or stack (3D)
    Vault,   ///< vault within a stack (3D only)
    Bank,    ///< bank within channel/vault
    ColHi,   ///< high column bits
    Row,     ///< DRAM row (page)
};

/** One address field of an organization. */
struct OrgField
{
    FieldKind kind;
    unsigned width; ///< bits; must be >= 1
};

/**
 * A DRAM organization as data: the address fields listed least
 * significant first. The derived layout's bit positions are the
 * running sum of the preceding widths.
 */
struct DramOrganization
{
    std::string key;         ///< canonical registry key, [a-z0-9_]+
    std::string displayName; ///< `AddressLayout::name`
    std::string summary;     ///< one-line description for --list-layouts
    std::vector<OrgField> fields; ///< LSB -> MSB
};

/**
 * Derive the bit-field layout of an organization. Throws
 * `std::invalid_argument` when the field list is not a well-formed
 * address space: Block, Channel, Bank and Row must appear exactly
 * once, ColLo/ColHi/Vault at most once, every width >= 1, and the
 * total width must fit a 64-bit address. The derived layout carries
 * `spec == "layout:KEY"` as its canonical cache identity.
 */
AddressLayout layoutFromOrganization(const DramOrganization &org);

/**
 * Register an organization under its key. Throws
 * `std::invalid_argument` on a duplicate key, a malformed key, or an
 * organization `layoutFromOrganization` rejects. Built-in presets
 * are registered before any lookup; external code may add more at
 * static-initialization time or later (not thread-safe against
 * concurrent lookups — register before use).
 */
void registerLayout(DramOrganization org);

/** All registered presets, registration order. */
std::vector<const DramOrganization *> layoutPresets();

/** Find a preset by key (no `layout:` prefix); nullptr if unknown. */
const DramOrganization *findLayoutPreset(const std::string &key);

/**
 * Build the layout of a spec string. Accepts `layout:KEY` or a bare
 * preset key. Throws `std::invalid_argument` on an unknown key with
 * a diagnostic listing every registered key.
 */
AddressLayout makeLayout(const std::string &spec);

/** Canonical spec (`layout:KEY`) of a spec-or-key string. */
std::string canonicalLayoutSpec(const std::string &spec);

/**
 * Canonical cache identity of a layout: its `spec` when preset-built,
 * else its free-form name (escaped upstream). Every cache/journal
 * identity that depends on the address geometry keys on this.
 */
std::string layoutIdentity(const AddressLayout &layout);

} // namespace mapping
} // namespace valley

#endif // VALLEY_MAPPING_LAYOUT_REGISTRY_HH
