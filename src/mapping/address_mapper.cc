#include "mapping/address_mapper.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "bim/bim_builder.hh"
#include "common/bitops.hh"
#include "common/rng.hh"
#include "mapping/mapper_registry.hh"

namespace valley {

const std::vector<Scheme> &
allSchemes()
{
    static const std::vector<Scheme> order = {
        Scheme::BASE, Scheme::PM,  Scheme::RMP,
        Scheme::PAE,  Scheme::FAE, Scheme::ALL,
    };
    return order;
}

std::string
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::BASE: return "BASE";
      case Scheme::PM:   return "PM";
      case Scheme::RMP:  return "RMP";
      case Scheme::PAE:  return "PAE";
      case Scheme::FAE:  return "FAE";
      case Scheme::ALL:  return "ALL";
      case Scheme::SBIM: return "SBIM";
      case Scheme::GBIM: return "GBIM";
    }
    return "?";
}

AddressMapper::AddressMapper(std::string name, AddressLayout layout,
                             BitMatrix bim)
    : name_(std::move(name)), layout_(std::move(layout)),
      matrix_(std::move(bim)), compiled_(matrix_), decoder_(layout_)
{
    if (matrix_.size() != layout_.addrBits)
        throw std::invalid_argument("mapper: BIM size != address bits");
    if (!matrix_.invertible())
        throw std::invalid_argument("mapper: BIM is singular");
}

namespace mapping {

std::unique_ptr<AddressMapper>
makeScheme(Scheme s, const AddressLayout &layout, std::uint64_t seed)
{
    // The enum is now a facade over the mapper registry: every value
    // resolves to its registered family (builtin_mappers.cc), whose
    // seed tag preserves the seed's per-scheme RNG streams. The
    // differential oracle pins this delegation bit-identical.
    if (s == Scheme::SBIM || s == Scheme::GBIM)
        // The searched BIMs depend on workload profiles, which this
        // layout-only factory does not have; the harness builds them
        // via search::searchedMapper / search::setMapper.
        throw std::invalid_argument(
            "makeScheme: " + schemeName(s) +
            " requires workload profiles; use the search:: mappers");
    return makeMapper(schemeSpec(s), layout, seed);
}

std::unique_ptr<AddressMapper>
makeRemap(const AddressLayout &layout,
          const std::vector<unsigned> &source_bits)
{
    BitMatrix m = bim::remap(layout.addrBits, layout.randomizeTargets(),
                             source_bits);
    return std::make_unique<AddressMapper>("RMP", layout, std::move(m));
}

std::unique_ptr<AddressMapper>
makeCustom(std::string name, const AddressLayout &layout, BitMatrix bim)
{
    return std::make_unique<AddressMapper>(std::move(name), layout,
                                           std::move(bim));
}

std::unique_ptr<AddressMapper>
makeMinimalistOpenPage(const AddressLayout &layout)
{
    // Registered as the `map:mop` family (builtin_mappers.cc).
    return makeMapper("map:mop", layout);
}

std::unique_ptr<AddressMapper>
makeRemapFromProfile(const AddressLayout &layout,
                     const std::vector<double> &per_bit)
{
    const std::vector<unsigned> targets = layout.randomizeTargets();
    // Rank non-block bits by entropy, descending; ties by position.
    std::vector<unsigned> candidates;
    for (unsigned b = 0; b < layout.addrBits; ++b)
        if ((layout.nonBlockMask() >> b) & 1)
            candidates.push_back(b);
    std::sort(candidates.begin(), candidates.end(),
              [&](unsigned a, unsigned b) {
                  const double ea = a < per_bit.size() ? per_bit[a] : 0;
                  const double eb = b < per_bit.size() ? per_bit[b] : 0;
                  return ea != eb ? ea > eb : a < b;
              });
    if (candidates.size() < targets.size())
        throw std::invalid_argument("remapFromProfile: profile too "
                                    "small");
    std::vector<unsigned> sources(candidates.begin(),
                                  candidates.begin() + targets.size());
    // Deterministic target order: ascending source positions.
    std::sort(sources.begin(), sources.end());
    BitMatrix m = bim::remap(layout.addrBits, targets, sources);
    return std::make_unique<AddressMapper>("RMP*", layout,
                                           std::move(m));
}

} // namespace mapping
} // namespace valley
