#include "mapping/address_mapper.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "bim/bim_builder.hh"
#include "common/bitops.hh"
#include "common/rng.hh"

namespace valley {

const std::vector<Scheme> &
allSchemes()
{
    static const std::vector<Scheme> order = {
        Scheme::BASE, Scheme::PM,  Scheme::RMP,
        Scheme::PAE,  Scheme::FAE, Scheme::ALL,
    };
    return order;
}

std::string
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::BASE: return "BASE";
      case Scheme::PM:   return "PM";
      case Scheme::RMP:  return "RMP";
      case Scheme::PAE:  return "PAE";
      case Scheme::FAE:  return "FAE";
      case Scheme::ALL:  return "ALL";
      case Scheme::SBIM: return "SBIM";
      case Scheme::GBIM: return "GBIM";
    }
    return "?";
}

AddressMapper::AddressMapper(std::string name, AddressLayout layout,
                             BitMatrix bim)
    : name_(std::move(name)), layout_(std::move(layout)),
      matrix_(std::move(bim)), compiled_(matrix_), decoder_(layout_)
{
    if (matrix_.size() != layout_.addrBits)
        throw std::invalid_argument("mapper: BIM size != address bits");
    if (!matrix_.invertible())
        throw std::invalid_argument("mapper: BIM is singular");
}

namespace mapping {
namespace {

/** Mix the scheme into the user seed so schemes draw distinct BIMs. */
std::uint64_t
schemeSeed(Scheme s, std::uint64_t seed)
{
    return (seed + 1) * 0x9E3779B97F4A7C15ull ^
           (static_cast<std::uint64_t>(s) + 1) * 0xBF58476D1CE4E5B9ull;
}

BitMatrix
buildPm(const AddressLayout &layout)
{
    // Each channel/vault/bank bit XORed with a distinct least
    // significant row bit (Fig. 8): the narrow-range gather the Broad
    // schemes improve upon.
    const std::vector<unsigned> targets = layout.randomizeTargets();
    const std::vector<unsigned> row_bits = layout.rowBits();
    if (row_bits.size() < targets.size())
        throw std::invalid_argument("PM: not enough row bits");
    const std::vector<unsigned> donors(row_bits.begin(),
                                       row_bits.begin() + targets.size());
    return bim::permutationBased(layout.addrBits, targets, donors);
}

BitMatrix
buildRmp(const AddressLayout &layout)
{
    // RMP routes the 6 bits with the highest *average* entropy across
    // all benchmarks into the channel/bank positions (Section IV-B).
    // Applying that methodology to this repository's workload suite
    // (see bench/fig05) selects bits 11-16; the paper's suite selected
    // 8-11, 15 and 16. Like the paper's RMP, a static global choice
    // cannot adapt to per-application valleys — which is exactly the
    // weakness the Broad schemes fix.
    std::vector<unsigned> sources;
    if (layout.addrBits == 30 && layout.vault.width == 0) {
        sources = {11, 12, 13, 14, 15, 16};
    } else {
        const std::vector<unsigned> targets = layout.randomizeTargets();
        sources.assign(targets.begin(), targets.end() - 2);
        sources.push_back(layout.colHi.lo + 1);
        sources.push_back(layout.colHi.lo + 2);
    }
    return bim::remap(layout.addrBits, layout.randomizeTargets(), sources);
}

} // namespace

std::unique_ptr<AddressMapper>
makeScheme(Scheme s, const AddressLayout &layout, std::uint64_t seed)
{
    const unsigned n = layout.addrBits;
    XorShiftRng rng(schemeSeed(s, seed));
    BitMatrix m = BitMatrix::identity(n);

    switch (s) {
      case Scheme::BASE:
        break;
      case Scheme::PM:
        m = buildPm(layout);
        break;
      case Scheme::RMP:
        m = buildRmp(layout);
        break;
      case Scheme::PAE:
        m = bim::randomBroad(n, layout.randomizeTargets(),
                             layout.pageMask(), rng);
        break;
      case Scheme::FAE:
        m = bim::randomBroad(n, layout.randomizeTargets(),
                             layout.nonBlockMask(), rng);
        break;
      case Scheme::ALL: {
        // ALL rewrites every non-block bit. Bit 6 stays identity: the
        // memory hierarchy operates on 128 B transactions, so bits
        // [6:0] are intra-transaction offsets and remapping bit 6
        // would break one-to-one mapping at transaction granularity
        // (see DESIGN.md).
        std::vector<unsigned> targets;
        std::uint64_t mask = layout.nonBlockMask() & ~(1ull << 6);
        for (unsigned b = 0; b < n; ++b)
            if ((mask >> b) & 1)
                targets.push_back(b);
        m = bim::randomBroad(n, targets, mask, rng);
        break;
      }
      case Scheme::SBIM:
      case Scheme::GBIM:
        // The searched BIMs depend on workload profiles, which this
        // layout-only factory does not have; the harness builds them
        // via search::searchedMapper / search::setMapper.
        throw std::invalid_argument(
            "makeScheme: " + schemeName(s) +
            " requires workload profiles; use the search:: mappers");
    }
    return std::make_unique<AddressMapper>(schemeName(s), layout,
                                           std::move(m));
}

std::unique_ptr<AddressMapper>
makeRemap(const AddressLayout &layout,
          const std::vector<unsigned> &source_bits)
{
    BitMatrix m = bim::remap(layout.addrBits, layout.randomizeTargets(),
                             source_bits);
    return std::make_unique<AddressMapper>("RMP", layout, std::move(m));
}

std::unique_ptr<AddressMapper>
makeCustom(std::string name, const AddressLayout &layout, BitMatrix bim)
{
    return std::make_unique<AddressMapper>(std::move(name), layout,
                                           std::move(bim));
}

std::unique_ptr<AddressMapper>
makeMinimalistOpenPage(const AddressLayout &layout)
{
    // Donors: the bits directly above the high column field, i.e. the
    // lowest row bits — consecutive DRAM pages interleave across
    // banks and channels (good for CPU streams; the paper shows the
    // strategy cannot adapt to GPU valleys).
    const std::vector<unsigned> targets = layout.randomizeTargets();
    std::vector<unsigned> sources;
    for (unsigned i = 0; i < targets.size(); ++i)
        sources.push_back(layout.row.lo + i);
    BitMatrix m =
        bim::remap(layout.addrBits, targets, sources);
    return std::make_unique<AddressMapper>("MOP", layout,
                                           std::move(m));
}

std::unique_ptr<AddressMapper>
makeRemapFromProfile(const AddressLayout &layout,
                     const std::vector<double> &per_bit)
{
    const std::vector<unsigned> targets = layout.randomizeTargets();
    // Rank non-block bits by entropy, descending; ties by position.
    std::vector<unsigned> candidates;
    for (unsigned b = 0; b < layout.addrBits; ++b)
        if ((layout.nonBlockMask() >> b) & 1)
            candidates.push_back(b);
    std::sort(candidates.begin(), candidates.end(),
              [&](unsigned a, unsigned b) {
                  const double ea = a < per_bit.size() ? per_bit[a] : 0;
                  const double eb = b < per_bit.size() ? per_bit[b] : 0;
                  return ea != eb ? ea > eb : a < b;
              });
    if (candidates.size() < targets.size())
        throw std::invalid_argument("remapFromProfile: profile too "
                                    "small");
    std::vector<unsigned> sources(candidates.begin(),
                                  candidates.begin() + targets.size());
    // Deterministic target order: ascending source positions.
    std::sort(sources.begin(), sources.end());
    BitMatrix m = bim::remap(layout.addrBits, targets, sources);
    return std::make_unique<AddressMapper>("RMP*", layout,
                                           std::move(m));
}

} // namespace mapping
} // namespace valley
