#include "cache/set_assoc_cache.hh"

#include <cassert>

#include "common/bitops.hh"

namespace valley {

SetAssocCache::SetAssocCache(const CacheConfig &cfg) : cfg_(cfg)
{
    assert(cfg_.numSets() >= 1);
    assert(bits::isPow2(cfg_.lineBytes));
    assert(bits::isPow2(cfg_.numSets()));
    ways.resize(static_cast<std::size_t>(cfg_.numSets()) * cfg_.ways);
}

std::uint32_t
SetAssocCache::setOf(Addr line) const
{
    return static_cast<std::uint32_t>(line / cfg_.lineBytes) &
           (cfg_.numSets() - 1);
}

SetAssocCache::Way *
SetAssocCache::findLine(Addr line)
{
    const std::uint32_t set = setOf(line);
    Way *base = &ways[static_cast<std::size_t>(set) * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w)
        if (base[w].valid && base[w].line == line)
            return &base[w];
    return nullptr;
}

const SetAssocCache::Way *
SetAssocCache::findLine(Addr line) const
{
    return const_cast<SetAssocCache *>(this)->findLine(line);
}

SetAssocCache::Way &
SetAssocCache::victimIn(std::uint32_t set)
{
    Way *base = &ways[static_cast<std::size_t>(set) * cfg_.ways];
    Way *victim = &base[0];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (!base[w].valid)
            return base[w];
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    return *victim;
}

CacheAccessResult
SetAssocCache::access(Addr line, bool write, std::uint64_t waiter)
{
    assert(line % cfg_.lineBytes == 0);
    CacheAccessResult result;
    ++stats_.accesses;
    ++useClock;

    if (Way *way = findLine(line)) {
        way->lastUse = useClock;
        if (write)
            way->dirty = cfg_.writeAllocate;
        ++stats_.hits;
        if (write && !cfg_.writeAllocate)
            ++stats_.writeThroughs; // hit still propagates the write
        result.kind = CacheAccessResult::Kind::Hit;
        return result;
    }

    if (write && !cfg_.writeAllocate) {
        // No-write-allocate: the write bypasses this cache entirely.
        ++stats_.writeThroughs;
        result.kind = CacheAccessResult::Kind::Hit;
        return result;
    }

    // Read (or allocating write) miss.
    auto it = mshrs.find(line);
    if (it != mshrs.end()) {
        it->second.waiters.push_back(waiter);
        it->second.write |= write;
        ++stats_.mshrMerges;
        result.kind = CacheAccessResult::Kind::MergedMiss;
        return result;
    }
    if (!mshrAvailable()) {
        ++stats_.mshrStalls;
        --stats_.accesses; // a stalled access will be retried
        result.kind = CacheAccessResult::Kind::Stall;
        return result;
    }
    Mshr entry;
    entry.waiters.push_back(waiter);
    entry.write = write;
    mshrs.emplace(line, std::move(entry));
    ++stats_.misses;
    result.kind = CacheAccessResult::Kind::Miss;
    return result;
}

std::vector<std::uint64_t>
SetAssocCache::fill(Addr line, CacheAccessResult &eviction)
{
    eviction.dirtyEviction = false;
    ++useClock;

    std::vector<std::uint64_t> waiters;
    bool write = false;
    auto it = mshrs.find(line);
    if (it != mshrs.end()) {
        waiters = std::move(it->second.waiters);
        write = it->second.write;
        mshrs.erase(it);
    }

    if (!findLine(line)) {
        Way &victim = victimIn(setOf(line));
        if (victim.valid && victim.dirty) {
            eviction.dirtyEviction = true;
            eviction.victimLine = victim.line;
            ++stats_.writebacks;
        }
        victim.valid = true;
        victim.line = line;
        victim.dirty = write && cfg_.writeAllocate;
        victim.lastUse = useClock;
    } else if (write && cfg_.writeAllocate) {
        markDirty(line);
    }
    return waiters;
}

bool
SetAssocCache::contains(Addr line) const
{
    return findLine(line) != nullptr;
}

void
SetAssocCache::markDirty(Addr line)
{
    if (Way *way = findLine(line))
        way->dirty = true;
}

} // namespace valley
