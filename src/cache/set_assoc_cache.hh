/**
 * @file
 * Set-associative cache with LRU replacement and an MSHR table,
 * modeling both the per-SM L1 data caches and the LLC slices of
 * Table I.
 *
 * The cache operates on line addresses. Write policy is configurable:
 * the L1 is write-through/no-write-allocate (GPU-style), the LLC is
 * write-back/write-allocate so dirty evictions generate DRAM
 * writebacks, which the Micron power model charges as write bursts.
 */

#ifndef VALLEY_CACHE_SET_ASSOC_CACHE_HH
#define VALLEY_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace valley {

/** Cache geometry and policy. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 16 * 1024;
    std::uint32_t ways = 4;
    std::uint32_t lineBytes = 128;
    std::uint32_t mshrEntries = 32;
    bool writeAllocate = false; ///< false: write-through/no-allocate

    std::uint32_t
    numSets() const
    {
        return sizeBytes / (ways * lineBytes);
    }
};

/** Hit/miss counters. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;        ///< demand misses sent below
    std::uint64_t mshrMerges = 0;    ///< misses merged into an MSHR
    std::uint64_t mshrStalls = 0;    ///< rejected: MSHR table full
    std::uint64_t writebacks = 0;    ///< dirty lines evicted
    std::uint64_t writeThroughs = 0; ///< writes forwarded below

    double
    missRate() const
    {
        return accesses
                   ? static_cast<double>(misses + mshrMerges) /
                         static_cast<double>(accesses)
                   : 0.0;
    }
};

/** Outcome of a cache access. */
struct CacheAccessResult
{
    enum class Kind
    {
        Hit,        ///< present (or write-through accepted)
        Miss,       ///< new MSHR allocated; fetch the line below
        MergedMiss, ///< appended to an existing MSHR
        Stall,      ///< MSHR table full; retry later
    };

    Kind kind = Kind::Hit;
    bool dirtyEviction = false; ///< a dirty victim needs writing back
    Addr victimLine = 0;        ///< line address of the dirty victim
};

/**
 * The cache. Tags only (no data payloads); fills and evictions are
 * driven by the owner (SM core or LLC slice model).
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &cfg);

    /** Line address (byte address with the offset stripped). */
    Addr
    lineOf(Addr byte_addr) const
    {
        return byte_addr / cfg_.lineBytes * cfg_.lineBytes;
    }

    /**
     * Look up `line` (a line-aligned address). On a read miss an MSHR
     * is allocated (or merged); `waiter` is recorded so the owner can
     * wake requestors on fill. Writes with writeAllocate=false never
     * allocate: hits update LRU/dirty, misses are reported as Hit with
     * the writeThroughs counter bumped (the owner forwards the write).
     */
    CacheAccessResult access(Addr line, bool write, std::uint64_t waiter);

    /**
     * Install a previously missed line; returns the waiters recorded
     * on its MSHR and frees the entry. Sets `result` eviction info
     * when a dirty victim must be written back.
     */
    std::vector<std::uint64_t> fill(Addr line,
                                    CacheAccessResult &eviction);

    /** True iff the line is currently present (probe; no LRU update). */
    bool contains(Addr line) const;

    /** Mark a resident line dirty (used when a write hits under fill). */
    void markDirty(Addr line);

    /** Outstanding MSHR entries. */
    unsigned
    mshrInUse() const
    {
        return static_cast<unsigned>(mshrs.size());
    }

    bool
    mshrAvailable() const
    {
        return mshrs.size() < cfg_.mshrEntries;
    }

    /** True iff the line already has an outstanding MSHR. */
    bool
    mshrPending(Addr line) const
    {
        return mshrs.count(line) != 0;
    }

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return cfg_; }

  private:
    struct Way
    {
        Addr line = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    struct Mshr
    {
        std::vector<std::uint64_t> waiters;
        bool write = false;
    };

    std::uint32_t setOf(Addr line) const;
    Way *findLine(Addr line);
    const Way *findLine(Addr line) const;
    Way &victimIn(std::uint32_t set);

    CacheConfig cfg_;
    std::vector<Way> ways; // sets * ways, row-major by set
    std::unordered_map<Addr, Mshr> mshrs;
    std::uint64_t useClock = 0;
    CacheStats stats_;
};

} // namespace valley

#endif // VALLEY_CACHE_SET_ASSOC_CACHE_HH
