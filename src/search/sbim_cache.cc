#include "search/sbim_cache.hh"

#include <cinttypes>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "common/metrics.hh"
#include "common/trace_span.hh"
#include "harness/atomic_io.hh"
#include "harness/result_cache.hh"

namespace valley {
namespace search {

// m2: checksummed record lines (atomic_io.hh) + memberWeights in the
// key — pre-checksum epochs are skipped as stale on load.
// m3: mapper-registry epoch (layout presets become first-class cache
// identities); pre-registry lines load as stale.
const char *kSbimCacheVersion = "m3";

std::string
sbimCachePath()
{
    return harness::cacheDir() + "/valley_sbim_cache.csv";
}

namespace {

/**
 * One global map is enough here (unlike the result/profile caches):
 * an SBIM lookup happens once per grid cell, not once per candidate,
 * so lock contention is irrelevant next to the search it saves.
 */
std::mutex mutex;
std::map<std::string, CachedSearch> cache;
bool loaded = false;

std::string
serialize(const SearchResult &r)
{
    std::ostringstream out;
    out.precision(17);
    out << r.bim.size();
    for (unsigned row = 0; row < r.bim.size(); ++row)
        out << ' ' << std::hex << r.bim.row(row) << std::dec;
    out << ' ' << r.cost << ' ' << r.identityCost << ' '
        << r.targetEntropy.size();
    for (double e : r.targetEntropy)
        out << ' ' << e;
    return out.str();
}

std::optional<CachedSearch>
deserialize(const std::string &line)
{
    std::istringstream in(line);
    unsigned n = 0;
    in >> n;
    if (!in || n < 1 || n > 64)
        return std::nullopt;
    CachedSearch c;
    c.bim = BitMatrix(n);
    for (unsigned row = 0; row < n; ++row) {
        std::uint64_t mask = 0;
        in >> std::hex >> mask >> std::dec;
        c.bim.setRow(row, mask);
    }
    std::size_t targets = 0;
    in >> c.cost >> c.identityCost >> targets;
    if (!in || targets > 64)
        return std::nullopt;
    c.targetEntropy.resize(targets);
    for (double &e : c.targetEntropy)
        in >> e;
    if (!in || !c.bim.invertible())
        return std::nullopt; // corrupt line: treat as a miss
    return c;
}

void
loadOnceLocked()
{
    if (loaded)
        return;
    loaded = true;
    // Skip-and-quarantine: a corrupt matrix line (torn append, bad
    // checksum, non-invertible bim) degrades to a cache miss — the
    // search reruns — instead of handing the grid a garbage mapper.
    harness::loadChecksummedRecords(
        sbimCachePath(), kSbimCacheVersion,
        [](const std::string &key, const std::string &payload) {
            auto c = deserialize(payload);
            if (!c)
                return false;
            cache[key] = std::move(*c);
            return true;
        });
}

} // namespace

namespace {

/** Shared tail of both key forms: every outcome-shaping knob. */
std::string
keyFromField(const std::string &escaped_workload_field, double scale,
             const std::string &layout_name, const SearchOptions &opts)
{
    std::ostringstream out;
    out.precision(17);
    out << kSbimCacheVersion << ';' << kSearchVersion << ';'
        << escaped_workload_field << ';' << scale << ';'
        << workloads::escapeSpecField(layout_name) << ';';
    out << 't';
    for (unsigned t : opts.targets)
        out << '.' << t;
    out << ";c" << std::hex << opts.candidateMask << std::dec << ';'
        << opts.window << ';' << static_cast<int>(opts.metric) << ';'
        << combinerName(opts.combiner) << ';' << opts.seed << ';'
        << opts.restarts << ';' << opts.iterations << ';'
        << opts.initialTemp << ';' << opts.finalTemp << ';'
        << opts.minTaps << ";e" << opts.maxEvaluations;
    // Weights shape the joint objective and hence the searched
    // matrix; empty (uniform) adds no field, so unweighted searches
    // key identically whether or not the build knows about weights.
    if (!opts.memberWeights.empty()) {
        out << ";w";
        for (double w : opts.memberWeights)
            out << ',' << w;
    }
    return out.str();
}

} // namespace

std::string
sbimCacheKey(const std::string &workload_key, double scale,
             const std::string &layout_name, const SearchOptions &opts)
{
    return keyFromField(workloads::escapeSpecField(workload_key),
                        scale, layout_name, opts);
}

std::string
sbimCacheKey(const workloads::WorkloadSet &set, double scale,
             const std::string &layout_name, const SearchOptions &opts)
{
    // set.key() is already member-wise escaped and ','-joined; a
    // size-1 set's key is exactly escapeSpecField(member), making the
    // two overloads agree on singletons.
    return keyFromField(set.key(), scale, layout_name, opts);
}

SearchResult
CachedSearch::toResult() const
{
    SearchResult r;
    r.bim = bim;
    r.cost = cost;
    r.identityCost = identityCost;
    r.targetEntropy = targetEntropy;
    return r;
}

std::optional<CachedSearch>
sbimCacheLookup(const std::string &key)
{
    if (!harness::cacheEnabled())
        return std::nullopt;
    static metrics::Histogram &lookup_us =
        metrics::histogram("cache.sbim.lookup_us");
    metrics::ScopedTimer timer(lookup_us);
    trace::Span span("sbim_cache.lookup", "cache");
    std::lock_guard<std::mutex> lock(mutex);
    loadOnceLocked();
    const auto it = cache.find(key);
    if (it == cache.end()) {
        metrics::counter("cache.sbim.misses").inc();
        return std::nullopt;
    }
    metrics::counter("cache.sbim.hits").inc();
    return it->second;
}

void
sbimCacheStore(const std::string &key, const SearchResult &r)
{
    // Reject-at-the-sink guard: a key with a raw newline would split
    // into two bogus CSV lines, one with '|' would truncate at the
    // wrong payload separator. Keys built via sbimCacheKey are
    // escaped and can never trip this; a hand-built key that does is
    // a caller bug worth surfacing loudly.
    if (key.find('\n') != std::string::npos ||
        key.find('\r') != std::string::npos ||
        key.find('|') != std::string::npos)
        throw std::invalid_argument(
            "sbimCacheStore: key contains a newline or '|' — "
            "escape fields with workloads::escapeSpecField");
    if (!harness::cacheEnabled())
        return;
    metrics::counter("cache.sbim.stores").inc();
    std::lock_guard<std::mutex> lock(mutex);
    loadOnceLocked();
    CachedSearch c;
    c.bim = r.bim;
    c.cost = r.cost;
    c.identityCost = r.identityCost;
    c.targetEntropy = r.targetEntropy;
    cache[key] = std::move(c);

    // Whole checksummed record in one O_APPEND write; best-effort —
    // a failed append only loses memoization.
    harness::atomicAppend(sbimCachePath(),
                          harness::checksummedRecord(key, serialize(r)));
}

void
sbimCacheResetForTesting()
{
    std::lock_guard<std::mutex> lock(mutex);
    cache.clear();
    loaded = false;
}

} // namespace search
} // namespace valley
