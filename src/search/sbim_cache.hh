/**
 * @file
 * On-disk memoization of searched BIM matrices, mirroring the
 * result/profile caches.
 *
 * A `BimSearch` run is by far the most expensive step of an SBIM grid
 * cell (annealing restarts x iterations, each scoring bit planes), and
 * it is a deterministic function of (workload identity, scale, layout,
 * search options, search version). Repeated grid runs — every fig10 /
 * fig12 / synth_smoke invocation after the first — therefore memoize
 * the searched matrix under `harness::cacheDir()` and skip the search
 * entirely on a hit.
 *
 * The key embeds `kSearchVersion` (bumped whenever the search would
 * produce a different matrix for the same seed), the workload key
 * (Table II abbreviation or canonical `synth:` spec) and every
 * `SearchOptions` field that shapes the outcome. Shares the
 * VALLEY_CACHE=0 escape hatch and the load-once in-memory map design
 * with the other caches.
 */

#ifndef VALLEY_SEARCH_SBIM_CACHE_HH
#define VALLEY_SEARCH_SBIM_CACHE_HH

#include <optional>
#include <string>

#include "search/bim_search.hh"
#include "workloads/workload_set.hh"

namespace valley {
namespace search {

/** SBIM cache schema version; bump on serialization changes. */
extern const char *kSbimCacheVersion;

/** SBIM cache file path (inside `harness::cacheDir()`). */
std::string sbimCachePath();

/**
 * Unique key of one search: workload key (abbreviation or canonical
 * synth spec), problem scale, layout name, and the full search
 * configuration (targets, candidate mask, window, metric, combiner,
 * seed, budget caps, temperatures, min taps) plus `kSearchVersion`.
 *
 * The workload key and layout name are percent-escaped
 * (`workloads::escapeSpecField`) before entering the key: synth specs
 * contain commas, and a raw separator or newline inside a field would
 * make the one-line-per-entry CSV ambiguous. `sbimCacheStore`
 * additionally *rejects* keys still containing a newline or the '|'
 * payload separator — escaping at the source plus rejection at the
 * sink, so no spec string can corrupt the file.
 */
std::string sbimCacheKey(const std::string &workload_key, double scale,
                         const std::string &layout_name,
                         const SearchOptions &opts);

/**
 * Key of a joint search over a workload set. Uses the set's
 * order-canonical escaped `key()`, so any spelling of the same set —
 * reordered members, reordered synth parameters, duplicates — hits
 * the same cache line. A size-1 set keys identically to the
 * single-workload overload with that member.
 */
std::string sbimCacheKey(const workloads::WorkloadSet &set,
                         double scale, const std::string &layout_name,
                         const SearchOptions &opts);

/**
 * A cache hit: everything `searchedMapper` needs, plus the cost
 * breakdown so CLI callers can report gain without re-searching.
 * (Search statistics are not persisted — a hit reports zero
 * evaluations, which is accurate: nothing was evaluated.)
 */
struct CachedSearch
{
    BitMatrix bim;
    double cost = 0.0;
    double identityCost = 0.0;
    std::vector<double> targetEntropy;

    CachedSearch() : bim(1) {}

    /** View as a `SearchResult` (stats zeroed). */
    SearchResult toResult() const;
};

/** Look up a cached search (loads the file on first use). */
std::optional<CachedSearch> sbimCacheLookup(const std::string &key);

/** Persist a search result (no-op when caching is disabled). */
void sbimCacheStore(const std::string &key, const SearchResult &r);

/**
 * Drop the in-memory SBIM cache and forget that the file was loaded
 * (next lookup re-reads disk). Testing hook only.
 */
void sbimCacheResetForTesting();

} // namespace search
} // namespace valley

#endif // VALLEY_SEARCH_SBIM_CACHE_HH
