#include "search/searched_bim.hh"

#include <cstdio>
#include <string>

#include "harness/profile_cache.hh"
#include "search/sbim_cache.hh"
#include "workloads/profiler.hh"

namespace valley {
namespace search {

FlatnessObjective
defaultObjective(const AddressLayout &layout,
                 const std::vector<unsigned> &targets)
{
    FlatnessObjective obj;
    std::uint64_t channel_mask = 0;
    for (unsigned b : layout.channelBits())
        channel_mask |= std::uint64_t{1} << b;
    obj.targetWeights.reserve(targets.size());
    for (unsigned t : targets)
        obj.targetWeights.push_back(((channel_mask >> t) & 1) ? 2.0
                                                              : 1.0);
    return obj;
}

FlatnessObjective
defaultObjective(const AddressLayout &layout)
{
    return defaultObjective(layout, layout.randomizeTargets());
}

std::string
sbimMapperId(const BitMatrix &bim, std::uint64_t seed)
{
    // FNV-1a over the row masks: cheap, stable, and sensitive to any
    // row change, so distinct matrices get distinct cache ids.
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned r = 0; r < bim.size(); ++r) {
        std::uint64_t row = bim.row(r);
        for (unsigned byte = 0; byte < 8; ++byte) {
            h ^= (row >> (8 * byte)) & 0xFF;
            h *= 0x100000001B3ull;
        }
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "SBIM-%llu-%016llx",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(h));
    return buf;
}

SearchOptions
defaultOptions(const AddressLayout &layout)
{
    SearchOptions opts;
    opts.targets = layout.randomizeTargets();
    opts.candidateMask = layout.pageMask();
    return opts;
}

namespace {

/**
 * The one shared search pipeline. Both public entry points go
 * through this, so the matrix fig10 gets from `searchedMapper` and
 * the profile `searchWorkload` stores under that matrix's hash can
 * never come from diverging copies of the setup code.
 */
struct Pipeline
{
    TracePlanes planes;
    BimSearch searcher;

    Pipeline(const Workload &workload, const AddressLayout &layout,
             const SearchOptions &opts)
        : planes(workload, PlaneOptions{layout.addrBits, opts.threads}),
          searcher(layout, planes,
                   defaultObjective(layout, opts.targets), opts)
    {
    }
};

/** Fill empty targets / zero mask from the layout. */
void
defaultFromLayout(SearchOptions &opts, const AddressLayout &layout)
{
    if (opts.targets.empty())
        opts.targets = layout.randomizeTargets();
    if (opts.candidateMask == 0)
        opts.candidateMask = layout.pageMask();
}

} // namespace

WorkloadSearchResult
searchWorkload(const Workload &workload, const AddressLayout &layout,
               SearchOptions opts, double scale)
{
    defaultFromLayout(opts, layout);

    WorkloadSearchResult out;

    // Identity profile through the on-disk cache: repeated service
    // invocations (and the Fig. 5/10 benches) share the computation.
    workloads::ProfileOptions po;
    po.window = opts.window;
    po.numBits = layout.addrBits;
    po.metric = opts.metric;
    po.threads = opts.threads;
    out.identityProfile =
        harness::profileWorkloadCached(workload, po, scale, "");

    const std::string cache_key = sbimCacheKey(
        workload.info().abbrev, scale, layout.name, opts);
    const auto cached = sbimCacheLookup(cache_key);

    const Pipeline pipe(workload, layout, opts);
    out.annealed =
        cached ? cached->toResult() : pipe.searcher.anneal();
    out.greedyBaseline = pipe.searcher.greedy();
    if (!cached)
        sbimCacheStore(cache_key, out.annealed);

    out.searchedProfile = pipe.planes.profileFor(
        out.annealed.bim, opts.window, opts.metric);
    // Persist under the matrix-hashed SBIM mapper id so Fig. 10-style
    // benches can chart this exact searched mapping without
    // re-profiling (and never collide with a different-budget run).
    harness::profileCacheStore(
        harness::profileCacheKey(
            workload.info().abbrev,
            sbimMapperId(out.annealed.bim, opts.seed), po.window,
            po.numBits, po.metric, scale),
        out.searchedProfile);
    return out;
}

std::unique_ptr<AddressMapper>
searchedMapper(const AddressLayout &layout, const Workload &workload,
               const SearchOptions &opts_in, double scale)
{
    SearchOptions opts = opts_in;
    defaultFromLayout(opts, layout);
    // A cache hit skips the whole pipeline — including trace-plane
    // extraction — so repeated SBIM grid cells pay only the lookup.
    const std::string cache_key = sbimCacheKey(
        workload.info().abbrev, scale, layout.name, opts);
    if (auto cached = sbimCacheLookup(cache_key))
        return mapping::makeCustom("SBIM", layout,
                                   std::move(cached->bim));
    const Pipeline pipe(workload, layout, opts);
    SearchResult best = pipe.searcher.anneal();
    sbimCacheStore(cache_key, best);
    return mapping::makeCustom("SBIM", layout, std::move(best.bim));
}

} // namespace search
} // namespace valley
