#include "search/searched_bim.hh"

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/fnv.hh"
#include "harness/profile_cache.hh"
#include "search/sbim_cache.hh"
#include "workloads/profiler.hh"

namespace valley {
namespace search {

FlatnessObjective
defaultObjective(const AddressLayout &layout,
                 const std::vector<unsigned> &targets)
{
    FlatnessObjective obj;
    std::uint64_t channel_mask = 0;
    for (unsigned b : layout.channelBits())
        channel_mask |= std::uint64_t{1} << b;
    obj.targetWeights.reserve(targets.size());
    for (unsigned t : targets)
        obj.targetWeights.push_back(((channel_mask >> t) & 1) ? 2.0
                                                              : 1.0);
    return obj;
}

FlatnessObjective
defaultObjective(const AddressLayout &layout)
{
    return defaultObjective(layout, layout.randomizeTargets());
}

JointObjective
defaultJointObjective(const AddressLayout &layout,
                      const std::vector<unsigned> &targets,
                      JointCombiner combiner)
{
    JointObjective obj;
    obj.flatness = defaultObjective(layout, targets);
    obj.combiner = combiner;
    return obj;
}

std::string
sbimMapperId(const BitMatrix &bim, std::uint64_t seed)
{
    // FNV-1a over the row masks: cheap, stable, and sensitive to any
    // row change, so distinct matrices get distinct cache ids.
    std::uint64_t h = bits::kFnvOffsetBasis;
    for (unsigned r = 0; r < bim.size(); ++r)
        h = bits::fnv1aU64(h, bim.row(r));
    char buf[64];
    std::snprintf(buf, sizeof buf, "SBIM-%llu-%016llx",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(h));
    return buf;
}

SearchOptions
defaultOptions(const AddressLayout &layout)
{
    SearchOptions opts;
    opts.targets = layout.randomizeTargets();
    opts.candidateMask = layout.pageMask();
    return opts;
}

std::string
jointMapperName(const workloads::WorkloadSet &set)
{
    return set.size() == 1 ? "SBIM" : "GBIM";
}

namespace {

/**
 * The one shared joint-search pipeline. Every public entry point —
 * set or single-workload — goes through this, so the matrix the
 * harness gets from `setMapper` and the profiles `searchSet` stores
 * under that matrix's hash can never come from diverging copies of
 * the setup code.
 *
 * Member workloads are rebuilt from their canonical names and their
 * planes extracted in `set.members()` order; the planes then feed
 * one `BimSearch` scoring every candidate row against all members.
 */
struct SetPipeline
{
    std::vector<std::unique_ptr<Workload>> workloads;
    std::vector<TracePlanes> planes;
    std::unique_ptr<BimSearch> searcher;

    SetPipeline(const workloads::WorkloadSet &set,
                const AddressLayout &layout, const SearchOptions &opts,
                double scale)
        : workloads(set.build(scale))
    {
        planes.reserve(workloads.size());
        for (const auto &wl : workloads)
            planes.emplace_back(
                *wl, PlaneOptions{layout.addrBits, opts.threads});
        std::vector<const TracePlanes *> ptrs;
        ptrs.reserve(planes.size());
        for (const TracePlanes &p : planes)
            ptrs.push_back(&p);
        JointObjective obj =
            defaultJointObjective(layout, opts.targets, opts.combiner);
        obj.memberWeights = opts.memberWeights;
        searcher = std::make_unique<BimSearch>(
            layout, std::move(ptrs), std::move(obj), opts);
    }
};

/** Fill empty targets / zero mask from the layout. */
void
defaultFromLayout(SearchOptions &opts, const AddressLayout &layout)
{
    if (opts.targets.empty())
        opts.targets = layout.randomizeTargets();
    if (opts.candidateMask == 0)
        opts.candidateMask = layout.pageMask();
}

/**
 * A weight vector that does not line up with the set would silently
 * weight the wrong members (the set canonicalizes member order), so
 * mismatches fail loudly at every entry point — including cache-hit
 * paths that never build the objective.
 */
void
validateWeights(const workloads::WorkloadSet &set,
                const SearchOptions &opts)
{
    if (!opts.memberWeights.empty() &&
        opts.memberWeights.size() != set.size())
        throw std::invalid_argument(
            "searchSet: memberWeights size " +
            std::to_string(opts.memberWeights.size()) +
            " != workload set size " + std::to_string(set.size()));
}

} // namespace

SetSearchResult
searchSet(const workloads::WorkloadSet &set,
          const AddressLayout &layout, SearchOptions opts,
          double scale)
{
    defaultFromLayout(opts, layout);
    validateWeights(set, opts);

    SetSearchResult out;

    const std::string cache_key =
        sbimCacheKey(set, scale, layout.name, opts);
    const auto cached = sbimCacheLookup(cache_key);

    const SetPipeline pipe(set, layout, opts, scale);

    // Identity profiles through the on-disk cache: repeated service
    // invocations (and the Fig. 5/10 benches) share the computation.
    workloads::ProfileOptions po;
    po.window = opts.window;
    po.numBits = layout.addrBits;
    po.metric = opts.metric;
    po.threads = opts.threads;
    out.identityProfiles.reserve(set.size());
    for (const auto &wl : pipe.workloads)
        out.identityProfiles.push_back(
            harness::profileWorkloadCached(*wl, po, scale, ""));

    out.annealed =
        cached ? cached->toResult() : pipe.searcher->anneal();
    out.greedyBaseline = pipe.searcher->greedy();
    // A deadline-truncated result is a valid incumbent but
    // wall-clock-dependent: persisting it would serve a
    // nondeterministic matrix to every later (uncancelled) run.
    if (!cached && !out.annealed.stats.deadlineHit)
        sbimCacheStore(cache_key, out.annealed);

    // Per-member searched profiles, persisted under the matrix-hashed
    // SBIM mapper id so Fig. 10-style benches can chart this exact
    // searched mapping without re-profiling (and never collide with a
    // different-budget or different-set run).
    const std::string mapper_id =
        sbimMapperId(out.annealed.bim, opts.seed);
    out.searchedProfiles.reserve(set.size());
    for (std::size_t m = 0; m < pipe.planes.size(); ++m) {
        EntropyProfile p = pipe.planes[m].profileFor(
            out.annealed.bim, opts.window, opts.metric);
        harness::profileCacheStore(
            harness::profileCacheKey(set.members()[m], mapper_id,
                                     po.window, po.numBits, po.metric,
                                     scale),
            p);
        out.searchedProfiles.push_back(std::move(p));
    }

    // A cache hit deserializes only (bim, costs, aggregate entropy);
    // rebuild the per-member breakdown from the searched profiles —
    // the same rowEntropy arithmetic the live search used, so hit and
    // miss report identical numbers.
    if (out.annealed.memberTargetEntropy.empty()) {
        const unsigned gates = out.annealed.bim.xorGateCount();
        const FlatnessObjective flat =
            defaultObjective(layout, opts.targets);
        out.annealed.memberTargetEntropy.resize(set.size());
        out.annealed.memberCosts.resize(set.size());
        for (std::size_t m = 0; m < set.size(); ++m) {
            auto &ent = out.annealed.memberTargetEntropy[m];
            ent.resize(opts.targets.size());
            for (std::size_t i = 0; i < opts.targets.size(); ++i)
                ent[i] =
                    out.searchedProfiles[m].perBit[opts.targets[i]];
            out.annealed.memberCosts[m] = flat.cost(ent, gates);
        }
    }
    return out;
}

std::unique_ptr<AddressMapper>
setMapper(const AddressLayout &layout,
          const workloads::WorkloadSet &set,
          const SearchOptions &opts_in, double scale, std::string name)
{
    SearchOptions opts = opts_in;
    defaultFromLayout(opts, layout);
    validateWeights(set, opts);
    // A cache hit skips the whole pipeline — including trace-plane
    // extraction for every member — so repeated SBIM/GBIM grid cells
    // pay only the lookup.
    const std::string cache_key =
        sbimCacheKey(set, scale, layout.name, opts);
    if (name.empty())
        name = jointMapperName(set);
    if (auto cached = sbimCacheLookup(cache_key))
        return mapping::makeCustom(name, layout,
                                   std::move(cached->bim));
    const SetPipeline pipe(set, layout, opts, scale);
    SearchResult best = pipe.searcher->anneal();
    // Same rule as searchSet: never cache a deadline-truncated
    // (wall-clock-dependent) matrix.
    if (!best.stats.deadlineHit)
        sbimCacheStore(cache_key, best);
    return mapping::makeCustom(name, layout, std::move(best.bim));
}

WorkloadSearchResult
searchWorkload(const Workload &workload, const AddressLayout &layout,
               SearchOptions opts, double scale)
{
    const workloads::WorkloadSet set({workload.info().abbrev});
    SetSearchResult r = searchSet(set, layout, std::move(opts), scale);
    WorkloadSearchResult out;
    out.annealed = std::move(r.annealed);
    out.greedyBaseline = std::move(r.greedyBaseline);
    out.identityProfile = std::move(r.identityProfiles[0]);
    out.searchedProfile = std::move(r.searchedProfiles[0]);
    return out;
}

std::unique_ptr<AddressMapper>
searchedMapper(const AddressLayout &layout, const Workload &workload,
               const SearchOptions &opts, double scale)
{
    return setMapper(layout,
                     workloads::WorkloadSet({workload.info().abbrev}),
                     opts, scale);
}

} // namespace search
} // namespace valley
