#include "search/objective.hh"

#include <algorithm>
#include <cassert>

namespace valley {
namespace search {

double
FlatnessObjective::cost(std::span<const double> target_entropy,
                        unsigned xor_gates) const
{
    if (target_entropy.empty())
        return gateWeight * xor_gates;
    assert(targetWeights.empty() ||
           targetWeights.size() == target_entropy.size());

    double wsum = 0.0;
    double mean = 0.0;
    double mn = 1.0;
    for (std::size_t i = 0; i < target_entropy.size(); ++i) {
        const double w =
            targetWeights.empty() ? 1.0 : targetWeights[i];
        wsum += w;
        mean += w * target_entropy[i];
        mn = std::min(mn, target_entropy[i]);
    }
    if (wsum > 0.0)
        mean /= wsum;
    return meanWeight * (1.0 - mean) + minWeight * (1.0 - mn) +
           gateWeight * xor_gates;
}

const char *
combinerName(JointCombiner c)
{
    return c == JointCombiner::WorstCase ? "worst" : "mean";
}

double
JointObjective::combine(std::span<const double> member_costs) const
{
    if (member_costs.empty())
        return 0.0;
    assert(memberWeights.empty() ||
           memberWeights.size() == member_costs.size());
    if (combiner == JointCombiner::WorstCase) {
        double mx = member_costs[0];
        for (double c : member_costs)
            mx = std::max(mx, c);
        return mx;
    }
    double wsum = 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < member_costs.size(); ++i) {
        const double w =
            memberWeights.empty() ? 1.0 : memberWeights[i];
        wsum += w;
        sum += w * member_costs[i];
    }
    return wsum > 0.0 ? sum / wsum : 0.0;
}

} // namespace search
} // namespace valley
