#include "search/objective.hh"

#include <algorithm>
#include <cassert>

namespace valley {
namespace search {

double
FlatnessObjective::cost(std::span<const double> target_entropy,
                        unsigned xor_gates) const
{
    if (target_entropy.empty())
        return gateWeight * xor_gates;
    assert(targetWeights.empty() ||
           targetWeights.size() == target_entropy.size());

    double wsum = 0.0;
    double mean = 0.0;
    double mn = 1.0;
    for (std::size_t i = 0; i < target_entropy.size(); ++i) {
        const double w =
            targetWeights.empty() ? 1.0 : targetWeights[i];
        wsum += w;
        mean += w * target_entropy[i];
        mn = std::min(mn, target_entropy[i]);
    }
    if (wsum > 0.0)
        mean /= wsum;
    return meanWeight * (1.0 - mean) + minWeight * (1.0 - mn) +
           gateWeight * xor_gates;
}

} // namespace search
} // namespace valley
