/**
 * @file
 * Bit-plane trace representation for fast BIM-candidate scoring.
 *
 * The BIM search loop (Section IV-B's design-time methodology turned
 * into `search::BimSearch`) must score thousands of candidate
 * matrices against one workload. Re-profiling the workload per
 * candidate — even through the bit-sliced accumulator — would re-read
 * every trace address each time. `TracePlanes` instead streams each
 * TB's coalesced request addresses through `bits::transpose64`
 * *once*, keeping the transposed lanes: for every tracked address bit
 * `b` and every TB, one packed 64-requests-per-word bit plane.
 *
 * Because a BIM output bit is the XOR of the input bits its row taps,
 * the mapped output plane is just the XOR of the tapped input planes,
 * and its per-TB Bit Value Ratio is one popcount pass — no address is
 * ever touched again. A candidate row is scored in
 * O(taps x requests / 64 + #TBs) instead of O(requests x bits).
 *
 * ## Arena layout
 *
 * All planes of one kernel live in a single contiguous arena
 * allocation, **plane-major**: input bit `b`'s strip — every TB's
 * lane words for that bit, in TB-id order — is the contiguous range
 * `arena[b * kwords, (b + 1) * kwords)`, and a TB's segment sits at
 * the same local word offset in every strip (its row-plane offset
 * relative to the kernel). Incremental moves then stream: a
 * tap-toggle reads one whole strip sequentially instead of taking a
 * cache miss per TB (the strips of a large workload span megabytes,
 * so a TB-major layout made every per-TB plane read a fresh line),
 * and uniform one-word-per-TB kernels — every synth workload — XOR
 * and popcount the strip through one `SimdOps::xorPopcountEach`
 * call. Resident arena bytes are reported through the metrics
 * registry gauge `search.plane_bytes` (added on construction,
 * subtracted on destruction).
 *
 * ## Incremental scoring
 *
 * A full candidate row is `combineRow` (XOR of all tapped planes +
 * per-TB one-counts); search move kinds then update a cached row in
 * O(one plane): `toggleRow` XORs in exactly one input plane (a
 * tap-toggle move), `xorRows` combines two cached rows (a row-XOR
 * move). One-counts are exact integers, so a cached row's
 * `entropyFromOnes` is bit-identical to `rowEntropy` recomputed from
 * scratch — the oracle path, which stays as-is. `rowEntropyBatch`
 * scores N masks over one shared one-count scratch while the strips
 * stay cache-hot — no per-candidate allocation, which is what a loop
 * of `rowEntropy` calls pays.
 *
 * The arithmetic mirrors `workloads::profileWorkload` exactly: the
 * per-TB one-counts are the same integers the scalar and sliced
 * accumulators produce, the BVR division is the same, and the window
 * metric and kernel combination reuse `entropy/window_entropy.hh` —
 * so `profileFor` is bit-identical to profiling the workload under
 * the same matrix (asserted in `tests/bim_search_test.cc`).
 */

#ifndef VALLEY_SEARCH_TRACE_PLANES_HH
#define VALLEY_SEARCH_TRACE_PLANES_HH

#include <cstdint>
#include <span>
#include <vector>

#include "bim/bit_matrix.hh"
#include "common/bitops.hh"
#include "entropy/window_entropy.hh"
#include "workloads/workload.hh"

namespace valley {
namespace search {

/** Knobs for building a workload's bit planes. */
struct PlaneOptions
{
    unsigned numBits = 30; ///< physical address bits tracked
    /**
     * Worker threads for plane extraction: 1 = serial, 0 = one per
     * hardware thread. Every TB writes only its own preallocated
     * plane slot, so the result is bit-identical at any thread count.
     */
    unsigned threads = 0;
    /**
     * Pin this instance to the scalar kernel table regardless of CPU
     * and environment — the in-process oracle leg for SIMD identity
     * tests and benches. (All levels are bit-identical anyway; this
     * exists so one process can time both paths.)
     */
    bool forceScalar = false;
};

/**
 * Transposed per-TB request planes of one workload.
 *
 * Immutable after construction; the scoring entry points are const
 * and touch no shared mutable state, so one instance can be shared by
 * concurrent search restarts. Callers owning incremental row caches
 * pass their own plane/one-count storage in.
 */
class TracePlanes
{
  public:
    /** Generate and transpose every TB trace of `workload`. */
    TracePlanes(const Workload &workload, const PlaneOptions &opts);

    TracePlanes(const TracePlanes &) = delete;
    TracePlanes &operator=(const TracePlanes &) = delete;
    TracePlanes(TracePlanes &&other) noexcept;
    TracePlanes &operator=(TracePlanes &&other) noexcept;
    ~TracePlanes();

    /** Tracked address-bit width (matrix size the planes can score). */
    unsigned numBits() const { return nbits; }

    /** Total coalesced requests across all kernels. */
    std::uint64_t totalRequests() const { return requests_; }

    /** Number of kernels represented. */
    std::size_t numKernels() const { return kernels.size(); }

    /** Total TBs across all kernels (`ones` spans have this length). */
    std::size_t tbCount() const { return tb_count; }

    /**
     * 64-request words in one combined row plane — the concatenation
     * of every TB's lane, in (kernel, TB) order (`plane` buffers
     * passed to the incremental entry points have this length).
     */
    std::size_t planeWords() const { return plane_words; }

    /** Resident arena bytes (the `search.plane_bytes` gauge value). */
    std::uint64_t planeBytes() const;

    /**
     * Window entropy of the output bit produced by XOR-combining the
     * input bits selected by `row_mask` (a `BitMatrix` row), averaged
     * across kernels weighted by request count — exactly the value
     * `profileWorkload` would report for that output bit under a
     * matrix containing this row. Bits of `row_mask` at or above
     * `numBits()` must be clear. The from-scratch oracle the
     * incremental and batched paths are tested against.
     */
    double rowEntropy(std::uint64_t row_mask, unsigned window,
                      EntropyMetric metric) const;

    /**
     * Score `masks.size()` candidate row masks in one sweep over one
     * shared one-count scratch (a `rowEntropy` loop allocates per
     * call). `out[i]` is bit-identical to
     * `rowEntropy(masks[i], window, metric)`.
     */
    void rowEntropyBatch(std::span<const std::uint64_t> masks,
                         unsigned window, EntropyMetric metric,
                         double *out) const;

    /** Convenience overload returning a fresh vector. */
    std::vector<double>
    rowEntropyBatch(std::span<const std::uint64_t> masks,
                    unsigned window, EntropyMetric metric) const;

    /**
     * Build the combined output plane of `row_mask` into
     * `plane[0, planeWords())` and its exact per-TB one-counts into
     * `ones[0, tbCount())`.
     */
    void combineRow(std::uint64_t row_mask, std::uint64_t *plane,
                    std::uint64_t *ones) const;

    /**
     * `dst = base ^ inputPlane(bit)` with per-TB one-counts of the
     * result — a tap-toggle move in O(one plane). `dst` may alias
     * `base`.
     */
    void toggleRow(const std::uint64_t *base, unsigned bit,
                   std::uint64_t *dst, std::uint64_t *ones) const;

    /**
     * `dst = a ^ b` with per-TB one-counts of the result — a row-XOR
     * move on two cached rows. `dst` may alias either input.
     */
    void xorRows(const std::uint64_t *a, const std::uint64_t *b,
                 std::uint64_t *dst, std::uint64_t *ones) const;

    /**
     * The entropy value of a row whose per-TB one-counts are `ones`
     * (as produced by `combineRow`/`toggleRow`/`xorRows`).
     * Bit-identical to `rowEntropy` of the same row: one-counts are
     * exact integers, and the BVR division, window metric and kernel
     * combination are the same operations in the same order.
     */
    double entropyFromOnes(const std::uint64_t *ones, unsigned window,
                           EntropyMetric metric) const;

    /**
     * Full workload profile under matrix `m`: per output bit `r`,
     * `rowEntropy(m.row(r))`. Bit-identical to
     * `profileWorkload(workload, opts with mapper = m)`.
     */
    EntropyProfile profileFor(const BitMatrix &m, unsigned window,
                              EntropyMetric metric) const;

  private:
    /** One TB's view into its kernel's arena. */
    struct TbView
    {
        std::uint64_t requests = 0;
        std::uint32_t words = 0; ///< 64-request words per bit plane
        std::size_t rowOff = 0;  ///< this TB's words in a row plane
    };

    /**
     * One kernel's TBs (TB-id order) over one contiguous plane-major
     * arena: bit `b`'s strip at `arena[b * kwords]`, TB `t`'s segment
     * at local offset `tbs[t].rowOff - rowBase` within every strip.
     */
    struct KernelPlanes
    {
        std::vector<TbView> tbs;
        std::vector<std::uint64_t> arena;
        std::uint64_t requests = 0; ///< combine() weight
        std::size_t tbBase = 0;     ///< first global TB index
        std::size_t rowBase = 0;    ///< first word in a row plane
        std::size_t kwords = 0;     ///< words per strip (sum of TBs)
        bool uniform = false;       ///< every TB has words == 1
    };

    /** Exact per-TB one-counts of `row_mask`'s combined output plane. */
    void rowOnes(std::uint64_t row_mask, std::uint64_t *ones) const;

    void releaseGauge() noexcept;

    unsigned nbits;
    std::uint64_t requests_ = 0;
    std::size_t tb_count = 0;
    std::size_t plane_words = 0;
    const bits::SimdOps *ops; ///< kernel table (scalar if forced)
    std::vector<KernelPlanes> kernels;
};

} // namespace search
} // namespace valley

#endif // VALLEY_SEARCH_TRACE_PLANES_HH
