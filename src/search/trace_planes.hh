/**
 * @file
 * Bit-plane trace representation for fast BIM-candidate scoring.
 *
 * The BIM search loop (Section IV-B's design-time methodology turned
 * into `search::BimSearch`) must score thousands of candidate
 * matrices against one workload. Re-profiling the workload per
 * candidate — even through the bit-sliced accumulator — would re-read
 * every trace address each time. `TracePlanes` instead streams each
 * TB's coalesced request addresses through `bits::transpose64`
 * *once*, keeping the transposed lanes: for every tracked address bit
 * `b` and every TB, one packed 64-requests-per-word bit plane.
 *
 * Because a BIM output bit is the XOR of the input bits its row taps,
 * the mapped output plane is just the XOR of the tapped input planes,
 * and its per-TB Bit Value Ratio is one popcount pass — no address is
 * ever touched again. A candidate row is scored in
 * O(taps x requests / 64 + #TBs) instead of O(requests x bits).
 *
 * The arithmetic mirrors `workloads::profileWorkload` exactly: the
 * per-TB one-counts are the same integers the scalar and sliced
 * accumulators produce, the BVR division is the same, and the window
 * metric and kernel combination reuse `entropy/window_entropy.hh` —
 * so `profileFor` is bit-identical to profiling the workload under
 * the same matrix (asserted in `tests/bim_search_test.cc`).
 */

#ifndef VALLEY_SEARCH_TRACE_PLANES_HH
#define VALLEY_SEARCH_TRACE_PLANES_HH

#include <cstdint>
#include <vector>

#include "bim/bit_matrix.hh"
#include "entropy/window_entropy.hh"
#include "workloads/workload.hh"

namespace valley {
namespace search {

/** Knobs for building a workload's bit planes. */
struct PlaneOptions
{
    unsigned numBits = 30; ///< physical address bits tracked
    /**
     * Worker threads for plane extraction: 1 = serial, 0 = one per
     * hardware thread. Every TB writes only its own preallocated
     * plane slot, so the result is bit-identical at any thread count.
     */
    unsigned threads = 0;
};

/**
 * Transposed per-TB request planes of one workload.
 *
 * Immutable after construction; `rowEntropy`/`profileFor` are const
 * and touch no shared mutable state, so one instance can be shared by
 * concurrent search restarts.
 */
class TracePlanes
{
  public:
    /** Generate and transpose every TB trace of `workload`. */
    TracePlanes(const Workload &workload, const PlaneOptions &opts);

    /** Tracked address-bit width (matrix size the planes can score). */
    unsigned numBits() const { return nbits; }

    /** Total coalesced requests across all kernels. */
    std::uint64_t totalRequests() const { return requests_; }

    /** Number of kernels represented. */
    std::size_t numKernels() const { return kernels.size(); }

    /**
     * Window entropy of the output bit produced by XOR-combining the
     * input bits selected by `row_mask` (a `BitMatrix` row), averaged
     * across kernels weighted by request count — exactly the value
     * `profileWorkload` would report for that output bit under a
     * matrix containing this row. Bits of `row_mask` at or above
     * `numBits()` must be clear.
     */
    double rowEntropy(std::uint64_t row_mask, unsigned window,
                      EntropyMetric metric) const;

    /**
     * Full workload profile under matrix `m`: per output bit `r`,
     * `rowEntropy(m.row(r))`. Bit-identical to
     * `profileWorkload(workload, opts with mapper = m)`.
     */
    EntropyProfile profileFor(const BitMatrix &m, unsigned window,
                              EntropyMetric metric) const;

  private:
    /** One TB's transposed trace: planes[b * words + w]. */
    struct TbPlanes
    {
        std::uint64_t requests = 0;
        std::uint32_t words = 0; ///< 64-request words per bit plane
        std::vector<std::uint64_t> bits;
    };

    /** One kernel's TBs, ordered by TB id. */
    struct KernelPlanes
    {
        std::vector<TbPlanes> tbs;
        std::uint64_t requests = 0; ///< combine() weight
    };

    /** BVR of `row_mask`'s output bit for one TB. */
    static double tbBvr(const TbPlanes &tb, std::uint64_t row_mask);

    unsigned nbits;
    std::uint64_t requests_ = 0;
    std::vector<KernelPlanes> kernels;
};

} // namespace search
} // namespace valley

#endif // VALLEY_SEARCH_TRACE_PLANES_HH
