#include "search/bim_search.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "common/bitops.hh"
#include "common/fault_inject.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "common/trace_span.hh"

namespace valley {
namespace search {

namespace {

/**
 * Rank check of the full candidate matrix: identity everywhere except
 * the target rows. This is the invertibility invariant's enforcement
 * point — every move calls it before the move can be accepted, so no
 * singular matrix ever enters the chain (see bim_search.hh).
 */
bool
invertibleWithTargets(unsigned n, const std::vector<unsigned> &targets,
                      const std::vector<std::uint64_t> &target_rows)
{
    std::uint64_t rows[64];
    for (unsigned r = 0; r < n; ++r)
        rows[r] = std::uint64_t{1} << r;
    for (std::size_t i = 0; i < targets.size(); ++i)
        rows[targets[i]] = target_rows[i];

    unsigned rank = 0;
    for (unsigned c = 0; c < n && rank < n; ++c) {
        unsigned p = rank;
        while (p < n && !((rows[p] >> c) & 1))
            ++p;
        if (p == n)
            continue;
        std::swap(rows[rank], rows[p]);
        for (unsigned r = 0; r < n; ++r)
            if (r != rank && ((rows[r] >> c) & 1))
                rows[r] ^= rows[rank];
        ++rank;
    }
    return rank == n;
}

/** XOR gates of the target rows (non-target rows are identity = 0). */
unsigned
gateCount(const std::vector<std::uint64_t> &rows)
{
    unsigned g = 0;
    for (std::uint64_t r : rows) {
        const unsigned taps = static_cast<unsigned>(std::popcount(r));
        g += taps > 1 ? taps - 1 : 0;
    }
    return g;
}

/** Deterministic per-restart seed derivation. */
std::uint64_t
chainSeed(std::uint64_t seed, unsigned restart)
{
    return (seed + 1) * 0x9E3779B97F4A7C15ull ^
           (static_cast<std::uint64_t>(restart) + 1) *
               0xBF58476D1CE4E5B9ull;
}

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Mirror one finished search's aggregate stats into the registry —
 * per-phase evals and microseconds as counters (accumulating across
 * searches in the process), so a --metrics snapshot can derive
 * per-phase evals/sec without access to the SearchResult.
 */
void
exportStatsToRegistry(const SearchStats &s)
{
    const auto us = [](double seconds) {
        return seconds > 0.0
                   ? static_cast<std::uint64_t>(seconds * 1e6)
                   : 0;
    };
    metrics::counter("search.evaluations").add(s.evaluations);
    metrics::counter("search.evals_setup").add(s.setupEvaluations);
    metrics::counter("search.evals_anneal").add(s.annealEvaluations);
    metrics::counter("search.evals_polish").add(s.polishEvaluations);
    metrics::counter("search.setup_us").add(us(s.setupSeconds));
    metrics::counter("search.anneal_us").add(us(s.annealSeconds));
    metrics::counter("search.polish_us").add(us(s.polishSeconds));
    metrics::counter("search.total_us").add(us(s.totalSeconds));
    metrics::counter("search.plane_toggles").add(s.planeToggles);
    metrics::counter("search.plane_xors").add(s.planeXors);
    metrics::counter("search.plane_rebuilds").add(s.planeRebuilds);
    // Throughput of the finished run (last-writer-wins gauge): the
    // headline evaluations/sec the throughput bench tracks.
    if (s.totalSeconds > 0.0)
        metrics::gauge("search.evals_per_sec")
            .set(static_cast<std::int64_t>(
                static_cast<double>(s.evaluations) / s.totalSeconds));
    if (s.deadlineHit)
        metrics::counter("search.deadline_hits").inc();
    if (s.capped)
        metrics::counter("search.capped").inc();
}

} // namespace

BimSearch::BimSearch(const AddressLayout &layout,
                     std::vector<const TracePlanes *> planes,
                     JointObjective objective_, SearchOptions opts_)
    : nbits(layout.addrBits), planes_(std::move(planes)),
      objective(std::move(objective_)), opts(std::move(opts_))
{
    if (planes_.empty())
        throw std::invalid_argument("BimSearch: empty plane set");
    for (const TracePlanes *p : planes_)
        if (p == nullptr || p->numBits() != nbits)
            throw std::invalid_argument(
                "BimSearch: planes bit width != layout address bits");
    if (!objective.memberWeights.empty() &&
        objective.memberWeights.size() != planes_.size())
        throw std::invalid_argument(
            "BimSearch: memberWeights size != set members");

    targets_ = opts.targets.empty() ? layout.randomizeTargets()
                                    : opts.targets;
    mask_ = (opts.candidateMask ? opts.candidateMask
                                : layout.pageMask()) &
            bits::mask(nbits);
    if (targets_.empty())
        throw std::invalid_argument("BimSearch: no target bits");
    for (unsigned t : targets_) {
        if (t >= nbits)
            throw std::invalid_argument(
                "BimSearch: target out of range");
        // Same precondition as bim::randomBroad: a target column that
        // no target row can tap would be zero everywhere (non-target
        // rows are identity), making every candidate singular.
        if (!((mask_ >> t) & 1))
            throw std::invalid_argument(
                "BimSearch: targets must be candidates");
    }
    if (!objective.flatness.targetWeights.empty() &&
        objective.flatness.targetWeights.size() != targets_.size())
        throw std::invalid_argument(
            "BimSearch: targetWeights size != targets");
    for (unsigned b = 0; b < nbits; ++b)
        if ((mask_ >> b) & 1)
            candidateBits.push_back(b);
    if (opts.restarts == 0)
        opts.restarts = 1;
    if (opts.minTaps == 0)
        opts.minTaps = 1;
}

BimSearch::BimSearch(const AddressLayout &layout,
                     const TracePlanes &planes, FlatnessObjective obj,
                     SearchOptions opts_)
    : BimSearch(layout, std::vector<const TracePlanes *>{&planes},
                JointObjective{std::move(obj), JointCombiner::Mean, {}},
                std::move(opts_))
{
}

std::uint64_t
BimSearch::chainBudget(bool greedy) const
{
    if (opts.maxEvaluations == 0)
        return 0;
    // greedy() is one chain and gets the whole per-run cap; anneal()
    // splits it evenly across its restart chains.
    if (greedy)
        return opts.maxEvaluations;
    return std::max<std::uint64_t>(1,
                                   opts.maxEvaluations / opts.restarts);
}

double
BimSearch::identityCost() const
{
    const std::size_t nt = targets_.size();
    std::vector<std::uint64_t> masks(nt);
    for (std::size_t i = 0; i < nt; ++i)
        masks[i] = std::uint64_t{1} << targets_[i];
    std::vector<double> ent(nt);
    std::vector<double> member_costs(planes_.size());
    for (std::size_t m = 0; m < planes_.size(); ++m) {
        // One fused sweep per member (bit-identical to per-row
        // rowEntropy — see trace_planes.hh).
        planes_[m]->rowEntropyBatch(masks, opts.window, opts.metric,
                                    ent.data());
        member_costs[m] = objective.memberCost(ent, 0);
    }
    return objective.combine(member_costs);
}

/** Mutable state of one annealing chain. */
struct BimSearch::Chain
{
    std::vector<std::uint64_t> rows; ///< target row masks
    std::vector<double> ent;  ///< cached entropy, [member*nt + target]
    std::vector<double> memberCost; ///< cached per-member flatness
    unsigned gates = 0;
    double cost = 0.0;
};

SearchResult
BimSearch::runChain(unsigned restart, bool greedy) const
{
    const std::size_t nt = targets_.size();
    const std::size_t nm = planes_.size();
    XorShiftRng rng(chainSeed(opts.seed, restart));
    SearchStats stats;
    const std::uint64_t budget = chainBudget(greedy);

    // From-scratch oracle scoring (the planeCache = false path, and
    // the reference the cached path is tested against).
    const auto evalRow = [&](std::size_t m, std::uint64_t row) {
        ++stats.evaluations;
        return planes_[m]->rowEntropy(row, opts.window, opts.metric);
    };

    // Incremental plane cache (SearchOptions::planeCache): for every
    // (member, target slot) the XOR-combined output plane of the
    // current row plus its exact per-TB one-counts, and one candidate
    // scratch row per member. Proposals derive the candidate from a
    // cached plane in O(one plane); accepts swap the scratch row into
    // the cache in O(1) vector swaps. One-counts are exact integers,
    // so every entropy value equals the oracle's bit for bit.
    struct RowCache
    {
        std::vector<std::uint64_t> plane; ///< combined output plane
        std::vector<std::uint64_t> ones;  ///< per-TB one-counts
    };
    const bool use_cache = opts.planeCache;
    std::vector<RowCache> cache;   // [m * nt + i], rows of cur
    std::vector<RowCache> scratch; // [m], the proposed row
    if (use_cache) {
        cache.resize(nm * nt);
        scratch.resize(nm);
        for (std::size_t m = 0; m < nm; ++m) {
            const std::size_t pw = planes_[m]->planeWords();
            const std::size_t tc = planes_[m]->tbCount();
            scratch[m].plane.resize(pw);
            scratch[m].ones.resize(tc);
            for (std::size_t i = 0; i < nt; ++i) {
                cache[m * nt + i].plane.resize(pw);
                cache[m * nt + i].ones.resize(tc);
            }
        }
    }

    // (Re)combine cache slot (m, i) from scratch and score it — the
    // cache seeding path (setup and the polish reseed).
    const auto rebuildSlot = [&](std::size_t m, std::size_t i,
                                 std::uint64_t row) {
        RowCache &rc = cache[m * nt + i];
        planes_[m]->combineRow(row, rc.plane.data(), rc.ones.data());
        ++stats.planeRebuilds;
        return planes_[m]->entropyFromOnes(rc.ones.data(),
                                           opts.window, opts.metric);
    };

    const auto finishChain = [&](Chain &c) {
        c.gates = gateCount(c.rows);
        c.ent.resize(nm * nt);
        c.memberCost.resize(nm);
        for (std::size_t m = 0; m < nm; ++m) {
            for (std::size_t i = 0; i < nt; ++i) {
                if (use_cache) {
                    ++stats.evaluations;
                    c.ent[m * nt + i] = rebuildSlot(m, i, c.rows[i]);
                } else {
                    c.ent[m * nt + i] = evalRow(m, c.rows[i]);
                }
            }
            c.memberCost[m] = objective.memberCost(
                std::span<const double>(c.ent.data() + m * nt, nt),
                c.gates);
        }
        c.cost = objective.combine(c.memberCost);
    };

    const std::string span_tag =
        trace::enabled() ? (greedy ? std::string(" greedy#")
                                   : std::string(" chain#")) +
                               std::to_string(restart)
                         : std::string();

    // Start state: restart 0 (and the greedy baseline) start from the
    // identity, so any accepted move yields a strict improvement over
    // BASE; later restarts start from a random invertible draw for
    // diversity (randomBroad-style rejection sampling).
    auto phase_start = Clock::now();
    trace::Span setup_span(trace::enabled() ? "setup" + span_tag
                                            : std::string(),
                           "search");
    Chain cur;
    cur.rows.resize(nt);
    for (std::size_t i = 0; i < nt; ++i)
        cur.rows[i] = std::uint64_t{1} << targets_[i];
    if (restart != 0 && !greedy) {
        constexpr unsigned kDrawAttempts = 10000;
        std::vector<std::uint64_t> draw(nt);
        for (unsigned a = 0; a < kDrawAttempts; ++a) {
            for (std::size_t i = 0; i < nt; ++i) {
                std::uint64_t row = 0;
                do {
                    row = rng.next() & mask_;
                } while (static_cast<unsigned>(std::popcount(row)) <
                         opts.minTaps);
                draw[i] = row;
            }
            if (invertibleWithTargets(nbits, targets_, draw)) {
                cur.rows = draw;
                break;
            }
            ++stats.rejectedSingular;
        }
    }
    finishChain(cur);
    Chain best = cur;
    setup_span.end();
    stats.setupSeconds = secondsSince(phase_start);
    stats.setupEvaluations = stats.evaluations;

    const unsigned iters = opts.iterations;
    const double t0 = std::max(opts.initialTemp, 1e-12);
    const double tf =
        std::min(std::max(opts.finalTemp, 1e-12), t0);
    std::vector<double> mc_scratch(nm);
    std::vector<double> new_ent(nm);
    std::vector<double> old_ent(nm);

    // One Metropolis step at `temp` (0 = strict-improvement only).
    // Proposals are scored by editing the touched `cur.ent` slots in
    // place and restoring exactly those slots on reject — the nm x nt
    // matrix is never cloned per proposal.
    const auto step = [&](double temp) {
        // Propose one invertibility-preserving move (bim_search.hh).
        const unsigned kind = static_cast<unsigned>(rng.below(4));
        std::size_t i = static_cast<std::size_t>(rng.below(nt));
        std::size_t j = i;
        std::uint64_t new_row = 0;
        unsigned toggle_bit = 0;
        bool swap_move = false;
        if (kind <= 1) {
            // Tap toggle: flip one candidate tap of row i.
            toggle_bit = candidateBits[static_cast<std::size_t>(
                rng.below(candidateBits.size()))];
            new_row = cur.rows[i] ^ (std::uint64_t{1} << toggle_bit);
        } else if (kind == 2 && nt > 1) {
            // Row XOR: an elementary row operation.
            do {
                j = static_cast<std::size_t>(rng.below(nt));
            } while (j == i);
            new_row = cur.rows[i] ^ cur.rows[j];
        } else {
            // Row swap: permutes output positions; entropy values
            // move with the rows, so no re-evaluation is needed.
            if (nt <= 1)
                return;
            do {
                j = static_cast<std::size_t>(rng.below(nt));
            } while (j == i);
            swap_move = true;
        }

        double new_cost;
        unsigned new_gates = cur.gates;
        if (swap_move) {
            // Swapping two rows only permutes the output bits; rank
            // is invariant under row permutation, so no rank check is
            // needed (or possible to fail) here — the final
            // invertible() audit below still covers the result.
            // Entropy values travel with the rows: swap the two slots
            // in place (swapped back below if rejected).
            for (std::size_t m = 0; m < nm; ++m) {
                std::swap(cur.ent[m * nt + i], cur.ent[m * nt + j]);
                mc_scratch[m] = objective.memberCost(
                    std::span<const double>(
                        cur.ent.data() + m * nt, nt),
                    cur.gates);
            }
            new_cost = objective.combine(mc_scratch);
        } else {
            if (new_row == 0 ||
                static_cast<unsigned>(std::popcount(new_row)) <
                    opts.minTaps)
                return;
            std::vector<std::uint64_t> cand_rows = cur.rows;
            cand_rows[i] = new_row;
            if (!invertibleWithTargets(nbits, targets_, cand_rows)) {
                ++stats.rejectedSingular;
                return;
            }
            const unsigned old_taps = static_cast<unsigned>(
                std::popcount(cur.rows[i]));
            const unsigned new_taps =
                static_cast<unsigned>(std::popcount(new_row));
            new_gates = cur.gates - (old_taps > 1 ? old_taps - 1 : 0) +
                        (new_taps > 1 ? new_taps - 1 : 0);
            for (std::size_t m = 0; m < nm; ++m) {
                if (use_cache) {
                    // Derive the candidate plane from cached state:
                    // a tap toggle XORs in exactly one input plane,
                    // a row XOR combines two cached output planes.
                    ++stats.evaluations;
                    RowCache &base = cache[m * nt + i];
                    RowCache &cand = scratch[m];
                    if (kind <= 1) {
                        planes_[m]->toggleRow(base.plane.data(),
                                              toggle_bit,
                                              cand.plane.data(),
                                              cand.ones.data());
                        ++stats.planeToggles;
                    } else {
                        planes_[m]->xorRows(
                            base.plane.data(),
                            cache[m * nt + j].plane.data(),
                            cand.plane.data(), cand.ones.data());
                        ++stats.planeXors;
                    }
                    new_ent[m] = planes_[m]->entropyFromOnes(
                        cand.ones.data(), opts.window, opts.metric);
                } else {
                    new_ent[m] = evalRow(m, new_row);
                }
                old_ent[m] = cur.ent[m * nt + i];
                cur.ent[m * nt + i] = new_ent[m];
                mc_scratch[m] = objective.memberCost(
                    std::span<const double>(
                        cur.ent.data() + m * nt, nt),
                    new_gates);
            }
            new_cost = objective.combine(mc_scratch);
        }

        const double dc = new_cost - cur.cost;
        const bool accept =
            dc < 0.0 ||
            (temp > 0.0 && rng.uniform() < std::exp(-dc / temp));
        if (!accept) {
            // Restore only the slots this proposal touched.
            if (swap_move) {
                for (std::size_t m = 0; m < nm; ++m)
                    std::swap(cur.ent[m * nt + i],
                              cur.ent[m * nt + j]);
            } else {
                for (std::size_t m = 0; m < nm; ++m)
                    cur.ent[m * nt + i] = old_ent[m];
            }
            return;
        }
        ++stats.accepted;
        if (swap_move) {
            std::swap(cur.rows[i], cur.rows[j]);
            if (use_cache)
                for (std::size_t m = 0; m < nm; ++m)
                    std::swap(cache[m * nt + i], cache[m * nt + j]);
        } else {
            cur.rows[i] = new_row;
            cur.gates = new_gates;
            if (use_cache)
                for (std::size_t m = 0; m < nm; ++m) {
                    std::swap(cache[m * nt + i].plane,
                              scratch[m].plane);
                    std::swap(cache[m * nt + i].ones,
                              scratch[m].ones);
                }
        }
        cur.memberCost = mc_scratch;
        cur.cost = new_cost;
        if (cur.cost < best.cost)
            best = cur;
    };

    // The stop gate, checked at move boundaries so a stopped chain
    // still ends on a fully scored state. Two triggers: the counted
    // maxEvaluations budget (deterministic — never timed) and the
    // cooperative cancel/deadline token (wall-clock degradation —
    // flags deadlineHit so consumers don't cache the result).
    const auto stopRequested = [&] {
        if (budget != 0 && stats.evaluations >= budget) {
            stats.capped = true;
            return true;
        }
        if (opts.cancel != nullptr && opts.cancel->cancelled()) {
            stats.deadlineHit = true;
            return true;
        }
        return false;
    };

    // Annealing phase: geometric cooling from t0 to tf (the greedy
    // baseline runs the same steps at temperature 0 throughout).
    phase_start = Clock::now();
    trace::Span anneal_span(trace::enabled() ? "anneal" + span_tag
                                             : std::string(),
                            "search");
    for (unsigned k = 0; k < iters; ++k) {
        if (stopRequested())
            break;
        fault::maybeInject("search_step");
        const double temp =
            greedy ? 0.0
                   : t0 * std::pow(tf / t0,
                                   iters > 1
                                       ? static_cast<double>(k) /
                                             (iters - 1)
                                       : 0.0);
        step(temp);
    }
    anneal_span.end();
    stats.annealSeconds = secondsSince(phase_start);
    stats.annealEvaluations =
        stats.evaluations - stats.setupEvaluations;

    // Zero-temperature polish: descend from the chain's best state.
    // The gate regularizer is finer-grained than any practical final
    // temperature, so without this the chain could end on a state
    // that still accepts gate-increasing wiggles and return a best
    // that a plain descent would improve.
    phase_start = Clock::now();
    trace::Span polish_span(trace::enabled() ? "polish" + span_tag
                                             : std::string(),
                            "search");
    if (!greedy) {
        // Jumping back to the best state invalidates the plane cache
        // (it tracks the pre-jump cur). Recombine every slot — these
        // re-derive entropy values already counted during the walk,
        // so they are rebuilds, not evaluations.
        const bool cache_stale = use_cache && cur.rows != best.rows;
        cur = best;
        if (cache_stale)
            for (std::size_t m = 0; m < nm; ++m)
                for (std::size_t i = 0; i < nt; ++i)
                    rebuildSlot(m, i, cur.rows[i]);
        for (unsigned k = 0; k < iters / 3 + 1; ++k) {
            if (stopRequested())
                break;
            fault::maybeInject("search_step");
            step(0.0);
        }
    }
    polish_span.end();
    stats.polishSeconds = secondsSince(phase_start);
    stats.polishEvaluations = stats.evaluations -
                              stats.setupEvaluations -
                              stats.annealEvaluations;

    SearchResult result;
    BitMatrix m = BitMatrix::identity(nbits);
    for (std::size_t i = 0; i < nt; ++i)
        m.setRow(targets_[i], best.rows[i]);
    // The invariant's final audit: a singular matrix here would mean
    // a move slipped past its rank check.
    if (!m.invertible())
        throw std::logic_error("BimSearch: search produced a "
                               "singular matrix");
    result.bim = std::move(m);
    result.cost = best.cost;
    result.memberCosts = best.memberCost;
    result.memberTargetEntropy.resize(nm);
    for (std::size_t mem = 0; mem < nm; ++mem)
        result.memberTargetEntropy[mem].assign(
            best.ent.begin() +
                static_cast<std::ptrdiff_t>(mem * nt),
            best.ent.begin() +
                static_cast<std::ptrdiff_t>((mem + 1) * nt));
    // The aggregate per-target view: uniform mean across members.
    // For one member the division by 1.0 is exact, keeping the size-1
    // search bit-identical to the pre-set implementation.
    result.targetEntropy.resize(nt);
    for (std::size_t i = 0; i < nt; ++i) {
        double sum = 0.0;
        for (std::size_t mem = 0; mem < nm; ++mem)
            sum += best.ent[mem * nt + i];
        result.targetEntropy[i] = sum / static_cast<double>(nm);
    }
    result.bestRestart = restart;
    result.stats = stats;
    return result;
}

SearchResult
BimSearch::anneal() const
{
    const auto wall_start = Clock::now();
    const unsigned restarts = opts.restarts;
    std::vector<SearchResult> slots(restarts);
    const auto runOne = [&](unsigned r) {
        slots[r] = runChain(r, /*greedy=*/false);
    };

    const unsigned threads = opts.threads == 0
                                 ? ThreadPool::defaultThreads()
                                 : opts.threads;
    if (threads <= 1 || restarts <= 1) {
        for (unsigned r = 0; r < restarts; ++r)
            runOne(r);
    } else {
        ThreadPool pool(std::min(threads, restarts));
        for (unsigned r = 0; r < restarts; ++r)
            pool.submit([&runOne, r] { runOne(r); });
        pool.run();
    }

    // Best cost wins; ties break toward the lowest restart index, so
    // the choice is deterministic under any scheduling order.
    unsigned bi = 0;
    for (unsigned r = 1; r < restarts; ++r)
        if (slots[r].cost < slots[bi].cost)
            bi = r;
    SearchResult out = std::move(slots[bi]);
    out.bestRestart = bi;
    SearchStats total;
    for (const SearchResult &s : slots) {
        total.evaluations += s.stats.evaluations;
        total.accepted += s.stats.accepted;
        total.rejectedSingular += s.stats.rejectedSingular;
        total.capped = total.capped || s.stats.capped;
        total.deadlineHit = total.deadlineHit || s.stats.deadlineHit;
        total.setupSeconds += s.stats.setupSeconds;
        total.annealSeconds += s.stats.annealSeconds;
        total.polishSeconds += s.stats.polishSeconds;
        total.setupEvaluations += s.stats.setupEvaluations;
        total.annealEvaluations += s.stats.annealEvaluations;
        total.polishEvaluations += s.stats.polishEvaluations;
        total.planeToggles += s.stats.planeToggles;
        total.planeXors += s.stats.planeXors;
        total.planeRebuilds += s.stats.planeRebuilds;
    }
    out.stats = total;
    out.identityCost = identityCost();
    out.stats.totalSeconds = secondsSince(wall_start);
    exportStatsToRegistry(out.stats);
    return out;
}

SearchResult
BimSearch::greedy() const
{
    const auto wall_start = Clock::now();
    SearchResult out = runChain(0, /*greedy=*/true);
    out.identityCost = identityCost();
    out.stats.totalSeconds = secondsSince(wall_start);
    exportStatsToRegistry(out.stats);
    return out;
}

} // namespace search
} // namespace valley
