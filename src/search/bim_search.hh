/**
 * @file
 * Profile-driven BIM optimizer (the "mapping service" core).
 *
 * Closes the loop of the paper's Section IV-B design-time
 * methodology: instead of hand-deriving a BIM from an entropy chart,
 * `BimSearch` *searches* the space of invertible GF(2) matrices for
 * one that flattens the entropy valley of a workload — or, jointly,
 * of a whole workload set. Candidates are scored with a
 * `JointObjective` over one `TracePlanes` per set member (one
 * XOR+popcount pass per candidate row per member — no re-profiling);
 * the classic single-workload search is exactly the size-1 set.
 *
 * ## Search space and the invertibility invariant
 *
 * Candidates are matrices that are identity on every non-target row
 * and whose target rows tap only `candidateMask` input bits (the PAE
 * input restriction of Fig. 9 by default). The walk only ever applies
 * moves that keep the *full* matrix invertible over GF(2) — the
 * one-to-one mapping guarantee of Section IV-A is an invariant of the
 * search, not a post-hoc filter:
 *
 *  - **tap toggle** flips one candidate tap of one target row, then
 *    re-checks the full-matrix rank and rejects singular results;
 *  - **row XOR** replaces target row i by `row_i ^ row_j` (j another
 *    target). This is an elementary row operation — left-multiplying
 *    by an invertible elementary matrix — so it cannot change the
 *    rank; the rank check still runs as a guard (and to keep the
 *    invariant auditable);
 *  - **row swap** exchanges two target rows — a permutation of the
 *    output bits, under which rank is invariant, so it carries no
 *    per-move check; the final verification still covers it.
 *
 * Every accepted state is therefore invertible by construction, and
 * `anneal`/`greedy` additionally verify the final matrix before
 * returning (`SearchResult::bim` would throw inside `AddressMapper`
 * otherwise). One searched matrix serves every member of the set —
 * the invariant is per-matrix, so the joint search inherits it
 * unchanged.
 *
 * ## Determinism
 *
 * All randomness flows through `XorShiftRng` generators seeded from
 * `SearchOptions::seed`; each restart derives its own seed from
 * (seed, restart index), owns all of its mutable state and writes its
 * result into a preallocated slot, so running restarts across a
 * `ThreadPool` is bit-identical to running them serially
 * (`SearchOptions::threads = 1`; asserted in
 * `tests/bim_search_test.cc` and, for joint sets, in
 * `tests/joint_search_test.cc`). The evaluation budget
 * (`maxEvaluations`) is split per chain and counted deterministically;
 * wall-clock is *reported* in `SearchStats` but never feeds back into
 * control, so timing noise cannot change any result.
 */

#ifndef VALLEY_SEARCH_BIM_SEARCH_HH
#define VALLEY_SEARCH_BIM_SEARCH_HH

#include <cstdint>
#include <vector>

#include "common/cancellation.hh"

#include "bim/bit_matrix.hh"
#include "mapping/address_layout.hh"
#include "search/objective.hh"
#include "search/trace_planes.hh"

namespace valley {
namespace search {

/**
 * Search behavior version. Folded into the harness result-cache key
 * for SBIM/GBIM cells and into the SBIM cache key: the searched
 * matrix depends on every default in `SearchOptions`/`JointObjective`
 * and on the move set, none of which appear in the (workload, scheme,
 * seed, scale) key. Bump this whenever a change alters which matrix a
 * given seed produces, or cached grid cells go stale silently.
 * s2: workload-set refactor — joint scoring, per-chain evaluation
 * budgets, escaped order-canonical cache keys.
 */
inline constexpr const char *kSearchVersion = "s2";

/** Search budget and space knobs. */
struct SearchOptions
{
    /**
     * Output rows the search may rewrite (all other rows stay
     * identity). Empty = the layout's channel/vault/bank positions
     * (`AddressLayout::randomizeTargets`).
     */
    std::vector<unsigned> targets;

    /**
     * Input bits the target rows may tap. 0 = the layout's DRAM page
     * address bits (`AddressLayout::pageMask`), i.e. the PAE input
     * restriction that keeps the remap power-efficient. Every target
     * bit must be a candidate, or no invertible matrix with identity
     * non-target rows exists (same precondition as
     * `bim::randomBroad`).
     */
    std::uint64_t candidateMask = 0;

    unsigned window = 12;        ///< TB window w (#SMs, Section III-A)
    EntropyMetric metric = EntropyMetric::BitProbability;

    /**
     * Joint-search member-cost combiner. The `searchSet` pipeline
     * copies it into the `JointObjective` it builds (and the SBIM
     * cache key records it); a directly constructed `BimSearch` uses
     * whatever combiner its `JointObjective` carries. Size-1 sets:
     * both combiners reduce to the member cost.
     */
    JointCombiner combiner = JointCombiner::Mean;

    std::uint64_t seed = 1;      ///< master seed; see class comment
    unsigned restarts = 4;       ///< independent annealing chains
    unsigned iterations = 1200;  ///< moves per chain
    double initialTemp = 0.08;   ///< Metropolis start temperature
    double finalTemp = 2e-5;     ///< geometric cooling endpoint
    unsigned minTaps = 1;        ///< minimum taps per target row

    /**
     * Per-member weights for the joint objective's Mean combiner,
     * matched to the workload set's canonical `members()` order.
     * Empty = uniform (bit-identical to the pre-weights behavior, so
     * `kSearchVersion` stays put). `searchSet` copies them into the
     * `JointObjective::memberWeights` it builds; the WorstCase
     * combiner ignores them (see objective.hh). Size must equal the
     * set size when non-empty. Folded into the SBIM cache key.
     */
    std::vector<double> memberWeights;

    /**
     * Hard cap on `rowEntropy` evaluations per search run — `anneal()`
     * and `greedy()` each enforce it independently; 0 = unlimited.
     * The budget is split evenly across restarts and each chain stops
     * at the first move boundary at or past its share (the
     * initial-state evaluation always runs, so a chain always returns
     * a scored state). Deterministic: the cap is counted, never
     * timed, so capped runs stay bit-identical at any thread count.
     */
    std::uint64_t maxEvaluations = 0;

    /**
     * Worker threads for the restart fan-out: 1 = serial, 0 = one per
     * hardware thread. Bit-identical at any thread count.
     */
    unsigned threads = 0;

    /**
     * Incremental output-plane caching (the PR 10 fast path): each
     * chain keeps, per (member, target slot), the XOR-combined output
     * plane and its per-TB one-counts, so a tap-toggle proposal XORs
     * in exactly one input plane and a row-XOR proposal XORs two
     * cached planes — O(one plane) instead of O(taps planes) per
     * evaluation. One-counts are exact integers, so the cached path
     * is bit-identical to the from-scratch `rowEntropy` oracle:
     * trajectories, results and `SearchStats::evaluations` are
     * unchanged with the cache on or off (asserted in
     * `tests/bim_search_test.cc`), which is why toggling this knob
     * does NOT bump `kSearchVersion`. Off = score every proposal via
     * the oracle (the slow reference leg for tests and benches).
     */
    bool planeCache = true;

    /**
     * Optional cooperative cancellation/deadline token (non-owning;
     * must outlive the search). A fired token makes every chain stop
     * at its next move boundary and the search *degrade, never
     * throw*: it returns the best incumbent found so far — always a
     * fully scored, invertible matrix, because the initial-state
     * evaluation runs unconditionally — with
     * `SearchStats::deadlineHit = true`. Wall-clock deadlines are
     * inherently nondeterministic, so deadline-truncated results are
     * never persisted to the SBIM cache (see searched_bim.cc);
     * `maxEvaluations` remains the deterministic budget for
     * bit-identical capped runs.
     */
    const CancelToken *cancel = nullptr;
};

/**
 * Counters describing one search run. The second block reports
 * per-phase wall-clock, summed across chains (so parallel runs report
 * aggregate chain-seconds next to `totalSeconds` wall time). Time is
 * informational only — no control decision reads it — which keeps the
 * search deterministic while making budget tuning observable.
 */
struct SearchStats
{
    std::uint64_t evaluations = 0;      ///< rowEntropy calls
    std::uint64_t accepted = 0;         ///< accepted moves
    std::uint64_t rejectedSingular = 0; ///< moves failing the rank check
    bool capped = false;   ///< a chain hit its maxEvaluations share
    /**
     * A chain was stopped by `SearchOptions::cancel` (deadline or
     * explicit cancellation) before exhausting its move budget. The
     * result is still a valid invertible incumbent, but it is
     * wall-clock-dependent: consumers must not cache or rely on it
     * being reproducible.
     */
    bool deadlineHit = false;

    double setupSeconds = 0.0;  ///< start-state draw + initial scoring
    double annealSeconds = 0.0; ///< cooling-phase move loop
    double polishSeconds = 0.0; ///< zero-temperature descent
    double totalSeconds = 0.0;  ///< wall clock of the whole call

    /**
     * `evaluations` split by the phase that spent them (they sum to
     * `evaluations`), so per-phase evals/sec can pair with the
     * per-phase seconds above instead of dividing a global count by
     * a single phase's wall clock.
     */
    std::uint64_t setupEvaluations = 0;
    std::uint64_t annealEvaluations = 0;
    std::uint64_t polishEvaluations = 0;

    /**
     * Plane-cache accounting (zero when `planeCache` is off): how
     * each evaluation's output plane was produced. `planeToggles` /
     * `planeXors` count O(one plane) incremental updates (per member
     * per proposal); `planeRebuilds` counts full `combineRow`
     * recombines — the setup scoring plus the polish-phase reseed,
     * where the chain jumps back to its best state and the cache must
     * be rebuilt. Rebuilds during polish re-derive already-counted
     * entropy values, so they do not add to `evaluations`.
     */
    std::uint64_t planeToggles = 0;
    std::uint64_t planeXors = 0;
    std::uint64_t planeRebuilds = 0;
};

/** Outcome of `BimSearch::anneal` or `BimSearch::greedy`. */
struct SearchResult
{
    BitMatrix bim;                    ///< best invertible matrix found
    double cost = 0.0;                ///< joint objective of `bim`
    double identityCost = 0.0;        ///< joint objective of identity
    /**
     * Per-target entropy of `bim`, averaged uniformly across the set
     * members. For a size-1 set this is the member's entropy
     * verbatim (bit-identical to the pre-set single-workload search).
     */
    std::vector<double> targetEntropy;
    /** Per-member per-target entropy of `bim`: [member][target]. */
    std::vector<std::vector<double>> memberTargetEntropy;
    /** Per-member flatness cost of `bim`, set member order. */
    std::vector<double> memberCosts;
    unsigned bestRestart = 0;         ///< chain that produced `bim`
    SearchStats stats;                ///< summed across chains

    SearchResult() : bim(1) {}

    /** Objective improvement over the identity mapping (>= 0). */
    double gain() const { return identityCost - cost; }
};

/**
 * Simulated-annealing BIM search over the trace planes of a workload
 * set (one `TracePlanes` per member, all the same bit width).
 *
 * Every `TracePlanes` must outlive the search; they are read
 * concurrently by parallel restarts and never mutated.
 */
class BimSearch
{
  public:
    /**
     * Joint search over a set.
     *
     * @param layout DRAM layout providing default targets/candidates
     * @param planes one bit-plane representation per set member
     *               (non-owning; members() order of the set)
     * @param objective joint entropy-flatness cost (see objective.hh)
     * @param opts   budget/space knobs; empty targets and zero mask
     *               default from `layout` as documented above
     */
    BimSearch(const AddressLayout &layout,
              std::vector<const TracePlanes *> planes,
              JointObjective objective, SearchOptions opts);

    /**
     * Single-workload search: the size-1 special case. Wraps
     * `objective` in a `JointObjective` whose Mean combiner over one
     * member reproduces the per-workload cost exactly.
     */
    BimSearch(const AddressLayout &layout, const TracePlanes &planes,
              FlatnessObjective objective, SearchOptions opts);

    /** Annealed search: best of `restarts` parallel chains. */
    SearchResult anneal() const;

    /**
     * Greedy baseline: one hill-climbing chain (temperature 0,
     * accepting only strict improvements) from the identity state,
     * with the same move set and iteration budget.
     */
    SearchResult greedy() const;

    /** Joint objective of the identity mapping on these planes. */
    double identityCost() const;

    /** Number of set members being searched jointly. */
    std::size_t numMembers() const { return planes_.size(); }

    /** Resolved target output bits (after layout defaulting). */
    const std::vector<unsigned> &targets() const { return targets_; }

    /** Resolved candidate tap mask (after layout defaulting). */
    std::uint64_t candidateMask() const { return mask_; }

  private:
    struct Chain;

    /** Run one chain from its deterministic per-restart seed. */
    SearchResult runChain(unsigned restart, bool greedy) const;

    /**
     * Per-chain evaluation budget (0 = unlimited): the full cap for
     * the greedy baseline's single chain, a 1/restarts share for
     * each annealing chain.
     */
    std::uint64_t chainBudget(bool greedy) const;

    unsigned nbits;
    std::vector<unsigned> targets_;
    std::vector<unsigned> candidateBits; ///< set bits of mask_
    std::uint64_t mask_ = 0;
    std::vector<const TracePlanes *> planes_;
    JointObjective objective;
    SearchOptions opts;
};

} // namespace search
} // namespace valley

#endif // VALLEY_SEARCH_BIM_SEARCH_HH
