#include "search/trace_planes.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "common/bitops.hh"
#include "common/thread_pool.hh"

namespace valley {
namespace search {

namespace {

/**
 * Extract the bit planes of one TB: buffer 64 addresses, transpose
 * them with `bits::transpose64`, and append lane `b` to plane `b`.
 * The tail block is zero-padded, so pad lanes carry no one-bits and
 * the popcount-derived one-counts stay exact at any stream length.
 */
void
extractTb(const Kernel &kernel, TbId tb, unsigned nbits,
          std::uint64_t &requests_out,
          std::uint32_t &words_out, std::vector<std::uint64_t> &planes)
{
    const TbTrace trace = kernel.trace(tb);
    const std::uint64_t requests = trace.requestCount();
    const std::uint32_t words =
        static_cast<std::uint32_t>((requests + 63) / 64);
    planes.assign(static_cast<std::size_t>(nbits) * words, 0);

    std::uint64_t block[64];
    unsigned fill = 0;
    std::uint32_t word = 0;
    const auto flush = [&] {
        std::fill(block + fill, block + 64, 0);
        bits::transpose64(block);
        // After the transpose, bit r of block[c] is bit c of address
        // r: block[c] is the 64-request lane of address bit c.
        for (unsigned b = 0; b < nbits; ++b)
            planes[static_cast<std::size_t>(b) * words + word] =
                block[b];
        ++word;
        fill = 0;
    };
    for (const WarpTrace &w : trace.warps)
        for (const MemInstr &instr : w.instrs)
            for (Addr a : instr.lines) {
                block[fill] = a;
                if (++fill == 64)
                    flush();
            }
    if (fill > 0)
        flush();
    assert(word == words);
    requests_out = requests;
    words_out = words;
}

/** TB-range task granularity, matching workloads/profiler.cc. */
constexpr unsigned kTbsPerTask = 256;

} // namespace

TracePlanes::TracePlanes(const Workload &workload,
                         const PlaneOptions &opts)
    : nbits(opts.numBits)
{
    if (nbits == 0 || nbits > 64)
        throw std::invalid_argument("TracePlanes: bad bit width");

    const auto &ks = workload.kernels();
    kernels.resize(ks.size());
    std::size_t tb_tasks = 0;
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
        kernels[ki].tbs.resize(ks[ki].numTbs());
        tb_tasks += (ks[ki].numTbs() + kTbsPerTask - 1) / kTbsPerTask;
    }

    const auto extractRange = [&](std::size_t ki, TbId lo, TbId hi) {
        for (TbId tb = lo; tb < hi; ++tb) {
            TbPlanes &slot = kernels[ki].tbs[tb];
            extractTb(ks[ki], tb, nbits, slot.requests, slot.words,
                      slot.bits);
        }
    };

    const unsigned threads = opts.threads == 0
                                 ? ThreadPool::defaultThreads()
                                 : opts.threads;
    if (threads <= 1 || tb_tasks <= 1) {
        for (std::size_t ki = 0; ki < ks.size(); ++ki)
            extractRange(ki, 0, ks[ki].numTbs());
    } else {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(threads, tb_tasks)));
        for (std::size_t ki = 0; ki < ks.size(); ++ki)
            for (TbId lo = 0; lo < ks[ki].numTbs(); lo += kTbsPerTask)
                pool.submit([&extractRange, &ks, ki, lo] {
                    extractRange(ki, lo,
                                 std::min<TbId>(lo + kTbsPerTask,
                                                ks[ki].numTbs()));
                });
        pool.run();
    }

    for (KernelPlanes &k : kernels) {
        for (const TbPlanes &tb : k.tbs)
            k.requests += tb.requests;
        requests_ += k.requests;
    }
}

double
TracePlanes::tbBvr(const TbPlanes &tb, std::uint64_t row_mask)
{
    if (tb.requests == 0)
        return 0.0;
    const std::uint32_t words = tb.words;
    const std::uint64_t *data = tb.bits.data();
    std::uint64_t ones = 0;
    // XOR the tapped input planes word-by-word; the popcount of the
    // combined lane is the output bit's one-count over 64 requests.
    for (std::uint32_t w = 0; w < words; ++w) {
        std::uint64_t x = 0;
        for (std::uint64_t m = row_mask; m != 0; m &= m - 1) {
            const unsigned b =
                static_cast<unsigned>(std::countr_zero(m));
            x ^= data[static_cast<std::size_t>(b) * words + w];
        }
        ones += static_cast<std::uint64_t>(std::popcount(x));
    }
    return static_cast<double>(ones) /
           static_cast<double>(tb.requests);
}

double
TracePlanes::rowEntropy(std::uint64_t row_mask, unsigned window,
                        EntropyMetric metric) const
{
    assert((row_mask & ~bits::mask(nbits)) == 0 &&
           "row taps must be tracked bits");
    // Mirror profileWorkload: per-kernel window entropy of the BVR
    // series, then EntropyProfile::combine's weighted average — same
    // operations in the same order, so the result is bit-identical to
    // the profiler's value for this output bit.
    std::uint64_t total = 0;
    for (const KernelPlanes &k : kernels)
        total += k.requests;
    if (total == 0)
        return 0.0;

    double combined = 0.0;
    std::vector<double> series;
    for (const KernelPlanes &k : kernels) {
        series.resize(k.tbs.size());
        for (std::size_t t = 0; t < k.tbs.size(); ++t)
            series[t] = tbBvr(k.tbs[t], row_mask);
        const double e = metric == EntropyMetric::BvrDistribution
                             ? windowEntropy(series, window)
                             : windowBitEntropy(series, window);
        const double w = static_cast<double>(k.requests) /
                         static_cast<double>(total);
        combined += w * e;
    }
    return combined;
}

EntropyProfile
TracePlanes::profileFor(const BitMatrix &m, unsigned window,
                        EntropyMetric metric) const
{
    if (m.size() != nbits)
        throw std::invalid_argument(
            "TracePlanes: matrix size != tracked bits");
    EntropyProfile out;
    out.weight = requests_;
    out.perBit.resize(nbits);
    for (unsigned r = 0; r < nbits; ++r)
        out.perBit[r] = rowEntropy(m.row(r), window, metric);
    return out;
}

} // namespace search
} // namespace valley
