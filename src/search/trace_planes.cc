#include "search/trace_planes.hh"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/metrics.hh"
#include "common/thread_pool.hh"

namespace valley {
namespace search {

namespace {

/** Extraction staging buffer for one TB (pre-arena). */
struct TbStage
{
    std::uint64_t requests = 0;
    std::uint32_t words = 0;
    std::vector<std::uint64_t> bits;
};

/**
 * Extract the bit planes of one TB: buffer 64 addresses, transpose
 * them with the selected kernel table, and append lane `b` to plane
 * `b`. The tail block is zero-padded, so pad lanes carry no one-bits
 * and the popcount-derived one-counts stay exact at any stream
 * length.
 */
void
extractTb(const Kernel &kernel, TbId tb, unsigned nbits,
          const bits::SimdOps &ops, TbStage &out)
{
    const TbTrace trace = kernel.trace(tb);
    const std::uint64_t requests = trace.requestCount();
    const std::uint32_t words =
        static_cast<std::uint32_t>((requests + 63) / 64);
    out.bits.assign(static_cast<std::size_t>(nbits) * words, 0);

    std::uint64_t block[64];
    unsigned fill = 0;
    std::uint32_t word = 0;
    const auto flush = [&] {
        std::fill(block + fill, block + 64, 0);
        ops.transpose64(block);
        // After the transpose, bit r of block[c] is bit c of address
        // r: block[c] is the 64-request lane of address bit c.
        for (unsigned b = 0; b < nbits; ++b)
            out.bits[static_cast<std::size_t>(b) * words + word] =
                block[b];
        ++word;
        fill = 0;
    };
    for (const WarpTrace &w : trace.warps)
        for (const MemInstr &instr : w.instrs)
            for (Addr a : instr.lines) {
                block[fill] = a;
                if (++fill == 64)
                    flush();
            }
    if (fill > 0)
        flush();
    assert(word == words);
    out.requests = requests;
    out.words = words;
}

/** TB-range task granularity, matching workloads/profiler.cc. */
constexpr unsigned kTbsPerTask = 256;

} // namespace

TracePlanes::TracePlanes(const Workload &workload,
                         const PlaneOptions &opts)
    : nbits(opts.numBits),
      ops(opts.forceScalar ? &bits::scalarSimdOps() : &bits::simdOps())
{
    if (nbits == 0 || nbits > 64)
        throw std::invalid_argument("TracePlanes: bad bit width");

    const auto &ks = workload.kernels();
    kernels.resize(ks.size());

    // Stage 1: generate + transpose every TB trace into per-TB
    // staging buffers. Traces are expensive to generate, so they are
    // produced exactly once; the arena pass below only copies words.
    std::vector<std::vector<TbStage>> staged(ks.size());
    std::size_t tb_tasks = 0;
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
        staged[ki].resize(ks[ki].numTbs());
        tb_tasks += (ks[ki].numTbs() + kTbsPerTask - 1) / kTbsPerTask;
    }

    const auto extractRange = [&](std::size_t ki, TbId lo, TbId hi) {
        for (TbId tb = lo; tb < hi; ++tb)
            extractTb(ks[ki], tb, nbits, *ops, staged[ki][tb]);
    };

    const unsigned threads = opts.threads == 0
                                 ? ThreadPool::defaultThreads()
                                 : opts.threads;
    if (threads <= 1 || tb_tasks <= 1) {
        for (std::size_t ki = 0; ki < ks.size(); ++ki)
            extractRange(ki, 0, ks[ki].numTbs());
    } else {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(threads, tb_tasks)));
        for (std::size_t ki = 0; ki < ks.size(); ++ki)
            for (TbId lo = 0; lo < ks[ki].numTbs(); lo += kTbsPerTask)
                pool.submit([&extractRange, &ks, ki, lo] {
                    extractRange(ki, lo,
                                 std::min<TbId>(lo + kTbsPerTask,
                                                ks[ki].numTbs()));
                });
        pool.run();
    }

    // Stage 2 (serial): pack each kernel's staged planes into one
    // contiguous plane-major arena — bit b's strip holds every TB's
    // lane words in TB-id order, so incremental moves stream one
    // strip sequentially. Staging buffers are released as they are
    // copied, so the transient overhead shrinks TB by TB.
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
        KernelPlanes &k = kernels[ki];
        k.tbBase = tb_count;
        k.rowBase = plane_words;
        k.tbs.resize(staged[ki].size());
        k.uniform = !k.tbs.empty();
        for (std::size_t t = 0; t < staged[ki].size(); ++t) {
            const TbStage &s = staged[ki][t];
            TbView &v = k.tbs[t];
            v.requests = s.requests;
            v.words = s.words;
            v.rowOff = plane_words;
            k.kwords += s.words;
            k.uniform = k.uniform && s.words == 1;
            plane_words += s.words;
            k.requests += s.requests;
        }
        k.arena.resize(static_cast<std::size_t>(nbits) * k.kwords);
        for (std::size_t t = 0; t < staged[ki].size(); ++t) {
            TbStage &s = staged[ki][t];
            const std::size_t lo = k.tbs[t].rowOff - k.rowBase;
            for (unsigned b = 0; b < nbits; ++b)
                std::memcpy(
                    k.arena.data() +
                        static_cast<std::size_t>(b) * k.kwords + lo,
                    s.bits.data() +
                        static_cast<std::size_t>(b) * s.words,
                    s.words * sizeof(std::uint64_t));
            std::vector<std::uint64_t>().swap(s.bits);
        }
        tb_count += k.tbs.size();
        requests_ += k.requests;
    }

    metrics::gauge("search.plane_bytes")
        .add(static_cast<std::int64_t>(planeBytes()));
}

TracePlanes::TracePlanes(TracePlanes &&other) noexcept
    : nbits(other.nbits), requests_(other.requests_),
      tb_count(other.tb_count), plane_words(other.plane_words),
      ops(other.ops), kernels(std::move(other.kernels))
{
    // The arena merely changed owner; the resident-bytes gauge is
    // unchanged, and the moved-from side must no longer subtract.
    other.kernels.clear();
    other.tb_count = 0;
    other.plane_words = 0;
    other.requests_ = 0;
}

TracePlanes &
TracePlanes::operator=(TracePlanes &&other) noexcept
{
    if (this != &other) {
        releaseGauge();
        nbits = other.nbits;
        requests_ = other.requests_;
        tb_count = other.tb_count;
        plane_words = other.plane_words;
        ops = other.ops;
        kernels = std::move(other.kernels);
        other.kernels.clear();
        other.tb_count = 0;
        other.plane_words = 0;
        other.requests_ = 0;
    }
    return *this;
}

TracePlanes::~TracePlanes() { releaseGauge(); }

void
TracePlanes::releaseGauge() noexcept
{
    const std::uint64_t bytes = planeBytes();
    if (bytes != 0)
        metrics::gauge("search.plane_bytes")
            .add(-static_cast<std::int64_t>(bytes));
}

std::uint64_t
TracePlanes::planeBytes() const
{
    std::uint64_t bytes = 0;
    for (const KernelPlanes &k : kernels)
        bytes += k.arena.size() * sizeof(std::uint64_t);
    return bytes;
}

namespace {

/**
 * Gather the strip segment pointers a row mask taps for one TB —
 * plane `b` of the TB starts at `arena + b * kwords + local_off`.
 * Returns the tap count; `srcs` must hold 64 slots.
 */
inline std::size_t
gatherTaps(const std::uint64_t *arena, std::size_t local_off,
           std::size_t kwords, std::uint64_t row_mask,
           const std::uint64_t **srcs)
{
    std::size_t nsrc = 0;
    for (std::uint64_t m = row_mask; m != 0; m &= m - 1) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(m));
        srcs[nsrc++] =
            arena + static_cast<std::size_t>(b) * kwords + local_off;
    }
    return nsrc;
}

/**
 * XOR-fold the tapped plane words of a one-word TB. The per-TB loops
 * below special-case `words == 1` through this instead of the
 * dispatched `SimdOps` kernels: with 64-request TBs (every synth
 * workload) a plane is a single word, and an indirect call per TB
 * costs more than the XOR+popcount it performs. Plain integer ops, so
 * the fast path is trivially bit-identical to the dispatched one.
 */
inline std::uint64_t
foldOneWord(const std::uint64_t *arena, std::size_t local_off,
            std::size_t kwords, std::uint64_t row_mask)
{
    std::uint64_t x = 0;
    for (std::uint64_t m = row_mask; m != 0; m &= m - 1)
        x ^= arena[static_cast<std::size_t>(
                       static_cast<unsigned>(std::countr_zero(m))) *
                       kwords +
                   local_off];
    return x;
}

} // namespace

void
TracePlanes::combineRow(std::uint64_t row_mask, std::uint64_t *plane,
                        std::uint64_t *ones) const
{
    assert((row_mask & ~bits::mask(nbits)) == 0 &&
           "row taps must be tracked bits");
    const std::uint64_t *srcs[64];
    for (const KernelPlanes &k : kernels) {
        const std::uint64_t *arena = k.arena.data();
        for (std::size_t t = 0; t < k.tbs.size(); ++t) {
            const TbView &v = k.tbs[t];
            const std::size_t lo = v.rowOff - k.rowBase;
            if (v.words == 1) {
                const std::uint64_t x =
                    foldOneWord(arena, lo, k.kwords, row_mask);
                plane[v.rowOff] = x;
                ones[k.tbBase + t] =
                    static_cast<std::uint64_t>(std::popcount(x));
                continue;
            }
            const std::size_t nsrc =
                gatherTaps(arena, lo, k.kwords, row_mask, srcs);
            ones[k.tbBase + t] = ops->xorPopcountN(
                srcs, nsrc, plane + v.rowOff, v.words);
        }
    }
}

void
TracePlanes::toggleRow(const std::uint64_t *base, unsigned bit,
                       std::uint64_t *dst, std::uint64_t *ones) const
{
    assert(bit < nbits && "toggled tap must be a tracked bit");
    for (const KernelPlanes &k : kernels) {
        const std::uint64_t *strip =
            k.arena.data() + static_cast<std::size_t>(bit) * k.kwords;
        if (k.uniform) {
            // One-word TBs: XOR the whole strip and drop the per-word
            // popcounts straight into the per-TB ones array.
            ops->xorPopcountEach(base + k.rowBase, strip,
                                 dst + k.rowBase, ones + k.tbBase,
                                 k.kwords);
            continue;
        }
        for (std::size_t t = 0; t < k.tbs.size(); ++t) {
            const TbView &v = k.tbs[t];
            const std::uint64_t *in = strip + (v.rowOff - k.rowBase);
            if (v.words == 1) {
                const std::uint64_t x = base[v.rowOff] ^ in[0];
                dst[v.rowOff] = x;
                ones[k.tbBase + t] =
                    static_cast<std::uint64_t>(std::popcount(x));
                continue;
            }
            ones[k.tbBase + t] = ops->xorPopcount2(
                base + v.rowOff, in, dst + v.rowOff, v.words);
        }
    }
}

void
TracePlanes::xorRows(const std::uint64_t *a, const std::uint64_t *b,
                     std::uint64_t *dst, std::uint64_t *ones) const
{
    for (const KernelPlanes &k : kernels) {
        if (k.uniform) {
            ops->xorPopcountEach(a + k.rowBase, b + k.rowBase,
                                 dst + k.rowBase, ones + k.tbBase,
                                 k.kwords);
            continue;
        }
        for (std::size_t t = 0; t < k.tbs.size(); ++t) {
            const TbView &v = k.tbs[t];
            if (v.words == 1) {
                const std::uint64_t x = a[v.rowOff] ^ b[v.rowOff];
                dst[v.rowOff] = x;
                ones[k.tbBase + t] =
                    static_cast<std::uint64_t>(std::popcount(x));
                continue;
            }
            ones[k.tbBase + t] = ops->xorPopcount2(
                a + v.rowOff, b + v.rowOff, dst + v.rowOff, v.words);
        }
    }
}

double
TracePlanes::entropyFromOnes(const std::uint64_t *ones,
                             unsigned window,
                             EntropyMetric metric) const
{
    // Mirror profileWorkload: per-kernel window entropy of the BVR
    // series, then EntropyProfile::combine's weighted average — same
    // operations in the same order, so the result is bit-identical to
    // the profiler's value for this output bit.
    const std::uint64_t total = requests_;
    if (total == 0)
        return 0.0;

    double combined = 0.0;
    // Thread-local scratch: this runs once per candidate evaluation,
    // where a heap allocation would rival the entropy math itself.
    static thread_local std::vector<double> series;
    for (const KernelPlanes &k : kernels) {
        series.resize(k.tbs.size());
        for (std::size_t t = 0; t < k.tbs.size(); ++t) {
            const TbView &v = k.tbs[t];
            series[t] = v.requests == 0
                            ? 0.0
                            : static_cast<double>(ones[k.tbBase + t]) /
                                  static_cast<double>(v.requests);
        }
        const double e = metric == EntropyMetric::BvrDistribution
                             ? windowEntropy(series, window)
                             : windowBitEntropy(series, window);
        const double w = static_cast<double>(k.requests) /
                         static_cast<double>(total);
        combined += w * e;
    }
    return combined;
}

void
TracePlanes::rowOnes(std::uint64_t row_mask, std::uint64_t *ones) const
{
    assert((row_mask & ~bits::mask(nbits)) == 0 &&
           "row taps must be tracked bits");
    const std::uint64_t *srcs[64];
    for (const KernelPlanes &k : kernels) {
        const std::uint64_t *arena = k.arena.data();
        for (std::size_t t = 0; t < k.tbs.size(); ++t) {
            const TbView &v = k.tbs[t];
            const std::size_t lo = v.rowOff - k.rowBase;
            if (v.words == 1) {
                ones[k.tbBase + t] =
                    static_cast<std::uint64_t>(std::popcount(
                        foldOneWord(arena, lo, k.kwords, row_mask)));
                continue;
            }
            const std::size_t nsrc =
                gatherTaps(arena, lo, k.kwords, row_mask, srcs);
            ones[k.tbBase + t] =
                ops->xorPopcountN(srcs, nsrc, nullptr, v.words);
        }
    }
}

double
TracePlanes::rowEntropy(std::uint64_t row_mask, unsigned window,
                        EntropyMetric metric) const
{
    // From-scratch oracle: per-TB one-counts of the combined output
    // plane (no plane materialized), then the shared entropy tail.
    std::vector<std::uint64_t> ones(tb_count);
    rowOnes(row_mask, ones.data());
    return entropyFromOnes(ones.data(), window, metric);
}

void
TracePlanes::rowEntropyBatch(std::span<const std::uint64_t> masks,
                             unsigned window, EntropyMetric metric,
                             double *out) const
{
    const std::size_t n = masks.size();
    if (n == 0)
        return;
    // One shared one-count scratch for the whole batch: each mask
    // sweeps the plane-major strips (sequential reads that stay hot
    // across masks) and scores immediately — no per-candidate
    // allocation, unlike a rowEntropy loop.
    std::vector<std::uint64_t> ones(tb_count);
    for (std::size_t mi = 0; mi < n; ++mi) {
        rowOnes(masks[mi], ones.data());
        out[mi] = entropyFromOnes(ones.data(), window, metric);
    }
}

std::vector<double>
TracePlanes::rowEntropyBatch(std::span<const std::uint64_t> masks,
                             unsigned window,
                             EntropyMetric metric) const
{
    std::vector<double> out(masks.size());
    rowEntropyBatch(masks, window, metric, out.data());
    return out;
}

EntropyProfile
TracePlanes::profileFor(const BitMatrix &m, unsigned window,
                        EntropyMetric metric) const
{
    if (m.size() != nbits)
        throw std::invalid_argument(
            "TracePlanes: matrix size != tracked bits");
    EntropyProfile out;
    out.weight = requests_;
    out.perBit.resize(nbits);
    std::vector<std::uint64_t> masks(nbits);
    for (unsigned r = 0; r < nbits; ++r)
        masks[r] = m.row(r);
    rowEntropyBatch(masks, window, metric, out.perBit.data());
    return out;
}

} // namespace search
} // namespace valley
