/**
 * @file
 * Front-end glue of the mapping service: one-call joint search over a
 * `workloads::WorkloadSet`, profile-cache integration, and the
 * `AddressMapper` wrapping used by the harness' SBIM/GBIM schemes and
 * `tools/valley_search`.
 *
 * The set is the first-class unit: `searchSet`/`setMapper` anneal one
 * invertible BIM against every member at once, and the historical
 * single-workload entry points (`searchWorkload`/`searchedMapper`)
 * are thin wrappers over a size-1 set — bit-identical to the joint
 * path by construction (asserted in `tests/joint_search_test.cc`).
 */

#ifndef VALLEY_SEARCH_SEARCHED_BIM_HH
#define VALLEY_SEARCH_SEARCHED_BIM_HH

#include <memory>

#include "mapping/address_mapper.hh"
#include "search/bim_search.hh"
#include "workloads/workload_set.hh"

namespace valley {
namespace search {

/**
 * Default entropy-flatness objective for the given target bits:
 * uniform weights over the bank bits, 2x weight on the channel (and
 * vault) bits — channel parallelism feeds both the NoC and the DRAM
 * buses (Figs. 13-14), so a searched BIM should fill those bits
 * first. The weights align index-for-index with `targets`.
 */
FlatnessObjective defaultObjective(const AddressLayout &layout,
                                   const std::vector<unsigned> &targets);

/** Overload defaulting to `layout.randomizeTargets()`. */
FlatnessObjective defaultObjective(const AddressLayout &layout);

/**
 * Default joint objective: `defaultObjective` per member, uniform
 * member weights, member costs folded by `combiner`.
 */
JointObjective defaultJointObjective(const AddressLayout &layout,
                                     const std::vector<unsigned> &targets,
                                     JointCombiner combiner);

/**
 * Profile-cache mapper id of a searched BIM: "SBIM-<seed>-<hash of
 * the matrix rows>". The hash makes the id unique per *matrix*, as
 * `profileCacheKey` requires — two searches with the same seed but
 * different budgets (or target sets, or workload sets) produce
 * different ids.
 */
std::string sbimMapperId(const BitMatrix &bim, std::uint64_t seed);

/**
 * Default search options for a layout: targets =
 * `randomizeTargets()`, candidates = `pageMask()` (the PAE input
 * restriction), window/seed/budget left at `SearchOptions` defaults.
 */
SearchOptions defaultOptions(const AddressLayout &layout);

/**
 * Mapper name of a searched set mapping: "SBIM" for a size-1 set
 * (the per-workload searched BIM of Figs. 10/12), "GBIM" for a real
 * set — the *global* searched BIM, the profile-driven counterpart of
 * the paper's one-size-fits-all RMP.
 */
std::string jointMapperName(const workloads::WorkloadSet &set);

/** Everything the CLI reports about one workload search. */
struct WorkloadSearchResult
{
    SearchResult annealed;          ///< best annealed matrix
    SearchResult greedyBaseline;    ///< hill-climbing baseline
    EntropyProfile identityProfile; ///< workload profile under BASE
    EntropyProfile searchedProfile; ///< profile under `annealed.bim`
};

/** Everything the CLI reports about one joint set search. */
struct SetSearchResult
{
    SearchResult annealed;          ///< best joint matrix
    SearchResult greedyBaseline;    ///< hill-climbing baseline
    /** Per-member profile under BASE, `set.members()` order. */
    std::vector<EntropyProfile> identityProfiles;
    /** Per-member profile under `annealed.bim`, same order. */
    std::vector<EntropyProfile> searchedProfiles;
};

/**
 * Run the full joint search pipeline over a workload set: profile
 * every member under the identity mapping through the on-disk
 * profile cache (`harness::profileWorkloadCached`; `scale` keys the
 * cache entries), build one `TracePlanes` per member, anneal a single
 * BIM against all of them (plus the greedy baseline), and store each
 * member's searched profile back into the profile cache under
 * `sbimMapperId(...)` so figure benches reuse them. Empty
 * `opts.targets` and a zero `opts.candidateMask` default from the
 * layout; the objective is
 * `defaultJointObjective(layout, opts.targets, opts.combiner)`.
 *
 * The annealed matrix is memoized in the on-disk SBIM cache under the
 * set's order-canonical key (`sbim_cache.hh`): a hit skips the
 * annealing restarts (the greedy baseline and profiles still run —
 * they are what the caller asked to see) and reports zero search
 * statistics; its member cost breakdown is reconstructed from the
 * searched profiles, so hit and miss report the same numbers.
 */
SetSearchResult searchSet(const workloads::WorkloadSet &set,
                          const AddressLayout &layout,
                          SearchOptions opts, double scale);

/**
 * Search a set and wrap the best matrix as an `AddressMapper` named
 * `name` (empty = `jointMapperName(set)`; the harness passes "GBIM"
 * explicitly so a degenerate size-1 GBIM grid cell still reports the
 * scheme that was requested). Deterministic in (set, layout, opts,
 * scale) — the name is a label, not part of the cache key. `scale`
 * must be the factor the member workloads are built with; it keys
 * the on-disk SBIM cache, which lets repeated grid runs skip both
 * the search *and* the trace-plane extraction.
 */
std::unique_ptr<AddressMapper> setMapper(
    const AddressLayout &layout, const workloads::WorkloadSet &set,
    const SearchOptions &opts, double scale, std::string name = "");

/**
 * Single-workload search: `searchSet` over the size-1 set
 * `{workload.info().abbrev}`. The workload must be identified by its
 * abbreviation (or canonical synth spec) together with `scale` —
 * true for anything built by `workloads::make` — because the set
 * pipeline rebuilds members from their names.
 */
WorkloadSearchResult searchWorkload(const Workload &workload,
                                    const AddressLayout &layout,
                                    SearchOptions opts, double scale);

/**
 * Search a workload and wrap the best matrix as an `AddressMapper`
 * named "SBIM" — `setMapper` over the size-1 set. Deterministic in
 * (workload, layout, opts, scale). `scale` must be the factor the
 * workload was built with (deliberately no default: a mismatched
 * scale would mislabel the cache key).
 */
std::unique_ptr<AddressMapper> searchedMapper(
    const AddressLayout &layout, const Workload &workload,
    const SearchOptions &opts, double scale);

} // namespace search
} // namespace valley

#endif // VALLEY_SEARCH_SEARCHED_BIM_HH
