/**
 * @file
 * Front-end glue of the mapping service: one-call search over a
 * workload, profile-cache integration, and the `AddressMapper`
 * wrapping used by the harness' SBIM scheme and `tools/valley_search`.
 */

#ifndef VALLEY_SEARCH_SEARCHED_BIM_HH
#define VALLEY_SEARCH_SEARCHED_BIM_HH

#include <memory>

#include "mapping/address_mapper.hh"
#include "search/bim_search.hh"

namespace valley {
namespace search {

/**
 * Default entropy-flatness objective for the given target bits:
 * uniform weights over the bank bits, 2x weight on the channel (and
 * vault) bits — channel parallelism feeds both the NoC and the DRAM
 * buses (Figs. 13-14), so a searched BIM should fill those bits
 * first. The weights align index-for-index with `targets`.
 */
FlatnessObjective defaultObjective(const AddressLayout &layout,
                                   const std::vector<unsigned> &targets);

/** Overload defaulting to `layout.randomizeTargets()`. */
FlatnessObjective defaultObjective(const AddressLayout &layout);

/**
 * Profile-cache mapper id of a searched BIM: "SBIM-<seed>-<hash of
 * the matrix rows>". The hash makes the id unique per *matrix*, as
 * `profileCacheKey` requires — two searches with the same seed but
 * different budgets (or target sets) produce different ids.
 */
std::string sbimMapperId(const BitMatrix &bim, std::uint64_t seed);

/**
 * Default search options for a layout: targets =
 * `randomizeTargets()`, candidates = `pageMask()` (the PAE input
 * restriction), window/seed/budget left at `SearchOptions` defaults.
 */
SearchOptions defaultOptions(const AddressLayout &layout);

/** Everything the CLI reports about one workload search. */
struct WorkloadSearchResult
{
    SearchResult annealed;          ///< best annealed matrix
    SearchResult greedyBaseline;    ///< hill-climbing baseline
    EntropyProfile identityProfile; ///< workload profile under BASE
    EntropyProfile searchedProfile; ///< profile under `annealed.bim`
};

/**
 * Run the full search pipeline over one workload: profile it under
 * the identity mapping through the on-disk profile cache
 * (`harness::profileWorkloadCached`; `scale` keys the cache entry),
 * build `TracePlanes`, anneal plus the greedy baseline, and store the
 * searched profile back into the profile cache under
 * `sbimMapperId(...)` so figure benches reuse it. Empty `opts.targets` and
 * a zero `opts.candidateMask` default from the layout; the objective
 * is `defaultObjective(layout)`.
 *
 * The annealed matrix is memoized in the on-disk SBIM cache
 * (`sbim_cache.hh`): a hit skips the annealing restarts (the greedy
 * baseline and profiles still run — they are what the caller asked
 * to see) and reports zero search statistics.
 */
WorkloadSearchResult searchWorkload(const Workload &workload,
                                    const AddressLayout &layout,
                                    SearchOptions opts, double scale);

/**
 * Search a workload and wrap the best matrix as an `AddressMapper`
 * named "SBIM" — the profile-driven counterpart of
 * `mapping::makeScheme`. Deterministic in (workload, layout, opts,
 * scale). `scale` must be the factor the workload was built with
 * (deliberately no default: a mismatched scale would mislabel the
 * cache key); it keys the on-disk SBIM cache, which lets repeated
 * grid runs skip both the search *and* the trace-plane extraction.
 */
std::unique_ptr<AddressMapper> searchedMapper(
    const AddressLayout &layout, const Workload &workload,
    const SearchOptions &opts, double scale);

} // namespace search
} // namespace valley

#endif // VALLEY_SEARCH_SEARCHED_BIM_HH
