/**
 * @file
 * Entropy-flatness objective for the BIM search.
 *
 * The paper's design goal (Sections III-IV) is to fill the entropy
 * valley: the channel/bank output bits must carry high window entropy
 * so requests spread across buses and banks. The search minimizes a
 * *cost*, so the objective is phrased as an entropy deficit over the
 * target output bits, plus a small hardware regularizer that prefers
 * BIMs with fewer XOR gates when the entropy terms tie (Fig. 7's
 * tree-of-XOR-gates cost model).
 *
 * `JointObjective` lifts the per-workload objective to a *workload
 * set*: one BIM scored against every member, member costs folded by a
 * configurable combiner (mean or worst-case). The single-workload
 * search is the size-1 special case of the joint one.
 */

#ifndef VALLEY_SEARCH_OBJECTIVE_HH
#define VALLEY_SEARCH_OBJECTIVE_HH

#include <span>
#include <vector>

namespace valley {
namespace search {

/**
 * Weighted entropy-deficit cost of one candidate BIM.
 *
 * cost = meanWeight * (1 - weighted mean target entropy)
 *      + minWeight  * (1 - minimum target entropy)
 *      + gateWeight * xorGates
 *
 * Lower is better; a perfect mapping (entropy 1.0 on every target
 * bit) costs only its gate term. The min term punishes leaving any
 * single valley bit behind — a flat mean can hide one dead channel
 * bit, which is exactly the failure mode Fig. 10 shows for RMP.
 */
struct FlatnessObjective
{
    /**
     * Per-target weights for the mean term, aligned with the search's
     * target bit list; empty = uniform. `defaultObjective` weights
     * channel bits above bank bits because channel parallelism gates
     * both the NoC and the DRAM bus (Figs. 13-14).
     */
    std::vector<double> targetWeights;

    double meanWeight = 1.0;   ///< weight of the mean entropy deficit
    double minWeight = 0.5;    ///< weight of the worst-bit deficit
    double gateWeight = 1e-4;  ///< per-XOR-gate hardware regularizer

    /**
     * Cost of a candidate whose target output bits measure
     * `target_entropy` (same order as the search's target list) with
     * `xor_gates` total 2-input XOR gates.
     */
    double cost(std::span<const double> target_entropy,
                unsigned xor_gates) const;
};

/**
 * How a joint search folds per-workload flatness costs into the one
 * scalar it minimizes.
 */
enum class JointCombiner
{
    /**
     * (Weighted) arithmetic mean of the member costs — the deployment
     * average. A size-1 set reduces exactly to the member cost, so the
     * single-workload search is the special case, not a separate code
     * path.
     */
    Mean,

    /**
     * Maximum member cost — optimize the worst-served workload. The
     * set-level analogue of `FlatnessObjective::minWeight`: a joint
     * BIM with a great average can still starve one member, which is
     * the failure mode the paper shows for one-size-fits-all RMP.
     */
    WorstCase,
};

/** Stable name of a combiner ("mean" / "worst"). */
const char *combinerName(JointCombiner c);

/**
 * Joint ("global") entropy-flatness objective over a workload set.
 *
 * Each member is scored with the shared per-workload
 * `FlatnessObjective` — same weights, same gate regularizer — and the
 * member costs are folded by `combiner`. Because the gate term is
 * identical across members, it passes through both combiners
 * unchanged, so the hardware regularization is set-size independent.
 */
struct JointObjective
{
    FlatnessObjective flatness;  ///< per-member scoring
    JointCombiner combiner = JointCombiner::Mean;

    /**
     * Per-member weights for the Mean combiner, aligned with the
     * search's member order; empty = uniform. Ignored by WorstCase.
     */
    std::vector<double> memberWeights;

    /** Fold per-member costs; empty input costs 0. */
    double combine(std::span<const double> member_costs) const;

    /**
     * Cost of one member's target entropies (the per-member term fed
     * into `combine`); delegates to `flatness`.
     */
    double
    memberCost(std::span<const double> target_entropy,
               unsigned xor_gates) const
    {
        return flatness.cost(target_entropy, xor_gates);
    }
};

} // namespace search
} // namespace valley

#endif // VALLEY_SEARCH_OBJECTIVE_HH
