#include "common/trace_span.hh"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "harness/atomic_io.hh"

namespace valley {
namespace trace {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

struct Event
{
    std::string name;
    const char *cat;
    std::uint64_t beginNs;
    std::uint64_t durNs; ///< 0 and phase 'i' for instant events
    char phase;
};

/**
 * One ring per thread. The owner thread appends under the buffer
 * mutex, but the mutex is uncontended except during flush — no
 * other thread ever touches the ring outside flush/reset.
 */
struct ThreadBuffer
{
    static constexpr std::size_t kCapacity = 1u << 16;

    std::mutex mutex;
    std::vector<Event> ring;
    std::size_t head = 0; ///< next write position once full
    std::uint64_t dropped = 0;
    std::uint32_t tid;
};

struct Global
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::string path;
    Clock::time_point epoch = Clock::now();
    bool atexitRegistered = false;
    bool flushed = false; ///< some flush() already wrote the file
};

Global &
global()
{
    static Global g;
    return g;
}

ThreadBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buf = [] {
        auto b = std::make_shared<ThreadBuffer>();
        Global &g = global();
        std::lock_guard<std::mutex> lock(g.mutex);
        b->tid = static_cast<std::uint32_t>(g.buffers.size());
        g.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - global().epoch)
            .count());
}

void
append(Event &&e)
{
    ThreadBuffer &b = threadBuffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    if (b.ring.size() < ThreadBuffer::kCapacity) {
        b.ring.push_back(std::move(e));
    } else {
        b.ring[b.head] = std::move(e);
        b.head = (b.head + 1) % ThreadBuffer::kCapacity;
        ++b.dropped;
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            continue;
        out += c;
    }
    return out;
}

void
atexitFlush()
{
    // Don't clobber an explicitly flushed file with the (drained,
    // empty) buffers; only write if there is something new to say or
    // nothing was ever written.
    Global &g = global();
    bool flushed;
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        flushed = g.flushed;
    }
    if (flushed && pendingEventCountForTesting() == 0)
        return;
    flush();
}

} // namespace

void
enable(const std::string &path)
{
    Global &g = global();
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        g.path = path;
        if (!g.atexitRegistered) {
            std::atexit(atexitFlush);
            g.atexitRegistered = true;
        }
    }
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

void
disable()
{
    detail::g_enabled.store(false, std::memory_order_relaxed);
}

void
initFromEnv()
{
    if (const char *p = std::getenv("VALLEY_TRACE"); p && *p)
        enable(p);
}

namespace {
/// VALLEY_TRACE takes effect without any tool cooperation: spans
/// only fire inside main(), after this initializer ran.
const bool g_env_initialized = [] {
    initFromEnv();
    return true;
}();
} // namespace

bool
flush()
{
    Global &g = global();
    std::string path;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        if (g.path.empty())
            return false;
        path = g.path;
        buffers = g.buffers;
    }
    std::ostringstream out;
    out << "{\"traceEvents\": [";
    const long long pid = static_cast<long long>(::getpid());
    bool first = true;
    std::uint64_t dropped = 0;
    for (const auto &bp : buffers) {
        std::lock_guard<std::mutex> lock(bp->mutex);
        // Ring order: oldest first (head..end, then begin..head).
        const std::size_t n = bp->ring.size();
        for (std::size_t k = 0; k < n; ++k) {
            const Event &e = bp->ring[(bp->head + k) % n];
            out << (first ? "\n" : ",\n");
            first = false;
            out << "{\"name\": \"" << jsonEscape(e.name)
                << "\", \"cat\": \"" << e.cat << "\", \"ph\": \""
                << e.phase << "\", \"ts\": " << e.beginNs / 1000
                << "." << (e.beginNs % 1000) / 100;
            if (e.phase == 'X')
                out << ", \"dur\": " << e.durNs / 1000 << "."
                    << (e.durNs % 1000) / 100;
            else
                out << ", \"s\": \"t\"";
            out << ", \"pid\": " << pid << ", \"tid\": " << bp->tid
                << "}";
        }
        dropped += bp->dropped;
        bp->ring.clear();
        bp->head = 0;
        bp->dropped = 0;
    }
    out << (first ? "]" : "\n]");
    out << ", \"droppedEvents\": " << dropped << "}\n";
    const bool ok = harness::atomicWriteFile(path, out.str());
    if (ok) {
        std::lock_guard<std::mutex> lock(g.mutex);
        g.flushed = true;
    }
    return ok;
}

std::size_t
pendingEventCountForTesting()
{
    Global &g = global();
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        buffers = g.buffers;
    }
    std::size_t n = 0;
    for (const auto &bp : buffers) {
        std::lock_guard<std::mutex> lock(bp->mutex);
        n += bp->ring.size();
    }
    return n;
}

void
resetForTesting()
{
    disable();
    Global &g = global();
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        buffers = g.buffers;
        g.path.clear();
        g.epoch = Clock::now();
        g.flushed = false;
    }
    for (const auto &bp : buffers) {
        std::lock_guard<std::mutex> lock(bp->mutex);
        bp->ring.clear();
        bp->head = 0;
        bp->dropped = 0;
    }
}

void
instant(const char *name, const char *cat)
{
    if (!enabled())
        return;
    append(Event{name, cat, nowNs(), 0, 'i'});
}

namespace detail {

std::uint64_t
spanBegin()
{
    return nowNs();
}

void
spanEnd(std::string &&name, const char *cat, std::uint64_t beginNs)
{
    const std::uint64_t end = nowNs();
    append(Event{std::move(name), cat, beginNs,
                 end > beginNs ? end - beginNs : 0, 'X'});
}

} // namespace detail

} // namespace trace
} // namespace valley
