#include "common/fault_inject.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace valley {
namespace fault {

namespace detail {

std::atomic<bool> armed{false};

namespace {

enum class Mode
{
    Throw,
    Kill,
};

struct Spec
{
    std::string site;
    std::uint64_t n = 0; // 1-based trigger hit
    Mode mode = Mode::Throw;
};

std::mutex spec_mutex;
Spec spec;
std::atomic<std::uint64_t> hits{0};

Spec
parseSpec(const std::string &s)
{
    Spec out;
    const auto first = s.find(':');
    if (first == std::string::npos || first == 0)
        throw std::invalid_argument(
            "fault spec must be <site>:<n>[:throw|:kill]: " + s);
    out.site = s.substr(0, first);
    const auto second = s.find(':', first + 1);
    const std::string count =
        s.substr(first + 1, second == std::string::npos
                                ? std::string::npos
                                : second - first - 1);
    char *end = nullptr;
    out.n = std::strtoull(count.c_str(), &end, 10);
    if (count.empty() || (end && *end) || out.n == 0)
        throw std::invalid_argument(
            "fault spec needs a positive hit count: " + s);
    if (second != std::string::npos) {
        const std::string mode = s.substr(second + 1);
        if (mode == "throw")
            out.mode = Mode::Throw;
        else if (mode == "kill")
            out.mode = Mode::Kill;
        else
            throw std::invalid_argument(
                "fault mode must be throw or kill: " + s);
    }
    return out;
}

/** Arm from the environment once, at static-init time. */
const bool env_armed = [] {
    const char *env = std::getenv("VALLEY_FAULT_INJECT");
    if (!env || !*env)
        return false;
    try {
        spec = parseSpec(env);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "[valley] ignoring VALLEY_FAULT_INJECT: "
                             "%s\n",
                     e.what());
        return false;
    }
    armed.store(true, std::memory_order_relaxed);
    return true;
}();

} // namespace

void
hit(const char *site)
{
    Spec s;
    {
        std::lock_guard<std::mutex> lock(spec_mutex);
        s = spec;
    }
    if (s.site != site)
        return;
    const std::uint64_t count =
        hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (count != s.n)
        return;
    if (s.mode == Mode::Kill) {
        std::fprintf(stderr,
                     "[valley] fault injected: killing at %s hit "
                     "%llu\n",
                     site, static_cast<unsigned long long>(count));
        std::fflush(nullptr);
        std::_Exit(42);
    }
    throw Injected(std::string("fault injected at ") + site +
                   " hit " + std::to_string(count));
}

} // namespace detail

void
configure(const std::string &spec_string)
{
    using namespace detail;
    if (spec_string.empty()) {
        armed.store(false, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(spec_mutex);
        spec = Spec{};
        hits.store(0, std::memory_order_relaxed);
        return;
    }
    const Spec parsed = parseSpec(spec_string); // may throw
    {
        std::lock_guard<std::mutex> lock(spec_mutex);
        spec = parsed;
        hits.store(0, std::memory_order_relaxed);
    }
    armed.store(true, std::memory_order_relaxed);
}

std::uint64_t
hitCount()
{
    return detail::hits.load(std::memory_order_relaxed);
}

} // namespace fault
} // namespace valley
