#include "common/fault_inject.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace valley {
namespace fault {

namespace detail {

std::atomic<bool> armed{false};

namespace {

enum class Mode
{
    Throw,
    Kill,
};

struct Spec
{
    std::string site;
    std::uint64_t n = 0;     // 1-based trigger hit
    std::uint64_t every = 0; // 0 = fire once; K = re-fire each K hits
    Mode mode = Mode::Throw;
};

std::mutex spec_mutex;
Spec spec;
std::atomic<std::uint64_t> hits{0};

Spec
parseSpec(const std::string &s)
{
    // Tokenize on ':' — grammar <site>:<n>[:throw|:kill][:every=K],
    // the two optional suffixes accepted in either order.
    std::vector<std::string> tok;
    std::size_t start = 0;
    for (;;) {
        const auto sep = s.find(':', start);
        tok.push_back(s.substr(start, sep == std::string::npos
                                          ? std::string::npos
                                          : sep - start));
        if (sep == std::string::npos)
            break;
        start = sep + 1;
    }
    if (tok.size() < 2 || tok[0].empty())
        throw std::invalid_argument(
            "fault spec must be <site>:<n>[:throw|:kill][:every=K]: " +
            s);
    Spec out;
    out.site = tok[0];
    char *end = nullptr;
    out.n = std::strtoull(tok[1].c_str(), &end, 10);
    if (tok[1].empty() || (end && *end) || out.n == 0)
        throw std::invalid_argument(
            "fault spec needs a positive hit count: " + s);
    for (std::size_t i = 2; i < tok.size(); ++i) {
        const std::string &t = tok[i];
        if (t == "throw") {
            out.mode = Mode::Throw;
        } else if (t == "kill") {
            out.mode = Mode::Kill;
        } else if (t.rfind("every=", 0) == 0) {
            const std::string k = t.substr(6);
            end = nullptr;
            out.every = std::strtoull(k.c_str(), &end, 10);
            if (k.empty() || (end && *end) || out.every == 0)
                throw std::invalid_argument(
                    "fault every= needs a positive period: " + s);
        } else {
            throw std::invalid_argument(
                "fault spec option must be throw, kill, or "
                "every=K: " +
                s);
        }
    }
    return out;
}

/** Arm from the environment once, at static-init time. */
const bool env_armed = [] {
    const char *env = std::getenv("VALLEY_FAULT_INJECT");
    if (!env || !*env)
        return false;
    try {
        spec = parseSpec(env);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "[valley] ignoring VALLEY_FAULT_INJECT: "
                             "%s\n",
                     e.what());
        return false;
    }
    armed.store(true, std::memory_order_relaxed);
    return true;
}();

} // namespace

void
hit(const char *site)
{
    Spec s;
    {
        std::lock_guard<std::mutex> lock(spec_mutex);
        s = spec;
    }
    if (s.site != site)
        return;
    const std::uint64_t count =
        hits.fetch_add(1, std::memory_order_relaxed) + 1;
    // Single-shot fires at exactly hit n; :every=K keeps re-firing
    // every K hits from there (soak mode — exercises the retry and
    // poison paths repeatedly within one run).
    const bool fire =
        count == s.n ||
        (s.every != 0 && count > s.n && (count - s.n) % s.every == 0);
    if (!fire)
        return;
    if (s.mode == Mode::Kill) {
        std::fprintf(stderr,
                     "[valley] fault injected: killing at %s hit "
                     "%llu\n",
                     site, static_cast<unsigned long long>(count));
        std::fflush(nullptr);
        std::_Exit(42);
    }
    throw Injected(std::string("fault injected at ") + site +
                   " hit " + std::to_string(count));
}

} // namespace detail

void
configure(const std::string &spec_string)
{
    using namespace detail;
    if (spec_string.empty()) {
        armed.store(false, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(spec_mutex);
        spec = Spec{};
        hits.store(0, std::memory_order_relaxed);
        return;
    }
    const Spec parsed = parseSpec(spec_string); // may throw
    {
        std::lock_guard<std::mutex> lock(spec_mutex);
        spec = parsed;
        hits.store(0, std::memory_order_relaxed);
    }
    armed.store(true, std::memory_order_relaxed);
}

void
reset()
{
    detail::hits.store(0, std::memory_order_relaxed);
}

std::uint64_t
hitCount()
{
    return detail::hits.load(std::memory_order_relaxed);
}

} // namespace fault
} // namespace valley
