/**
 * @file
 * RAII scoped tracing in Chrome trace-event format.
 *
 * A `Span` records one complete ("ph":"X") event — name, category,
 * begin timestamp, duration, thread id — into a per-thread ring
 * buffer; `flush` serializes every buffer into the standard
 * `{"traceEvents": [...]}` JSON that Perfetto and chrome://tracing
 * load directly, written crash-consistently via the atomic_io layer.
 *
 * ## Zero-cost-when-disabled contract
 *
 * The only code on the disabled path is the inlined `enabled()`
 * check: one relaxed atomic load and a branch, in both the Span
 * constructor and destructor. No clock reads, no allocation, no
 * buffer touch. Tracing never feeds back into computation, so
 * results are bit-identical with tracing on or off (asserted in
 * tests/trace_span_test.cc).
 *
 * ## Buffering
 *
 * Events land in fixed-capacity per-thread ring buffers (owner
 * thread writes without contention; a mutex per buffer synchronizes
 * only with flush). A full ring overwrites its oldest events and
 * counts the drops — tracing degrades by forgetting history, never
 * by blocking the traced code.
 *
 * ## Enabling
 *
 * `VALLEY_TRACE=<path>` enables tracing for any binary (flushed at
 * exit), or tools pass `--trace <path>` which calls `enable()`
 * explicitly. Spans constructed while tracing is disabled stay
 * inert for their whole lifetime, so toggling mid-scope cannot
 * produce unbalanced events.
 */

#ifndef VALLEY_COMMON_TRACE_SPAN_HH
#define VALLEY_COMMON_TRACE_SPAN_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace valley {
namespace trace {

namespace detail {
/// Read via the inlined enabled() fast path; written by
/// enable()/disable() only.
extern std::atomic<bool> g_enabled;
} // namespace detail

/** Inlined fast path: one relaxed load + branch when disabled. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * Start recording; events flush to `path` (registered once with
 * atexit, and explicitly via flush()). Re-enabling with a new path
 * redirects subsequent flushes.
 */
void enable(const std::string &path);

/** Stop recording. Buffered events survive until flush/reset. */
void disable();

/** Honor VALLEY_TRACE if set (called from static init; idempotent
 *  per process unless resetForTesting intervened). */
void initFromEnv();

/**
 * Serialize all buffered events to the enabled path as Chrome
 * trace-event JSON (atomic replace). Buffers are drained. Returns
 * false when tracing was never enabled or the write failed.
 */
bool flush();

/** Events currently buffered across all threads (testing). */
std::size_t pendingEventCountForTesting();

/** Drop buffers, disable, forget the path (testing). */
void resetForTesting();

/**
 * Record an instant event ("ph":"i") — a point marker, e.g. a
 * supervisor restart. No-op when disabled.
 */
void instant(const char *name, const char *cat);

namespace detail {
/// Out-of-line slow path: stamp the begin time. Returns the
/// begin timestamp (ns since trace epoch).
std::uint64_t spanBegin();
/// Out-of-line slow path: append one complete event.
void spanEnd(std::string &&name, const char *cat,
             std::uint64_t beginNs);
} // namespace detail

/**
 * RAII complete-event span. The name is only materialized when
 * tracing is enabled at construction; pass dynamic names as
 *
 *     trace::Span s(trace::enabled() ? makeName() : std::string(),
 *                   "grid");
 *
 * so the disabled path never allocates.
 */
class Span
{
  public:
    explicit Span(const char *name, const char *cat = "valley")
    {
        if (enabled()) {
            name_ = name;
            cat_ = cat;
            begin_ = detail::spanBegin();
            armed_ = true;
        }
    }

    Span(std::string name, const char *cat = "valley")
    {
        if (enabled()) {
            name_ = std::move(name);
            cat_ = cat;
            begin_ = detail::spanBegin();
            armed_ = true;
        }
    }

    ~Span() { end(); }

    /**
     * Close the span before scope exit (phase spans inside one
     * function). Idempotent; the destructor becomes a no-op.
     */
    void
    end()
    {
        if (armed_) {
            armed_ = false;
            detail::spanEnd(std::move(name_), cat_, begin_);
        }
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    std::string name_;
    const char *cat_ = nullptr;
    std::uint64_t begin_ = 0;
    bool armed_ = false;
};

} // namespace trace
} // namespace valley

#endif // VALLEY_COMMON_TRACE_SPAN_HH
