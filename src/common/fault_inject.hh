/**
 * @file
 * Deterministic fault injection for resilience tests.
 *
 * `VALLEY_FAULT_INJECT=<site>:<n>[:throw|:kill][:every=K]` arms
 * exactly one fault: the Nth (1-based) hit of the named site either
 * throws `fault::Injected` (default — catchable, used by in-process
 * tests and `bench/resume_smoke`) or kills the process with
 * `_Exit(42)` after flushing stdio (used by the CI interrupted-grid
 * step, where the crash must look like a real SIGKILL-grade loss of
 * the process, not a graceful unwind). With `:every=K` the fault
 * *recurs*: after the first firing at hit N it fires again every K
 * further hits — the soak mode that drives the retry/poison paths
 * repeatedly within a single run (`bench/supervise_smoke`).
 *
 * Sites are plain string literals at the instrumented points:
 *
 *  - `grid_cell`   — start of one grid cell simulation *attempt*
 *                    (`harness::runGrid`); each retry of a failing
 *                    cell counts as a new hit, and resumed cells do
 *                    not count, so a rerun with the same spec passes
 *                    the site that killed the first run.
 *  - `cache_write` — one persisted record (`harness::atomicAppend`):
 *                    every result/profile/SBIM-cache store and every
 *                    journal record.
 *  - `search_step` — one simulated-annealing move of a `BimSearch`
 *                    chain (anneal and polish phases; with parallel
 *                    restarts the hit order across chains is
 *                    scheduling-dependent — arm with threads=1 for
 *                    full determinism).
 *  - `journal_append` — one grid-journal record about to be persisted
 *                    (`GridJournal::record`/`recordPoisoned`), before
 *                    the underlying `cache_write` site; kills here
 *                    exercise the crash-consistency invariants.
 *
 * Off is the default and costs one relaxed atomic load per site hit —
 * no env lookup, no branch on the spec. Determinism: the trigger
 * counts site hits, never wall-clock, so the same spec kills the same
 * run at the same point every time (per-thread interleaving may vary
 * *which* concurrent cell observes the throw, but tests that need
 * full determinism run serial).
 */

#ifndef VALLEY_COMMON_FAULT_INJECT_HH
#define VALLEY_COMMON_FAULT_INJECT_HH

#include <atomic>
#include <stdexcept>
#include <string>

namespace valley {
namespace fault {

/** The exception thrown in `throw` mode; catch it to resume. */
struct Injected : std::runtime_error
{
    explicit Injected(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

namespace detail {
extern std::atomic<bool> armed;
void hit(const char *site);
} // namespace detail

/**
 * Fault-injection point. No-op (one relaxed load) unless a spec is
 * armed via the environment or `configure`.
 */
inline void
maybeInject(const char *site)
{
    if (detail::armed.load(std::memory_order_relaxed))
        detail::hit(site);
}

/**
 * (Re)arm programmatically, overriding the environment: same spec
 * grammar as VALLEY_FAULT_INJECT; the empty string disarms. Resets
 * the hit counter — tests use this to arm, trigger, then disarm
 * without touching the process environment. Throws
 * `std::invalid_argument` on a malformed spec.
 */
void configure(const std::string &spec);

/**
 * Zero the hit counter without touching the armed spec: the in-process
 * re-arm for tests that drive the same fault through several phases
 * (e.g. poison a cell, then verify the resumed grid would poison it
 * again) deterministically, without re-parsing a spec string.
 */
void reset();

/** Hits recorded so far against the armed site (0 when disarmed). */
std::uint64_t hitCount();

} // namespace fault
} // namespace valley

#endif // VALLEY_COMMON_FAULT_INJECT_HH
