/**
 * @file
 * Plain-text table formatting for bench harness output.
 *
 * Every figure/table bench prints its rows through TextTable so the
 * regenerated data lines up with the paper's presentation and can be
 * diffed or piped into plotting scripts as CSV.
 */

#ifndef VALLEY_COMMON_TABLE_HH
#define VALLEY_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace valley {

/**
 * A simple column-aligned text table with an optional CSV rendering.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row; it may have fewer cells than the header. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator rule. */
    void addRule();

    /** Render with padded columns (two-space gutters). */
    std::string toString() const;

    /** Render as CSV (no separator rules). */
    std::string toCsv() const;

    /** Format a double with `prec` digits after the point. */
    static std::string num(double v, int prec = 2);

    /** Format an integer with thousands separators. */
    static std::string big(std::uint64_t v);

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool rule = false;
    };

    std::vector<std::string> header;
    std::vector<Row> rows;
};

} // namespace valley

#endif // VALLEY_COMMON_TABLE_HH
