/**
 * @file
 * Flat FIFO ring buffer for the simulator's hot queues.
 *
 * `std::deque` allocates its map-of-chunks per queue and touches the
 * heap as elements churn; the GpuSystem cycle loop pushes and pops
 * LSU/slice/writeback/reply entries every cycle, so those queues want
 * contiguous storage that is allocated once and reused. This is a
 * growable power-of-two circular buffer with deque-compatible
 * front/push_back/pop_front naming for the operations the simulator
 * uses.
 */

#ifndef VALLEY_COMMON_RING_BUFFER_HH
#define VALLEY_COMMON_RING_BUFFER_HH

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace valley {

template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    /** Preallocate space for at least `capacity` elements. */
    explicit RingBuffer(std::size_t capacity) { reserve(capacity); }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return store.size(); }

    /** Grow the backing store to hold at least `capacity` elements. */
    void
    reserve(std::size_t capacity)
    {
        if (capacity > store.size())
            regrow(roundUpPow2(capacity));
    }

    T &
    front()
    {
        assert(count > 0);
        return store[head];
    }

    const T &
    front() const
    {
        assert(count > 0);
        return store[head];
    }

    void
    push_back(const T &v)
    {
        emplace_back(v);
    }

    void
    push_back(T &&v)
    {
        emplace_back(std::move(v));
    }

    template <typename... Args>
    void
    emplace_back(Args &&...args)
    {
        // Construct before any regrow so an argument aliasing an
        // element of this buffer (e.g. push_back(front())) stays
        // valid, as it would with std::deque.
        T v(std::forward<Args>(args)...);
        if (count == store.size())
            regrow(store.empty() ? kInitialCapacity : store.size() * 2);
        store[(head + count) & (store.size() - 1)] = std::move(v);
        ++count;
    }

    void
    pop_front()
    {
        assert(count > 0);
        head = (head + 1) & (store.size() - 1);
        --count;
    }

    /** Drop all elements; keeps the backing storage. */
    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    static constexpr std::size_t kInitialCapacity = 16;

    static std::size_t
    roundUpPow2(std::size_t v)
    {
        std::size_t p = kInitialCapacity;
        while (p < v)
            p *= 2;
        return p;
    }

    void
    regrow(std::size_t capacity)
    {
        std::vector<T> next(capacity);
        for (std::size_t i = 0; i < count; ++i)
            next[i] = std::move(store[(head + i) & (store.size() - 1)]);
        store = std::move(next);
        head = 0;
    }

    std::vector<T> store;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace valley

#endif // VALLEY_COMMON_RING_BUFFER_HH
