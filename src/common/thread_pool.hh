/**
 * @file
 * Minimal fixed-size thread pool for embarrassingly parallel
 * experiment grids.
 *
 * Each (workload, scheme) simulation is self-contained — one
 * GpuSystem, one mapper, deterministic RNG seeding — so the harness
 * only needs fork/join task execution with exceptions propagated to
 * the caller. Tasks write their results into caller-owned slots, so
 * result placement is deterministic regardless of scheduling order.
 */

#ifndef VALLEY_COMMON_THREAD_POOL_HH
#define VALLEY_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace valley {

class ThreadPool
{
  public:
    /** Spawn `threads` workers (0 = one per hardware thread). */
    explicit ThreadPool(unsigned threads = 0)
    {
        if (threads == 0)
            threads = defaultThreads();
        workers.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        wake.notify_all();
        for (std::thread &t : workers)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /** Queue one task; run() executes everything queued so far. */
    void
    submit(std::function<void()> task)
    {
        std::lock_guard<std::mutex> lock(mutex);
        queue.push_back(std::move(task));
    }

    /**
     * Execute all queued tasks and block until every one finished.
     * The first exception thrown by any task is rethrown here (the
     * remaining tasks still run to completion).
     */
    void
    run()
    {
        std::unique_lock<std::mutex> lock(mutex);
        pending = queue.size();
        if (pending == 0)
            return;
        wake.notify_all();
        done.wait(lock, [this] { return pending == 0 && queue.empty(); });
        if (firstError) {
            std::exception_ptr e = firstError;
            firstError = nullptr;
            std::rethrow_exception(e);
        }
    }

    /** Hardware concurrency with a sane fallback. */
    static unsigned
    defaultThreads()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : hw;
    }

  private:
    void
    workerLoop()
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            wake.wait(lock, [this] {
                return stopping || (!queue.empty() && pending > 0);
            });
            if (stopping)
                return;
            std::function<void()> task = std::move(queue.front());
            queue.erase(queue.begin());
            lock.unlock();
            std::exception_ptr err;
            try {
                task();
            } catch (...) {
                err = std::current_exception();
            }
            lock.lock();
            if (err && !firstError)
                firstError = err;
            if (--pending == 0 && queue.empty())
                done.notify_all();
        }
    }

    std::vector<std::thread> workers;
    std::vector<std::function<void()>> queue;
    std::mutex mutex;
    std::condition_variable wake;
    std::condition_variable done;
    std::size_t pending = 0;
    bool stopping = false;
    std::exception_ptr firstError;
};

} // namespace valley

#endif // VALLEY_COMMON_THREAD_POOL_HH
