/**
 * @file
 * Work-stealing thread pool for the experiment grids.
 *
 * Each (workload, scheme) simulation is self-contained — one
 * GpuSystem, one mapper, deterministic RNG seeding — so the harness
 * only needs fork/join task execution with exceptions propagated to
 * the caller. Tasks write their results into caller-owned slots, so
 * result placement is deterministic regardless of scheduling order.
 *
 * ## Why stealing
 *
 * Grid cells have wildly skewed costs: a GBIM cell that warms the
 * joint search, or a huge-scale synth member, can run orders of
 * magnitude longer than a cached BASE cell. A static per-thread
 * partition would leave every other worker idle behind the one
 * stuck with the expensive cells. Here `submit` stages tasks and
 * `run` deals them round-robin onto per-worker deques (task i of a
 * round lands on deque i % threads — a documented, deterministic
 * placement the tests rely on); each worker drains its own deque
 * from the back (LIFO — cache-warm), and when empty steals the
 * *oldest* task from
 * another worker's front (FIFO — the classic stealing discipline
 * that moves the biggest remaining chunks). `stealCount()` exposes
 * how often that rebalancing fired; the grid's progress output
 * reports it.
 *
 * Stealing only changes *which thread* runs a task, never what the
 * task computes or where it writes, so the serial/parallel
 * bit-identity contract of the grid is untouched (asserted in
 * tests/thread_pool_test.cc and tests/experiment_test.cc).
 */

#ifndef VALLEY_COMMON_THREAD_POOL_HH
#define VALLEY_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.hh"
#include "common/metrics.hh"

namespace valley {

class ThreadPool
{
  public:
    /** Spawn `threads` workers (0 = one per hardware thread). */
    explicit ThreadPool(unsigned threads = 0)
    {
        if (threads == 0)
            threads = defaultThreads();
        deques.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            deques.push_back(std::make_unique<WorkerDeque>());
        workers.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers.emplace_back([this, i] { workerLoop(i); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        wake.notify_all();
        for (std::thread &t : workers)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /**
     * Queue one task; run() executes everything queued so far.
     * Placement is deterministic: the i-th task submitted since the
     * last run() lands on worker deque i % threadCount().
     *
     * Tasks are staged caller-side and only published into the
     * worker deques inside run(): a worker that is still scanning
     * after finishing the previous round's last task must never see
     * next-round tasks before run() has initialized the round
     * counters (the claim ticket in claimTask() closes the residual
     * window during run()'s own dealing).
     */
    void
    submit(std::function<void()> task)
    {
        std::lock_guard<std::mutex> lock(mutex);
        staged.push_back(std::move(task));
    }

    /**
     * Execute all queued tasks and block until every one finished.
     * The first exception thrown by any task is rethrown here (the
     * remaining tasks still run to completion).
     *
     * When `cancel` is non-null and fires mid-round, workers stop
     * *starting* tasks: each remaining task is claimed and retired
     * without executing (already-running tasks finish normally, so
     * caller-owned result slots are never torn). Callers passing a
     * token must therefore tolerate unexecuted tasks — the grid
     * marks them deadline-missed, and BimSearch does not use
     * pool-level skip at all (its chains self-terminate and always
     * score a valid incumbent). `cancel` must outlive the call.
     */
    void
    run(const CancelToken *cancel = nullptr)
    {
        std::unique_lock<std::mutex> lock(mutex);
        if (staged.empty())
            return;
        const std::size_t count = staged.size();
        const std::size_t n = deques.size();
        // Deal the staged round onto the deques (under each deque's
        // lock — a stale scanner may be probing them, but without a
        // ticket it cannot claim). Only after every task is in place
        // does the `unclaimed` store below open the ticket window,
        // so a ticket holder is guaranteed to find a task.
        for (std::size_t i = 0; i < count; ++i) {
            WorkerDeque &d = *deques[i % n];
            std::lock_guard<std::mutex> dlock(d.mutex);
            d.tasks.push_back(std::move(staged[i]));
        }
        staged.clear();
        // Process-wide mirror of the per-pool tally: every pool's
        // rounds aggregate into one registry counter for snapshots.
        static metrics::Counter &submitted =
            metrics::counter("thread_pool.tasks");
        submitted.add(count);
        // Published by the release store of `unclaimed` below; read
        // by workers only after their acquire CAS on a ticket, so no
        // worker of THIS round can observe the previous round's token.
        roundCancel.store(cancel, std::memory_order_relaxed);
        pending.store(count, std::memory_order_relaxed);
        unclaimed.store(count, std::memory_order_release);
        wake.notify_all();
        done.wait(lock, [this] {
            return pending.load(std::memory_order_acquire) == 0;
        });
        roundCancel.store(nullptr, std::memory_order_relaxed);
        if (firstError) {
            std::exception_ptr e = firstError;
            firstError = nullptr;
            std::rethrow_exception(e);
        }
    }

    /**
     * Tasks executed by a worker other than the one they were dealt
     * to, cumulative over the pool's lifetime.
     */
    std::uint64_t
    stealCount() const
    {
        return steals.load(std::memory_order_relaxed);
    }

    /** Hardware concurrency with a sane fallback. */
    static unsigned
    defaultThreads()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : hw;
    }

  private:
    struct WorkerDeque
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    /**
     * Claim one task for worker `self`: own deque's back first
     * (LIFO), then the front of every other deque in scan order
     * (FIFO steal).
     *
     * Claiming is gated on a *ticket*: CAS-decrement `unclaimed`
     * only while it is positive, BEFORE touching any deque. A worker
     * still scanning after the previous round drained therefore
     * cannot claim tasks of a round whose counters run() has not yet
     * published — the cross-round race that used to underflow
     * `unclaimed`/`pending` and hang the pool. Because run() deals
     * every task before it stores `unclaimed` (release, paired with
     * the acquire CAS here), a ticket holder always finds a task:
     * tasks never move between deques, so at any instant at least
     * `tickets outstanding` tasks sit in the deques. The ticket
     * refund on a failed scan is defensive only.
     */
    bool
    claimTask(unsigned self, std::function<void()> &out)
    {
        std::size_t avail = unclaimed.load(std::memory_order_acquire);
        do {
            if (avail == 0)
                return false;
        } while (!unclaimed.compare_exchange_weak(
            avail, avail - 1, std::memory_order_acquire,
            std::memory_order_acquire));
        const std::size_t n = deques.size();
        {
            WorkerDeque &own = *deques[self];
            std::lock_guard<std::mutex> lock(own.mutex);
            if (!own.tasks.empty()) {
                out = std::move(own.tasks.back());
                own.tasks.pop_back();
                return true;
            }
        }
        for (std::size_t i = 1; i < n; ++i) {
            WorkerDeque &victim = *deques[(self + i) % n];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                out = std::move(victim.tasks.front());
                victim.tasks.pop_front();
                steals.fetch_add(1, std::memory_order_relaxed);
                // Per-pool count (stealCount()) and process-wide
                // registry counter bump at the same site: one event,
                // two views, no second source of truth.
                static metrics::Counter &stolen =
                    metrics::counter("thread_pool.steals");
                stolen.inc();
                return true;
            }
        }
        unclaimed.fetch_add(1, std::memory_order_release);
        return false;
    }

    void
    workerLoop(unsigned self)
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            wake.wait(lock, [this] {
                return stopping ||
                       unclaimed.load(std::memory_order_acquire) > 0;
            });
            if (stopping)
                return;
            lock.unlock();
            std::function<void()> task;
            while (claimTask(self, task)) {
                const CancelToken *cancel =
                    roundCancel.load(std::memory_order_relaxed);
                std::exception_ptr err;
                try {
                    // A fired token drains the round without running
                    // the remaining tasks (they still retire through
                    // `pending` below, so run() wakes normally).
                    if (cancel == nullptr || !cancel->cancelled())
                        task();
                } catch (...) {
                    err = std::current_exception();
                }
                task = nullptr;
                if (err) {
                    std::lock_guard<std::mutex> elock(mutex);
                    if (!firstError)
                        firstError = err;
                }
                if (pending.fetch_sub(1, std::memory_order_acq_rel) ==
                    1) {
                    // Last task of the round: wake run() under the
                    // mutex so the notification cannot be missed.
                    std::lock_guard<std::mutex> dlock(mutex);
                    done.notify_all();
                }
            }
            lock.lock();
            // Nothing claimable: either the round is drained (sleep
            // until the next one) or a race claimed the last task
            // between our check and scan (the wait predicate re-reads
            // `unclaimed`, so we re-scan or sleep correctly).
        }
    }

    std::vector<std::thread> workers;
    std::vector<std::unique_ptr<WorkerDeque>> deques;
    /// Tasks queued since the last run(), not yet visible to
    /// workers; run() deals them onto the deques.
    std::vector<std::function<void()>> staged;
    std::atomic<std::size_t> pending{0};   ///< not yet finished
    std::atomic<std::size_t> unclaimed{0}; ///< not yet claimed
    /// Current round's cancellation token (null = not cancellable).
    std::atomic<const CancelToken *> roundCancel{nullptr};
    std::atomic<std::uint64_t> steals{0};
    std::mutex mutex;
    std::condition_variable wake;
    std::condition_variable done;
    bool stopping = false;
    std::exception_ptr firstError;
};

} // namespace valley

#endif // VALLEY_COMMON_THREAD_POOL_HH
