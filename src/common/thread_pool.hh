/**
 * @file
 * Work-stealing thread pool for the experiment grids.
 *
 * Each (workload, scheme) simulation is self-contained — one
 * GpuSystem, one mapper, deterministic RNG seeding — so the harness
 * only needs fork/join task execution with exceptions propagated to
 * the caller. Tasks write their results into caller-owned slots, so
 * result placement is deterministic regardless of scheduling order.
 *
 * ## Why stealing
 *
 * Grid cells have wildly skewed costs: a GBIM cell that warms the
 * joint search, or a huge-scale synth member, can run orders of
 * magnitude longer than a cached BASE cell. A static per-thread
 * partition would leave every other worker idle behind the one
 * stuck with the expensive cells. Here `submit` deals tasks
 * round-robin onto per-worker deques (task i of a round lands on
 * deque i % threads — a documented, deterministic placement the
 * tests rely on); each worker drains its own deque from the back
 * (LIFO — cache-warm), and when empty steals the *oldest* task from
 * another worker's front (FIFO — the classic stealing discipline
 * that moves the biggest remaining chunks). `stealCount()` exposes
 * how often that rebalancing fired; the grid's progress output
 * reports it.
 *
 * Stealing only changes *which thread* runs a task, never what the
 * task computes or where it writes, so the serial/parallel
 * bit-identity contract of the grid is untouched (asserted in
 * tests/thread_pool_test.cc and tests/experiment_test.cc).
 */

#ifndef VALLEY_COMMON_THREAD_POOL_HH
#define VALLEY_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace valley {

class ThreadPool
{
  public:
    /** Spawn `threads` workers (0 = one per hardware thread). */
    explicit ThreadPool(unsigned threads = 0)
    {
        if (threads == 0)
            threads = defaultThreads();
        deques.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            deques.push_back(std::make_unique<WorkerDeque>());
        workers.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers.emplace_back([this, i] { workerLoop(i); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        wake.notify_all();
        for (std::thread &t : workers)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /**
     * Queue one task; run() executes everything queued so far.
     * Placement is deterministic: the i-th task submitted since the
     * last run() lands on worker deque i % threadCount().
     */
    void
    submit(std::function<void()> task)
    {
        std::size_t slot;
        {
            std::lock_guard<std::mutex> lock(mutex);
            slot = nextDeque;
            nextDeque = (nextDeque + 1) % deques.size();
            ++submitted;
        }
        WorkerDeque &d = *deques[slot];
        std::lock_guard<std::mutex> lock(d.mutex);
        d.tasks.push_back(std::move(task));
    }

    /**
     * Execute all queued tasks and block until every one finished.
     * The first exception thrown by any task is rethrown here (the
     * remaining tasks still run to completion).
     */
    void
    run()
    {
        std::unique_lock<std::mutex> lock(mutex);
        if (submitted == 0)
            return;
        pending.store(submitted, std::memory_order_relaxed);
        unclaimed.store(submitted, std::memory_order_release);
        submitted = 0;
        nextDeque = 0;
        wake.notify_all();
        done.wait(lock, [this] {
            return pending.load(std::memory_order_acquire) == 0;
        });
        if (firstError) {
            std::exception_ptr e = firstError;
            firstError = nullptr;
            std::rethrow_exception(e);
        }
    }

    /**
     * Tasks executed by a worker other than the one they were dealt
     * to, cumulative over the pool's lifetime.
     */
    std::uint64_t
    stealCount() const
    {
        return steals.load(std::memory_order_relaxed);
    }

    /** Hardware concurrency with a sane fallback. */
    static unsigned
    defaultThreads()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : hw;
    }

  private:
    struct WorkerDeque
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    /**
     * Claim one task for worker `self`: own deque's back first
     * (LIFO), then the front of every other deque in scan order
     * (FIFO steal). Decrements `unclaimed` on success.
     */
    bool
    claimTask(unsigned self, std::function<void()> &out)
    {
        const std::size_t n = deques.size();
        {
            WorkerDeque &own = *deques[self];
            std::lock_guard<std::mutex> lock(own.mutex);
            if (!own.tasks.empty()) {
                out = std::move(own.tasks.back());
                own.tasks.pop_back();
                unclaimed.fetch_sub(1, std::memory_order_relaxed);
                return true;
            }
        }
        for (std::size_t i = 1; i < n; ++i) {
            WorkerDeque &victim = *deques[(self + i) % n];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                out = std::move(victim.tasks.front());
                victim.tasks.pop_front();
                unclaimed.fetch_sub(1, std::memory_order_relaxed);
                steals.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
        }
        return false;
    }

    void
    workerLoop(unsigned self)
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            wake.wait(lock, [this] {
                return stopping ||
                       unclaimed.load(std::memory_order_acquire) > 0;
            });
            if (stopping)
                return;
            lock.unlock();
            std::function<void()> task;
            while (claimTask(self, task)) {
                std::exception_ptr err;
                try {
                    task();
                } catch (...) {
                    err = std::current_exception();
                }
                task = nullptr;
                if (err) {
                    std::lock_guard<std::mutex> elock(mutex);
                    if (!firstError)
                        firstError = err;
                }
                if (pending.fetch_sub(1, std::memory_order_acq_rel) ==
                    1) {
                    // Last task of the round: wake run() under the
                    // mutex so the notification cannot be missed.
                    std::lock_guard<std::mutex> dlock(mutex);
                    done.notify_all();
                }
            }
            lock.lock();
            // Nothing claimable: either the round is drained (sleep
            // until the next one) or a race claimed the last task
            // between our check and scan (the wait predicate re-reads
            // `unclaimed`, so we re-scan or sleep correctly).
        }
    }

    std::vector<std::thread> workers;
    std::vector<std::unique_ptr<WorkerDeque>> deques;
    std::size_t nextDeque = 0;  ///< round-robin submit cursor
    std::size_t submitted = 0;  ///< tasks queued since last run()
    std::atomic<std::size_t> pending{0};   ///< not yet finished
    std::atomic<std::size_t> unclaimed{0}; ///< not yet claimed
    std::atomic<std::uint64_t> steals{0};
    std::mutex mutex;
    std::condition_variable wake;
    std::condition_variable done;
    bool stopping = false;
    std::exception_ptr firstError;
};

} // namespace valley

#endif // VALLEY_COMMON_THREAD_POOL_HH
