/**
 * @file
 * Fundamental scalar types shared by all valley libraries.
 */

#ifndef VALLEY_COMMON_TYPES_HH
#define VALLEY_COMMON_TYPES_HH

#include <cstdint>

namespace valley {

/** Physical memory address. The paper uses a 30-bit space (1 GB). */
using Addr = std::uint64_t;

/** Simulation time in SM core cycles (1.4 GHz domain). */
using Cycle = std::uint64_t;

/** Thread block identifier within a kernel (issue order). */
using TbId = std::uint32_t;

/** Number of address bits in the modeled physical address space. */
constexpr unsigned kPhysAddrBits = 30;

/** DRAM block (intra-page offset) bits; bits [5:0] of the address. */
constexpr unsigned kBlockBits = 6;

} // namespace valley

#endif // VALLEY_COMMON_TYPES_HH
