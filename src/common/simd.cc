/**
 * @file
 * Runtime-dispatched SIMD kernels behind `bits::simdOps()`.
 *
 * Three tables — scalar, AVX2, AVX-512 — all computing bit-identical
 * integer results for the four word-level kernels the profiler and
 * the BIM search hot paths reduce to (see bitops.hh). The widest
 * level the CPU supports is probed once via `__builtin_cpu_supports`
 * (which also verifies OS XSAVE state, so a kernel that masks AVX-512
 * off degrades cleanly) and cached in a thread-safe static;
 * `VALLEY_NO_SIMD=1` pins the process to the scalar table at first
 * resolution.
 *
 * The vector implementations are compiled with per-function `target`
 * attributes so the translation unit itself needs no -mavx2/-mavx512
 * flags and the rest of the build keeps the default target ISA — the
 * same pattern as the -mpopcnt island around sliced_bvr.cc, but
 * resolved at run time instead of build time.
 *
 * Level notes:
 *  - AVX2 transpose: the six delta-swap stages of the scalar
 *    transpose, four of them on vector pairs (row strides 32/16/8/4
 *    span whole __m256i registers) and the last two (strides 2/1)
 *    in-register via permute4x64 + 32-bit blends. The whole 64-word
 *    matrix lives in the 16 YMM registers for all six stages.
 *  - AVX2 popcount: Mula's nibble-LUT (shuffle_epi8) with sad_epu8
 *    accumulation — exact integer counts, no float paths.
 *  - AVX-512 transpose: same recursion on 8 ZMM registers; strides
 *    32/16/8 are vector pairs, strides 4/2/1 in-register via
 *    permutexvar + lane-masked blends.
 *  - AVX-512 popcount: VPOPCNTDQ (`_mm512_popcnt_epi64`), gated on
 *    its own cpuid bit next to F/BW/VL.
 */

#include "common/bitops.hh"

#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define VALLEY_X86 1
#include <immintrin.h>
#endif

namespace valley {
namespace bits {

namespace {

// ---- scalar kernels --------------------------------------------------------

std::uint64_t
popcountWordsScalar(const std::uint64_t *p, std::size_t n)
{
    std::uint64_t ones = 0;
    for (std::size_t i = 0; i < n; ++i)
        ones += static_cast<std::uint64_t>(std::popcount(p[i]));
    return ones;
}

std::uint64_t
xorPopcount2Scalar(const std::uint64_t *a, const std::uint64_t *b,
                   std::uint64_t *dst, std::size_t n)
{
    std::uint64_t ones = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t x = a[i] ^ b[i];
        dst[i] = x;
        ones += static_cast<std::uint64_t>(std::popcount(x));
    }
    return ones;
}

std::uint64_t
xorPopcountNScalar(const std::uint64_t *const *srcs, std::size_t nsrc,
                   std::uint64_t *dst, std::size_t n)
{
    std::uint64_t ones = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t x = 0;
        for (std::size_t s = 0; s < nsrc; ++s)
            x ^= srcs[s][i];
        if (dst != nullptr)
            dst[i] = x;
        ones += static_cast<std::uint64_t>(std::popcount(x));
    }
    return ones;
}

void
xorPopcountEachScalar(const std::uint64_t *a, const std::uint64_t *b,
                      std::uint64_t *dst, std::uint64_t *counts,
                      std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t x = a[i] ^ b[i];
        dst[i] = x;
        counts[i] = static_cast<std::uint64_t>(std::popcount(x));
    }
}

constexpr SimdOps kScalarOps = {
    SimdLevel::Scalar, "scalar",    transpose64Scalar,
    popcountWordsScalar, xorPopcount2Scalar, xorPopcountNScalar,
    xorPopcountEachScalar,
};

#ifdef VALLEY_X86

// ---- AVX2 kernels ----------------------------------------------------------

/*
 * One delta-swap pass on a vector pair: the lock-step form of
 * bits::transposeStage for four row pairs at once. J is the bit shift
 * (== the row stride covered by the pairing of A and B).
 */
#define VALLEY_DELTA256(A, B, J, M)                                    \
    do {                                                               \
        const __m256i t_ = _mm256_and_si256(                           \
            _mm256_xor_si256(_mm256_srli_epi64((A), (J)), (B)), (M));  \
        (A) = _mm256_xor_si256((A), _mm256_slli_epi64(t_, (J)));       \
        (B) = _mm256_xor_si256((B), t_);                               \
    } while (0)

__attribute__((target("avx2"))) void
transpose64Avx2(std::uint64_t rows[64])
{
    __m256i v[16];
    for (int i = 0; i < 16; ++i)
        v[i] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(rows + 4 * i));

    const __m256i m32 = _mm256_set1_epi64x(0x00000000FFFFFFFFll);
    const __m256i m16 = _mm256_set1_epi64x(0x0000FFFF0000FFFFll);
    const __m256i m8 = _mm256_set1_epi64x(0x00FF00FF00FF00FFll);
    const __m256i m4 = _mm256_set1_epi64x(0x0F0F0F0F0F0F0F0Fll);
    const __m256i m2 = _mm256_set1_epi64x(0x3333333333333333ll);
    const __m256i m1 = _mm256_set1_epi64x(0x5555555555555555ll);

    // Stride 32: rows k and k+32 are vectors i and i+8.
    for (int i = 0; i < 8; ++i)
        VALLEY_DELTA256(v[i], v[i + 8], 32, m32);
    // Stride 16: within each half, vectors i and i+4.
    for (int g = 0; g < 16; g += 8)
        for (int i = 0; i < 4; ++i)
            VALLEY_DELTA256(v[g + i], v[g + i + 4], 16, m16);
    // Stride 8: within each quarter, vectors i and i+2.
    for (int g = 0; g < 16; g += 4)
        for (int i = 0; i < 2; ++i)
            VALLEY_DELTA256(v[g + i], v[g + i + 2], 8, m8);
    // Stride 4: adjacent vector pairs.
    for (int g = 0; g < 16; g += 2)
        VALLEY_DELTA256(v[g], v[g + 1], 4, m4);

    // Strides 2 and 1 pair lanes *within* one vector. For each
    // vector [r0 r1 r2 r3], compute the delta term against the
    // partner permutation; the term of pair (lo, hi) comes out in the
    // lo lane of one orientation and the hi lane of the other, so a
    // 32-bit blend assembles a full-term vector [t.. for every lane]
    // and one more blend applies `t << J` to lo lanes, `t` to hi.
    for (int i = 0; i < 16; ++i) {
        // Stride 2: pairs (r0,r2), (r1,r3); hi lanes are 2,3.
        __m256i p =
            _mm256_permute4x64_epi64(v[i], _MM_SHUFFLE(1, 0, 3, 2));
        __m256i tlo = _mm256_and_si256(
            _mm256_xor_si256(_mm256_srli_epi64(v[i], 2), p), m2);
        __m256i thi = _mm256_and_si256(
            _mm256_xor_si256(_mm256_srli_epi64(p, 2), v[i]), m2);
        __m256i t = _mm256_blend_epi32(tlo, thi, 0xF0);
        v[i] = _mm256_xor_si256(
            v[i],
            _mm256_blend_epi32(_mm256_slli_epi64(t, 2), t, 0xF0));

        // Stride 1: pairs (r0,r1), (r2,r3); hi lanes are 1,3.
        p = _mm256_permute4x64_epi64(v[i], _MM_SHUFFLE(2, 3, 0, 1));
        tlo = _mm256_and_si256(
            _mm256_xor_si256(_mm256_srli_epi64(v[i], 1), p), m1);
        thi = _mm256_and_si256(
            _mm256_xor_si256(_mm256_srli_epi64(p, 1), v[i]), m1);
        t = _mm256_blend_epi32(tlo, thi, 0xCC);
        v[i] = _mm256_xor_si256(
            v[i],
            _mm256_blend_epi32(_mm256_slli_epi64(t, 1), t, 0xCC));
    }

    for (int i = 0; i < 16; ++i)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(rows + 4 * i),
                            v[i]);
}

/*
 * Mula's byte-LUT popcount of one 256-bit vector, accumulated as four
 * 64-bit lane sums via sad_epu8 — exact at any accumulation length.
 */
#define VALLEY_POPCNT256(ACC, X)                                       \
    do {                                                               \
        const __m256i lo_ = _mm256_and_si256((X), nib_);               \
        const __m256i hi_ = _mm256_and_si256(                          \
            _mm256_srli_epi16((X), 4), nib_);                          \
        const __m256i cnt_ = _mm256_add_epi8(                          \
            _mm256_shuffle_epi8(lut_, lo_),                            \
            _mm256_shuffle_epi8(lut_, hi_));                           \
        (ACC) = _mm256_add_epi64(                                      \
            (ACC), _mm256_sad_epu8(cnt_, _mm256_setzero_si256()));     \
    } while (0)

#define VALLEY_POPCNT256_DECLS                                         \
    const __m256i lut_ = _mm256_setr_epi8(                             \
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2,   \
        1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);                           \
    const __m256i nib_ = _mm256_set1_epi8(0x0F)

__attribute__((target("avx2"))) std::uint64_t
hsum256(__m256i acc)
{
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

__attribute__((target("avx2"))) std::uint64_t
popcountWordsAvx2(const std::uint64_t *p, std::size_t n)
{
    VALLEY_POPCNT256_DECLS;
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + i));
        VALLEY_POPCNT256(acc, x);
    }
    std::uint64_t ones = hsum256(acc);
    for (; i < n; ++i)
        ones += static_cast<std::uint64_t>(std::popcount(p[i]));
    return ones;
}

__attribute__((target("avx2"))) std::uint64_t
xorPopcount2Avx2(const std::uint64_t *a, const std::uint64_t *b,
                 std::uint64_t *dst, std::size_t n)
{
    VALLEY_POPCNT256_DECLS;
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + i)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + i)));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), x);
        VALLEY_POPCNT256(acc, x);
    }
    std::uint64_t ones = hsum256(acc);
    for (; i < n; ++i) {
        const std::uint64_t x = a[i] ^ b[i];
        dst[i] = x;
        ones += static_cast<std::uint64_t>(std::popcount(x));
    }
    return ones;
}

__attribute__((target("avx2"))) std::uint64_t
xorPopcountNAvx2(const std::uint64_t *const *srcs, std::size_t nsrc,
                 std::uint64_t *dst, std::size_t n)
{
    VALLEY_POPCNT256_DECLS;
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i x = _mm256_setzero_si256();
        for (std::size_t s = 0; s < nsrc; ++s)
            x = _mm256_xor_si256(
                x, _mm256_loadu_si256(
                       reinterpret_cast<const __m256i *>(srcs[s] + i)));
        if (dst != nullptr)
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                                x);
        VALLEY_POPCNT256(acc, x);
    }
    std::uint64_t ones = hsum256(acc);
    for (; i < n; ++i) {
        std::uint64_t x = 0;
        for (std::size_t s = 0; s < nsrc; ++s)
            x ^= srcs[s][i];
        if (dst != nullptr)
            dst[i] = x;
        ones += static_cast<std::uint64_t>(std::popcount(x));
    }
    return ones;
}

__attribute__((target("avx2"))) void
xorPopcountEachAvx2(const std::uint64_t *a, const std::uint64_t *b,
                    std::uint64_t *dst, std::uint64_t *counts,
                    std::size_t n)
{
    VALLEY_POPCNT256_DECLS;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + i)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + i)));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), x);
        // sad_epu8 against zero sums each 8-byte group of the
        // per-byte LUT counts — exactly the four per-qword popcounts.
        const __m256i lo = _mm256_and_si256(x, nib_);
        const __m256i hi =
            _mm256_and_si256(_mm256_srli_epi16(x, 4), nib_);
        const __m256i cnt =
            _mm256_add_epi8(_mm256_shuffle_epi8(lut_, lo),
                            _mm256_shuffle_epi8(lut_, hi));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(counts + i),
            _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
    }
    for (; i < n; ++i) {
        const std::uint64_t x = a[i] ^ b[i];
        dst[i] = x;
        counts[i] = static_cast<std::uint64_t>(std::popcount(x));
    }
}

constexpr SimdOps kAvx2Ops = {
    SimdLevel::Avx2,   "avx2",           transpose64Avx2,
    popcountWordsAvx2, xorPopcount2Avx2, xorPopcountNAvx2,
    xorPopcountEachAvx2,
};

// ---- AVX-512 kernels -------------------------------------------------------

#define VALLEY_TARGET512 \
    target("avx512f,avx512bw,avx512vl,avx512vpopcntdq")

#define VALLEY_DELTA512(A, B, J, M)                                    \
    do {                                                               \
        const __m512i t_ = _mm512_and_si512(                           \
            _mm512_xor_si512(_mm512_srli_epi64((A), (J)), (B)), (M));  \
        (A) = _mm512_xor_si512((A), _mm512_slli_epi64(t_, (J)));       \
        (B) = _mm512_xor_si512((B), t_);                               \
    } while (0)

/*
 * In-register delta-swap of lane pairs (lane, lane+S) inside one ZMM:
 * IDX is the partner permutation, HI the k-mask of the hi lanes.
 */
#define VALLEY_DELTA512_LANES(V, J, M, IDX, HI)                        \
    do {                                                               \
        const __m512i p_ = _mm512_permutexvar_epi64((IDX), (V));       \
        const __m512i tlo_ = _mm512_and_si512(                         \
            _mm512_xor_si512(_mm512_srli_epi64((V), (J)), p_), (M));   \
        const __m512i thi_ = _mm512_and_si512(                         \
            _mm512_xor_si512(_mm512_srli_epi64(p_, (J)), (V)), (M));   \
        const __m512i t_ = _mm512_mask_blend_epi64((HI), tlo_, thi_);  \
        (V) = _mm512_xor_si512(                                        \
            (V), _mm512_mask_blend_epi64(                              \
                     (HI), _mm512_slli_epi64(t_, (J)), t_));           \
    } while (0)

__attribute__((VALLEY_TARGET512)) void
transpose64Avx512(std::uint64_t rows[64])
{
    __m512i v[8];
    for (int i = 0; i < 8; ++i)
        v[i] = _mm512_loadu_si512(rows + 8 * i);

    const __m512i m32 = _mm512_set1_epi64(0x00000000FFFFFFFFll);
    const __m512i m16 = _mm512_set1_epi64(0x0000FFFF0000FFFFll);
    const __m512i m8 = _mm512_set1_epi64(0x00FF00FF00FF00FFll);
    const __m512i m4 = _mm512_set1_epi64(0x0F0F0F0F0F0F0F0Fll);
    const __m512i m2 = _mm512_set1_epi64(0x3333333333333333ll);
    const __m512i m1 = _mm512_set1_epi64(0x5555555555555555ll);

    for (int i = 0; i < 4; ++i)
        VALLEY_DELTA512(v[i], v[i + 4], 32, m32);
    for (int g = 0; g < 8; g += 4)
        for (int i = 0; i < 2; ++i)
            VALLEY_DELTA512(v[g + i], v[g + i + 2], 16, m16);
    for (int g = 0; g < 8; g += 2)
        VALLEY_DELTA512(v[g], v[g + 1], 8, m8);

    const __m512i idx4 = _mm512_setr_epi64(4, 5, 6, 7, 0, 1, 2, 3);
    const __m512i idx2 = _mm512_setr_epi64(2, 3, 0, 1, 6, 7, 4, 5);
    const __m512i idx1 = _mm512_setr_epi64(1, 0, 3, 2, 5, 4, 7, 6);
    for (int i = 0; i < 8; ++i) {
        VALLEY_DELTA512_LANES(v[i], 4, m4, idx4, 0xF0);
        VALLEY_DELTA512_LANES(v[i], 2, m2, idx2, 0xCC);
        VALLEY_DELTA512_LANES(v[i], 1, m1, idx1, 0xAA);
    }

    for (int i = 0; i < 8; ++i)
        _mm512_storeu_si512(rows + 8 * i, v[i]);
}

__attribute__((VALLEY_TARGET512)) std::uint64_t
popcountWordsAvx512(const std::uint64_t *p, std::size_t n)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_loadu_si512(p + i)));
    std::uint64_t ones = _mm512_reduce_add_epi64(acc);
    for (; i < n; ++i)
        ones += static_cast<std::uint64_t>(std::popcount(p[i]));
    return ones;
}

__attribute__((VALLEY_TARGET512)) std::uint64_t
xorPopcount2Avx512(const std::uint64_t *a, const std::uint64_t *b,
                   std::uint64_t *dst, std::size_t n)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                           _mm512_loadu_si512(b + i));
        _mm512_storeu_si512(dst + i, x);
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
    }
    std::uint64_t ones = _mm512_reduce_add_epi64(acc);
    for (; i < n; ++i) {
        const std::uint64_t x = a[i] ^ b[i];
        dst[i] = x;
        ones += static_cast<std::uint64_t>(std::popcount(x));
    }
    return ones;
}

__attribute__((VALLEY_TARGET512)) std::uint64_t
xorPopcountNAvx512(const std::uint64_t *const *srcs, std::size_t nsrc,
                   std::uint64_t *dst, std::size_t n)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i x = _mm512_setzero_si512();
        for (std::size_t s = 0; s < nsrc; ++s)
            x = _mm512_xor_si512(x, _mm512_loadu_si512(srcs[s] + i));
        if (dst != nullptr)
            _mm512_storeu_si512(dst + i, x);
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
    }
    std::uint64_t ones = _mm512_reduce_add_epi64(acc);
    for (; i < n; ++i) {
        std::uint64_t x = 0;
        for (std::size_t s = 0; s < nsrc; ++s)
            x ^= srcs[s][i];
        if (dst != nullptr)
            dst[i] = x;
        ones += static_cast<std::uint64_t>(std::popcount(x));
    }
    return ones;
}

__attribute__((VALLEY_TARGET512)) void
xorPopcountEachAvx512(const std::uint64_t *a, const std::uint64_t *b,
                      std::uint64_t *dst, std::uint64_t *counts,
                      std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                           _mm512_loadu_si512(b + i));
        _mm512_storeu_si512(dst + i, x);
        _mm512_storeu_si512(counts + i, _mm512_popcnt_epi64(x));
    }
    for (; i < n; ++i) {
        const std::uint64_t x = a[i] ^ b[i];
        dst[i] = x;
        counts[i] = static_cast<std::uint64_t>(std::popcount(x));
    }
}

constexpr SimdOps kAvx512Ops = {
    SimdLevel::Avx512,   "avx512",           transpose64Avx512,
    popcountWordsAvx512, xorPopcount2Avx512, xorPopcountNAvx512,
    xorPopcountEachAvx512,
};

bool
cpuHasAvx2()
{
    return __builtin_cpu_supports("avx2") != 0;
}

bool
cpuHasAvx512()
{
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512bw") != 0 &&
           __builtin_cpu_supports("avx512vl") != 0 &&
           __builtin_cpu_supports("avx512vpopcntdq") != 0;
}

#endif // VALLEY_X86

const SimdOps &
resolveOps()
{
    if (const char *e = std::getenv("VALLEY_NO_SIMD"))
        if (e[0] != '\0' && !(e[0] == '0' && e[1] == '\0'))
            return kScalarOps;
#ifdef VALLEY_X86
    if (cpuHasAvx512())
        return kAvx512Ops;
    if (cpuHasAvx2())
        return kAvx2Ops;
#endif
    return kScalarOps;
}

} // namespace

const SimdOps &
simdOps()
{
    // Magic-static resolution: thread-safe once-init, then every call
    // is a load + indirect call through the chosen table.
    static const SimdOps &ops = resolveOps();
    return ops;
}

const SimdOps &
scalarSimdOps()
{
    return kScalarOps;
}

const SimdOps *
simdOpsFor(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return &kScalarOps;
#ifdef VALLEY_X86
    case SimdLevel::Avx2:
        return cpuHasAvx2() ? &kAvx2Ops : nullptr;
    case SimdLevel::Avx512:
        return cpuHasAvx512() ? &kAvx512Ops : nullptr;
#else
    case SimdLevel::Avx2:
    case SimdLevel::Avx512:
        return nullptr;
#endif
    }
    return nullptr;
}

} // namespace bits
} // namespace valley
