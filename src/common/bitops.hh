/**
 * @file
 * Bit-manipulation helpers used by the BIM algebra, the address
 * layouts and the entropy analysis.
 */

#ifndef VALLEY_COMMON_BITOPS_HH
#define VALLEY_COMMON_BITOPS_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace valley {
namespace bits {

/** Return a mask with the `n` least significant bits set. */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract bits [hi:lo] (inclusive) of `v`, right-aligned. */
constexpr std::uint64_t
extract(std::uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & mask(hi - lo + 1);
}

/** Extract single bit `pos` of `v`. */
constexpr unsigned
bit(std::uint64_t v, unsigned pos)
{
    return static_cast<unsigned>((v >> pos) & 1);
}

/** Return `v` with bits [hi:lo] replaced by the low bits of `field`. */
constexpr std::uint64_t
insert(std::uint64_t v, unsigned hi, unsigned lo, std::uint64_t field)
{
    const std::uint64_t m = mask(hi - lo + 1);
    return (v & ~(m << lo)) | ((field & m) << lo);
}

/** Return `v` with bit `pos` set to `b` (0/1). */
constexpr std::uint64_t
setBit(std::uint64_t v, unsigned pos, unsigned b)
{
    return (v & ~(std::uint64_t{1} << pos)) |
           (std::uint64_t{b & 1} << pos);
}

/** Parity (XOR-reduction) of all bits of `v`. */
constexpr unsigned
parity(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v) & 1);
}

/** True iff `v` is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    assert(isPow2(v));
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Ceil of log2 (log2Ceil(1) == 0). */
constexpr unsigned
log2Ceil(std::uint64_t v)
{
    unsigned r = 0;
    std::uint64_t p = 1;
    while (p < v) { p <<= 1; ++r; }
    return r;
}

} // namespace bits
} // namespace valley

#endif // VALLEY_COMMON_BITOPS_HH
