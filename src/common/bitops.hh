/**
 * @file
 * Bit-manipulation helpers used by the BIM algebra, the address
 * layouts and the entropy analysis.
 */

#ifndef VALLEY_COMMON_BITOPS_HH
#define VALLEY_COMMON_BITOPS_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace valley {
namespace bits {

/** Return a mask with the `n` least significant bits set. */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract bits [hi:lo] (inclusive) of `v`, right-aligned. */
constexpr std::uint64_t
extract(std::uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & mask(hi - lo + 1);
}

/** Extract single bit `pos` of `v`. */
constexpr unsigned
bit(std::uint64_t v, unsigned pos)
{
    return static_cast<unsigned>((v >> pos) & 1);
}

/** Return `v` with bits [hi:lo] replaced by the low bits of `field`. */
constexpr std::uint64_t
insert(std::uint64_t v, unsigned hi, unsigned lo, std::uint64_t field)
{
    const std::uint64_t m = mask(hi - lo + 1);
    return (v & ~(m << lo)) | ((field & m) << lo);
}

/** Return `v` with bit `pos` set to `b` (0/1). */
constexpr std::uint64_t
setBit(std::uint64_t v, unsigned pos, unsigned b)
{
    return (v & ~(std::uint64_t{1} << pos)) |
           (std::uint64_t{b & 1} << pos);
}

/** Parity (XOR-reduction) of all bits of `v`. */
constexpr unsigned
parity(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v) & 1);
}

/** True iff `v` is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    assert(isPow2(v));
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Ceil of log2 (log2Ceil(1) == 0). */
constexpr unsigned
log2Ceil(std::uint64_t v)
{
    unsigned r = 0;
    std::uint64_t p = 1;
    while (p < v) { p <<= 1; ++r; }
    return r;
}

/**
 * One delta-swap pass of the 64x64 bit transpose: exchange the
 * `J`-aligned sub-blocks of every row pair (k, k+J) under `mask`.
 * `J` is a template parameter so each stage compiles with constant
 * shift counts — which lets the compiler unroll and vectorize the
 * pass (constant 64-bit shifts exist even in baseline SSE2).
 */
template <unsigned J>
inline void
transposeStage(std::uint64_t *rows, std::uint64_t mask)
{
    for (unsigned k0 = 0; k0 < 64; k0 += 2 * J) {
        for (unsigned k = k0; k < k0 + J; ++k) {
            const std::uint64_t t =
                ((rows[k] >> J) ^ rows[k + J]) & mask;
            rows[k] ^= t << J;
            rows[k + J] ^= t;
        }
    }
}

/**
 * In-place transpose of a 64x64 bit matrix held as 64 row words:
 * afterwards bit `c` of `rows[r]` equals bit `r` of the original
 * `rows[c]`. Recursive block-swap (Hacker's Delight 7-3): six passes
 * of masked delta-swaps, ~3 ops per word per pass, independent of the
 * matrix content. The entropy profiler uses it to turn 64 buffered
 * addresses into one 64-bit lane per address bit, which then
 * accumulate via `popcount` instead of a per-address bit walk.
 */
inline void
transpose64(std::uint64_t rows[64])
{
    transposeStage<32>(rows, 0x00000000FFFFFFFFull);
    transposeStage<16>(rows, 0x0000FFFF0000FFFFull);
    transposeStage<8>(rows, 0x00FF00FF00FF00FFull);
    transposeStage<4>(rows, 0x0F0F0F0F0F0F0F0Full);
    transposeStage<2>(rows, 0x3333333333333333ull);
    transposeStage<1>(rows, 0x5555555555555555ull);
}

} // namespace bits
} // namespace valley

#endif // VALLEY_COMMON_BITOPS_HH
