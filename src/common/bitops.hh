/**
 * @file
 * Bit-manipulation helpers used by the BIM algebra, the address
 * layouts and the entropy analysis.
 */

#ifndef VALLEY_COMMON_BITOPS_HH
#define VALLEY_COMMON_BITOPS_HH

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace valley {
namespace bits {

/** Return a mask with the `n` least significant bits set. */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract bits [hi:lo] (inclusive) of `v`, right-aligned. */
constexpr std::uint64_t
extract(std::uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & mask(hi - lo + 1);
}

/** Extract single bit `pos` of `v`. */
constexpr unsigned
bit(std::uint64_t v, unsigned pos)
{
    return static_cast<unsigned>((v >> pos) & 1);
}

/** Return `v` with bits [hi:lo] replaced by the low bits of `field`. */
constexpr std::uint64_t
insert(std::uint64_t v, unsigned hi, unsigned lo, std::uint64_t field)
{
    const std::uint64_t m = mask(hi - lo + 1);
    return (v & ~(m << lo)) | ((field & m) << lo);
}

/** Return `v` with bit `pos` set to `b` (0/1). */
constexpr std::uint64_t
setBit(std::uint64_t v, unsigned pos, unsigned b)
{
    return (v & ~(std::uint64_t{1} << pos)) |
           (std::uint64_t{b & 1} << pos);
}

/** Parity (XOR-reduction) of all bits of `v`. */
constexpr unsigned
parity(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v) & 1);
}

/** True iff `v` is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    assert(isPow2(v));
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Ceil of log2 (log2Ceil(1) == 0). */
constexpr unsigned
log2Ceil(std::uint64_t v)
{
    unsigned r = 0;
    std::uint64_t p = 1;
    while (p < v) { p <<= 1; ++r; }
    return r;
}

/**
 * One delta-swap pass of the 64x64 bit transpose: exchange the
 * `J`-aligned sub-blocks of every row pair (k, k+J) under `mask`.
 * `J` is a template parameter so each stage compiles with constant
 * shift counts — which lets the compiler unroll and vectorize the
 * pass (constant 64-bit shifts exist even in baseline SSE2).
 */
template <unsigned J>
inline void
transposeStage(std::uint64_t *rows, std::uint64_t mask)
{
    for (unsigned k0 = 0; k0 < 64; k0 += 2 * J) {
        for (unsigned k = k0; k < k0 + J; ++k) {
            const std::uint64_t t =
                ((rows[k] >> J) ^ rows[k + J]) & mask;
            rows[k] ^= t << J;
            rows[k + J] ^= t;
        }
    }
}

/**
 * In-place transpose of a 64x64 bit matrix held as 64 row words:
 * afterwards bit `c` of `rows[r]` equals bit `r` of the original
 * `rows[c]`. Recursive block-swap (Hacker's Delight 7-3): six passes
 * of masked delta-swaps, ~3 ops per word per pass, independent of the
 * matrix content. The entropy profiler uses it to turn 64 buffered
 * addresses into one 64-bit lane per address bit, which then
 * accumulate via `popcount` instead of a per-address bit walk.
 *
 * This is the scalar reference implementation — always available, and
 * the oracle the SIMD variants are tested against. `transpose64`
 * below routes through the runtime-dispatched kernel table.
 */
inline void
transpose64Scalar(std::uint64_t rows[64])
{
    transposeStage<32>(rows, 0x00000000FFFFFFFFull);
    transposeStage<16>(rows, 0x0000FFFF0000FFFFull);
    transposeStage<8>(rows, 0x00FF00FF00FF00FFull);
    transposeStage<4>(rows, 0x0F0F0F0F0F0F0F0Full);
    transposeStage<2>(rows, 0x3333333333333333ull);
    transposeStage<1>(rows, 0x5555555555555555ull);
}

/**
 * ## Runtime SIMD dispatch (common/simd.cc)
 *
 * The profiler's bit-sliced accumulator and the search's trace planes
 * spend their time in exactly four word-level kernels: the 64x64
 * transpose, bulk popcount, fused two-plane XOR+popcount, and N-plane
 * XOR-combine+popcount. `SimdOps` is a function-pointer table with
 * one implementation per ISA level; `simdOps()` resolves the widest
 * level the CPU supports exactly once (thread-safe magic static, the
 * std::once idiom) and every call after that is one indirect call.
 *
 * All levels produce bit-identical results — the kernels compute
 * exact integer one-counts, so the choice of level can never change a
 * profile, a search trajectory, or a cached artifact. `VALLEY_NO_SIMD=1`
 * in the environment pins dispatch to the scalar table (read at first
 * resolution); `scalarSimdOps()` is always available in-process as
 * the test/bench oracle regardless of the environment.
 */
enum class SimdLevel
{
    Scalar = 0, ///< portable C++, no ISA assumptions
    Avx2 = 1,   ///< 256-bit: AVX2 transpose + Mula popcount
    Avx512 = 2, ///< 512-bit: AVX-512 transpose + VPOPCNTDQ kernels
};

/** Kernel table for one ISA level. All entries are non-null. */
struct SimdOps
{
    SimdLevel level;
    const char *name; ///< stable id: "scalar" / "avx2" / "avx512"

    /** In-place 64x64 bit transpose (see `transpose64Scalar`). */
    void (*transpose64)(std::uint64_t rows[64]);

    /** Total popcount of `p[0..n)`. */
    std::uint64_t (*popcountWords)(const std::uint64_t *p,
                                   std::size_t n);

    /**
     * dst[i] = a[i] ^ b[i] for i in [0, n); returns the popcount of
     * the combined words. `dst` may alias `a` or `b`. The fused
     * "score one incremental plane move" kernel.
     */
    std::uint64_t (*xorPopcount2)(const std::uint64_t *a,
                                  const std::uint64_t *b,
                                  std::uint64_t *dst, std::size_t n);

    /**
     * XOR-combine `nsrc` equal-length word runs; returns the popcount
     * of the combination and, when `dst` is non-null, stores it
     * there. `nsrc == 0` means the all-zero plane (popcount 0, `dst`
     * zero-filled). The "combine all tapped input planes" kernel.
     */
    std::uint64_t (*xorPopcountN)(const std::uint64_t *const *srcs,
                                  std::size_t nsrc, std::uint64_t *dst,
                                  std::size_t n);

    /**
     * dst[i] = a[i] ^ b[i] and counts[i] = popcount(dst[i]) for i in
     * [0, n) — per-word one-counts instead of a total. `dst` may
     * alias `a` or `b`. The "incremental move over a uniform
     * one-word-per-TB kernel" kernel: each word is one TB's 64-request
     * lane, so `counts` lands directly in the per-TB ones array.
     */
    void (*xorPopcountEach)(const std::uint64_t *a,
                            const std::uint64_t *b, std::uint64_t *dst,
                            std::uint64_t *counts, std::size_t n);
};

/**
 * The dispatched kernel table: widest ISA level this CPU supports,
 * resolved once on first use; `VALLEY_NO_SIMD=1` forces Scalar.
 */
const SimdOps &simdOps();

/** The scalar oracle table, independent of dispatch and environment. */
const SimdOps &scalarSimdOps();

/**
 * Table for an explicit level, or nullptr when this CPU (or build)
 * cannot run it. Scalar is never null. For tests and benches.
 */
const SimdOps *simdOpsFor(SimdLevel level);

/** Dispatched 64x64 transpose (see `transpose64Scalar` for layout). */
inline void
transpose64(std::uint64_t rows[64])
{
    simdOps().transpose64(rows);
}

} // namespace bits
} // namespace valley

#endif // VALLEY_COMMON_BITOPS_HH
