/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket latency histograms shared by every subsystem
 * (grid harness, caches, search, thread pool, supervisor).
 *
 * ## Sharding model
 *
 * The write path must be safe from any worker thread of the
 * work-stealing pool without serializing them. Counters and
 * histograms are therefore *thread-sharded*: each instrument owns a
 * small array of cache-line-aligned atomic shards, and each thread
 * hashes to a shard via a process-wide round-robin slot assigned on
 * first use. A bump is one relaxed `fetch_add` on the calling
 * thread's shard — no locks, no shared cache line between threads in
 * the common case. Shards are merged only when a snapshot is taken.
 *
 * Relaxed ordering is sufficient: metrics never feed back into
 * computation (the bit-identity contract of the grid), and snapshots
 * are taken at quiescent points (end of a grid / tool run), so the
 * merged totals are exact there.
 *
 * ## Registration and lifetime
 *
 * `counter(name)` / `gauge(name)` / `histogram(name)` intern the
 * instrument in a registry keyed by name and return a reference that
 * stays valid for the life of the process (instruments are never
 * destroyed, only zeroed by `resetForTesting`). Lookup takes a
 * mutex, so hot paths cache the reference:
 *
 *     static metrics::Counter &hits = metrics::counter("cache.hits");
 *     hits.inc();
 *
 * ## Snapshot determinism
 *
 * `snapshotJson` renders every registered instrument sorted by name
 * with a fixed field order, so two snapshots of the same state are
 * byte-identical and snapshots across runs diff cleanly — the same
 * "stable text" discipline as the cache wire format.
 */

#ifndef VALLEY_COMMON_METRICS_HH
#define VALLEY_COMMON_METRICS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace valley {
namespace metrics {

namespace detail {

/**
 * Process-wide round-robin shard slot for the calling thread,
 * assigned on first use. Instruments index `slot % kShards`; threads
 * outnumbering the shard count share shards (still correct — the
 * shards are atomic — just with occasional contention).
 */
unsigned threadSlot();

} // namespace detail

/**
 * Monotonic event counter. `add` is lock-free and wait-free on the
 * calling thread's shard; `value` merges all shards.
 */
class Counter
{
  public:
    static constexpr std::size_t kShards = 16;

    void
    add(std::uint64_t n = 1) noexcept
    {
        shards[detail::threadSlot() % kShards].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    void
    inc() noexcept
    {
        add(1);
    }

    std::uint64_t
    value() const noexcept
    {
        std::uint64_t total = 0;
        for (const Shard &s : shards)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

    /** Zero every shard (testing only — see resetForTesting). */
    void
    reset() noexcept
    {
        for (Shard &s : shards)
            s.v.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> v{0};
    };
    std::array<Shard, kShards> shards{};
};

/** Last-writer-wins signed instantaneous value (thread counts &c). */
class Gauge
{
  public:
    void
    set(std::int64_t v) noexcept
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t d) noexcept
    {
        value_.fetch_add(d, std::memory_order_relaxed);
    }

    std::int64_t
    value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset() noexcept
    {
        set(0);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Fixed-bucket latency histogram over unsigned microsecond samples.
 * Bucket i holds samples whose bit width is i (i.e. [2^(i-1), 2^i)
 * for i >= 1; bucket 0 holds zeros), clamped into the last bucket —
 * power-of-two bounds need no configuration and keep `record` to a
 * `bit_width` plus one relaxed `fetch_add` per field.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 28;
    static constexpr std::size_t kShards = 8;

    void record(std::uint64_t micros) noexcept;

    std::uint64_t count() const noexcept;
    std::uint64_t sum() const noexcept;
    std::uint64_t bucket(std::size_t i) const noexcept;

    void reset() noexcept;

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    };
    std::array<Shard, kShards> shards{};
};

/**
 * RAII latency probe: records the scope's wall-clock duration (in
 * microseconds) into `h` on destruction.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &h)
        : hist(h), start(std::chrono::steady_clock::now())
    {
    }

    ~ScopedTimer()
    {
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        hist.record(us < 0 ? 0 : static_cast<std::uint64_t>(us));
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram &hist;
    std::chrono::steady_clock::time_point start;
};

/**
 * Intern an instrument by name. References remain valid for the
 * process lifetime. Takes a registry mutex — cache the reference in
 * a function-local static on hot paths.
 */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name);

/**
 * Render every registered instrument as one JSON object, names
 * sorted, fixed field order — deterministic and diffable:
 *
 *     {
 *       "counters": {"grid.cells_done": 4, ...},
 *       "gauges": {...},
 *       "histograms": {
 *         "cache.result.lookup_us":
 *           {"count": 4, "sum_us": 12, "buckets": [ ... ]}
 *       }
 *     }
 *
 * `indent` is the nesting depth (2 spaces per level) the object is
 * embedded at: inner lines and the closing brace are indented
 * relative to it, the opening brace is not (it sits in value
 * position). The returned string has no trailing newline.
 */
std::string snapshotJson(unsigned indent = 0);

/**
 * Crash-consistent snapshot dump (atomicWriteFile under the hood).
 * Returns false on IO failure.
 */
bool writeSnapshotFile(const std::string &path);

/**
 * Zero every registered instrument, keeping registrations (and all
 * outstanding references) valid. Tests share one process-wide
 * registry, so they measure deltas or reset between cases.
 */
void resetForTesting();

} // namespace metrics
} // namespace valley

#endif // VALLEY_COMMON_METRICS_HH
