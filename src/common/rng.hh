/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the project (BIM row sampling, workload
 * address jitter, tie-breaking) goes through XorShiftRng seeded from an
 * explicit value, so experiment runs are bit-reproducible.
 */

#ifndef VALLEY_COMMON_RNG_HH
#define VALLEY_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace valley {

/**
 * xorshift64* generator. Small, fast and adequate for simulation
 * workload synthesis; not for cryptography.
 */
class XorShiftRng
{
  public:
    /** Seed 0 is remapped to a fixed odd constant (state must be != 0). */
    explicit XorShiftRng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
        : state(seed ? seed : 0x9E3779B97F4A7C15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545F4914F6CDD1Dull;
    }

    /** Uniform value in [0, bound) for bound >= 1. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return bound <= 1 ? 0 : next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Fair coin. */
    bool coin() { return next() & 1; }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t state;
};

} // namespace valley

#endif // VALLEY_COMMON_RNG_HH
