#include "table.hh"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace valley {

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows.push_back(Row{std::move(cells), false});
}

void
TextTable::addRule()
{
    rows.push_back(Row{{}, true});
}

std::string
TextTable::toString() const
{
    // Compute per-column widths over header and all rows.
    std::vector<std::size_t> width;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > width.size())
            width.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    grow(header);
    for (const Row &r : rows)
        grow(r.cells);

    std::size_t line_len = 0;
    for (std::size_t w : width)
        line_len += w + 2;

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out << cells[i];
            if (i + 1 < cells.size())
                out << std::string(width[i] - cells[i].size() + 2, ' ');
        }
        out << '\n';
    };
    if (!header.empty()) {
        emit(header);
        out << std::string(line_len, '-') << '\n';
    }
    for (const Row &r : rows) {
        if (r.rule)
            out << std::string(line_len, '-') << '\n';
        else
            emit(r.cells);
    }
    return out.str();
}

std::string
TextTable::toCsv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out << cells[i];
            if (i + 1 < cells.size())
                out << ',';
        }
        out << '\n';
    };
    if (!header.empty())
        emit(header);
    for (const Row &r : rows)
        if (!r.rule)
            emit(r.cells);
    return out.str();
}

std::string
TextTable::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
TextTable::big(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

} // namespace valley
