/**
 * @file
 * Lightweight statistics accumulators used across the simulator.
 */

#ifndef VALLEY_COMMON_STATS_HH
#define VALLEY_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace valley {

/**
 * Incremental mean/min/max accumulator over double samples.
 */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n;
        total += x;
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }

    /** Add `count` identical samples (used by per-cycle sampling). */
    void
    addWeighted(double x, std::uint64_t count)
    {
        n += count;
        total += x * static_cast<double>(count);
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

    void
    reset()
    {
        n = 0;
        total = 0.0;
        lo = std::numeric_limits<double>::infinity();
        hi = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/** Ratio of two event counters; safe on zero denominators. */
struct RatioStat
{
    std::uint64_t num = 0;
    std::uint64_t den = 0;

    double
    value() const
    {
        return den ? static_cast<double>(num) / static_cast<double>(den)
                   : 0.0;
    }
};

/** Arithmetic mean of a vector (0 on empty input). */
inline double
arithmeticMean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** Harmonic mean of a vector of positive values (0 on empty input). */
inline double
harmonicMean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v) {
        if (x <= 0.0)
            return 0.0;
        s += 1.0 / x;
    }
    return static_cast<double>(v.size()) / s;
}

/** Geometric mean of a vector of positive values (0 on empty input). */
inline double
geometricMean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v) {
        if (x <= 0.0)
            return 0.0;
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(v.size()));
}

} // namespace valley

#endif // VALLEY_COMMON_STATS_HH
