/**
 * @file
 * FNV-1a hashing, shared by every cache-identity producer.
 *
 * One definition instead of per-module copies: synth spec hashes
 * (`ResolvedSpec::hash`), workload-set identities
 * (`WorkloadSet::hash`) and searched-matrix ids
 * (`search::sbimMapperId`) all key on-disk caches, so their hash
 * loops must stay byte-for-byte in sync forever. The helpers here
 * reproduce the classic 64-bit FNV-1a exactly (offset basis
 * 0xCBF29CE484222325, prime 0x100000001B3), stable across runs and
 * platforms.
 */

#ifndef VALLEY_COMMON_FNV_HH
#define VALLEY_COMMON_FNV_HH

#include <cstdint>
#include <string_view>

namespace valley {
namespace bits {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

/** Fold one byte into a running FNV-1a state. */
constexpr std::uint64_t
fnv1aByte(std::uint64_t h, unsigned char b)
{
    return (h ^ b) * kFnvPrime;
}

/** FNV-1a of a byte string (optionally continuing from `h`). */
constexpr std::uint64_t
fnv1a(std::string_view s, std::uint64_t h = kFnvOffsetBasis)
{
    for (char c : s)
        h = fnv1aByte(h, static_cast<unsigned char>(c));
    return h;
}

/**
 * Fold a 64-bit value into a running FNV-1a state, least significant
 * byte first (endian-independent: byte order is defined by the
 * shifts, not by memory layout).
 */
constexpr std::uint64_t
fnv1aU64(std::uint64_t h, std::uint64_t v)
{
    for (unsigned byte = 0; byte < 8; ++byte)
        h = fnv1aByte(h,
                      static_cast<unsigned char>((v >> (8 * byte)) &
                                                 0xFF));
    return h;
}

} // namespace bits
} // namespace valley

#endif // VALLEY_COMMON_FNV_HH
