#include "common/metrics.hh"

#include <bit>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "harness/atomic_io.hh"

namespace valley {
namespace metrics {

namespace detail {

unsigned
threadSlot()
{
    static std::atomic<unsigned> next{0};
    thread_local const unsigned slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

} // namespace detail

void
Histogram::record(std::uint64_t micros) noexcept
{
    const std::size_t idx =
        std::min<std::size_t>(std::bit_width(micros), kBuckets - 1);
    Shard &s = shards[detail::threadSlot() % kShards];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(micros, std::memory_order_relaxed);
    s.buckets[idx].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
Histogram::count() const noexcept
{
    std::uint64_t total = 0;
    for (const Shard &s : shards)
        total += s.count.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
Histogram::sum() const noexcept
{
    std::uint64_t total = 0;
    for (const Shard &s : shards)
        total += s.sum.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
Histogram::bucket(std::size_t i) const noexcept
{
    std::uint64_t total = 0;
    for (const Shard &s : shards)
        total += s.buckets[i].load(std::memory_order_relaxed);
    return total;
}

void
Histogram::reset() noexcept
{
    for (Shard &s : shards) {
        s.count.store(0, std::memory_order_relaxed);
        s.sum.store(0, std::memory_order_relaxed);
        for (auto &b : s.buckets)
            b.store(0, std::memory_order_relaxed);
    }
}

namespace {

/**
 * The registry proper. Instruments live behind unique_ptr so the
 * references handed out stay stable as the maps rehash; entries are
 * never erased. std::map keeps iteration name-sorted, which is what
 * makes snapshots deterministic without a sort pass.
 */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

Counter &
counter(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto &slot = r.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
gauge(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto &slot = r.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
histogram(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto &slot = r.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::string
snapshotJson(unsigned indent)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const std::string base(indent * 2, ' ');
    const std::string in1 = base + "  ";
    const std::string in2 = base + "    ";
    std::ostringstream out;
    out << "{\n";

    out << in1 << "\"counters\": {";
    bool first = true;
    for (const auto &[name, c] : r.counters) {
        out << (first ? "\n" : ",\n") << in2 << '"'
            << jsonEscape(name) << "\": " << c->value();
        first = false;
    }
    out << (first ? "},\n" : "\n" + in1 + "},\n");

    out << in1 << "\"gauges\": {";
    first = true;
    for (const auto &[name, g] : r.gauges) {
        out << (first ? "\n" : ",\n") << in2 << '"'
            << jsonEscape(name) << "\": " << g->value();
        first = false;
    }
    out << (first ? "},\n" : "\n" + in1 + "},\n");

    out << in1 << "\"histograms\": {";
    first = true;
    for (const auto &[name, h] : r.histograms) {
        out << (first ? "\n" : ",\n") << in2 << '"'
            << jsonEscape(name) << "\": {\"count\": " << h->count()
            << ", \"sum_us\": " << h->sum() << ", \"buckets\": [";
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
            out << (i ? ", " : "") << h->bucket(i);
        out << "]}";
        first = false;
    }
    out << (first ? "}\n" : "\n" + in1 + "}\n");

    out << base << "}";
    return out.str();
}

bool
writeSnapshotFile(const std::string &path)
{
    return harness::atomicWriteFile(path, snapshotJson() + "\n");
}

void
resetForTesting()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (auto &[name, c] : r.counters)
        c->reset();
    for (auto &[name, g] : r.gauges)
        g->reset();
    for (auto &[name, h] : r.histograms)
        h->reset();
}

} // namespace metrics
} // namespace valley
