#include "common/cancellation.hh"

#include <cstdlib>
#include <string>

namespace valley {

std::optional<std::chrono::milliseconds>
CancelToken::envDeadlineMs()
{
    const char *env = std::getenv("VALLEY_DEADLINE_MS");
    if (env == nullptr || *env == '\0')
        return std::nullopt;
    char *end = nullptr;
    const unsigned long long ms = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || ms == 0)
        return std::nullopt;
    return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
}

} // namespace valley
