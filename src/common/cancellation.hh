/**
 * @file
 * Cooperative cancellation and wall-clock deadlines for the
 * self-healing execution layer.
 *
 * Long-running work (grids, profiles, searches) cannot be preempted
 * safely — a cell mid-simulation owns caches, journals and pool
 * slots — so cancellation here is *cooperative*: the worker polls a
 * `CancelToken` at its natural checkpoint boundaries (one grid cell,
 * one TB range, one search move) and winds down gracefully. Two
 * things make a token fire:
 *
 *  - an explicit `cancel()` — e.g. the SIGINT/SIGTERM handler of
 *    `tools/valley_grid`, which is why `cancel()` is a single atomic
 *    store (async-signal-safe, no locks, no allocation);
 *  - an attached `Deadline` expiring — monotonic
 *    (`std::chrono::steady_clock`), so a wall-clock adjustment can
 *    never fire or starve a budget.
 *
 * Tokens compose parent→child: `child()` returns a token that is
 * cancelled whenever any ancestor is (each layer can add its own
 * tighter deadline without being able to *extend* the parent's).
 * Checking costs one relaxed atomic load per ancestor plus, when a
 * deadline is armed, one clock read — cheap enough for per-move
 * polling in the search.
 *
 * Degradation contract (the "never a throw" rule): consumers that can
 * return a *valid partial answer* — `BimSearch` with its best
 * incumbent, `runGrid` with its finished cells — poll `cancelled()`
 * and degrade, flagging the result (`SearchStats::deadlineHit`, the
 * grid report's deadline-missed cells). Consumers with no meaningful
 * partial result (`profileWorkload`) call `check()`, which throws
 * `Cancelled`; the caller's cell-level retry/poison machinery treats
 * it like any other failure. Wall-clock deadlines are inherently
 * nondeterministic; bit-identical tests use explicit `cancel()` or
 * the counted `maxEvaluations` budget instead.
 */

#ifndef VALLEY_COMMON_CANCELLATION_HH
#define VALLEY_COMMON_CANCELLATION_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>

namespace valley {

/** Thrown by `CancelToken::check()`; catchable like any failure. */
struct Cancelled : std::runtime_error
{
    explicit Cancelled(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * A monotonic-clock deadline. Default-constructed = never expires.
 */
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    Deadline() = default; ///< never expires

    /** Deadline `d` from now (monotonic). */
    static Deadline
    after(std::chrono::milliseconds d)
    {
        Deadline out;
        out.has_ = true;
        out.at_ = Clock::now() + d;
        return out;
    }

    static Deadline never() { return Deadline(); }

    bool armed() const { return has_; }

    bool
    expired() const
    {
        return has_ && Clock::now() >= at_;
    }

    /** Time left; zero when expired, nullopt when never-expiring. */
    std::optional<std::chrono::milliseconds>
    remaining() const
    {
        if (!has_)
            return std::nullopt;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                at_ - Clock::now());
        return left.count() > 0 ? left : std::chrono::milliseconds(0);
    }

    Clock::time_point at() const { return at_; }

  private:
    bool has_ = false;
    Clock::time_point at_{};
};

/**
 * Composable cancellation token. Copyable (copies share one
 * cancellation state); `child()` derives a token that also observes
 * every ancestor.
 */
class CancelToken
{
  public:
    /** Fresh root token: not cancelled, no deadline. */
    CancelToken() : state_(std::make_shared<State>()) {}

    /** Child token: cancelled whenever this token (or its ancestors)
     * is; may arm its own, tighter deadline via `setDeadline`. */
    CancelToken
    child() const
    {
        CancelToken c;
        c.state_->parent = state_;
        return c;
    }

    /**
     * Cancel this token (and every descendant). One atomic store:
     * async-signal-safe, callable from a SIGINT/SIGTERM handler.
     */
    void
    cancel() const noexcept
    {
        state_->flag.store(true, std::memory_order_relaxed);
    }

    /** Arm (or replace) this token's deadline. */
    void
    setDeadline(const Deadline &d)
    {
        state_->deadline_ns.store(
            d.armed() ? d.at().time_since_epoch().count()
                      : std::int64_t{0},
            std::memory_order_relaxed);
    }

    /** True once cancelled explicitly or past any armed deadline in
     * the parent chain. */
    bool
    cancelled() const noexcept
    {
        for (const State *s = state_.get(); s != nullptr;
             s = s->parent.get()) {
            if (s->flag.load(std::memory_order_relaxed))
                return true;
            const std::int64_t dl =
                s->deadline_ns.load(std::memory_order_relaxed);
            if (dl != 0 &&
                Deadline::Clock::now().time_since_epoch().count() >=
                    dl)
                return true;
        }
        return false;
    }

    /** Throw `Cancelled` if `cancelled()`. */
    void
    check(const char *what = "operation cancelled") const
    {
        if (cancelled())
            throw Cancelled(what);
    }

    /**
     * Ambient wall-clock budget: `VALLEY_DEADLINE_MS` from the
     * environment (a positive integer of milliseconds), or nullopt
     * when unset/malformed. `harness::runGrid` arms it automatically;
     * other consumers opt in explicitly.
     */
    static std::optional<std::chrono::milliseconds> envDeadlineMs();

  private:
    struct State
    {
        std::atomic<bool> flag{false};
        /// steady_clock time-since-epoch ns; 0 = no deadline.
        std::atomic<std::int64_t> deadline_ns{0};
        std::shared_ptr<const State> parent;
    };

    std::shared_ptr<State> state_;
};

} // namespace valley

#endif // VALLEY_COMMON_CANCELLATION_HH
