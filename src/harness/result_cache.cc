#include "harness/result_cache.hh"

#include <array>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

namespace valley {
namespace harness {

const char *kResultCacheVersion = "v3";

std::string
cacheDir()
{
    const char *env = std::getenv("VALLEY_CACHE_DIR");
    return env && *env ? env : "cache";
}

std::string
resultCachePath()
{
    return cacheDir() + "/valley_results_cache.csv";
}

namespace {

/**
 * The in-memory cache is sharded by key hash so parallel grid cells
 * do not serialize on one global lock; only the on-disk append and
 * the initial file load keep their own (cold-path) mutexes.
 */
constexpr std::size_t kCacheShards = 16;

struct CacheShard
{
    std::mutex mutex;
    std::map<std::string, RunResult> entries;
};

std::array<CacheShard, kCacheShards> shards;
std::mutex load_mutex;
std::mutex file_mutex;
bool loaded = false;

CacheShard &
shardFor(const std::string &key)
{
    return shards[std::hash<std::string>{}(key) % kCacheShards];
}

std::string
serialize(const RunResult &r)
{
    std::ostringstream out;
    out.precision(17);
    out << r.workload << ' ' << r.scheme << ' ' << r.cycles << ' '
        << r.seconds << ' ' << r.instructions << ' ' << r.requests
        << ' ' << r.l1Accesses << ' ' << r.l1Misses << ' '
        << r.llcAccesses << ' ' << r.llcMisses << ' ' << r.llcMissRate
        << ' ' << r.nocLatencySmCycles << ' ' << r.llcParallelism
        << ' ' << r.channelParallelism << ' ' << r.bankParallelism
        << ' ' << r.dram.reads << ' ' << r.dram.writes << ' '
        << r.dram.rowMisses << ' ' << r.dram.activations << ' '
        << r.dram.precharges << ' ' << r.dram.busBusyCycles << ' '
        << r.dram.latencySum << ' ' << r.rowBufferHitRate << ' '
        << r.dramPower.backgroundW << ' ' << r.dramPower.activateW
        << ' ' << r.dramPower.readW << ' ' << r.dramPower.writeW
        << ' ' << r.gpuPower.staticW << ' ' << r.gpuPower.dynamicW
        << ' ' << r.systemPowerW;
    return out.str();
}

std::optional<RunResult>
deserialize(const std::string &line)
{
    std::istringstream in(line);
    RunResult r;
    in >> r.workload >> r.scheme >> r.cycles >> r.seconds >>
        r.instructions >> r.requests >> r.l1Accesses >> r.l1Misses >>
        r.llcAccesses >> r.llcMisses >> r.llcMissRate >>
        r.nocLatencySmCycles >> r.llcParallelism >>
        r.channelParallelism >> r.bankParallelism >> r.dram.reads >>
        r.dram.writes >> r.dram.rowMisses >> r.dram.activations >>
        r.dram.precharges >> r.dram.busBusyCycles >>
        r.dram.latencySum >> r.rowBufferHitRate >>
        r.dramPower.backgroundW >> r.dramPower.activateW >>
        r.dramPower.readW >> r.dramPower.writeW >>
        r.gpuPower.staticW >> r.gpuPower.dynamicW >> r.systemPowerW;
    if (!in)
        return std::nullopt;
    return r;
}

void
loadOnce()
{
    std::lock_guard<std::mutex> lock(load_mutex);
    if (loaded)
        return;
    loaded = true;
    std::ifstream in(resultCachePath());
    std::string line;
    while (std::getline(in, line)) {
        const auto sep = line.find('|');
        if (sep == std::string::npos)
            continue;
        const std::string key = line.substr(0, sep);
        if (key.rfind(kResultCacheVersion, 0) != 0)
            continue; // stale schema version
        if (auto r = deserialize(line.substr(sep + 1))) {
            CacheShard &shard = shardFor(key);
            std::lock_guard<std::mutex> shard_lock(shard.mutex);
            shard.entries[key] = std::move(*r);
        }
    }
}

} // namespace

bool
cacheEnabled()
{
    const char *env = std::getenv("VALLEY_CACHE");
    return env == nullptr || std::string(env) != "0";
}

std::string
cacheKey(const std::string &config_name, const std::string &workload,
         const std::string &scheme, std::uint64_t seed, double scale)
{
    std::ostringstream out;
    out << kResultCacheVersion << ';' << config_name << ';' << workload
        << ';' << scheme << ';' << seed << ';' << scale;
    return out.str();
}

std::optional<RunResult>
cacheLookup(const std::string &key)
{
    if (!cacheEnabled())
        return std::nullopt;
    loadOnce();
    CacheShard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end())
        return std::nullopt;
    return it->second;
}

void
cacheStore(const std::string &key, const RunResult &r)
{
    if (!cacheEnabled())
        return;
    loadOnce();
    {
        CacheShard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries[key] = r;
    }
    std::lock_guard<std::mutex> lock(file_mutex);
    std::error_code ec; // best-effort: a failed append only loses memoization
    std::filesystem::create_directories(cacheDir(), ec);
    std::ofstream out(resultCachePath(), std::ios::app);
    out << key << '|' << serialize(r) << '\n';
}

} // namespace harness
} // namespace valley
